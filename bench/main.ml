(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5–§6).  Each artifact is one subcommand; running without
   arguments produces all of them.  Measured numbers come from executing the
   generated kernels in the VM on this machine; hierarchy/network/GPU curves
   are analytic-model projections (clearly labeled), since the original
   testbeds were SuperMUC-NG and Piz Daint.  EXPERIMENTS.md records the
   paper-vs-reproduction comparison for every row printed here.

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- table1     # a single artifact
     dune exec bench/main.exe -- micro      # Bechamel kernel microbenchmarks *)

let section title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Machine-readable results                                            *)
(* ------------------------------------------------------------------ *)

(* Each artifact accumulates (key, value) metrics while printing its
   human-readable table; the dispatcher then writes them to
   BENCH_<artifact>.json so CI and the experiment log can consume the
   numbers without scraping stdout. *)
let metrics : (string * float) list ref = ref []

let metric key value = metrics := (key, value) :: !metrics

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* Provenance of a bench run: which commit, which compiler, how many
   cores.  Best-effort — outside a checkout the rev is "unknown". *)
let git_rev =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

(* The shared provenance block of every BENCH_*.json artifact; one
   definition so a new artifact cannot drift from the established schema. *)
let meta_json () =
  Printf.sprintf
    "  \"meta\": {\n    \"git_rev\": %S,\n    \"ocaml_version\": %S,\n    \"domains\": %d\n  },\n"
    (Lazy.force git_rev) Sys.ocaml_version
    (Domain.recommended_domain_count ())

let write_bench_json target =
  let path = Printf.sprintf "BENCH_%s.json" target in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"target\": %S,\n" target;
  output_string oc (meta_json ());
  Printf.fprintf oc "  \"metrics\": {\n";
  let entries = List.rev !metrics in
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "    %S: %s%s\n" k (json_float v)
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Fmt.pr "[wrote %s: %d metric(s)]@." path (List.length entries)

let gen_p1 = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p1 ()))
let gen_p2 = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p2 ()))

let skl = Perfmodel.Machine.skylake_8174
let counts = Pfcore.Genkernels.counts

(* ------------------------------------------------------------------ *)
(* VM measurement helpers                                              *)
(* ------------------------------------------------------------------ *)

let bench_block (gen : Pfcore.Genkernels.t) ~dims =
  let block = Vm.Engine.make_block ~ghost:2 ~dims (Pfcore.Timestep.field_list gen) in
  let n = float_of_int gen.Pfcore.Genkernels.params.Pfcore.Params.n_phases in
  List.iter
    (fun (_, buf) ->
      Vm.Buffer.init buf (fun c comp ->
          (1. /. n) +. (0.01 *. sin (float_of_int ((c.(0) * 3) + (comp * 7)))));
      Vm.Buffer.periodic buf)
    block.Vm.Engine.buffers;
  block

let kernel_params (gen : Pfcore.Genkernels.t) =
  let p = gen.Pfcore.Genkernels.params in
  ("t", 0.) :: ("dx", p.Pfcore.Params.dx) :: ("dt", p.Pfcore.Params.dt)
  :: gen.Pfcore.Genkernels.bindings

(** Measured MLUP/s of one kernel sweep on this machine's VM. *)
let measure_kernel gen kernel ~dims ~sweeps =
  let block = bench_block gen ~dims in
  let bound = Vm.Engine.bind kernel block in
  let params = kernel_params gen in
  Vm.Engine.run ~params bound;
  let t0 = Unix.gettimeofday () in
  for step = 1 to sweeps do
    Vm.Engine.run ~step ~params bound
  done;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int (Array.fold_left ( * ) 1 dims * sweeps) /. dt /. 1e6

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

type paper_row = { p_loads : string; p_stores : string; p_norm : int }

let paper_table1 = function
  | "P1", "mu-full" -> { p_loads = "112"; p_stores = "2"; p_norm = 2126 }
  | "P1", "mu-split" -> { p_loads = "84+22"; p_stores = "6+2"; p_norm = 1328 }
  | "P1", "phi-full" -> { p_loads = "30"; p_stores = "4"; p_norm = 1004 }
  | "P1", "phi-split" -> { p_loads = "16+54"; p_stores = "12+4"; p_norm = 818 }
  | "P2", "mu-full" -> { p_loads = "79"; p_stores = "1"; p_norm = 1177 }
  | "P2", "mu-split" -> { p_loads = "60+13"; p_stores = "3+1"; p_norm = 756 }
  | "P2", "phi-full" -> { p_loads = "58"; p_stores = "3"; p_norm = 3968 }
  | "P2", "phi-split" -> { p_loads = "48+40"; p_stores = "9+3"; p_norm = 2593 }
  | _ -> { p_loads = "?"; p_stores = "?"; p_norm = 0 }

let table1_row tag name (main : Field.Opcount.t) (stag : Field.Opcount.t option) =
  let paper = paper_table1 (tag, name) in
  let combined =
    match stag with
    | None -> main
    | Some st -> Field.Opcount.( ++ ) st main
  in
  let loads, stores =
    match stag with
    | None -> (string_of_int main.Field.Opcount.loads, string_of_int main.Field.Opcount.stores)
    | Some st ->
      ( Printf.sprintf "%d+%d" st.Field.Opcount.loads main.Field.Opcount.loads,
        Printf.sprintf "%d+%d" st.Field.Opcount.stores main.Field.Opcount.stores )
  in
  Fmt.pr "%-3s %-10s %10s %8s %6d %6d %6d %6d | %10s %8s %6d@." tag name loads stores
    combined.Field.Opcount.adds combined.Field.Opcount.muls combined.Field.Opcount.divs
    (Field.Opcount.normalized combined)
    paper.p_loads paper.p_stores paper.p_norm;
  let key =
    String.lowercase_ascii (String.map (function '-' -> '_' | c -> c) (tag ^ "_" ^ name))
  in
  metric (key ^ "_norm_flops") (float_of_int (Field.Opcount.normalized combined));
  metric (key ^ "_norm_flops_paper") (float_of_int paper.p_norm)

let table1 () =
  section "Table 1: per-cell operation counts (ours | paper)";
  Fmt.pr "%-3s %-10s %10s %8s %6s %6s %6s %6s | %10s %8s %6s@." "" "kernel" "loads" "stores"
    "adds" "muls" "divs" "norm" "loads" "stores" "norm";
  let emit tag (g : Pfcore.Genkernels.t) =
    (match (g.mu_full, g.mu_split) with
    | Some mf, Some ms ->
      table1_row tag "mu-full" (counts mf) None;
      table1_row tag "mu-split"
        (counts ms.Pfcore.Genkernels.main)
        (Some (counts ms.Pfcore.Genkernels.stag))
    | _ -> ());
    table1_row tag "phi-full" (counts g.phi_full) None;
    table1_row tag "phi-split"
      (counts g.phi_split.Pfcore.Genkernels.main)
      (Some (counts g.phi_split.Pfcore.Genkernels.stag))
  in
  emit "P1" (Lazy.force gen_p1);
  emit "P2" (Lazy.force gen_p2);
  let g1 = Lazy.force gen_p1 in
  let ms = Option.get g1.mu_split in
  let ours =
    Field.Opcount.normalized (counts ms.Pfcore.Genkernels.stag)
    + Field.Opcount.normalized (counts ms.Pfcore.Genkernels.main)
  in
  Fmt.pr
    "@.paper §5.1: the manually optimized mu kernel of [2] needed 1384 normalized FLOPs;@.";
  Fmt.pr "our automatically simplified mu-split kernel needs %d.@." ours;
  metric "p1_mu_split_vs_manual_1384" (float_of_int ours)

(* ------------------------------------------------------------------ *)
(* Figure 2 left & middle: ECM vs benchmark, variant selection         *)
(* ------------------------------------------------------------------ *)

let core_counts = [ 1; 4; 8; 12; 16; 20; 24 ]

let print_curve label per_core =
  Fmt.pr "%-22s" label;
  List.iter (fun (_, v) -> Fmt.pr " %7.2f" v) per_core;
  Fmt.pr "@."

let ecm_curve kernels =
  List.map
    (fun cores ->
      let inv =
        List.fold_left
          (fun acc k ->
            acc
            +. 1.
               /. Perfmodel.Ecm.multicore_mlups skl
                    (Perfmodel.Ecm.predict skl k ~block_n:60)
                    ~cores)
          0. kernels
      in
      (cores, 1. /. inv /. float_of_int cores))
    core_counts

let fig2_left () =
  section "Figure 2 (left): mu kernel variants on Skylake, MLUP/s per core";
  let g = Lazy.force gen_p1 in
  let mu_full = Option.get g.mu_full in
  let pair = Option.get g.mu_split in
  Fmt.pr "%-22s" "cores";
  List.iter (fun c -> Fmt.pr " %7d" c) core_counts;
  Fmt.pr "@.";
  print_curve "ECM mu-split (model)"
    (ecm_curve [ pair.Pfcore.Genkernels.stag; pair.Pfcore.Genkernels.main ]);
  print_curve "ECM mu-full  (model)" (ecm_curve [ mu_full ]);
  let p_stag = Perfmodel.Ecm.predict skl pair.Pfcore.Genkernels.stag ~block_n:60 in
  let p_full = Perfmodel.Ecm.predict skl mu_full ~block_n:60 in
  Fmt.pr "scalability limit (saturation cores): split %d, full %d (paper: 32 vs 83)@."
    (Perfmodel.Ecm.saturation_cores skl p_stag)
    (Perfmodel.Ecm.saturation_cores skl p_full);
  let dims = [| 24; 24; 24 |] in
  let m_full = measure_kernel g mu_full ~dims ~sweeps:3 in
  let m_stag = measure_kernel g pair.Pfcore.Genkernels.stag ~dims ~sweeps:3 in
  let m_main = measure_kernel g pair.Pfcore.Genkernels.main ~dims ~sweeps:3 in
  let m_split = 1. /. ((1. /. m_stag) +. (1. /. m_main)) in
  Fmt.pr "measured on this machine (VM, 1 core, %d^3): split %.2f, full %.2f MLUP/s@."
    dims.(0) m_split m_full;
  metric "measured_mu_split_mlups" m_split;
  metric "measured_mu_full_mlups" m_full;
  metric "measured_split_over_full" (m_split /. m_full);
  metric "saturation_cores_split"
    (float_of_int (Perfmodel.Ecm.saturation_cores skl p_stag));
  metric "saturation_cores_full"
    (float_of_int (Perfmodel.Ecm.saturation_cores skl p_full));
  Fmt.pr "shape check: measured split/full ratio %.2f (ECM predicts %.2f at 1 core)@."
    (m_split /. m_full)
    (snd (List.hd (ecm_curve [ pair.Pfcore.Genkernels.stag; pair.Pfcore.Genkernels.main ]))
    /. snd (List.hd (ecm_curve [ mu_full ])))

let fig2_middle () =
  section "Figure 2 (middle): phi kernel variants, P1 vs P2";
  let g1 = Lazy.force gen_p1 and g2 = Lazy.force gen_p2 in
  Fmt.pr "%-22s" "cores";
  List.iter (fun c -> Fmt.pr " %7d" c) core_counts;
  Fmt.pr "@.";
  print_curve "ECM P1 phi-full" (ecm_curve [ g1.phi_full ]);
  print_curve "ECM P1 phi-split"
    (ecm_curve [ g1.phi_split.Pfcore.Genkernels.stag; g1.phi_split.Pfcore.Genkernels.main ]);
  print_curve "ECM P2 phi-full" (ecm_curve [ g2.phi_full ]);
  print_curve "ECM P2 phi-split"
    (ecm_curve [ g2.phi_split.Pfcore.Genkernels.stag; g2.phi_split.Pfcore.Genkernels.main ]);
  let pick (g : Pfcore.Genkernels.t) =
    let idx, _ =
      Perfmodel.Ecm.select_variant skl ~block_n:60 ~cores:24
        [
          [ g.phi_full ];
          [ g.phi_split.Pfcore.Genkernels.stag; g.phi_split.Pfcore.Genkernels.main ];
        ]
    in
    if idx = 0 then "full" else "split"
  in
  Fmt.pr "model-selected phi variant at 24 cores: P1 -> %s, P2 -> %s (paper: full / split)@."
    (pick g1) (pick g2)

(* ------------------------------------------------------------------ *)
(* Figure 2 right: GPU register transformations                        *)
(* ------------------------------------------------------------------ *)

let fig2_right () =
  section "Figure 2 (right): GPU register-usage transformations (mu-full, P1)";
  let g = Lazy.force gen_p1 in
  let body = (Option.get g.mu_full).Ir.Kernel.body in
  let dev = Gpumodel.Device.p100 in
  let cells = 128. *. 128. *. 128. in
  let row label transforms =
    let result = Gpumodel.Transforms.apply transforms body in
    let regs = Gpumodel.Transforms.registers result in
    let ms = Gpumodel.Transforms.modeled_time dev result *. cells /. 1e6 in
    Fmt.pr "%-20s %10d %6d %11.1f@." label regs.Gpumodel.Transforms.analysis
      regs.Gpumodel.Transforms.nvcc ms
  in
  Fmt.pr "%-20s %10s %6s %11s@." "transformations" "analysis" "nvcc" "runtime ms";
  row "none" [];
  row "sched" [ Gpumodel.Transforms.Sched 20 ];
  row "dupl" [ Gpumodel.Transforms.Remat Gpumodel.Remat.default ];
  row "fence" [ Gpumodel.Transforms.Fence 32 ];
  row "dupl+sched+fence"
    [
      Gpumodel.Transforms.Remat Gpumodel.Remat.default;
      Gpumodel.Transforms.Sched 20;
      Gpumodel.Transforms.Fence 32;
    ];
  Fmt.pr "(registers = 2 x alive doubles + overhead; runtime from the P100 occupancy model)@.";
  let outcomes = Gpumodel.Evotune.tune ~generations:4 ~population:10 dev body in
  let best = List.hd outcomes in
  Fmt.pr "evolutionary tuner best sequence: [%s], %.1f ms@."
    (String.concat "; " (List.map Gpumodel.Transforms.name best.Gpumodel.Evotune.genome))
    (best.Gpumodel.Evotune.time_ns *. cells /. 1e6)

(* ------------------------------------------------------------------ *)
(* Table 2: GPU communication options                                  *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: communication options on 128 GPUs (Piz Daint model)";
  let block_dims = [| 400; 400; 400 |] in
  let c =
    Blocks.Gpucomm.costs Gpumodel.Device.p100 Blocks.Netmodel.piz_daint ~block_dims
      ~bytes_per_cell:152 ~flops_per_cell:3000 ~ranks:128
  in
  Fmt.pr "%-8s %-10s %14s | %s@." "overlap" "GPUDirect" "MLUP/s (model)" "paper";
  let paper =
    [ (false, false, 395); (false, true, 403); (true, false, 422); (true, true, 440) ]
  in
  List.iter
    (fun (ov, gd, ref_) ->
      let rate =
        Blocks.Gpucomm.mlups_per_gpu c
          { Blocks.Gpucomm.overlap = ov; gpudirect = gd }
          ~block_dims
      in
      metric
        (Printf.sprintf "mlups_overlap_%b_gpudirect_%b" ov gd)
        rate;
      Fmt.pr "%-8b %-10b %14.0f | %d@." ov gd rate ref_)
    paper;
  Fmt.pr "cost split: comp %.2f ms, pack %.2f ms, stage %.2f ms, net %.2f ms per step@."
    (c.Blocks.Gpucomm.t_comp_s *. 1e3)
    (c.Blocks.Gpucomm.t_pack_s *. 1e3)
    (c.Blocks.Gpucomm.t_stage_s *. 1e3)
    (c.Blocks.Gpucomm.t_net_s *. 1e3)

(* ------------------------------------------------------------------ *)
(* Figure 3: scaling                                                   *)
(* ------------------------------------------------------------------ *)

let cpu_cfg ~simd_width ~overlap =
  let machine =
    if simd_width = 8 then skl else Perfmodel.Machine.with_simd_width simd_width skl
  in
  let g = Lazy.force gen_p1 in
  let pair = Option.get g.mu_split in
  (* per-core rate of one full time step: pick the best kernel combination *)
  let _, step_rate =
    Perfmodel.Ecm.select_variant machine ~block_n:60 ~cores:24
      [
        [ g.phi_full; Option.get g.mu_full ];
        [ g.phi_full; pair.Pfcore.Genkernels.stag; pair.Pfcore.Genkernels.main ];
      ]
  in
  {
    Blocks.Scaling.net = Blocks.Netmodel.supermuc_ng;
    mlups_per_pe = step_rate /. 24.;
    fields_bytes_per_cell = 8 * ((2 * 4) + (2 * 2)); (* phi + mu, both time levels *)
    ghost_width = 1;
    overlap;
  }

let fig3_weak_cpu () =
  section "Figure 3 (left): weak scaling on SuperMUC-NG model, 60^3 per core";
  let generated = cpu_cfg ~simd_width:8 ~overlap:true in
  let manual = cpu_cfg ~simd_width:4 ~overlap:true in
  Fmt.pr "%-10s %18s %22s@." "cores" "P1 generated" "P1 manual [2] (AVX2)";
  List.iter
    (fun cores ->
      let gen_rate = Blocks.Scaling.weak generated ~block_dims:[| 60; 60; 60 |] ~ranks:cores in
      metric (Printf.sprintf "generated_mlups_per_core_%d" cores) gen_rate;
      Fmt.pr "%-10d %18.2f %22.2f@." cores gen_rate
        (Blocks.Scaling.weak manual ~block_dims:[| 60; 60; 60 |] ~ranks:cores))
    [ 16; 64; 256; 1024; 4096; 16384; 65536; 152064; 304128 ];
  Fmt.pr "(MLUP/s per core; paper: ~6 generated vs ~5 manual, flat to half the machine)@."

let fig3_weak_gpu () =
  section "Figure 3 (middle): weak scaling on Piz Daint model, 400^3 per GPU";
  let block_dims = [| 400; 400; 400 |] in
  Fmt.pr "%-10s %14s@." "GPUs" "MLUP/s per GPU";
  List.iter
    (fun gpus ->
      let c =
        Blocks.Gpucomm.costs Gpumodel.Device.p100 Blocks.Netmodel.piz_daint ~block_dims
          ~bytes_per_cell:152 ~flops_per_cell:3000 ~ranks:gpus
      in
      let rate =
        Blocks.Gpucomm.mlups_per_gpu c
          { Blocks.Gpucomm.overlap = true; gpudirect = true }
          ~block_dims
      in
      metric (Printf.sprintf "mlups_per_gpu_%d" gpus) rate;
      Fmt.pr "%-10d %14.0f@." gpus rate)
    [ 1; 4; 16; 64; 128; 512; 1024; 2400 ];
  Fmt.pr "(paper: ~440 MLUP/s per GPU, flat to 2400 GPUs)@."

let fig3_strong () =
  section "Figure 3 (right): strong scaling, 512 x 256 x 256 total domain";
  let cfg = cpu_cfg ~simd_width:8 ~overlap:true in
  Fmt.pr "%-10s %16s %14s@." "cores" "MLUP/s per core" "time steps/s";
  List.iter
    (fun cores ->
      let per_core, steps =
        Blocks.Scaling.strong cfg ~global_dims:[| 512; 256; 256 |] ~ranks:cores
      in
      metric (Printf.sprintf "steps_per_s_%d" cores) steps;
      Fmt.pr "%-10d %16.2f %14.1f@." cores per_core steps)
    [ 48; 192; 768; 3072; 12288; 49152; 152064 ];
  Fmt.pr "(paper: 0.2 steps/s at 48 cores, 460 steps/s at 152064 cores)@."

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations: the design choices behind the headline numbers";
  let g1 = Lazy.force gen_p1 in
  let p = Pfcore.Params.p1 () in

  Fmt.pr "-- compile-time parameter freezing (paper §5.1) --@.";
  let opts = { Pfcore.Genkernels.default_options with symbolic_params = true } in
  let generic = Pfcore.Genkernels.generate ~opts p in
  Fmt.pr "frozen:   phi-full %d norm FLOPs, %d runtime args@."
    (Field.Opcount.normalized (counts g1.phi_full))
    (List.length (Ir.Kernel.parameters g1.phi_full));
  Fmt.pr "symbolic: phi-full %d norm FLOPs, %d runtime args (of %d config parameters)@."
    (Field.Opcount.normalized (counts generic.phi_full))
    (List.length (Ir.Kernel.parameters generic.phi_full))
    (Pfcore.Params.config_parameter_count p);

  Fmt.pr "@.-- analytic temperature forms --@.";
  let const_t =
    Pfcore.Genkernels.generate { p with Pfcore.Params.temp = Pfcore.Params.Const_temp 0.5 }
  in
  Fmt.pr "T(z,t) gradient: mu-full %d norm FLOPs@."
    (Field.Opcount.normalized (counts (Option.get g1.mu_full)));
  Fmt.pr "T constant:      mu-full %d norm FLOPs (temperature terms fold away)@."
    (Field.Opcount.normalized (counts (Option.get const_t.mu_full)));
  let lowered = Ir.Lower.run (Option.get g1.mu_full) in
  Fmt.pr "loop-invariant hoisting moved %d assignments out of the inner loops@."
    (Ir.Lower.hoisted_count lowered);

  Fmt.pr "@.-- per-term simplification and CSE --@.";
  List.iter
    (fun (label, o) ->
      let g = Pfcore.Genkernels.generate ~opts:o p in
      Fmt.pr "%-24s phi-full %5d norm FLOPs@." label
        (Field.Opcount.normalized (counts g.phi_full)))
    [
      ("simplify+cse (default)", Pfcore.Genkernels.default_options);
      ("cse only", { Pfcore.Genkernels.default_options with simplify = false });
      ("no cse", { Pfcore.Genkernels.default_options with cse = false });
    ];

  Fmt.pr "@.-- spatial blocking (layer condition, paper §6.1) --@.";
  let mu = Option.get g1.mu_full in
  Fmt.pr "%a@." Perfmodel.Layercond.pp_report (mu, skl.Perfmodel.Machine.l2_bytes);
  List.iter
    (fun n ->
      Fmt.pr "  block %3d^3: %4.0f B/LUP from memory@." n
        (Perfmodel.Layercond.traffic_bytes_per_lup mu
           ~cache_bytes:skl.Perfmodel.Machine.l2_bytes ~n))
    [ 40; 60; 67; 100; 200 ];

  Fmt.pr "@.-- approximate operations (paper §3.5: 25-35%% on mu kernels) --@.";
  let c = counts mu in
  let exact = Field.Opcount.normalized c in
  let approx = exact - (c.Field.Opcount.divs * 12) - (c.Field.Opcount.sqrts * 7) in
  Fmt.pr "mu-full normalized cost: exact %d, with fast div/rsqrt %d (-%d%%)@." exact approx
    ((exact - approx) * 100 / exact)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one Test.make per paper artifact          *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Bechamel kernel microbenchmarks (one per table/figure)";
  let g1 = Lazy.force gen_p1 in
  let pair = Option.get g1.mu_split in
  let dims = [| 12; 12; 12 |] in
  let sweep kernel =
    let block = bench_block g1 ~dims in
    let bound = Vm.Engine.bind kernel block in
    let params = kernel_params g1 in
    fun () -> Vm.Engine.run ~params bound
  in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"pfgen"
      [
        (* Table 1 / Fig. 2 left: the two mu variants *)
        Test.make ~name:"table1_mu_full_sweep" (Staged.stage (sweep (Option.get g1.mu_full)));
        Test.make ~name:"fig2_mu_split_sweep"
          (Staged.stage
             (let s1 = sweep pair.Pfcore.Genkernels.stag
              and s2 = sweep pair.Pfcore.Genkernels.main in
              fun () ->
                s1 ();
                s2 ()));
        (* Fig. 2 middle: phi variants *)
        Test.make ~name:"fig2_phi_full_sweep" (Staged.stage (sweep g1.phi_full));
        (* Fig. 3: a full Algorithm-1 time step *)
        Test.make ~name:"fig3_timestep"
          (Staged.stage
             (let sim = Pfcore.Timestep.create ~dims g1 in
              Pfcore.Simulation.init_lamellae sim;
              fun () -> Pfcore.Timestep.step sim));
        (* Fig. 2 right: the GPU scheduling transformation itself *)
        Test.make ~name:"fig2r_kessler_schedule"
          (Staged.stage (fun () ->
               ignore (Gpumodel.Kessler.schedule ~beam:4 g1.phi_full.Ir.Kernel.body)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let cells = float_of_int (Array.fold_left ( * ) 1 dims) in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (ns :: _) ->
        let key =
          String.map (function '/' | '-' | '.' -> '_' | c -> c) name
        in
        metric (key ^ "_ns_per_run") ns;
        if
          Astring.String.is_infix ~affix:"sweep" name
          || Astring.String.is_infix ~affix:"timestep" name
        then begin
          metric (key ^ "_mlups") (cells /. ns *. 1e3);
          Fmt.pr "%-36s %12.0f ns/run  = %6.3f MLUP/s@." name ns (cells /. ns *. 1e3)
        end
        else Fmt.pr "%-36s %12.0f ns/run@." name ns
      | _ -> Fmt.pr "%-36s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Resilience: checkpoint overhead on this machine                     *)
(* ------------------------------------------------------------------ *)

let resilience () =
  section "Resilience: checkpoint overhead (curvature model, 2x2 ranks, VM)";
  let gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ())) in
  let g = Lazy.force gen in
  let forest = Blocks.Forest.create ~grid:[| 2; 2 |] ~block_dims:[| 16; 16 |] g in
  Array.iter Pfcore.Simulation.init_lamellae forest.Blocks.Forest.sims;
  Blocks.Forest.prime forest;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let steps = 20 in
  let (), step_s = time (fun () -> Blocks.Forest.run forest ~steps) in
  let step_ms = step_s /. float_of_int steps *. 1e3 in
  let reps = 10 in
  let snap, capture_s =
    time (fun () ->
        let s = ref (Resilience.Snapshot.capture forest) in
        for _ = 2 to reps do
          s := Resilience.Snapshot.capture forest
        done;
        !s)
  in
  let capture_ms = capture_s /. float_of_int reps *. 1e3 in
  let encoded, encode_s =
    time (fun () ->
        let e = ref (Resilience.Snapshot.encode snap) in
        for _ = 2 to reps do
          e := Resilience.Snapshot.encode snap
        done;
        !e)
  in
  let encode_ms = encode_s /. float_of_int reps *. 1e3 in
  let every = 5 in
  let overhead = capture_ms /. (float_of_int every *. step_ms) *. 100. in
  Fmt.pr "time step:          %8.3f ms@." step_ms;
  Fmt.pr "snapshot capture:   %8.3f ms@." capture_ms;
  Fmt.pr "snapshot encode:    %8.3f ms (%d bytes)@." encode_ms (String.length encoded);
  Fmt.pr "checkpoint every %d steps: %.1f%% overhead (in-memory capture only)@." every
    overhead;
  metric "step_ms" step_ms;
  metric "capture_ms" capture_ms;
  metric "encode_ms" encode_ms;
  metric "snapshot_bytes" (float_of_int (String.length encoded));
  metric "checkpoint_every" (float_of_int every);
  metric "overhead_percent" overhead

(* ------------------------------------------------------------------ *)
(* Observability overhead                                              *)
(* ------------------------------------------------------------------ *)

(* The zero-cost-when-disabled claim, measured: the instrumented
   [Vm.Engine.run] with the sink off must cost the same sweep time as the
   uninstrumented [run_plain] (its only extra work is one atomic load and
   branch per sweep); the full tracing cost with the sink on is reported
   alongside for context. *)
let obs () =
  section "Observability: instrumentation overhead (P1 phi-full, 16^3)";
  let gen = Lazy.force gen_p1 in
  let dims = [| 16; 16; 16 |] in
  let block = bench_block gen ~dims in
  let bound = Vm.Engine.bind gen.Pfcore.Genkernels.phi_full block in
  let params = kernel_params gen in
  let sweeps = 10 and reps = 5 in
  (* best-of-reps sweep time, first call as warmup *)
  let best f =
    f 0;
    let t = ref infinity in
    for rep = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for s = 1 to sweeps do
        f ((rep * sweeps) + s)
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !t then t := dt
    done;
    !t /. float_of_int sweeps
  in
  Obs.Sink.disable ();
  let t_plain = best (fun step -> Vm.Engine.run_plain ~step ~params bound) in
  let t_disabled = best (fun step -> Vm.Engine.run ~step ~params bound) in
  Obs.Metrics.reset ();
  Obs.Sink.clear ();
  Obs.Sink.enable ();
  let t_enabled = best (fun step -> Vm.Engine.run ~step ~params bound) in
  let events = List.length (Obs.Sink.events ()) in
  Obs.Sink.disable ();
  Obs.Sink.clear ();
  Obs.Metrics.reset ();
  let cells = float_of_int (Array.fold_left ( * ) 1 dims) in
  let ns t = t *. 1e9 /. cells in
  let pct t = (t /. t_plain -. 1.) *. 100. in
  Fmt.pr "uninstrumented run_plain:   %8.1f ns/cell@." (ns t_plain);
  Fmt.pr "instrumented, sink off:     %8.1f ns/cell (%+.2f%%)@." (ns t_disabled)
    (pct t_disabled);
  Fmt.pr "instrumented, sink on:      %8.1f ns/cell (%+.2f%%, %d events)@." (ns t_enabled)
    (pct t_enabled) events;
  metric "plain_ns_per_cell" (ns t_plain);
  metric "disabled_ns_per_cell" (ns t_disabled);
  metric "enabled_ns_per_cell" (ns t_enabled);
  metric "disabled_overhead_percent" (pct t_disabled);
  metric "enabled_overhead_percent" (pct t_enabled);
  metric "trace_events" (float_of_int events)

(* ------------------------------------------------------------------ *)
(* Pool: serial vs pooled sweep through the persistent domain pool      *)
(* ------------------------------------------------------------------ *)

(* Gate failures are collected here and turned into a nonzero exit after
   every BENCH_*.json has been written, so CI still gets the numbers. *)
let gate_failures : string list ref = ref []

(* The tentpole speedup gate: a pooled P1 phi sweep at 4 domains must beat
   the serial sweep by >= 1.7x — but only on hardware that has the cores.
   On smaller machines (CI containers are often 1-2 cores) the speedup is
   recorded but the threshold is enforced only when PFGEN_POOL_GATE=1
   forces it.  The zero-extra-spawns gate is unconditional: after warmup,
   100%% of pooled sweeps must reuse the persistent pool. *)
let pool_bench () =
  section "Pool: serial vs pooled P1 phi-full sweep (persistent domain pool)";
  let gen = Lazy.force gen_p1 in
  let dims = [| 32; 32; 32 |] in
  let domains = 4 in
  let cores = Domain.recommended_domain_count () in
  let block = bench_block gen ~dims in
  let bound = Vm.Engine.bind gen.Pfcore.Genkernels.phi_full block in
  let params = kernel_params gen in
  let sweeps = 2 and reps = 3 in
  let best f =
    f 0;
    let t = ref infinity in
    for rep = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for s = 1 to sweeps do
        f ((rep * sweeps) + s)
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !t then t := dt
    done;
    !t /. float_of_int sweeps
  in
  (* tuner-informed tile for the pooled run (served from the Tune cache) *)
  let plan = Pfcore.Timestep.autotune ~domains gen in
  let tile = plan.Pfcore.Timestep.phi.Vm.Tune.tile in
  Fmt.pr "%a@." Vm.Tune.pp_choice plan.Pfcore.Timestep.phi;
  let t_serial = best (fun step -> Vm.Engine.run_plain ~step ~params bound) in
  (* warm the pool once, then demand zero further spawns *)
  Vm.Engine.run_plain ~num_domains:domains ?tile ~params bound;
  let spawned0 = Vm.Pool.spawned_total () in
  let t_pooled =
    best (fun step -> Vm.Engine.run_plain ~num_domains:domains ?tile ~step ~params bound)
  in
  let extra_spawns = Vm.Pool.spawned_total () - spawned0 in
  let cells = float_of_int (Array.fold_left ( * ) 1 dims) in
  let ns t = t *. 1e9 /. cells in
  let speedup = t_serial /. t_pooled in
  let threshold = 1.7 in
  let enforced = cores >= domains || Sys.getenv_opt "PFGEN_POOL_GATE" = Some "1" in
  Fmt.pr "serial sweep:          %8.1f ns/cell@." (ns t_serial);
  Fmt.pr "pooled sweep (x%d):     %8.1f ns/cell (tile %a)@." domains (ns t_pooled)
    Vm.Tune.pp_tile tile;
  Fmt.pr "speedup:               %8.2fx (gate >= %.1fx %s, %d core(s) available)@." speedup
    threshold
    (if enforced then "ENFORCED" else "recorded only")
    cores;
  Fmt.pr "extra spawns after warmup: %d (gate = 0, always enforced)@." extra_spawns;
  metric "serial_ns_per_cell" (ns t_serial);
  metric "pooled_ns_per_cell" (ns t_pooled);
  metric "speedup" speedup;
  metric "domains" (float_of_int domains);
  metric "cores_available" (float_of_int cores);
  metric "extra_spawns_after_warmup" (float_of_int extra_spawns);
  metric "gate_threshold" threshold;
  metric "gate_enforced" (if enforced then 1. else 0.);
  metric "gate_passed"
    (if (not enforced || speedup >= threshold) && extra_spawns = 0 then 1. else 0.);
  if extra_spawns <> 0 then
    gate_failures :=
      Printf.sprintf "pool: %d extra domain spawn(s) after warmup (expected 0)" extra_spawns
      :: !gate_failures;
  if enforced && speedup < threshold then
    gate_failures :=
      Printf.sprintf "pool: speedup %.2fx below the %.1fx gate at %d domains" speedup
        threshold domains
      :: !gate_failures

(* ------------------------------------------------------------------ *)
(* JIT: interpreter vs closure-compiled tapes                           *)
(* ------------------------------------------------------------------ *)

(* The JIT speedup gate: a serial P1 phi-full sweep through the compiled
   backend must beat the tree-walking interpreter by >= 5x per cell, with
   the one-time compilation excluded (both backends are warmed before
   timing) — and the warm phase must never recompile: the memo table has
   to serve every timed sweep.  Both gates are unconditional; the measured
   numbers and the compile cost land in BENCH_jit.json. *)
let jit_bench () =
  section "JIT: interpreter vs closure-compiled P1 phi-full sweep (1 core)";
  let gen = Lazy.force gen_p1 in
  let dims = [| 24; 24; 24 |] in
  let block = bench_block gen ~dims in
  let bound = Vm.Engine.bind gen.Pfcore.Genkernels.phi_full block in
  let params = kernel_params gen in
  let sweeps = 2 and reps = 3 in
  let best backend =
    (* warmup sweep: for the JIT this includes the one-time compilation *)
    Vm.Engine.run_plain ~backend ~params bound;
    let t = ref infinity in
    for rep = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for s = 1 to sweeps do
        Vm.Engine.run_plain ~backend ~step:((rep * sweeps) + s) ~params bound
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !t then t := dt
    done;
    !t /. float_of_int sweeps
  in
  Vm.Jit.clear_cache ();
  (* one-time compile cost: the first [get] populates the memo cache; for
     the native tier that includes the ocamlopt round trip.  Timed here so
     the warm-sweep measurements below exclude it entirely. *)
  let t0 = Unix.gettimeofday () in
  let compiled =
    Vm.Jit.get ~dims ~ghost:2 gen.Pfcore.Genkernels.phi_full
      (Ir.Lower.run gen.Pfcore.Genkernels.phi_full)
  in
  let compile_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Fmt.pr "tape: %d quads, tier: %s@." compiled.Vm.Jit.n_ops
    compiled.Vm.Jit.native_note;
  let t_interp = best Vm.Engine.Interp in
  let _, misses_warm = Vm.Jit.cache_stats () in
  let t_jit = best Vm.Engine.Jit in
  let recompiles = snd (Vm.Jit.cache_stats ()) - misses_warm in
  let cells = float_of_int (Array.fold_left ( * ) 1 dims) in
  let ns t = t *. 1e9 /. cells in
  let speedup = t_interp /. t_jit in
  let threshold = 5.0 in
  Fmt.pr "interpreter sweep:     %8.1f ns/cell@." (ns t_interp);
  Fmt.pr "jit sweep (warm):      %8.1f ns/cell@." (ns t_jit);
  Fmt.pr "speedup:               %8.2fx (gate >= %.1fx, ENFORCED)@." speedup threshold;
  Fmt.pr "one-time compile:      %8.2f ms (excluded from the warm sweeps)@." compile_ms;
  Fmt.pr "recompiles after warmup: %d (gate = 0, ENFORCED)@." recompiles;
  metric "interp_ns_per_cell" (ns t_interp);
  metric "jit_ns_per_cell" (ns t_jit);
  metric "speedup" speedup;
  metric "compile_ms" compile_ms;
  metric "native_tier" (if compiled.Vm.Jit.native then 1. else 0.);
  metric "recompiles_after_warmup" (float_of_int recompiles);
  metric "gate_threshold" threshold;
  metric "gate_passed" (if speedup >= threshold && recompiles = 0 then 1. else 0.);
  if recompiles <> 0 then
    gate_failures :=
      Printf.sprintf "jit: %d recompilation(s) after warmup (expected 0)" recompiles
      :: !gate_failures;
  if speedup < threshold then
    gate_failures :=
      Printf.sprintf "jit: speedup %.2fx below the %.1fx gate over the interpreter" speedup
        threshold
      :: !gate_failures

(* ------------------------------------------------------------------ *)
(* Serve: the multi-tenant simulation farm                             *)
(* ------------------------------------------------------------------ *)

(* The farm gates: after a warmup batch has populated the mempool's size
   classes, a steady-state batch over the same workload must allocate ZERO
   fresh field buffers (every acquire is a free-list hit) and the overall
   hit rate must reach 90%.  Both are unconditional — they hold on any
   machine because admission order and buffer sizes are deterministic.
   Throughput and latency percentiles are recorded for the experiment log. *)
let serve_bench () =
  section "Serve: multi-tenant farm, steady-state batch over a shared mempool";
  let specs =
    Serve.Workload.generate ~families:[ Serve.Workload.Curv2d ] ~with_crash:false ~seed:9
      ~jobs:12 ()
  in
  let config = Serve.Scheduler.default_config () in
  let mempool = Serve.Mempool.create () in
  (* warmup batch: takes the cold misses that size the pool's free lists *)
  let warm = Serve.Scheduler.run ~config ~mempool specs in
  let m_warm = warm.Serve.Scheduler.mempool in
  (* steady-state batch: the same workload, recycled storage throughout *)
  let stats = Serve.Scheduler.run ~config ~mempool specs in
  let m = stats.Serve.Scheduler.mempool in
  let n = List.length stats.Serve.Scheduler.results in
  let elapsed_s = stats.Serve.Scheduler.elapsed_ns /. 1e9 in
  let jobs_per_s = float_of_int n /. elapsed_s in
  let latencies =
    List.sort compare
      (List.map
         (fun (r : Serve.Scheduler.job_result) -> r.Serve.Scheduler.latency_ns /. 1e6)
         stats.Serve.Scheduler.results)
  in
  let percentile p =
    List.nth latencies
      (min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))
  in
  let p50 = percentile 0.5 and p99 = percentile 0.99 in
  let steady_hits = m.Serve.Mempool.hits - m_warm.Serve.Mempool.hits in
  let steady_misses = m.Serve.Mempool.misses - m_warm.Serve.Mempool.misses in
  (* the gated rate is the steady-state batch's own; the cumulative rate
     (including warmup's unavoidable cold misses) is recorded alongside *)
  let hit_rate =
    let total = steady_hits + steady_misses in
    if total = 0 then 0. else float_of_int steady_hits /. float_of_int total
  in
  let cumulative_rate =
    let total = m.Serve.Mempool.hits + m.Serve.Mempool.misses in
    if total = 0 then 0. else float_of_int m.Serve.Mempool.hits /. float_of_int total
  in
  let threshold = 0.9 in
  Fmt.pr "steady-state batch:    %d job(s) in %.3f s = %.1f jobs/s@." n elapsed_s jobs_per_s;
  Fmt.pr "job latency:           p50 %.1f ms, p99 %.1f ms@." p50 p99;
  Fmt.pr "preemptions:           %d, crash restarts: %d@." stats.Serve.Scheduler.preemptions
    stats.Serve.Scheduler.restarts;
  Fmt.pr "mempool:               %a@." Serve.Mempool.pp_stats m;
  Fmt.pr "steady-state hit rate: %8.1f%% (gate >= %.0f%%, ENFORCED; %.1f%% incl. warmup)@."
    (100. *. hit_rate) (100. *. threshold) (100. *. cumulative_rate);
  Fmt.pr "steady-state acquires: %d hit(s), %d fresh alloc(s) (gate = 0, ENFORCED)@."
    steady_hits steady_misses;
  metric "jobs" (float_of_int n);
  metric "jobs_per_s" jobs_per_s;
  metric "latency_p50_ms" p50;
  metric "latency_p99_ms" p99;
  metric "preemptions" (float_of_int stats.Serve.Scheduler.preemptions);
  metric "mempool_hit_rate" hit_rate;
  metric "mempool_hit_rate_incl_warmup" cumulative_rate;
  metric "steady_state_fresh_allocs" (float_of_int steady_misses);
  metric "mempool_high_water_bytes" (float_of_int m.Serve.Mempool.high_water_bytes);
  metric "gate_threshold" threshold;
  metric "gate_passed" (if hit_rate >= threshold && steady_misses = 0 then 1. else 0.);
  if steady_misses <> 0 then
    gate_failures :=
      Printf.sprintf "serve: %d fresh allocation(s) in the steady-state batch (expected 0)"
        steady_misses
      :: !gate_failures;
  if hit_rate < threshold then
    gate_failures :=
      Printf.sprintf "serve: mempool hit rate %.1f%% below the %.0f%% gate" (100. *. hit_rate)
        (100. *. threshold)
      :: !gate_failures;
  (* throughput vs quantum (recorded, not gated): smaller quanta buy finer
     interleaving at the cost of more scheduler passes and preemption
     snapshot traffic; each point is a steady-state batch on its own
     warmed mempool *)
  Fmt.pr "@.%-10s %12s %14s %12s@." "quantum" "jobs/s" "p99 ms" "preemptions";
  List.iter
    (fun qn ->
      let config = { config with Serve.Scheduler.quantum = qn } in
      let mp = Serve.Mempool.create () in
      let _warm = Serve.Scheduler.run ~config ~mempool:mp specs in
      let st = Serve.Scheduler.run ~config ~mempool:mp specs in
      let nq = List.length st.Serve.Scheduler.results in
      let jps = float_of_int nq /. (st.Serve.Scheduler.elapsed_ns /. 1e9) in
      let lats =
        List.sort compare
          (List.map
             (fun (r : Serve.Scheduler.job_result) -> r.Serve.Scheduler.latency_ns /. 1e6)
             st.Serve.Scheduler.results)
      in
      let p99q =
        List.nth lats (min (nq - 1) (int_of_float ((0.99 *. float_of_int (nq - 1)) +. 0.5)))
      in
      Fmt.pr "%-10d %12.1f %14.1f %12d@." qn jps p99q st.Serve.Scheduler.preemptions;
      metric (Printf.sprintf "jobs_per_s_quantum_%d" qn) jps;
      metric (Printf.sprintf "latency_p99_ms_quantum_%d" qn) p99q)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Overlap: sequential vs overlapped ghost exchange (paper §7)          *)
(* ------------------------------------------------------------------ *)

(* The overlap gates.  (1) Bitwise: the overlapped forest must end exactly
   equal to the sequential one — unconditional, any machine.  (2) Hidden
   fraction: the in-process substrate cannot hide wall-clock time, so the
   enforced gate is model-calibrated — the measured μ interior compute per
   step must cover at least half of the SuperMUC-NG-modeled axis-0 φ_dst
   exchange time for the same block ([hidden = min(t_interior, t_comm) /
   t_comm]).  The raw wall-clock overhead of the split schedule is
   recorded alongside (not gated: it is pure scheduling cost here). *)
let overlap_bench () =
  section "Overlap: sequential vs overlapped phi_dst exchange (2-rank P1 forest)";
  let gen = Lazy.force gen_p1 in
  let block_dims = [| 12; 12; 12 |] and grid = [| 1; 1; 2 |] in
  let steps = 3 in
  let make ~overlap =
    let forest = Blocks.Forest.create ~overlap ~grid ~block_dims gen in
    Array.iter Pfcore.Simulation.init_lamellae forest.Blocks.Forest.sims;
    Blocks.Forest.prime forest;
    forest
  in
  let time_run forest =
    let t0 = Unix.gettimeofday () in
    Blocks.Forest.run forest ~steps;
    (Unix.gettimeofday () -. t0) /. float_of_int steps
  in
  let seq = make ~overlap:false in
  let t_seq = time_run seq in
  let ovl = make ~overlap:true in
  let t_ovl = time_run ovl in
  (* gate 1: bitwise identity over every cell of both state fields *)
  let fields = gen.Pfcore.Genkernels.fields in
  let gd = seq.Blocks.Forest.global_dims in
  let mismatches = ref 0 in
  List.iter
    (fun (f : Symbolic.Fieldspec.t) ->
      for gz = 0 to gd.(2) - 1 do
        for gy = 0 to gd.(1) - 1 do
          for gx = 0 to gd.(0) - 1 do
            for c = 0 to f.Symbolic.Fieldspec.components - 1 do
              let a = Blocks.Forest.get seq f ~component:c [| gx; gy; gz |] in
              let b = Blocks.Forest.get ovl f ~component:c [| gx; gy; gz |] in
              if Int64.bits_of_float a <> Int64.bits_of_float b then incr mismatches
            done
          done
        done
      done)
    [ fields.Pfcore.Model.phi_src; fields.Pfcore.Model.mu_src ];
  (* measured interior compute per step: the work available to hide the
     exchange behind (same per-rank block, solo, warmed) *)
  let sim = Pfcore.Timestep.create ~dims:block_dims gen in
  Pfcore.Timestep.smooth_fill sim.Pfcore.Timestep.block gen;
  Pfcore.Timestep.prime sim;
  Pfcore.Timestep.phase_phi sim;
  Pfcore.Timestep.phase_mu_interior sim (* warmup *);
  let t_interior = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    Pfcore.Timestep.phase_mu_interior sim;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !t_interior then t_interior := dt
  done;
  (* modeled axis-0 exchange for the same block on SuperMUC-NG at 10^5+
     ranks: 2 slabs of the φ_dst ghost layer per rank *)
  let phi_buf = Vm.Engine.buffer sim.Pfcore.Timestep.block fields.Pfcore.Model.phi_dst in
  let axis0_bytes = 2 * 8 * Blocks.Ghost.slab_size phi_buf 0 in
  let ranks = 131072 in
  let t_comm =
    Blocks.Netmodel.exchange_time_s Blocks.Netmodel.supermuc_ng
      ~bytes:(float_of_int axis0_bytes) ~neighbors:2 ~ranks
  in
  let hidden = Float.min !t_interior t_comm /. t_comm in
  let overhead = (t_ovl -. t_seq) /. t_seq *. 100. in
  let threshold = 0.5 in
  Fmt.pr "sequential step:       %8.2f ms@." (t_seq *. 1e3);
  Fmt.pr "overlapped step:       %8.2f ms (%+.1f%% scheduling overhead, recorded)@."
    (t_ovl *. 1e3) overhead;
  Fmt.pr "bitwise mismatches:    %8d (gate = 0, ENFORCED)@." !mismatches;
  Fmt.pr "mu interior compute:   %8.3f ms/step (measured)@." (!t_interior *. 1e3);
  Fmt.pr "modeled axis-0 comm:   %8.3f ms/step (%d B, SuperMUC-NG at %d ranks)@."
    (t_comm *. 1e3) axis0_bytes ranks;
  Fmt.pr "exchange hidden:       %8.1f%% (gate >= %.0f%%, ENFORCED)@." (100. *. hidden)
    (100. *. threshold);
  metric "sequential_step_ms" (t_seq *. 1e3);
  metric "overlapped_step_ms" (t_ovl *. 1e3);
  metric "overlap_overhead_percent" overhead;
  metric "bitwise_mismatches" (float_of_int !mismatches);
  metric "mu_interior_ms_per_step" (!t_interior *. 1e3);
  metric "axis0_exchange_bytes" (float_of_int axis0_bytes);
  metric "modeled_axis0_comm_ms" (t_comm *. 1e3);
  metric "model_ranks" (float_of_int ranks);
  metric "exchange_hidden_fraction" hidden;
  metric "gate_threshold" threshold;
  metric "gate_passed" (if !mismatches = 0 && hidden >= threshold then 1. else 0.);
  if !mismatches <> 0 then
    gate_failures :=
      Printf.sprintf "overlap: %d bitwise mismatch(es) between overlapped and sequential"
        !mismatches
      :: !gate_failures;
  if hidden < threshold then
    gate_failures :=
      Printf.sprintf "overlap: exchange hidden fraction %.2f below the %.2f gate" hidden
        threshold
      :: !gate_failures

(* ------------------------------------------------------------------ *)
(* Scaling: weak/strong projections calibrated on the measured overlap  *)
(* ------------------------------------------------------------------ *)

(* Labelled weak/strong-scaling projections out to SuperMUC-class rank
   counts (paper Fig. 3), driven by [Blocks.Scaling] with the per-PE
   update rate calibrated from a measured overlapped forest run of this
   build — so the artifact tracks the repository's real kernel speed, not
   a hard-coded constant.  Pure model, no gate: the numbers document where
   the analytic ceiling sits for the measured single-core rate. *)
let scaling_bench () =
  section "Scaling: weak/strong projections calibrated on a measured overlapped run";
  let gen = Lazy.force gen_p1 in
  let block_dims = [| 12; 12; 12 |] and grid = [| 1; 1; 2 |] in
  let forest = Blocks.Forest.create ~overlap:true ~grid ~block_dims gen in
  Array.iter Pfcore.Simulation.init_lamellae forest.Blocks.Forest.sims;
  Blocks.Forest.prime forest;
  Blocks.Forest.run forest ~steps:1 (* warmup *);
  let steps = 3 in
  let t0 = Unix.gettimeofday () in
  Blocks.Forest.run forest ~steps;
  let dt = Unix.gettimeofday () -. t0 in
  let ranks_measured = Array.length forest.Blocks.Forest.sims in
  let cells_per_rank = float_of_int (Array.fold_left ( * ) 1 block_dims) in
  let mlups_per_pe =
    cells_per_rank *. float_of_int steps /. (dt /. float_of_int ranks_measured) /. 1e6
    /. float_of_int ranks_measured
  in
  let fields_bytes_per_cell =
    List.fold_left
      (fun acc (f : Symbolic.Fieldspec.t) -> acc + (8 * f.Symbolic.Fieldspec.components))
      0
      (Pfcore.Timestep.field_list gen)
  in
  let cfg overlap =
    {
      Blocks.Scaling.net = Blocks.Netmodel.supermuc_ng;
      mlups_per_pe;
      fields_bytes_per_cell;
      ghost_width = 2;
      overlap;
    }
  in
  Fmt.pr "calibration: measured %.3f MLUP/s per PE (%d-rank overlapped forest), %d B/cell@."
    mlups_per_pe ranks_measured fields_bytes_per_cell;
  metric "calibrated_mlups_per_pe" mlups_per_pe;
  metric "fields_bytes_per_cell" (float_of_int fields_bytes_per_cell);
  let weak_ranks = [ 16; 1024; 16384; 131072; 262144 ] in
  let weak_dims = [| 60; 60; 60 |] in
  Fmt.pr "@.weak scaling, 60^3 cells/rank (MLUP/s per PE):@.";
  Fmt.pr "%-10s %14s %14s@." "ranks" "overlap" "no overlap";
  List.iter
    (fun ranks ->
      let ov = Blocks.Scaling.weak (cfg true) ~block_dims:weak_dims ~ranks in
      let nov = Blocks.Scaling.weak (cfg false) ~block_dims:weak_dims ~ranks in
      Fmt.pr "%-10d %14.3f %14.3f@." ranks ov nov;
      metric (Printf.sprintf "weak_overlap_mlups_per_pe@%d" ranks) ov;
      metric (Printf.sprintf "weak_noverlap_mlups_per_pe@%d" ranks) nov)
    weak_ranks;
  let strong_ranks = [ 48; 768; 12288; 49152; 147456 ] in
  let strong_dims = [| 512; 256; 256 |] in
  Fmt.pr "@.strong scaling, %dx%dx%d global (overlap on):@." strong_dims.(0) strong_dims.(1)
    strong_dims.(2);
  Fmt.pr "%-10s %14s %14s@." "ranks" "MLUP/s per PE" "steps/s";
  List.iter
    (fun ranks ->
      let per_pe, steps_s = Blocks.Scaling.strong (cfg true) ~global_dims:strong_dims ~ranks in
      Fmt.pr "%-10d %14.3f %14.2f@." ranks per_pe steps_s;
      metric (Printf.sprintf "strong_overlap_mlups_per_pe@%d" ranks) per_pe;
      metric (Printf.sprintf "strong_steps_per_s@%d" ranks) steps_s)
    strong_ranks

(* ------------------------------------------------------------------ *)
(* Reduce: canonical reductions + interface-adaptive block forest      *)
(* ------------------------------------------------------------------ *)

(* The reduce gates.  (1) Bitwise: the interface-adaptive forest must end
   exactly equal to the uniform fine-grid run over every phase component
   of every cell, and every canonical reduction (interface count, phase
   sum, extrema) must be bitwise identical between the serial single-tile
   reference, the pooled/tiled executor and the adaptive forest — the
   fixed-topology tree makes the combination order a constant of the
   contract, so the gate is zero divergence on any machine.  (2) Savings:
   on the interface-localized 2D curvature benchmark (shrinking sharp
   disc on 72^2, 12x12 blocks of 6^2 cells) the frozen bulk must buy at
   least 2x in cells touched versus the uniform sweep.  The per-cell
   reduction overhead is recorded alongside (not gated: wall-clock). *)
let reduce_bench () =
  section "Reduce: deterministic reductions + interface-adaptive forest (2D curvature)";
  let gen = Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()) in
  let phi = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
  let size = 72 and steps = 10 in
  let dims = [| size; size |] in
  (* uniform fine-grid reference *)
  let uni = Pfcore.Timestep.create ~dims gen in
  Pfcore.Simulation.init_sphere ~radius_frac:0.2 uni;
  Pfcore.Timestep.prime uni;
  Pfcore.Timestep.run uni ~steps;
  (* interface-adaptive forest over the same domain, same initial state *)
  let af = Blocks.Adaptive.create ~bgrid:[| size / 6; size / 6 |] ~block_dims:[| 6; 6 |] gen in
  List.iter (Pfcore.Simulation.init_sphere ~radius_frac:0.2) (Blocks.Adaptive.active_sims af);
  Blocks.Adaptive.prime af;
  let t0 = Unix.gettimeofday () in
  Blocks.Adaptive.run af ~steps;
  let t_adaptive = Unix.gettimeofday () -. t0 in
  (* gate 1a: bitwise identity of the full phase field *)
  let ub = Vm.Engine.buffer uni.Pfcore.Timestep.block phi in
  let mismatches = ref 0 in
  for gy = 0 to size - 1 do
    for gx = 0 to size - 1 do
      for c = 0 to phi.Symbolic.Fieldspec.components - 1 do
        let a = Blocks.Adaptive.get af phi ~component:c [| gx; gy |] in
        let b = Vm.Buffer.get ub ~component:c [| gx; gy |] in
        if Int64.bits_of_float a <> Int64.bits_of_float b then incr mismatches
      done
    done
  done;
  (* gate 1b: canonical reductions bitwise-equal across executors *)
  let block = uni.Pfcore.Timestep.block in
  let reductions =
    [
      ("interface_cells", Vm.Reduce.Interface, Vm.Reduce.Sum);
      ("phi0_sum", Vm.Reduce.Component 0, Vm.Reduce.Sum);
      ("phi0_min", Vm.Reduce.Component 0, Vm.Reduce.Min);
      ("phi0_max", Vm.Reduce.Component 0, Vm.Reduce.Max);
    ]
  in
  let divergent = ref 0 in
  List.iter
    (fun (name, cellfn, op) ->
      let serial = Vm.Reduce.scalar ~backend:Vm.Engine.Interp ~num_domains:1 block phi cellfn op in
      let pooled = Vm.Reduce.scalar ~num_domains:4 ~tile:[| 5; 3 |] block phi cellfn op in
      let adaptive = Blocks.Adaptive.scalar af phi cellfn op in
      if
        Int64.bits_of_float serial <> Int64.bits_of_float pooled
        || Int64.bits_of_float serial <> Int64.bits_of_float adaptive
      then incr divergent;
      metric name serial)
    reductions;
  (* gate 2: cells-touched savings of the frozen bulk *)
  let savings = Blocks.Adaptive.savings af in
  let savings_threshold = 2.0 in
  (* recorded overhead: canonical interface reduction, serial vs pooled *)
  let time_reduction f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let cells = float_of_int (size * size) in
  let t_serial =
    time_reduction (fun () ->
        Vm.Reduce.scalar ~backend:Vm.Engine.Interp ~num_domains:1 block phi Vm.Reduce.Interface
          Vm.Reduce.Sum)
  in
  let t_pooled =
    time_reduction (fun () ->
        Vm.Reduce.scalar ~num_domains:4 block phi Vm.Reduce.Interface Vm.Reduce.Sum)
  in
  Fmt.pr "adaptive run:          %8.2f ms (%d steps, %d/%d block(s) frozen at end)@."
    (t_adaptive *. 1e3) steps
    (Blocks.Adaptive.frozen_blocks af)
    (Blocks.Adaptive.nblocks af);
  Fmt.pr "bitwise mismatches:    %8d field cell(s), %d reduction(s) (gate = 0, ENFORCED)@."
    !mismatches !divergent;
  Fmt.pr "cells-touched savings: %8.2fx (gate >= %.1fx, ENFORCED)@." savings savings_threshold;
  Fmt.pr "reduction overhead:    %8.2f ns/cell serial, %.2f ns/cell pooled (recorded)@."
    (t_serial /. cells *. 1e9)
    (t_pooled /. cells *. 1e9);
  metric "steps" (float_of_int steps);
  metric "grid_cells" cells;
  metric "adaptive_run_ms" (t_adaptive *. 1e3);
  metric "frozen_blocks" (float_of_int (Blocks.Adaptive.frozen_blocks af));
  metric "total_blocks" (float_of_int (Blocks.Adaptive.nblocks af));
  metric "freezes" (float_of_int af.Blocks.Adaptive.freezes);
  metric "thaws" (float_of_int af.Blocks.Adaptive.thaws);
  metric "bitwise_mismatches" (float_of_int !mismatches);
  metric "divergent_reductions" (float_of_int !divergent);
  metric "cells_touched_savings" savings;
  metric "savings_threshold" savings_threshold;
  metric "reduce_ns_per_cell_serial" (t_serial /. cells *. 1e9);
  metric "reduce_ns_per_cell_pooled" (t_pooled /. cells *. 1e9);
  metric "gate_passed"
    (if !mismatches = 0 && !divergent = 0 && savings >= savings_threshold then 1. else 0.);
  if !mismatches <> 0 then
    gate_failures :=
      Printf.sprintf "reduce: %d bitwise mismatch(es) between adaptive and uniform"
        !mismatches
      :: !gate_failures;
  if !divergent <> 0 then
    gate_failures :=
      Printf.sprintf "reduce: %d reduction(s) diverge across executors" !divergent
      :: !gate_failures;
  if savings < savings_threshold then
    gate_failures :=
      Printf.sprintf "reduce: cells-touched savings %.2fx below the %.1fx gate" savings
        savings_threshold
      :: !gate_failures

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Model zoo: per-family update cost + the oracle-12 deviation gate     *)
(* ------------------------------------------------------------------ *)

(* One row per combinator-built family: measured ns/cell of a whole
   timestep under the interpreter and the compiled backend, and the worst
   Varder-vs-finite-difference deviation of the family's free-energy
   density (oracle 12) over every phase component at a spread of probe
   cells.  The deviation gate is ENFORCED and machine-independent: it re-
   checks the commutation budget documented in DESIGN.md §15, so a sign
   flip or dropped term in the variational frontend fails the bench job
   even if the sampled oracle happened to miss it. *)
let zoo_bench () =
  section "Model zoo: per-family update cost and oracle-12 deviation";
  let families =
    [
      (0, "eutectic", Pfcore.Params.eutectic ());
      (1, "pfc", Pfcore.Params.pfc ());
      (2, "gray_scott", Pfcore.Params.gray_scott ());
    ]
  in
  let all_ok = ref true in
  Fmt.pr "%-12s %15s %15s %18s@." "family" "interp ns/cell" "jit ns/cell"
    "oracle-12 max dev";
  List.iter
    (fun (zf, label, p) ->
      let gen = Pfcore.Genkernels.generate p in
      let dims = [| 24; 24 |] in
      let cells = float_of_int (dims.(0) * dims.(1)) in
      let time backend =
        let sim = Pfcore.Timestep.create ~backend ~dims gen in
        Pfcore.Simulation.init_model sim;
        Pfcore.Timestep.prime sim;
        Pfcore.Timestep.run sim ~steps:1 (* warmup; the jit compiles here *);
        let best = ref infinity in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          Pfcore.Timestep.run sim ~steps:2;
          let dt = (Unix.gettimeofday () -. t0) /. 2. in
          if dt < !best then best := dt
        done;
        !best /. cells *. 1e9
      in
      let ns_interp = time Vm.Engine.Interp in
      let ns_jit = time Vm.Engine.Jit in
      let dev, ok = Check.Oracles.o12_family_deviation ~zf ~seed:5 in
      if not ok then begin
        all_ok := false;
        gate_failures :=
          Printf.sprintf "zoo: %s oracle-12 deviation %.5f exceeds its budget" label dev
          :: !gate_failures
      end;
      Fmt.pr "%-12s %15.1f %15.1f %18.5f@." label ns_interp ns_jit dev;
      metric (label ^ "_interp_ns_per_cell") ns_interp;
      metric (label ^ "_jit_ns_per_cell") ns_jit;
      metric (label ^ "_oracle12_max_deviation") dev)
    families;
  Fmt.pr "oracle-12 deviations within budget: %b (gate, ENFORCED)@." !all_ok;
  metric "gate_passed" (if !all_ok then 1. else 0.)

let () =
  let artifacts =
    [
      ("table1", table1);
      ("fig2_left", fig2_left);
      ("fig2_middle", fig2_middle);
      ("fig2_right", fig2_right);
      ("table2", table2);
      ("fig3_weak_cpu", fig3_weak_cpu);
      ("fig3_weak_gpu", fig3_weak_gpu);
      ("fig3_strong", fig3_strong);
      ("ablations", ablations);
      ("resilience", resilience);
      ("micro", micro);
      ("obs", obs);
      ("pool", pool_bench);
      ("jit", jit_bench);
      ("serve", serve_bench);
      ("overlap", overlap_bench);
      ("reduce", reduce_bench);
      ("scaling", scaling_bench);
      ("zoo", zoo_bench);
    ]
  in
  (* each artifact prints its table and then dumps the metrics it
     accumulated to BENCH_<artifact>.json *)
  let run_artifact (name, f) =
    metrics := [];
    f ();
    write_bench_json name
  in
  (match Array.to_list Sys.argv with
  | [ _ ] -> List.iter run_artifact artifacts
  | _ :: args ->
    List.iter
      (fun a ->
        match List.assoc_opt a artifacts with
        | Some f -> run_artifact (a, f)
        | None ->
          Fmt.epr "unknown artifact %s; available: %s@." a
            (String.concat ", " (List.map fst artifacts));
          exit 1)
      args
  | [] -> ());
  (* gate failures exit nonzero only after every json has been written *)
  if !gate_failures <> [] then begin
    List.iter (fun msg -> Fmt.epr "GATE FAILED: %s@." msg) !gate_failures;
    exit 1
  end
