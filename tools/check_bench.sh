#!/usr/bin/env sh
# Bench-gate runner for CI (job 3) and local pre-merge checks.
#
# Builds the bench harness and runs every artifact that carries an ENFORCED
# gate, then re-checks the gate_passed metric written into each BENCH_*.json
# so a regression fails the job even if an exit code is swallowed upstream.
#
# Gates exercised (all ENFORCED in bench/main.ml):
#   pool    - pooled speedup >= threshold (enforced when >1 core, or
#             PFGEN_BENCH_ENFORCE=1), zero extra domain spawns after warmup
#   jit     - compiled backend >= 5x over the interpreter, zero recompiles
#             after warmup
#   serve   - mempool steady-state hit rate >= 90%, zero fresh allocs
#   overlap - overlapped-vs-sequential bitwise mismatches = 0,
#             exchange-hidden-fraction >= 0.5 (model-calibrated)
#   reduce  - adaptive-vs-uniform bitwise mismatches = 0, reduction values
#             bitwise-equal across executors, cells-touched savings >= 2x
#   scaling - no gate; produces the labelled weak/strong projections
#             (BENCH_scaling.json) that CI uploads as an artifact
#   zoo     - oracle-12 deviation (Varder vs finite-difference functional
#             derivative) within its documented budget for every zoo
#             family; records per-family interp/jit ns-per-cell
#
# Usage: tools/check_bench.sh [artifact ...]   (defaults to the gated set)
set -eu

cd "$(dirname "$0")/.."

ARTIFACTS="${*:-pool jit serve overlap reduce scaling zoo}"

dune build bench/main.exe

# shellcheck disable=SC2086  # word-splitting the artifact list is intended
./_build/default/bench/main.exe $ARTIFACTS

status=0
for a in $ARTIFACTS; do
  json="BENCH_$a.json"
  if [ ! -f "$json" ]; then
    echo "GATE CHECK: missing artifact $json" >&2
    status=1
    continue
  fi
  # gate_passed is only present for gated artifacts; scaling has none.
  if grep -q '"gate_passed"' "$json"; then
    if grep -q '"gate_passed": 1' "$json"; then
      echo "GATE CHECK: $json passed"
    else
      echo "GATE CHECK: $json FAILED (gate_passed != 1)" >&2
      status=1
    fi
  else
    echo "GATE CHECK: $json has no gate (recorded metrics only)"
  fi
done

echo "bench artifacts for upload:"
ls -1 BENCH_*.json

exit "$status"
