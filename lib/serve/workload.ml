(** Deterministic workload generator for the simulation farm.

    A workload is a batch of heterogeneous job specs — mixed model
    families, grid sizes, tenants, priorities, kernel variants, backends
    and crash injections — drawn from Philox streams keyed on (job index,
    workload seed).  The same seed always produces the same batch, so soak
    runs, the serve bench and oracle 9 all replay identical workloads.

    Every spec field that affects execution is chosen from the set of
    knobs the differential oracles already prove bitwise-neutral (variant,
    tile, pool width, backend, rank decomposition, crash recovery), which
    is what entitles the scheduler to promise farm = solo. *)

type family = Curv2d | P1 | P2 | Eutectic | Pfc | GrayScott

let family_label = function
  | Curv2d -> "curvature"
  | P1 -> "p1"
  | P2 -> "p2"
  | Eutectic -> "eutectic"
  | Pfc -> "pfc"
  | GrayScott -> "gray-scott"

let params_of_family = function
  | Curv2d -> Pfcore.Params.curvature ~dim:2 ()
  | P1 -> Pfcore.Params.p1 ()
  | P2 -> Pfcore.Params.p2 ()
  | Eutectic -> Pfcore.Params.eutectic ()
  | Pfc -> Pfcore.Params.pfc ()
  | GrayScott -> Pfcore.Params.gray_scott ()

let all_families = [ Curv2d; P1; P2; Eutectic; Pfc; GrayScott ]

type spec = {
  id : int;  (** position in the workload; also the job's trace lane *)
  tenant : string;
  family : family;
  size : int;  (** global domain edge length *)
  steps : int;
  priority : int;  (** larger runs first *)
  split : bool;  (** phi (and mu) kernel variant *)
  backend : Vm.Engine.backend;
  ranks : int;  (** 1 = single block; 2 = 1D-decomposed Mpisim forest *)
  crash_step : int option;  (** fault-injected run under crash protection *)
  seed : int;  (** keys the initial condition *)
}

let pp_spec ppf s =
  Fmt.pf ppf "job %d [%s] %s %d^%d x%d steps, prio %d, %s/%s, %d rank(s)%s, seed %d" s.id
    s.tenant (family_label s.family) s.size
    (params_of_family s.family).Pfcore.Params.dim s.steps s.priority
    (if s.split then "split" else "full")
    (Vm.Engine.backend_label s.backend)
    s.ranks
    (match s.crash_step with None -> "" | Some k -> Fmt.str ", crash@%d" k)
    s.seed

(* One uniform draw in [0,1) per (job, knob) under the workload seed. *)
let uniform ~seed ~job ~knob =
  (Philox.symmetric ~cell:job ~step:seed ~slot:knob +. 1.) /. 2.

let pick ~seed ~job ~knob choices =
  let u = uniform ~seed ~job ~knob in
  let n = List.length choices in
  List.nth choices (min (n - 1) (int_of_float (u *. float_of_int n)))

let tenants = [ "amber"; "basalt"; "cobalt" ]

(** Generate [jobs] specs under [seed].  [families] restricts the model
    mix (oracle 9 keeps to the cheap 2D families; the soak runs the whole
    zoo); [with_crash] mixes in fault-injected 2-rank jobs that must
    survive a rank crash via rollback recovery. *)
let generate ?(families = all_families) ?(with_crash = true) ~seed ~jobs () =
  List.init jobs (fun id ->
      let family = pick ~seed ~job:id ~knob:0 families in
      (* sizes stay even so a 2-rank decomposition always divides them; the
         3D families use smaller edges to bound per-step cost *)
      let size =
        match family with
        | Curv2d | Pfc | GrayScott -> pick ~seed ~job:id ~knob:1 [ 8; 12; 16 ]
        | P1 -> pick ~seed ~job:id ~knob:1 [ 6; 8 ]
        (* eutectic's 3-phase/2-component mu kernels are the priciest of
           the 2D mix; keep its edges modest *)
        | Eutectic -> pick ~seed ~job:id ~knob:1 [ 8; 12 ]
        (* p2's five-component kernels cost ~1 s/step even on tiny grids;
           keep it in the mix but on the smallest edge only *)
        | P2 -> 6
      in
      let steps =
        match family with
        | P2 | Eutectic -> pick ~seed ~job:id ~knob:2 [ 2; 3 ]
        | Curv2d | P1 | Pfc | GrayScott -> pick ~seed ~job:id ~knob:2 [ 2; 3; 4; 5 ]
      in
      let priority = pick ~seed ~job:id ~knob:3 [ 0; 1; 2 ] in
      let split = uniform ~seed ~job:id ~knob:4 < 0.5 in
      let backend =
        if uniform ~seed ~job:id ~knob:5 < 0.5 then Vm.Engine.Interp else Vm.Engine.Jit
      in
      let crash =
        (* crash jobs ride the cheap 2D family so the protected replay
           stays a small fraction of the batch cost *)
        with_crash && family = Curv2d && uniform ~seed ~job:id ~knob:6 < 0.25
      in
      let ranks = if crash then 2 else 1 in
      let crash_step = if crash then Some (1 + (steps / 2)) else None in
      {
        id;
        tenant = pick ~seed ~job:id ~knob:7 tenants;
        family;
        size;
        steps;
        priority;
        split;
        backend;
        ranks;
        crash_step;
        seed = (seed * 7919) + id;
      })

(* ------------------------------------------------------------------ *)
(* Geometry and memory projection                                      *)
(* ------------------------------------------------------------------ *)

let dim_of spec = (params_of_family spec.family).Pfcore.Params.dim

(** 1D decomposition along axis 0, matching [pfgen simulate]. *)
let decomposition spec =
  let dim = dim_of spec in
  let grid = Array.init dim (fun d -> if d = 0 then spec.ranks else 1) in
  let block_dims =
    Array.init dim (fun d -> if d = 0 then spec.size / spec.ranks else spec.size)
  in
  (grid, block_dims)

(** Projected resident field-buffer bytes of [spec] (padded storage of
    every field on every rank) — what admission control charges against
    the memory budget before any buffer exists. *)
let projected_bytes ~(gen : Pfcore.Genkernels.t) spec =
  let ghost = 2 in
  let _, block_dims = decomposition spec in
  let padded = Array.fold_left (fun acc n -> acc * (n + (2 * ghost))) 1 block_dims in
  let per_rank =
    List.fold_left
      (fun acc f -> acc + (8 * padded * Vm.Buffer.storage_components f))
      0
      (Pfcore.Timestep.field_list gen)
  in
  spec.ranks * per_rank

(* ------------------------------------------------------------------ *)
(* Initial conditions                                                  *)
(* ------------------------------------------------------------------ *)

(** Seeded smooth initial fill, a function of *global* coordinates: every
    buffer holds simplex-centered values perturbed by a seed-keyed smooth
    wave, so no kernel hits a degenerate denominator, every job is
    distinct, and a decomposed job reproduces the single-block fill. *)
let init_sim (sim : Pfcore.Timestep.t) ~seed =
  let gen = sim.Pfcore.Timestep.gen in
  let n = float_of_int gen.Pfcore.Genkernels.params.Pfcore.Params.n_phases in
  let block = sim.Pfcore.Timestep.block in
  let off = block.Vm.Engine.offset in
  List.iter
    (fun ((_ : Symbolic.Fieldspec.t), buf) ->
      Vm.Buffer.init buf (fun c comp ->
          let g0 = c.(0) + off.(0) in
          (1. /. n) +. (0.01 *. sin (float_of_int ((g0 * 3) + (comp * 7) + (seed * 13)))));
      Vm.Buffer.periodic buf)
    block.Vm.Engine.buffers
