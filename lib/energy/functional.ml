(** Building blocks of the grand-potential phase-field energy functional
    (paper §3.1, following Hötzer et al. [11] and Choudhury & Nestler [27]):

      Ψ(φ, μ, T) = ∫ ε a(φ,∇φ) + ω(φ)/ε + ψ(φ,μ,T) dV

    with gradient energy density [a], multi-obstacle potential [ω] and a
    grand-potential driving force [ψ] built from per-phase parabolic fits of
    CALPHAD data. *)

open Symbolic
open Expr

(* ------------------------------------------------------------------ *)
(* Interpolation functions                                             *)
(* ------------------------------------------------------------------ *)

(** [h x = x²(3 − 2x)]: zero slope at 0 and 1, h(0)=0, h(1)=1 — used to
    interpolate the grand potentials. *)
let h x = mul [ sq x; sub (num 3.) (mul [ num 2.; x ]) ]

(** Simpler interpolation used for the mobility (paper: "not interpolated
    with h_α, but rather with a simpler interpolation function g_α"). *)
let g x = x

(* ------------------------------------------------------------------ *)
(* Gradient energy                                                     *)
(* ------------------------------------------------------------------ *)

type anisotropy =
  | Isotropic
  | Cubic of {
      delta : Expr.t;                   (** anisotropy strength δ *)
      rotation : float array array option;  (** grain orientation, unitary *)
    }

(** Generalized gradient q_αβ = φ_α ∇φ_β − φ_β ∇φ_α (one entry per axis). *)
let generalized_gradient ~dim phi_a phi_b =
  List.init dim (fun d ->
      sub (mul [ phi_a; Diff (phi_b, d) ]) (mul [ phi_b; Diff (phi_a, d) ]))

let rotate_vector rotation q =
  match rotation with
  | None -> q
  | Some r ->
    List.mapi
      (fun i _ ->
        add (List.mapi (fun j qj -> mul [ num r.(i).(j); qj ]) q))
      q

(** Cubic-harmonic anisotropy function of a (rotated) direction vector:
    A(q) = 1 − δ (3 − 4 Σ_d q_d⁴ / (Σ_d q_d²)²), guarded to 1 in the bulk
    where |q|² vanishes.  The norm uses the unrotated q (rotations are
    unitary). *)
let cubic_anisotropy ~delta ~rotation q ~norm_sq =
  let qr = rotate_vector rotation q in
  let quartic = add (List.map (fun qd -> pow qd 4) qr) in
  let aniso =
    sub one (mul [ delta; sub (num 3.) (mul [ num 4.; quartic; pow norm_sq (-2) ]) ])
  in
  select (Le (norm_sq, sym "q_eps")) one aniso

(** Gradient energy density
    a(φ,∇φ) = Σ_{α<β} γ_αβ A_αβ(R q_αβ)² |q_αβ|²  (paper eq. 4). *)
let gradient_energy ~dim ~gamma ~aniso ~phis =
  let n = Array.length phis in
  let pairs = ref [] in
  for beta = n - 1 downto 0 do
    for alpha = beta - 1 downto 0 do
      let q = generalized_gradient ~dim phis.(alpha) phis.(beta) in
      let norm_sq = add (List.map sq q) in
      let a_factor =
        match aniso alpha beta with
        | Isotropic -> one
        | Cubic { delta; rotation } -> cubic_anisotropy ~delta ~rotation q ~norm_sq
      in
      pairs := mul [ gamma alpha beta; sq a_factor; norm_sq ] :: !pairs
    done
  done;
  add !pairs

(* ------------------------------------------------------------------ *)
(* Obstacle potential                                                  *)
(* ------------------------------------------------------------------ *)

(** Multi-obstacle potential (paper eq. 5)
    ω(φ) = 16/π² Σ_{α<β} γ_αβ φ_α φ_β + Σ_{α<β<δ} γ_αβδ φ_α φ_β φ_δ.
    The simplex constraint φ ∈ G is enforced by projection after the update
    (see [Core.Timestep]). *)
let obstacle ~gamma ~gamma3 ~phis =
  let n = Array.length phis in
  let two_phase = ref [] in
  for beta = n - 1 downto 0 do
    for alpha = beta - 1 downto 0 do
      two_phase := mul [ gamma alpha beta; phis.(alpha); phis.(beta) ] :: !two_phase
    done
  done;
  let three_phase = ref [] in
  for d = n - 1 downto 0 do
    for beta = d - 1 downto 0 do
      for alpha = beta - 1 downto 0 do
        three_phase :=
          mul [ gamma3 alpha beta d; phis.(alpha); phis.(beta); phis.(d) ] :: !three_phase
      done
    done
  done;
  add
    [
      mul [ num (16. /. (Float.pi *. Float.pi)); add !two_phase ];
      (match !three_phase with [] -> zero | ts -> add ts);
    ]

(* ------------------------------------------------------------------ *)
(* Grand potential driving force                                       *)
(* ------------------------------------------------------------------ *)

(** Per-phase parabolic grand potential fit (paper eq. 6):
    ψ_α(μ,T) = μ·A_α μ + B_α·μ + C_α, with A, B, C affine-linear in T
    supplied by the caller (as expressions of the symbol/expression T). *)
let parabolic_potential ~a ~b ~c ~mu =
  let k = Array.length mu in
  let quad = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto 0 do
      quad := mul [ mu.(i); a.(i).(j); mu.(j) ] :: !quad
    done
  done;
  let lin = Array.to_list (Array.mapi (fun i bi -> mul [ bi; mu.(i) ]) b) in
  add ((c :: lin) @ !quad)

(** Concentration vector of one phase, c_α = −∂ψ_α/∂μ = −(2 A_α μ + B_α). *)
let concentration ~a ~b ~mu =
  Array.init (Array.length mu)
    (fun i ->
      neg
        (add
           (b.(i)
           :: List.init (Array.length mu) (fun j -> mul [ num 2.; a.(i).(j); mu.(j) ]))))

(** Driving force ψ(φ,μ,T) = Σ_α ψ_α(μ,T) h_α(φ). *)
let driving_force ~psis ~phis =
  add (Array.to_list (Array.mapi (fun alpha psi -> mul [ psi; h phis.(alpha) ]) psis))

(* ------------------------------------------------------------------ *)
(* Combinator library (model zoo)                                      *)
(* ------------------------------------------------------------------ *)

(* Free-energy densities are plain [Expr.t] values over field accesses and
   their [Diff] atoms, so arbitrary functionals compose with [sum]/[scale]
   and [Varder.run] takes their variational derivative automatically —
   including the second-order Euler–Lagrange term that [swift_hohenberg]
   needs.  Model families in [Core.Model] are assembled from these. *)

(** Weighted sum of density terms. *)
let sum = add

(** Scale a density term by a coefficient expression. *)
let scale c t = mul [ c; t ]

(** Classic double well w·u²(1−u)², minima at 0 and 1. *)
let double_well ~w u = mul [ w; sq u; sq (sub one u) ]

(** Multi-well Σ_α w·φ_α²(1−φ_α)² over a phase vector. *)
let multi_well ~w phis = add (Array.to_list (Array.map (fun p -> double_well ~w p) phis))

(** Pairwise coupling c·Σ_{α<β} φ_α² φ_β² penalising phase overlap. *)
let pair_coupling ~c phis =
  let n = Array.length phis in
  let terms = ref [] in
  for beta = n - 1 downto 0 do
    for alpha = beta - 1 downto 0 do
      terms := mul [ c; sq phis.(alpha); sq phis.(beta) ] :: !terms
    done
  done;
  (match !terms with [] -> zero | ts -> add ts)

(** Square-gradient (Dirichlet) interface energy ½·κ·|∇u|². *)
let square_gradient ~dim ~kappa u = mul [ num 0.5; kappa; Varder.grad_sq ~dim u ]

(** Linear driving-force term −m·u (chemical or thermal drive). *)
let linear_drive ~m u = neg (mul [ m; u ])

(** Swift–Hohenberg / phase-field-crystal density (Elder & Grant 2004):
      f(ψ) = −½·r·ψ² + ½·((1+∇²)ψ)² + ¼·ψ⁴.
    The (1+∇²)ψ operator makes the density depend on the second-derivative
    atoms [Diff (Diff (ψ,d), d)]; its variational derivative
    r·ψ − (1+∇²)²ψ − ψ³ exercises [Varder]'s second-order term. *)
let swift_hohenberg ~dim ~r u =
  let lin = add [ u; Varder.lap ~dim u ] in
  sum
    [
      scale (num (-0.5)) (mul [ r; sq u ]);
      scale (num 0.5) (sq lin);
      scale (num 0.25) (pow u 4);
    ]

(** Diagonal mobility tensor: component [i] of the evolution equation is
    scaled by [coeffs.(i)] (constant or φ-interpolated expressions). *)
let diag_mobility coeffs i rhs = mul [ coeffs.(i); rhs ]
