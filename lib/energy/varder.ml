(** Variational (functional) derivatives.

    For an energy density [psi(u, ∇u, ∇∇u)] the Euler–Lagrange / variational
    derivative with respect to the field component [u] is

      δΨ/δu = ∂psi/∂u − Σ_d ∂_d ( ∂psi/∂(∂_d u) )
                       + Σ_{d,d'} ∂_d ∂_d' ( ∂psi/∂(∂_d' ∂_d u) )

    Gradient components [Diff (u, d)] — and second-derivative components
    [Diff (Diff (u, d), d')] — are treated as independent atoms while
    differentiating (sympy's Derivative-as-symbol trick, paper §3.1).  The
    outer spatial derivatives are kept as un-expanded [Diff] nodes wrapping
    the whole flux so that the discretizer can apply the staggered
    divergence-of-fluxes scheme to them.  The second-order term carries a
    plus sign (two integrations by parts); it is what makes densities like
    the phase-field-crystal ½((1+∇²)ψ)² expressible. *)

open Symbolic
open Expr

(** [run ~dim density ~wrt] computes δ(∫ density)/δ[wrt], where [wrt] is a
    field-access expression (the field component varied). *)
let run ~dim density ~wrt =
  let bulk = diff density ~wrt in
  let divergence =
    List.init dim (fun d ->
        let flux = diff density ~wrt:(Diff (wrt, d)) in
        if equal flux zero then zero else neg (Diff (flux, d)))
  in
  let second =
    List.concat
      (List.init dim (fun d ->
           List.init dim (fun d' ->
               let flux = diff density ~wrt:(Diff (Diff (wrt, d), d')) in
               if equal flux zero then zero else Diff (Diff (flux, d'), d))))
  in
  add ((bulk :: divergence) @ second)

(** Laplacian of a field-access expression, as nested [Diff] atoms. *)
let lap ~dim u = add (List.init dim (fun d -> Diff (Diff (u, d), d)))

(** Gradient vector of a field-access expression. *)
let grad ~dim u = List.init dim (fun d -> Diff (u, d))

(** Squared gradient magnitude |∇u|². *)
let grad_sq ~dim u = add (List.map sq (grad ~dim u))

(** Dot product of two gradient-like vectors. *)
let dot a b = add (List.map2 (fun x y -> mul [ x; y ]) a b)
