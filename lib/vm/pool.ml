(** Persistent domain pool.

    The engine used to [Domain.spawn]/[join] fresh domains on every kernel
    invocation; a simulation makes millions of kernel invocations, so the
    spawn cost dominated small sweeps and the domain count grew without
    bound over a trace.  This pool mirrors what an OpenMP runtime does for
    the paper's generated code: worker domains are spawned {e once}, parked
    on a condition variable, and fed jobs through an [Atomic] tile queue.

    Determinism: a job is a bag of independent tiles.  Workers pull tile
    indices with [Atomic.fetch_and_add] — which tile runs on which lane is
    racy by design — but tiles write disjoint cells with values that do not
    depend on the schedule, so the result is bitwise identical to serial
    execution (oracle 7 enforces this).

    Error handling: an exception inside a tile aborts the remaining tiles,
    is recorded, and is re-raised by the {e coordinator} after every
    participant has checked out.  Workers never die from a tile exception —
    the pool stays usable — and the exception propagates outside the
    per-lane [wrap], so observability span streams stay balanced.

    Lane numbering is stable: the coordinator is lane 0 and worker [i]
    (spawned once, in order) is always lane [i + 1], so pool lanes map to
    stable Chrome-trace tids. *)

type job = {
  ntiles : int;
  participants : int;  (** lanes 0 .. participants-1 may pull tiles *)
  f : lane:int -> int -> unit;
  wrap : int -> (unit -> unit) -> unit;  (** per-lane bracket (obs span) *)
  next : int Atomic.t;  (** tile queue head *)
  tiles_by_lane : int array;
  steals_by_lane : int array;
  mutable pending : int;  (** participating workers not yet checked out *)
  mutable error : exn option;  (** first tile exception, re-raised by lane 0 *)
}

type t = {
  mu : Mutex.t;
  work : Condition.t;  (** signals workers: a new job (or stop) is posted *)
  idle : Condition.t;  (** signals the coordinator: a worker checked out *)
  run_mu : Mutex.t;  (** serializes whole jobs (the pool runs one at a time) *)
  mutable generation : int;  (** bumped per posted job; wakes exactly once *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;  (** newest first *)
  mutable size : int;
  mutable spawned : int;  (** cumulative spawn count — the regression metric *)
  mutable at_exit_registered : bool;
}

let pool =
  {
    mu = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    run_mu = Mutex.create ();
    generation = 0;
    job = None;
    stop = false;
    workers = [];
    size = 0;
    spawned = 0;
    at_exit_registered = false;
  }

(** Cumulative number of worker domains ever spawned.  Constant across any
    number of kernel invocations once the pool is warm — the 100-invocation
    regression test pins exactly this. *)
let spawned_total () = pool.spawned

let live_workers () = pool.size

(** Pool width requested by the environment: [PFGEN_DOMAINS], default 1
    (serial).  Read lazily so tests can set it per dune alias. *)
let default_domains () =
  match Sys.getenv_opt "PFGEN_DOMAINS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> max 1 n | None -> 1)
  | None -> 1

let record_error j e =
  Mutex.lock pool.mu;
  if j.error = None then j.error <- Some e;
  Mutex.unlock pool.mu;
  (* abort: push the queue head past the end so no lane starts another tile *)
  Atomic.set j.next j.ntiles

(* Pull tiles until the queue is drained (or aborted).  Exceptions from a
   tile are recorded and stop this lane; they never escape into [wrap]. *)
let drain j ~lane =
  let continue_ = ref true in
  while !continue_ do
    let ti = Atomic.fetch_and_add j.next 1 in
    if ti >= j.ntiles then continue_ := false
    else begin
      j.tiles_by_lane.(lane) <- j.tiles_by_lane.(lane) + 1;
      if ti mod j.participants <> lane then
        j.steals_by_lane.(lane) <- j.steals_by_lane.(lane) + 1;
      try j.f ~lane ti
      with e ->
        record_error j e;
        continue_ := false
    end
  done

let rec worker_loop i seen =
  Mutex.lock pool.mu;
  while pool.generation = seen && not pool.stop do
    Condition.wait pool.work pool.mu
  done;
  if pool.stop then Mutex.unlock pool.mu
  else begin
    let gen = pool.generation in
    let j = pool.job in
    Mutex.unlock pool.mu;
    (match j with
    | Some j when i + 1 < j.participants ->
      let lane = i + 1 in
      (try j.wrap lane (fun () -> drain j ~lane) with e -> record_error j e);
      Mutex.lock pool.mu;
      j.pending <- j.pending - 1;
      if j.pending = 0 then Condition.broadcast pool.idle;
      Mutex.unlock pool.mu
    | _ -> ());
    worker_loop i gen
  end

(** Join all workers and reset the pool (registered via [at_exit]; also
    used by tests to force a cold start).  [spawned_total] is cumulative
    and survives a shutdown.

    Idempotent and safe to call concurrently: the whole teardown holds
    [run_mu], so a second caller (e.g. a service layer's own [at_exit]
    firing after the pool's registered one) serializes behind the first,
    finds an empty worker list, and returns without raising.  Serializing
    also closes a race in the old two-caller interleaving where the second
    caller could reset [stop] before the first caller's workers had
    observed it, parking them forever under the first caller's join. *)
let shutdown () =
  Mutex.lock pool.run_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.run_mu) @@ fun () ->
  Mutex.lock pool.mu;
  pool.stop <- true;
  Condition.broadcast pool.work;
  let ws = pool.workers in
  pool.workers <- [];
  pool.size <- 0;
  Mutex.unlock pool.mu;
  List.iter Domain.join ws;
  Mutex.lock pool.mu;
  pool.stop <- false;
  Mutex.unlock pool.mu

(* Grow the pool to [n] workers.  Workers are only ever added — a warm pool
   never respawns — and each new worker starts parked at the current
   generation. *)
let ensure_workers n =
  Mutex.lock pool.mu;
  if not pool.at_exit_registered then begin
    pool.at_exit_registered <- true;
    Stdlib.at_exit shutdown
  end;
  while pool.size < n do
    let i = pool.size in
    let seen = pool.generation in
    pool.size <- pool.size + 1;
    pool.spawned <- pool.spawned + 1;
    pool.workers <- Domain.spawn (fun () -> worker_loop i seen) :: pool.workers
  done;
  Mutex.unlock pool.mu

type stats = {
  tiles_run : int;
  steals : int;  (** tiles run by a lane other than [index mod participants] *)
  lanes : int;  (** participating lanes (including the coordinator) *)
}

let serial_stats ntiles = { tiles_run = ntiles; steals = 0; lanes = 1 }

(** Run [ntiles] tiles through the pool with [domains] lanes.  Lane 0 is
    the calling domain; [wrap lane body] brackets each lane's share (the
    engine hangs its per-lane observability span there).  Serial fallback
    ([domains <= 1] or a single tile) runs everything on lane 0 inside
    [wrap 0] — the exact code path of a serial sweep, so pooled and serial
    execution cannot drift.  Re-raises the first tile exception after the
    job has fully quiesced; the pool remains usable afterwards. *)
let run ?(wrap = fun _ f -> f ()) ~domains ~ntiles f =
  if ntiles <= 0 then serial_stats 0
  else if domains <= 1 || ntiles <= 1 then begin
    wrap 0 (fun () ->
        for ti = 0 to ntiles - 1 do
          f ~lane:0 ti
        done);
    serial_stats ntiles
  end
  else begin
    Mutex.lock pool.run_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock pool.run_mu) @@ fun () ->
    ensure_workers (domains - 1);
    let j =
      {
        ntiles;
        participants = domains;
        f;
        wrap;
        next = Atomic.make 0;
        tiles_by_lane = Array.make domains 0;
        steals_by_lane = Array.make domains 0;
        pending = domains - 1;
        error = None;
      }
    in
    Mutex.lock pool.mu;
    pool.job <- Some j;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mu;
    (* the coordinator is participant 0 *)
    (try j.wrap 0 (fun () -> drain j ~lane:0) with e -> record_error j e);
    Mutex.lock pool.mu;
    while j.pending > 0 do
      Condition.wait pool.idle pool.mu
    done;
    pool.job <- None;
    Mutex.unlock pool.mu;
    (match j.error with Some e -> raise e | None -> ());
    {
      tiles_run = Array.fold_left ( + ) 0 j.tiles_by_lane;
      steals = Array.fold_left ( + ) 0 j.steals_by_lane;
      lanes = domains;
    }
  end

(** Tile-level collection hook for the reduction layer: run [ntiles]
    tiles through the pool and return the per-tile results indexed by
    tile, independent of which lane computed which tile.  Lanes write
    disjoint slots, so no synchronization beyond the job barrier is
    needed; the caller combines the slots in tile order (or by content
    key), never in completion order.  Exceptions propagate exactly like
    {!run}: re-raised after quiescence, pool left usable. *)
let collect ?wrap ~domains ~ntiles f =
  let out = Array.make ntiles None in
  let (_ : stats) =
    run ?wrap ~domains ~ntiles (fun ~lane ti -> out.(ti) <- Some (f ~lane ti))
  in
  Array.map (function Some v -> v | None -> invalid_arg "Pool.collect: missing tile") out
