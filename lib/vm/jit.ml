(** JIT: closure-compiled kernel backend.

    The interpreter ([Engine.compile]) walks a closure tree per expression
    node per cell; this module instead compiles each post-CSE IR
    instruction once into a flat three-address program over a single SSA
    slot array (the Petalisp kernel-compiler idiom: compile the innermost
    body once, reuse it under the outer loops).  Per instruction the
    compiler emits a tape segment — packed [op, dst, a, b] quads into an
    int array — and wraps it in an OCaml closure over the runtime state;
    per loop depth the segments are fused into one tape executed by a
    single dispatch loop, so a cell costs one indirect call per depth
    group instead of one per expression node.

    Slot-array layout (all compile-time indices):

    {v
      [0 .. nc)                 interned literal constants (0.0 and 1.0
                                always present: fold seeds, Pow/Rsqrt)
      [nc .. nc+np)             kernel parameters, Kernel.parameters order
      [nc+np .. nc+np+nt)       SSA temporaries, definition order
      [nc+np+nt .. n_slots)     expression scratch, reset per instruction
    v}

    Bitwise contract: the emitted program replays the interpreter's exact
    arithmetic — the same association for n-ary [Add]/[Mul] (2- and 3-ary
    chains, larger folds seeded from 0.0 / 1.0), the same [Pow] special
    cases, [Rsqrt] as [1.0 /. sqrt], NaN-aware [c_fmin]/[c_fmax].  The only
    intentional divergence is [Select]: the interpreter evaluates the taken
    branch lazily, the tape evaluates both branches before selecting.
    Expressions are pure (stores happen only at the assignment root and
    [Rand] is counter-based Philox), so the extra evaluation cannot perturb
    any observable value — the differential oracle holds the JIT to that.

    Compiled programs never capture buffer storage: [Buffer.swap] swaps the
    [data] fields under us between sweeps, so field operands are indices
    into a per-sweep [datas] table resolved by the engine.  A program
    depends only on (kernel structure, loop order, interior dims, ghost
    width) — that tuple is the memo key, cached alongside [Tune]'s
    decisions, so every block of a forest with equal dims shares one
    compilation. *)

open Symbolic
open Field

(* ------------------------------------------------------------------ *)
(* Runtime state and tape execution                                    *)
(* ------------------------------------------------------------------ *)

type st = {
  slots : float array;            (** the SSA slot array *)
  datas : float array array;      (** field storage, by operand-table index *)
  mutable base : int;             (** linear index of the current cell *)
  mutable cx : int;               (** global cell coordinates *)
  mutable cy : int;
  mutable cz : int;
  step : int;                     (** time step, keys the Philox streams *)
  dx : float;
  gd0 : int;                      (** global dims, for the Philox cell id *)
  gd1 : int;
}

type instr = st -> unit

(* Opcodes.  A quad is [op; dst; a; b]; [Select] carries a second quad
   [op_arg; 0; then_slot; else_slot] that the dispatch loop consumes
   together with the first. *)
let op_add = 0
let op_mul = 1
let op_div = 2
let op_mov = 3
let op_load = 4   (* dst <- datas.(a).(base + b) *)
let op_store = 5  (* datas.(a).(base + b) <- slots.(dst) *)
let op_coord = 6  (* dst <- (float coord_a + 0.5) * dx *)
let op_rand = 7   (* dst <- philox (cell, step, slot a) *)
let op_sqrt = 8
let op_exp = 9
let op_log = 10
let op_sin = 11
let op_cos = 12
let op_tanh = 13
let op_fabs = 14
let op_fmin = 15
let op_fmax = 16
let op_sellt = 17
let op_selle = 18
let op_arg = 19

let exec_tape (tape : int array) (st : st) =
  let v = st.slots in
  let n = Array.length tape in
  let i = ref 0 in
  while !i < n do
    let o = !i in
    let op = Array.unsafe_get tape o in
    let dst = Array.unsafe_get tape (o + 1) in
    let a = Array.unsafe_get tape (o + 2) in
    let b = Array.unsafe_get tape (o + 3) in
    (match op with
    | 0 -> Array.unsafe_set v dst (Array.unsafe_get v a +. Array.unsafe_get v b)
    | 1 -> Array.unsafe_set v dst (Array.unsafe_get v a *. Array.unsafe_get v b)
    | 2 -> Array.unsafe_set v dst (Array.unsafe_get v a /. Array.unsafe_get v b)
    | 3 -> Array.unsafe_set v dst (Array.unsafe_get v a)
    | 4 ->
      Array.unsafe_set v dst
        (Array.unsafe_get (Array.unsafe_get st.datas a) (st.base + b))
    | 5 ->
      Array.unsafe_set (Array.unsafe_get st.datas a) (st.base + b) (Array.unsafe_get v dst)
    | 6 ->
      let g = match a with 0 -> st.cx | 1 -> st.cy | _ -> st.cz in
      Array.unsafe_set v dst ((float_of_int g +. 0.5) *. st.dx)
    | 7 ->
      let cell = ((st.cz * st.gd1) + st.cy) * st.gd0 + st.cx in
      Array.unsafe_set v dst (Philox.symmetric ~cell ~step:st.step ~slot:a)
    | 8 -> Array.unsafe_set v dst (sqrt (Array.unsafe_get v a))
    | 9 -> Array.unsafe_set v dst (exp (Array.unsafe_get v a))
    | 10 -> Array.unsafe_set v dst (log (Array.unsafe_get v a))
    | 11 -> Array.unsafe_set v dst (sin (Array.unsafe_get v a))
    | 12 -> Array.unsafe_set v dst (cos (Array.unsafe_get v a))
    | 13 -> Array.unsafe_set v dst (tanh (Array.unsafe_get v a))
    | 14 -> Array.unsafe_set v dst (abs_float (Array.unsafe_get v a))
    | 15 ->
      Array.unsafe_set v dst (Expr.c_fmin (Array.unsafe_get v a) (Array.unsafe_get v b))
    | 16 ->
      Array.unsafe_set v dst (Expr.c_fmax (Array.unsafe_get v a) (Array.unsafe_get v b))
    | 17 ->
      let t = Array.unsafe_get tape (o + 6) and f = Array.unsafe_get tape (o + 7) in
      Array.unsafe_set v dst
        (if Array.unsafe_get v a < Array.unsafe_get v b then Array.unsafe_get v t
         else Array.unsafe_get v f);
      i := o + 4 (* consume the op_arg quad *)
    | 18 ->
      let t = Array.unsafe_get tape (o + 6) and f = Array.unsafe_get tape (o + 7) in
      Array.unsafe_set v dst
        (if Array.unsafe_get v a <= Array.unsafe_get v b then Array.unsafe_get v t
         else Array.unsafe_get v f);
      i := o + 4
    | _ -> ());
    i := !i + 4
  done

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type emitbuf = { mutable rev : int list; mutable len : int }

let push4 b op dst a c =
  b.rev <- c :: a :: dst :: op :: b.rev;
  b.len <- b.len + 4

(* Compile-time state.  Compilation runs in two passes over the same
   emitter: pass 1 with dummy slot bases only to count interned constants
   and the scratch high-water mark, pass 2 with the final layout.  Both
   passes traverse identically, so ordinals agree. *)
type cs = {
  const_tbl : (int64, int) Hashtbl.t;  (* float bits -> ordinal *)
  mutable rev_consts : float list;
  mutable n_consts : int;
  const_base : int;
  param_base : int;
  temp_base : int;
  scratch_base : int;
  mutable scratch : int;
  mutable max_scratch : int;
  param_tbl : (string, int) Hashtbl.t;
  temp_tbl : (string, int) Hashtbl.t;
  mutable fields : Fieldspec.t list;   (* operand table, first-use order *)
  stride : int array;
  comp_stride : int;
}

let const_slot cs x =
  let bits = Int64.bits_of_float x in
  match Hashtbl.find_opt cs.const_tbl bits with
  | Some i -> cs.const_base + i
  | None ->
    let i = cs.n_consts in
    Hashtbl.replace cs.const_tbl bits i;
    cs.rev_consts <- x :: cs.rev_consts;
    cs.n_consts <- i + 1;
    cs.const_base + i

let fresh cs =
  let s = cs.scratch in
  cs.scratch <- s + 1;
  if cs.scratch - cs.scratch_base > cs.max_scratch then
    cs.max_scratch <- cs.scratch - cs.scratch_base;
  s

let field_index cs (f : Fieldspec.t) =
  let rec go i = function
    | [] ->
      cs.fields <- cs.fields @ [ f ];
      i
    | g :: rest -> if Fieldspec.equal f g then i else go (i + 1) rest
  in
  go 0 cs.fields

(* Element delta of a relative access — [Buffer.access_delta] recomputed
   from (dims, ghost) alone, valid for every buffer of a block because all
   of them share padded dims (the shared-dims invariant). *)
let delta_of cs (a : Fieldspec.access) =
  let comp =
    if a.Fieldspec.face_axis >= 0 then
      (a.Fieldspec.component * a.Fieldspec.field.Fieldspec.dim) + a.Fieldspec.face_axis
    else a.Fieldspec.component
  in
  let d = ref (comp * cs.comp_stride) in
  Array.iteri (fun ax o -> d := !d + (o * cs.stride.(ax))) a.Fieldspec.offsets;
  !d

(* Emit code for [e]; the value ends up in the returned slot.  [?dst]
   requests that a compound root write its result directly into that slot
   (used so a temporary's defining instruction needs no trailing move);
   leaves ignore it and return their fixed slot. *)
let rec emit ?dst cs b (e : Expr.t) : int =
  let into () = match dst with Some s -> s | None -> fresh cs in
  let bin op x y =
    let sx = emit cs b x in
    let sy = emit cs b y in
    let d = into () in
    push4 b op d sx sy;
    d
  in
  (* left fold [acc op x1 op x2 ...] starting from slot [acc] — the
     interpreter's reference-cell fold for n-ary Add/Mul, same association *)
  let chain op acc xs =
    let rec go acc = function
      | [] -> acc
      | [ x ] ->
        let s = emit cs b x in
        let d = into () in
        push4 b op d acc s;
        d
      | x :: rest ->
        let s = emit cs b x in
        let d = fresh cs in
        push4 b op d acc s;
        go d rest
    in
    go acc xs
  in
  match e with
  | Expr.Num x -> const_slot cs x
  | Expr.Sym s -> (
    match Hashtbl.find_opt cs.temp_tbl s with
    | Some i -> cs.temp_base + i
    | None -> (
      match Hashtbl.find_opt cs.param_tbl s with
      | Some i -> cs.param_base + i
      | None -> invalid_arg ("Jit.compile: unbound symbol " ^ s)))
  | Expr.Coord d ->
    let dst = into () in
    push4 b op_coord dst d 0;
    dst
  | Expr.Access a ->
    let bi = field_index cs a.Fieldspec.field in
    let delta = delta_of cs a in
    let dst = into () in
    push4 b op_load dst bi delta;
    dst
  | Expr.Rand slot ->
    let dst = into () in
    push4 b op_rand dst slot 0;
    dst
  | Expr.Diff _ -> invalid_arg "Jit.compile: Diff survived discretization"
  | Expr.Add [ x; y ] -> bin op_add x y
  | Expr.Add [ x; y; z ] ->
    let sx = emit cs b x in
    let sy = emit cs b y in
    let t = fresh cs in
    push4 b op_add t sx sy;
    let sz = emit cs b z in
    let d = into () in
    push4 b op_add d t sz;
    d
  | Expr.Add xs -> chain op_add (const_slot cs 0.) xs
  | Expr.Mul [ x; y ] -> bin op_mul x y
  | Expr.Mul [ x; y; z ] ->
    let sx = emit cs b x in
    let sy = emit cs b y in
    let t = fresh cs in
    push4 b op_mul t sx sy;
    let sz = emit cs b z in
    let d = into () in
    push4 b op_mul d t sz;
    d
  | Expr.Mul xs -> chain op_mul (const_slot cs 1.) xs
  | Expr.Pow (x, 2) ->
    let s = emit cs b x in
    let d = into () in
    push4 b op_mul d s s;
    d
  | Expr.Pow (x, -1) ->
    let s = emit cs b x in
    let one = const_slot cs 1. in
    let d = into () in
    push4 b op_div d one s;
    d
  | Expr.Pow (x, -2) ->
    let s = emit cs b x in
    let t = fresh cs in
    push4 b op_mul t s s;
    let one = const_slot cs 1. in
    let d = into () in
    push4 b op_div d one t;
    d
  | Expr.Pow (x, n) ->
    (* the interpreter's repeated multiply: p = 1*v*v*...; negative
       exponents finish with 1/p *)
    let s = emit cs b x in
    let one = const_slot cs 1. in
    let m = abs n in
    let p = ref one in
    for k = 1 to m do
      let d = if k = m && n >= 0 then into () else fresh cs in
      push4 b op_mul d !p s;
      p := d
    done;
    if n < 0 then begin
      let d = into () in
      push4 b op_div d one !p;
      d
    end
    else !p
  | Expr.Fun (Expr.Rsqrt, [ x ]) ->
    let s = emit cs b x in
    let t = fresh cs in
    push4 b op_sqrt t s 0;
    let one = const_slot cs 1. in
    let d = into () in
    push4 b op_div d one t;
    d
  | Expr.Fun (f, [ x ]) ->
    let op =
      match f with
      | Expr.Sqrt -> op_sqrt
      | Expr.Exp -> op_exp
      | Expr.Log -> op_log
      | Expr.Sin -> op_sin
      | Expr.Cos -> op_cos
      | Expr.Fabs -> op_fabs
      | Expr.Tanh -> op_tanh
      | Expr.Rsqrt -> assert false
      | Expr.Fmin | Expr.Fmax -> invalid_arg "Jit.compile: unary min/max"
    in
    let s = emit cs b x in
    let d = into () in
    push4 b op d s 0;
    d
  | Expr.Fun (Expr.Fmin, [ x; y ]) -> bin op_fmin x y
  | Expr.Fun (Expr.Fmax, [ x; y ]) -> bin op_fmax x y
  | Expr.Fun _ -> invalid_arg "Jit.compile: bad function arity"
  | Expr.Select (cond, t, f) ->
    let ca, cb, opc =
      match cond with
      | Expr.Lt (x, y) ->
        let sx = emit cs b x in
        (sx, emit cs b y, op_sellt)
      | Expr.Le (x, y) ->
        let sx = emit cs b x in
        (sx, emit cs b y, op_selle)
    in
    let st_ = emit cs b t in
    let sf = emit cs b f in
    let d = into () in
    push4 b opc d ca cb;
    push4 b op_arg 0 st_ sf;
    d

(* One IR instruction -> one tape segment appended to [b].  Scratch slots
   are recycled across instructions (temporaries and constants have
   dedicated slots, so nothing live survives in scratch). *)
let emit_instruction cs b (a : Assignment.t) =
  cs.scratch <- cs.scratch_base;
  match a.Assignment.lhs with
  | Assignment.Temp s ->
    let slot = cs.temp_base + Hashtbl.find cs.temp_tbl s in
    let v = emit ~dst:slot cs b a.Assignment.rhs in
    if v <> slot then push4 b op_mov slot v 0
  | Assignment.Store acc ->
    let v = emit cs b a.Assignment.rhs in
    let bi = field_index cs acc.Fieldspec.field in
    push4 b op_store v bi (delta_of cs acc)

let tape_of cs instrs =
  let b = { rev = []; len = 0 } in
  List.iter (emit_instruction cs b) instrs;
  Array.of_list (List.rev b.rev)

(* ------------------------------------------------------------------ *)
(* Native code generation (tape -> OCaml source)                       *)
(* ------------------------------------------------------------------ *)

(* The tape caps out near 3 ns per quad: every operation pays dispatch
   plus two slot-array loads and a store.  For the big generated kernels
   (P1 phi-full is ~1100 quads per cell of almost pure add/mul) that is
   not enough headroom over the closure-compiled interpreter, so the
   default tier retranslates each tape into OCaml source in which every
   slot write becomes a fresh [let]-bound local — the SSA form ocamlopt
   register-allocates — and [Jit_native] compiles and dynlinks it.  The
   translation is quad-by-quad off the *same* tape, so evaluation order
   and therefore bits are identical to the tape tier by construction.

   Group protocol: one function per loop-depth group over the same state
   the tape sees, [slots datas base cx cy cz step dx gd0 gd1].  Within a
   group, slot reads bind the array element once and writes stay in
   locals; temporaries written by a non-body group are flushed back to
   the slot array at group end (deeper groups read them from there).
   The body group flushes nothing: nothing runs after it. *)

let native_sig =
  "float array -> float array array -> int -> int -> int -> int -> int -> float -> \
   int -> int -> unit"

type native_group =
  float array ->
  float array array ->
  int -> int -> int -> int -> int -> float -> int -> int -> unit

let float_lit x =
  if Float.is_nan x then "nan"
  else if x = infinity then "infinity"
  else if x = neg_infinity then "neg_infinity"
  else Printf.sprintf "(%h)" x

(* Exact replicas of the runtime helpers the generated module cannot
   link against: NaN-aware min/max (Expr.c_fmin/c_fmax) and the
   Philox-4x32-10 generator (Philox.symmetric) — same integer ops, same
   bits. *)
let helpers_prelude = {|
let c_fmin a b =
  if Float.is_nan a then b else if Float.is_nan b then a else if a <= b then a else b
let c_fmax a b =
  if Float.is_nan a then b else if Float.is_nan b then a else if a >= b then a else b
|}

let philox_prelude = {|
let mask32 = 0xFFFFFFFF
let mulhilo m x =
  let p = Int64.mul m (Int64.of_int (x land mask32)) in
  (Int64.to_int (Int64.shift_right_logical p 32) land mask32, Int64.to_int p land mask32)
let philox_symmetric cell step slot =
  let rec go n c0 c1 c2 c3 k0 k1 =
    if n = 0 then (c0, c1)
    else
      let hi0, lo0 = mulhilo 0xD2511F53L c0 in
      let hi1, lo1 = mulhilo 0xCD9E8D57L c2 in
      go (n - 1)
        (hi1 lxor c1 lxor k0) lo1 (hi0 lxor c3 lxor k1) lo0
        ((k0 + 0x9E3779B9) land mask32) ((k1 + 0xBB67AE85) land mask32)
  in
  let c0, c1 =
    go 10 (cell land mask32) ((cell lsr 32) land mask32) (step land mask32)
      (slot land mask32) 0x5eed 0xC0FFEE
  in
  let bits = ((c0 land mask32) lsl 21) lor ((c1 land mask32) lsr 11) in
  (2. *. (float_of_int bits /. 9007199254740992.0)) -. 1.
|}

(* One group function.  [cur] maps slot -> OCaml expression currently
   holding its value (a local name, or a literal for interned consts);
   [written] collects temp slots to flush on non-body groups. *)
let native_group_source buf ~name ~flush ~nc ~temp_base ~scratch_base ~template tape =
  let cur : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let written : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let dat : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let fresh =
    let k = ref 0 in
    fun () ->
      incr k;
      Printf.sprintf "v%d" !k
  in
  let line fmt = Printf.ksprintf (fun s -> Stdlib.Buffer.add_string buf ("  " ^ s ^ "\n")) fmt in
  Stdlib.Buffer.add_string buf
    (Printf.sprintf "let %s slots datas base cx cy cz step dx gd0 gd1 =\n" name);
  line "ignore slots; ignore datas; ignore base; ignore cx; ignore cy; ignore cz;";
  line "ignore step; ignore dx; ignore gd0; ignore gd1;";
  let read k =
    if k < nc then float_lit template.(k)
    else
      match Hashtbl.find_opt cur k with
      | Some e -> e
      | None ->
        let v = fresh () in
        line "let %s = Array.unsafe_get slots %d in" v k;
        Hashtbl.replace cur k v;
        v
  in
  let data bi =
    match Hashtbl.find_opt dat bi with
    | Some d -> d
    | None ->
      let d = Printf.sprintf "d%d" bi in
      line "let %s = Array.unsafe_get datas %d in" d bi;
      Hashtbl.replace dat bi d;
      d
  in
  let write k e =
    let v = fresh () in
    line "let %s = %s in" v e;
    Hashtbl.replace cur k v;
    if k >= temp_base && k < scratch_base then Hashtbl.replace written k ()
  in
  let n = Array.length tape in
  let i = ref 0 in
  while !i < n do
    let o = !i in
    let op = tape.(o) and dst = tape.(o + 1) and a = tape.(o + 2) and b = tape.(o + 3) in
    (match op with
    | 0 ->
      let x = read a in
      let y = read b in
      write dst (Printf.sprintf "%s +. %s" x y)
    | 1 ->
      let x = read a in
      let y = read b in
      write dst (Printf.sprintf "%s *. %s" x y)
    | 2 ->
      let x = read a in
      let y = read b in
      write dst (Printf.sprintf "%s /. %s" x y)
    | 3 ->
      (* mov: alias — locals are immutable, the expression stays valid *)
      let x = read a in
      Hashtbl.replace cur dst x;
      if dst >= temp_base && dst < scratch_base then Hashtbl.replace written dst ()
    | 4 -> write dst (Printf.sprintf "Array.unsafe_get %s (base + (%d))" (data a) b)
    | 5 ->
      let v = read dst in
      line "Array.unsafe_set %s (base + (%d)) %s;" (data a) b v
    | 6 ->
      let c = match a with 0 -> "cx" | 1 -> "cy" | _ -> "cz" in
      write dst (Printf.sprintf "(float_of_int %s +. 0.5) *. dx" c)
    | 7 ->
      write dst
        (Printf.sprintf "philox_symmetric ((((cz * gd1) + cy) * gd0) + cx) step %d" a)
    | 8 -> write dst (Printf.sprintf "sqrt %s" (read a))
    | 9 -> write dst (Printf.sprintf "exp %s" (read a))
    | 10 -> write dst (Printf.sprintf "log %s" (read a))
    | 11 -> write dst (Printf.sprintf "sin %s" (read a))
    | 12 -> write dst (Printf.sprintf "cos %s" (read a))
    | 13 -> write dst (Printf.sprintf "tanh %s" (read a))
    | 14 -> write dst (Printf.sprintf "abs_float %s" (read a))
    | 15 ->
      let x = read a in
      let y = read b in
      write dst (Printf.sprintf "c_fmin %s %s" x y)
    | 16 ->
      let x = read a in
      let y = read b in
      write dst (Printf.sprintf "c_fmax %s %s" x y)
    | 17 | 18 ->
      let x = read a in
      let y = read b in
      let t = read tape.(o + 6) in
      let f = read tape.(o + 7) in
      let cmp = if op = 17 then "<" else "<=" in
      write dst (Printf.sprintf "if %s %s %s then %s else %s" x cmp y t f);
      i := o + 4
    | _ -> ());
    i := !i + 4
  done;
  if flush then
    Hashtbl.iter
      (fun k () -> line "Array.unsafe_set slots %d %s;" k (Hashtbl.find cur k))
      written;
  line "()";
  Stdlib.Buffer.add_string buf "\n"

(** The complete generated module: helper preludes, one function per
    depth group, and an initializer that hands the closures to the host
    by raising through [Dynlink] (see [Jit_native]). *)
let native_source ~nc ~temp_base ~scratch_base ~template tapes =
  let buf = Stdlib.Buffer.create 65536 in
  Stdlib.Buffer.add_string buf "(* generated by Vm.Jit — compiled at runtime, never stored *)\n";
  Stdlib.Buffer.add_string buf (Printf.sprintf "exception Handoff of (%s) array\n" native_sig);
  Stdlib.Buffer.add_string buf helpers_prelude;
  let has_rand tape =
    let n = Array.length tape in
    let rec go i = i < n && (tape.(i) = op_rand || go (i + 4)) in
    go 0
  in
  if Array.exists has_rand tapes then Stdlib.Buffer.add_string buf philox_prelude;
  let body = Array.length tapes - 1 in
  Array.iteri
    (fun g tape ->
      native_group_source buf ~name:(Printf.sprintf "g%d" g) ~flush:(g < body) ~nc
        ~temp_base ~scratch_base ~template tape)
    tapes;
  Stdlib.Buffer.add_string buf
    (Printf.sprintf "let () = raise (Handoff [| %s |])\n"
       (String.concat "; " (List.init (Array.length tapes) (Printf.sprintf "g%d"))));
  Stdlib.Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Compiled programs                                                   *)
(* ------------------------------------------------------------------ *)

type compiled = {
  fingerprint : Digest.t;
  dim : int;
  loop_order : int array;
  fields : Fieldspec.t array;  (** operand table; index = [datas] index *)
  param_names : string array;
  param_base : int;
  n_slots : int;
  template : float array;      (** constants preloaded, rest zero *)
  groups : instr array;        (** depth-indexed: [groups.(d)] at depth d,
                                   [groups.(dim)] is the per-cell body *)
  n_ops : int;                 (** total tape quads, for introspection *)
  stride : int array;
  ghost : int;
  native : bool;               (** groups are dynlinked machine code *)
  native_note : string;        (** "native", or why the tape tier is in use *)
}

let wrap_native (f : native_group) : instr =
 fun st -> f st.slots st.datas st.base st.cx st.cy st.cz st.step st.dx st.gd0 st.gd1

let compile ~fingerprint ~dims ~ghost (kernel : Ir.Kernel.t) (lowered : Ir.Lower.t) =
  let dim = kernel.Ir.Kernel.dim in
  let padded = Array.map (fun n -> n + (2 * ghost)) dims in
  let stride = Array.make dim 1 in
  for d = 1 to dim - 1 do
    stride.(d) <- stride.(d - 1) * padded.(d - 1)
  done;
  let comp_stride = stride.(dim - 1) * padded.(dim - 1) in
  let temps = Assignment.defined_temps kernel.Ir.Kernel.body in
  let params = Ir.Kernel.parameters kernel in
  let np = List.length params and nt = List.length temps in
  let groups_src = Ir.Lower.groups lowered in
  let make_cs ~const_base ~param_base ~temp_base ~scratch_base =
    let param_tbl = Hashtbl.create 16 and temp_tbl = Hashtbl.create 64 in
    List.iteri (fun i s -> Hashtbl.replace param_tbl s i) params;
    List.iteri (fun i s -> Hashtbl.replace temp_tbl s i) temps;
    {
      const_tbl = Hashtbl.create 32;
      rev_consts = [];
      n_consts = 0;
      const_base;
      param_base;
      temp_base;
      scratch_base;
      scratch = scratch_base;
      max_scratch = 0;
      param_tbl;
      temp_tbl;
      fields = [];
      stride;
      comp_stride;
    }
  in
  (* pass 1: layout discovery only *)
  let cs1 = make_cs ~const_base:0 ~param_base:0 ~temp_base:0 ~scratch_base:0 in
  Array.iter (fun instrs -> ignore (tape_of cs1 instrs)) groups_src;
  let nc = cs1.n_consts in
  let cs = make_cs ~const_base:0 ~param_base:nc ~temp_base:(nc + np)
      ~scratch_base:(nc + np + nt)
  in
  let tapes = Array.map (tape_of cs) groups_src in
  assert (cs.n_consts = nc);
  let n_slots = max 1 (nc + np + nt + cs.max_scratch) in
  let template = Array.make n_slots 0. in
  List.iteri (fun i x -> template.(nc - 1 - i) <- x) cs.rev_consts;
  (* native tier: same tapes, retranslated to let-bound OCaml and
     dynlinked; any failure keeps the portable tape closures *)
  let native_fns =
    if not (Jit_native.available ()) then Error "native tier unavailable"
    else
      let source =
        native_source ~nc ~temp_base:(nc + np) ~scratch_base:(nc + np + nt) ~template
          tapes
      in
      match Jit_native.load ~modname:(Jit_native.fresh_modname ()) ~source with
      | Ok payload ->
        let fns : native_group array = Obj.magic payload in
        if Array.length fns = Array.length tapes then Ok fns
        else Error "native tier: group count mismatch"
      | Error reason -> Error reason
  in
  let groups, native, native_note =
    match native_fns with
    | Ok fns -> (Array.map wrap_native fns, true, "native")
    | Error note -> (Array.map (fun tape -> fun st -> exec_tape tape st) tapes, false, note)
  in
  {
    fingerprint;
    dim;
    loop_order = lowered.Ir.Lower.loop_order;
    fields = Array.of_list cs.fields;
    param_names = Array.of_list params;
    param_base = nc;
    n_slots;
    template;
    groups;
    n_ops = Array.fold_left (fun acc t -> acc + (Array.length t / 4)) 0 tapes;
    stride;
    ghost;
    native;
    native_note;
  }

(* ------------------------------------------------------------------ *)
(* Memo table                                                          *)
(* ------------------------------------------------------------------ *)

(* Structural fingerprint over everything the emitted code closes over:
   the full kernel body plus loop order, interior dims and ghost width.
   The body is digested via [Marshal] (the [Snapshot.fingerprint_of_params]
   idiom) rather than [Hashtbl.hash_param]: the hash traversal budget
   truncates large kernels, and model variants that differ only deep in
   the expression tree — the zoo's coefficient variants, for one — would
   collide and hand a program compiled for a *different* model back to
   the engine (bitwise divergence, caught by the oracle-8 zoo leg). *)
let fingerprint ~dims ~ghost (kernel : Ir.Kernel.t) (lowered : Ir.Lower.t) =
  Digest.string
    (Marshal.to_string
       ( kernel.Ir.Kernel.name,
         kernel.Ir.Kernel.dim,
         kernel.Ir.Kernel.ghost,
         kernel.Ir.Kernel.body,
         Array.to_list lowered.Ir.Lower.loop_order,
         Array.to_list dims,
         ghost )
       [])

let cache : (Digest.t, compiled) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let misses = ref 0

let cache_stats () = (!hits, !misses)

let clear_cache () =
  Hashtbl.reset cache;
  hits := 0;
  misses := 0

(* jit.* counters only fire when the sink is armed, so a disabled run
   registers no metrics (the disabled-sink silence invariant). *)
let count name = if Obs.Sink.enabled () then Obs.Metrics.incr (Obs.Metrics.counter name)

(** The compiled program for [kernel] on a block of [dims]/[ghost] —
    memoized; the engine calls this once per sweep, so [cache_stats]
    misses count compilations and hits count reused sweeps (the
    zero-recompile-after-warmup gate watches the miss count). *)
let get ~dims ~ghost (kernel : Ir.Kernel.t) (lowered : Ir.Lower.t) =
  let fp = fingerprint ~dims ~ghost kernel lowered in
  match Hashtbl.find_opt cache fp with
  | Some c ->
    incr hits;
    count "jit.hit";
    c
  | None ->
    incr misses;
    count "jit.miss";
    let build () = compile ~fingerprint:fp ~dims ~ghost kernel lowered in
    let c =
      if Obs.Sink.enabled () then Obs.Span.with_ ~cat:"vm" "vm.jit.compile" build
      else build ()
    in
    Hashtbl.replace cache fp c;
    c

(* ------------------------------------------------------------------ *)
(* Tile execution                                                      *)
(* ------------------------------------------------------------------ *)

let run_group (g : instr) st = g st

let base_index (c : compiled) coords =
  let idx = ref 0 in
  Array.iteri (fun d x -> idx := !idx + ((x + c.ghost) * c.stride.(d))) coords;
  !idx

(* The sweep skeletons mirror Engine.sweep_tile_3d/2d instruction for
   instruction: same loop order, same coordinate updates, same running
   base index.  [lo]/[hi] are inclusive loop-depth bounds. *)
let sweep3 (c : compiled) (st : st) ~offset ~(lo : int array) ~(hi : int array) =
  let a0 = c.loop_order.(0) and a1 = c.loop_order.(1) and a2 = c.loop_order.(2) in
  let g1 = c.groups.(1) and g2 = c.groups.(2) and body = c.groups.(3) in
  let stride2 = c.stride.(a2) in
  let coords = Array.make 3 0 in
  let set_coord ax v =
    coords.(ax) <- v;
    let g = v + offset.(ax) in
    match ax with 0 -> st.cx <- g | 1 -> st.cy <- g | _ -> st.cz <- g
  in
  for i0 = lo.(0) to hi.(0) do
    set_coord a0 i0;
    run_group g1 st;
    for i1 = lo.(1) to hi.(1) do
      set_coord a1 i1;
      run_group g2 st;
      set_coord a2 lo.(2);
      st.base <- base_index c coords;
      for i2 = lo.(2) to hi.(2) do
        set_coord a2 i2;
        run_group body st;
        st.base <- st.base + stride2
      done
    done
  done

let sweep2 (c : compiled) (st : st) ~offset ~(lo : int array) ~(hi : int array) =
  let a0 = c.loop_order.(0) and a1 = c.loop_order.(1) in
  let g1 = c.groups.(1) and body = c.groups.(2) in
  let stride1 = c.stride.(a1) in
  let coords = Array.make 2 0 in
  let set_coord ax v =
    coords.(ax) <- v;
    let g = v + offset.(ax) in
    match ax with 0 -> st.cx <- g | _ -> st.cy <- g
  in
  for i0 = lo.(0) to hi.(0) do
    set_coord a0 i0;
    run_group g1 st;
    set_coord a1 lo.(1);
    st.base <- base_index c coords;
    for i1 = lo.(1) to hi.(1) do
      set_coord a1 i1;
      run_group body st;
      st.base <- st.base + stride1
    done
  done

(** Execute one tile of the sweep.  [datas] is the per-sweep field storage
    table aligned with [compiled.fields] (resolved by the engine after any
    buffer swaps); [pvals] the parameter values in [param_names] order.
    Every tile runs on a fresh slot array, so pooled tiles share nothing
    but the (disjointly written) field storage. *)
let exec_tile (c : compiled) ~(datas : float array array) ~(pvals : float array) ~dx
    ~(offset : int array) ~(global_dims : int array) ~step ~lo ~hi =
  let slots = Array.copy c.template in
  Array.iteri (fun i v -> slots.(c.param_base + i) <- v) pvals;
  let st =
    {
      slots;
      datas;
      base = 0;
      cx = 0;
      cy = 0;
      cz = 0;
      step;
      dx;
      gd0 = global_dims.(0);
      gd1 = (if Array.length global_dims > 1 then global_dims.(1) else 1);
    }
  in
  run_group c.groups.(0) st;
  if c.dim = 3 then sweep3 c st ~offset ~lo ~hi else sweep2 c st ~offset ~lo ~hi
