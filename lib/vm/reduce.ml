(** Deterministic hierarchical reductions over field buffers.

    Floating-point combination is not associative, so a scalar folded in
    scheduler completion order would break the bitwise-determinism
    contract the differential oracles enforce for fields.  This module
    fixes the combination topology instead of the execution order: every
    reduction is the value of one {e canonical binary tree} over the
    global linear cell index [0, n) (axis 0 fastest — the buffer layout
    order), where node [\[lo, hi)] always splits at [lo + (hi - lo) / 2]
    down to single-cell leaves.  Each canonical node therefore has one
    well-defined value, independent of who computes it.

    An executor — a tile on a pool lane, a block of a forest, a simulated
    rank — owns some set of cells.  Every contiguous run of its cells
    (one row of a tile) decomposes into O(log n) {e maximal} canonical
    nodes; the executor evaluates those node values locally with the same
    fixed tree fold ({!segment}) and publishes them as a {!partial}.
    Partials merge by node key, never by arrival order, and {!assemble}
    recombines children bottom-up into the root value.  Because every
    combination the tree performs is between two uniquely-determined node
    values, the result is bitwise identical for any tile shape, domain
    count, steal pattern, rank decomposition and backend — the Petalisp
    [preduce] idiom applied to the flat cell index.

    Min/max use the C99 [fmin]/[fmax] NaN semantics ([Expr.c_fmin]): a
    NaN operand yields the other operand, so an all-NaN reduction is NaN
    and a mixed one ignores the NaNs.  The empty reduction is the
    identity: 0 for sums, NaN for min/max. *)

open Symbolic

type op = Sum | Min | Max

let identity = function Sum -> 0. | Min | Max -> Float.nan

let comb op a b =
  match op with
  | Sum -> a +. b
  | Min -> Expr.c_fmin a b
  | Max -> Expr.c_fmax a b

let op_label = function Sum -> "sum" | Min -> "min" | Max -> "max"

(** One canonical-tree node [\[lo, hi)] carrying its reduced value. *)
type node = { nlo : int; nhi : int; v : float }

(** A set of canonical nodes computed by one executor.  Nodes of partials
    that are merged together must cover disjoint cell sets (so node keys
    never collide with different values). *)
type partial = node list

(** Value of the canonical node [\[lo, hi)], evaluating leaves with [f]
    (called with the global linear cell index) and combining with the
    fixed midpoint tree — {e the} accumulation order of the contract. *)
let rec eval_node f op lo hi =
  if hi - lo = 1 then f lo
  else begin
    let mid = lo + ((hi - lo) / 2) in
    (* bind left before right: leaf evaluation order (and therefore any
       side effect of [f], like a poisoned cell raising) is deterministic *)
    let left = eval_node f op lo mid in
    let right = eval_node f op mid hi in
    comb op left right
  end

(* Maximal canonical nodes of the tree over [lo, hi) covering the segment
   [a, b) (assumed inside [lo, hi)), prepended to [acc] in ascending
   position order. *)
let rec decompose lo hi a b acc =
  if a >= b then acc
  else if a = lo && b = hi then (lo, hi) :: acc
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let acc = if b > mid then decompose mid hi (max a mid) b acc else acc in
    if a < mid then decompose lo mid a (min b mid) acc else acc
  end

(** Reduce one contiguous index segment [a, b) of the space [0, n): the
    partial holds one evaluated node per maximal canonical node. *)
let segment ~n f op a b : partial =
  List.map
    (fun (lo, hi) -> { nlo = lo; nhi = hi; v = eval_node f op lo hi })
    (decompose 0 n a b [])

(** Root value [\[0, n)] from partials that together cover every cell
    exactly once.  Children found in the merged table stop the recursion,
    so no leaf is ever re-read; a missing leaf is a coverage bug and
    raises. *)
let assemble ~n op (ps : partial list) =
  if n <= 0 then identity op
  else begin
    let tbl = Hashtbl.create 256 in
    List.iter (List.iter (fun nd -> Hashtbl.replace tbl (nd.nlo, nd.nhi) nd.v)) ps;
    let rec value lo hi =
      match Hashtbl.find_opt tbl (lo, hi) with
      | Some v -> v
      | None ->
        if hi - lo <= 1 then
          invalid_arg
            (Printf.sprintf "Reduce.assemble: cell %d not covered by any partial" lo)
        else begin
          let mid = lo + ((hi - lo) / 2) in
          let left = value lo mid in
          let right = value mid hi in
          comb op left right
        end
    in
    value 0 n
  end

(* ------------------------------------------------------------------ *)
(* Wire codec (cross-rank combination rides Mpisim float payloads)     *)
(* ------------------------------------------------------------------ *)

(** Flatten a partial to [lo; hi; v] float triples.  Node bounds are cell
    counts, exact in a double far beyond any grid this repo addresses. *)
let encode (p : partial) =
  let a = Array.make (3 * List.length p) 0. in
  List.iteri
    (fun i nd ->
      a.((3 * i) + 0) <- float_of_int nd.nlo;
      a.((3 * i) + 1) <- float_of_int nd.nhi;
      a.((3 * i) + 2) <- nd.v)
    p;
  a

let decode a : partial =
  if Array.length a mod 3 <> 0 then invalid_arg "Reduce.decode: payload not triples";
  List.init (Array.length a / 3) (fun i ->
      {
        nlo = int_of_float a.((3 * i) + 0);
        nhi = int_of_float a.((3 * i) + 1);
        v = a.((3 * i) + 2);
      })

(* ------------------------------------------------------------------ *)
(* Per-cell quantities                                                 *)
(* ------------------------------------------------------------------ *)

(** Interface detector band: a cell is an interface cell when any phase
    component lies strictly inside (0.01, 0.99) — the same band
    [Simulation.interface_fraction] always used. *)
let interface_lo = 0.01

let interface_hi = 0.99

(** What is reduced at each cell: one stored component, the 0/1 interface
    indicator over all components of the field, or an arbitrary function
    of the {e global} cell coordinates (test hook — the oracle battery
    injects NaN patterns and poisoned cells through it). *)
type cellfn =
  | Component of int
  | Interface
  | Custom of (int array -> float)

let cellfn_label = function
  | Component c -> Printf.sprintf "c%d" c
  | Interface -> "interface"
  | Custom _ -> "custom"

(* ------------------------------------------------------------------ *)
(* Tiled block reduction (the Engine/Pool/Schedule hook consumer)      *)
(* ------------------------------------------------------------------ *)

(** Global linear index (axis 0 fastest) of global coordinates. *)
let global_index gdims g =
  let idx = ref 0 in
  for d = Array.length gdims - 1 downto 0 do
    idx := (!idx * gdims.(d)) + g.(d)
  done;
  !idx

let total_cells gdims = Array.fold_left ( * ) 1 gdims

let cells_counter = Obs.Metrics.counter "reduce.cells"

(** Partial of one block's interior over the global index space described
    by [block.global_dims]/[block.offset].  The sweep is tiled with the
    same loop-depth [tile] shape the kernels use (default: outermost-loop
    slices at [2 * num_domains]) and executed through the persistent pool
    via {!Pool.collect}; each tile folds its rows into canonical nodes
    through {!Schedule.iter_rows}, so the published nodes — and therefore
    the assembled scalar — are independent of tiling and lane schedule by
    construction.  [backend] selects the {!Engine.cell_reader} path. *)
let block_partial ?(backend = Engine.default_backend ())
    ?(num_domains = Pool.default_domains ()) ?tile (block : Engine.block)
    (field : Fieldspec.t) cellfn op : partial =
  let dims = block.Engine.dims in
  let dim = Array.length dims in
  let gdims = block.Engine.global_dims in
  let offset = block.Engine.offset in
  let n = total_cells gdims in
  let interior = Array.fold_left ( * ) 1 dims in
  if interior = 0 then []
  else begin
    let ranges = Array.init dim (fun depth -> (0, dims.(dim - 1 - depth) - 1)) in
    let shape =
      match tile with
      | Some s -> Some s
      | None when num_domains <= 1 -> None
      | None ->
        let s = Array.make dim 0 in
        let n0 = dims.(dim - 1) in
        s.(0) <- max 1 ((n0 + (2 * num_domains) - 1) / (2 * num_domains));
        Some s
    in
    let tiles = Schedule.make ~ranges ?shape () in
    let components =
      match cellfn with
      | Interface -> (Engine.buffer block field).Buffer.components
      | Component _ | Custom _ -> 0
    in
    let tile_partial ti =
      let t = tiles.(ti) in
      (* per-tile scratch: lanes never share coordinate arrays *)
      let lc = Array.make dim 0 in
      let gc = Array.make dim 0 in
      let cellv =
        match cellfn with
        | Component c ->
          let read = Engine.cell_reader ~component:c ~backend block field in
          fun () -> read lc
        | Interface ->
          let readers =
            Array.init components (fun c ->
                Engine.cell_reader ~component:c ~backend block field)
          in
          fun () ->
            let hit = ref false in
            for c = 0 to components - 1 do
              let v = readers.(c) lc in
              if v > interface_lo && v < interface_hi then hit := true
            done;
            if !hit then 1. else 0.
        | Custom f -> fun () -> f gc
      in
      let acc = ref [] in
      Schedule.iter_rows t (fun outer (xlo, xhi) ->
          for depth = 0 to dim - 2 do
            let axis = dim - 1 - depth in
            lc.(axis) <- outer.(depth);
            gc.(axis) <- outer.(depth) + offset.(axis)
          done;
          lc.(0) <- xlo;
          gc.(0) <- xlo + offset.(0);
          let a = global_index gdims gc in
          let b = a + (xhi - xlo + 1) in
          let f gi =
            lc.(0) <- xlo + (gi - a);
            gc.(0) <- lc.(0) + offset.(0);
            cellv ()
          in
          acc := segment ~n f op a b @ !acc);
      !acc
    in
    let name =
      Printf.sprintf "reduce:%s.%s.%s" field.Fieldspec.name (op_label op)
        (cellfn_label cellfn)
    in
    let wrap lane f =
      if not (Obs.Sink.enabled ()) then f ()
      else Obs.Span.with_ ~cat:"reduce" ~tid:lane ("slice:" ^ name) f
    in
    let run () =
      let parts =
        Pool.collect ~wrap ~domains:num_domains ~ntiles:(Array.length tiles)
          (fun ~lane:_ ti -> tile_partial ti)
      in
      Obs.Metrics.add cells_counter interior;
      List.concat (Array.to_list parts)
    in
    if not (Obs.Sink.enabled ()) then run ()
    else Obs.Span.with_ ~cat:"reduce" name run
  end

(** Scalar over a block that owns the whole global domain — the serial
    single-block entry and the reference the oracle battery compares
    every other executor against (with [num_domains:1], no [tile]). *)
let scalar ?backend ?num_domains ?tile (block : Engine.block) field cellfn op =
  let n = total_cells block.Engine.global_dims in
  assemble ~n op [ block_partial ?backend ?num_domains ?tile block field cellfn op ]
