(** Kernel execution engine.

    Compiles the post-optimization assignment list — the *same* IR the C
    backend prints — into closures over flat float arrays and sweeps it over
    a block, honoring the lowering result (loop order, hoisted loop-invariant
    assignments).  Multicore execution slices the outermost loop across
    OCaml domains, mirroring the generated code's OpenMP parallelization. *)

open Symbolic
open Field

type ctx = {
  params : float array;
  temps : float array;
  mutable base : int;       (** linear index of the current cell *)
  mutable cx : int;         (** global cell coordinates *)
  mutable cy : int;
  mutable cz : int;
  mutable step : int;       (** time step, keys the Philox streams *)
  mutable dx : float;
  global_dims : int array;
}

(** A block: the local piece of the domain one rank owns, with one buffer
    per field.  All buffers share dims and ghost width. *)
type block = {
  dims : int array;
  ghost : int;
  global_dims : int array;
  offset : int array;  (** global coordinate of local cell (0,..,0) *)
  buffers : (Fieldspec.t * Buffer.t) list;
}

let make_block ?(ghost = 2) ?alloc ?global_dims ?offset ~dims fields =
  let dim = Array.length dims in
  let global_dims = Option.value global_dims ~default:(Array.copy dims) in
  let offset = Option.value offset ~default:(Array.make dim 0) in
  let buffers = List.map (fun f -> (f, Buffer.create ~ghost ?alloc f dims)) fields in
  { dims; ghost; global_dims; offset; buffers }

let buffer block (f : Fieldspec.t) =
  match List.find_opt (fun (g, _) -> Fieldspec.equal f g) block.buffers with
  | Some (_, b) -> b
  | None -> invalid_arg ("Engine.buffer: no buffer for field " ^ f.Fieldspec.name)

(* ------------------------------------------------------------------ *)
(* Backend selection                                                   *)
(* ------------------------------------------------------------------ *)

(** How sweeps execute: [Interp] walks the closure tree built by [bind]
    (the reference semantics); [Jit] runs the tape program compiled by
    {!Jit} — bitwise identical by contract, held to it by oracle 8. *)
type backend = Interp | Jit

let backend_label = function Interp -> "interp" | Jit -> "jit"

let backend_of_string = function
  | "interp" | "interpreter" -> Some Interp
  | "jit" -> Some Jit
  | _ -> None

(** The process default, from [PFGEN_VM_BACKEND] (unset = interpreter). *)
let default_backend () =
  match Sys.getenv_opt "PFGEN_VM_BACKEND" with
  | None -> Interp
  | Some s -> (
    match backend_of_string s with
    | Some b -> b
    | None -> invalid_arg ("PFGEN_VM_BACKEND: unknown backend " ^ s))

(** Per-cell field reader for the reduction layer ([Vm.Reduce]): [Interp]
    goes through [Buffer.get] (the bounds-checked reference path); [Jit]
    uses the precomputed base/stride flat addressing the compiled tape
    uses.  Both return the identical stored bits — a reduction only ever
    combines them in its canonical tree order, so the backends cannot
    diverge.  The reader is valid until the next buffer [swap]. *)
let cell_reader ?(component = 0) ~backend block (f : Fieldspec.t) =
  let buf = buffer block f in
  match backend with
  | Interp -> fun coords -> Buffer.get buf ~component coords
  | Jit ->
    let data = buf.Buffer.data in
    let stride = buf.Buffer.stride in
    let ghost = buf.Buffer.ghost in
    let cbase = component * buf.Buffer.comp_stride in
    fun coords ->
      let idx = ref cbase in
      for d = 0 to Array.length coords - 1 do
        idx := !idx + ((coords.(d) + ghost) * stride.(d))
      done;
      Array.unsafe_get data !idx

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

type binder = {
  param_slot : string -> int option;
  temp_slot : string -> int option;
  resolve : Fieldspec.access -> Buffer.t * int;  (* buffer, element delta *)
}

let rec compile (b : binder) (e : Expr.t) : ctx -> float =
  match e with
  | Expr.Num x -> fun _ -> x
  | Expr.Sym s -> (
    match b.temp_slot s with
    | Some i -> fun c -> Array.unsafe_get c.temps i
    | None -> (
      match b.param_slot s with
      | Some i -> fun c -> Array.unsafe_get c.params i
      | None -> invalid_arg ("Engine.compile: unbound symbol " ^ s)))
  | Expr.Coord d ->
    let pick : ctx -> int =
      match d with 0 -> (fun c -> c.cx) | 1 -> (fun c -> c.cy) | _ -> fun c -> c.cz
    in
    fun c -> (float_of_int (pick c) +. 0.5) *. c.dx
  | Expr.Access a ->
    let buf, delta = b.resolve a in
    fun c -> Array.unsafe_get buf.Buffer.data (c.base + delta)
  | Expr.Rand slot ->
    fun c ->
      let cell = ((c.cz * c.global_dims.(1)) + c.cy) * c.global_dims.(0) + c.cx in
      Philox.symmetric ~cell ~step:c.step ~slot
  | Expr.Diff _ -> invalid_arg "Engine.compile: Diff survived discretization"
  | Expr.Add [ x; y ] ->
    let fx = compile b x and fy = compile b y in
    fun c -> fx c +. fy c
  | Expr.Add [ x; y; z ] ->
    let fx = compile b x and fy = compile b y and fz = compile b z in
    fun c -> fx c +. fy c +. fz c
  | Expr.Add xs ->
    let fs = Array.of_list (List.map (compile b) xs) in
    fun c ->
      let acc = ref 0. in
      for i = 0 to Array.length fs - 1 do
        acc := !acc +. (Array.unsafe_get fs i) c
      done;
      !acc
  | Expr.Mul [ x; y ] ->
    let fx = compile b x and fy = compile b y in
    fun c -> fx c *. fy c
  | Expr.Mul [ x; y; z ] ->
    let fx = compile b x and fy = compile b y and fz = compile b z in
    fun c -> fx c *. fy c *. fz c
  | Expr.Mul xs ->
    let fs = Array.of_list (List.map (compile b) xs) in
    fun c ->
      let acc = ref 1. in
      for i = 0 to Array.length fs - 1 do
        acc := !acc *. (Array.unsafe_get fs i) c
      done;
      !acc
  | Expr.Pow (x, 2) ->
    let fx = compile b x in
    fun c ->
      let v = fx c in
      v *. v
  | Expr.Pow (x, -1) ->
    let fx = compile b x in
    fun c -> 1. /. fx c
  | Expr.Pow (x, -2) ->
    let fx = compile b x in
    fun c ->
      let v = fx c in
      1. /. (v *. v)
  | Expr.Pow (x, n) ->
    let fx = compile b x in
    let m = abs n in
    fun c ->
      let v = fx c in
      let rec go acc k = if k = 0 then acc else go (acc *. v) (k - 1) in
      let p = go 1. m in
      if n < 0 then 1. /. p else p
  | Expr.Fun (f, [ x ]) ->
    let fx = compile b x in
    let g : float -> float =
      match f with
      | Expr.Sqrt -> sqrt
      | Expr.Rsqrt -> fun v -> 1. /. sqrt v
      | Expr.Exp -> exp
      | Expr.Log -> log
      | Expr.Sin -> sin
      | Expr.Cos -> cos
      | Expr.Tanh -> tanh
      | Expr.Fabs -> abs_float
      | Expr.Fmin | Expr.Fmax -> invalid_arg "Engine.compile: unary min/max"
    in
    fun c -> g (fx c)
  | Expr.Fun (Expr.Fmin, [ x; y ]) ->
    let fx = compile b x and fy = compile b y in
    fun c -> Expr.c_fmin (fx c) (fy c)
  | Expr.Fun (Expr.Fmax, [ x; y ]) ->
    let fx = compile b x and fy = compile b y in
    fun c -> Expr.c_fmax (fx c) (fy c)
  | Expr.Fun _ -> invalid_arg "Engine.compile: bad function arity"
  | Expr.Select (cond, t, f) ->
    let ft = compile b t and ff = compile b f in
    let test : ctx -> bool =
      match cond with
      | Expr.Lt (x, y) ->
        let fx = compile b x and fy = compile b y in
        fun c -> fx c < fy c
      | Expr.Le (x, y) ->
        let fx = compile b x and fy = compile b y in
        fun c -> fx c <= fy c
    in
    fun c -> if test c then ft c else ff c

(* ------------------------------------------------------------------ *)
(* Kernel binding                                                      *)
(* ------------------------------------------------------------------ *)

type bound = {
  kernel : Ir.Kernel.t;
  lowered : Ir.Lower.t;
  block : block;
  param_names : string array;
  n_temps : int;
  preheader : (ctx -> unit) array;        (* depth 0 *)
  per_loop : (ctx -> unit) array array;   (* depth 1 .. dim-1 *)
  body : (ctx -> unit) array;
  uses_rand : bool;
}

let compile_assignment binder (a : Assignment.t) : ctx -> unit =
  let rhs = compile binder a.rhs in
  match a.lhs with
  | Assignment.Temp s -> (
    match binder.temp_slot s with
    | Some i -> fun c -> Array.unsafe_set c.temps i (rhs c)
    | None -> assert false)
  | Assignment.Store acc ->
    let buf, delta = binder.resolve acc in
    fun c -> Array.unsafe_set buf.Buffer.data (c.base + delta) (rhs c)

let bind ?(fastest = 0) (kernel : Ir.Kernel.t) (block : block) =
  let required =
    match kernel.Ir.Kernel.iteration with
    | Ir.Kernel.CellSweep -> kernel.Ir.Kernel.ghost
    | Ir.Kernel.StaggeredSweep axes ->
      (* The sweep covers one extra upper layer along the staggered axes
         (face n is the upper face of the last interior cell), so only
         upper-side reads there shift by one; the sweep still starts at
         cell 0, so lower-side reads keep their plain extent. *)
      List.fold_left
        (fun req (a : Symbolic.Fieldspec.access) ->
          let r = ref req in
          Array.iteri
            (fun d o ->
              let need = if o >= 0 then o + (if List.mem d axes then 1 else 0) else -o in
              if need > !r then r := need)
            a.Symbolic.Fieldspec.offsets;
          !r)
        0
        (Ir.Kernel.loads kernel)
  in
  if required > block.ghost then
    invalid_arg
      (Printf.sprintf "Engine.bind: kernel %s needs ghost %d, block has %d"
         kernel.Ir.Kernel.name required block.ghost);
  let lowered = Ir.Lower.run ~fastest kernel in
  let temps = Assignment.defined_temps kernel.Ir.Kernel.body in
  let temp_table = Hashtbl.create 64 in
  List.iteri (fun i s -> Hashtbl.replace temp_table s i) temps;
  let params = Ir.Kernel.parameters kernel in
  let param_table = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.replace param_table s i) params;
  let binder =
    {
      param_slot = Hashtbl.find_opt param_table;
      temp_slot = Hashtbl.find_opt temp_table;
      resolve =
        (fun a ->
          let buf = buffer block a.Fieldspec.field in
          (buf, Buffer.access_delta buf a));
    }
  in
  let compile_list l = Array.of_list (List.map (compile_assignment binder) l) in
  let dim = kernel.Ir.Kernel.dim in
  let groups = Ir.Lower.groups lowered in
  let uses_rand =
    List.exists
      (fun (a : Assignment.t) ->
        Expr.fold (fun u n -> u || match n with Expr.Rand _ -> true | _ -> false) false a.rhs)
      kernel.Ir.Kernel.body
  in
  {
    kernel;
    lowered;
    block;
    param_names = Array.of_list params;
    n_temps = List.length temps;
    preheader = compile_list groups.(0);
    per_loop = Array.init (dim - 1) (fun i -> compile_list groups.(i + 1));
    body = compile_list groups.(dim);
    uses_rand;
  }

let run_group g c =
  for i = 0 to Array.length g - 1 do
    (Array.unsafe_get g i) c
  done

(* Sweep one tile (3D): [lo]/[hi] are inclusive loop bounds indexed by loop
   depth, following the lowering's loop_order.  A full sweep is the single
   tile spanning every range; cache blocking shrinks the outer depths. *)
let sweep_tile_3d (b : bound) (c : ctx) ~(lo : int array) ~(hi : int array) =
  let order = b.lowered.Ir.Lower.loop_order in
  let a0 = order.(0) and a1 = order.(1) and a2 = order.(2) in
  let block = b.block in
  let any_buf = snd (List.hd block.buffers) in
  let stride = any_buf.Buffer.stride in
  let coords = Array.make 3 0 in
  let set_coord ax v =
    coords.(ax) <- v;
    let g = v + block.offset.(ax) in
    match ax with 0 -> c.cx <- g | 1 -> c.cy <- g | _ -> c.cz <- g
  in
  for i0 = lo.(0) to hi.(0) do
    set_coord a0 i0;
    run_group b.per_loop.(0) c;
    for i1 = lo.(1) to hi.(1) do
      set_coord a1 i1;
      run_group b.per_loop.(1) c;
      set_coord a2 lo.(2);
      c.base <- Buffer.base_index any_buf coords;
      for i2 = lo.(2) to hi.(2) do
        set_coord a2 i2;
        run_group b.body c;
        c.base <- c.base + stride.(a2)
      done
    done
  done

let sweep_tile_2d (b : bound) (c : ctx) ~(lo : int array) ~(hi : int array) =
  let order = b.lowered.Ir.Lower.loop_order in
  let a0 = order.(0) and a1 = order.(1) in
  let block = b.block in
  let any_buf = snd (List.hd block.buffers) in
  let stride = any_buf.Buffer.stride in
  let coords = Array.make 2 0 in
  let set_coord ax v =
    coords.(ax) <- v;
    let g = v + block.offset.(ax) in
    match ax with 0 -> c.cx <- g | _ -> c.cy <- g
  in
  for i0 = lo.(0) to hi.(0) do
    set_coord a0 i0;
    run_group b.per_loop.(0) c;
    set_coord a1 lo.(1);
    c.base <- Buffer.base_index any_buf coords;
    for i1 = lo.(1) to hi.(1) do
      set_coord a1 i1;
      run_group b.body c;
      c.base <- c.base + stride.(a1)
    done
  done

let make_ctx (b : bound) ~params ~step =
  let values =
    Array.map
      (fun name ->
        match List.assoc_opt name params with
        | Some v -> v
        | None -> invalid_arg ("Engine.run: missing parameter " ^ name))
      b.param_names
  in
  {
    params = values;
    temps = Array.make (max 1 b.n_temps) 0.;
    base = 0;
    cx = 0;
    cy = 0;
    cz = 0;
    step;
    dx = Option.value (List.assoc_opt "dx" params) ~default:1.;
    global_dims = b.block.global_dims;
  }

let sweep_range (b : bound) ax =
  let n = b.block.dims.(ax) in
  match b.kernel.Ir.Kernel.iteration with
  | Ir.Kernel.CellSweep -> (0, n - 1)
  | Ir.Kernel.StaggeredSweep axes -> if List.mem ax axes then (0, n) else (0, n - 1)

(** Cells visited by one sweep (staggered sweeps cover one extra layer). *)
let sweep_cells (b : bound) =
  let total = ref 1 in
  for ax = 0 to b.kernel.Ir.Kernel.dim - 1 do
    let lo, hi = sweep_range b ax in
    total := !total * (hi - lo + 1)
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Inner/outer kernel split                                            *)
(* ------------------------------------------------------------------ *)

(** Which part of the sweep to execute.  [Interior halo] covers only cells
    whose stencil reads — up to [halo] cells in every direction — stay
    inside the block's owned region, so the sweep is independent of ghost
    values and may run while a ghost exchange is in flight; [Shell halo] is
    the complement, swept after the exchange completes.  [Whole] is the
    classic full sweep.  [Interior h] ∪ [Shell h] visits every sweep cell
    exactly once, so splitting a sweep is bitwise invisible (oracle 10). *)
type region = Whole | Interior of int | Shell of int

(** The kernel's own stencil footprint, straight from the IR: the halo
    width at which an interior cell of this kernel reads no ghost value.
    Chained kernels (a split variant's staggered pass feeding its main
    pass) must accumulate the footprints along the chain — see
    [Core.Timestep.mu_chain]. *)
let stencil_halo (b : bound) = b.kernel.Ir.Kernel.ghost

(* Interior bounds in loop-depth space: shrink each depth's sweep range so
   reads at ± halo stay inside the owned cells [0, dims - 1] of the
   depth's spatial axis (staggered sweeps extend to [dims], which the
   [min] clamps away). *)
let interior_ranges (b : bound) ~(ranges : (int * int) array) ~halo =
  let order = b.lowered.Ir.Lower.loop_order in
  Array.mapi
    (fun d (rlo, rhi) ->
      (max rlo halo, min rhi (b.block.dims.(order.(d)) - 1 - halo)))
    ranges

(* The sweep skeleton, parameterized over [wrap], which brackets each pool
   lane's share of the tiles ([lane] 0 is the coordinating domain, [i > 0]
   the i-th persistent pool worker).  Instrumented and plain execution
   share this code so the two paths cannot drift.

   Every tile runs with a fresh [ctx]: the preheader and per-depth hoisted
   groups are deterministic functions of the parameters and loop
   coordinates (they are recomputed at every outer-loop iteration even in a
   serial sweep), so recomputing them per tile changes nothing — which is
   exactly why tiled, pooled execution is bitwise identical to serial. *)
let run_tiled ?wrap ?(backend = Interp) ?(region = Whole) ~num_domains ~tile ~step ~params
    (b : bound) =
  let dim = b.kernel.Ir.Kernel.dim in
  let range = sweep_range b in
  let order = b.lowered.Ir.Lower.loop_order in
  let ranges = Array.init dim (fun d -> range order.(d)) in
  let shape =
    match tile with
    | Some s -> Some s
    | None ->
      if num_domains <= 1 then None (* serial: one tile = the classic sweep *)
      else begin
        (* default parallel schedule: slice the outermost loop into about
           2x[num_domains] chunks so the atomic queue can balance lanes *)
        let lo0, hi0 = ranges.(0) in
        let n0 = hi0 - lo0 + 1 in
        let chunk = max 1 ((n0 + (2 * num_domains) - 1) / (2 * num_domains)) in
        Some (Array.init dim (fun d -> if d = 0 then chunk else 0))
      end
  in
  let tiles =
    match region with
    | Whole -> Schedule.make ~ranges ?shape ()
    | Interior halo | Shell halo ->
      let interior = interior_ranges b ~ranges ~halo in
      let inner, shell = Schedule.split_halo ~ranges ~interior ?shape () in
      (match region with Interior _ -> inner | _ -> shell)
  in
  let exec =
    match backend with
    | Interp ->
      fun ~lane:_ ti ->
        let t : Schedule.tile = tiles.(ti) in
        let c = make_ctx b ~params ~step in
        run_group b.preheader c;
        if dim = 3 then sweep_tile_3d b c ~lo:t.Schedule.lo ~hi:t.Schedule.hi
        else sweep_tile_2d b c ~lo:t.Schedule.lo ~hi:t.Schedule.hi
    | Jit ->
      (* Memoized lookup on every sweep: a hit costs one hash, and the
         hit/miss counters are what the warm-cache gates watch.  Field
         storage is re-resolved here — after the lookup, per sweep — so
         compiled programs survive Buffer.swap. *)
      let comp = Jit.get ~dims:b.block.dims ~ghost:b.block.ghost b.kernel b.lowered in
      let datas =
        Array.map (fun f -> (buffer b.block f).Buffer.data) comp.Jit.fields
      in
      fun ~lane:_ ti ->
        let t : Schedule.tile = tiles.(ti) in
        (* per tile, like make_ctx, so a missing binding surfaces from
           inside the pool exactly as the interpreter's does *)
        let pvals =
          Array.map
            (fun name ->
              match List.assoc_opt name params with
              | Some v -> v
              | None -> invalid_arg ("Engine.run: missing parameter " ^ name))
            comp.Jit.param_names
        in
        let dx = Option.value (List.assoc_opt "dx" params) ~default:1. in
        Jit.exec_tile comp ~datas ~pvals ~dx ~offset:b.block.offset
          ~global_dims:b.block.global_dims ~step ~lo:t.Schedule.lo ~hi:t.Schedule.hi
  in
  Pool.run ?wrap ~domains:num_domains ~ntiles:(Array.length tiles) exec

(** The uninstrumented sweep: no observability entry points at all.  The
    [obs] bench artifact measures [run] (sink disabled) against this to
    certify the disabled-instrumentation overhead. *)
let run_plain ?(num_domains = 1) ?tile ?(step = 0) ?backend ?region ~params (b : bound) =
  let backend = match backend with Some be -> be | None -> default_backend () in
  ignore (run_tiled ~backend ?region ~num_domains ~tile ~step ~params b)

(* Cells a region sweep visits (for the per-kernel counters). *)
let region_cells (b : bound) = function
  | Whole -> sweep_cells b
  | (Interior halo | Shell halo) as region ->
    let dim = b.kernel.Ir.Kernel.dim in
    let ranges = Array.init dim (fun d -> sweep_range b b.lowered.Ir.Lower.loop_order.(d)) in
    let inner =
      Array.fold_left
        (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1))
        1
        (interior_ranges b ~ranges ~halo)
    in
    (match region with Interior _ -> inner | _ -> sweep_cells b - inner)

let region_suffix = function Whole -> "" | Interior _ -> ".interior" | Shell _ -> ".shell"

(** Execute one sweep of the kernel over the block.

    [num_domains > 1] decomposes the sweep into cache-blocked tiles
    (shape [tile], indexed by loop depth; default: outermost-loop slices)
    and executes them on the persistent domain pool (shared buffers;
    disjoint writes).  The default [num_domains] is [Pool.default_domains]
    — the [PFGEN_DOMAINS] environment.  [params] must bind every free
    symbol of the kernel.

    When the observability sink is enabled, the sweep is wrapped in a
    [kernel:<name>] span, each pool lane's share gets its own
    [slice:<name>] span on its stable lane track, per-kernel cell/sweep
    counters plus an ns-per-cell histogram are updated, and pooled sweeps
    bump the global [vm.tiles]/[vm.steals] counters — all per sweep, never
    per cell, and all from the coordinating domain ([Obs.Metrics] is not
    thread-safe).  Disabled, the only cost is this one branch. *)
let run ?num_domains ?tile ?(step = 0) ?backend ?(region = Whole) ~params (b : bound) =
  let num_domains =
    match num_domains with Some n -> n | None -> Pool.default_domains ()
  in
  let backend = match backend with Some be -> be | None -> default_backend () in
  if not (Obs.Sink.enabled ()) then
    run_plain ~num_domains ?tile ~step ~backend ~region ~params b
  else begin
    let name = b.kernel.Ir.Kernel.name ^ region_suffix region in
    let cells = region_cells b region in
    let wrap lane f =
      if lane = 0 then f ()  (* the coordinating lane lives inside the kernel span *)
      else Obs.Span.with_ ~cat:"vm" ~tid:lane ("slice:" ^ name) f
    in
    let stats, dt_ns =
      Obs.Clock.time_ns (fun () ->
          Obs.Span.with_ ~cat:"vm" ~args:[ ("cells", float_of_int cells) ]
            ("kernel:" ^ name) (fun () ->
              run_tiled ~wrap ~backend ~region ~num_domains ~tile ~step ~params b))
    in
    Obs.Metrics.add (Obs.Metrics.counter ("vm." ^ name ^ ".cells")) cells;
    Obs.Metrics.incr (Obs.Metrics.counter ("vm." ^ name ^ ".sweeps"));
    Obs.Metrics.observe
      (Obs.Metrics.histogram ("vm." ^ name ^ ".ns_per_cell"))
      (dt_ns /. float_of_int (max 1 cells));
    if stats.Pool.lanes > 1 then begin
      Obs.Metrics.add (Obs.Metrics.counter "vm.tiles") stats.Pool.tiles_run;
      Obs.Metrics.add (Obs.Metrics.counter "vm.steals") stats.Pool.steals
    end
  end
