(** ECM-guided kernel autotuner.

    The paper's pipeline picks the kernel variant (full vs. split) and the
    spatial blocking from the ECM model plus short benchmark runs (§6, the
    Kerncraft workflow).  This module reproduces that decision for the VM:

    + every candidate variant is scored analytically
      ([Perfmodel.Ecm.predict]) {e and} probed with a short measured sweep
      on a small block — the probe decides, the model explains and prunes;
    + tile shapes for the winning variant are ranked by the ECM's
      layer-condition traffic at the blocked extent, and the top shapes are
      probed; the cache simulator ([Perfmodel.Cachesim]) replays the chosen
      configuration as an independent traffic cross-check;
    + decisions are cached per model {e fingerprint} (kernel structure,
      block dims, domain count), so [Core.Timestep], [pfgen simulate] and
      the bench harness pay for each tuning decision once per process.

    Probes run through the same [Engine.run_plain]/[Pool] path as
    production sweeps, so a decision measures exactly what will execute. *)

type choice = {
  fingerprint : int;
  domains : int;
  variant : int;  (** index into the candidate list handed to [decide] *)
  variant_label : string;
  tile : int array option;  (** loop-depth tile shape; [None] = default schedule *)
  predicted_cy : (string * float) list;  (** ECM cy/LUP per candidate *)
  measured_ns : (string * float) list;  (** probe ns/LUP per candidate *)
  tile_trials : (int array * float) list;  (** probed shapes, ns/LUP *)
  cachesim_bytes_per_lup : float;  (** LRU-simulated traffic of the winner *)
  backend : Engine.backend;  (** faster of interpreter/JIT on the winner *)
  backend_ns : (string * float) list;  (** probe ns/LUP per backend *)
  overlap : bool;  (** run the inner/outer split so exchanges can overlap *)
  overlap_ns : (string * float) list;  (** probe ns/LUP: whole vs. split sweep *)
}

(* ------------------------------------------------------------------ *)
(* Fingerprint and cache                                               *)
(* ------------------------------------------------------------------ *)

(* Structural fingerprint of a tuning problem.  Kernel bodies are digested
   in full via [Marshal] so a changed coefficient or stencil actually
   changes the hash even deep inside a large expression tree — a
   [Hashtbl.hash_param] prefix hash collides on e.g. the zoo's
   coefficient variants (the cache-miss-on-changed-model test relies on
   distinctness, and Serve shares this cache across jobs). *)
let fingerprint ?(domains = Pool.default_domains ()) ~dims candidates =
  let kernel_hash (k : Ir.Kernel.t) =
    Digest.string
      (Marshal.to_string
         (k.Ir.Kernel.name, k.Ir.Kernel.dim, k.Ir.Kernel.ghost, k.Ir.Kernel.body)
         [])
  in
  Hashtbl.hash
    ( domains,
      Array.to_list dims,
      List.map (fun (label, ks) -> (label, List.map kernel_hash ks)) candidates )

let cache : (int, choice) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let misses = ref 0

let cache_stats () = (!hits, !misses)

let clear_cache () =
  Hashtbl.reset cache;
  hits := 0;
  misses := 0

(* tune.* counters are only touched when the sink is armed, so an idle
   tuner never registers metrics (the disabled-sink silence test). *)
let count name = if Obs.Sink.enabled () then Obs.Metrics.incr (Obs.Metrics.counter name)

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

(* Best-of-[reps] time of [sweeps] pooled sweeps of all kernels of one
   candidate, in ns per interior cell (same protocol as the drift oracle). *)
let probe_ns ?(backend = Engine.Interp) ~domains ~tile ~sweeps ~reps ~params
    (block : Engine.block) kernels =
  let bounds = List.map (fun k -> Engine.bind k block) kernels in
  let sweep step =
    List.iter
      (fun b -> Engine.run_plain ~num_domains:domains ?tile ~step ~backend ~params b)
      bounds
  in
  sweep 0 (* warmup: also spawns the pool workers once *);
  let best = ref infinity in
  for rep = 1 to reps do
    let (), dt_ns =
      Obs.Clock.time_ns (fun () ->
          for s = 1 to sweeps do
            sweep ((rep * sweeps) + s)
          done)
    in
    if dt_ns < !best then best := dt_ns
  done;
  let cells = float_of_int (Array.fold_left ( * ) 1 block.Engine.dims) in
  !best /. float_of_int sweeps /. cells

(* Probe the inner/outer split execution shape of the overlapped exchange
   (paper §7): each kernel sweeps its deep interior at the chain's
   cumulative stencil halo, then the matching halo shells run — the exact
   work a forest block does around an in-flight ghost exchange. *)
let probe_split_ns ?(backend = Engine.Interp) ~domains ~tile ~sweeps ~reps ~params
    (block : Engine.block) kernels =
  let bounds =
    let halo = ref 0 in
    List.map
      (fun k ->
        let b = Engine.bind k block in
        halo := !halo + Engine.stencil_halo b;
        (b, !halo))
      kernels
  in
  let run region step (b, h) =
    Engine.run_plain ~num_domains:domains ?tile ~step ~backend
      ~region:(region h) ~params b
  in
  let sweep step =
    List.iter (run (fun h -> Engine.Interior h) step) bounds;
    List.iter (run (fun h -> Engine.Shell h) step) bounds
  in
  sweep 0;
  let best = ref infinity in
  for rep = 1 to reps do
    let (), dt_ns =
      Obs.Clock.time_ns (fun () ->
          for s = 1 to sweeps do
            sweep ((rep * sweeps) + s)
          done)
    in
    if dt_ns < !best then best := dt_ns
  done;
  let cells = float_of_int (Array.fold_left ( * ) 1 block.Engine.dims) in
  !best /. float_of_int sweeps /. cells

let predicted_cy_per_lup machine kernels ~block_n =
  List.fold_left
    (fun acc k ->
      acc
      +. Perfmodel.Ecm.single_core_cycles (Perfmodel.Ecm.predict machine k ~block_n)
         /. float_of_int Perfmodel.Ecm.cacheline_lups)
    0. kernels

(* Candidate tile shapes (loop-depth space) for a block of [dims]: the
   default schedule plus outer-loop blocks, keeping the innermost depth at
   full extent.  [block_n] is the extent that governs the layer condition
   for analytic ranking. *)
let tile_candidates ~dim ~n0 =
  let blocks = List.filter (fun b -> b < n0) [ 4; 8; 16 ] in
  let outer b = Array.init dim (fun d -> if d = 0 then b else 0) in
  let square b = Array.init dim (fun d -> if d < dim - 1 then b else 0) in
  (None :: List.map (fun b -> Some (outer b)) blocks)
  @ (if dim >= 3 then List.map (fun b -> Some (square b)) blocks else [])

let block_n_of_shape ~n0 = function
  | None -> n0
  | Some s -> ( match Array.find_opt (fun x -> x > 0) s with Some b -> b | None -> n0)

(* ------------------------------------------------------------------ *)
(* The decision                                                        *)
(* ------------------------------------------------------------------ *)

(** Pick the variant and tile shape for [candidates] (label, kernel list —
    e.g. [("full", [phi_full]); ("split", [stag; main])]) executing on
    [domains] lanes over a probe block built by [make_block].  Cached per
    fingerprint; [dims] must match the blocks the decision will be applied
    to (it is part of the fingerprint). *)
let decide ?(machine = Perfmodel.Machine.skylake_8174) ?(domains = Pool.default_domains ())
    ?(sweeps = 2) ?(reps = 2) ~dims ~make_block ~params candidates =
  let fp = fingerprint ~domains ~dims candidates in
  match Hashtbl.find_opt cache fp with
  | Some c ->
    incr hits;
    count "tune.hit";
    c
  | None ->
    incr misses;
    count "tune.miss";
    let block : Engine.block = make_block () in
    let n0 = block.Engine.dims.(0) in
    let dim = Array.length block.Engine.dims in
    let predicted_cy =
      List.map
        (fun (label, ks) -> (label, predicted_cy_per_lup machine ks ~block_n:n0))
        candidates
    in
    (* variant probes run with the default schedule *)
    let measured_ns =
      List.map
        (fun (label, ks) ->
          (label, probe_ns ~domains ~tile:None ~sweeps ~reps ~params block ks))
        candidates
    in
    let variant, (variant_label, _) =
      List.fold_left
        (fun (bi, (bl, bv)) (i, (l, v)) -> if v < bv then (i, (l, v)) else (bi, (bl, bv)))
        (0, List.nth measured_ns 0)
        (List.mapi (fun i m -> (i, m)) measured_ns)
    in
    let _, winner_kernels = List.nth candidates variant in
    (* rank tile shapes analytically, probe the best-ranked few *)
    let ranked =
      List.sort
        (fun (_, a) (_, b) -> compare a b)
        (List.map
           (fun shape ->
             ( shape,
               predicted_cy_per_lup machine winner_kernels
                 ~block_n:(block_n_of_shape ~n0 shape) ))
           (tile_candidates ~dim ~n0))
    in
    let to_probe =
      List.filteri (fun i _ -> i < 3) (List.map fst ranked)
      |> fun l -> if List.mem None l then l else None :: l
    in
    let tile_trials =
      List.map
        (fun shape ->
          (shape, probe_ns ~domains ~tile:shape ~sweeps ~reps ~params block winner_kernels))
        to_probe
    in
    let tile, _ =
      List.fold_left
        (fun (bs, bv) (s, v) -> if v < bv then (s, v) else (bs, bv))
        (List.hd tile_trials) (List.tl tile_trials)
    in
    (* the execution backend is one more tunable axis: probe the winning
       variant at the chosen tile under both backends and keep the faster
       one (the JIT warms its compile cache during the probe's warmup
       sweep, so steady-state cost is what is measured) *)
    let backend_ns =
      List.map
        (fun (label, be) ->
          ( label,
            probe_ns ~backend:be ~domains ~tile ~sweeps ~reps ~params block winner_kernels
          ))
        [ (Engine.backend_label Engine.Interp, Engine.Interp);
          (Engine.backend_label Engine.Jit, Engine.Jit) ]
    in
    let backend =
      match backend_ns with
      | [ (_, interp_ns); (_, jit_ns) ] when jit_ns < interp_ns -> Engine.Jit
      | _ -> Engine.Interp
    in
    (* overlap axis: the inner/outer split pays a scheduling overhead
       (extra passes, shell tiles with short inner runs).  Probe the
       monolithic sweep against the split shape at the chosen tile and
       backend; accept the split while its overhead stays within 15 % —
       the exchange it hides is worth far more at scale, but a tiny block
       whose shell dominates should stay sequential. *)
    let overlap_ns =
      [
        ("whole", probe_ns ~backend ~domains ~tile ~sweeps ~reps ~params block winner_kernels);
        ( "split",
          probe_split_ns ~backend ~domains ~tile ~sweeps ~reps ~params block winner_kernels
        );
      ]
    in
    let overlap =
      match overlap_ns with
      | [ (_, whole); (_, split) ] -> split <= 1.15 *. whole
      | _ -> false
    in
    let cachesim_bytes_per_lup =
      match winner_kernels with
      | [] -> 0.
      | k :: _ ->
        let cache_sim =
          Perfmodel.Cachesim.create ~size_bytes:machine.Perfmodel.Machine.l2_bytes ~ways:16
            ~line_bytes:machine.Perfmodel.Machine.cacheline_bytes
        in
        Perfmodel.Cachesim.sweep_traffic k ~cache:cache_sim ~n:(min n0 12)
    in
    let c =
      {
        fingerprint = fp;
        domains;
        variant;
        variant_label;
        tile;
        predicted_cy;
        measured_ns;
        tile_trials = List.map (fun (s, v) -> (Option.value s ~default:[||], v)) tile_trials;
        cachesim_bytes_per_lup;
        backend;
        backend_ns;
        overlap;
        overlap_ns;
      }
    in
    Hashtbl.replace cache fp c;
    c

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_tile ppf = function
  | None -> Fmt.string ppf "default"
  | Some s -> Schedule.pp_shape ppf s

let pp_choice ppf c =
  Fmt.pf ppf "tuned for %d domain(s), fingerprint %08x@." c.domains
    (c.fingerprint land 0xffffffff);
  Fmt.pf ppf "%-10s %14s %14s@." "variant" "model cy/LUP" "probe ns/LUP";
  List.iter2
    (fun (label, cy) (_, ns) ->
      Fmt.pf ppf "%-10s %14.1f %14.1f%s@." label cy ns
        (if label = c.variant_label then "  <- selected" else ""))
    c.predicted_cy c.measured_ns;
  Fmt.pf ppf "tile shapes probed:";
  List.iter
    (fun (s, ns) ->
      Fmt.pf ppf " %a=%.1f" pp_tile (if Array.length s = 0 then None else Some s) ns)
    c.tile_trials;
  Fmt.pf ppf "@.selected tile %a; cachesim traffic %.0f B/LUP@." pp_tile c.tile
    c.cachesim_bytes_per_lup;
  Fmt.pf ppf "backends:";
  List.iter (fun (label, ns) -> Fmt.pf ppf " %s=%.1f" label ns) c.backend_ns;
  Fmt.pf ppf " -> %s@." (Engine.backend_label c.backend);
  Fmt.pf ppf "overlap sweep:";
  List.iter (fun (label, ns) -> Fmt.pf ppf " %s=%.1f" label ns) c.overlap_ns;
  Fmt.pf ppf " -> %s@." (if c.overlap then "split (overlap exchanges)" else "whole")
