(** Ghost-layer packing and unpacking (paper §4.3).

    Slabs are packed into contiguous buffers before sending — the same
    two-step exchange the paper implements with device-side packing kernels
    on GPUs.  Exchanging axis by axis, with the slab spanning the full
    padded extent of the other axes, also propagates edge and corner ghost
    values (needed by the D3C19-shaped kernels). *)

type side = Low | High

(* Cell range of the slab along the exchange axis. *)
let pack_range buf axis = function
  | Low -> (0, buf.Vm.Buffer.ghost - 1)
  | High -> (buf.Vm.Buffer.dims.(axis) - buf.Vm.Buffer.ghost, buf.Vm.Buffer.dims.(axis) - 1)

let unpack_range buf axis = function
  | Low -> (-buf.Vm.Buffer.ghost, -1)
  | High -> (buf.Vm.Buffer.dims.(axis), buf.Vm.Buffer.dims.(axis) + buf.Vm.Buffer.ghost - 1)

let slab_size buf axis =
  let g = buf.Vm.Buffer.ghost in
  let padded = Array.mapi (fun d n -> if d = axis then g else n + (2 * g)) buf.Vm.Buffer.dims in
  buf.Vm.Buffer.components * Array.fold_left ( * ) 1 padded

(* Iterate the slab deterministically, calling [f] with the linear element
   index of each (component, cell). *)
let iter_slab buf ~axis ~range f =
  let dim = Array.length buf.Vm.Buffer.dims in
  let g = buf.Vm.Buffer.ghost in
  let lo, hi = range in
  let coords = Array.make dim 0 in
  let rec loop d =
    if d = dim then begin
      let base = Vm.Buffer.base_index buf coords in
      for c = 0 to buf.Vm.Buffer.components - 1 do
        f (base + (c * buf.Vm.Buffer.comp_stride))
      done
    end
    else
      let l, h = if d = axis then (lo, hi) else (-g, buf.Vm.Buffer.dims.(d) + g - 1) in
      for i = l to h do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0

let pack buf ~axis ~side =
  let out = Array.make (slab_size buf axis) 0. in
  let k = ref 0 in
  iter_slab buf ~axis ~range:(pack_range buf axis side)
    (fun idx ->
      out.(!k) <- buf.Vm.Buffer.data.(idx);
      incr k);
  out

let unpack buf ~axis ~side data =
  if Array.length data <> slab_size buf axis then invalid_arg "Ghost.unpack: size mismatch";
  let k = ref 0 in
  iter_slab buf ~axis ~range:(unpack_range buf axis side)
    (fun idx ->
      buf.Vm.Buffer.data.(idx) <- data.(!k);
      incr k)

(** The slab an all-constant neighbor would send: [cv.(c)] for storage
    component [c] at every cell.  {!iter_slab} visits components fastest
    within each cell, so the wire image is the component cycle repeated —
    [unpack]ing this is bitwise identical to receiving from a neighbor
    whose padded buffer holds exactly these per-component constants.  The
    adaptive forest uses it to service exchanges on behalf of frozen
    blocks without materializing them. *)
let constant_slab buf ~axis (cv : float array) =
  if Array.length cv <> buf.Vm.Buffer.components then
    invalid_arg "Ghost.constant_slab: component count mismatch";
  let out = Array.make (slab_size buf axis) 0. in
  let nc = Array.length cv in
  for i = 0 to Array.length out - 1 do
    out.(i) <- cv.(i mod nc)
  done;
  out

(** Ghost bytes exchanged per block per field per full exchange — the
    message volume used by the network model. *)
let exchange_bytes buf =
  let dim = Array.length buf.Vm.Buffer.dims in
  let total = ref 0 in
  for axis = 0 to dim - 1 do
    total := !total + (2 * 8 * slab_size buf axis)
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Self-healing exchange protocol                                      *)
(* ------------------------------------------------------------------ *)

exception Rank_crashed of int
(** The sender rank is dead: the caller must roll the whole simulation
    back to its last checkpoint (see [Resilience.Recovery]). *)

exception Exchange_failed of (int * int * int)
(** Retries exhausted on a live channel — only reachable when a message
    aged out of the bounded retransmission log, which a lockstep exchange
    never provokes. *)

(** Fetch the next in-sequence message of channel (src, dst, tag),
    tolerating the full {!Faultplan.t} fault repertoire:

    + stale duplicates are discarded by sequence number;
    + a missing message is treated as a timeout against the substrate's
      virtual clock: the receiver backs off exponentially (advancing the
      clock, which releases delayed messages) and requests a bounded
      number of retransmissions from the sender's log;
    + if the sender turns out to be dead, [Rank_crashed] aborts the
      exchange so the driver can roll back to the last checkpoint.

    Exactly-once, in-order delivery: under any plan without a crash this
    returns precisely the payloads the fault-free run would see, in the
    same order — which is what makes faulty runs bitwise identical. *)
(* Drive a posted request to completion, translating the substrate's
   healing outcome into this module's exception vocabulary and accounting
   for in-place fault healing. *)
let await ?max_retries comm ~src ~dst ~tag req =
  match Mpisim.wait ?max_retries comm req with
  | `Done retries ->
    if retries > 0 then begin
      Obs.Metrics.incr (Obs.Metrics.counter "net.faults_healed");
      Obs.Span.instant ~cat:"comm"
        ~args:[ ("retries", float_of_int retries) ]
        (Printf.sprintf "healed:%d->%d tag %d" src dst tag)
    end;
    Mpisim.payload req
  | `Crashed r -> raise (Rank_crashed r)
  | `Lost key -> raise (Exchange_failed key)

let fetch ?max_retries comm ~src ~dst ~tag =
  await ?max_retries comm ~src ~dst ~tag (Mpisim.irecv comm ~src ~dst ~tag)

(** Pack-and-send one slab (sequence number assigned by the substrate). *)
let send_slab comm ~src ~dst ~tag buf ~axis ~side =
  Mpisim.send comm ~src ~dst ~tag (pack buf ~axis ~side)

(** Receive-and-unpack one slab through the self-healing protocol. *)
let recv_slab ?max_retries comm ~src ~dst ~tag buf ~axis ~side =
  unpack buf ~axis ~side (fetch ?max_retries comm ~src ~dst ~tag)

(* ------------------------------------------------------------------ *)
(* Nonblocking slab exchange (communication overlap, paper §7)          *)
(* ------------------------------------------------------------------ *)

(** Pack-and-post one slab send; completes immediately (eager protocol). *)
let isend_slab comm ~src ~dst ~tag buf ~axis ~side =
  ignore (Mpisim.isend comm ~src ~dst ~tag (pack buf ~axis ~side))

(** A pending slab receive: the request plus where to unpack it. *)
type pending = {
  req : Mpisim.request;
  p_src : int;
  p_dst : int;
  p_tag : int;
  p_buf : Vm.Buffer.t;
  p_axis : int;
  p_side : side;
}

(** Post a slab receive without consuming anything. *)
let irecv_slab comm ~src ~dst ~tag buf ~axis ~side =
  { req = Mpisim.irecv comm ~src ~dst ~tag; p_src = src; p_dst = dst;
    p_tag = tag; p_buf = buf; p_axis = axis; p_side = side }

(** Complete a pending slab receive through the self-healing protocol and
    unpack it into the ghost layer. *)
let await_slab ?max_retries comm pending =
  unpack pending.p_buf ~axis:pending.p_axis ~side:pending.p_side
    (await ?max_retries comm ~src:pending.p_src ~dst:pending.p_dst
       ~tag:pending.p_tag pending.req)

let () =
  Printexc.register_printer (function
    | Rank_crashed r -> Some (Printf.sprintf "Ghost.Rank_crashed: rank %d is dead" r)
    | Exchange_failed (src, dst, tag) ->
      Some
        (Printf.sprintf
           "Ghost.Exchange_failed: retries exhausted waiting for rank %d -> rank %d, tag %d"
           src dst tag)
    | _ -> None)
