(** Interface-adaptive block forest (paper §4.1 / §8).

    waLBerla's phase-field runs refine around the moving solidification
    front and coarsen the bulk; here the same economy is realised on the
    uniform block grid by {e freezing} blocks whose state is exactly
    constant.  Away from the interface a phase-field relaxes to a bulk
    fixed point (φ a simplex vertex, μ its equilibrium value); once a
    block and its entire Chebyshev-1 neighborhood sit bitwise on the same
    per-component constants, the block's next step provably reproduces
    those constants, so the block stops sweeping kernels and is
    represented by the constants alone — a coarsened block of level ≥ 1.
    When the front approaches (any neighbor leaves the vertex), the block
    is re-materialised ({e refined} back to level 0) before its cells can
    differ from the uniform run.  An adaptive run is therefore bitwise
    identical, cell for cell, to the uniform fine-grid run — the property
    oracle 5's refinement legs lock down.

    Soundness of the freeze rule (one step of grace is enough):

    + a step of block B reads only the global source fields within the
      ghost depth of B's padded extent (exchange correctness), i.e. at
      most [2 (φ stencil) + 2 (μ stencil over the mid-step φ_dst
      exchange) = 4] cells beyond B — inside B's Chebyshev-1 neighborhood
      whenever every block dimension is ≥ {!min_freeze_dim};
    + freezing additionally requires a {e probe certificate}: a tiny
      throwaway block is filled with the candidate constants and stepped
      once; only a bitwise fixed point certifies (cached per constant
      vertex).  A static kernel scan rejects models whose kernels read
      the time symbol, cell coordinates or fluctuation streams — their
      bulk is never a spatial fixed point;
    + thawing re-primes source-field ghosts, because a materialised
      block's ghost layers must equal the mid-step exchanged values of
      the uniform run, which the constant fill alone cannot provide.

    Frozen blocks still participate in ghost exchange: the slab an
    all-constant neighbor would send is synthesised locally
    ({!Ghost.constant_slab}) — no messages, no sweeps, no storage.
    Refinement levels are the clamped Chebyshev block distance to the
    nearest active block, which makes the forest 2:1 balanced by
    construction (asserted).  After each adaptation round the blocks are
    re-assigned to ranks along the Morton curve with stored-cell weights
    ({!Morton.balance}); migrating blocks ship their padded buffers over
    {!Mpisim} channels through the self-healing protocol.  Reductions
    ride the same canonical tree as everywhere else: frozen blocks
    publish the canonical nodes of their constant cells, so diagnostics
    are bitwise independent of the refinement state. *)

open Symbolic

type consts = (Fieldspec.t * float array) list
(** Per tracked field, the per-storage-component constants of a frozen
    block (φ and μ source/destination pairs share one vertex each). *)

type state = Active of Pfcore.Timestep.t | Frozen of consts

type mode =
  | Static  (** adapt once after [prime]; only corrective thaws afterwards *)
  | Adapt   (** freeze/refine/rebalance every [adapt_every] steps *)

type t = {
  comm : Mpisim.t;
  gen : Pfcore.Genkernels.t;
  bgrid : int array;  (** blocks per axis (decoupled from the rank count) *)
  block_dims : int array;
  global_dims : int array;
  n_ranks : int;
  variant_phi : Pfcore.Timestep.variant;
  variant_mu : Pfcore.Timestep.variant;
  num_domains : int option;
  tile : int array option;
  backend : Vm.Engine.backend option;
  overlap : bool;
  mode : mode;
  max_level : int;
  adapt_every : int;
  freezable : bool;  (** static kernel scan: bulk can be a fixed point *)
  states : state array;
  levels : int array;  (** 0 = active; ≥ 1 = coarsening level of a frozen block *)
  owner : int array;   (** owning rank per block (Morton-balanced) *)
  mutable step_count : int;
  mutable time : float;
  mutable cells_touched : int;  (** cumulative interior cells actually swept *)
  mutable freezes : int;
  mutable thaws : int;
  mutable migrations : int;
  probe_cache : (string, bool) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let nblocks t = Array.length t.states
let block_cells t = Array.fold_left ( * ) 1 t.block_dims
let block_coords t id = Forest.rank_coords t.bgrid id
let block_id t c = Forest.rank_of_coords t.bgrid c

let face_neighbor t id ~axis ~dir =
  let c = block_coords t id in
  c.(axis) <- (((c.(axis) + dir) mod t.bgrid.(axis)) + t.bgrid.(axis)) mod t.bgrid.(axis);
  block_id t c

(** Distinct periodic Chebyshev-1 neighbors of a block, excluding itself
    (on short axes the wrap can alias neighbors together). *)
let neighbors t id =
  let dim = Array.length t.bgrid in
  let c = block_coords t id in
  let nc = Array.make dim 0 in
  let acc = ref [] in
  let rec go d =
    if d = dim then begin
      let nid = block_id t nc in
      if nid <> id && not (List.mem nid !acc) then acc := nid :: !acc
    end
    else
      for dd = -1 to 1 do
        nc.(d) <- (((c.(d) + dd) mod t.bgrid.(d)) + t.bgrid.(d)) mod t.bgrid.(d);
        go (d + 1)
      done
  in
  go 0;
  List.rev !acc

(** Periodic Chebyshev distance between two blocks of the grid. *)
let chebyshev_dist t a b =
  let ca = block_coords t a and cb = block_coords t b in
  let dist = ref 0 in
  Array.iteri
    (fun d g ->
      let delta = abs (ca.(d) - cb.(d)) in
      dist := max !dist (min delta (g - delta)))
    t.bgrid;
  !dist

let fields t = t.gen.Pfcore.Genkernels.fields
let has_mu t = Pfcore.Params.n_mu t.gen.Pfcore.Genkernels.params > 0
let buffer (sim : Pfcore.Timestep.t) f = Vm.Engine.buffer sim.Pfcore.Timestep.block f
let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let const_of (consts : consts) (f : Fieldspec.t) =
  match
    List.find_opt (fun ((g : Fieldspec.t), _) -> g.Fieldspec.name = f.Fieldspec.name) consts
  with
  | Some (_, cv) -> cv
  | None -> invalid_arg ("Adaptive: no frozen constant for field " ^ f.Fieldspec.name)

(* ------------------------------------------------------------------ *)
(* Static freezability scan                                            *)
(* ------------------------------------------------------------------ *)

let expr_position_dependent e =
  Expr.fold
    (fun u n ->
      u
      ||
      match n with
      | Expr.Rand _ | Expr.Coord _ -> true
      | Expr.Sym "t" -> true
      | _ -> false)
    false e

let kernel_position_dependent (k : Ir.Kernel.t) =
  List.exists
    (fun (a : Field.Assignment.t) -> expr_position_dependent a.Field.Assignment.rhs)
    k.Ir.Kernel.body

(** A model is freezable when no kernel of either variant reads the time
    symbol, the cell coordinates or a fluctuation stream: its bulk value
    is then a pure function of the neighborhood, so a constant
    neighborhood {e can} be a fixed point (the probe decides whether it
    is). *)
let gen_freezable (gen : Pfcore.Genkernels.t) =
  let pair (p : Pfcore.Genkernels.pair) = [ p.Pfcore.Genkernels.stag; p.Pfcore.Genkernels.main ] in
  let kernels =
    (gen.Pfcore.Genkernels.phi_full :: pair gen.Pfcore.Genkernels.phi_split)
    @ Option.to_list gen.Pfcore.Genkernels.projection
    @ (match gen.Pfcore.Genkernels.mu_full with Some k -> [ k ] | None -> [])
    @ (match gen.Pfcore.Genkernels.mu_split with Some p -> pair p | None -> [])
  in
  not (List.exists kernel_position_dependent kernels)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make_sim t id =
  let c = block_coords t id in
  let offset = Array.mapi (fun d n -> c.(d) * n) t.block_dims in
  (* exchange is driven by this module, never by the sim itself *)
  Pfcore.Timestep.create ~variant_phi:t.variant_phi ~variant_mu:t.variant_mu
    ?num_domains:t.num_domains ?tile:t.tile ?backend:t.backend ~rank:t.owner.(id)
    ~exchange:(fun _ _ -> ())
    ~global_dims:t.global_dims ~offset ~dims:t.block_dims t.gen

(** Block ids along the Morton curve (natural order in 1D, where no
    Z-curve is defined). *)
let curve_ids t =
  if Array.length t.bgrid = 1 then List.init (nblocks t) (fun i -> i)
  else List.map (block_id t) (Morton.curve t.bgrid)

let stored_cells_of t id =
  match t.states.(id) with
  | Active _ -> block_cells t
  | Frozen _ -> max 1 (block_cells t / (1 lsl (Array.length t.bgrid * t.levels.(id))))

let stored_cells t =
  let acc = ref 0 in
  for id = 0 to nblocks t - 1 do
    acc := !acc + stored_cells_of t id
  done;
  !acc

let active_cells t =
  let acc = ref 0 in
  Array.iter (function Active _ -> acc := !acc + block_cells t | Frozen _ -> ()) t.states;
  !acc

let frozen_blocks t =
  Array.fold_left (fun n -> function Frozen _ -> n + 1 | Active _ -> n) 0 t.states

let create ?(variant_phi = Pfcore.Timestep.Full) ?(variant_mu = Pfcore.Timestep.Full)
    ?num_domains ?tile ?backend ?(overlap = false) ?(ranks = 1) ?(max_level = 3)
    ?(adapt_every = 1) ?(mode = Adapt) ~bgrid ~block_dims (gen : Pfcore.Genkernels.t) =
  let dim = Array.length block_dims in
  if Array.length bgrid <> dim then invalid_arg "Adaptive.create: rank mismatch";
  if ranks < 1 then invalid_arg "Adaptive.create: ranks must be positive";
  if adapt_every < 1 then invalid_arg "Adaptive.create: adapt_every must be positive";
  if max_level < 1 then invalid_arg "Adaptive.create: max_level must be positive";
  let nb = Array.fold_left ( * ) 1 bgrid in
  let t =
    {
      comm = Mpisim.create ranks;
      gen;
      bgrid = Array.copy bgrid;
      block_dims = Array.copy block_dims;
      global_dims = Array.mapi (fun d n -> n * bgrid.(d)) block_dims;
      n_ranks = ranks;
      variant_phi;
      variant_mu;
      num_domains;
      tile;
      backend;
      overlap;
      mode;
      max_level;
      adapt_every;
      freezable = gen_freezable gen;
      states = Array.make nb (Frozen []);
      levels = Array.make nb 0;
      owner = Array.make nb 0;
      step_count = 0;
      time = 0.;
      cells_touched = 0;
      freezes = 0;
      thaws = 0;
      migrations = 0;
      probe_cache = Hashtbl.create 8;
    }
  in
  (* initial owners: uniform weights along the Morton curve *)
  let assignment, _ = Morton.balance ~n_ranks:ranks ~weights:(fun _ -> 1.) (curve_ids t) in
  List.iter (fun (id, r) -> t.owner.(id) <- r) assignment;
  for id = 0 to nb - 1 do
    t.states.(id) <- Active (make_sim t id)
  done;
  t

(** The simulation of every currently active block (initially: all),
    for writing initial conditions. *)
let active_sims t =
  Array.to_list t.states
  |> List.filter_map (function Active sim -> Some sim | Frozen _ -> None)

(* ------------------------------------------------------------------ *)
(* Ghost exchange (frozen neighbors serviced by constant slabs)        *)
(* ------------------------------------------------------------------ *)

(* Reduction rounds own [Reduce.tag_base ..); the per-face exchange
   channels and the migration channels each get their own range so no
   two logical streams ever share a (src, dst, tag) channel. *)
let exchange_tag_base = 1000
let migrate_tag_base = 100000

let face_tag t ~recv ~axis ~side =
  exchange_tag_base
  + (((recv * Array.length t.bgrid) + axis) * 2)
  + (match side with Ghost.Low -> 0 | Ghost.High -> 1)

let live_owner t id = Mpisim.live t.comm t.owner.(id)

let exchange_axis_sends t (field : Fieldspec.t) ~axis =
  Array.iteri
    (fun id st ->
      match st with
      | Active sim when live_owner t id ->
        let buf = buffer sim field in
        let send ~side ~dir ~face =
          let nb = face_neighbor t id ~axis ~dir in
          match t.states.(nb) with
          | Frozen _ -> () (* frozen blocks keep no ghost layers *)
          | Active _ ->
            Ghost.send_slab t.comm ~src:t.owner.(id) ~dst:t.owner.(nb)
              ~tag:(face_tag t ~recv:nb ~axis ~side:face) buf ~axis ~side
        in
        send ~side:Ghost.Low ~dir:(-1) ~face:Ghost.High;
        send ~side:Ghost.High ~dir:1 ~face:Ghost.Low
      | _ -> ())
    t.states

let exchange_axis_recvs t (field : Fieldspec.t) ~axis =
  Array.iteri
    (fun id st ->
      match st with
      | Active sim when live_owner t id ->
        let buf = buffer sim field in
        let recv ~side ~dir =
          let nb = face_neighbor t id ~axis ~dir in
          match t.states.(nb) with
          | Frozen consts ->
            (* the slab an all-constant neighbor would have sent *)
            Ghost.unpack buf ~axis ~side
              (Ghost.constant_slab buf ~axis (const_of consts field))
          | Active _ ->
            Ghost.recv_slab t.comm ~src:t.owner.(nb) ~dst:t.owner.(id)
              ~tag:(face_tag t ~recv:id ~axis ~side) buf ~axis ~side
        in
        recv ~side:Ghost.Low ~dir:(-1);
        recv ~side:Ghost.High ~dir:1
      | _ -> ())
    t.states

let exchange t (field : Fieldspec.t) =
  Obs.Span.in_lane 0 (fun () ->
      Obs.Span.with_ ~cat:"comm" ("exchange:" ^ field.Fieldspec.name) (fun () ->
          for axis = 0 to Array.length t.block_dims - 1 do
            exchange_axis_sends t field ~axis;
            exchange_axis_recvs t field ~axis
          done))

let prime_ghosts t =
  exchange t (fields t).Pfcore.Model.phi_src;
  if has_mu t then exchange t (fields t).Pfcore.Model.mu_src

(* ------------------------------------------------------------------ *)
(* Uniformity scan, probe certificate, freeze / thaw                   *)
(* ------------------------------------------------------------------ *)

(** Every block dimension must exceed the one-step influence radius
    (φ stencil + μ stencil over the mid-step exchange, ≤ 4 cells with
    ghost depth 2) before the Chebyshev-1 freeze criterion is sound;
    6 leaves a margin. *)
let min_freeze_dim = 6

let freeze_margin_ok t = Array.for_all (fun n -> n >= min_freeze_dim) t.block_dims

(* Per-storage-component constants of one field's interior, when it is
   bitwise uniform. *)
let uniform_field (sim : Pfcore.Timestep.t) (f : Fieldspec.t) =
  let buf = buffer sim f in
  let nc = buf.Vm.Buffer.components in
  let dims = buf.Vm.Buffer.dims in
  let dim = Array.length dims in
  let coords = Array.make dim 0 in
  let cv = Array.init nc (fun c -> Vm.Buffer.get buf ~component:c coords) in
  let ok = ref true in
  let rec walk d =
    if !ok then
      if d = dim then begin
        let c = ref 0 in
        while !ok && !c < nc do
          if not (bits_equal (Vm.Buffer.get buf ~component:!c coords) cv.(!c)) then
            ok := false;
          incr c
        done
      end
      else
        for i = 0 to dims.(d) - 1 do
          coords.(d) <- i;
          walk (d + 1)
        done
  in
  walk 0;
  if !ok then Some cv else None

(* The frozen representation of a uniform block: both fields of each
   swap pair share the vertex (at a certified fixed point the step maps
   src constants onto themselves, so post-swap dst constants coincide). *)
let scan_block t id =
  match t.states.(id) with
  | Frozen consts -> Some consts
  | Active sim -> (
    let f = fields t in
    match uniform_field sim f.Pfcore.Model.phi_src with
    | None -> None
    | Some cvp -> (
      let phi = [ (f.Pfcore.Model.phi_src, cvp); (f.Pfcore.Model.phi_dst, cvp) ] in
      if not (has_mu t) then Some phi
      else
        match uniform_field sim f.Pfcore.Model.mu_src with
        | None -> None
        | Some cvm ->
          Some (phi @ [ (f.Pfcore.Model.mu_src, cvm); (f.Pfcore.Model.mu_dst, cvm) ])))

let consts_equal (a : consts) (b : consts) =
  List.length a = List.length b
  && List.for_all2
       (fun ((f : Fieldspec.t), cv) ((g : Fieldspec.t), cw) ->
         f.Fieldspec.name = g.Fieldspec.name
         && Array.length cv = Array.length cw
         && Array.for_all2 bits_equal cv cw)
       a b

(** Only bulk vertices freeze: a uniform block sitting {e inside} the
    interface band is physically an interface and must keep evolving
    actively (it is about to deviate anyway). *)
let bulk_vertex t (consts : consts) =
  Array.for_all
    (fun v -> not (v > Vm.Reduce.interface_lo && v < Vm.Reduce.interface_hi))
    (const_of consts (fields t).Pfcore.Model.phi_src)

let probe_key (consts : consts) =
  String.concat ";"
    (List.map
       (fun ((f : Fieldspec.t), cv) ->
         f.Fieldspec.name ^ ":"
         ^ String.concat ","
             (List.map
                (fun v -> Int64.to_string (Int64.bits_of_float v))
                (Array.to_list cv)))
       consts)

let fill_constant (buf : Vm.Buffer.t) (cv : float array) =
  for c = 0 to buf.Vm.Buffer.components - 1 do
    Array.fill buf.Vm.Buffer.data (c * buf.Vm.Buffer.comp_stride) buf.Vm.Buffer.comp_stride
      cv.(c)
  done

(** Runtime certificate that the constant vertex is a bitwise fixed
    point: a throwaway 4^d block (default periodic closure — constant
    preserving) is filled with the constants everywhere and stepped
    once; the source fields must come back bitwise unchanged.  Per-cell
    values of a position-independent kernel do not depend on the block
    shape, schedule or backend (the backends are bitwise equal by
    contract), so one interpreted probe certifies every configuration.
    Cached per constant vertex. *)
let certify t (consts : consts) =
  t.freezable
  &&
  let key = probe_key consts in
  match Hashtbl.find_opt t.probe_cache key with
  | Some ok -> ok
  | None ->
    let ok =
      Obs.Span.with_ ~cat:"adapt" "probe" (fun () ->
          let dims = Array.make (Array.length t.block_dims) 4 in
          let sim =
            Pfcore.Timestep.create ~variant_phi:t.variant_phi ~variant_mu:t.variant_mu
              ~num_domains:1 ~backend:Vm.Engine.Interp ~dims t.gen
          in
          List.iter
            (fun ((f : Fieldspec.t), (buf : Vm.Buffer.t)) ->
              match
                List.find_opt
                  (fun ((g : Fieldspec.t), _) -> g.Fieldspec.name = f.Fieldspec.name)
                  consts
              with
              | Some (_, cv) -> fill_constant buf cv
              | None -> Vm.Buffer.fill buf 0.)
            sim.Pfcore.Timestep.block.Vm.Engine.buffers;
          Pfcore.Timestep.step sim;
          let fixed f =
            match uniform_field sim f with
            | Some cw -> Array.for_all2 bits_equal (const_of consts f) cw
            | None -> false
          in
          fixed (fields t).Pfcore.Model.phi_src
          && ((not (has_mu t)) || fixed (fields t).Pfcore.Model.mu_src))
    in
    Hashtbl.replace t.probe_cache key ok;
    Obs.Metrics.incr (Obs.Metrics.counter "adapt.probes");
    ok

(** Re-materialise a frozen block at level 0.  Source and destination
    fields are filled with the vertex constants — exactly the uniform
    run's values, since the block sat on a certified fixed point while
    frozen.  Staggered scratch fields are zero-filled: a staggered value
    is always written by the stag sweep before the main sweep reads it,
    so any deterministic fill preserves bitwise equality.  Ghost layers
    are re-primed by the caller ({!adapt_round}). *)
let materialize t id (consts : consts) =
  let sim = make_sim t id in
  List.iter
    (fun ((f : Fieldspec.t), (buf : Vm.Buffer.t)) ->
      match
        List.find_opt
          (fun ((g : Fieldspec.t), _) -> g.Fieldspec.name = f.Fieldspec.name)
          consts
      with
      | Some (_, cv) -> fill_constant buf cv
      | None -> Vm.Buffer.fill buf 0.)
    sim.Pfcore.Timestep.block.Vm.Engine.buffers;
  Pfcore.Timestep.restore sim ~step:t.step_count ~time:t.time;
  t.states.(id) <- Active sim;
  t.levels.(id) <- 0;
  t.thaws <- t.thaws + 1

(* ------------------------------------------------------------------ *)
(* Levels, balance, migration                                          *)
(* ------------------------------------------------------------------ *)

(** Level of a frozen block = clamped Chebyshev block distance to the
    nearest active block: immediate neighbors of the front coarsen one
    level, deeper bulk coarsens further.  Adjacent levels then differ by
    at most 1 (the distance function is 1-Lipschitz under the Chebyshev
    metric), i.e. the forest is 2:1 balanced by construction. *)
let recompute_levels t =
  let actives = ref [] in
  Array.iteri
    (fun id st -> match st with Active _ -> actives := id :: !actives | Frozen _ -> ())
    t.states;
  Array.iteri
    (fun id st ->
      t.levels.(id) <-
        (match st with
        | Active _ -> 0
        | Frozen _ ->
          if !actives = [] then t.max_level
          else
            min t.max_level
              (List.fold_left (fun m a -> min m (chebyshev_dist t id a)) max_int !actives)))
    t.states;
  for id = 0 to nblocks t - 1 do
    List.iter
      (fun nb -> assert (abs (t.levels.(id) - t.levels.(nb)) <= 1))
      (neighbors t id)
  done

(** Morton rebalance with stored-cell weights; a block changing owner
    ships its padded field buffers over a dedicated channel range
    through the self-healing protocol (frozen blocks move as metadata
    only).  Skipped while any rank is dead — migration onto a crashed
    rank cannot complete, and the recovery driver is about to roll the
    whole forest back anyway. *)
let rebalance t =
  let all_live = ref true in
  for r = 0 to t.n_ranks - 1 do
    if not (Mpisim.live t.comm r) then all_live := false
  done;
  if t.n_ranks > 1 && !all_live then begin
    let assignment, _ =
      Morton.balance ~n_ranks:t.n_ranks
        ~weights:(fun id -> float_of_int (stored_cells_of t id))
        (curve_ids t)
    in
    List.iter
      (fun (id, r) ->
        let old = t.owner.(id) in
        if r <> old then begin
          (match t.states.(id) with
          | Active sim ->
            List.iteri
              (fun fi ((_ : Fieldspec.t), (buf : Vm.Buffer.t)) ->
                let tag = migrate_tag_base + (id * 16) + fi in
                Mpisim.send t.comm ~src:old ~dst:r ~tag (Array.copy buf.Vm.Buffer.data);
                let data = Ghost.fetch t.comm ~src:old ~dst:r ~tag in
                Array.blit data 0 buf.Vm.Buffer.data 0 (Array.length data))
              sim.Pfcore.Timestep.block.Vm.Engine.buffers
          | Frozen _ -> ());
          t.owner.(id) <- r;
          t.migrations <- t.migrations + 1
        end)
      assignment
  end

(* ------------------------------------------------------------------ *)
(* Adaptation round                                                    *)
(* ------------------------------------------------------------------ *)

(* Adaptation is a global decision over all blocks; with a dead rank the
   scan would read stale state (a dead rank's blocks skipped the step),
   so the crash must surface here even when no exchange touched the dead
   rank this step.  Deterministic: liveness is a pure function of the
   fault plan and the step count. *)
let check_all_live t =
  for r = 0 to t.n_ranks - 1 do
    if not (Mpisim.live t.comm r) then raise (Ghost.Rank_crashed r)
  done

let adapt_round t ~allow_freeze =
  Obs.Span.with_ ~cat:"adapt" "adapt" (fun () ->
      check_all_live t;
      let nb = nblocks t in
      let was_active = Array.map (function Active _ -> true | Frozen _ -> false) t.states in
      let scan = Array.init nb (fun id -> scan_block t id) in
      (* thaw first — a frozen block whose neighborhood left the vertex
         must be re-materialised before the next step reads it *)
      let thawed = ref false in
      for id = 0 to nb - 1 do
        match t.states.(id) with
        | Frozen consts ->
          let stale =
            List.exists
              (fun nbr ->
                match scan.(nbr) with
                | None -> true
                | Some c -> not (consts_equal consts c))
              (neighbors t id)
          in
          if stale then begin
            materialize t id consts;
            thawed := true
          end
        | Active _ -> ()
      done;
      (* freeze: decisions read the pre-thaw scan only, so they do not
         depend on the order blocks are visited in *)
      if allow_freeze && t.freezable && freeze_margin_ok t then
        for id = 0 to nb - 1 do
          if was_active.(id) then
            match (t.states.(id), scan.(id)) with
            | Active _, Some consts
              when bulk_vertex t consts
                   && List.for_all
                        (fun nbr ->
                          match scan.(nbr) with
                          | Some c -> consts_equal consts c
                          | None -> false)
                        (neighbors t id)
                   && certify t consts ->
              t.states.(id) <- Frozen consts;
              t.freezes <- t.freezes + 1
            | _ -> ()
        done;
      recompute_levels t;
      (* a materialised block's ghosts must hold the uniform run's
         mid-step exchanged values; re-priming is idempotent on every
         other active block (their ghosts already equal the true field) *)
      if !thawed then prime_ghosts t;
      if allow_freeze then rebalance t)

(** Prime source-field ghosts after initial conditions, then run the
    initial adaptation (both modes — a [Static] forest is refined
    exactly once, here). *)
let prime t =
  prime_ghosts t;
  adapt_round t ~allow_freeze:true

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)
(* ------------------------------------------------------------------ *)

let each_active t f =
  Array.iteri
    (fun id st -> match st with Active sim when live_owner t id -> f sim | _ -> ())
    t.states

let step_sequential t =
  each_active t Pfcore.Timestep.phase_phi;
  exchange t (fields t).Pfcore.Model.phi_dst;
  each_active t Pfcore.Timestep.phase_mu;
  if has_mu t then exchange t (fields t).Pfcore.Model.mu_dst;
  each_active t Pfcore.Timestep.finish

(* A pending axis-0 completion: a posted receive, or the local unpack of
   a frozen neighbor's constant slab (kept in drain position so the
   overlapped exchange stays bitwise identical to the sequential one). *)
type pending = Recv of Ghost.pending | Fill of (unit -> unit)

let post_axis0_overlap t (field : Fieldspec.t) =
  let axis = 0 in
  Array.iteri
    (fun id st ->
      match st with
      | Active sim when live_owner t id ->
        let buf = buffer sim field in
        let send ~side ~dir ~face =
          let nb = face_neighbor t id ~axis ~dir in
          match t.states.(nb) with
          | Frozen _ -> ()
          | Active _ ->
            Ghost.isend_slab t.comm ~src:t.owner.(id) ~dst:t.owner.(nb)
              ~tag:(face_tag t ~recv:nb ~axis ~side:face) buf ~axis ~side
        in
        send ~side:Ghost.Low ~dir:(-1) ~face:Ghost.High;
        send ~side:Ghost.High ~dir:1 ~face:Ghost.Low
      | _ -> ())
    t.states;
  let pending = ref [] in
  Array.iteri
    (fun id st ->
      match st with
      | Active sim when live_owner t id ->
        let buf = buffer sim field in
        let post ~side ~dir =
          let nb = face_neighbor t id ~axis ~dir in
          match t.states.(nb) with
          | Frozen consts ->
            pending :=
              Fill
                (fun () ->
                  Ghost.unpack buf ~axis ~side
                    (Ghost.constant_slab buf ~axis (const_of consts field)))
              :: !pending
          | Active _ ->
            pending :=
              Recv
                (Ghost.irecv_slab t.comm ~src:t.owner.(nb) ~dst:t.owner.(id)
                   ~tag:(face_tag t ~recv:id ~axis ~side) buf ~axis ~side)
              :: !pending
        in
        post ~side:Ghost.Low ~dir:(-1);
        post ~side:Ghost.High ~dir:1
      | _ -> ())
    t.states;
  List.rev !pending

(* Mirror of [Forest.step_overlapped] over the adaptive forest: the
   axis-0 φ_dst exchange flies under the deep-interior μ sweep of the
   active blocks. *)
let step_overlapped t =
  each_active t Pfcore.Timestep.phase_phi;
  if not (has_mu t) then begin
    exchange t (fields t).Pfcore.Model.phi_dst;
    each_active t Pfcore.Timestep.finish
  end
  else begin
    let phi_dst = (fields t).Pfcore.Model.phi_dst in
    let pending =
      Obs.Span.in_lane 0 (fun () ->
          Obs.Span.with_ ~cat:"comm" ("exchange.overlap:" ^ phi_dst.Fieldspec.name)
            (fun () -> post_axis0_overlap t phi_dst))
    in
    each_active t Pfcore.Timestep.phase_mu_interior;
    Obs.Span.in_lane 0 (fun () ->
        Obs.Span.with_ ~cat:"comm" ("exchange.wait:" ^ phi_dst.Fieldspec.name) (fun () ->
            List.iter
              (function Recv p -> Ghost.await_slab t.comm p | Fill f -> f ())
              pending;
            for axis = 1 to Array.length t.block_dims - 1 do
              exchange_axis_sends t phi_dst ~axis;
              exchange_axis_recvs t phi_dst ~axis
            done));
    each_active t Pfcore.Timestep.phase_mu_shell;
    exchange t (fields t).Pfcore.Model.mu_dst;
    each_active t Pfcore.Timestep.finish
  end

(** One lockstep step over the active blocks, followed by the adaptation
    round (thaws every step — a correctness matter; freezing, level
    recomputation and Morton rebalance every [adapt_every] steps in
    [Adapt] mode). *)
let step t =
  Obs.Span.with_ ~cat:"step" ~args:[ ("step", float_of_int t.step_count) ] "step"
    (fun () ->
      Mpisim.begin_step t.comm ~step:t.step_count;
      if t.overlap then step_overlapped t else step_sequential t;
      Mpisim.finalize t.comm);
  t.cells_touched <- t.cells_touched + active_cells t;
  t.step_count <- t.step_count + 1;
  t.time <- t.time +. t.gen.Pfcore.Genkernels.params.Pfcore.Params.dt;
  let allow_freeze =
    match t.mode with Adapt -> t.step_count mod t.adapt_every = 0 | Static -> false
  in
  adapt_round t ~allow_freeze

let run ?(on_step = fun (_ : t) -> ()) t ~steps =
  for _ = 1 to steps do
    step t;
    on_step t
  done

let step_count t = t.step_count

(* ------------------------------------------------------------------ *)
(* Cell access and canonical reductions                                *)
(* ------------------------------------------------------------------ *)

(** Read one interior cell by global coordinates — the oracle battery's
    probe for adaptive-vs-uniform bitwise equality (frozen blocks answer
    from their constants). *)
let get t (field : Fieldspec.t) ~component global =
  let dim = Array.length t.block_dims in
  let bc = Array.init dim (fun d -> global.(d) / t.block_dims.(d)) in
  let local = Array.init dim (fun d -> global.(d) mod t.block_dims.(d)) in
  match t.states.(block_id t bc) with
  | Active sim -> Vm.Buffer.get (buffer sim field) ~component local
  | Frozen consts -> (const_of consts field).(component)

(* Canonical nodes of a frozen block: same tree segments an active block
   would publish, with the constant read in place of the buffer. *)
let frozen_partial t id (consts : consts) (field : Fieldspec.t) cellfn op :
    Vm.Reduce.partial =
  let dim = Array.length t.block_dims in
  let gdims = t.global_dims in
  let n = Vm.Reduce.total_cells gdims in
  let c = block_coords t id in
  let offset = Array.mapi (fun d bd -> c.(d) * bd) t.block_dims in
  let f =
    match cellfn with
    | Vm.Reduce.Component comp ->
      let v = (const_of consts field).(comp) in
      fun _ -> v
    | Vm.Reduce.Interface ->
      let cv = const_of consts field in
      let hit =
        Array.exists
          (fun v -> v > Vm.Reduce.interface_lo && v < Vm.Reduce.interface_hi)
          cv
      in
      let v = if hit then 1. else 0. in
      fun _ -> v
    | Vm.Reduce.Custom fn ->
      fun gi ->
        let g = Array.make dim 0 in
        let rem = ref gi in
        for d = 0 to dim - 1 do
          g.(d) <- !rem mod gdims.(d);
          rem := !rem / gdims.(d)
        done;
        fn g
  in
  let acc = ref [] in
  let coords = Array.copy offset in
  let rec walk d =
    if d = 0 then begin
      coords.(0) <- offset.(0);
      let a = Vm.Reduce.global_index gdims coords in
      let b = a + t.block_dims.(0) in
      acc := Vm.Reduce.segment ~n f op a b @ !acc
    end
    else
      for i = 0 to t.block_dims.(d) - 1 do
        coords.(d) <- offset.(d) + i;
        walk (d - 1)
      done
  in
  walk (dim - 1);
  !acc

(** Deterministic scalar reduction over the adaptive forest: active
    blocks reduce their buffers through the pooled tiled sweep, frozen
    blocks publish the canonical nodes of their constants, per-rank node
    sets combine over the fixed rank tree — bitwise identical to the
    same reduction over the uniform fine grid, whatever is frozen. *)
let scalar ?backend ?num_domains ?tile t (field : Fieldspec.t) cellfn op =
  let per_rank = Array.make t.n_ranks [] in
  for id = nblocks t - 1 downto 0 do
    let p =
      match t.states.(id) with
      | Active sim ->
        Vm.Reduce.block_partial
          ~backend:(Option.value backend ~default:sim.Pfcore.Timestep.backend)
          ~num_domains:
            (Option.value num_domains ~default:sim.Pfcore.Timestep.num_domains)
          ?tile:(match tile with Some _ -> tile | None -> sim.Pfcore.Timestep.tile)
          sim.Pfcore.Timestep.block field cellfn op
      | Frozen consts -> frozen_partial t id consts field cellfn op
    in
    per_rank.(t.owner.(id)) <- p @ per_rank.(t.owner.(id))
  done;
  let nodes = Reduce.tree_gather t.comm per_rank in
  Vm.Reduce.assemble ~n:(Vm.Reduce.total_cells t.global_dims) op [ nodes ]

let phase_fractions ?backend ?num_domains ?tile t =
  let phi = (fields t).Pfcore.Model.phi_src in
  let n = float_of_int (Vm.Reduce.total_cells t.global_dims) in
  Array.init phi.Fieldspec.components (fun c ->
      scalar ?backend ?num_domains ?tile t phi (Vm.Reduce.Component c) Vm.Reduce.Sum /. n)

let interface_cells ?backend ?num_domains ?tile t =
  scalar ?backend ?num_domains ?tile t (fields t).Pfcore.Model.phi_src Vm.Reduce.Interface
    Vm.Reduce.Sum

let interface_fraction ?backend ?num_domains ?tile t =
  interface_cells ?backend ?num_domains ?tile t
  /. float_of_int (Vm.Reduce.total_cells t.global_dims)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(** Cells-touched savings over the uniform run so far (≥ 1; 1 = nothing
    ever froze). *)
let savings t =
  if t.cells_touched = 0 then 1.
  else
    float_of_int (Vm.Reduce.total_cells t.global_dims * t.step_count)
    /. float_of_int t.cells_touched

(** Legacy-VTK dump of the global φ field plus the per-cell refinement
    level (frozen blocks answer from their constants). *)
let write_vtk t path =
  let p = t.gen.Pfcore.Genkernels.params in
  let gd = t.global_dims in
  let dim = Array.length gd in
  let nx = gd.(0) in
  let ny = if dim > 1 then gd.(1) else 1 in
  let nz = if dim > 2 then gd.(2) else 1 in
  let oc = open_out path in
  Printf.fprintf oc "# vtk DataFile Version 3.0\npfgen adaptive forest (%s)\nASCII\n"
    p.Pfcore.Params.name;
  Printf.fprintf oc "DATASET STRUCTURED_POINTS\nDIMENSIONS %d %d %d\n" nx ny nz;
  Printf.fprintf oc "ORIGIN 0 0 0\nSPACING %g %g %g\n" p.Pfcore.Params.dx p.Pfcore.Params.dx
    p.Pfcore.Params.dx;
  Printf.fprintf oc "POINT_DATA %d\n" (nx * ny * nz);
  let coords = Array.make dim 0 in
  let emit name f =
    Printf.fprintf oc "SCALARS %s double 1\nLOOKUP_TABLE default\n" name;
    for z = 0 to nz - 1 do
      for y = 0 to ny - 1 do
        for x = 0 to nx - 1 do
          coords.(0) <- x;
          if dim > 1 then coords.(1) <- y;
          if dim > 2 then coords.(2) <- z;
          Printf.fprintf oc "%.6g\n" (f coords)
        done
      done
    done
  in
  let phi = (fields t).Pfcore.Model.phi_src in
  for c = 0 to p.Pfcore.Params.n_phases - 1 do
    emit (Printf.sprintf "phi_%d" c) (fun g -> get t phi ~component:c g)
  done;
  emit "level" (fun g ->
      let bc = Array.init dim (fun d -> g.(d) / t.block_dims.(d)) in
      float_of_int t.levels.(block_id t bc));
  close_out oc
