(** Deterministic, seed-driven fault plans for the simulated MPI substrate.

    A plan describes *which* communication faults a run experiences: per
    message, a Philox stream keyed on (channel, sequence number, plan seed)
    decides whether the message is delivered, dropped, delayed by a few
    virtual-clock ticks, or duplicated; independently, the plan may name one
    rank that crashes at a given time step.  Because every decision is a
    pure function of the key, a run under a given plan is exactly
    reproducible — the property the resilience oracles rely on: the
    self-healing exchange must turn any plan into the bitwise result of the
    fault-free run. *)

type decision =
  | Deliver
  | Drop             (** the message is lost in flight (recoverable by retransmit) *)
  | Delay of int     (** delivery is deferred by this many virtual-clock ticks *)
  | Duplicate        (** the message arrives twice with the same sequence number *)

type t = {
  seed : int;             (** keys every per-message decision *)
  drop : float;           (** probability a message is dropped *)
  delay : float;          (** probability a message is delayed *)
  duplicate : float;      (** probability a message is duplicated *)
  max_delay : int;        (** delays are drawn uniformly from 1..max_delay *)
  crash : (int * int) option;
      (** [Some (rank, step)]: that rank dies at the start of that step.
          The crash fires once per run; a restarted substrate treats it as
          already consumed. *)
}

(** No faults at all — under [none] the reliable exchange degenerates to
    the plain one. *)
let none = { seed = 0; drop = 0.; delay = 0.; duplicate = 0.; max_delay = 4; crash = None }

(** A representative soak plan: a few percent of each fault kind plus one
    rank crash at [crash_step]. *)
let chaos ?(seed = 1) ?(crash_rank = 1) ~crash_step () =
  {
    seed;
    drop = 0.06;
    delay = 0.08;
    duplicate = 0.05;
    max_delay = 3;
    crash = Some (crash_rank, crash_step);
  }

(* One uniform draw in [0,1) per (channel, seq, salt). *)
let uniform t ~chan ~seq ~salt =
  (Philox.symmetric ~cell:chan ~step:seq ~slot:(t.seed lxor salt) +. 1.) /. 2.

(** The fate of message [seq] on channel (src, dst, tag).  Pure: the same
    arguments always yield the same decision, so reruns after a rollback
    see the same network. *)
let decide t ~src ~dst ~tag ~seq =
  let chan = (((src * 8191) + dst) * 8191) + tag in
  let u = uniform t ~chan ~seq ~salt:0x0FA17 in
  if u < t.drop then Drop
  else if u < t.drop +. t.delay then
    let v = uniform t ~chan ~seq ~salt:0xDE1A7 in
    Delay (1 + int_of_float (v *. float_of_int (max 1 t.max_delay)))
  else if u < t.drop +. t.delay +. t.duplicate then Duplicate
  else Deliver

let pp_decision ppf = function
  | Deliver -> Fmt.string ppf "deliver"
  | Drop -> Fmt.string ppf "drop"
  | Delay n -> Fmt.pf ppf "delay(%d)" n
  | Duplicate -> Fmt.string ppf "duplicate"

let pp ppf t =
  Fmt.pf ppf "plan{seed=%d drop=%.2f delay=%.2f dup=%.2f%s}" t.seed t.drop t.delay
    t.duplicate
    (match t.crash with
    | None -> ""
    | Some (r, k) -> Printf.sprintf " crash=rank %d@step %d" r k)
