(** Cross-rank deterministic reductions for block forests.

    Per-rank partials come from [Vm.Reduce.block_partial] (pooled, tiled,
    backend-selected — none of which can change the published canonical
    nodes); this module combines them across simulated ranks through a
    {e fixed recursive-halving binary tree} over rank ids.  In round [k],
    every rank [r] with [r mod 2^(k+1) = 2^k] sends its accumulated node
    list to rank [r - 2^k]; after [ceil(log2 n)] rounds rank 0 holds the
    full node set and assembles the root value.  The tree shape depends
    only on the rank count, and node values merge by key, so the scalar
    is bitwise identical for any decomposition — and identical to the
    serial single-block reference, because both assemble the same
    canonical tree over the same global cell index space.

    Payloads are [lo; hi; v] float triples on {!Mpisim} channels with
    tags [>= tag_base] (disjoint from the ghost-exchange tags), received
    through the self-healing [Ghost.fetch]: drop/delay/duplicate fault
    plans heal in place, a dead peer surfaces as [Ghost.Rank_crashed] for
    the recovery driver to roll back. *)

(** First tag of the reduction channels (round [k] uses [tag_base + k]);
    ghost exchange owns tags [0 .. 2*dim), block migration uses its own
    range above this one. *)
let tag_base = 100

(** Combine per-rank partials over the rank tree; returns the node set
    accumulated at rank 0.  All sends of a round are posted before its
    receives drain, mirroring the lockstep exchange phases. *)
let tree_gather comm (partials : Vm.Reduce.partial array) : Vm.Reduce.partial =
  let n = Array.length partials in
  for r = 0 to n - 1 do
    if not (Mpisim.live comm r) then raise (Ghost.Rank_crashed r)
  done;
  let acc = Array.copy partials in
  let k = ref 0 in
  while 1 lsl !k < n do
    let h = 1 lsl !k in
    let tag = tag_base + !k in
    for r = 0 to n - 1 do
      if r land ((2 * h) - 1) = h then
        Mpisim.send comm ~src:r ~dst:(r - h) ~tag (Vm.Reduce.encode acc.(r))
    done;
    for r = 0 to n - 1 do
      if r land ((2 * h) - 1) = 0 && r + h < n then
        acc.(r) <- Vm.Reduce.decode (Ghost.fetch comm ~src:(r + h) ~dst:r ~tag) @ acc.(r)
    done;
    incr k
  done;
  acc.(0)

(** Deterministic scalar reduction of one field over a whole forest.
    Each rank reduces its block with its own pool/tile/backend
    configuration (overridable) — the combination topology makes those
    choices invisible in the result. *)
let forest_scalar ?backend ?num_domains ?tile (t : Forest.t) (field : Symbolic.Fieldspec.t)
    cellfn op =
  let partials =
    Array.map
      (fun (sim : Pfcore.Timestep.t) ->
        Vm.Reduce.block_partial
          ~backend:(Option.value backend ~default:sim.Pfcore.Timestep.backend)
          ~num_domains:(Option.value num_domains ~default:sim.Pfcore.Timestep.num_domains)
          ?tile:
            (match tile with Some _ -> tile | None -> sim.Pfcore.Timestep.tile)
          sim.Pfcore.Timestep.block field cellfn op)
      t.Forest.sims
  in
  let nodes = tree_gather t.Forest.comm partials in
  Vm.Reduce.assemble ~n:(Vm.Reduce.total_cells t.Forest.global_dims) op [ nodes ]

(* ------------------------------------------------------------------ *)
(* Canonical diagnostics                                               *)
(* ------------------------------------------------------------------ *)

let phi_src (t : Forest.t) =
  t.Forest.sims.(0).Pfcore.Timestep.gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src

(** Volume-weighted phase fractions of the forest's φ source field:
    component [c]'s fraction is the canonical-tree sum of φ_c over every
    cell divided by the global cell count.  Bitwise reproducible across
    any decomposition — the deterministic replacement for the
    order-dependent per-rank average [Forest.phase_fractions] kept for
    display purposes. *)
let phase_fractions ?backend ?num_domains ?tile (t : Forest.t) =
  let phi = phi_src t in
  let n = float_of_int (Vm.Reduce.total_cells t.Forest.global_dims) in
  Array.init phi.Symbolic.Fieldspec.components (fun c ->
      forest_scalar ?backend ?num_domains ?tile t phi (Vm.Reduce.Component c)
        Vm.Reduce.Sum
      /. n)

(** Canonical-tree count of interface cells (any φ component strictly
    inside the (0.01, 0.99) band) — the refinement criterion of the
    adaptive forest. *)
let interface_cells ?backend ?num_domains ?tile (t : Forest.t) =
  forest_scalar ?backend ?num_domains ?tile t (phi_src t) Vm.Reduce.Interface
    Vm.Reduce.Sum

let interface_fraction ?backend ?num_domains ?tile (t : Forest.t) =
  interface_cells ?backend ?num_domains ?tile t
  /. float_of_int (Vm.Reduce.total_cells t.Forest.global_dims)

(** NaN-aware extrema of one component of a field over the forest. *)
let min_value ?backend ?num_domains ?tile (t : Forest.t) field ~component =
  forest_scalar ?backend ?num_domains ?tile t field (Vm.Reduce.Component component)
    Vm.Reduce.Min

let max_value ?backend ?num_domains ?tile (t : Forest.t) field ~component =
  forest_scalar ?backend ?num_domains ?tile t field (Vm.Reduce.Component component)
    Vm.Reduce.Max
