(** Monotonic time source.

    CLOCK_MONOTONIC nanoseconds via bechamel's C stub — wall-clock-jump
    free, which is what span durations and drift measurements need.  All of
    [Obs] expresses time as int64 nanoseconds from this clock; exporters
    convert at the edge. *)

let now_ns () : int64 = Monotonic_clock.now ()

(** Elapsed nanoseconds of [f ()], as a float for ratio arithmetic. *)
let time_ns f =
  let t0 = now_ns () in
  let r = f () in
  (r, Int64.to_float (Int64.sub (now_ns ()) t0))
