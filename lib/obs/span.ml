(** Nested monotonic-clock spans and instant events.

    A span brackets a region of work with a begin/end event pair on the
    current lane ({!Sink.lane}); nesting falls out of emission order, which
    is how the Chrome trace viewer reconstructs the flame graph per
    (pid, tid) track.  [with_] is exception-safe: the end event is emitted
    even when the body raises, so the recorded stream is always well
    formed — balanced and properly nested per track (enforced by property
    test in the [check] suite).

    With the sink disabled every entry point degenerates to one branch. *)

let enabled = Sink.enabled

let emit phase ~name ~cat ~tid ~args =
  Sink.record
    { Sink.phase; name; cat; ts_ns = Clock.now_ns (); pid = Sink.lane (); tid; args }

(** [with_ name f] runs [f] inside a span.  [tid] selects the slice track
    within the current lane (0 = coordinating thread); [args] are attached
    to the end event. *)
let with_ ?(cat = "obs") ?(tid = 0) ?(args = []) name f =
  if not (Sink.enabled ()) then f ()
  else begin
    emit Sink.B ~name ~cat ~tid ~args:[];
    Fun.protect ~finally:(fun () -> emit Sink.E ~name ~cat ~tid ~args) f
  end

(** A zero-duration marker on the current lane. *)
let instant ?(cat = "obs") ?(tid = 0) ?(args = []) name =
  if Sink.enabled () then emit Sink.I ~name ~cat ~tid ~args

(** Run [f] with the lane set to [lane], restoring the previous lane after
    (exception-safe).  No-op indirection when disabled. *)
let in_lane lane f =
  if not (Sink.enabled ()) then f ()
  else begin
    let prev = Sink.lane () in
    Sink.set_lane lane;
    Fun.protect ~finally:(fun () -> Sink.set_lane prev) f
  end
