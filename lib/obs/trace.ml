(** Chrome trace-event JSON exporter.

    Renders the recorded event stream in the Trace Event Format consumed by
    [about://tracing] / Perfetto: a top-level ["traceEvents"] array of
    objects with ["ph"], ["ts"] (microseconds), ["pid"], ["tid"] fields,
    preceded by metadata events naming each lane — pid 0 is the local
    process, pid [1 + r] is simulated rank [r]; tid 0 is the coordinating
    thread, tid [i] the i-th OCaml domain of a sliced sweep.

    [zero_times] replaces every timestamp with 0 while keeping the event
    structure — the golden-test mode: a fixed run is then deterministic
    modulo nothing, so the schema can be snapshot-compared. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let ph_of = function Sink.B -> "B" | Sink.E -> "E" | Sink.I -> "i"

let args_json args =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k (json_num v)) args)

let lane_name pid =
  if pid = 0 then "local process"
  else if pid >= Sink.job_lane_base then Printf.sprintf "job %d" (pid - Sink.job_lane_base)
  else Printf.sprintf "rank %d" (pid - 1)
let slice_name tid = if tid = 0 then "main" else Printf.sprintf "domain %d" tid

(* One metadata event per distinct pid (process_name) and per distinct
   (pid, tid) (thread_name), so every track is labeled in the viewer. *)
let metadata_events evs =
  let pids = ref [] and tids = ref [] in
  List.iter
    (fun (e : Sink.event) ->
      if not (List.mem e.Sink.pid !pids) then pids := e.Sink.pid :: !pids;
      if not (List.mem (e.Sink.pid, e.Sink.tid) !tids) then
        tids := (e.Sink.pid, e.Sink.tid) :: !tids)
    evs;
  let procs =
    List.map
      (fun pid ->
        Printf.sprintf
          "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
          pid (escape (lane_name pid)))
      (List.sort compare !pids)
  in
  let threads =
    List.map
      (fun (pid, tid) ->
        Printf.sprintf
          "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
          pid tid (escape (slice_name tid)))
      (List.sort compare !tids)
  in
  procs @ threads

let event_json ~t0 ~zero_times (e : Sink.event) =
  let ts =
    if zero_times then "0"
    else json_num (Int64.to_float (Int64.sub e.Sink.ts_ns t0) /. 1e3)
  in
  let scope = match e.Sink.phase with Sink.I -> ",\"s\":\"t\"" | _ -> "" in
  let args = match e.Sink.args with [] -> "" | a -> Printf.sprintf ",\"args\":{%s}" (args_json a) in
  Printf.sprintf "{\"ph\":\"%s\",\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d%s%s}"
    (ph_of e.Sink.phase) (escape e.Sink.name) (escape e.Sink.cat) ts e.Sink.pid e.Sink.tid
    scope args

(** Render [evs] as a complete Chrome trace JSON document. *)
let to_json ?(zero_times = false) (evs : Sink.event list) =
  let t0 =
    List.fold_left (fun acc (e : Sink.event) -> Int64.min acc e.Sink.ts_ns) Int64.max_int evs
  in
  let lines = metadata_events evs @ List.map (event_json ~t0 ~zero_times) evs in
  "{\"traceEvents\":[\n" ^ String.concat ",\n" lines ^ "\n],\"displayTimeUnit\":\"ms\"}\n"

let save path ?zero_times evs =
  let oc = open_out path in
  output_string oc (to_json ?zero_times evs);
  close_out oc
