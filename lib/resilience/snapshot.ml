(** Versioned, checksummed binary snapshots of full simulation state.

    A snapshot captures everything a bitwise-identical restart needs: the
    block-forest topology (rank grid, block and global dimensions), every
    per-block field buffer *including ghost layers*, the timestep index and
    physical time, the kernel-variant selection, and a fingerprint of the
    model parameters the kernels were generated from.  Because the Philox
    fluctuation streams are keyed on (cell, step) and message ordering is
    deterministic, restoring a snapshot and rerunning reproduces the
    uninterrupted run bit for bit — the property [Resilience.Recovery] and
    the `check` oracles verify.

    The binary encoding is little-endian, versioned by magic, and guarded
    by a CRC-32 over the entire payload: a corrupted file is rejected with
    {!Invalid}, never silently resumed. *)

exception Invalid of string
(** Malformed, truncated, version-mismatched or corrupted snapshot data. *)

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

type field_state = { fname : string; data : float array (** full padded buffer *) }
type block_state = { offset : int array; fields : field_state list }

type t = {
  fingerprint : int;      (** CRC-32 of the marshalled model parameters *)
  split_phi : bool;
  split_mu : bool;
  step : int;
  time : float;
  grid : int array;       (** ranks per axis; all ones for a single block *)
  block_dims : int array;
  global_dims : int array;
  blocks : block_state array;
}

(** Deterministic fingerprint of a model-parameter set: resuming under a
    different model is an error, not a wrong answer. *)
let fingerprint_of_params (p : Pfcore.Params.t) = Crc.digest (Marshal.to_string p [])

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

let capture_block (block : Vm.Engine.block) =
  {
    offset = Array.copy block.Vm.Engine.offset;
    fields =
      List.map
        (fun ((f : Symbolic.Fieldspec.t), (buf : Vm.Buffer.t)) ->
          { fname = f.Symbolic.Fieldspec.name; data = Array.copy buf.Vm.Buffer.data })
        block.Vm.Engine.buffers;
  }

let is_split = function Pfcore.Timestep.Split -> true | Pfcore.Timestep.Full -> false

(** Raw field-state volume of a snapshot (padded buffers, 8 bytes per
    element) — what an in-memory checkpoint holds resident. *)
let state_bytes t =
  Array.fold_left
    (fun acc (b : block_state) ->
      List.fold_left (fun acc f -> acc + (8 * Array.length f.data)) acc b.fields)
    0 t.blocks

let observe_capture t =
  Obs.Metrics.incr (Obs.Metrics.counter "ckpt.captures");
  Obs.Metrics.add (Obs.Metrics.counter "ckpt.state_bytes") (state_bytes t);
  t

(** Snapshot a whole block forest (lockstep: all ranks share the step
    index and time). *)
let capture (f : Blocks.Forest.t) =
  Obs.Span.with_ ~cat:"ckpt" "snapshot:capture" @@ fun () ->
  let sim0 = f.Blocks.Forest.sims.(0) in
  observe_capture
  {
    fingerprint = fingerprint_of_params sim0.Pfcore.Timestep.gen.Pfcore.Genkernels.params;
    split_phi = is_split sim0.Pfcore.Timestep.variant_phi;
    split_mu = is_split sim0.Pfcore.Timestep.variant_mu;
    step = sim0.Pfcore.Timestep.step_count;
    time = sim0.Pfcore.Timestep.time;
    grid = Array.copy f.Blocks.Forest.grid;
    block_dims = Array.copy f.Blocks.Forest.block_dims;
    global_dims = Array.copy f.Blocks.Forest.global_dims;
    blocks =
      Array.map (fun (s : Pfcore.Timestep.t) -> capture_block s.Pfcore.Timestep.block)
        f.Blocks.Forest.sims;
  }

(** Snapshot a single-block simulation (a 1×…×1 forest). *)
let capture_single (sim : Pfcore.Timestep.t) =
  Obs.Span.with_ ~cat:"ckpt" "snapshot:capture" @@ fun () ->
  let block = sim.Pfcore.Timestep.block in
  observe_capture
  {
    fingerprint = fingerprint_of_params sim.Pfcore.Timestep.gen.Pfcore.Genkernels.params;
    split_phi = is_split sim.Pfcore.Timestep.variant_phi;
    split_mu = is_split sim.Pfcore.Timestep.variant_mu;
    step = sim.Pfcore.Timestep.step_count;
    time = sim.Pfcore.Timestep.time;
    grid = Array.make (Array.length block.Vm.Engine.dims) 1;
    block_dims = Array.copy block.Vm.Engine.dims;
    global_dims = Array.copy block.Vm.Engine.global_dims;
    blocks = [| capture_block block |];
  }

(* ------------------------------------------------------------------ *)
(* Restore                                                             *)
(* ------------------------------------------------------------------ *)

let require_same_dims what (a : int array) (b : int array) =
  if a <> b then
    invalid "snapshot %s mismatch: stored %s, target %s" what
      (String.concat "x" (List.map string_of_int (Array.to_list a)))
      (String.concat "x" (List.map string_of_int (Array.to_list b)))

let restore_block (t : block_state) (block : Vm.Engine.block) =
  require_same_dims "block offset" t.offset block.Vm.Engine.offset;
  List.iter
    (fun ((f : Symbolic.Fieldspec.t), (buf : Vm.Buffer.t)) ->
      match List.find_opt (fun fs -> fs.fname = f.Symbolic.Fieldspec.name) t.fields with
      | None -> invalid "snapshot is missing field %s" f.Symbolic.Fieldspec.name
      | Some fs ->
        if Array.length fs.data <> Array.length buf.Vm.Buffer.data then
          invalid "snapshot field %s has %d elements, buffer expects %d"
            f.Symbolic.Fieldspec.name (Array.length fs.data)
            (Array.length buf.Vm.Buffer.data);
        Array.blit fs.data 0 buf.Vm.Buffer.data 0 (Array.length fs.data))
    block.Vm.Engine.buffers

let check_fingerprint t params =
  let fp = fingerprint_of_params params in
  if t.fingerprint <> fp then
    invalid "snapshot was taken with a different model (fingerprint %08x, ours %08x)"
      t.fingerprint fp

(** Load a snapshot into an existing forest of identical topology and
    model; ghost layers are restored verbatim, so no re-priming is needed
    and the continuation is bitwise identical. *)
let restore t (f : Blocks.Forest.t) =
  check_fingerprint t
    f.Blocks.Forest.sims.(0).Pfcore.Timestep.gen.Pfcore.Genkernels.params;
  require_same_dims "grid" t.grid f.Blocks.Forest.grid;
  require_same_dims "block dims" t.block_dims f.Blocks.Forest.block_dims;
  require_same_dims "global dims" t.global_dims f.Blocks.Forest.global_dims;
  if Array.length t.blocks <> Array.length f.Blocks.Forest.sims then
    invalid "snapshot holds %d blocks, forest has %d ranks" (Array.length t.blocks)
      (Array.length f.Blocks.Forest.sims);
  Array.iteri
    (fun i (sim : Pfcore.Timestep.t) ->
      restore_block t.blocks.(i) sim.Pfcore.Timestep.block;
      Pfcore.Timestep.restore sim ~step:t.step ~time:t.time)
    f.Blocks.Forest.sims

(** Load a single-block snapshot into an existing simulation. *)
let restore_single t (sim : Pfcore.Timestep.t) =
  check_fingerprint t sim.Pfcore.Timestep.gen.Pfcore.Genkernels.params;
  if Array.exists (fun g -> g <> 1) t.grid then
    invalid "snapshot is a %d-rank forest, not a single block"
      (Array.fold_left ( * ) 1 t.grid);
  require_same_dims "block dims" t.block_dims sim.Pfcore.Timestep.block.Vm.Engine.dims;
  restore_block t.blocks.(0) sim.Pfcore.Timestep.block;
  Pfcore.Timestep.restore sim ~step:t.step ~time:t.time

(* ------------------------------------------------------------------ *)
(* Binary encoding                                                     *)
(* ------------------------------------------------------------------ *)

let magic = "PFSNAP1\n"
let version = 1

let encode_payload t =
  let b = Buffer.create (1 lsl 16) in
  let i32 n = Buffer.add_int32_le b (Int32.of_int n) in
  let i64 n = Buffer.add_int64_le b (Int64.of_int n) in
  let f64 x = Buffer.add_int64_le b (Int64.bits_of_float x) in
  let ints a =
    i32 (Array.length a);
    Array.iter i32 a
  in
  i32 version;
  i32 t.fingerprint;
  Buffer.add_uint8 b (if t.split_phi then 1 else 0);
  Buffer.add_uint8 b (if t.split_mu then 1 else 0);
  i64 t.step;
  f64 t.time;
  ints t.grid;
  ints t.block_dims;
  ints t.global_dims;
  i32 (Array.length t.blocks);
  Array.iter
    (fun blk ->
      ints blk.offset;
      i32 (List.length blk.fields);
      List.iter
        (fun fs ->
          i32 (String.length fs.fname);
          Buffer.add_string b fs.fname;
          i32 (Array.length fs.data);
          Array.iter f64 fs.data)
        blk.fields)
    t.blocks;
  Buffer.contents b

(** Serialize to the versioned, checksummed wire format:
    magic · CRC-32(payload) · payload-length · payload. *)
let encode t =
  Obs.Span.with_ ~cat:"ckpt" "snapshot:encode" @@ fun () ->
  let payload = encode_payload t in
  let b = Buffer.create (String.length payload + 24) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int (Crc.digest payload));
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  let s = Buffer.contents b in
  Obs.Metrics.add (Obs.Metrics.counter "ckpt.encoded_bytes") (String.length s);
  s

type cursor = { s : string; mutable pos : int }

let read_i32 c =
  if c.pos + 4 > String.length c.s then invalid "truncated snapshot (at byte %d)" c.pos;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) in
  c.pos <- c.pos + 4;
  v land 0xFFFFFFFF

let read_i64 c =
  if c.pos + 8 > String.length c.s then invalid "truncated snapshot (at byte %d)" c.pos;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  v

let read_u8 c =
  if c.pos + 1 > String.length c.s then invalid "truncated snapshot (at byte %d)" c.pos;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let read_string c n =
  if n < 0 || c.pos + n > String.length c.s then
    invalid "truncated snapshot (at byte %d)" c.pos;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let bounded what n limit = if n < 0 || n > limit then invalid "implausible %s count %d" what n

let read_ints c =
  let n = read_i32 c in
  bounded "axis" n 16;
  Array.init n (fun _ -> read_i32 c)

(** Parse and validate a snapshot; raises {!Invalid} on bad magic, version
    skew, truncation or checksum mismatch. *)
let decode s =
  if String.length s < String.length magic + 8 then invalid "not a snapshot: too short";
  if String.sub s 0 (String.length magic) <> magic then
    invalid "not a snapshot: bad magic";
  let c = { s; pos = String.length magic } in
  let crc = read_i32 c in
  let len = read_i32 c in
  if c.pos + len <> String.length s then
    invalid "snapshot length field says %d payload bytes, file has %d" len
      (String.length s - c.pos);
  let payload = String.sub s c.pos len in
  let actual = Crc.digest payload in
  if actual <> crc then
    invalid "checksum mismatch (stored %08x, computed %08x): snapshot is corrupted" crc
      actual;
  let c = { s = payload; pos = 0 } in
  let v = read_i32 c in
  if v <> version then invalid "unsupported snapshot version %d (expected %d)" v version;
  let fingerprint = read_i32 c in
  let split_phi = read_u8 c = 1 in
  let split_mu = read_u8 c = 1 in
  let step = Int64.to_int (read_i64 c) in
  let time = Int64.float_of_bits (read_i64 c) in
  let grid = read_ints c in
  let block_dims = read_ints c in
  let global_dims = read_ints c in
  let n_blocks = read_i32 c in
  bounded "block" n_blocks 65536;
  let blocks =
    Array.init n_blocks (fun _ ->
        let offset = read_ints c in
        let n_fields = read_i32 c in
        bounded "field" n_fields 256;
        let fields =
          List.init n_fields (fun _ ->
              let n = read_i32 c in
              bounded "name byte" n 4096;
              let fname = read_string c n in
              let len = read_i32 c in
              bounded "element" len (1 lsl 28);
              let data = Array.init len (fun _ -> Int64.float_of_bits (read_i64 c)) in
              { fname; data })
        in
        { offset; fields })
  in
  if c.pos <> String.length payload then
    invalid "trailing garbage after snapshot payload (%d bytes)"
      (String.length payload - c.pos);
  { fingerprint; split_phi; split_mu; step; time; grid; block_dims; global_dims; blocks }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let save path t =
  let oc = open_out_bin path in
  output_string oc (encode t);
  close_out oc

let load path =
  let ic = try open_in_bin path with Sys_error e -> invalid "cannot open snapshot: %s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  decode s

(* ------------------------------------------------------------------ *)
(* Comparison and reporting                                            *)
(* ------------------------------------------------------------------ *)

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(** Bitwise structural equality — ghost layers included. *)
let equal a b =
  a.fingerprint = b.fingerprint
  && a.split_phi = b.split_phi
  && a.split_mu = b.split_mu
  && a.step = b.step
  && bits_equal a.time b.time
  && a.grid = b.grid
  && a.block_dims = b.block_dims
  && a.global_dims = b.global_dims
  && Array.length a.blocks = Array.length b.blocks
  && Array.for_all2
       (fun ba bb ->
         ba.offset = bb.offset
         && List.length ba.fields = List.length bb.fields
         && List.for_all2
              (fun fa fb ->
                fa.fname = fb.fname
                && Array.length fa.data = Array.length fb.data
                && Array.for_all2 bits_equal fa.data fb.data)
              ba.fields bb.fields)
       a.blocks b.blocks

let pp ppf t =
  Fmt.pf ppf "snapshot{step %d, t=%g, grid %s, %d block(s), fingerprint %08x}" t.step
    t.time
    (String.concat "x" (List.map string_of_int (Array.to_list t.grid)))
    (Array.length t.blocks) t.fingerprint

(* ------------------------------------------------------------------ *)
(* Adaptive forests (v2 wire format; v1 stays byte-identical)          *)
(* ------------------------------------------------------------------ *)

(** One block of an adaptive snapshot: a frozen block is captured as its
    per-field per-component constants — the whole point of coarsening is
    that this is all the state there is. *)
type adaptive_block =
  | Ab_active of block_state
  | Ab_frozen of (string * float array) list

type adaptive = {
  a_fingerprint : int;
  a_split_phi : bool;
  a_split_mu : bool;
  a_step : int;
  a_time : float;
  a_bgrid : int array;
  a_block_dims : int array;
  a_global_dims : int array;
  a_levels : int array;
  a_owner : int array;
  a_blocks : adaptive_block array;
}

(** Snapshot a whole adaptive forest, refinement state included. *)
let capture_adaptive (af : Blocks.Adaptive.t) =
  Obs.Span.with_ ~cat:"ckpt" "snapshot:capture" @@ fun () ->
  Obs.Metrics.incr (Obs.Metrics.counter "ckpt.captures");
  {
    a_fingerprint = fingerprint_of_params af.Blocks.Adaptive.gen.Pfcore.Genkernels.params;
    a_split_phi = is_split af.Blocks.Adaptive.variant_phi;
    a_split_mu = is_split af.Blocks.Adaptive.variant_mu;
    a_step = af.Blocks.Adaptive.step_count;
    a_time = af.Blocks.Adaptive.time;
    a_bgrid = Array.copy af.Blocks.Adaptive.bgrid;
    a_block_dims = Array.copy af.Blocks.Adaptive.block_dims;
    a_global_dims = Array.copy af.Blocks.Adaptive.global_dims;
    a_levels = Array.copy af.Blocks.Adaptive.levels;
    a_owner = Array.copy af.Blocks.Adaptive.owner;
    a_blocks =
      Array.map
        (function
          | Blocks.Adaptive.Active sim ->
            Ab_active (capture_block sim.Pfcore.Timestep.block)
          | Blocks.Adaptive.Frozen consts ->
            Ab_frozen
              (List.map
                 (fun ((f : Symbolic.Fieldspec.t), cv) ->
                   (f.Symbolic.Fieldspec.name, Array.copy cv))
                 consts))
        af.Blocks.Adaptive.states;
  }

(** Load an adaptive snapshot into an existing forest of identical
    topology and model: refinement levels, block ownership and per-block
    state (buffers or constants) are restored exactly, so replay is
    bitwise identical — including the adaptation decisions, which are
    pure functions of the restored state. *)
let restore_adaptive a (af : Blocks.Adaptive.t) =
  check_fingerprint
    {
      fingerprint = a.a_fingerprint;
      split_phi = a.a_split_phi;
      split_mu = a.a_split_mu;
      step = a.a_step;
      time = a.a_time;
      grid = a.a_bgrid;
      block_dims = a.a_block_dims;
      global_dims = a.a_global_dims;
      blocks = [||];
    }
    af.Blocks.Adaptive.gen.Pfcore.Genkernels.params;
  require_same_dims "block grid" a.a_bgrid af.Blocks.Adaptive.bgrid;
  require_same_dims "block dims" a.a_block_dims af.Blocks.Adaptive.block_dims;
  require_same_dims "global dims" a.a_global_dims af.Blocks.Adaptive.global_dims;
  if Array.length a.a_blocks <> Array.length af.Blocks.Adaptive.states then
    invalid "adaptive snapshot holds %d blocks, forest has %d" (Array.length a.a_blocks)
      (Array.length af.Blocks.Adaptive.states);
  let field_by_name name =
    match
      List.find_opt
        (fun (f : Symbolic.Fieldspec.t) -> f.Symbolic.Fieldspec.name = name)
        (Pfcore.Timestep.field_list af.Blocks.Adaptive.gen)
    with
    | Some f -> f
    | None -> invalid "adaptive snapshot names unknown field %s" name
  in
  af.Blocks.Adaptive.step_count <- a.a_step;
  af.Blocks.Adaptive.time <- a.a_time;
  Array.blit a.a_levels 0 af.Blocks.Adaptive.levels 0 (Array.length a.a_levels);
  Array.blit a.a_owner 0 af.Blocks.Adaptive.owner 0 (Array.length a.a_owner);
  Array.iteri
    (fun i ab ->
      match ab with
      | Ab_frozen consts ->
        af.Blocks.Adaptive.states.(i) <-
          Blocks.Adaptive.Frozen
            (List.map (fun (name, cv) -> (field_by_name name, Array.copy cv)) consts)
      | Ab_active bs ->
        let sim =
          match af.Blocks.Adaptive.states.(i) with
          | Blocks.Adaptive.Active sim -> sim
          | Blocks.Adaptive.Frozen _ -> Blocks.Adaptive.make_sim af i
        in
        restore_block bs sim.Pfcore.Timestep.block;
        Pfcore.Timestep.restore sim ~step:a.a_step ~time:a.a_time;
        af.Blocks.Adaptive.states.(i) <- Blocks.Adaptive.Active sim)
    a.a_blocks

let magic2 = "PFSNAP2\n"
let version2 = 2

let encode_adaptive_payload t =
  let b = Buffer.create (1 lsl 16) in
  let i32 n = Buffer.add_int32_le b (Int32.of_int n) in
  let i64 n = Buffer.add_int64_le b (Int64.of_int n) in
  let f64 x = Buffer.add_int64_le b (Int64.bits_of_float x) in
  let ints a =
    i32 (Array.length a);
    Array.iter i32 a
  in
  i32 version2;
  i32 t.a_fingerprint;
  Buffer.add_uint8 b (if t.a_split_phi then 1 else 0);
  Buffer.add_uint8 b (if t.a_split_mu then 1 else 0);
  i64 t.a_step;
  f64 t.a_time;
  ints t.a_bgrid;
  ints t.a_block_dims;
  ints t.a_global_dims;
  ints t.a_levels;
  ints t.a_owner;
  i32 (Array.length t.a_blocks);
  Array.iter
    (fun ab ->
      match ab with
      | Ab_active blk ->
        Buffer.add_uint8 b 1;
        ints blk.offset;
        i32 (List.length blk.fields);
        List.iter
          (fun fs ->
            i32 (String.length fs.fname);
            Buffer.add_string b fs.fname;
            i32 (Array.length fs.data);
            Array.iter f64 fs.data)
          blk.fields
      | Ab_frozen consts ->
        Buffer.add_uint8 b 0;
        i32 (List.length consts);
        List.iter
          (fun (name, cv) ->
            i32 (String.length name);
            Buffer.add_string b name;
            i32 (Array.length cv);
            Array.iter f64 cv)
          consts)
    t.a_blocks;
  Buffer.contents b

let encode_adaptive t =
  Obs.Span.with_ ~cat:"ckpt" "snapshot:encode" @@ fun () ->
  let payload = encode_adaptive_payload t in
  let b = Buffer.create (String.length payload + 24) in
  Buffer.add_string b magic2;
  Buffer.add_int32_le b (Int32.of_int (Crc.digest payload));
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.contents b

let decode_adaptive s =
  if String.length s < String.length magic2 + 8 then
    invalid "not an adaptive snapshot: too short";
  if String.sub s 0 (String.length magic2) <> magic2 then
    invalid "not an adaptive snapshot: bad magic";
  let c = { s; pos = String.length magic2 } in
  let crc = read_i32 c in
  let len = read_i32 c in
  if c.pos + len <> String.length s then
    invalid "adaptive snapshot length field says %d payload bytes, file has %d" len
      (String.length s - c.pos);
  let payload = String.sub s c.pos len in
  if Crc.digest payload <> crc then
    invalid "checksum mismatch: adaptive snapshot is corrupted";
  let c = { s = payload; pos = 0 } in
  let v = read_i32 c in
  if v <> version2 then invalid "unsupported adaptive snapshot version %d" v;
  let a_fingerprint = read_i32 c in
  let a_split_phi = read_u8 c = 1 in
  let a_split_mu = read_u8 c = 1 in
  let a_step = Int64.to_int (read_i64 c) in
  let a_time = Int64.float_of_bits (read_i64 c) in
  let a_bgrid = read_ints c in
  let a_block_dims = read_ints c in
  let a_global_dims = read_ints c in
  let read_int_array limit =
    let n = read_i32 c in
    bounded "entry" n limit;
    Array.init n (fun _ -> read_i32 c)
  in
  let a_levels = read_int_array 65536 in
  let a_owner = read_int_array 65536 in
  let n_blocks = read_i32 c in
  bounded "block" n_blocks 65536;
  let a_blocks =
    Array.init n_blocks (fun _ ->
        match read_u8 c with
        | 1 ->
          let offset = read_ints c in
          let n_fields = read_i32 c in
          bounded "field" n_fields 256;
          let fields =
            List.init n_fields (fun _ ->
                let n = read_i32 c in
                bounded "name byte" n 4096;
                let fname = read_string c n in
                let len = read_i32 c in
                bounded "element" len (1 lsl 28);
                let data = Array.init len (fun _ -> Int64.float_of_bits (read_i64 c)) in
                { fname; data })
          in
          Ab_active { offset; fields }
        | 0 ->
          let n_fields = read_i32 c in
          bounded "field" n_fields 256;
          Ab_frozen
            (List.init n_fields (fun _ ->
                 let n = read_i32 c in
                 bounded "name byte" n 4096;
                 let name = read_string c n in
                 let len = read_i32 c in
                 bounded "component" len 4096;
                 (name, Array.init len (fun _ -> Int64.float_of_bits (read_i64 c)))))
        | tag -> invalid "unknown adaptive block tag %d" tag)
  in
  if c.pos <> String.length payload then
    invalid "trailing garbage after adaptive snapshot payload";
  {
    a_fingerprint;
    a_split_phi;
    a_split_mu;
    a_step;
    a_time;
    a_bgrid;
    a_block_dims;
    a_global_dims;
    a_levels;
    a_owner;
    a_blocks;
  }

(** Bitwise structural equality of adaptive snapshots — refinement
    state, ownership and every stored value included. *)
let equal_adaptive a b =
  a.a_fingerprint = b.a_fingerprint
  && a.a_split_phi = b.a_split_phi
  && a.a_split_mu = b.a_split_mu
  && a.a_step = b.a_step
  && bits_equal a.a_time b.a_time
  && a.a_bgrid = b.a_bgrid
  && a.a_block_dims = b.a_block_dims
  && a.a_global_dims = b.a_global_dims
  && a.a_levels = b.a_levels
  && a.a_owner = b.a_owner
  && Array.length a.a_blocks = Array.length b.a_blocks
  && Array.for_all2
       (fun ba bb ->
         match (ba, bb) with
         | Ab_active xa, Ab_active xb ->
           xa.offset = xb.offset
           && List.length xa.fields = List.length xb.fields
           && List.for_all2
                (fun fa fb ->
                  fa.fname = fb.fname
                  && Array.length fa.data = Array.length fb.data
                  && Array.for_all2 bits_equal fa.data fb.data)
                xa.fields xb.fields
         | Ab_frozen ca, Ab_frozen cb ->
           List.length ca = List.length cb
           && List.for_all2
                (fun (na, va) (nb, vb) ->
                  na = nb
                  && Array.length va = Array.length vb
                  && Array.for_all2 bits_equal va vb)
                ca cb
         | _ -> false)
       a.a_blocks b.a_blocks
