(** Bounded in-memory snapshot store.

    Keeps the most recent [capacity] checkpoints (newest first), so the
    recovery driver can roll back to the latest consistent state without
    unbounded memory growth on long runs. *)

type t = { capacity : int; mutable snaps : Snapshot.t list }

let create ?(capacity = 4) () =
  if capacity < 1 then invalid_arg "Store.create: capacity must be positive";
  { capacity; snaps = [] }

let put t snap =
  t.snaps <- snap :: t.snaps;
  if List.length t.snaps > t.capacity then
    t.snaps <- List.filteri (fun i _ -> i < t.capacity) t.snaps

let latest t = match t.snaps with [] -> None | s :: _ -> Some s
let count t = List.length t.snaps
let clear t = t.snaps <- []
