(** Rollback-recovery driver: checkpoint every N steps, and on a rank
    crash restart the substrate, restore the latest checkpoint and replay.

    Because kernels draw their fluctuations from Philox streams keyed on
    (cell, step) and snapshots restore ghost layers verbatim, the replayed
    steps recompute exactly the values the crashed attempt computed — the
    protected run finishes bitwise identical to an undisturbed one. *)

type stats = {
  mutable checkpoints : int;
  mutable restarts : int;
  mutable replayed_steps : int;  (** steps recomputed after rollbacks *)
}

exception Too_many_restarts of int

(** Run [forest] forward [steps] steps under crash protection.

    A checkpoint is captured before the first step and then after every
    [every] completed steps.  When a step dies with [Ghost.Rank_crashed],
    the substrate is restarted (clearing in-flight messages and reviving
    the rank), the latest checkpoint is restored, and execution resumes
    from there.  Gives up with {!Too_many_restarts} after [max_restarts]
    rollbacks. *)
let run_protected ?(max_restarts = 8) ?(store = Store.create ()) ~every ~steps forest =
  if every < 1 then invalid_arg "Recovery.run_protected: every must be positive";
  let stats = { checkpoints = 0; restarts = 0; replayed_steps = 0 } in
  let start = Blocks.Forest.step_count forest in
  let target = start + steps in
  let checkpoint () =
    let (), dt_ns =
      Obs.Clock.time_ns (fun () ->
          Obs.Span.with_ ~cat:"ckpt" "checkpoint" (fun () ->
              Store.put store (Snapshot.capture forest)))
    in
    Obs.Metrics.observe (Obs.Metrics.histogram "ckpt.checkpoint_ns") dt_ns;
    stats.checkpoints <- stats.checkpoints + 1
  in
  checkpoint ();
  let rec advance () =
    let cur = Blocks.Forest.step_count forest in
    if cur < target then begin
      (try
         Blocks.Forest.step forest;
         if (Blocks.Forest.step_count forest - start) mod every = 0 then checkpoint ()
       with Blocks.Ghost.Rank_crashed _ ->
         if stats.restarts >= max_restarts then raise (Too_many_restarts stats.restarts);
         stats.restarts <- stats.restarts + 1;
         Obs.Metrics.incr (Obs.Metrics.counter "ckpt.rollbacks");
         Obs.Span.with_ ~cat:"ckpt" "rollback" (fun () ->
             Blocks.Mpisim.restart forest.Blocks.Forest.comm;
             match Store.latest store with
             | None -> assert false (* the initial checkpoint always exists *)
             | Some snap ->
               Snapshot.restore snap forest;
               stats.replayed_steps <- stats.replayed_steps + (cur - snap.Snapshot.step)));
      advance ()
    end
  in
  advance ();
  stats

(** [run_protected] over an adaptive forest.  The checkpoint captures
    the refinement state (levels, ownership, frozen constants) alongside
    the active buffers, and the adaptation decisions replayed after a
    rollback are pure functions of the restored state — so the protected
    adaptive run finishes bitwise identical to an undisturbed one,
    freeze/thaw schedule included. *)
let run_protected_adaptive ?(max_restarts = 8) ~every ~steps af =
  if every < 1 then invalid_arg "Recovery.run_protected_adaptive: every must be positive";
  let stats = { checkpoints = 0; restarts = 0; replayed_steps = 0 } in
  let start = Blocks.Adaptive.step_count af in
  let target = start + steps in
  let latest = ref None in
  let checkpoint () =
    Obs.Span.with_ ~cat:"ckpt" "checkpoint" (fun () ->
        latest := Some (Snapshot.capture_adaptive af));
    stats.checkpoints <- stats.checkpoints + 1
  in
  checkpoint ();
  let rec advance () =
    let cur = Blocks.Adaptive.step_count af in
    if cur < target then begin
      (try
         Blocks.Adaptive.step af;
         if (Blocks.Adaptive.step_count af - start) mod every = 0 then checkpoint ()
       with Blocks.Ghost.Rank_crashed _ ->
         if stats.restarts >= max_restarts then raise (Too_many_restarts stats.restarts);
         stats.restarts <- stats.restarts + 1;
         Obs.Metrics.incr (Obs.Metrics.counter "ckpt.rollbacks");
         Obs.Span.with_ ~cat:"ckpt" "rollback" (fun () ->
             Blocks.Mpisim.restart af.Blocks.Adaptive.comm;
             match !latest with
             | None -> assert false (* the initial checkpoint always exists *)
             | Some snap ->
               Snapshot.restore_adaptive snap af;
               stats.replayed_steps <- stats.replayed_steps + (cur - snap.Snapshot.a_step)));
      advance ()
    end
  in
  advance ();
  stats
