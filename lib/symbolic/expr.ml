(** Symbolic expressions.

    The single expression type used on every abstraction layer of the
    pipeline.  The continuous layers (energy functional, PDE) use [Diff] and
    [Coord] nodes; the discretization layer eliminates all [Diff] nodes and
    leaves only field [Access]es with integer offsets, which the IR layer and
    the backends consume.

    Expressions are kept in a normal form by the smart constructors:
    - [Add] is n-ary, flattened, like terms combined, numeric head first;
    - [Mul] is n-ary, flattened, like bases combined into integer powers,
      numeric coefficient first;
    - [Pow] has an integer exponent that is never 0 or 1; division is
      [Pow (x, -1)] inside a [Mul].

    This mirrors sympy's automatic normalization, which the paper's pipeline
    relies on for its "simplify individually, then CSE globally" workflow. *)

type fn =
  | Sqrt
  | Rsqrt  (** reciprocal square root; kept first-class because backends map
               it to approximate intrinsics ([_mm512_rsqrt14_pd], [frsqrt]) *)
  | Exp
  | Log
  | Sin
  | Cos
  | Tanh
  | Fabs
  | Fmin
  | Fmax

type cond =
  | Lt of t * t  (** strictly less *)
  | Le of t * t  (** less or equal *)

and t =
  | Num of float
  | Sym of string
  | Coord of int                 (** continuous spatial coordinate, axis 0..dim-1 *)
  | Access of Fieldspec.access   (** discrete field access *)
  | Diff of t * int              (** continuous spatial derivative along an axis *)
  | Rand of int                  (** uniform(-1,1) random value, stream slot *)
  | Add of t list
  | Mul of t list
  | Pow of t * int
  | Fun of fn * t list
  | Select of cond * t * t       (** piecewise with mandatory fallback; maps to
                                     SIMD blend / CUDA ternary *)

let compare = (Stdlib.compare : t -> t -> int)
let equal a b = compare a b = 0

let zero = Num 0.
let one = Num 1.
let num x = Num x
let int_num i = Num (float_of_int i)
let sym s = Sym s
let coord d = Coord d
let access a = Access a
let field ?component ?(offsets = [||]) f =
  let offsets = if Array.length offsets = 0 then Array.make f.Fieldspec.dim 0 else offsets in
  Access (Fieldspec.access ?component f offsets)
let rand slot = Rand slot

let is_num = function Num _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

(* Split an addend into (coefficient, symbolic rest).  The rest is [one] for
   pure numbers so that constants group together. *)
let as_term = function
  | Num c -> (c, one)
  | Mul (Num c :: fs) ->
    (c, match fs with [ f ] -> f | fs -> Mul fs)
  | e -> (1., e)

(* Split a factor into (base, integer exponent). *)
let as_factor = function Pow (b, n) -> (b, n) | e -> (e, 1)

let rec add xs =
  let rec flatten acc = function
    | [] -> acc
    | Add ys :: rest -> flatten (flatten acc ys) rest
    | x :: rest -> flatten (x :: acc) rest
  in
  let terms = List.map as_term (flatten [] xs) in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) terms in
  let rec combine = function
    | (c1, r1) :: (c2, r2) :: rest when equal r1 r2 -> combine ((c1 +. c2, r1) :: rest)
    | t :: rest -> t :: combine rest
    | [] -> []
  in
  let combined = List.filter (fun (c, _) -> c <> 0.) (combine sorted) in
  let rebuild (c, r) =
    if equal r one then Num c
    else if c = 1. then r
    else
      match r with
      | Mul fs -> Mul (Num c :: fs)
      | r -> Mul [ Num c; r ]
  in
  (* numeric constant (rest = one) sorts first because Num is the first
     constructor; keep it at the head of the rebuilt list *)
  match List.map rebuild combined with
  | [] -> zero
  | [ x ] -> x
  | xs -> Add xs

and mul xs =
  let rec flatten acc = function
    | [] -> acc
    | Mul ys :: rest -> flatten (flatten acc ys) rest
    | x :: rest -> flatten (x :: acc) rest
  in
  let factors = flatten [] xs in
  if List.exists (function Num 0. -> true | _ -> false) factors then zero
  else
    let coeff = ref 1. in
    let symbolic =
      List.filter_map
        (fun f ->
          match as_factor f with
          | Num c, n ->
            coeff := !coeff *. (c ** float_of_int n);
            None
          | b, n -> Some (b, n))
        factors
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) symbolic in
    let rec combine = function
      | (b1, n1) :: (b2, n2) :: rest when equal b1 b2 -> combine ((b1, n1 + n2) :: rest)
      | f :: rest -> f :: combine rest
      | [] -> []
    in
    let rebuilt =
      List.filter_map
        (fun (b, n) -> if n = 0 then None else Some (pow b n))
        (combine sorted)
    in
    (* powers may have folded to numbers or re-expanded; re-extract numerics *)
    let rebuilt =
      List.filter_map
        (fun f ->
          match f with
          | Num c ->
            coeff := !coeff *. c;
            None
          | f -> Some f)
        rebuilt
    in
    if !coeff = 0. then zero
    else
      match rebuilt with
      | [] -> Num !coeff
      | [ x ] when !coeff = 1. -> x
      | xs -> if !coeff = 1. then Mul xs else Mul (Num !coeff :: xs)

and pow b n =
  if n = 0 then one
  else if n = 1 then b
  else
    match b with
    | Num x -> Num (x ** float_of_int n)
    | Pow (b2, m) -> pow b2 (n * m)
    | Mul fs -> mul (List.map (fun f -> pow f n) fs)
    | b -> Pow (b, n)

let sub a b = add [ a; mul [ Num (-1.); b ] ]
let neg a = mul [ Num (-1.); a ]
let div a b = mul [ a; pow b (-1) ]
let sq a = pow a 2

(* C99 fmin/fmax semantics, which the generated C and CUDA compute: when one
   operand is NaN the other is returned (NaN only when both are).  OCaml's
   [Stdlib.min]/[Float.min] disagree on NaN, so every layer that evaluates
   [Fmin]/[Fmax] numerically must go through these. *)
let c_fmin a b =
  if Float.is_nan a then b else if Float.is_nan b then a else if a <= b then a else b

let c_fmax a b =
  if Float.is_nan a then b else if Float.is_nan b then a else if a >= b then a else b

let fn f args =
  match (f, args) with
  | Sqrt, [ Num x ] when x >= 0. -> Num (sqrt x)
  | Rsqrt, [ Num x ] when x > 0. -> Num (1. /. sqrt x)
  | Exp, [ Num x ] -> Num (exp x)
  | Log, [ Num x ] when x > 0. -> Num (log x)
  | Sin, [ Num x ] -> Num (sin x)
  | Cos, [ Num x ] -> Num (cos x)
  | Tanh, [ Num x ] -> Num (tanh x)
  | Fabs, [ Num x ] -> Num (abs_float x)
  | Fmin, [ Num a; Num b ] -> Num (c_fmin a b)
  | Fmax, [ Num a; Num b ] -> Num (c_fmax a b)
  | _ -> Fun (f, args)

let sqrt_ x = fn Sqrt [ x ]
let rsqrt x = fn Rsqrt [ x ]
let fabs x = fn Fabs [ x ]
let fmin_ a b = fn Fmin [ a; b ]
let fmax_ a b = fn Fmax [ a; b ]

let select cond if_true if_false =
  let decided lhs rhs strict =
    match (lhs, rhs) with
    | Num a, Num b -> Some (if strict then a < b else a <= b)
    | _ -> None
  in
  let outcome =
    match cond with
    | Lt (a, b) -> decided a b true
    | Le (a, b) -> decided a b false
  in
  match outcome with
  | Some true -> if_true
  | Some false -> if_false
  | None -> if equal if_true if_false then if_true else Select (cond, if_true, if_false)

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

(** Direct children of a node (conditions included for [Select]). *)
let children = function
  | Num _ | Sym _ | Coord _ | Access _ | Rand _ -> []
  | Diff (e, _) -> [ e ]
  | Add xs | Mul xs | Fun (_, xs) -> xs
  | Pow (b, _) -> [ b ]
  | Select (Lt (a, b), t, f) | Select (Le (a, b), t, f) -> [ a; b; t; f ]

let rec fold f acc e = List.fold_left (fold f) (f acc e) (children e)

(** Bottom-up rebuild through the smart constructors: [g] is applied to every
    node after its children have been rewritten. *)
let rec map_bottom_up g e =
  let e' =
    match e with
    | Num _ | Sym _ | Coord _ | Access _ | Rand _ -> e
    | Diff (x, d) -> Diff (map_bottom_up g x, d)
    | Add xs -> add (List.map (map_bottom_up g) xs)
    | Mul xs -> mul (List.map (map_bottom_up g) xs)
    | Pow (b, n) -> pow (map_bottom_up g b) n
    | Fun (f, xs) -> fn f (List.map (map_bottom_up g) xs)
    | Select (c, t, f) ->
      let mc = function
        | Lt (a, b) -> Lt (map_bottom_up g a, map_bottom_up g b)
        | Le (a, b) -> Le (map_bottom_up g a, map_bottom_up g b)
      in
      select (mc c) (map_bottom_up g t) (map_bottom_up g f)
  in
  g e'

let subst pairs e =
  let table = pairs in
  map_bottom_up
    (fun node ->
      match List.find_opt (fun (from, _) -> equal from node) table with
      | Some (_, to_) -> to_
      | None -> node)
    e

let subst_syms pairs e =
  map_bottom_up
    (function
      | Sym s as node -> (
        match List.assoc_opt s pairs with Some v -> v | None -> node)
      | node -> node)
    e

let contains atom e = fold (fun found n -> found || equal n atom) false e

let count_nodes e = fold (fun n _ -> n + 1) 0 e

let free_syms e =
  fold
    (fun acc n -> match n with Sym s when not (List.mem s acc) -> s :: acc | _ -> acc)
    [] e
  |> List.sort Stdlib.compare

let accesses e =
  fold
    (fun acc n ->
      match n with
      | Access a when not (List.exists (Fieldspec.equal_access a) acc) -> a :: acc
      | _ -> acc)
    [] e
  |> List.rev

let fields e =
  List.fold_left
    (fun acc (a : Fieldspec.access) ->
      if List.exists (Fieldspec.equal a.field) acc then acc else a.field :: acc)
    [] (accesses e)
  |> List.rev

(** True when the expression's value varies across cells of a sweep: it reads
    a field, a coordinate, a derivative or a random stream. *)
let is_spatial e =
  fold
    (fun sp n ->
      sp || match n with Access _ | Coord _ | Diff _ | Rand _ -> true | _ -> false)
    false e

(* ------------------------------------------------------------------ *)
(* Differentiation                                                     *)
(* ------------------------------------------------------------------ *)

(** [diff e ~wrt] differentiates [e] with respect to the atom [wrt] (a
    symbol, field access, coordinate or [Diff] node), treating every other
    atom as a constant.  Differentiating with respect to [Diff] atoms is what
    makes variational derivatives expressible (sympy's [Derivative]-as-symbol
    trick). *)
let rec diff e ~wrt =
  if equal e wrt then one
  else
    match e with
    | Num _ | Sym _ | Coord _ | Access _ | Diff _ | Rand _ -> zero
    | Add xs -> add (List.map (diff ~wrt) xs)
    | Mul xs ->
      let rec terms before = function
        | [] -> []
        | x :: after -> mul (diff x ~wrt :: List.rev_append before after) :: terms (x :: before) after
      in
      add (terms [] xs)
    | Pow (b, n) -> mul [ int_num n; pow b (n - 1); diff b ~wrt ]
    | Fun (f, [ x ]) ->
      let dx = diff x ~wrt in
      if equal dx zero then zero
      else
        let outer =
          match f with
          | Sqrt -> mul [ num 0.5; pow (sqrt_ x) (-1) ]
          | Rsqrt -> mul [ num (-0.5); pow x (-1); rsqrt x ]
          | Exp -> fn Exp [ x ]
          | Log -> pow x (-1)
          | Sin -> fn Cos [ x ]
          | Cos -> neg (fn Sin [ x ])
          | Tanh -> sub one (sq (fn Tanh [ x ]))
          | Fabs -> select (Lt (x, zero)) (num (-1.)) one
          | Fmin | Fmax -> invalid_arg "Expr.diff: unary min/max"
        in
        mul [ outer; dx ]
    | Fun (Fmin, [ a; b ]) -> select (Le (a, b)) (diff a ~wrt) (diff b ~wrt)
    | Fun (Fmax, [ a; b ]) -> select (Le (a, b)) (diff b ~wrt) (diff a ~wrt)
    | Fun _ -> invalid_arg "Expr.diff: unsupported function arity"
    | Select (c, t, f) -> select c (diff t ~wrt) (diff f ~wrt)

(** Continuous spatial derivative [∂_axis e], pushed through sums and
    spatially-constant factors; what remains spatial is wrapped in a [Diff]
    node for the discretization layer. *)
let rec spatial_diff e axis =
  match e with
  | Num _ | Sym _ -> zero
  | Add xs -> add (List.map (fun x -> spatial_diff x axis) xs)
  | Mul xs ->
    let const, rest = List.partition (fun f -> not (is_spatial f)) xs in
    if rest = [] then zero
    else if const = [] then Diff (e, axis)
    else mul (const @ [ spatial_diff (mul rest) axis ])
  | e -> if is_spatial e then Diff (e, axis) else zero

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let fn_name = function
  | Sqrt -> "sqrt"
  | Rsqrt -> "rsqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Tanh -> "tanh"
  | Fabs -> "fabs"
  | Fmin -> "fmin"
  | Fmax -> "fmax"

let pp_float ppf x =
  if Float.is_integer x && abs_float x < 1e16 then Fmt.pf ppf "%.1f" x
  else Fmt.pf ppf "%.17g" x

let rec pp_prec prec ppf e =
  let paren p body = if prec > p then Fmt.pf ppf "(%t)" body else body ppf in
  match e with
  | Num x -> if x < 0. then paren 2 (fun ppf -> pp_float ppf x) else pp_float ppf x
  | Sym s -> Fmt.string ppf s
  | Coord d -> Fmt.pf ppf "x_%d" d
  | Access a -> Fieldspec.pp_access ppf a
  | Rand i -> Fmt.pf ppf "rand_%d" i
  | Diff (x, d) -> Fmt.pf ppf "D_%d[%a]" d (pp_prec 0) x
  | Add xs ->
    paren 1 (fun ppf ->
        List.iteri
          (fun i x ->
            match as_term x with
            | c, r when i > 0 && c < 0. ->
              Fmt.pf ppf " - %a" (pp_prec 2) (if c = -1. then r else mul [ Num (-.c); r ])
            | _ -> if i = 0 then pp_prec 2 ppf x else Fmt.pf ppf " + %a" (pp_prec 2) x)
          xs)
  | Mul xs ->
    paren 2 (fun ppf ->
        List.iteri
          (fun i x -> if i = 0 then pp_prec 3 ppf x else Fmt.pf ppf "*%a" (pp_prec 3) x)
          xs)
  | Pow (b, n) -> paren 3 (fun ppf -> Fmt.pf ppf "%a**%d" (pp_prec 4) b n)
  | Fun (f, xs) ->
    Fmt.pf ppf "%s(%a)" (fn_name f) (Fmt.list ~sep:(Fmt.any ", ") (pp_prec 0)) xs
  | Select (c, t, f) ->
    let op, a, b = match c with Lt (a, b) -> ("<", a, b) | Le (a, b) -> ("<=", a, b) in
    paren 0 (fun ppf ->
        Fmt.pf ppf "%a %s %a ? %a : %a" (pp_prec 1) a op (pp_prec 1) b (pp_prec 1) t
          (pp_prec 1) f)

let pp = pp_prec 0
let to_string e = Fmt.str "%a" pp e
