(** Reference numeric evaluation of expressions.

    Used by tests (checking algebraic passes preserve values) and by the
    interpreting fallback of the VM.  [Diff] nodes cannot be evaluated — the
    discretizer must have removed them. *)

open Expr

exception Unbound of string

type env = {
  sym : string -> float;
  access : Fieldspec.access -> float;
  coord : int -> float;
  rand : int -> float;
}

let no_sym s = raise (Unbound ("symbol " ^ s))
let no_access a = raise (Unbound (Fmt.str "access %a" Fieldspec.pp_access a))
let no_coord d = raise (Unbound (Printf.sprintf "coordinate %d" d))
let no_rand i = raise (Unbound (Printf.sprintf "random slot %d" i))

let env ?(sym = no_sym) ?(access = no_access) ?(coord = no_coord) ?(rand = no_rand) () =
  { sym; access; coord; rand }

(** Environment binding only symbols, from an association list. *)
let of_alist alist =
  env ~sym:(fun s -> match List.assoc_opt s alist with Some v -> v | None -> no_sym s) ()

let rec eval env e =
  match e with
  | Num x -> x
  | Sym s -> env.sym s
  | Coord d -> env.coord d
  | Access a -> env.access a
  | Rand i -> env.rand i
  | Diff _ -> invalid_arg "Eval.eval: Diff node survived discretization"
  | Add xs -> List.fold_left (fun acc x -> acc +. eval env x) 0. xs
  | Mul xs -> List.fold_left (fun acc x -> acc *. eval env x) 1. xs
  | Pow (b, n) ->
    let v = eval env b in
    if n < 0 then 1. /. (v ** float_of_int (-n)) else v ** float_of_int n
  | Fun (f, xs) -> (
    match (f, List.map (eval env) xs) with
    | Sqrt, [ x ] -> sqrt x
    | Rsqrt, [ x ] -> 1. /. sqrt x
    | Exp, [ x ] -> exp x
    | Log, [ x ] -> log x
    | Sin, [ x ] -> sin x
    | Cos, [ x ] -> cos x
    | Tanh, [ x ] -> tanh x
    | Fabs, [ x ] -> abs_float x
    | Fmin, [ a; b ] -> Expr.c_fmin a b
    | Fmax, [ a; b ] -> Expr.c_fmax a b
    | _ -> invalid_arg "Eval.eval: bad function arity")
  | Select (c, t, f) ->
    let holds = match c with
      | Lt (a, b) -> eval env a < eval env b
      | Le (a, b) -> eval env a <= eval env b
    in
    if holds then eval env t else eval env f

(** Evaluate a CSE binding list followed by the main expressions, threading
    temporary values through the environment. *)
let eval_bindings env (bindings : Cse.binding list) exprs =
  let table : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let sym s =
    match Hashtbl.find_opt table s with Some v -> v | None -> env.sym s
  in
  let env = { env with sym } in
  List.iter (fun (name, rhs) -> Hashtbl.replace table name (eval env rhs)) bindings;
  List.map (eval env) exprs
