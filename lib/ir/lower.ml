(** Lowering to loop nests (paper §3.4).

    The assignment list is wrapped in a loop nest whose order follows the
    memory layout (innermost loop = fastest-varying coordinate, for spatial
    locality).  Assignments whose value is constant with respect to the
    inner loops are hoisted to the loop level at which they become
    computable.  In combination with CSE this automatically exploits special
    functional forms of the temperature: if T depends on one spatial
    coordinate only, that coordinate is chosen as the outermost loop and all
    temperature-dependent subexpressions move out of the inner loops. *)

open Symbolic
open Field

type t = {
  kernel : Kernel.t;
  loop_order : int array;  (** axes, outermost first; length = kernel.dim *)
  hoisted : Assignment.t list array;
      (** per depth 0..dim: depth 0 is the loop preheader, depth d sits just
          inside the d-th loop; depth dim is the innermost body prefix *)
  body : Assignment.t list;  (** stores and non-hoistable assignments *)
  blocking : int array option;  (** spatial blocking factors, layout order *)
}

module Axes = Set.Make (Int)

(* Spatial axes an expression's value depends on; [temp_axes] resolves
   already-classified temporaries. *)
let axis_dependence ~dim ~temp_axes e =
  let all = Axes.of_list (List.init dim Fun.id) in
  Expr.fold
    (fun acc node ->
      match node with
      | Expr.Access _ | Expr.Rand _ | Expr.Diff _ -> Axes.union acc all
      | Expr.Coord d -> Axes.add d acc
      | Expr.Sym s -> (
        match Hashtbl.find_opt temp_axes s with
        | Some axes -> Axes.union acc axes
        | None -> acc (* runtime parameter: loop invariant *))
      | _ -> acc)
    Axes.empty e

(** Pick the loop order: innermost = fastest memory axis; if some hoistable
    temporaries depend on exactly one (non-fastest) axis, that axis becomes
    the outermost loop so they are computed O(n) instead of O(n³) times. *)
let choose_loop_order ~dim ~fastest single_axis_deps =
  let default = Array.of_list (List.rev (List.init dim Fun.id)) in
  (* default: highest axis outermost, axis 0 (x, fastest) innermost *)
  let order = if fastest = 0 then default else Array.of_list (List.init dim Fun.id) in
  match List.find_opt (fun a -> a <> fastest) single_axis_deps with
  | None -> order
  | Some outer ->
    let rest = Array.to_list order |> List.filter (fun a -> a <> outer) in
    Array.of_list (outer :: rest)

let run ?(fastest = 0) ?blocking (kernel : Kernel.t) =
  let dim = kernel.dim in
  let temp_axes : (string, Axes.t) Hashtbl.t = Hashtbl.create 64 in
  (* first pass: classify each temporary's axis dependence *)
  let deps =
    List.map
      (fun (a : Assignment.t) ->
        let axes = axis_dependence ~dim ~temp_axes a.rhs in
        (match a.lhs with Assignment.Temp s -> Hashtbl.replace temp_axes s axes | _ -> ());
        (a, axes))
      kernel.body
  in
  let single_axis =
    List.filter_map
      (fun ((a : Assignment.t), axes) ->
        match (a.lhs, Axes.elements axes) with
        | Assignment.Temp _, [ ax ] -> Some ax
        | _ -> None)
      deps
    |> List.sort_uniq Stdlib.compare
  in
  let loop_order = choose_loop_order ~dim ~fastest single_axis in
  let depth_of_axis ax =
    let rec find i = if loop_order.(i) = ax then i + 1 else find (i + 1) in
    find 0
  in
  let hoisted = Array.make (dim + 1) [] in
  let body = ref [] in
  List.iter
    (fun ((a : Assignment.t), axes) ->
      match a.lhs with
      | Assignment.Store _ -> body := a :: !body
      | Assignment.Temp _ ->
        let depth = Axes.fold (fun ax acc -> max acc (depth_of_axis ax)) axes 0 in
        if depth >= dim then body := a :: !body
        else hoisted.(depth) <- a :: hoisted.(depth))
    deps;
  Array.iteri (fun i l -> hoisted.(i) <- List.rev l) hoisted;
  { kernel; loop_order; hoisted; body = List.rev !body; blocking }

(** Number of innermost-loop assignments saved per cell by hoisting. *)
let hoisted_count t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.hoisted

(** Depth-indexed instruction view of the lowering: [groups.(d)] is the
    assignment list executed at loop depth [d] (0 = preheader, [d] inside
    the [d]-th loop of [loop_order]), and [groups.(dim)] is the per-cell
    body.  Both VM backends (the interpreter and the JIT) consume the
    lowering through this single view, so they cannot disagree about which
    instruction runs at which depth. *)
let groups t =
  let dim = Array.length t.loop_order in
  Array.init (dim + 1) (fun d -> if d = dim then t.body else t.hoisted.(d))

let pp ppf t =
  Fmt.pf ppf "@[<v 2>lowered %s: loops %a, %d hoisted, %d in body@]" t.kernel.Kernel.name
    Fmt.(array ~sep:(any ",") int)
    t.loop_order (hoisted_count t) (List.length t.body)
