(** Random well-typed inputs for the differential harness.

    Every generator comes with a shrinker so a failing oracle reports a
    minimized counterexample, not a 40-node expression dump.  Shrinking is
    measure-decreasing (node count, then summed constant magnitude), which
    guarantees termination even though candidates are rebuilt through the
    normalizing smart constructors. *)

open Symbolic

module G = QCheck.Gen

let ( let* ) = G.( >>= )

(* ------------------------------------------------------------------ *)
(* Scalar values                                                       *)
(* ------------------------------------------------------------------ *)

(* Bounded magnitudes: the oracles compare floating-point results up to a
   tolerance, so generated atoms stay small and special values (0, ±1, 1/2)
   that trigger smart-constructor folding are over-represented. *)
let value : float G.t =
  G.frequency
    [ (2, G.oneofl [ 0.; 1.; -1.; 0.5; -0.5; 2. ]); (3, G.float_range (-2.) 2.) ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let fn1 = G.oneofl Expr.[ Sqrt; Rsqrt; Exp; Log; Sin; Cos; Tanh; Fabs ]

(** Random well-typed expression over the given leaf generators.  [size]
    bounds the node budget; all inner nodes go through the smart
    constructors, so samples are always in normal form (exactly what the
    optimization passes receive in the real pipeline). *)
let expr ?(size = 10) ~(atoms : Expr.t G.t list) () : Expr.t G.t =
  let atom = G.oneof atoms in
  let rec go n =
    if n <= 1 then atom
    else
      let sub = go (n / 2) in
      G.frequency
        [
          (2, atom);
          (4, G.map Expr.add (G.list_size (G.int_range 2 3) sub));
          (4, G.map Expr.mul (G.list_size (G.int_range 2 3) sub));
          (2, G.map2 Expr.pow sub (G.oneofl [ -2; -1; 2; 3 ]));
          (1, G.map Expr.sq sub);
          (2, G.map2 (fun f x -> Expr.fn f [ x ]) fn1 sub);
          (1, G.map2 Expr.fmin_ sub sub);
          (1, G.map2 Expr.fmax_ sub sub);
          ( 1,
            let* a = sub in
            let* b = sub in
            let* t = sub in
            let* f = sub in
            let* strict = G.bool in
            G.return
              (Expr.select (if strict then Expr.Lt (a, b) else Expr.Le (a, b)) t f) );
        ]
  in
  let* n = G.int_range 1 size in
  go n

(* Summed magnitude of numeric leaves: the secondary shrink measure that
   lets constants shrink toward 0 without changing the node count. *)
let num_measure e =
  Expr.fold
    (fun acc n ->
      match n with Expr.Num x -> acc +. Float.min (Float.abs x) 1e6 | _ -> acc)
    0. e

let rec shrink_expr (e : Expr.t) yield =
  let n = Expr.count_nodes e in
  let m = num_measure e in
  let emit c =
    let nc = Expr.count_nodes c in
    if nc < n || (nc = n && num_measure c < m -. 1e-9) then yield c
  in
  (* shrink a numeric leaf toward zero *)
  (match e with
  | Expr.Num x when x <> 0. ->
    yield Expr.zero;
    let t = Float.of_int (Float.to_int x) in
    if t <> x then yield (Expr.num t)
    else if Float.abs x > 1. then yield (Expr.num (Float.of_int (Float.to_int (x /. 2.))))
  | _ -> ());
  let kids = Expr.children e in
  (* any strict subexpression is a candidate *)
  List.iter emit kids;
  (* drop one operand of an n-ary node *)
  (match e with
  | (Expr.Add xs | Expr.Mul xs) when List.length xs > 1 ->
    List.iteri
      (fun i _ -> emit (Cse.rebuild_with_children e (List.filteri (fun j _ -> j <> i) xs)))
      xs
  | _ -> ());
  (* shrink one child in place *)
  List.iteri
    (fun i k ->
      shrink_expr k (fun k' ->
          let kids' = List.mapi (fun j k0 -> if j = i then k' else k0) kids in
          emit (Cse.rebuild_with_children e kids')))
    kids

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

let sym_pool = [ "a"; "b"; "c" ]

let env_gen : (string * float) list G.t =
  G.map
    (fun vs -> List.map2 (fun s v -> (s, v)) sym_pool vs)
    (G.list_repeat (List.length sym_pool) value)

let shrink_env env yield =
  List.iteri
    (fun i (_, v) ->
      if v <> 0. then
        yield (List.mapi (fun j (s, v') -> if i = j then (s, 0.) else (s, v')) env))
    env

let pp_env ppf env =
  Fmt.list ~sep:(Fmt.any ", ")
    (fun ppf (s, v) -> Fmt.pf ppf "%s=%g" s v)
    ppf env

(* ------------------------------------------------------------------ *)
(* Oracle 1: scalar expression + environment                           *)
(* ------------------------------------------------------------------ *)

let scalar_atoms =
  [ G.map Expr.sym (G.oneofl sym_pool); G.map Expr.num value ]

let arb_scalar_expr_env : (Expr.t * (string * float) list) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (e, env) -> Fmt.str "@[<hov 2>%a@ where %a@]" Expr.pp e pp_env env)
    ~shrink:(fun (e, env) yield ->
      shrink_expr e (fun e' -> yield (e', env));
      shrink_env env (fun env' -> yield (e, env')))
    (G.pair (expr ~size:12 ~atoms:scalar_atoms ()) env_gen)

(* ------------------------------------------------------------------ *)
(* Oracles 2/4: random stencil kernels                                 *)
(* ------------------------------------------------------------------ *)

(** Field spec with a random component count (dimension fixed at 2 — the
    engine/interpreter comparison is about addressing and evaluation, which
    the third axis would only slow down). *)
let fieldspec ~name : Fieldspec.t G.t =
  let* components = G.int_range 1 3 in
  G.return (Fieldspec.create ~dim:2 ~components name)

type kernel_sample = {
  src : Fieldspec.t;
  dst : Fieldspec.t;
  body : Field.Assignment.t list;  (** SSA temps followed by one store per
                                       dst component; reads only [src] *)
  params : (string * float) list;  (** alpha, beta, dx *)
  seed : int;                      (** keys the data fill and Rand streams *)
}

let param_pool = [ "alpha"; "beta" ]

let kernel_atoms ~(src : Fieldspec.t) ~temps ~with_rand =
  let acc =
    let* component = G.int_bound (src.Fieldspec.components - 1) in
    let* ox = G.int_range (-2) 2 in
    let* oy = G.int_range (-2) 2 in
    G.return (Expr.access (Fieldspec.access ~component src [| ox; oy |]))
  in
  let weighted =
    [
      (2, G.map Expr.num value);
      (2, G.map Expr.sym (G.oneofl param_pool));
      (1, G.map Expr.coord (G.int_bound 1));
      (4, acc);
    ]
    @ (if temps = [] then [] else [ (2, G.map Expr.sym (G.oneofl temps)) ])
    @ (if with_rand then [ (1, G.map Expr.rand (G.int_bound 1)) ] else [])
  in
  [ G.frequency weighted ]

let kernel_sample ?(with_rand = true) () : kernel_sample G.t =
  let* src = fieldspec ~name:"src" in
  let* dst = fieldspec ~name:"dst" in
  let* n_temps = G.int_bound 3 in
  let rec gen_temps i acc temps =
    if i = n_temps then G.return (List.rev acc, List.rev temps)
    else
      let name = Printf.sprintf "t%d" i in
      let* rhs = expr ~size:8 ~atoms:(kernel_atoms ~src ~temps ~with_rand) () in
      gen_temps (i + 1) (Field.Assignment.assign_temp name rhs :: acc) (name :: temps)
  in
  let* temp_asgns, temps = gen_temps 0 [] [] in
  let rec gen_stores c acc =
    if c = dst.Fieldspec.components then G.return (List.rev acc)
    else
      let* rhs = expr ~size:10 ~atoms:(kernel_atoms ~src ~temps ~with_rand) () in
      gen_stores (c + 1) (Field.Assignment.store (Fieldspec.center ~component:c dst) rhs :: acc)
  in
  let* stores = gen_stores 0 [] in
  let* va = value in
  let* vb = value in
  let* dx = G.oneofl [ 0.5; 1.0; 2.0 ] in
  let* seed = G.int_bound 1000 in
  G.return
    {
      src;
      dst;
      body = temp_asgns @ stores;
      params = [ ("alpha", va); ("beta", vb); ("dx", dx) ];
      seed;
    }

let shrink_kernel (s : kernel_sample) yield =
  (* shrink one right-hand side in place *)
  List.iteri
    (fun i (a : Field.Assignment.t) ->
      shrink_expr a.rhs (fun rhs' ->
          yield
            {
              s with
              body =
                List.mapi
                  (fun j a0 -> if i = j then { a0 with Field.Assignment.rhs = rhs' } else a0)
                  s.body;
            }))
    s.body;
  (* drop an unused temp, or a surplus store *)
  let used =
    List.concat_map (fun (a : Field.Assignment.t) -> Expr.free_syms a.rhs) s.body
  in
  let n_stores =
    List.length (List.filter (fun a -> match a.Field.Assignment.lhs with
      | Field.Assignment.Store _ -> true | _ -> false) s.body)
  in
  List.iteri
    (fun i (a : Field.Assignment.t) ->
      let droppable =
        match a.Field.Assignment.lhs with
        | Field.Assignment.Temp t -> not (List.mem t used)
        | Field.Assignment.Store _ -> n_stores > 1
      in
      if droppable then yield { s with body = List.filteri (fun j _ -> j <> i) s.body })
    s.body;
  (* zero one parameter *)
  List.iteri
    (fun i (p, v) ->
      if v <> 0. && p <> "dx" then
        yield
          {
            s with
            params = List.mapi (fun j (p', v') -> if i = j then (p', 0.) else (p', v')) s.params;
          })
    s.params

let pp_kernel ppf (s : kernel_sample) =
  Fmt.pf ppf "@[<v 2>kernel (src^%d -> dst^%d, seed %d, %a):@ %a@]"
    s.src.Fieldspec.components s.dst.Fieldspec.components s.seed pp_env s.params
    Field.Assignment.pp_list s.body

let arb_kernel ?(with_rand = true) () : kernel_sample QCheck.arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" pp_kernel)
    ~shrink:shrink_kernel
    (kernel_sample ~with_rand ())

(* ------------------------------------------------------------------ *)
(* Oracle 3: continuous divergence right-hand sides                    *)
(* ------------------------------------------------------------------ *)

(** The continuous scalar field the fluxes read. *)
let phi_c = Fieldspec.scalar ~dim:2 "phi"

type flux_sample = {
  rhs : Expr.t;        (** continuous RHS: divergence terms + remainder *)
  kappa : float;
  fdx : float;
  fseed : int;
}

let flux_coeff_atoms =
  [
    G.frequency
      [
        (3, G.return (Expr.field phi_c));
        (2, G.map Expr.num value);
        (2, G.return (Expr.sym "kappa"));
      ];
  ]

(* One flux along [axis]: coeff * D_{d'} phi (+ optional non-derivative
   part).  Keeping exactly one Diff level matches what the energy layer
   emits and keeps ghost requirements within the block's 2 layers. *)
let flux _axis : Expr.t G.t =
  let* d' = G.int_bound 1 in
  let* coeff = expr ~size:4 ~atoms:flux_coeff_atoms () in
  let* with_extra = G.bool in
  let* extra = expr ~size:3 ~atoms:flux_coeff_atoms () in
  let base = Expr.mul [ coeff; Expr.Diff (Expr.field phi_c, d') ] in
  G.return (if with_extra then Expr.add [ base; extra ] else base)

let flux_sample : flux_sample G.t =
  let* f0 = flux 0 in
  let* f1 = flux 1 in
  let* remainder = expr ~size:4 ~atoms:flux_coeff_atoms () in
  let* kappa = G.float_range 0.1 2. in
  let* fdx = G.oneofl [ 0.5; 1.0 ] in
  let* fseed = G.int_bound 1000 in
  G.return
    { rhs = Expr.add [ Expr.Diff (f0, 0); Expr.Diff (f1, 1); remainder ]; kappa; fdx; fseed }

let shrink_flux (s : flux_sample) yield =
  shrink_expr s.rhs (fun rhs' -> yield { s with rhs = rhs' })

let arb_flux : flux_sample QCheck.arbitrary =
  QCheck.make
    ~print:(fun s ->
      Fmt.str "@[<hov 2>%a@ where kappa=%g dx=%g seed=%d@]" Expr.pp s.rhs s.kappa s.fdx
        s.fseed)
    ~shrink:shrink_flux flux_sample

(* ------------------------------------------------------------------ *)
(* Oracle 5: random model runs                                         *)
(* ------------------------------------------------------------------ *)

type model_sample = { mseed : int; split : bool; steps : int }

let arb_model : model_sample QCheck.arbitrary =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "seed %d, %s kernels, %d steps" s.mseed
        (if s.split then "split" else "full")
        s.steps)
    ~shrink:(fun s yield -> if s.steps > 1 then yield { s with steps = s.steps - 1 })
    (let* mseed = G.int_bound 10_000 in
     let* split = G.bool in
     let* steps = G.int_range 1 3 in
     G.return { mseed; split; steps })

(* ------------------------------------------------------------------ *)
(* Oracle 6: random fault schedules and checkpoint cadences            *)
(* ------------------------------------------------------------------ *)

type resilience_sample = {
  rseed : int;        (** initial-condition seed *)
  plan_seed : int;    (** keys the Philox fault-decision streams *)
  drop : float;
  delay : float;
  duplicate : float;
  crash_rank : int;
  crash_step : int;   (** the rank dies entering this step *)
  ckpt_every : int;
  rsteps : int;       (** total steps the protected run must complete *)
}

let pp_resilience ppf (s : resilience_sample) =
  Fmt.pf ppf
    "seed %d, plan %d (drop %.2f delay %.2f dup %.2f), rank %d dies at step %d, \
     checkpoint every %d, %d steps"
    s.rseed s.plan_seed s.drop s.delay s.duplicate s.crash_rank s.crash_step
    s.ckpt_every s.rsteps

let shrink_resilience (s : resilience_sample) yield =
  if s.rsteps > s.crash_step + 1 then yield { s with rsteps = s.rsteps - 1 };
  if s.crash_step > 1 then
    yield { s with crash_step = s.crash_step - 1; rsteps = s.rsteps - 1 };
  if s.drop > 0. then yield { s with drop = 0. };
  if s.delay > 0. then yield { s with delay = 0. };
  if s.duplicate > 0. then yield { s with duplicate = 0. };
  if s.ckpt_every > 1 then yield { s with ckpt_every = s.ckpt_every - 1 }

let arb_resilience : resilience_sample QCheck.arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" pp_resilience)
    ~shrink:shrink_resilience
    (let* rseed = G.int_bound 10_000 in
     let* plan_seed = G.int_bound 1000 in
     let* drop = G.oneofl [ 0.; 0.05; 0.1 ] in
     let* delay = G.oneofl [ 0.; 0.08; 0.15 ] in
     let* duplicate = G.oneofl [ 0.; 0.05; 0.1 ] in
     let* crash_rank = G.int_bound 3 in
     let* crash_step = G.int_range 1 3 in
     let* tail = G.int_range 1 3 in
     let* ckpt_every = G.int_range 1 3 in
     G.return
       {
         rseed;
         plan_seed;
         drop;
         delay;
         duplicate;
         crash_rank;
         crash_step;
         ckpt_every;
         rsteps = crash_step + tail;
       })

(* ------------------------------------------------------------------ *)
(* Oracle 7: pooled tiled execution vs. serial                         *)
(* ------------------------------------------------------------------ *)

type pool_sample = {
  pl_p2 : bool;         (** false = P1, true = P2 *)
  pl_variant : int;     (** index into [Drift.variant_kernels]: 0..3 *)
  pl_n : int;           (** cubic grid edge *)
  pl_tile : int array;  (** loop-depth tile shape; 0 = full extent *)
  pl_domains : int;     (** pool width: 1, 2 or 4 *)
}

let pp_pool ppf (s : pool_sample) =
  Fmt.pf ppf "%s variant %d, %d^3 grid, tile %s, %d domain(s)"
    (if s.pl_p2 then "P2" else "P1")
    s.pl_variant s.pl_n
    (String.concat "x" (Array.to_list (Array.map string_of_int s.pl_tile)))
    s.pl_domains

(* Shrink toward the smallest failing grid first, then toward trivial
   tiles and fewer lanes. *)
let shrink_pool (s : pool_sample) yield =
  if s.pl_n > 4 then yield { s with pl_n = s.pl_n - 1 };
  Array.iteri
    (fun d x ->
      if x > 0 then begin
        let t = Array.copy s.pl_tile in
        t.(d) <- 0;
        yield { s with pl_tile = t }
      end)
    s.pl_tile;
  if s.pl_domains = 4 then yield { s with pl_domains = 2 };
  if s.pl_domains = 2 then yield { s with pl_domains = 1 };
  if s.pl_variant > 0 then yield { s with pl_variant = 0 }

let arb_pool : pool_sample QCheck.arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" pp_pool)
    ~shrink:shrink_pool
    (let* pl_p2 = G.bool in
     let* pl_variant = G.int_bound 3 in
     let* pl_n = G.int_range 4 8 in
     (* tile extents may exceed the grid or block the innermost depth:
        determinism must hold for every shape, not just the fast ones *)
     let* pl_tile = G.array_size (G.return 3) (G.oneofl [ 0; 1; 2; 3; 5 ]) in
     let* pl_domains = G.oneofl [ 1; 2; 4 ] in
     G.return { pl_p2; pl_variant; pl_n; pl_tile; pl_domains })

(* ------------------------------------------------------------------ *)
(* Oracle 9: farm-scheduled execution vs. solo                         *)
(* ------------------------------------------------------------------ *)

type farm_sample = {
  fm_seed : int;      (** workload seed *)
  fm_jobs : int;      (** batch size *)
  fm_quantum : int;   (** timesteps per scheduler slice *)
  fm_active : int;    (** resident-job cap *)
  fm_park : int;      (** preempt after this many quanta; 0 = never *)
  fm_crash : bool;    (** mix in fault-injected 2-rank jobs *)
}

let pp_farm ppf (s : farm_sample) =
  Fmt.pf ppf "workload seed %d, %d job(s), quantum %d, %d active, park after %d%s"
    s.fm_seed s.fm_jobs s.fm_quantum s.fm_active s.fm_park
    (if s.fm_crash then ", crash injection" else "")

(* Shrink toward one uninterrupted job: fewer jobs first, then no crashes,
   no preemption, single residency, unit quantum. *)
let shrink_farm (s : farm_sample) yield =
  if s.fm_jobs > 1 then yield { s with fm_jobs = s.fm_jobs - 1 };
  if s.fm_crash then yield { s with fm_crash = false };
  if s.fm_park > 0 then yield { s with fm_park = 0 };
  if s.fm_active > 1 then yield { s with fm_active = s.fm_active - 1 };
  if s.fm_quantum > 1 then yield { s with fm_quantum = s.fm_quantum - 1 }

let arb_farm : farm_sample QCheck.arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" pp_farm)
    ~shrink:shrink_farm
    (let* fm_seed = G.int_bound 10_000 in
     let* fm_jobs = G.int_range 2 5 in
     let* fm_quantum = G.int_range 1 3 in
     let* fm_active = G.int_range 1 3 in
     let* fm_park = G.oneofl [ 0; 1; 2 ] in
     let* fm_crash = G.bool in
     G.return { fm_seed; fm_jobs; fm_quantum; fm_active; fm_park; fm_crash })

(* ------------------------------------------------------------------ *)
(* Oracle 10: overlapped exchange vs. sequential                       *)
(* ------------------------------------------------------------------ *)

type overlap_sample = {
  ov_seed : int;        (** initial-condition seed *)
  ov_p2 : bool;         (** false = P1, true = P2 *)
  ov_split : bool;      (** kernel variant for both families *)
  ov_n : int;           (** cubic block edge per rank *)
  ov_grid : int array;  (** ranks per axis *)
  ov_tile : int array;  (** loop-depth tile shape; 0 = full extent *)
  ov_domains : int;     (** pool width of the overlapped run *)
  ov_jit : bool;        (** overlapped run uses the JIT backend *)
  ov_steps : int;
  ov_plan_seed : int;   (** keys the Philox fault-decision streams *)
  ov_drop : float;
  ov_delay : float;
  ov_dup : float;
  ov_crash : bool;      (** kill a rank mid-run; recovery must roll back *)
  ov_crash_rank : int;
  ov_crash_step : int;
  ov_ckpt_every : int;
}

let pp_overlap ppf (s : overlap_sample) =
  Fmt.pf ppf
    "%s %s, %d^3 blocks on %s grid, tile %s, %d domain(s), %s backend, %d step(s), \
     seed %d, plan %d (drop %.2f delay %.2f dup %.2f)%s"
    (if s.ov_p2 then "P2" else "P1")
    (if s.ov_split then "split" else "full")
    s.ov_n
    (String.concat "x" (Array.to_list (Array.map string_of_int s.ov_grid)))
    (String.concat "x" (Array.to_list (Array.map string_of_int s.ov_tile)))
    s.ov_domains
    (if s.ov_jit then "jit" else "interp")
    s.ov_steps s.ov_seed s.ov_plan_seed s.ov_drop s.ov_delay s.ov_dup
    (if s.ov_crash then
       Printf.sprintf ", rank %d dies at step %d, checkpoint every %d" s.ov_crash_rank
         s.ov_crash_step s.ov_ckpt_every
     else "")

(* Shrink toward one clean interpreted step on the smallest grid. *)
let shrink_overlap (s : overlap_sample) yield =
  if s.ov_crash then yield { s with ov_crash = false };
  if s.ov_drop > 0. then yield { s with ov_drop = 0. };
  if s.ov_delay > 0. then yield { s with ov_delay = 0. };
  if s.ov_dup > 0. then yield { s with ov_dup = 0. };
  if s.ov_jit then yield { s with ov_jit = false };
  if (not s.ov_crash) && s.ov_steps > 1 then yield { s with ov_steps = s.ov_steps - 1 };
  if s.ov_n > 4 then yield { s with ov_n = s.ov_n - 1 };
  Array.iteri
    (fun d x ->
      if x > 0 then begin
        let t = Array.copy s.ov_tile in
        t.(d) <- 0;
        yield { s with ov_tile = t }
      end)
    s.ov_tile;
  if s.ov_domains > 1 then yield { s with ov_domains = 1 };
  if Array.fold_left ( * ) 1 s.ov_grid > 2 then yield { s with ov_grid = [| 2; 1; 1 |] };
  if s.ov_p2 then yield { s with ov_p2 = false };
  if s.ov_split then yield { s with ov_split = false }

let arb_overlap : overlap_sample QCheck.arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" pp_overlap)
    ~shrink:shrink_overlap
    (let* ov_seed = G.int_bound 10_000 in
     let* ov_p2 = G.bool in
     let* ov_split = G.bool in
     let* ov_n = G.int_range 4 6 in
     let* ov_grid = G.oneofl [ [| 2; 1; 1 |]; [| 1; 2; 1 |]; [| 1; 1; 2 |]; [| 2; 2; 1 |] ] in
     (* degenerate shapes included on purpose: interior/shell tiles must be
        bitwise-stable for every decomposition, not just the fast ones *)
     let* ov_tile = G.array_size (G.return 3) (G.oneofl [ 0; 1; 2; 3; 5 ]) in
     let* ov_domains = G.oneofl [ 1; 2; 4 ] in
     let* ov_jit = G.bool in
     let* ov_plan_seed = G.int_bound 1000 in
     let* ov_drop = G.oneofl [ 0.; 0.05; 0.1 ] in
     let* ov_delay = G.oneofl [ 0.; 0.08; 0.15 ] in
     let* ov_dup = G.oneofl [ 0.; 0.05; 0.1 ] in
     let* ov_crash = G.bool in
     let* ov_crash_step = G.int_range 1 2 in
     let* tail = G.int_range 1 2 in
     let* ov_ckpt_every = G.int_range 1 2 in
     let* steps = G.int_range 1 3 in
     let* crash_rank_u = G.int_bound 1000 in
     let ranks = Array.fold_left ( * ) 1 ov_grid in
     G.return
       {
         ov_seed;
         ov_p2;
         ov_split;
         ov_n;
         ov_grid;
         ov_tile;
         ov_domains;
         ov_jit;
         ov_steps = (if ov_crash then ov_crash_step + tail else steps);
         ov_plan_seed;
         ov_drop;
         ov_delay;
         ov_dup;
         ov_crash;
         ov_crash_rank = crash_rank_u mod ranks;
         ov_crash_step;
         ov_ckpt_every;
       })

(* ------------------------------------------------------------------ *)
(* Oracle 11: deterministic reductions                                 *)
(* ------------------------------------------------------------------ *)

type reduce_sample = {
  rd_seed : int;        (** initial-condition seed *)
  rd_grid : int array;  (** rank grid of the forest leg *)
  rd_tile : int array;  (** loop-depth tile shape; 0 = full extent *)
  rd_domains : int;     (** pool width: 1, 2 or 4 *)
  rd_jit : bool;        (** subject legs read cells through the JIT path *)
  rd_op : int;          (** 0 = Sum, 1 = Min, 2 = Max *)
  rd_cell : int;        (** 0/1 = Component, 2 = Interface, 3 = Custom NaN *)
  rd_steps : int;       (** steps to evolve before reducing *)
  rd_plan_seed : int;   (** keys the Philox fault-decision streams *)
  rd_drop : float;
  rd_delay : float;
  rd_dup : float;
}

let pp_reduce ppf (s : reduce_sample) =
  Fmt.pf ppf
    "seed %d, %s rank grid, tile %s, %d domain(s), %s reader, op %d, cellfn %d, \
     %d step(s), plan %d (drop %.2f delay %.2f dup %.2f)"
    s.rd_seed
    (String.concat "x" (Array.to_list (Array.map string_of_int s.rd_grid)))
    (String.concat "x" (Array.to_list (Array.map string_of_int s.rd_tile)))
    s.rd_domains
    (if s.rd_jit then "jit" else "interp")
    s.rd_op s.rd_cell s.rd_steps s.rd_plan_seed s.rd_drop s.rd_delay s.rd_dup

(* Shrink toward an unfaulted serial interpreted sum of component 0 on a
   single rank. *)
let shrink_reduce (s : reduce_sample) yield =
  if s.rd_drop > 0. then yield { s with rd_drop = 0. };
  if s.rd_delay > 0. then yield { s with rd_delay = 0. };
  if s.rd_dup > 0. then yield { s with rd_dup = 0. };
  if s.rd_jit then yield { s with rd_jit = false };
  if s.rd_steps > 0 then yield { s with rd_steps = s.rd_steps - 1 };
  if s.rd_domains > 1 then yield { s with rd_domains = 1 };
  Array.iteri
    (fun d x ->
      if x > 0 then begin
        let t = Array.copy s.rd_tile in
        t.(d) <- 0;
        yield { s with rd_tile = t }
      end)
    s.rd_tile;
  if Array.fold_left ( * ) 1 s.rd_grid > 1 then yield { s with rd_grid = [| 1; 1 |] };
  if s.rd_cell > 0 then yield { s with rd_cell = 0 };
  if s.rd_op > 0 then yield { s with rd_op = 0 }

let arb_reduce : reduce_sample QCheck.arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" pp_reduce)
    ~shrink:shrink_reduce
    (let* rd_seed = G.int_bound 10_000 in
     let* rd_grid = G.oneofl [ [| 1; 1 |]; [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |] ] in
     (* degenerate tiles included on purpose: the canonical tree must make
        every decomposition publish the same nodes *)
     let* rd_tile = G.array_size (G.return 2) (G.oneofl [ 0; 1; 2; 3; 5 ]) in
     let* rd_domains = G.oneofl [ 1; 2; 4 ] in
     let* rd_jit = G.bool in
     let* rd_op = G.int_bound 2 in
     let* rd_cell = G.int_bound 3 in
     let* rd_steps = G.int_bound 2 in
     let* rd_plan_seed = G.int_bound 1000 in
     let* rd_drop = G.oneofl [ 0.; 0.05; 0.1 ] in
     let* rd_delay = G.oneofl [ 0.; 0.08; 0.15 ] in
     let* rd_dup = G.oneofl [ 0.; 0.05; 0.1 ] in
     G.return
       {
         rd_seed;
         rd_grid;
         rd_tile;
         rd_domains;
         rd_jit;
         rd_op;
         rd_cell;
         rd_steps;
         rd_plan_seed;
         rd_drop;
         rd_delay;
         rd_dup;
       })

(* ------------------------------------------------------------------ *)
(* Oracle 5 extension: adaptive block forests                          *)
(* ------------------------------------------------------------------ *)

type adaptive_sample = {
  ad_seed : int;         (** keys the sharp-disc initial condition *)
  ad_bgrid : int array;  (** blocks per axis; every block is 6x6 cells *)
  ad_ranks : int;        (** simulated ranks the blocks are balanced over *)
  ad_static : bool;      (** Static mode: refine once after prime *)
  ad_adapt_every : int;
  ad_steps : int;
  ad_jit : bool;
  ad_domains : int;
  ad_tile : int array;
  ad_plan_seed : int;
  ad_drop : float;
  ad_delay : float;
  ad_dup : float;
  ad_crash : bool;       (** kill a rank mid-run; recovery must roll back *)
  ad_crash_rank : int;
  ad_crash_step : int;
  ad_ckpt_every : int;
}

let pp_adaptive ppf (s : adaptive_sample) =
  Fmt.pf ppf
    "seed %d, %s blocks of 6x6 on %d rank(s), %s mode (every %d), %d step(s), \
     tile %s, %d domain(s), %s backend, plan %d (drop %.2f delay %.2f dup %.2f)%s"
    s.ad_seed
    (String.concat "x" (Array.to_list (Array.map string_of_int s.ad_bgrid)))
    s.ad_ranks
    (if s.ad_static then "static" else "adapt")
    s.ad_adapt_every s.ad_steps
    (String.concat "x" (Array.to_list (Array.map string_of_int s.ad_tile)))
    s.ad_domains
    (if s.ad_jit then "jit" else "interp")
    s.ad_plan_seed s.ad_drop s.ad_delay s.ad_dup
    (if s.ad_crash then
       Printf.sprintf ", rank %d dies at step %d, checkpoint every %d" s.ad_crash_rank
         s.ad_crash_step s.ad_ckpt_every
     else "")

(* Shrink toward one clean interpreted serial step on the smallest forest. *)
let shrink_adaptive (s : adaptive_sample) yield =
  if s.ad_crash then yield { s with ad_crash = false };
  if s.ad_drop > 0. then yield { s with ad_drop = 0. };
  if s.ad_delay > 0. then yield { s with ad_delay = 0. };
  if s.ad_dup > 0. then yield { s with ad_dup = 0. };
  if s.ad_jit then yield { s with ad_jit = false };
  if (not s.ad_crash) && s.ad_steps > 1 then yield { s with ad_steps = s.ad_steps - 1 };
  if s.ad_domains > 1 then yield { s with ad_domains = 1 };
  Array.iteri
    (fun d x ->
      if x > 0 then begin
        let t = Array.copy s.ad_tile in
        t.(d) <- 0;
        yield { s with ad_tile = t }
      end)
    s.ad_tile;
  if (not s.ad_crash) && s.ad_ranks > 1 then yield { s with ad_ranks = 1 };
  if Array.fold_left ( * ) 1 s.ad_bgrid > 4 then yield { s with ad_bgrid = [| 2; 2 |] };
  if s.ad_adapt_every > 1 then yield { s with ad_adapt_every = 1 };
  if not s.ad_static then yield { s with ad_static = true }

let arb_adaptive : adaptive_sample QCheck.arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" pp_adaptive)
    ~shrink:shrink_adaptive
    (let* ad_seed = G.int_bound 10_000 in
     let* ad_bgrid = G.oneofl [ [| 2; 2 |]; [| 4; 2 |]; [| 2; 4 |] ] in
     let* ad_ranks = G.int_range 1 4 in
     let* ad_static = G.bool in
     let* ad_adapt_every = G.int_range 1 2 in
     let* ad_jit = G.bool in
     let* ad_domains = G.oneofl [ 1; 2; 4 ] in
     let* ad_tile = G.array_size (G.return 2) (G.oneofl [ 0; 1; 2; 3; 5 ]) in
     let* ad_plan_seed = G.int_bound 1000 in
     let* ad_drop = G.oneofl [ 0.; 0.05; 0.1 ] in
     let* ad_delay = G.oneofl [ 0.; 0.08; 0.15 ] in
     let* ad_dup = G.oneofl [ 0.; 0.05; 0.1 ] in
     let* ad_crash = G.bool in
     let* ad_crash_step = G.int_range 1 2 in
     let* tail = G.int_range 1 2 in
     let* ad_ckpt_every = G.int_range 1 2 in
     let* steps = G.int_range 1 3 in
     let* crash_rank_u = G.int_bound 1000 in
     let ranks = if ad_crash then max 2 ad_ranks else ad_ranks in
     G.return
       {
         ad_seed;
         ad_bgrid;
         ad_ranks = ranks;
         ad_static;
         ad_adapt_every;
         ad_steps = (if ad_crash then ad_crash_step + tail else steps);
         ad_jit;
         ad_domains;
         ad_tile;
         ad_plan_seed;
         ad_drop;
         ad_delay;
         ad_dup;
         ad_crash;
         ad_crash_rank = crash_rank_u mod ranks;
         ad_crash_step;
         ad_ckpt_every;
       })

(* ------------------------------------------------------------------ *)
(* Model zoo: families with randomized coefficients                    *)
(* ------------------------------------------------------------------ *)

(** One zoo model at a discrete coefficient variant.  The coefficient
    index (rather than raw floats) keys a process-wide kernel cache in
    the oracles: code generation costs seconds per model, so samples
    draw from a small set of regenerable configurations while the seed,
    decomposition and backend vary freely. *)
type zoo_sample = {
  zf : int;          (** family: 0 = eutectic, 1 = pfc, 2 = gray-scott *)
  zcoef : int;       (** coefficient variant, 0..2; keys the kernel cache *)
  zseed : int;       (** initial-condition seed *)
  zsplit : bool;     (** run the split operator variant *)
  zsteps : int;
  zdomains : int;
  ztile : int array;
  zjit : bool;
}

let zoo_family_name = function
  | 0 -> "eutectic"
  | 1 -> "pfc"
  | _ -> "gray-scott"

(** Family preset at the sample's coefficient variant.  Every variant
    stays inside the stable regime of its family (the oracles compare
    execution paths, so the state must stay finite, not physical). *)
let zoo_params (s : zoo_sample) : Pfcore.Params.t =
  let v = s.zcoef mod 3 in
  match s.zf mod 3 with
  | 0 ->
    let p = Pfcore.Params.eutectic () in
    let scale = [| 1.0; 0.8; 1.2 |].(v) in
    {
      p with
      Pfcore.Params.name = Printf.sprintf "eutectic-z%d" v;
      gamma = Array.map (Array.map (fun g -> g *. scale)) p.Pfcore.Params.gamma;
    }
  | 1 ->
    let p = Pfcore.Params.pfc () in
    {
      p with
      Pfcore.Params.name = Printf.sprintf "pfc-z%d" v;
      family = Pfcore.Params.Pfc { r = [| 0.25; 0.15; 0.35 |].(v) };
    }
  | _ ->
    let p = Pfcore.Params.gray_scott () in
    let feed, kill = [| (0.035, 0.065); (0.03, 0.062); (0.025, 0.055) |].(v) in
    {
      p with
      Pfcore.Params.name = Printf.sprintf "gray-scott-z%d" v;
      family =
        (match p.Pfcore.Params.family with
        | Pfcore.Params.Gray_scott g -> Pfcore.Params.Gray_scott { g with feed; kill }
        | f -> f);
    }

let pp_zoo ppf (s : zoo_sample) =
  Fmt.pf ppf "%s coef %d, seed %d, %s variant, %d step(s), %d domain(s), tile %s, %s backend"
    (zoo_family_name (s.zf mod 3))
    (s.zcoef mod 3) s.zseed
    (if s.zsplit then "split" else "full")
    s.zsteps s.zdomains
    (String.concat "x" (Array.to_list (Array.map string_of_int s.ztile)))
    (if s.zjit then "jit" else "interp")

(* Shrink toward one interpreted full-variant serial step with the default
   coefficients.  The family index is deliberately not shrunk: changing
   family mid-shrink would report a counterexample for a different model
   than the one that failed. *)
let shrink_zoo (s : zoo_sample) yield =
  if s.zjit then yield { s with zjit = false };
  if s.zsplit then yield { s with zsplit = false };
  if s.zsteps > 1 then yield { s with zsteps = s.zsteps - 1 };
  if s.zdomains > 1 then yield { s with zdomains = 1 };
  Array.iteri
    (fun d x ->
      if x > 0 then begin
        let t = Array.copy s.ztile in
        t.(d) <- 0;
        yield { s with ztile = t }
      end)
    s.ztile;
  if s.zcoef mod 3 > 0 then yield { s with zcoef = 0 };
  if s.zseed > 0 then yield { s with zseed = s.zseed / 2 }

let arb_zoo : zoo_sample QCheck.arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" pp_zoo)
    ~shrink:shrink_zoo
    (let* zf = G.int_bound 2 in
     let* zcoef = G.int_bound 2 in
     let* zseed = G.int_bound 10_000 in
     let* zsplit = G.bool in
     let* zsteps = G.int_range 1 3 in
     let* zdomains = G.oneofl [ 1; 2; 4 ] in
     let* ztile = G.array_size (G.return 2) (G.oneofl [ 0; 1; 2; 3; 5 ]) in
     let* zjit = G.bool in
     G.return { zf; zcoef; zseed; zsplit; zsteps; zdomains; ztile; zjit })

(* ------------------------------------------------------------------ *)
(* Oracle 12: random free-energy functionals                           *)
(* ------------------------------------------------------------------ *)

(** One term of a randomly assembled free-energy density.  Component
    indices are taken modulo the sample's component count at build time,
    so shrinking [fn_comps] keeps every term well-typed. *)
type zterm =
  | Zwell of float * int      (** w * u^2 (1-u)^2 *)
  | Zgrad of float * int      (** kappa/2 * |grad u|^2 *)
  | Zcouple of float          (** c * sum phi_a^2 phi_b^2 over pairs *)
  | Zdrive of float * int     (** m * u *)
  | Zcrystal of float * int   (** Swift-Hohenberg: -r/2 u^2 + ((1+lap)u)^2/2 + u^4/4 *)

type func_sample = {
  fn_terms : zterm list;  (** non-empty *)
  fn_comps : int;         (** field components, 1..3 *)
  fn_seed : int;          (** keys the smooth probe state *)
  fn_cell : int;          (** probe cell (mod interior cells) *)
  fn_comp : int;          (** component whose variation is probed (mod fn_comps) *)
}

let pp_zterm ppf = function
  | Zwell (w, c) -> Fmt.pf ppf "well(%g, u%d)" w c
  | Zgrad (k, c) -> Fmt.pf ppf "grad(%g, u%d)" k c
  | Zcouple c -> Fmt.pf ppf "couple(%g)" c
  | Zdrive (m, c) -> Fmt.pf ppf "drive(%g, u%d)" m c
  | Zcrystal (r, c) -> Fmt.pf ppf "crystal(%g, u%d)" r c

let pp_func ppf (s : func_sample) =
  Fmt.pf ppf "%d component(s), seed %d, probe cell %d comp %d: %a" s.fn_comps s.fn_seed
    s.fn_cell s.fn_comp
    Fmt.(list ~sep:(any " + ") pp_zterm)
    s.fn_terms

let zterm_coef = function
  | Zwell (c, _) | Zgrad (c, _) | Zcouple c | Zdrive (c, _) | Zcrystal (c, _) -> c

let zterm_with_coef c = function
  | Zwell (_, i) -> Zwell (c, i)
  | Zgrad (_, i) -> Zgrad (c, i)
  | Zcouple _ -> Zcouple c
  | Zdrive (_, i) -> Zdrive (c, i)
  | Zcrystal (_, i) -> Zcrystal (c, i)

(* Shrink by dropping terms, then snapping coefficients to 1, then
   reducing the component count (term indices re-wrap, so this stays
   well-typed).  All moves are measure-decreasing. *)
let shrink_func (s : func_sample) yield =
  let n = List.length s.fn_terms in
  if n > 1 then
    for i = 0 to n - 1 do
      yield { s with fn_terms = List.filteri (fun j _ -> j <> i) s.fn_terms }
    done;
  List.iteri
    (fun i t ->
      if zterm_coef t <> 1. then
        yield
          {
            s with
            fn_terms = List.mapi (fun j t' -> if j = i then zterm_with_coef 1. t else t') s.fn_terms;
          })
    s.fn_terms;
  if s.fn_comps > 1 then yield { s with fn_comps = s.fn_comps - 1 };
  if s.fn_cell > 0 then yield { s with fn_cell = 0 };
  if s.fn_comp > 0 then yield { s with fn_comp = 0 };
  if s.fn_seed > 0 then yield { s with fn_seed = s.fn_seed / 2 }

let arb_func : func_sample QCheck.arbitrary =
  let coef = G.oneofl [ 1.; 0.5; 2.; 0.3; 1.5 ] in
  let term =
    let* c = coef in
    let* comp = G.int_bound 2 in
    G.frequency
      [
        (3, G.return (Zwell (c, comp)));
        (3, G.return (Zgrad (c, comp)));
        (1, G.return (Zcouple c));
        (2, G.return (Zdrive (c, comp)));
        (1, G.return (Zcrystal (c, comp)));
      ]
  in
  QCheck.make
    ~print:(Fmt.str "%a" pp_func)
    ~shrink:shrink_func
    (let* fn_terms = G.list_size (G.int_range 1 4) term in
     let* fn_comps = G.int_range 1 3 in
     let* fn_seed = G.int_bound 10_000 in
     let* fn_cell = G.int_bound 1_000 in
     let* fn_comp = G.int_bound 2 in
     G.return { fn_terms; fn_comps; fn_seed; fn_cell; fn_comp })
