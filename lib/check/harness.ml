(** Differential harness entry points.

    Sample counts default to a fast configuration so `dune runtest` stays
    quick; set [PFGEN_QCHECK_COUNT] to scale every oracle up (the `@slow`
    dune alias does this), or run `pfgen check --samples N` for a soak. *)

let default_count =
  match Sys.getenv_opt "PFGEN_QCHECK_COUNT" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 20)
  | None -> 20

(** The oracle tests at a given base sample count. *)
let tests ?(count = default_count) () : QCheck.Test.t list = Oracles.all ~count

(** Run the harness standalone (the `pfgen check` subcommand).  Returns the
    runner's exit code: 0 when every oracle holds, nonzero on divergence —
    each failure is reported with its minimized counterexample. *)
let run ?(verbose = true) ?seed ~samples () =
  let rand =
    match seed with
    | Some s -> Random.State.make [| s |]
    | None -> Random.State.make_self_init ()
  in
  QCheck_base_runner.run_tests ~colors:false ~verbose ~rand (tests ~count:samples ())
