(** Differential oracle pairs.

    Each oracle runs one random sample through two independent
    implementations of the same semantics and compares the results:

    + scalar [Eval.eval] vs. eval after an algebraic pass
      ([Simplify.simplify_term], [expand], [factor_common],
      [freeze_parameters]) or after [Cse];
    + the compiled [Vm.Engine] sweep vs. a direct [Eval]-based interpreter
      over the same block;
    + full vs. split (staggered-precompute) discretization from
      [Fd.Discretize];
    + serial sweep vs. multi-domain sweep (bitwise);
    + single-block run vs. 2×2-rank [Blocks.Mpisim] run with ghost
      exchange, compared on interior cells after K steps (bitwise).

    Floating-point policy: oracles whose two sides evaluate *different
    expression trees* (1 and 3) compare up to a tolerance and skip samples
    whose intermediate values leave [-guard, guard] — reassociation under
    the normalizing smart constructors legitimately perturbs the last bits,
    and IEEE non-finite arithmetic makes algebraic rewrites unsound
    (0 * inf).  Oracles whose two sides evaluate the *same* tree (2, 4, 5)
    compare (near-)bitwise. *)

open Symbolic

(* ------------------------------------------------------------------ *)
(* Comparison policy                                                   *)
(* ------------------------------------------------------------------ *)

let guard = 1e6

(** Tolerant compare, scale-aware: passes when both are NaN, equal, or
    within [tol * max 1 (max |a| |b|)]. *)
let close ?(tol = 1e-6) a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(** True when every subterm of [e] evaluates to a finite value within the
    guard band.  Samples failing this are vacuously accepted: algebraic
    identities are only claimed on the well-scaled domain. *)
let well_scaled env e =
  Expr.fold
    (fun ok node ->
      ok
      &&
      match Eval.eval env node with
      | v -> Float.is_finite v && Float.abs v <= guard
      | exception _ -> false)
    true e

(* ------------------------------------------------------------------ *)
(* Oracle 1: Eval vs. Eval-after-pass                                  *)
(* ------------------------------------------------------------------ *)

(** The reusable law behind oracle 1, parameterized by the transformation —
    the mutation smoke-check reuses it with a deliberately broken pass. *)
let transform_preserves_value transform (e, bindings) =
  let env = Eval.of_alist bindings in
  if not (well_scaled env e) then true
  else
    let e' = transform bindings e in
    if not (well_scaled env e') then true
    else close (Eval.eval env e) (Eval.eval env e')

let expr_transform_cell ?(count = 100) ~name transform =
  QCheck.Test.make_cell ~name ~count Gen.arb_scalar_expr_env
    (transform_preserves_value transform)

let expr_transform_test ?(count = 100) ~name transform =
  QCheck.Test.make ~name ~count Gen.arb_scalar_expr_env
    (transform_preserves_value transform)

let cse_test ~count =
  QCheck.Test.make ~name:"oracle1: eval = eval after global CSE" ~count
    Gen.arb_scalar_expr_env (fun (e, bindings) ->
      let env = Eval.of_alist bindings in
      if not (well_scaled env e) then true
      else
        (* two copies force sharing of the whole tree, exercising the
           binding-threading path of [Eval.eval_bindings] *)
        let { Cse.bindings = bs; exprs } = Cse.run [ e; e ] in
        let reference = Eval.eval env e in
        List.for_all (close reference) (Eval.eval_bindings env bs exprs))

let simplify_tests ~count =
  [
    expr_transform_test ~count ~name:"oracle1: eval = eval after simplify_term"
      (fun _ e -> Simplify.simplify_term e);
    expr_transform_test ~count ~name:"oracle1: eval = eval after expand" (fun _ e ->
        Simplify.expand e);
    expr_transform_test ~count ~name:"oracle1: eval = eval after factor_common"
      (fun _ e -> Simplify.factor_common e);
    expr_transform_test ~count ~name:"oracle1: eval = constant folding of frozen expr"
      Simplify.freeze_parameters;
    cse_test ~count;
  ]

(* ------------------------------------------------------------------ *)
(* Shared block plumbing for oracles 2–4                               *)
(* ------------------------------------------------------------------ *)

let dims2 = [| 6; 5 |]

(* Deterministic pseudo-random fill of every element (ghosts included) so
   out-of-center reads hit initialized data. *)
let fill_buffer (buf : Vm.Buffer.t) ~seed ~slot =
  Array.iteri
    (fun i _ ->
      buf.Vm.Buffer.data.(i) <- 0.5 +. (0.45 *. Philox.symmetric ~cell:i ~step:seed ~slot))
    buf.Vm.Buffer.data

let interior_agree ?(cmp = bits_equal) (a : Vm.Buffer.t) (b : Vm.Buffer.t) =
  let ok = ref true in
  let coords = Array.make 2 0 in
  for y = 0 to a.Vm.Buffer.dims.(1) - 1 do
    for x = 0 to a.Vm.Buffer.dims.(0) - 1 do
      coords.(0) <- x;
      coords.(1) <- y;
      for c = 0 to a.Vm.Buffer.components - 1 do
        if not (cmp (Vm.Buffer.get a ~component:c coords) (Vm.Buffer.get b ~component:c coords))
        then ok := false
      done
    done
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Oracle 2: compiled engine vs. reference interpreter                 *)
(* ------------------------------------------------------------------ *)

let run_engine (s : Gen.kernel_sample) ~num_domains =
  let kernel = Ir.Kernel.make ~name:"fuzz" ~dim:2 s.Gen.body in
  let block = Vm.Engine.make_block ~ghost:2 ~dims:dims2 [ s.Gen.src; s.Gen.dst ] in
  fill_buffer (Vm.Engine.buffer block s.Gen.src) ~seed:s.Gen.seed ~slot:3;
  let bound = Vm.Engine.bind kernel block in
  Vm.Engine.run ~num_domains ~step:s.Gen.seed ~params:s.Gen.params bound;
  block

(* Direct interpretation of the SSA body, one cell at a time, through
   [Eval] — no lowering, no hoisting, no compilation. *)
let run_interp (s : Gen.kernel_sample) =
  let block = Vm.Engine.make_block ~ghost:2 ~dims:dims2 [ s.Gen.src; s.Gen.dst ] in
  fill_buffer (Vm.Engine.buffer block s.Gen.src) ~seed:s.Gen.seed ~slot:3;
  let gd = block.Vm.Engine.global_dims in
  let dx = List.assoc "dx" s.Gen.params in
  let temps : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let coords = Array.make 2 0 in
  let elt (a : Fieldspec.access) =
    let buf = Vm.Engine.buffer block a.Fieldspec.field in
    (buf, Vm.Buffer.base_index buf coords + Vm.Buffer.access_delta buf a)
  in
  let env =
    Eval.env
      ~sym:(fun sy ->
        match Hashtbl.find_opt temps sy with
        | Some v -> v
        | None -> List.assoc sy s.Gen.params)
      ~access:(fun a ->
        let buf, i = elt a in
        buf.Vm.Buffer.data.(i))
      ~coord:(fun d -> (float_of_int coords.(d) +. 0.5) *. dx)
      ~rand:(fun slot ->
        Philox.symmetric ~cell:((coords.(1) * gd.(0)) + coords.(0)) ~step:s.Gen.seed ~slot)
      ()
  in
  for y = 0 to dims2.(1) - 1 do
    for x = 0 to dims2.(0) - 1 do
      coords.(0) <- x;
      coords.(1) <- y;
      Hashtbl.reset temps;
      List.iter
        (fun (a : Field.Assignment.t) ->
          let v = Eval.eval env a.Field.Assignment.rhs in
          match a.Field.Assignment.lhs with
          | Field.Assignment.Temp t -> Hashtbl.replace temps t v
          | Field.Assignment.Store acc ->
            let buf, i = elt acc in
            buf.Vm.Buffer.data.(i) <- v)
        s.Gen.body
    done
  done;
  block

(* Engine and interpreter evaluate the same normalized tree; the only
   rounding difference is the generic-[Pow] strategy (repeated multiply vs.
   [**]), so the tolerance is tight. *)
let engine_close a b =
  (Float.is_nan a && Float.is_nan b) || a = b || close ~tol:1e-9 a b

let engine_vs_interp ~count =
  QCheck.Test.make ~name:"oracle2: Vm.Engine = Eval interpreter" ~count
    (Gen.arb_kernel ())
    (fun s ->
      let vm = run_engine s ~num_domains:1 in
      let ref_ = run_interp s in
      interior_agree ~cmp:engine_close
        (Vm.Engine.buffer vm s.Gen.dst)
        (Vm.Engine.buffer ref_ s.Gen.dst))

(* ------------------------------------------------------------------ *)
(* Oracle 4: serial vs. multi-domain sweep                             *)
(* ------------------------------------------------------------------ *)

(* Domain slicing only partitions the outer loop — every cell runs the
   identical closures on the same data, so this one is bitwise.  [Rand]
   streams are keyed by global cell index and must not see the slicing. *)
let serial_vs_domains ~count =
  QCheck.Test.make ~name:"oracle4: serial sweep = multi-domain sweep (bitwise)" ~count
    (Gen.arb_kernel ())
    (fun s ->
      let b1 = run_engine s ~num_domains:1 in
      let b3 = run_engine s ~num_domains:3 in
      interior_agree (Vm.Engine.buffer b1 s.Gen.dst) (Vm.Engine.buffer b3 s.Gen.dst))

(* ------------------------------------------------------------------ *)
(* Oracle 3: full vs. split discretization                             *)
(* ------------------------------------------------------------------ *)

let full_vs_split ~count =
  let out_full = Fieldspec.scalar ~dim:2 "out_full" in
  let out_split = Fieldspec.scalar ~dim:2 "out_split" in
  let stag = Fieldspec.create ~kind:Fieldspec.Staggered ~dim:2 ~components:2 "stag" in
  QCheck.Test.make ~name:"oracle3: full = split (staggered) discretization" ~count
    Gen.arb_flux
    (fun s ->
      let scheme = Fd.Discretize.create ~dx:(Expr.sym "dx") ~dim:2 () in
      let full_body =
        [ Field.Assignment.store (Fieldspec.center out_full)
            (Fd.Discretize.discretize scheme s.Gen.rhs) ]
      in
      let registry = Fd.Discretize.make_registry stag in
      let split_rhs = Fd.Discretize.discretize_split scheme ~registry s.Gen.rhs in
      let main_body =
        [ Field.Assignment.store (Fieldspec.center out_split) split_rhs ]
      in
      let stag_body = Fd.Discretize.registry_kernel_body registry in
      let k_full = Ir.Kernel.make ~name:"full" ~dim:2 full_body in
      let k_main = Ir.Kernel.make ~name:"main" ~dim:2 main_body in
      let block =
        Vm.Engine.make_block ~ghost:2 ~dims:dims2
          [ Gen.phi_c; out_full; out_split; stag ]
      in
      let phi_buf = Vm.Engine.buffer block Gen.phi_c in
      fill_buffer phi_buf ~seed:s.Gen.fseed ~slot:7;
      let params = [ ("dx", s.Gen.fdx); ("kappa", s.Gen.kappa) ] in
      let exec k = Vm.Engine.run ~params (Vm.Engine.bind k block) in
      exec k_full;
      (match stag_body with
      | [] -> ()
      | body ->
        exec
          (Ir.Kernel.make ~iteration:(Ir.Kernel.StaggeredSweep [ 0; 1 ]) ~name:"stag"
             ~dim:2 body));
      exec k_main;
      (* different trees on the two sides: tolerance compare, with the
         same well-scaled guard as oracle 1 applied to the stored flux *)
      interior_agree
        ~cmp:(fun a b ->
          (not (Float.is_finite a) && not (Float.is_finite b))
          || Float.abs a > guard || Float.abs b > guard
          || close ~tol:1e-6 a b)
        (Vm.Engine.buffer block out_full)
        (Vm.Engine.buffer block out_split))

(* ------------------------------------------------------------------ *)
(* Oracle 5: single block vs. 2×2 Mpisim forest                        *)
(* ------------------------------------------------------------------ *)

(* The curvature model: 2 phases, no chemical fields — the cheapest model
   that exercises the full Algorithm-1 phase structure. *)
let curvature_gen =
  lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()))

let global2 = [| 12; 12 |]

let init_model_phi (sim : Pfcore.Timestep.t) ~seed =
  let fields = sim.Pfcore.Timestep.gen.Pfcore.Genkernels.fields in
  let block = sim.Pfcore.Timestep.block in
  let buf = Vm.Engine.buffer block fields.Pfcore.Model.phi_src in
  let off = block.Vm.Engine.offset in
  let gd = block.Vm.Engine.global_dims in
  Vm.Buffer.init buf (fun coords comp ->
      let gx = coords.(0) + off.(0) and gy = coords.(1) + off.(1) in
      let u = Philox.symmetric ~cell:((gy * gd.(0)) + gx) ~step:seed ~slot:5 in
      let v = 0.2 +. (0.3 *. (1. +. u) /. 2.) in
      if comp = 0 then v else 1. -. v)

let single_vs_forest ~count =
  QCheck.Test.make
    ~name:"oracle5: single block = 2x2 Mpisim forest (bitwise, interior)" ~count
    Gen.arb_model
    (fun s ->
      let gen = Lazy.force curvature_gen in
      let variant = if s.Gen.split then Pfcore.Timestep.Split else Pfcore.Timestep.Full in
      let single = Pfcore.Timestep.create ~variant_phi:variant ~dims:global2 gen in
      init_model_phi single ~seed:s.Gen.mseed;
      Pfcore.Timestep.prime single;
      Pfcore.Timestep.run single ~steps:s.Gen.steps;
      let forest =
        Blocks.Forest.create ~variant_phi:variant ~grid:[| 2; 2 |]
          ~block_dims:[| global2.(0) / 2; global2.(1) / 2 |]
          gen
      in
      Array.iter (fun sim -> init_model_phi sim ~seed:s.Gen.mseed) forest.Blocks.Forest.sims;
      Blocks.Forest.prime forest;
      Blocks.Forest.run forest ~steps:s.Gen.steps;
      let phi = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
      let sbuf = Vm.Engine.buffer single.Pfcore.Timestep.block phi in
      let ok = ref true in
      for gy = 0 to global2.(1) - 1 do
        for gx = 0 to global2.(0) - 1 do
          for c = 0 to phi.Fieldspec.components - 1 do
            let a = Vm.Buffer.get sbuf ~component:c [| gx; gy |] in
            let b = Blocks.Forest.get forest phi ~component:c [| gx; gy |] in
            if not (bits_equal a b) then ok := false
          done
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Oracle 6: resilience — snapshots and crash-restart                  *)
(* ------------------------------------------------------------------ *)

let make_forest ~seed =
  let gen = Lazy.force curvature_gen in
  let forest =
    Blocks.Forest.create ~grid:[| 2; 2 |]
      ~block_dims:[| global2.(0) / 2; global2.(1) / 2 |]
      gen
  in
  Array.iter (fun sim -> init_model_phi sim ~seed) forest.Blocks.Forest.sims;
  Blocks.Forest.prime forest;
  forest

(* Snapshot → encode → decode → restore must be the identity on every
   buffer element, ghost layers included. *)
let snapshot_roundtrip ~count =
  QCheck.Test.make ~name:"oracle6: snapshot encode/decode/restore = identity (bitwise)"
    ~count Gen.arb_model
    (fun s ->
      let forest = make_forest ~seed:s.Gen.mseed in
      Blocks.Forest.run forest ~steps:s.Gen.steps;
      let snap = Resilience.Snapshot.capture forest in
      let decoded = Resilience.Snapshot.decode (Resilience.Snapshot.encode snap) in
      if not (Resilience.Snapshot.equal snap decoded) then false
      else begin
        (* restoring into a freshly initialized forest must reproduce the
           evolved state exactly, padding included *)
        let fresh = make_forest ~seed:(s.Gen.mseed + 1) in
        Resilience.Snapshot.restore decoded fresh;
        Resilience.Snapshot.equal snap (Resilience.Snapshot.capture fresh)
      end)

(* Any single flipped byte in the encoded stream must be rejected by the
   CRC (or the structural validation), never silently accepted. *)
let snapshot_corruption ~count =
  QCheck.Test.make ~name:"oracle6: corrupted snapshot is rejected by checksum" ~count
    Gen.arb_model
    (fun s ->
      let forest = make_forest ~seed:s.Gen.mseed in
      let encoded = Resilience.Snapshot.encode (Resilience.Snapshot.capture forest) in
      let pos = s.Gen.mseed mod String.length encoded in
      let b = Bytes.of_string encoded in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      match Resilience.Snapshot.decode (Bytes.to_string b) with
      | _ -> false
      | exception Resilience.Snapshot.Invalid _ -> true)

(* The crowning oracle: run K steps, crash a rank, roll back to the last
   checkpoint, replay to 2K — the result must be bitwise identical to an
   undisturbed 2K-step run, for arbitrary drop/delay/duplicate schedules. *)
let crash_restart_bitwise ~count =
  QCheck.Test.make
    ~name:"oracle6: crash + rollback + replay = undisturbed run (bitwise)" ~count
    Gen.arb_resilience
    (fun s ->
      let clean = make_forest ~seed:s.Gen.rseed in
      Blocks.Forest.run clean ~steps:s.Gen.rsteps;
      let faulty = make_forest ~seed:s.Gen.rseed in
      let plan =
        {
          Blocks.Faultplan.seed = s.Gen.plan_seed;
          drop = s.Gen.drop;
          delay = s.Gen.delay;
          duplicate = s.Gen.duplicate;
          max_delay = 3;
          crash = Some (s.Gen.crash_rank, s.Gen.crash_step);
        }
      in
      Blocks.Mpisim.set_fault_plan faulty.Blocks.Forest.comm (Some plan);
      let stats =
        Resilience.Recovery.run_protected ~every:s.Gen.ckpt_every ~steps:s.Gen.rsteps
          faulty
      in
      if stats.Resilience.Recovery.restarts < 1 then false
      else
        let phi =
          (Lazy.force curvature_gen).Pfcore.Genkernels.fields.Pfcore.Model.phi_src
        in
        let ok = ref true in
        for gy = 0 to global2.(1) - 1 do
          for gx = 0 to global2.(0) - 1 do
            for c = 0 to phi.Fieldspec.components - 1 do
              let a = Blocks.Forest.get clean phi ~component:c [| gx; gy |] in
              let b = Blocks.Forest.get faulty phi ~component:c [| gx; gy |] in
              if not (bits_equal a b) then ok := false
            done
          done
        done;
        !ok)

(* ------------------------------------------------------------------ *)
(* Oracle 7: pooled tiled execution vs. serial (bitwise)               *)
(* ------------------------------------------------------------------ *)

let gen_p1_pool = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p1 ()))
let gen_p2_pool = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p2 ()))

(* One sweep of one generated kernel family (all 8 P1/P2 variants are
   reachable through [Drift.variant_kernels]) over a smooth-initialized
   block, with the given pool width and tile shape. *)
let pooled_run ?(backend = Vm.Engine.Interp) (s : Gen.pool_sample) ~num_domains ~tile =
  let g = Lazy.force (if s.Gen.pl_p2 then gen_p2_pool else gen_p1_pool) in
  let dims = Array.make g.Pfcore.Genkernels.params.Pfcore.Params.dim s.Gen.pl_n in
  let block = Drift.drift_block g ~dims in
  let params = Drift.runtime_params g in
  let _, kernels = List.nth (Drift.variant_kernels g) s.Gen.pl_variant in
  List.iter
    (fun k ->
      Vm.Engine.run ~num_domains ?tile ~step:1 ~backend ~params (Vm.Engine.bind k block))
    kernels;
  block

(* The determinism battery's core claim: any tile decomposition executed on
   any number of pool lanes writes bitwise exactly what the serial
   single-tile sweep writes — over random grids, tile shapes (including
   degenerate ones larger than the sweep) and PFGEN_DOMAINS in {1,2,4}. *)
let pooled_vs_serial ~count =
  QCheck.Test.make ~name:"oracle7: pooled tiled sweep = serial sweep (bitwise)" ~count
    Gen.arb_pool
    (fun s ->
      let serial = pooled_run s ~num_domains:1 ~tile:None in
      let pooled = pooled_run s ~num_domains:s.Gen.pl_domains ~tile:(Some s.Gen.pl_tile) in
      List.for_all2
        (fun (_, (a : Vm.Buffer.t)) (_, (b : Vm.Buffer.t)) ->
          let ok = ref true in
          Array.iteri
            (fun i x -> if not (bits_equal x b.Vm.Buffer.data.(i)) then ok := false)
            a.Vm.Buffer.data;
          !ok)
        serial.Vm.Engine.buffers pooled.Vm.Engine.buffers)

(* The JIT backend is guilty until proven bitwise-identical: over the same
   random model/grid/tile/domain space as oracle 7 (all 8 P1/P2 kernel
   variants, QCheck-shrunk on failure), a compiled pooled sweep must write
   exactly what the interpreter's serial sweep writes — the interpreter
   stays the reference implementation. *)
let jit_vs_interp ~count =
  QCheck.Test.make ~name:"oracle8: jit backend = interpreter (bitwise)" ~count
    Gen.arb_pool
    (fun s ->
      let reference = pooled_run ~backend:Vm.Engine.Interp s ~num_domains:1 ~tile:None in
      let jitted =
        pooled_run ~backend:Vm.Engine.Jit s ~num_domains:s.Gen.pl_domains
          ~tile:(Some s.Gen.pl_tile)
      in
      List.for_all2
        (fun (_, (a : Vm.Buffer.t)) (_, (b : Vm.Buffer.t)) ->
          let ok = ref true in
          Array.iteri
            (fun i x -> if not (bits_equal x b.Vm.Buffer.data.(i)) then ok := false)
            a.Vm.Buffer.data;
          !ok)
        reference.Vm.Engine.buffers jitted.Vm.Engine.buffers)

(* ------------------------------------------------------------------ *)
(* Oracle 9: farm-scheduled execution vs. solo (bitwise)               *)
(* ------------------------------------------------------------------ *)

(* The farm scheduler multiplexes jobs over the shared pool with pooled
   (recycled) buffers, arbitrary quantum slicing, snapshot preemption and
   injected rank crashes — and none of it may be observable in the
   results: every job's final state (ghosts included, via the snapshot
   comparison) must equal the same spec run solo, serially, through the
   interpreter.  The workload keeps to the cheap 2D families (curvature
   plus the mu-less zoo models); the full mix including eutectic and the
   3D families is exercised by `pfgen serve --soak`. *)
let farm_vs_solo ~count =
  QCheck.Test.make ~name:"oracle9: farm-scheduled job = solo run (bitwise)" ~count
    Gen.arb_farm
    (fun s ->
      let specs =
        Serve.Workload.generate
          ~families:
            [ Serve.Workload.Curv2d; Serve.Workload.Pfc; Serve.Workload.GrayScott ]
          ~with_crash:s.Gen.fm_crash ~seed:s.Gen.fm_seed ~jobs:s.Gen.fm_jobs ()
      in
      let config =
        {
          (Serve.Scheduler.default_config ()) with
          Serve.Scheduler.quantum = s.Gen.fm_quantum;
          max_active = s.Gen.fm_active;
          park_after = s.Gen.fm_park;
        }
      in
      let mempool = Serve.Mempool.create () in
      let stats = Serve.Scheduler.run ~config ~mempool specs in
      stats.Serve.Scheduler.rejected = []
      && List.length stats.Serve.Scheduler.results = List.length specs
      && List.for_all
           (fun (r : Serve.Scheduler.job_result) ->
             Resilience.Snapshot.equal r.Serve.Scheduler.final
               (Serve.Scheduler.run_solo r.Serve.Scheduler.r_spec))
           stats.Serve.Scheduler.results)

(* ------------------------------------------------------------------ *)
(* Oracle 10: overlapped exchange = sequential exchange (bitwise)      *)
(* ------------------------------------------------------------------ *)

(* Smooth Philox-keyed initial conditions over *global* cell indices, so
   every run of the same global domain starts bitwise identically
   regardless of the rank decomposition. *)
let init_overlap_fields (sim : Pfcore.Timestep.t) ~seed =
  let gen = sim.Pfcore.Timestep.gen in
  let block = sim.Pfcore.Timestep.block in
  let fields = gen.Pfcore.Genkernels.fields in
  let n = float_of_int gen.Pfcore.Genkernels.params.Pfcore.Params.n_phases in
  let init (f : Fieldspec.t) ~slot ~base ~amp =
    let buf = Vm.Engine.buffer block f in
    let off = block.Vm.Engine.offset in
    let gd = block.Vm.Engine.global_dims in
    Vm.Buffer.init buf (fun coords comp ->
        let cell = ref 0 in
        for d = Array.length gd - 1 downto 0 do
          cell := (!cell * gd.(d)) + coords.(d) + off.(d)
        done;
        base +. (amp *. Philox.symmetric ~cell:!cell ~step:seed ~slot:(slot + comp)))
  in
  init fields.Pfcore.Model.phi_src ~slot:3 ~base:(1. /. n) ~amp:0.01;
  if Pfcore.Params.n_mu gen.Pfcore.Genkernels.params > 0 then
    init fields.Pfcore.Model.mu_src ~slot:23 ~base:0.1 ~amp:0.01

let make_overlap_forest ~overlap ~backend ~num_domains ~tile (s : Gen.overlap_sample) =
  let gen = Lazy.force (if s.Gen.ov_p2 then gen_p2_pool else gen_p1_pool) in
  let variant = if s.Gen.ov_split then Pfcore.Timestep.Split else Pfcore.Timestep.Full in
  let block_dims =
    Array.make gen.Pfcore.Genkernels.params.Pfcore.Params.dim s.Gen.ov_n
  in
  let forest =
    Blocks.Forest.create ~variant_phi:variant ~variant_mu:variant ~num_domains ?tile
      ~backend ~overlap ~grid:s.Gen.ov_grid ~block_dims gen
  in
  Array.iter
    (fun sim -> init_overlap_fields sim ~seed:s.Gen.ov_seed)
    forest.Blocks.Forest.sims;
  Blocks.Forest.prime forest;
  forest

(* The tentpole claim (paper §7): hiding the φ_dst exchange behind the μ
   interior sweep — the IR-derived inner/outer kernel split — is purely a
   scheduling transformation.  Over random P1/P2 models, variants, grids,
   tiles, pool widths and backends, and under arbitrary drop / delay /
   duplicate / rank-crash fault plans (healed in place or rolled back by
   the recovery driver), the overlapped forest must end bitwise identical
   to the sequential-exchange, serial, interpreted reference. *)
let overlapped_vs_sequential ~count =
  QCheck.Test.make
    ~name:"oracle10: overlapped exchange = sequential exchange (bitwise)" ~count
    Gen.arb_overlap
    (fun s ->
      let reference =
        make_overlap_forest ~overlap:false ~backend:Vm.Engine.Interp ~num_domains:1
          ~tile:None s
      in
      Blocks.Forest.run reference ~steps:s.Gen.ov_steps;
      let overlapped =
        make_overlap_forest ~overlap:true
          ~backend:(if s.Gen.ov_jit then Vm.Engine.Jit else Vm.Engine.Interp)
          ~num_domains:s.Gen.ov_domains ~tile:(Some s.Gen.ov_tile) s
      in
      let has_faults = s.Gen.ov_drop > 0. || s.Gen.ov_delay > 0. || s.Gen.ov_dup > 0. in
      if has_faults || s.Gen.ov_crash then
        Blocks.Mpisim.set_fault_plan overlapped.Blocks.Forest.comm
          (Some
             {
               Blocks.Faultplan.seed = s.Gen.ov_plan_seed;
               drop = s.Gen.ov_drop;
               delay = s.Gen.ov_delay;
               duplicate = s.Gen.ov_dup;
               max_delay = 3;
               crash =
                 (if s.Gen.ov_crash then Some (s.Gen.ov_crash_rank, s.Gen.ov_crash_step)
                  else None);
             });
      if s.Gen.ov_crash then
        ignore
          (Resilience.Recovery.run_protected ~every:s.Gen.ov_ckpt_every
             ~steps:s.Gen.ov_steps overlapped)
      else Blocks.Forest.run overlapped ~steps:s.Gen.ov_steps;
      let gen = Lazy.force (if s.Gen.ov_p2 then gen_p2_pool else gen_p1_pool) in
      let fields = gen.Pfcore.Genkernels.fields in
      let gd = reference.Blocks.Forest.global_dims in
      let check (f : Fieldspec.t) =
        let ok = ref true in
        for gz = 0 to gd.(2) - 1 do
          for gy = 0 to gd.(1) - 1 do
            for gx = 0 to gd.(0) - 1 do
              for c = 0 to f.Fieldspec.components - 1 do
                let a = Blocks.Forest.get reference f ~component:c [| gx; gy; gz |] in
                let b = Blocks.Forest.get overlapped f ~component:c [| gx; gy; gz |] in
                if not (bits_equal a b) then ok := false
              done
            done
          done
        done;
        !ok
      in
      check fields.Pfcore.Model.phi_src && check fields.Pfcore.Model.mu_src)

(* ------------------------------------------------------------------ *)
(* Oracle 11: canonical reductions vs. serial single-tile reference    *)
(* ------------------------------------------------------------------ *)

let reduce_op = function 0 -> Vm.Reduce.Sum | 1 -> Vm.Reduce.Min | _ -> Vm.Reduce.Max

(* The custom cell function reads *global* coordinates only, so every
   executor sees the same per-cell value; the Philox-keyed NaN holes
   exercise the C99 min/max semantics across partial boundaries. *)
let reduce_cellfn ~seed = function
  | 0 -> Vm.Reduce.Component 0
  | 1 -> Vm.Reduce.Component 1
  | 2 -> Vm.Reduce.Interface
  | _ ->
    Vm.Reduce.Custom
      (fun g ->
        let cell = Vm.Reduce.global_index global2 g in
        let u = Philox.symmetric ~cell ~step:seed ~slot:11 in
        if u > 0.6 then Float.nan else u)

(* The tentpole claim for reductions: the canonical-tree scalar is a
   function of the field values alone.  The serial single-tile interpreted
   reference must be reproduced bitwise by (a) a pooled, tiled, arbitrary-
   backend sweep of the same block, and (b) a decomposed forest combining
   per-rank partials over the fixed rank tree — with drop/delay/duplicate
   fault plans healing invisibly on the reduction channels. *)
let reduce_vs_serial ~count =
  QCheck.Test.make
    ~name:"oracle11: pooled/tiled/forest reduction = serial reference (bitwise)" ~count
    Gen.arb_reduce
    (fun s ->
      let op = reduce_op s.Gen.rd_op in
      let cellfn = reduce_cellfn ~seed:s.Gen.rd_seed s.Gen.rd_cell in
      let gen = Lazy.force curvature_gen in
      let phi = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
      let single = Pfcore.Timestep.create ~dims:global2 gen in
      init_model_phi single ~seed:s.Gen.rd_seed;
      Pfcore.Timestep.prime single;
      Pfcore.Timestep.run single ~steps:s.Gen.rd_steps;
      let reference =
        Vm.Reduce.scalar ~backend:Vm.Engine.Interp ~num_domains:1
          single.Pfcore.Timestep.block phi cellfn op
      in
      let backend = if s.Gen.rd_jit then Vm.Engine.Jit else Vm.Engine.Interp in
      let pooled =
        Vm.Reduce.scalar ~backend ~num_domains:s.Gen.rd_domains ~tile:s.Gen.rd_tile
          single.Pfcore.Timestep.block phi cellfn op
      in
      let forest =
        Blocks.Forest.create ~num_domains:s.Gen.rd_domains ~tile:s.Gen.rd_tile ~backend
          ~grid:s.Gen.rd_grid
          ~block_dims:
            [| global2.(0) / s.Gen.rd_grid.(0); global2.(1) / s.Gen.rd_grid.(1) |]
          gen
      in
      Array.iter
        (fun sim -> init_model_phi sim ~seed:s.Gen.rd_seed)
        forest.Blocks.Forest.sims;
      Blocks.Forest.prime forest;
      if s.Gen.rd_drop > 0. || s.Gen.rd_delay > 0. || s.Gen.rd_dup > 0. then
        Blocks.Mpisim.set_fault_plan forest.Blocks.Forest.comm
          (Some
             {
               Blocks.Faultplan.seed = s.Gen.rd_plan_seed;
               drop = s.Gen.rd_drop;
               delay = s.Gen.rd_delay;
               duplicate = s.Gen.rd_dup;
               max_delay = 3;
               crash = None;
             });
      Blocks.Forest.run forest ~steps:s.Gen.rd_steps;
      let dist =
        Blocks.Reduce.forest_scalar ~backend ~num_domains:s.Gen.rd_domains
          ~tile:s.Gen.rd_tile forest phi cellfn op
      in
      bits_equal reference pooled && bits_equal reference dist)

(* ------------------------------------------------------------------ *)
(* Oracle 5 extension: adaptive forest vs. uniform fine grid           *)
(* ------------------------------------------------------------------ *)

let adaptive_global (s : Gen.adaptive_sample) =
  [| 6 * s.Gen.ad_bgrid.(0); 6 * s.Gen.ad_bgrid.(1) |]

(* A sharp 0/1 disc confined to block (0,0): bulk blocks hold exact
   constants, so a correct adaptive forest will actually freeze some of
   them — the oracle is vacuous otherwise.  Global coordinates keep the
   initial condition identical across decompositions. *)
let init_sharp_phi (sim : Pfcore.Timestep.t) ~seed =
  let fields = sim.Pfcore.Timestep.gen.Pfcore.Genkernels.fields in
  let block = sim.Pfcore.Timestep.block in
  let buf = Vm.Engine.buffer block fields.Pfcore.Model.phi_src in
  let off = block.Vm.Engine.offset in
  let radius = 2. +. (0.4 *. float_of_int (seed mod 3)) in
  Vm.Buffer.init buf (fun coords comp ->
      let x = float_of_int (coords.(0) + off.(0)) +. 0.5 -. 3. in
      let y = float_of_int (coords.(1) + off.(1)) +. 0.5 -. 3. in
      let v = if (x *. x) +. (y *. y) < radius *. radius then 1. else 0. in
      if comp = 0 then v else 1. -. v)

let make_adaptive (s : Gen.adaptive_sample) =
  let gen = Lazy.force curvature_gen in
  let af =
    Blocks.Adaptive.create
      ~mode:(if s.Gen.ad_static then Blocks.Adaptive.Static else Blocks.Adaptive.Adapt)
      ~adapt_every:s.Gen.ad_adapt_every ~ranks:s.Gen.ad_ranks
      ~num_domains:s.Gen.ad_domains ~tile:s.Gen.ad_tile
      ?backend:(if s.Gen.ad_jit then Some Vm.Engine.Jit else None)
      ~bgrid:s.Gen.ad_bgrid ~block_dims:[| 6; 6 |] gen
  in
  List.iter
    (fun sim -> init_sharp_phi sim ~seed:s.Gen.ad_seed)
    (Blocks.Adaptive.active_sims af);
  af

let adaptive_fault_plan ?crash (s : Gen.adaptive_sample) =
  if s.Gen.ad_drop > 0. || s.Gen.ad_delay > 0. || s.Gen.ad_dup > 0. || crash <> None
  then
    Some
      {
        Blocks.Faultplan.seed = s.Gen.ad_plan_seed;
        drop = s.Gen.ad_drop;
        delay = s.Gen.ad_delay;
        duplicate = s.Gen.ad_dup;
        max_delay = 3;
        crash;
      }
  else None

(* Freezing bulk blocks to constants, refining around the interface,
   Morton rebalancing and servicing frozen exchanges with constant slabs
   are all semantics-free: the adaptive forest (Static or Adapt mode, any
   rank count / pool width / tile / backend, under healing fault plans)
   must reproduce the uniform fine-grid run cell for cell — and its
   canonical reduction, frozen-block nodes included, must be bitwise the
   uniform block's. *)
let adaptive_vs_uniform ~count =
  QCheck.Test.make
    ~name:"oracle5: adaptive forest = uniform fine grid (bitwise)" ~count
    Gen.arb_adaptive
    (fun s ->
      let s = { s with Gen.ad_crash = false } in
      let gen = Lazy.force curvature_gen in
      let gd = adaptive_global s in
      let phi = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
      let uniform = Pfcore.Timestep.create ~dims:gd gen in
      init_sharp_phi uniform ~seed:s.Gen.ad_seed;
      Pfcore.Timestep.prime uniform;
      Pfcore.Timestep.run uniform ~steps:s.Gen.ad_steps;
      let af = make_adaptive s in
      Blocks.Mpisim.set_fault_plan af.Blocks.Adaptive.comm (adaptive_fault_plan s);
      Blocks.Adaptive.prime af;
      Blocks.Adaptive.run af ~steps:s.Gen.ad_steps;
      let ubuf = Vm.Engine.buffer uniform.Pfcore.Timestep.block phi in
      let ok = ref true in
      for gy = 0 to gd.(1) - 1 do
        for gx = 0 to gd.(0) - 1 do
          for c = 0 to phi.Fieldspec.components - 1 do
            let a = Vm.Buffer.get ubuf ~component:c [| gx; gy |] in
            let b = Blocks.Adaptive.get af phi ~component:c [| gx; gy |] in
            if not (bits_equal a b) then ok := false
          done
        done
      done;
      let usum =
        Vm.Reduce.scalar ~backend:Vm.Engine.Interp ~num_domains:1
          uniform.Pfcore.Timestep.block phi Vm.Reduce.Interface Vm.Reduce.Sum
      in
      let asum =
        Blocks.Adaptive.scalar af phi Vm.Reduce.Interface Vm.Reduce.Sum
      in
      !ok && bits_equal usum asum)

(* Adaptive snapshot v2: capture → encode → decode → restore into a forest
   in a *different* refinement state must reproduce the captured state
   exactly — frozen constants, levels and ownership included. *)
let adaptive_snapshot_roundtrip ~count =
  QCheck.Test.make
    ~name:"oracle5: adaptive snapshot encode/decode/restore = identity (bitwise)" ~count
    Gen.arb_adaptive
    (fun s ->
      let s = { s with Gen.ad_crash = false } in
      let af = make_adaptive s in
      Blocks.Adaptive.prime af;
      Blocks.Adaptive.run af ~steps:s.Gen.ad_steps;
      let snap = Resilience.Snapshot.capture_adaptive af in
      let decoded =
        Resilience.Snapshot.decode_adaptive (Resilience.Snapshot.encode_adaptive snap)
      in
      if not (Resilience.Snapshot.equal_adaptive snap decoded) then false
      else begin
        let fresh = make_adaptive { s with Gen.ad_seed = s.Gen.ad_seed + 1 } in
        Blocks.Adaptive.prime fresh;
        Resilience.Snapshot.restore_adaptive decoded fresh;
        Resilience.Snapshot.equal_adaptive snap
          (Resilience.Snapshot.capture_adaptive fresh)
      end)

(* Crash + rollback + replay over the adaptive forest: the recovery driver
   restores refinement state alongside buffers, and replayed adaptation
   decisions are pure functions of the restored state — so the protected
   run must end bitwise identical to an undisturbed one, freeze/thaw and
   rebalance schedule included. *)
let adaptive_crash_restart ~count =
  QCheck.Test.make
    ~name:"oracle5: adaptive crash + rollback + replay = undisturbed run (bitwise)"
    ~count Gen.arb_adaptive
    (fun s ->
      let ranks = max 2 s.Gen.ad_ranks in
      let s =
        {
          s with
          Gen.ad_crash = true;
          ad_ranks = ranks;
          ad_crash_rank = s.Gen.ad_crash_rank mod ranks;
          ad_steps = max s.Gen.ad_steps (s.Gen.ad_crash_step + 1);
        }
      in
      let clean = make_adaptive s in
      Blocks.Adaptive.prime clean;
      Blocks.Adaptive.run clean ~steps:s.Gen.ad_steps;
      let faulty = make_adaptive s in
      Blocks.Adaptive.prime faulty;
      Blocks.Mpisim.set_fault_plan faulty.Blocks.Adaptive.comm
        (adaptive_fault_plan ~crash:(s.Gen.ad_crash_rank, s.Gen.ad_crash_step) s);
      let stats =
        Resilience.Recovery.run_protected_adaptive ~every:s.Gen.ad_ckpt_every
          ~steps:s.Gen.ad_steps faulty
      in
      stats.Resilience.Recovery.restarts >= 1
      && Resilience.Snapshot.equal_adaptive
           (Resilience.Snapshot.capture_adaptive clean)
           (Resilience.Snapshot.capture_adaptive faulty))

(* ------------------------------------------------------------------ *)
(* Model zoo: the oracle battery over the combinator-built families    *)
(* ------------------------------------------------------------------ *)

(* Code generation costs seconds per configuration, so kernels are cached
   process-wide on the (family, coefficient-variant) key the samples draw
   from; seeds, decompositions, variants and backends still vary freely
   per sample. *)
let zoo_gens : (int * int * bool, Pfcore.Genkernels.t) Hashtbl.t = Hashtbl.create 9

let zoo_gen ?(raw = false) (s : Gen.zoo_sample) =
  let key = (s.Gen.zf mod 3, s.Gen.zcoef mod 3, raw) in
  match Hashtbl.find_opt zoo_gens key with
  | Some g -> g
  | None ->
    let opts =
      if raw then { Pfcore.Genkernels.default_options with simplify = false; cse = false }
      else Pfcore.Genkernels.default_options
    in
    let g = Pfcore.Genkernels.generate ~opts (Gen.zoo_params s) in
    Hashtbl.add zoo_gens key g;
    g

(* Philox-keyed smooth fields around a family-appropriate base value, a
   function of the *global* cell index alone — any decomposition of the
   same global domain starts bitwise identically. *)
let init_zoo (sim : Pfcore.Timestep.t) ~seed =
  let gen = sim.Pfcore.Timestep.gen in
  let p = gen.Pfcore.Genkernels.params in
  let block = sim.Pfcore.Timestep.block in
  let fields = gen.Pfcore.Genkernels.fields in
  let base =
    match p.Pfcore.Params.family with
    | Pfcore.Params.Solidification -> 1. /. float_of_int p.Pfcore.Params.n_phases
    | Pfcore.Params.Pfc _ -> 0.3
    | Pfcore.Params.Gray_scott _ -> 0.5
  in
  let init (f : Fieldspec.t) ~slot ~base ~amp =
    let buf = Vm.Engine.buffer block f in
    let off = block.Vm.Engine.offset in
    let gd = block.Vm.Engine.global_dims in
    Vm.Buffer.init buf (fun coords comp ->
        let cell = ref 0 in
        for d = Array.length gd - 1 downto 0 do
          cell := (!cell * gd.(d)) + coords.(d) + off.(d)
        done;
        base +. (amp *. Philox.symmetric ~cell:!cell ~step:seed ~slot:(slot + comp)))
  in
  init fields.Pfcore.Model.phi_src ~slot:3 ~base ~amp:0.01;
  if Pfcore.Params.n_mu p > 0 then init fields.Pfcore.Model.mu_src ~slot:23 ~base:0.02 ~amp:0.01

let zoo_variant split = if split then Pfcore.Timestep.Split else Pfcore.Timestep.Full

(* One zoo run through the whole Algorithm-1 step structure on the shared
   12x12 global domain. *)
let zoo_sim ?gen ?(backend = Vm.Engine.Interp) ?(num_domains = 1) ?tile ?(split = false)
    (s : Gen.zoo_sample) =
  let gen = match gen with Some g -> g | None -> zoo_gen s in
  let variant = zoo_variant split in
  let sim =
    Pfcore.Timestep.create ~variant_phi:variant ~variant_mu:variant ~backend ~num_domains
      ?tile ~dims:global2 gen
  in
  init_zoo sim ~seed:s.Gen.zseed;
  Pfcore.Timestep.prime sim;
  Pfcore.Timestep.run sim ~steps:s.Gen.zsteps;
  sim

let zoo_sims_agree ?(cmp = bits_equal) (a : Pfcore.Timestep.t) (b : Pfcore.Timestep.t) =
  let fields = a.Pfcore.Timestep.gen.Pfcore.Genkernels.fields in
  let buf (sim : Pfcore.Timestep.t) f = Vm.Engine.buffer sim.Pfcore.Timestep.block f in
  interior_agree ~cmp (buf a fields.Pfcore.Model.phi_src) (buf b fields.Pfcore.Model.phi_src)
  && (Pfcore.Params.n_mu a.Pfcore.Timestep.gen.Pfcore.Genkernels.params = 0
     || interior_agree ~cmp (buf a fields.Pfcore.Model.mu_src) (buf b fields.Pfcore.Model.mu_src))

(* Oracles 4, 7 and 8 over the zoo: pool width, tile decomposition and the
   JIT backend must be invisible, bitwise, for every family and variant. *)
let zoo_exec_paths ~count =
  QCheck.Test.make
    ~name:"oracle4/7/8 zoo: domains/tile/jit sweep = serial interp (bitwise)" ~count
    Gen.arb_zoo
    (fun s ->
      let reference = zoo_sim ~split:s.Gen.zsplit s in
      let subject =
        zoo_sim
          ~backend:(if s.Gen.zjit then Vm.Engine.Jit else Vm.Engine.Interp)
          ~num_domains:s.Gen.zdomains ~tile:s.Gen.ztile ~split:s.Gen.zsplit s
      in
      zoo_sims_agree reference subject)

(* Oracle 3 over the zoo: the staggered-precompute split variant evaluates
   different (algebraically equal) trees, so the comparison is the same
   tolerance-with-guard policy as the generic flux oracle. *)
let zoo_full_vs_split ~count =
  let cmp a b =
    (not (Float.is_finite a) && not (Float.is_finite b))
    || Float.abs a > guard || Float.abs b > guard
    || close ~tol:1e-6 a b
  in
  QCheck.Test.make ~name:"oracle3 zoo: full = split variant (tolerance)" ~count
    Gen.arb_zoo
    (fun s -> zoo_sims_agree ~cmp (zoo_sim ~split:false s) (zoo_sim ~split:true s))

(* Oracle 1 over the zoo: per-term simplification and global CSE are
   value-preserving on the real generated models, not just on random
   scalar expressions. *)
let zoo_opt_vs_raw ~count =
  let cmp a b =
    (not (Float.is_finite a) && not (Float.is_finite b))
    || Float.abs a > guard || Float.abs b > guard
    || close ~tol:1e-6 a b
  in
  QCheck.Test.make
    ~name:"oracle1 zoo: optimized kernels = unoptimized kernels (tolerance)" ~count
    Gen.arb_zoo
    (fun s ->
      (* pin the coefficient variant: the raw (unsimplified) kernels are
         several times bigger, so only three of them are ever generated *)
      let s = { s with Gen.zcoef = 0; zsteps = 1 } in
      zoo_sims_agree ~cmp (zoo_sim s) (zoo_sim ~gen:(zoo_gen ~raw:true s) s))

(* Oracle 2 over the zoo: the engine's sweep of the generated phi kernel —
   lowered, hoisted, possibly JIT-compiled — against a direct cell-by-cell
   [Eval] interpretation of the kernel body. *)
let zoo_engine_vs_eval ~count =
  QCheck.Test.make ~name:"oracle2 zoo: engine phi sweep = Eval interpreter" ~count
    Gen.arb_zoo
    (fun s ->
      let gen = zoo_gen s in
      let backend = if s.Gen.zjit then Vm.Engine.Jit else Vm.Engine.Interp in
      let make () =
        let sim = Pfcore.Timestep.create ~backend ~dims:global2 gen in
        init_zoo sim ~seed:s.Gen.zseed;
        Pfcore.Timestep.prime sim;
        sim
      in
      let engine = make () in
      let params = Pfcore.Timestep.runtime_params engine in
      Vm.Engine.run ~num_domains:s.Gen.zdomains ~backend ~step:0 ~params
        (Vm.Engine.bind gen.Pfcore.Genkernels.phi_full engine.Pfcore.Timestep.block);
      let evaled = make () in
      let block = evaled.Pfcore.Timestep.block in
      let temps : (string, float) Hashtbl.t = Hashtbl.create 64 in
      let coords = Array.make 2 0 in
      let elt (a : Fieldspec.access) =
        let buf = Vm.Engine.buffer block a.Fieldspec.field in
        (buf, Vm.Buffer.base_index buf coords + Vm.Buffer.access_delta buf a)
      in
      let dx = List.assoc "dx" params in
      let env =
        Eval.env
          ~sym:(fun sy ->
            match Hashtbl.find_opt temps sy with
            | Some v -> v
            | None -> List.assoc sy params)
          ~access:(fun a ->
            let buf, i = elt a in
            buf.Vm.Buffer.data.(i))
          ~coord:(fun d -> (float_of_int coords.(d) +. 0.5) *. dx)
          ~rand:(fun _ -> 0.)
          ()
      in
      for y = 0 to global2.(1) - 1 do
        for x = 0 to global2.(0) - 1 do
          coords.(0) <- x;
          coords.(1) <- y;
          Hashtbl.reset temps;
          List.iter
            (fun (a : Field.Assignment.t) ->
              let v = Eval.eval env a.Field.Assignment.rhs in
              match a.Field.Assignment.lhs with
              | Field.Assignment.Temp t -> Hashtbl.replace temps t v
              | Field.Assignment.Store acc ->
                let buf, i = elt acc in
                buf.Vm.Buffer.data.(i) <- v)
            gen.Pfcore.Genkernels.phi_full.Ir.Kernel.body
        done
      done;
      let dst = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_dst in
      interior_agree ~cmp:engine_close
        (Vm.Engine.buffer engine.Pfcore.Timestep.block dst)
        (Vm.Engine.buffer block dst))

(* Oracle 5 over the zoo: single block vs 2x2 Mpisim forest, bitwise. *)
let zoo_single_vs_forest ~count =
  QCheck.Test.make ~name:"oracle5 zoo: single block = 2x2 forest (bitwise)" ~count
    Gen.arb_zoo
    (fun s ->
      let gen = zoo_gen s in
      let variant = zoo_variant s.Gen.zsplit in
      let single = zoo_sim ~split:s.Gen.zsplit s in
      let forest =
        Blocks.Forest.create ~variant_phi:variant ~variant_mu:variant ~grid:[| 2; 2 |]
          ~block_dims:[| global2.(0) / 2; global2.(1) / 2 |]
          gen
      in
      Array.iter (fun sim -> init_zoo sim ~seed:s.Gen.zseed) forest.Blocks.Forest.sims;
      Blocks.Forest.prime forest;
      Blocks.Forest.run forest ~steps:s.Gen.zsteps;
      let phi = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
      let sbuf = Vm.Engine.buffer single.Pfcore.Timestep.block phi in
      let ok = ref true in
      for gy = 0 to global2.(1) - 1 do
        for gx = 0 to global2.(0) - 1 do
          for c = 0 to phi.Fieldspec.components - 1 do
            let a = Vm.Buffer.get sbuf ~component:c [| gx; gy |] in
            let b = Blocks.Forest.get forest phi ~component:c [| gx; gy |] in
            if not (bits_equal a b) then ok := false
          done
        done
      done;
      !ok)

(* Oracle 6 over the zoo: snapshot capture/encode/decode/restore is the
   identity on evolved zoo forests, extra staggered slots included. *)
let zoo_snapshot_roundtrip ~count =
  QCheck.Test.make
    ~name:"oracle6 zoo: snapshot encode/decode/restore = identity (bitwise)" ~count
    Gen.arb_zoo
    (fun s ->
      let gen = zoo_gen s in
      let make seed =
        let forest =
          Blocks.Forest.create ~grid:[| 2; 2 |]
            ~block_dims:[| global2.(0) / 2; global2.(1) / 2 |]
            gen
        in
        Array.iter (fun sim -> init_zoo sim ~seed) forest.Blocks.Forest.sims;
        Blocks.Forest.prime forest;
        forest
      in
      let forest = make s.Gen.zseed in
      Blocks.Forest.run forest ~steps:s.Gen.zsteps;
      let snap = Resilience.Snapshot.capture forest in
      let decoded = Resilience.Snapshot.decode (Resilience.Snapshot.encode snap) in
      if not (Resilience.Snapshot.equal snap decoded) then false
      else begin
        let fresh = make (s.Gen.zseed + 1) in
        Resilience.Snapshot.restore decoded fresh;
        Resilience.Snapshot.equal snap (Resilience.Snapshot.capture fresh)
      end)

(* Oracle 10 over the zoo: the eutectic family has the phi+mu kernel
   structure the inner/outer overlap split is built around; overlapped
   exchange must stay invisible on a 2D decomposition too. *)
let zoo_overlap ~count =
  QCheck.Test.make
    ~name:"oracle10 zoo: eutectic overlapped = sequential exchange (bitwise)" ~count
    Gen.arb_zoo
    (fun s ->
      let s = { s with Gen.zf = 0 } in
      let gen = zoo_gen s in
      let variant = zoo_variant s.Gen.zsplit in
      let make ~overlap ~backend ~num_domains ~tile =
        let forest =
          Blocks.Forest.create ~variant_phi:variant ~variant_mu:variant ~num_domains
            ?tile ~backend ~overlap ~grid:[| 2; 1 |]
            ~block_dims:[| global2.(0) / 2; global2.(1) |]
            gen
        in
        Array.iter (fun sim -> init_zoo sim ~seed:s.Gen.zseed) forest.Blocks.Forest.sims;
        Blocks.Forest.prime forest;
        Blocks.Forest.run forest ~steps:s.Gen.zsteps;
        forest
      in
      let reference =
        make ~overlap:false ~backend:Vm.Engine.Interp ~num_domains:1 ~tile:None
      in
      let overlapped =
        make ~overlap:true
          ~backend:(if s.Gen.zjit then Vm.Engine.Jit else Vm.Engine.Interp)
          ~num_domains:s.Gen.zdomains ~tile:(Some s.Gen.ztile)
      in
      let fields = gen.Pfcore.Genkernels.fields in
      let check (f : Fieldspec.t) =
        let ok = ref true in
        for gy = 0 to global2.(1) - 1 do
          for gx = 0 to global2.(0) - 1 do
            for c = 0 to f.Fieldspec.components - 1 do
              let a = Blocks.Forest.get reference f ~component:c [| gx; gy |] in
              let b = Blocks.Forest.get overlapped f ~component:c [| gx; gy |] in
              if not (bits_equal a b) then ok := false
            done
          done
        done;
        !ok
      in
      check fields.Pfcore.Model.phi_src && check fields.Pfcore.Model.mu_src)

(* Oracle 11 over the zoo: pooled, tiled and forest-distributed canonical
   reductions of an evolved zoo field reproduce the serial scalar bitwise. *)
let zoo_reduce ~count =
  QCheck.Test.make
    ~name:"oracle11 zoo: pooled/forest reduction = serial reference (bitwise)" ~count
    Gen.arb_zoo
    (fun s ->
      let gen = zoo_gen s in
      let op = reduce_op s.Gen.zcoef in
      let phi = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
      (* Component 1 only exists for the multi-phase families *)
      let cf = s.Gen.zseed mod 4 in
      let cf = if cf = 1 && phi.Fieldspec.components < 2 then 0 else cf in
      let cellfn = reduce_cellfn ~seed:s.Gen.zseed cf in
      let single = zoo_sim ~split:s.Gen.zsplit s in
      let reference =
        Vm.Reduce.scalar ~backend:Vm.Engine.Interp ~num_domains:1
          single.Pfcore.Timestep.block phi cellfn op
      in
      let backend = if s.Gen.zjit then Vm.Engine.Jit else Vm.Engine.Interp in
      let pooled =
        Vm.Reduce.scalar ~backend ~num_domains:s.Gen.zdomains ~tile:s.Gen.ztile
          single.Pfcore.Timestep.block phi cellfn op
      in
      let variant = zoo_variant s.Gen.zsplit in
      let forest =
        Blocks.Forest.create ~variant_phi:variant ~variant_mu:variant
          ~num_domains:s.Gen.zdomains ~tile:s.Gen.ztile ~backend ~grid:[| 2; 1 |]
          ~block_dims:[| global2.(0) / 2; global2.(1) |]
          gen
      in
      Array.iter (fun sim -> init_zoo sim ~seed:s.Gen.zseed) forest.Blocks.Forest.sims;
      Blocks.Forest.prime forest;
      Blocks.Forest.run forest ~steps:s.Gen.zsteps;
      let dist =
        Blocks.Reduce.forest_scalar ~backend ~num_domains:s.Gen.zdomains
          ~tile:s.Gen.ztile forest phi cellfn op
      in
      bits_equal reference pooled && bits_equal reference dist)

(* Adaptive-forest leg over the zoo.  Gray-Scott is the family whose
   Pearson background (u=1, v=0) is an *exact* fixed point of the rhs, so
   bulk blocks hold constants and genuinely freeze — and its kernels are
   position-independent, which is what entitles the forest to freeze them. *)
let init_zoo_sharp (sim : Pfcore.Timestep.t) =
  let fields = sim.Pfcore.Timestep.gen.Pfcore.Genkernels.fields in
  let block = sim.Pfcore.Timestep.block in
  let buf = Vm.Engine.buffer block fields.Pfcore.Model.phi_src in
  let off = block.Vm.Engine.offset in
  Vm.Buffer.init buf (fun coords comp ->
      let gx = coords.(0) + off.(0) and gy = coords.(1) + off.(1) in
      let inside = gx >= 1 && gx <= 3 && gy >= 1 && gy <= 3 in
      match (comp, inside) with
      | 0, true -> 0.5
      | 0, false -> 1.
      | _, true -> 0.25
      | _, false -> 0.)

let zoo_adaptive ~count =
  QCheck.Test.make
    ~name:"oracle5 zoo: adaptive forest = uniform fine grid (bitwise)" ~count
    Gen.arb_zoo
    (fun s ->
      let s = { s with Gen.zf = 2 } in
      let gen = zoo_gen s in
      let phi = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
      let uniform = Pfcore.Timestep.create ~dims:global2 gen in
      init_zoo_sharp uniform;
      Pfcore.Timestep.prime uniform;
      Pfcore.Timestep.run uniform ~steps:s.Gen.zsteps;
      let af =
        Blocks.Adaptive.create ~ranks:(1 + (s.Gen.zseed mod 3))
          ~num_domains:s.Gen.zdomains ~tile:s.Gen.ztile
          ?backend:(if s.Gen.zjit then Some Vm.Engine.Jit else None)
          ~bgrid:[| 2; 2 |]
          ~block_dims:[| global2.(0) / 2; global2.(1) / 2 |]
          gen
      in
      List.iter init_zoo_sharp (Blocks.Adaptive.active_sims af);
      Blocks.Adaptive.prime af;
      Blocks.Adaptive.run af ~steps:s.Gen.zsteps;
      let ubuf = Vm.Engine.buffer uniform.Pfcore.Timestep.block phi in
      let ok = ref true in
      for gy = 0 to global2.(1) - 1 do
        for gx = 0 to global2.(0) - 1 do
          for c = 0 to phi.Fieldspec.components - 1 do
            let a = Vm.Buffer.get ubuf ~component:c [| gx; gy |] in
            let b = Blocks.Adaptive.get af phi ~component:c [| gx; gy |] in
            if not (bits_equal a b) then ok := false
          done
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Oracle 12: automatic variational derivative vs. finite differences  *)
(* ------------------------------------------------------------------ *)

(* A tiny self-contained reference implementation: fields are plain float
   arrays over a periodic 12x10 grid (no VM, no ghost cells), the discrete
   energy is the sum of the discretized density over all cells, and the
   functional derivative at cell j is probed by central differences on the
   state vector.  The subject is [Varder.run] — differentiate first, then
   discretize — evaluated at the same cell. *)

let o12_dims = [| 12; 10 |]
let o12_cells = o12_dims.(0) * o12_dims.(1)

(* Smooth single-mode probe per (field, component): base in [0.35, 0.45],
   amplitude 0.08 at the lowest wavenumber the grid supports, with a
   Philox-keyed phase.  See [o12_tolerance] for why the probe must stay
   far below the grid Nyquist. *)
let o12_state ~seed =
  let tbl : (string * int, float array) Hashtbl.t = Hashtbl.create 8 in
  fun (name, comp) ->
    match Hashtbl.find_opt tbl (name, comp) with
    | Some a -> a
    | None ->
      let key = (Hashtbl.hash name mod 97) + (31 * comp) in
      let phase = Float.pi *. Philox.symmetric ~cell:key ~step:seed ~slot:29 in
      let base = 0.4 +. (0.05 *. Philox.symmetric ~cell:key ~step:seed ~slot:30) in
      let qx = 2. *. Float.pi /. float_of_int o12_dims.(0) in
      let qy = 2. *. Float.pi /. float_of_int o12_dims.(1) in
      let a =
        Array.init o12_cells (fun cell ->
            let x = cell mod o12_dims.(0) and y = cell / o12_dims.(0) in
            base
            +. (0.08 *. sin ((qx *. float_of_int x) +. (qy *. float_of_int y) +. phase)))
      in
      Hashtbl.add tbl (name, comp) a;
      a

let o12_eval ~state ~bindings expr ~x ~y =
  let env =
    Eval.env
      ~sym:(fun sy -> List.assoc sy bindings)
      ~access:(fun (a : Fieldspec.access) ->
        let wrap v n = ((v mod n) + n) mod n in
        let px = wrap (x + a.Fieldspec.offsets.(0)) o12_dims.(0) in
        let py = wrap (y + a.Fieldspec.offsets.(1)) o12_dims.(1) in
        (state (a.Fieldspec.field.Fieldspec.name, a.Fieldspec.component)).((py
                                                                            * o12_dims.(0))
                                                                           + px))
      ~coord:(fun _ -> 0.)
      ~rand:(fun _ -> 0.)
      ()
  in
  Eval.eval env expr

(* The discrete energy (dx = 1, so no volume factor) and its central
   difference in one state-vector entry. *)
let o12_energy ~state ~bindings d_density =
  let acc = ref 0. in
  for y = 0 to o12_dims.(1) - 1 do
    for x = 0 to o12_dims.(0) - 1 do
      acc := !acc +. o12_eval ~state ~bindings d_density ~x ~y
    done
  done;
  !acc

let o12_fd ~state ~bindings d_density ~arr ~cell =
  let h = 1e-5 in
  let saved = arr.(cell) in
  arr.(cell) <- saved +. h;
  let ep = o12_energy ~state ~bindings d_density in
  arr.(cell) <- saved -. h;
  let em = o12_energy ~state ~bindings d_density in
  arr.(cell) <- saved;
  (ep -. em) /. (2. *. h)

let o12_ad ~state ~bindings density ~wrt ~x ~y =
  let scheme = Fd.Discretize.create ~dx:(Expr.num 1.) ~dim:2 () in
  o12_eval ~state ~bindings (Fd.Discretize.discretize scheme (Energy.Varder.run ~dim:2 density ~wrt)) ~x ~y

(* Tolerance (the documented one, like Drift's 1.2x threshold): bulk terms
   commute exactly between differentiate-then-discretize and
   discretize-then-differentiate, and so does the Swift-Hohenberg operator
   (the compact Laplacian is symmetric under the periodic sum).  Plain
   gradient terms do not: the AD side discretizes div(kappa grad u) with
   the compact 3-point Laplacian, while differentiating the energy's
   central-difference gradient yields the wide (2h) Laplacian — second-
   order operators whose symbols differ by O((q dx)^2).  On the probe mode
   (qx = 2pi/12, qy = 2pi/10, amplitude 0.08) that is at most ~0.005 per
   unit coefficient; the budget of 0.02 per unit coefficient passes with
   4x margin yet still fails on a sign flip, a dropped term or a missing
   factor 2 (all >= 0.05 absolute on the same probe). *)
let o12_tolerance coef_sum = 0.02 *. (1. +. coef_sum)

let u_of_func (s : Gen.func_sample) =
  Fieldspec.create ~dim:2 ~components:s.Gen.fn_comps "o12_u"

let density_of_func (s : Gen.func_sample) u =
  let comp i = Expr.access (Fieldspec.center ~component:(i mod s.Gen.fn_comps) u) in
  let all = Array.init s.Gen.fn_comps comp in
  Energy.Functional.sum
    (List.map
       (function
         | Gen.Zwell (w, i) -> Energy.Functional.double_well ~w:(Expr.num w) (comp i)
         | Gen.Zgrad (k, i) ->
           Energy.Functional.square_gradient ~dim:2 ~kappa:(Expr.num k) (comp i)
         | Gen.Zcouple c -> Energy.Functional.pair_coupling ~c:(Expr.num c) all
         | Gen.Zdrive (m, i) -> Energy.Functional.linear_drive ~m:(Expr.num m) (comp i)
         | Gen.Zcrystal (r, i) ->
           Energy.Functional.swift_hohenberg ~dim:2 ~r:(Expr.num r) (comp i))
       s.Gen.fn_terms)

let ad_vs_fd ~count =
  QCheck.Test.make
    ~name:"oracle12: Varder = finite-difference functional derivative" ~count
    Gen.arb_func
    (fun s ->
      let u = u_of_func s in
      let density = density_of_func s u in
      let comp = s.Gen.fn_comp mod s.Gen.fn_comps in
      let wrt = Expr.access (Fieldspec.center ~component:comp u) in
      let scheme = Fd.Discretize.create ~dx:(Expr.num 1.) ~dim:2 () in
      let d_density = Fd.Discretize.discretize scheme density in
      let state = o12_state ~seed:s.Gen.fn_seed in
      let cell = s.Gen.fn_cell mod o12_cells in
      let x = cell mod o12_dims.(0) and y = cell / o12_dims.(0) in
      let arr = state (u.Fieldspec.name, comp) in
      let fd = o12_fd ~state ~bindings:[] d_density ~arr ~cell in
      let ad = o12_ad ~state ~bindings:[] density ~wrt ~x ~y in
      let coef_sum =
        List.fold_left (fun acc t -> acc +. Float.abs (Gen.zterm_coef t)) 0. s.Gen.fn_terms
      in
      Float.abs (ad -. fd) <= o12_tolerance coef_sum)

(* The same check over the zoo families' actual densities (coefficients of
   order eps*gamma for eutectic), probing a random phase component.  The
   commutation error analysis above scales with the coefficients, hence
   the wider flat budget. *)
let zoo_ad_vs_fd ~count =
  QCheck.Test.make
    ~name:"oracle12 zoo: family density, Varder = finite differences" ~count
    Gen.arb_zoo
    (fun s ->
      let p = Gen.zoo_params s in
      let f = Pfcore.Model.make_fields p in
      let ctx = Pfcore.Model.make_ctx ~symbolic:false in
      let density =
        Expr.subst
          [ (Pfcore.Model.t_loc, Expr.num 0.47) ]
          (Pfcore.Model.family_density ctx p f)
      in
      let bindings = Pfcore.Genkernels.guard_bindings in
      let comp = s.Gen.zseed mod p.Pfcore.Params.n_phases in
      let wrt = Pfcore.Model.phi_at ~component:comp f.Pfcore.Model.phi_src in
      let scheme = Fd.Discretize.create ~dx:(Expr.num 1.) ~dim:2 () in
      let d_density = Fd.Discretize.discretize scheme density in
      let state = o12_state ~seed:s.Gen.zseed in
      let cell = s.Gen.zseed mod o12_cells in
      let x = cell mod o12_dims.(0) and y = cell / o12_dims.(0) in
      let arr = state (f.Pfcore.Model.phi_src.Fieldspec.name, comp) in
      let fd = o12_fd ~state ~bindings d_density ~arr ~cell in
      let ad = o12_ad ~state ~bindings density ~wrt ~x ~y in
      Float.abs (ad -. fd) <= 0.05 +. (0.02 *. (Float.abs ad +. Float.abs fd)))

(** Worst observed |AD − FD| deviation of one zoo family (at the preset
    coefficients) over every phase component and a spread of probe cells —
    the per-family number BENCH_zoo.json records, gated by the same budget
    as the oracle.  Returns [(max_deviation, within_budget)]. *)
let o12_family_deviation ~zf ~seed =
  let s =
    {
      Gen.zf;
      zcoef = 0;
      zseed = seed;
      zsplit = false;
      zsteps = 1;
      zdomains = 1;
      ztile = [| 0; 0 |];
      zjit = false;
    }
  in
  let p = Gen.zoo_params s in
  let f = Pfcore.Model.make_fields p in
  let ctx = Pfcore.Model.make_ctx ~symbolic:false in
  let density =
    Expr.subst
      [ (Pfcore.Model.t_loc, Expr.num 0.47) ]
      (Pfcore.Model.family_density ctx p f)
  in
  let bindings = Pfcore.Genkernels.guard_bindings in
  let scheme = Fd.Discretize.create ~dx:(Expr.num 1.) ~dim:2 () in
  let d_density = Fd.Discretize.discretize scheme density in
  let state = o12_state ~seed in
  let worst = ref 0. and ok = ref true in
  for comp = 0 to p.Pfcore.Params.n_phases - 1 do
    let wrt = Pfcore.Model.phi_at ~component:comp f.Pfcore.Model.phi_src in
    let arr = state (f.Pfcore.Model.phi_src.Fieldspec.name, comp) in
    List.iter
      (fun cell ->
        let x = cell mod o12_dims.(0) and y = cell / o12_dims.(0) in
        let fd = o12_fd ~state ~bindings d_density ~arr ~cell in
        let ad = o12_ad ~state ~bindings density ~wrt ~x ~y in
        let dev = Float.abs (ad -. fd) in
        if dev > !worst then worst := dev;
        if dev > 0.05 +. (0.02 *. (Float.abs ad +. Float.abs fd)) then ok := false)
      [ 0; 17; 53; 91; 118 ]
  done;
  (!worst, !ok)

(* ------------------------------------------------------------------ *)
(* The harness's test list                                             *)
(* ------------------------------------------------------------------ *)

(** All oracle tests.  [count] is the base sample count; cheap scalar
    oracles run more samples, whole-model oracles fewer. *)
let all ~count =
  simplify_tests ~count:(2 * count)
  @ [
      engine_vs_interp ~count;
      full_vs_split ~count;
      serial_vs_domains ~count:(max 3 (count / 2));
      single_vs_forest ~count:(max 2 (count / 6));
      snapshot_roundtrip ~count:(max 2 (count / 4));
      snapshot_corruption ~count:(max 4 (count / 2));
      crash_restart_bitwise ~count:(max 2 (count / 8));
      pooled_vs_serial ~count:(max 3 (count / 3));
      jit_vs_interp ~count:(max 3 (count / 3));
      farm_vs_solo ~count:(max 2 (count / 8));
      overlapped_vs_sequential ~count:(max 2 (count / 8));
      reduce_vs_serial ~count:(max 3 (count / 4));
      adaptive_vs_uniform ~count:(max 2 (count / 8));
      adaptive_snapshot_roundtrip ~count:(max 2 (count / 8));
      adaptive_crash_restart ~count:(max 2 (count / 8));
      (* model zoo: the whole battery re-run over the combinator families *)
      ad_vs_fd ~count;
      zoo_ad_vs_fd ~count:(max 3 (count / 3));
      zoo_opt_vs_raw ~count:(max 2 (count / 6));
      zoo_engine_vs_eval ~count:(max 3 (count / 4));
      zoo_full_vs_split ~count:(max 3 (count / 4));
      zoo_exec_paths ~count:(max 3 (count / 4));
      zoo_single_vs_forest ~count:(max 2 (count / 6));
      zoo_snapshot_roundtrip ~count:(max 2 (count / 6));
      zoo_overlap ~count:(max 2 (count / 8));
      zoo_reduce ~count:(max 2 (count / 6));
      zoo_adaptive ~count:(max 2 (count / 8));
    ]
  @ Obs_props.tests ~count
