(** Kernel generation: PDE layer → discretization → optimized kernels.

    Produces the four kernel variants of the paper ("φ-full", "φ-split",
    "μ-full", "μ-split", Algorithm 1) plus the simplex-projection kernel,
    running the full optimization pipeline: per-term simplification,
    compile-time parameter freezing with constant folding, and global CSE. *)

open Symbolic
open Field

type pair = { stag : Ir.Kernel.t; main : Ir.Kernel.t }

type t = {
  params : Params.t;
  fields : Model.fields;
  phi_full : Ir.Kernel.t;
  phi_split : pair;
  mu_full : Ir.Kernel.t option;
  mu_split : pair option;
  projection : Ir.Kernel.t option;
      (** [None] for families whose fields are not simplex-constrained *)
  bindings : (string * float) list;
      (** parameter values; kernel arguments when generated symbolically,
          already folded into the code otherwise *)
}

type options = {
  symbolic_params : bool;  (** keep model parameters as runtime arguments *)
  simplify : bool;         (** per-term expand-or-factor pass *)
  cse : bool;              (** global common subexpression elimination *)
}

let default_options = { symbolic_params = false; simplify = true; cse = true }

let guard_bindings = [ ("q_eps", 1e-12) ]

let optimize (opts : options) ~bindings body =
  let body = if opts.simplify then Assignment.simplify body else body in
  let body =
    if opts.symbolic_params then Assignment.freeze_parameters guard_bindings body
    else Assignment.freeze_parameters (guard_bindings @ bindings) body
  in
  let body = if opts.cse then Assignment.cse body else body in
  body

let scheme_of (opts : options) (p : Params.t) =
  let dx = if opts.symbolic_params then Expr.sym "dx" else Expr.num p.dx in
  Fd.Discretize.create ~dx ~dim:p.dim ()

(* dst_α = src_α + dt * rhs_α for every component *)
let euler_stores ctx (p : Params.t) ~src ~dst rhs_list =
  let dt = Model.scalar ctx "dt" p.dt in
  List.mapi
    (fun comp rhs ->
      let src_acc = Fieldspec.center ~component:comp src in
      let dst_acc = Fieldspec.center ~component:comp dst in
      Fd.Discretize.explicit_euler ~dt ~src:src_acc ~dst:dst_acc rhs)
    rhs_list

let make_full opts ctx p ~name ~src ~dst rhs_continuous =
  let scheme = scheme_of opts p in
  let rhs = List.map (Fd.Discretize.discretize scheme) rhs_continuous in
  let body = optimize opts ~bindings:ctx.Model.bindings (euler_stores ctx p ~src ~dst rhs) in
  Ir.Kernel.make ~name ~dim:p.dim body

let make_split opts ctx p ~name ~src ~dst ~stag_field rhs_continuous =
  let scheme = scheme_of opts p in
  let registry = Fd.Discretize.make_registry stag_field in
  let rhs = List.map (Fd.Discretize.discretize_split scheme ~registry) rhs_continuous in
  let stag_body =
    optimize opts ~bindings:ctx.Model.bindings (Fd.Discretize.registry_kernel_body registry)
  in
  let main_body = optimize opts ~bindings:ctx.Model.bindings (euler_stores ctx p ~src ~dst rhs) in
  let axes = List.init p.dim Fun.id in
  {
    stag =
      Ir.Kernel.make ~iteration:(Ir.Kernel.StaggeredSweep axes) ~name:(name ^ "_stag")
        ~dim:p.dim stag_body;
    main = Ir.Kernel.make ~name:(name ^ "_main") ~dim:p.dim main_body;
  }

(** Gibbs-simplex projection run in place on the updated phase field:
    clip to [0,∞) and renormalize the sum to 1 (the obstacle potential is
    only valid inside the simplex). *)
let projection_kernel (p : Params.t) (f : Model.fields) =
  let open Expr in
  let n = p.n_phases in
  let clipped =
    List.init n (fun a ->
        Assignment.assign_temp
          (Printf.sprintf "clip_%d" a)
          (fmax_ (field ~component:a f.phi_dst) zero))
  in
  let inv_sum =
    Assignment.assign_temp "inv_sum"
      (pow (fmax_ (add (List.init n (fun a -> sym (Printf.sprintf "clip_%d" a)))) (num 1e-12))
         (-1))
  in
  let stores =
    List.init n (fun a ->
        Assignment.store
          (Fieldspec.center ~component:a f.phi_dst)
          (mul [ sym (Printf.sprintf "clip_%d" a); sym "inv_sum" ]))
  in
  Ir.Kernel.make ~name:"projection" ~dim:p.dim (clipped @ [ inv_sum ] @ stores)

(** Generate all kernels of a model instance. *)
let generate ?(opts = default_options) (p : Params.t) =
  let f = Model.make_fields p in
  let ctx = Model.make_ctx ~symbolic:opts.symbolic_params in
  let phi_rhs = Array.to_list (Model.phi_rhs ctx p f) in
  let phi_full = make_full opts ctx p ~name:"phi_full" ~src:f.phi_src ~dst:f.phi_dst phi_rhs in
  let phi_split =
    make_split opts ctx p ~name:"phi_split" ~src:f.phi_src ~dst:f.phi_dst
      ~stag_field:f.phi_stag phi_rhs
  in
  let mu_rhs = Array.to_list (Model.mu_rhs ctx p f) in
  let mu_full, mu_split =
    if mu_rhs = [] then (None, None)
    else
      ( Some (make_full opts ctx p ~name:"mu_full" ~src:f.mu_src ~dst:f.mu_dst mu_rhs),
        Some
          (make_split opts ctx p ~name:"mu_split" ~src:f.mu_src ~dst:f.mu_dst
             ~stag_field:f.mu_stag mu_rhs) )
  in
  {
    params = p;
    fields = f;
    phi_full;
    phi_split;
    mu_full;
    mu_split;
    projection = (if Model.needs_projection p then Some (projection_kernel p f) else None);
    bindings = guard_bindings @ ctx.Model.bindings;
  }

(** Operation counts of a kernel body (paper Table 1 rows). *)
let counts (k : Ir.Kernel.t) = Opcount.of_assignments k.Ir.Kernel.body

let pp_counts_row ppf (label, (full : Opcount.t), stag_opt) =
  match stag_opt with
  | None -> Fmt.pf ppf "%-10s %a" label Opcount.pp full
  | Some (stag : Opcount.t) ->
    Fmt.pf ppf "%-10s stag{%a} + main{%a}" label Opcount.pp stag Opcount.pp full
