(** Simulation setup and analysis: initial conditions for the paper's two
    physical scenarios (ternary eutectic lamellae, dendritic seeds), a
    curvature-flow correctness anchor, and observables used by the examples
    and tests (phase fractions, front position, interface extent). *)

let phi_buffer (t : Timestep.t) = Vm.Engine.buffer t.block t.gen.Genkernels.fields.phi_src
let mu_buffer (t : Timestep.t) = Vm.Engine.buffer t.block t.gen.Genkernels.fields.mu_src
let phi_dst_buffer (t : Timestep.t) = Vm.Engine.buffer t.block t.gen.Genkernels.fields.phi_dst

let fill_mu (t : Timestep.t) value =
  if Params.n_mu t.gen.Genkernels.params > 0 then begin
    Vm.Buffer.init (mu_buffer t) (fun _ _ -> value);
    (* dst starts as a copy so that φ-kernel reads of μ ghosts are sane *)
    Vm.Buffer.init (Vm.Engine.buffer t.block t.gen.Genkernels.fields.mu_dst) (fun _ _ -> value)
  end

(* Initial conditions are functions of *global* coordinates so that a
   multi-block decomposition reproduces the single-block state bit for
   bit. *)
let set_phase_field (t : Timestep.t) choose =
  let n = t.gen.Genkernels.params.Params.n_phases in
  let offset = t.block.Vm.Engine.offset in
  let assign buf =
    Vm.Buffer.init buf (fun coords c ->
        let global = Array.mapi (fun d x -> x + offset.(d)) coords in
        if c = choose global && c < n then 1. else 0.)
  in
  assign (phi_buffer t);
  assign (phi_dst_buffer t)

(** A solid sphere of phase 0 embedded in phase 1 (mean-curvature flow:
    the sphere must shrink). *)
let init_sphere ?(radius_frac = 0.3) (t : Timestep.t) =
  let dims = t.block.Vm.Engine.global_dims in
  let dim = Array.length dims in
  let center = Array.map (fun n -> float_of_int n /. 2.) dims in
  let radius = radius_frac *. float_of_int dims.(0) in
  set_phase_field t (fun coords ->
      let r2 = ref 0. in
      for d = 0 to dim - 1 do
        let dx = float_of_int coords.(d) +. 0.5 -. center.(d) in
        r2 := !r2 +. (dx *. dx)
      done;
      if sqrt !r2 < radius then 0 else 1);
  fill_mu t 0.;
  Timestep.prime t

(** Eutectic lamellae: alternating solid phases below [height_frac] along
    the temperature axis, liquid above — the P1 scenario. *)
let init_lamellae ?(height_frac = 0.3) ?(lamella_width = 8) (t : Timestep.t) =
  let p = t.gen.Genkernels.params in
  let dims = t.block.Vm.Engine.global_dims in
  let axis = match p.Params.temp with Params.Gradient g -> g.axis | _ -> p.Params.dim - 1 in
  let z0 = int_of_float (height_frac *. float_of_int dims.(axis)) in
  let solids = p.Params.n_phases - 1 in
  set_phase_field t (fun coords ->
      if coords.(axis) >= z0 then p.Params.liquid
      else coords.(0) / lamella_width mod solids);
  fill_mu t 0.;
  Timestep.prime t

(** Spherical solid seeds at given positions (phase per seed), rest liquid —
    the P2 dendrite scenario. *)
let init_seeds ~seeds ~radius (t : Timestep.t) =
  let p = t.gen.Genkernels.params in
  let dim = p.Params.dim in
  set_phase_field t (fun coords ->
      let in_seed (pos, _) =
        let r2 = ref 0. in
        for d = 0 to dim - 1 do
          let dx = float_of_int coords.(d) +. 0.5 -. float_of_int (Array.get pos d) in
          r2 := !r2 +. (dx *. dx)
        done;
        sqrt !r2 < radius
      in
      match List.find_opt in_seed seeds with
      | Some (_, phase) -> phase
      | None -> p.Params.liquid);
  fill_mu t 0.;
  Timestep.prime t

(* Zoo initial conditions — functions of global coordinates like the
   solidification ones, so decomposed runs reproduce single-block state
   bitwise. *)

let set_fields (t : Timestep.t) value =
  let offset = t.block.Vm.Engine.offset in
  let assign buf =
    Vm.Buffer.init buf (fun coords c ->
        let global = Array.mapi (fun d x -> x + offset.(d)) coords in
        value c global)
  in
  assign (phi_buffer t);
  assign (phi_dst_buffer t)

(** Phase-field crystal: uniform melt at density [mean] modulated by a
    product-of-cosines seed — the classic one-mode crystalline nucleus. *)
let init_pfc ?(mean = 0.285) ?(amplitude = 0.1) (t : Timestep.t) =
  let q = Float.pi /. 4. in
  set_fields t (fun _ global ->
      let modulation =
        Array.fold_left (fun acc x -> acc *. cos (q *. (float_of_int x +. 0.5))) 1. global
      in
      mean +. (amplitude *. modulation));
  fill_mu t 0.;
  Timestep.prime t

(** Gray–Scott: substrate-filled domain (u=1, v=0) with a central square
    perturbation (u=0.5, v=0.25) that seeds the patterns (Pearson 1993). *)
let init_gray_scott (t : Timestep.t) =
  let dims = t.block.Vm.Engine.global_dims in
  let inside global =
    let ok = ref true in
    Array.iteri
      (fun d x ->
        let half = dims.(d) / 2 and w = max 1 (dims.(d) / 8) in
        if abs (x - half) > w then ok := false)
      global;
    !ok
  in
  set_fields t (fun c global ->
      match (inside global, c) with
      | true, 0 -> 0.5
      | true, _ -> 0.25
      | false, 0 -> 1.
      | false, _ -> 0.);
  fill_mu t 0.;
  Timestep.prime t

(** Family-appropriate default scenario: lamellae/sphere for the
    solidification models, crystalline seed for PFC, Pearson square for
    Gray–Scott. *)
let init_model (t : Timestep.t) =
  let p = t.gen.Genkernels.params in
  match p.Params.family with
  | Params.Pfc _ -> init_pfc t
  | Params.Gray_scott _ -> init_gray_scott t
  | Params.Solidification ->
    if Params.n_mu p > 0 then init_lamellae t else init_sphere t

(** Smooth near-simplex-center fields in every buffer (the probe pattern
    the autotuner and the drift oracle use): exercises the kernels' full
    arithmetic with no degenerate denominators, and is deterministic, so
    two identically-built sims agree bitwise — the init of choice for the
    pooled-vs-serial equality checks. *)
let init_smooth (t : Timestep.t) =
  Timestep.smooth_fill t.Timestep.block t.Timestep.gen;
  Timestep.prime t

(* ------------------------------------------------------------------ *)
(* Observables                                                         *)
(* ------------------------------------------------------------------ *)

let cells (t : Timestep.t) = float_of_int (Timestep.lups_per_step t)

(** Volume fraction of each phase. *)
let phase_fractions (t : Timestep.t) =
  let buf = phi_buffer t in
  Array.init t.gen.Genkernels.params.Params.n_phases (fun c ->
      Vm.Buffer.interior_sum ~component:c buf /. cells t)

(** Diffuse-interface volume: fraction of cells with any 0.01<φ<0.99. *)
let interface_fraction (t : Timestep.t) =
  let buf = phi_buffer t in
  let dims = t.block.Vm.Engine.dims in
  let dim = Array.length dims in
  let coords = Array.make dim 0 in
  let count = ref 0 in
  let rec loop d =
    if d = dim then begin
      let diffuse = ref false in
      for c = 0 to t.gen.Genkernels.params.Params.n_phases - 1 do
        let v = Vm.Buffer.get buf ~component:c coords in
        if v > 0.01 && v < 0.99 then diffuse := true
      done;
      if !diffuse then incr count
    end
    else
      for i = 0 to dims.(d) - 1 do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0;
  float_of_int !count /. cells t

(** Mean position of the solid–liquid front along [axis]: solid-weighted
    average coordinate of 1 − φ_liquid. *)
let front_position ?axis (t : Timestep.t) =
  let p = t.gen.Genkernels.params in
  let axis = Option.value axis ~default:(p.Params.dim - 1) in
  let buf = phi_buffer t in
  let dims = t.block.Vm.Engine.dims in
  let dim = Array.length dims in
  let coords = Array.make dim 0 in
  let weight = ref 0. and moment = ref 0. in
  let rec loop d =
    if d = dim then begin
      let solid = 1. -. Vm.Buffer.get buf ~component:p.Params.liquid coords in
      weight := !weight +. solid;
      moment := !moment +. (solid *. (float_of_int coords.(axis) +. 0.5))
    end
    else
      for i = 0 to dims.(d) - 1 do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0;
  if !weight = 0. then 0. else !moment /. !weight

(** Highest cell along [axis] where any solid phase exceeds 1/2 — the
    dendrite tip position. *)
let tip_position ?axis (t : Timestep.t) =
  let p = t.gen.Genkernels.params in
  let axis = Option.value axis ~default:(p.Params.dim - 1) in
  let buf = phi_buffer t in
  let dims = t.block.Vm.Engine.dims in
  let dim = Array.length dims in
  let coords = Array.make dim 0 in
  let tip = ref (-1) in
  let rec loop d =
    if d = dim then begin
      let solid = 1. -. Vm.Buffer.get buf ~component:p.Params.liquid coords in
      if solid > 0.5 && coords.(axis) > !tip then tip := coords.(axis)
    end
    else
      for i = 0 to dims.(d) - 1 do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0;
  !tip

(** Range check: all fields finite, and for simplex-constrained families
    all φ within the simplex (after projection).  PFC's ψ and Gray–Scott's
    concentrations are unconstrained, so only finiteness (plus a loose
    blow-up bound) applies. *)
let check_sane (t : Timestep.t) =
  let buf = phi_buffer t in
  Array.for_all Float.is_finite buf.Vm.Buffer.data
  &&
  let lo, hi =
    match t.gen.Genkernels.params.Params.family with
    | Params.Solidification -> (-1e-9, 1. +. 1e-9)
    | Params.Pfc _ | Params.Gray_scott _ -> (-10., 10.)
  in
  let ok = ref true in
  Array.iter (fun v -> if v < lo || v > hi then ok := false) buf.Vm.Buffer.data;
  !ok

