(** The model layers: energy functional → coupled PDEs (paper §3.1–3.2).

    Given a parameter set, builds the continuous right-hand sides of

    - the Allen–Cahn equations
        τ_ip ε ∂φ_α/∂t = −δΨ/δφ_α + Λ + ξ(φ),   Λ = (1/N) Σ_β δΨ/δφ_β
      with the variational derivative of the grand-potential functional and
      an optional Philox-backed fluctuation term, and

    - the non-variational chemical-potential evolution (paper eq. 8)
        ∂μ/∂t = (∂c/∂μ)⁻¹ [ ∇·(M(φ,μ,T)∇μ − J_at) − (∂c/∂φ)·∂φ/∂t
                            − (∂c/∂T) ∂T/∂t ]
      with mobility interpolated by g_α (eq. 9) and the anti-trapping
      current of eq. 10.

    Parameters are embedded as numeric constants (the paper's compile-time
    specialization) or, when [symbolic] is set, as named symbols that remain
    runtime kernel arguments; [bindings] collects their values either way. *)

open Symbolic
open Expr

type fields = {
  phi_src : Fieldspec.t;
  phi_dst : Fieldspec.t;
  mu_src : Fieldspec.t;
  mu_dst : Fieldspec.t;
  phi_stag : Fieldspec.t;  (** staggered flux cache for the φ-split kernel *)
  mu_stag : Fieldspec.t;
}

let make_fields (p : Params.t) =
  let dim = p.dim in
  let n = p.n_phases and km = max 1 (Params.n_mu p) in
  (* PFC's split variant caches two distinct fluxes per axis — ∇ψ from the
     Laplacian atoms and ∇(ψ+∇²ψ) from the second-order Euler–Lagrange
     term — while n_phases is 1, so its staggered field gets extra slots. *)
  let stag_n = match p.family with Params.Pfc _ -> 2 | _ -> n in
  {
    phi_src = Fieldspec.create ~dim ~components:n "phi_src";
    phi_dst = Fieldspec.create ~dim ~components:n "phi_dst";
    mu_src = Fieldspec.create ~dim ~components:km "mu_src";
    mu_dst = Fieldspec.create ~dim ~components:km "mu_dst";
    phi_stag = Fieldspec.create ~kind:Fieldspec.Staggered ~dim ~components:stag_n "phi_stag";
    mu_stag = Fieldspec.create ~kind:Fieldspec.Staggered ~dim ~components:km "mu_stag";
  }

(** Parameter context: [scalar name value] yields either a frozen numeric
    constant or a named symbol, recording the binding. *)
type param_ctx = { symbolic : bool; mutable bindings : (string * float) list }

let make_ctx ~symbolic = { symbolic; bindings = [] }

let scalar ctx name v =
  if not (List.mem_assoc name ctx.bindings) then ctx.bindings <- (name, v) :: ctx.bindings;
  if ctx.symbolic then sym name else num v

(* Numerical guard width for normalizations and divisions in interface
   terms; always frozen (it is not a physical parameter). *)
let guard_eps = 1e-9

(** Analytic temperature field, in terms of [Coord] and the time symbol
    [t] — its special functional form (dependence on a single coordinate)
    is what the loop-invariant hoisting exploits. *)
let temperature (p : Params.t) =
  match p.temp with
  | Params.Const_temp v -> num v
  | Params.Gradient { t0; grad; axis; velocity } ->
    add [ num t0; mul [ num grad; sub (coord axis) (mul [ num velocity; sym "t" ]) ] ]

let phi_at ?(component = 0) f = field ~component f
let phis (p : Params.t) f = Array.init p.n_phases (fun a -> phi_at ~component:a f)
let mus (p : Params.t) f = Array.init (Params.n_mu p) (fun i -> phi_at ~component:i f)

(* Thermodynamic quantities are built against the placeholder symbol T_loc
   and the caller substitutes the analytic temperature at the end; this
   keeps ∂c/∂T a plain symbolic derivative. *)
let t_loc = sym "T_loc"

let affine ctx base name0 name1 v0 v1 =
  let c0 = scalar ctx (base ^ name0) v0 in
  if v1 = 0. && not ctx.symbolic then c0
  else add [ c0; mul [ scalar ctx (base ^ name1) v1; t_loc ] ]

(** Per-phase parabolic coefficients A_α(T), B_α(T), C_α(T). *)
let parabolic_coeffs ctx (p : Params.t) alpha =
  let km = Params.n_mu p in
  let base = Printf.sprintf "ph%d_" alpha in
  let a =
    Array.init km (fun i ->
        Array.init km (fun j ->
            affine ctx base
              (Printf.sprintf "a0_%d_%d" i j)
              (Printf.sprintf "a1_%d_%d" i j)
              p.par_a0.(alpha).(i).(j) p.par_a1.(alpha).(i).(j)))
  in
  let b =
    Array.init km (fun i ->
        affine ctx base (Printf.sprintf "b0_%d" i) (Printf.sprintf "b1_%d" i)
          p.par_b0.(alpha).(i) p.par_b1.(alpha).(i))
  in
  let c = affine ctx base "c0" "c1" p.par_c0.(alpha) p.par_c1.(alpha) in
  (a, b, c)

(** Concentration vector of phase α: c_α(μ,T) = −(2 A_α μ + B_α). *)
let phase_concentration ctx (p : Params.t) ~mu alpha =
  let a, b, _ = parabolic_coeffs ctx p alpha in
  Energy.Functional.concentration ~a ~b ~mu

let gamma_of ctx (p : Params.t) a b =
  scalar ctx (Printf.sprintf "gamma_%d_%d" (min a b) (max a b)) p.gamma.(a).(b)

let aniso_of ctx (p : Params.t) a b =
  match p.aniso.(a).(b) with
  | Params.Iso -> Energy.Functional.Isotropic
  | Params.Cubic { delta; rotation } ->
    Energy.Functional.Cubic
      { delta = scalar ctx (Printf.sprintf "delta_%d_%d" (min a b) (max a b)) delta; rotation }

(** The full energy density ε a + ω/ε + ψ of paper eq. 3, continuous. *)
let energy_density ctx (p : Params.t) f =
  let phis = phis p f.phi_src in
  let eps = scalar ctx "eps" p.eps in
  let grad_energy =
    Energy.Functional.gradient_energy ~dim:p.dim ~gamma:(gamma_of ctx p)
      ~aniso:(aniso_of ctx p) ~phis
  in
  let obstacle =
    Energy.Functional.obstacle ~gamma:(gamma_of ctx p)
      ~gamma3:(fun _ _ _ -> scalar ctx "gamma3" p.gamma3)
      ~phis
  in
  let driving =
    if Params.n_mu p = 0 then zero
    else
      let mu = mus p f.mu_src in
      let psis =
        Array.init p.n_phases (fun alpha ->
            let a, b, c = parabolic_coeffs ctx p alpha in
            Energy.Functional.parabolic_potential ~a ~b ~c ~mu)
      in
      Energy.Functional.driving_force ~psis ~phis
  in
  add [ mul [ eps; grad_energy ]; div obstacle eps; driving ]

(** Locally interpolated kinetic coefficient
    τ_ip = Σ_{α<β} τ_αβ φ_α φ_β / Σ_{α<β} φ_α φ_β (guarded in the bulk). *)
let tau_interpolated ctx (p : Params.t) phis =
  let n = Array.length phis in
  let weighted = ref [] and weights = ref [] in
  for beta = n - 1 downto 0 do
    for alpha = beta - 1 downto 0 do
      let w = mul [ phis.(alpha); phis.(beta) ] in
      let t = scalar ctx (Printf.sprintf "tau_%d_%d" alpha beta) p.tau.(alpha).(beta) in
      weighted := mul [ t; w ] :: !weighted;
      weights := w :: !weights
    done
  done;
  let sum_w = add !weights in
  let tau_bulk = scalar ctx "tau_bulk" 1.0 in
  select (Le (sum_w, num guard_eps)) tau_bulk (div (add !weighted) sum_w)

(* ------------------------------------------------------------------ *)
(* Zoo families (combinator-built densities)                           *)
(* ------------------------------------------------------------------ *)

(** Swift–Hohenberg density for the PFC family, parameters through [ctx]. *)
let pfc_density ctx (p : Params.t) f r =
  let u = phi_at f.phi_src in
  Energy.Functional.swift_hohenberg ~dim:p.dim ~r:(scalar ctx "pfc_r" r) u

(** Dirichlet (diffusion) part of the Gray–Scott free energy — the
    variational half of the dynamics; the reaction terms are added
    non-variationally in the rhs. *)
let gray_scott_density ctx (p : Params.t) f ~du ~dv =
  let u = phi_at ~component:0 f.phi_src and v = phi_at ~component:1 f.phi_src in
  Energy.Functional.sum
    [
      Energy.Functional.square_gradient ~dim:p.dim ~kappa:(scalar ctx "gs_du" du) u;
      Energy.Functional.square_gradient ~dim:p.dim ~kappa:(scalar ctx "gs_dv" dv) v;
    ]

(** The variational free-energy density of the model family — what oracle
    12 differentiates by finite differences. *)
let family_density ctx (p : Params.t) f =
  match p.family with
  | Params.Solidification -> energy_density ctx p f
  | Params.Pfc { r } -> pfc_density ctx p f r
  | Params.Gray_scott { du; dv; _ } -> gray_scott_density ctx p f ~du ~dv

(** PFC: non-conserved relaxation ∂ψ/∂t = −M·δΨ/δψ = M·(rψ − (1+∇²)²ψ − ψ³),
    the stiffness-friendly dynamics (conserved PFC would need ∇²δΨ/δψ and a
    third ghost layer). *)
let pfc_rhs ctx (p : Params.t) f r =
  let u = phi_at f.phi_src in
  let density = pfc_density ctx p f r in
  let mob = [| scalar ctx "pfc_mob" p.tau.(0).(0) |] in
  [|
    Energy.Functional.diag_mobility mob 0
      (neg (Energy.Varder.run ~dim:p.dim density ~wrt:u));
  |]

(** Gray–Scott: ∂u/∂t = Du∇²u − uv² + F(1−u), ∂v/∂t = Dv∇²v + uv² − (F+k)v.
    The diffusion terms come out of [Varder] applied to the Dirichlet
    density (keeping them in divergence form for the split variant); the
    autocatalytic reaction uv² and the feed/kill drains do not derive from
    a potential and are added directly. *)
let gray_scott_rhs ctx (p : Params.t) f ~du ~dv ~feed ~kill =
  let u = phi_at ~component:0 f.phi_src and v = phi_at ~component:1 f.phi_src in
  let density = gray_scott_density ctx p f ~du ~dv in
  let feed = scalar ctx "gs_feed" feed and kill = scalar ctx "gs_kill" kill in
  let react = mul [ u; sq v ] in
  [|
    add
      [
        neg (Energy.Varder.run ~dim:p.dim density ~wrt:u);
        neg react;
        mul [ feed; sub one u ];
      ];
    add
      [
        neg (Energy.Varder.run ~dim:p.dim density ~wrt:v);
        react;
        neg (mul [ add [ feed; kill ]; v ]);
      ];
  |]

(** Continuous Allen–Cahn right-hand sides ∂φ_α/∂t for all phases.
    The temperature placeholder is substituted at the end. *)
let solidification_phi_rhs ctx (p : Params.t) f =
  let density = energy_density ctx p f in
  let phis = phis p f.phi_src in
  let n = p.n_phases in
  let dpsi =
    Array.init n (fun alpha -> Energy.Varder.run ~dim:p.dim density ~wrt:phis.(alpha))
  in
  let lagrange = mul [ num (1. /. float_of_int n); add (Array.to_list dpsi) ] in
  let eps = scalar ctx "eps" p.eps in
  let inv_tau_eps = pow (mul [ tau_interpolated ctx p phis; eps ]) (-1) in
  let temp = temperature p in
  Array.init n (fun alpha ->
      let fluct =
        if p.fluctuation = 0. then zero
        else mul [ scalar ctx "noise_amp" p.fluctuation; rand alpha ]
      in
      let rhs = mul [ inv_tau_eps; add [ neg dpsi.(alpha); lagrange; fluct ] ] in
      subst [ (t_loc, temp) ] rhs)

(** Family dispatch: continuous evolution right-hand sides of the primary
    (phase / density / species) fields. *)
let phi_rhs ctx (p : Params.t) f =
  match p.family with
  | Params.Solidification -> solidification_phi_rhs ctx p f
  | Params.Pfc { r } -> pfc_rhs ctx p f r
  | Params.Gray_scott { du; dv; feed; kill } -> gray_scott_rhs ctx p f ~du ~dv ~feed ~kill

(** Whether the family's primary fields live on the Gibbs simplex and need
    the projection step after each update (paper Algorithm 1).  PFC's ψ and
    Gray–Scott's concentrations are unconstrained. *)
let needs_projection (p : Params.t) =
  match p.family with Params.Solidification -> true | Params.Pfc _ | Params.Gray_scott _ -> false

(** Anti-trapping current J_at (paper eq. 10), component [i] of the flux
    along axis [d]; [phidot] are the discrete-in-time ∂φ_α/∂t built from
    the src/dst fields. *)
let anti_trapping ctx (p : Params.t) ~phis ~phidot ~c_of_phase ~axis ~comp =
  let dim = p.dim and l = p.liquid in
  let grad a = Energy.Varder.grad ~dim phis.(a) in
  let norm_inv a =
    rsqrt (fmax_ (Energy.Varder.grad_sq ~dim phis.(a)) (num guard_eps))
  in
  let eps = scalar ctx "eps" p.eps in
  let prefactor = mul [ num (Float.pi /. 4.); eps ] in
  let terms = ref [] in
  for alpha = p.n_phases - 1 downto 0 do
    if alpha <> l then begin
      let overlap = mul [ phis.(alpha); phis.(l) ] in
      let g_h =
        div
          (mul [ Energy.Functional.g phis.(alpha); Energy.Functional.h phis.(l) ])
          (sqrt_ (fmax_ overlap (num guard_eps)))
      in
      let align =
        mul [ Energy.Varder.dot (grad alpha) (grad l); norm_inv alpha; norm_inv l ]
      in
      let dc = sub (c_of_phase l).(comp) (c_of_phase alpha).(comp) in
      let normal_d = mul [ List.nth (grad alpha) axis; norm_inv alpha ] in
      let term =
        select
          (Le (overlap, num guard_eps))
          zero
          (mul [ g_h; phidot.(alpha); align; dc; normal_d ])
      in
      terms := term :: !terms
    end
  done;
  mul [ prefactor; add !terms ]

(** Continuous μ-equation right-hand sides ∂μ_i/∂t (paper eq. 8).  Reads
    φ at both time levels: [f.phi_dst] is the already-updated phase field
    (Algorithm 1 runs the φ kernel first). *)
let mu_rhs ctx (p : Params.t) f =
  let km = Params.n_mu p in
  if km = 0 then [||]
  else begin
    let dim = p.dim in
    let phis_src = phis p f.phi_src in
    let phis_dst = phis p f.phi_dst in
    let mu = mus p f.mu_src in
    let dt = scalar ctx "dt" p.dt in
    let c_of_phase = Array.init p.n_phases (fun a -> phase_concentration ctx p ~mu a) in
    let c_mix =
      Array.init km (fun i ->
          add
            (List.init p.n_phases (fun a ->
                 mul [ c_of_phase.(a).(i); Energy.Functional.h phis_src.(a) ])))
    in
    (* χ_ij = ∂c_i/∂μ_j *)
    let chi = Array.init km (fun i -> Array.init km (fun j -> diff c_mix.(i) ~wrt:mu.(j))) in
    let chi_inv =
      match km with
      | 1 -> [| [| pow chi.(0).(0) (-1) |] |]
      | 2 ->
        let det =
          sub (mul [ chi.(0).(0); chi.(1).(1) ]) (mul [ chi.(0).(1); chi.(1).(0) ])
        in
        let inv_det = pow det (-1) in
        [|
          [| mul [ chi.(1).(1); inv_det ]; neg (mul [ chi.(0).(1); inv_det ]) |];
          [| neg (mul [ chi.(1).(0); inv_det ]); mul [ chi.(0).(0); inv_det ] |];
        |]
      | _ -> invalid_arg "Model.mu_rhs: only K <= 3 components supported"
    in
    (* mobility M_ij = Σ_α D_α (∂c_α/∂μ)_ij g_α(φ)  (paper eq. 9) *)
    let mobility =
      Array.init km (fun i ->
          Array.init km (fun j ->
              add
                (List.init p.n_phases (fun a ->
                     let d_a = scalar ctx (Printf.sprintf "diff_%d" a) p.diffusion.(a) in
                     let dc_dmu = diff c_of_phase.(a).(i) ~wrt:mu.(j) in
                     mul [ d_a; dc_dmu; Energy.Functional.g phis_src.(a) ]))))
    in
    let phidot =
      Array.init p.n_phases (fun a -> div (sub phis_dst.(a) phis_src.(a)) dt)
    in
    let divergence =
      Array.init km (fun i ->
          add
            (List.init dim (fun d ->
                 let diffusive =
                   add (List.init km (fun j -> mul [ mobility.(i).(j); Diff (mu.(j), d) ]))
                 in
                 let flux =
                   if p.anti_trapping then
                     sub diffusive
                       (anti_trapping ctx p ~phis:phis_src ~phidot ~c_of_phase:(fun a ->
                            c_of_phase.(a))
                          ~axis:d ~comp:i)
                   else diffusive
                 in
                 Diff (flux, d))))
    in
    let coupling =
      Array.init km (fun i ->
          add
            (List.init p.n_phases (fun a ->
                 mul [ diff c_mix.(i) ~wrt:phis_src.(a); phidot.(a) ])))
    in
    let tdot =
      match p.temp with
      | Params.Const_temp _ -> zero
      | Params.Gradient { grad; velocity; _ } -> num (-.grad *. velocity)
    in
    let tcoupling = Array.init km (fun i -> mul [ diff c_mix.(i) ~wrt:t_loc; tdot ]) in
    let temp = temperature p in
    Array.init km (fun i ->
        let rhs =
          add
            (List.init km (fun j ->
                 mul
                   [
                     chi_inv.(i).(j);
                     add [ divergence.(j); neg coupling.(j); neg tcoupling.(j) ];
                   ]))
        in
        subst [ (t_loc, temp) ] rhs)
  end
