(** Time stepping (paper Algorithm 1).

    One step runs, on a block:

    + φ kernel (full, or staggered pass + main pass for the split variant),
    + Gibbs-simplex projection of the updated phase field,
    + ghost-layer exchange / boundary handling of φ_dst,
    + μ kernel (full or split),
    + ghost-layer exchange of μ_dst,
    + src ↔ dst buffer swap.

    The exchange is pluggable: the default closes the block periodically; the
    [Blocks] library substitutes real inter-block communication. *)

open Symbolic

type variant = Full | Split

type t = {
  gen : Genkernels.t;
  block : Vm.Engine.block;
  variant_phi : variant;
  variant_mu : variant;
  num_domains : int;
  tile : int array option;  (** loop-depth tile shape for every kernel sweep *)
  backend : Vm.Engine.backend;  (** execution backend for every kernel sweep *)
  lane : int;  (** observability lane: 0 = local, 1 + r = simulated rank r *)
  exchange : Vm.Engine.block -> Fieldspec.t -> unit;
  phi_full : Vm.Engine.bound;
  phi_stag : Vm.Engine.bound;
  phi_main : Vm.Engine.bound;
  mu_full : Vm.Engine.bound option;
  mu_stag : Vm.Engine.bound option;
  mu_main : Vm.Engine.bound option;
  projection : Vm.Engine.bound option;
  mutable step_count : int;
  mutable time : float;
}

let default_exchange block (f : Fieldspec.t) = Vm.Buffer.periodic (Vm.Engine.buffer block f)

let field_list (g : Genkernels.t) =
  let f = g.fields in
  [ f.phi_src; f.phi_dst; f.mu_src; f.mu_dst; f.phi_stag; f.mu_stag ]

(** Build a simulation block and bind all kernels of the chosen variants.
    [rank] names the simulated rank this block belongs to (set by
    [Blocks.Forest]); it only affects which observability lane the block's
    spans land on, and [lane] overrides that mapping directly (the farm
    scheduler places each job on its own trace lane).  [alloc] supplies the
    field-buffer storage — the hook [Serve.Mempool] uses to recycle arrays
    across jobs.  [num_domains] defaults to the pool width requested by
    [PFGEN_DOMAINS]; [tile] fixes the cache-blocking shape of every kernel
    sweep (loop-depth indexed, [0] = full extent at that depth). *)
let create ?(variant_phi = Full) ?(variant_mu = Full)
    ?(num_domains = Vm.Pool.default_domains ()) ?tile
    ?(backend = Vm.Engine.default_backend ()) ?rank ?lane ?(exchange = default_exchange)
    ?alloc ?global_dims ?offset ~dims (gen : Genkernels.t) =
  let block =
    Vm.Engine.make_block ~ghost:2 ?alloc ?global_dims ?offset ~dims (field_list gen)
  in
  let bind k = Vm.Engine.bind k block in
  {
    gen;
    block;
    variant_phi;
    variant_mu;
    num_domains;
    tile;
    backend;
    lane =
      (match (lane, rank) with
      | Some l, _ -> l
      | None, Some r -> Obs.Sink.rank_lane r
      | None, None -> 0);
    exchange;
    phi_full = bind gen.phi_full;
    phi_stag = bind gen.phi_split.stag;
    phi_main = bind gen.phi_split.main;
    mu_full = Option.map bind gen.mu_full;
    mu_stag = Option.map (fun (p : Genkernels.pair) -> bind p.stag) gen.mu_split;
    mu_main = Option.map (fun (p : Genkernels.pair) -> bind p.main) gen.mu_split;
    projection = Option.map bind gen.projection;
    step_count = 0;
    time = 0.;
  }

let runtime_params t =
  let p = t.gen.Genkernels.params in
  ("t", t.time) :: ("dx", p.Params.dx) :: ("dt", p.Params.dt) :: t.gen.Genkernels.bindings

(** Exchange ghosts of the source fields — required once after initial
    conditions are written. *)
let prime t =
  t.exchange t.block t.gen.Genkernels.fields.phi_src;
  if Params.n_mu t.gen.Genkernels.params > 0 then
    t.exchange t.block t.gen.Genkernels.fields.mu_src

let run_kernel t bound =
  Vm.Engine.run ~num_domains:t.num_domains ?tile:t.tile ~backend:t.backend
    ~step:t.step_count ~params:(runtime_params t) bound

let has_mu t = Params.n_mu t.gen.Genkernels.params > 0

(* All per-block spans land on this block's lane so a forest run renders
   one trace track per simulated rank. *)
let in_lane t f = Obs.Span.in_lane t.lane f

let exchange_span t (f : Fieldspec.t) =
  in_lane t (fun () ->
      Obs.Span.with_ ~cat:"comm" ("exchange:" ^ f.Fieldspec.name) (fun () ->
          t.exchange t.block f))

(** Phase 1: φ kernel(s) and the simplex projection (Algorithm 1, line 1). *)
let phase_phi t =
  in_lane t (fun () ->
      Obs.Span.with_ ~cat:"step" "phase:phi" (fun () ->
          (match t.variant_phi with
          | Full -> run_kernel t t.phi_full
          | Split ->
            run_kernel t t.phi_stag;
            run_kernel t t.phi_main);
          match t.projection with
          | None -> ()
          | Some proj ->
            Obs.Span.with_ ~cat:"step" "projection" (fun () -> run_kernel t proj)))

(** Phase 2: μ kernel(s) (Algorithm 1, line 3); requires φ_dst ghosts. *)
let phase_mu t =
  match (t.variant_mu, t.mu_full, t.mu_stag, t.mu_main) with
  | _, None, _, _ -> ()
  | Full, Some mu, _, _ ->
    in_lane t (fun () -> Obs.Span.with_ ~cat:"step" "phase:mu" (fun () -> run_kernel t mu))
  | Split, _, Some stag, Some main ->
    in_lane t (fun () ->
        Obs.Span.with_ ~cat:"step" "phase:mu" (fun () ->
            run_kernel t stag;
            run_kernel t main))
  | Split, _, _, _ -> assert false

(* ------------------------------------------------------------------ *)
(* Region-split μ phase (communication overlap, paper §7)              *)
(* ------------------------------------------------------------------ *)

let run_kernel_region t region bound =
  Vm.Engine.run ~num_domains:t.num_domains ?tile:t.tile ~backend:t.backend ~region
    ~step:t.step_count ~params:(runtime_params t) bound

(** The μ kernel chain in execution order, each annotated with its
    {e cumulative} stencil halo: kernel [k] of the chain reads the outputs
    of kernels before it, so a cell of [k] is independent of ghost values
    only when it sits [Σ_{j≤k} ghost_j] cells inside the owned region.
    Running every chain position's interior at its cumulative halo keeps
    the interior pass bitwise identical to the sequential sweep — the split
    variant's main kernel never reads a staggered value the interior pass
    did not already compute. *)
let mu_chain t =
  let chain =
    match (t.variant_mu, t.mu_full, t.mu_stag, t.mu_main) with
    | _, None, _, _ -> []
    | Full, Some mu, _, _ -> [ mu ]
    | Split, _, Some stag, Some main -> [ stag; main ]
    | Split, _, _, _ -> assert false
  in
  let halo = ref 0 in
  List.map
    (fun b ->
      halo := !halo + Vm.Engine.stencil_halo b;
      (b, !halo))
    chain

(** Deep-interior μ pass: every cell provably independent of the φ_dst
    ghost layer, so it may run while the ghost exchange is in flight. *)
let phase_mu_interior t =
  match mu_chain t with
  | [] -> ()
  | chain ->
    in_lane t (fun () ->
        Obs.Span.with_ ~cat:"step" "phase:mu.interior" (fun () ->
            List.iter (fun (b, h) -> run_kernel_region t (Vm.Engine.Interior h) b) chain))

(** Halo-shell μ pass: the complement of {!phase_mu_interior}; must run
    after the exchange completes.  Kernels run in chain order, so every
    staggered value a main-kernel shell cell reads is already final. *)
let phase_mu_shell t =
  match mu_chain t with
  | [] -> ()
  | chain ->
    in_lane t (fun () ->
        Obs.Span.with_ ~cat:"step" "phase:mu.shell" (fun () ->
            List.iter (fun (b, h) -> run_kernel_region t (Vm.Engine.Shell h) b) chain))

(** Phase 3: src ↔ dst swap and time advance (Algorithm 1, line 5). *)
let finish t =
  let f = t.gen.Genkernels.fields in
  Vm.Buffer.swap (Vm.Engine.buffer t.block f.phi_src) (Vm.Engine.buffer t.block f.phi_dst);
  if has_mu t then
    Vm.Buffer.swap (Vm.Engine.buffer t.block f.mu_src) (Vm.Engine.buffer t.block f.mu_dst);
  t.step_count <- t.step_count + 1;
  t.time <- t.time +. t.gen.Genkernels.params.Params.dt

(** Advance one time step (Algorithm 1), single-block version. *)
let step t =
  let f = t.gen.Genkernels.fields in
  in_lane t (fun () ->
      Obs.Span.with_ ~cat:"step" ~args:[ ("step", float_of_int t.step_count) ] "step"
        (fun () ->
          phase_phi t;
          exchange_span t f.phi_dst;
          phase_mu t;
          if has_mu t then exchange_span t f.mu_dst;
          finish t))

(** Advance [steps] steps; [on_step] fires after every completed step —
    the hook the resilience driver uses to checkpoint every N steps. *)
let run ?(on_step = fun (_ : t) -> ()) t ~steps =
  for _ = 1 to steps do
    step t;
    on_step t
  done

(** Resume entry point: reset the step counter and physical time to those
    of a restored snapshot (field buffers are restored separately by
    [Resilience.Snapshot]). *)
let restore t ~step ~time =
  t.step_count <- step;
  t.time <- time

(** Cells updated per full time step (for MLUP/s reporting). *)
let lups_per_step t = Array.fold_left ( * ) 1 t.block.Vm.Engine.dims

(* ------------------------------------------------------------------ *)
(* Autotuning                                                          *)
(* ------------------------------------------------------------------ *)

(* Smooth phase fields near the simplex center (the bench/drift pattern):
   no kernel hits a degenerate denominator, so probe sweeps exercise the
   full arithmetic. *)
let smooth_fill (block : Vm.Engine.block) (gen : Genkernels.t) =
  let n = float_of_int gen.Genkernels.params.Params.n_phases in
  List.iter
    (fun (_, buf) ->
      Vm.Buffer.init buf (fun c comp ->
          (1. /. n) +. (0.01 *. sin (float_of_int ((c.(0) * 3) + (comp * 7)))));
      Vm.Buffer.periodic buf)
    block.Vm.Engine.buffers

let probe_params (gen : Genkernels.t) =
  let p = gen.Genkernels.params in
  ("t", 0.) :: ("dx", p.Params.dx) :: ("dt", p.Params.dt) :: gen.Genkernels.bindings

let phi_candidates (gen : Genkernels.t) =
  [
    ("full", [ gen.Genkernels.phi_full ]);
    ( "split",
      [ gen.Genkernels.phi_split.Genkernels.stag; gen.Genkernels.phi_split.Genkernels.main ]
    );
  ]

let mu_candidates (gen : Genkernels.t) =
  match (gen.Genkernels.mu_full, gen.Genkernels.mu_split) with
  | Some full, Some pair ->
    Some
      [
        ("full", [ full ]);
        ("split", [ pair.Genkernels.stag; pair.Genkernels.main ]);
      ]
  | _ -> None

(** A tuning plan: one variant decision per kernel family plus the tile
    shape and pool width every sweep of the simulation will use.  The tile
    follows the most expensive family (μ when the model has one — Table 1),
    since a single shape drives all sweeps of a step. *)
type plan = {
  phi : Vm.Tune.choice;
  mu : Vm.Tune.choice option;
  plan_domains : int;
  plan_tile : int array option;
  plan_backend : Vm.Engine.backend;  (** follows the dominant family, like the tile *)
  plan_overlap : bool;
      (** overlap the φ_dst exchange with the μ interior sweep — only
          meaningful when the model has a μ family to hide the exchange
          behind, so [false] for single-field models *)
}

(** Tune both kernel families of [gen] on a [probe_n]^dim block.  Decisions
    are served from the [Vm.Tune] fingerprint cache, so repeated calls
    (every block of a forest, every bench repetition) probe only once. *)
let autotune ?machine ?(domains = Vm.Pool.default_domains ()) ?(probe_n = 10)
    (gen : Genkernels.t) =
  let dim = gen.Genkernels.params.Params.dim in
  let dims = Array.make dim probe_n in
  let make_block () =
    let block = Vm.Engine.make_block ~ghost:2 ~dims (field_list gen) in
    smooth_fill block gen;
    block
  in
  let params = probe_params gen in
  let decide = Vm.Tune.decide ?machine ~domains ~dims ~make_block ~params in
  let phi = decide (phi_candidates gen) in
  let mu = Option.map decide (mu_candidates gen) in
  {
    phi;
    mu;
    plan_domains = domains;
    plan_tile = (match mu with Some m -> m.Vm.Tune.tile | None -> phi.Vm.Tune.tile);
    plan_backend = (match mu with Some m -> m.Vm.Tune.backend | None -> phi.Vm.Tune.backend);
    plan_overlap = (match mu with Some m -> m.Vm.Tune.overlap | None -> false);
  }

let variant_of_choice (c : Vm.Tune.choice) = if c.Vm.Tune.variant_label = "split" then Split else Full

(** [create] with every knob taken from a tuning [plan] (freshly computed
    from the [Vm.Tune] cache when not supplied). *)
let create_tuned ?plan ?rank ?exchange ?global_dims ?offset ~dims (gen : Genkernels.t) =
  let plan = match plan with Some p -> p | None -> autotune gen in
  create ~variant_phi:(variant_of_choice plan.phi)
    ?variant_mu:(Option.map variant_of_choice plan.mu)
    ~num_domains:plan.plan_domains ?tile:plan.plan_tile ~backend:plan.plan_backend ?rank
    ?exchange ?global_dims ?offset ~dims gen
