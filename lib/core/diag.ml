(** Deterministic global diagnostics and threshold triggers.

    The observables in [Simulation] fold buffers in storage order — fine
    for display, but their values depend on nothing {e protecting} that
    order once a sweep is tiled, pooled or decomposed.  This module
    computes the same physics through [Vm.Reduce]'s canonical tree, so
    every scalar here is bitwise identical across tile shapes, domain
    counts, steal patterns and backends, and matches the forest-level
    [Blocks.Reduce] values cell for cell.  These are the numbers the
    paper's grand-challenge runs steer on (phase fractions, interface
    area, nucleation triggers, §8) — steering decisions must not depend
    on the scheduler.

    A {!trigger} watches one diagnostic during a run and records the
    exact step at which it first reaches its threshold; because the
    watched value is deterministic, the firing step is too. *)

open Symbolic

let block_cells (t : Timestep.t) =
  Vm.Reduce.total_cells t.Timestep.block.Vm.Engine.global_dims

(** Canonical-tree scalar of one field of a single-block simulation.
    [op]/[cellfn] as in [Vm.Reduce]; pool width, tile shape and backend
    default to the simulation's own configuration. *)
let scalar ?backend ?num_domains ?tile (t : Timestep.t) (field : Fieldspec.t) cellfn op =
  Vm.Reduce.scalar
    ~backend:(Option.value backend ~default:t.Timestep.backend)
    ~num_domains:(Option.value num_domains ~default:t.Timestep.num_domains)
    ?tile:(match tile with Some _ -> tile | None -> t.Timestep.tile)
    t.Timestep.block field cellfn op

let phi_src (t : Timestep.t) = t.Timestep.gen.Genkernels.fields.Model.phi_src

(** Volume-weighted phase fractions of φ_src, canonical-tree summed. *)
let phase_fractions ?backend ?num_domains ?tile (t : Timestep.t) =
  let n = float_of_int (block_cells t) in
  Array.init t.Timestep.gen.Genkernels.params.Params.n_phases (fun c ->
      scalar ?backend ?num_domains ?tile t (phi_src t) (Vm.Reduce.Component c)
        Vm.Reduce.Sum
      /. n)

(** Interface-cell count: cells with any φ component strictly inside the
    (0.01, 0.99) band. *)
let interface_cells ?backend ?num_domains ?tile (t : Timestep.t) =
  scalar ?backend ?num_domains ?tile t (phi_src t) Vm.Reduce.Interface Vm.Reduce.Sum

let interface_fraction ?backend ?num_domains ?tile (t : Timestep.t) =
  interface_cells ?backend ?num_domains ?tile t /. float_of_int (block_cells t)

(** NaN-aware extrema of one component (C99 min/max: all-NaN data reduces
    to NaN, mixed data ignores the NaNs). *)
let min_value ?backend ?num_domains ?tile (t : Timestep.t) field ~component =
  scalar ?backend ?num_domains ?tile t field (Vm.Reduce.Component component)
    Vm.Reduce.Min

let max_value ?backend ?num_domains ?tile (t : Timestep.t) field ~component =
  scalar ?backend ?num_domains ?tile t field (Vm.Reduce.Component component)
    Vm.Reduce.Max

(* ------------------------------------------------------------------ *)
(* Threshold triggers                                                  *)
(* ------------------------------------------------------------------ *)

(** A trigger fires the first time its diagnostic reaches [threshold]
    ([value >= threshold], so a value landing exactly on the threshold
    fires on that step).  [fired_at] records the step count of the
    simulation {e after} the step that crossed — the step at which a
    steering decision (nucleation, output, refinement) would be taken. *)
type trigger = {
  tr_name : string;
  tr_value : Timestep.t -> float;
  threshold : float;
  mutable fired_at : int option;
  mutable last : float;
}

let trigger ~name ~threshold value =
  { tr_name = name; tr_value = value; threshold; fired_at = None; last = Float.nan }

(** Evaluate the trigger against the current state; records the firing
    step on the first crossing and returns [true] while fired.  Designed
    as a [Timestep.run ~on_step] hook. *)
let observe tr (t : Timestep.t) =
  let v = tr.tr_value t in
  tr.last <- v;
  if tr.fired_at = None && v >= tr.threshold then begin
    tr.fired_at <- Some t.Timestep.step_count;
    Obs.Span.instant ~cat:"diag"
      ~args:[ ("step", float_of_int t.Timestep.step_count); ("value", v) ]
      ("trigger:" ^ tr.tr_name)
  end;
  tr.fired_at <> None

(** An interface-growth trigger: fires when the interface-cell count
    reaches [threshold] cells. *)
let interface_trigger ?(name = "interface-cells") ~threshold () =
  trigger ~name ~threshold (fun t -> interface_cells t)
