(** Model parameterizations.

    A parameter set fixes the phase-field model instance: number of phases
    and components, interface energies, anisotropy, kinetic coefficients,
    the parabolic grand-potential fits (paper eq. 6, affine-linear in T) and
    the analytic temperature field.  The paper's two benchmark instances are
    provided as presets:

    - [p1]: 4 phases, 3 components, isotropic — ternary eutectic directional
      solidification (the setup hand-optimized in Bauer et al. 2015 [2]);
    - [p2]: 3 phases, 2 components, cubic anisotropy with per-grain
      orientations — binary dendritic solidification. *)

type anisotropy =
  | Iso
  | Cubic of { delta : float; rotation : float array array option }

type temperature =
  | Const_temp of float
  | Gradient of { t0 : float; grad : float; axis : int; velocity : float }
      (** analytic frozen-temperature approximation
          T(x,t) = t0 + grad * (x_axis - velocity * t) *)

(** Model family: selects which free-energy functional (and which dynamics)
    [Model] assembles from the combinator library.  [Solidification] is the
    paper's grand-potential model; the zoo families reuse the same parameter
    record, ignoring the chemistry fields they don't need. *)
type family =
  | Solidification
  | Pfc of { r : float }
      (** Swift–Hohenberg phase-field crystal, undercooling [r];
          non-conserved dynamics ∂ψ/∂t = −δΨ/δψ *)
  | Gray_scott of { du : float; dv : float; feed : float; kill : float }
      (** Gray–Scott reaction–diffusion: variational diffusion part plus
          non-variational reaction terms uv² and the feed/kill drains *)

type t = {
  name : string;
  family : family;
  dim : int;
  n_phases : int;
  n_comps : int;       (** K chemical components; μ has K-1 entries *)
  liquid : int;        (** index of the liquid phase *)
  gamma : float array array;        (** pairwise interface energies γ_αβ *)
  gamma3 : float;                   (** third-phase suppression γ_αβδ *)
  aniso : anisotropy array array;   (** per-pair gradient-energy anisotropy *)
  tau : float array array;          (** pairwise kinetic coefficients τ_αβ *)
  eps : float;                      (** interface width scale ε *)
  diffusion : float array;          (** per-phase diffusivity D_α *)
  par_a0 : float array array array; (** A_α(T) = par_a0 + par_a1·T, (K-1)² *)
  par_a1 : float array array array;
  par_b0 : float array array;       (** B_α(T) = par_b0 + par_b1·T *)
  par_b1 : float array array;
  par_c0 : float array;             (** C_α(T) = par_c0 + par_c1·T *)
  par_c1 : float array;
  temp : temperature;
  fluctuation : float;              (** noise amplitude, 0 disables *)
  anti_trapping : bool;
  dx : float;
  dt : float;
}

let n_mu t = t.n_comps - 1

let square n f = Array.init n (fun i -> Array.init n (fun j -> f i j))

let rotation_z angle =
  let c = cos angle and s = sin angle in
  [| [| c; -.s; 0. |]; [| s; c; 0. |]; [| 0.; 0.; 1. |] |]

(* A_α must be negative definite so that χ = ∂c/∂μ = −2 Σ A_α h_α is
   positive and the μ equation is well posed. *)
let diag_a n v = Array.init n (fun i -> Array.init n (fun j -> if i = j then v else 0.))

(** P1: ternary eutectic directional solidification.  Four phases (three
    solids α,β,γ + liquid), three components (two independent μ entries),
    isotropic gradient energy, temperature gradient along z moving with the
    pulling velocity.  Values are synthetic but in the non-dimensional
    ranges used by Hötzer et al. [11]. *)
let p1 ?(dim = 3) () =
  let n = 4 and k = 3 in
  let km = k - 1 in
  let liquid = 3 in
  let solid_b = [| [| 0.4; 0.2 |]; [| -0.3; 0.5 |]; [| -0.1; -0.6 |] |] in
  {
    name = "P1";
    family = Solidification;
    dim;
    n_phases = n;
    n_comps = k;
    liquid;
    gamma = square n (fun i j -> if i = j then 0. else 0.8);
    gamma3 = 12.0;
    aniso = square n (fun _ _ -> Iso);
    tau = square n (fun i j -> if i = j then 0. else if i = liquid || j = liquid then 1.0 else 5.0);
    eps = 4.0;
    diffusion = [| 0.001; 0.001; 0.001; 1.0 |];
    par_a0 =
      Array.init n (fun alpha -> diag_a km (if alpha = liquid then -0.5 else -0.55));
    par_a1 = Array.init n (fun _ -> diag_a km 0.0);
    par_b0 =
      Array.init n (fun alpha ->
          if alpha = liquid then Array.make km 0.0
          else Array.init km (fun i -> solid_b.(alpha).(i)));
    par_b1 =
      (* affine temperature dependence of the fits: this is what makes
         temperature-dependent subexpressions appear in the mu kernel and
         gives the loop-invariant hoisting its target (paper §3.4) *)
      Array.init n (fun alpha ->
          if alpha = liquid then Array.make km 0.0
          else Array.init km (fun i -> 0.05 +. (0.01 *. float_of_int i)));
    par_c0 = Array.init n (fun alpha -> if alpha = liquid then 0.0 else -0.02);
    par_c1 = Array.init n (fun alpha -> if alpha = liquid then 0.0 else 0.04);
    temp = Gradient { t0 = 0.5; grad = 0.001; axis = dim - 1; velocity = 0.001 };
    fluctuation = 0.;
    anti_trapping = true;
    dx = 1.0;
    dt = 0.02;
  }

(** P2: binary dendritic solidification.  Three phases (two solid grains
    with different cubic orientations + liquid), two components (scalar μ),
    anisotropic gradient energy on the solid–liquid pairs. *)
let p2 ?(dim = 3) () =
  let n = 3 and k = 2 in
  let km = k - 1 in
  let liquid = 2 in
  let rot alpha =
    if dim = 3 then Some (rotation_z (if alpha = 0 then 0. else 0.55))
    else
      let a = if alpha = 0 then 0. else 0.55 in
      Some [| [| cos a; -.sin a |]; [| sin a; cos a |] |]
  in
  let aniso i j =
    if i = j then Iso
    else
      let solid = if i = liquid then j else if j = liquid then i else -1 in
      if solid >= 0 then Cubic { delta = 0.3; rotation = rot solid } else Iso
  in
  {
    name = "P2";
    family = Solidification;
    dim;
    n_phases = n;
    n_comps = k;
    liquid;
    gamma = square n (fun i j -> if i = j then 0. else if i = liquid || j = liquid then 0.5 else 1.0);
    gamma3 = 10.0;
    aniso = square n aniso;
    tau = square n (fun i j -> if i = j then 0. else 1.0);
    eps = 4.0;
    diffusion = [| 0.001; 0.001; 1.0 |];
    par_a0 = Array.init n (fun _ -> diag_a km (-0.5));
    par_a1 = Array.init n (fun _ -> diag_a km 0.0);
    par_b0 =
      Array.init n (fun alpha -> if alpha = liquid then [| 0.0 |] else [| 0.2 |]);
    par_b1 = Array.init n (fun _ -> Array.make km 0.0);
    par_c0 = Array.init n (fun alpha -> if alpha = liquid then 0.0 else -0.55);
    par_c1 = Array.init n (fun alpha -> if alpha = liquid then 0.0 else 0.6);
    temp = Gradient { t0 = 0.4; grad = 0.0005; axis = dim - 1; velocity = 0.002 };
    fluctuation = 0.01;
    anti_trapping = true;
    dx = 1.0;
    dt = 0.02;
  }

(** Two-phase isotropic toy model (mean-curvature flow): no chemistry, no
    driving force — the quickstart example and a sharp correctness anchor
    (a spherical inclusion must shrink). *)
let curvature ?(dim = 2) () =
  let n = 2 and k = 1 in
  {
    name = "curvature";
    family = Solidification;
    dim;
    n_phases = n;
    n_comps = k;
    liquid = 1;
    gamma = square n (fun i j -> if i = j then 0. else 1.0);
    gamma3 = 0.;
    aniso = square n (fun _ _ -> Iso);
    tau = square n (fun _ _ -> 1.0);
    eps = 4.0;
    diffusion = Array.make n 1.0;
    par_a0 = Array.init n (fun _ -> [||]);
    par_a1 = Array.init n (fun _ -> [||]);
    par_b0 = Array.init n (fun _ -> [||]);
    par_b1 = Array.init n (fun _ -> [||]);
    par_c0 = Array.make n 0.;
    par_c1 = Array.make n 0.;
    temp = Const_temp 1.0;
    fluctuation = 0.;
    anti_trapping = false;
    dx = 1.0;
    dt = 0.05;
  }

(** Eutectic directional solidification (Bauer/Hötzer 2015, the
    grand-challenge run): two solid lamellae + liquid, binary chemistry
    (scalar μ), isotropic interfaces, temperature gradient along the last
    axis moving with the pulling velocity.  Defaults to 2-D so the example
    and the adaptive/forest verification twins stay cheap. *)
let eutectic ?(dim = 2) () =
  let n = 3 and k = 2 in
  let km = k - 1 in
  let liquid = 2 in
  (* opposite-signed solid fits: solid 0 grows where μ > 0, solid 1 where
     μ < 0, which is what keeps the lamellae alternating *)
  let solid_b = [| [| 0.35 |]; [| -0.35 |] |] in
  {
    name = "eutectic";
    family = Solidification;
    dim;
    n_phases = n;
    n_comps = k;
    liquid;
    gamma = square n (fun i j -> if i = j then 0. else if i = liquid || j = liquid then 0.6 else 1.0);
    gamma3 = 12.0;
    aniso = square n (fun _ _ -> Iso);
    tau = square n (fun i j -> if i = j then 0. else if i = liquid || j = liquid then 1.0 else 5.0);
    eps = 4.0;
    diffusion = [| 0.001; 0.001; 1.0 |];
    par_a0 = Array.init n (fun alpha -> diag_a km (if alpha = liquid then -0.5 else -0.55));
    par_a1 = Array.init n (fun _ -> diag_a km 0.0);
    par_b0 =
      Array.init n (fun alpha ->
          if alpha = liquid then Array.make km 0.0 else solid_b.(alpha));
    par_b1 =
      Array.init n (fun alpha -> if alpha = liquid then Array.make km 0.0 else [| 0.05 |]);
    par_c0 = Array.init n (fun alpha -> if alpha = liquid then 0.0 else -0.02);
    par_c1 = Array.init n (fun alpha -> if alpha = liquid then 0.0 else 0.04);
    temp = Gradient { t0 = 0.5; grad = 0.001; axis = dim - 1; velocity = 0.001 };
    fluctuation = 0.;
    anti_trapping = true;
    dx = 1.0;
    dt = 0.02;
  }

(** Swift–Hohenberg phase-field crystal (Elder & Grant 2004): one density
    field ψ, no chemistry.  Non-conserved relaxation keeps the stencil
    within the standard two ghost layers; with the compact Laplacian's
    spectrum λ ∈ [−4·dim/dx², 0] the explicit-Euler rhs Jacobian is bounded
    by max(r, (1+|λ|)²) ≈ 81 in 2-D, so dt = 0.02 is comfortably stable. *)
let pfc ?(dim = 2) () =
  let n = 1 and k = 1 in
  {
    name = "pfc";
    family = Pfc { r = 0.25 };
    dim;
    n_phases = n;
    n_comps = k;
    liquid = 0;
    gamma = square n (fun _ _ -> 0.);
    gamma3 = 0.;
    aniso = square n (fun _ _ -> Iso);
    tau = square n (fun _ _ -> 1.0);
    eps = 1.0;
    diffusion = Array.make n 1.0;
    par_a0 = Array.init n (fun _ -> [||]);
    par_a1 = Array.init n (fun _ -> [||]);
    par_b0 = Array.init n (fun _ -> [||]);
    par_b1 = Array.init n (fun _ -> [||]);
    par_c0 = Array.make n 0.;
    par_c1 = Array.make n 0.;
    temp = Const_temp 1.0;
    fluctuation = 0.;
    anti_trapping = false;
    dx = 1.0;
    dt = 0.02;
  }

(** Gray–Scott reaction–diffusion (Pearson 1993's classic discrete
    parameterization: du=0.16, dv=0.08 at dx=1, dt=1).  The two phases are
    the substrate u and activator v; the diffusion part is variational
    (Dirichlet energies), the reaction part is added non-variationally. *)
let gray_scott ?(dim = 2) () =
  let n = 2 and k = 1 in
  {
    name = "gray-scott";
    family = Gray_scott { du = 0.16; dv = 0.08; feed = 0.035; kill = 0.065 };
    dim;
    n_phases = n;
    n_comps = k;
    liquid = 0;
    gamma = square n (fun _ _ -> 0.);
    gamma3 = 0.;
    aniso = square n (fun _ _ -> Iso);
    tau = square n (fun _ _ -> 1.0);
    eps = 1.0;
    diffusion = [| 0.16; 0.08 |];
    par_a0 = Array.init n (fun _ -> [||]);
    par_a1 = Array.init n (fun _ -> [||]);
    par_b0 = Array.init n (fun _ -> [||]);
    par_b1 = Array.init n (fun _ -> [||]);
    par_c0 = Array.make n 0.;
    par_c1 = Array.make n 0.;
    temp = Const_temp 1.0;
    fluctuation = 0.;
    anti_trapping = false;
    dx = 1.0;
    dt = 1.0;
  }

(** The zoo families registered behind [Model.t], keyed by [t.name] — used
    by the CLI model selector, the check generators and the bench table. *)
let zoo () = [ eutectic (); pfc (); gray_scott () ]

(** Number of configuration parameters the model instance fixes at compile
    time (paper §5.1: 2(N²+N+1) for the driving force plus N(K−1)² for the
    mobilities, >50 for P1). *)
let config_parameter_count t =
  let n = t.n_phases and km = n_mu t in
  (2 * ((n * n) + n + 1)) + (n * km * km)
