(** Finite-difference discretization (paper §3.3).

    Transforms continuous PDE right-hand sides ([Expr.Diff] nodes over field
    accesses) into stencil expressions with integer offsets:

    - first-order derivatives of locally evaluated terms become central
      differences;
    - divergence terms [Diff (flux, d)] whose flux itself contains
      derivatives are discretized in divergence-of-fluxes form: the flux is
      evaluated at the two staggered (face) positions along [d] and
      differenced.  At a staggered position, same-axis inner derivatives
      become compact two-point differences, cross-axis inner derivatives
      become averaged central differences (paper eq. 11), and cell-centered
      quantities are linearly interpolated;
    - optionally, staggered flux values are hoisted into a separate
      precomputation kernel over a staggered temporary field (the "split"
      kernel variants). *)

open Symbolic
open Expr

type scheme = {
  dx : Expr.t;  (** grid spacing (uniform); a symbol or a frozen number *)
  dim : int;
}

let create ?(dx = sym "dx") ~dim () = { dx; dim }

let contains_diff e =
  fold (fun found n -> found || match n with Diff _ -> true | _ -> false) false e

(** Shift every field access and coordinate of [e] by [k] cells along
    [axis].  Inner [Diff] nodes shift transparently (their operand moves). *)
let rec shift_expr scheme e axis k =
  if k = 0 then e
  else
    match e with
    | Num _ | Sym _ | Rand _ -> e
    | Coord d when d = axis -> add [ Coord d; mul [ int_num k; scheme.dx ] ]
    | Coord _ -> e
    | Access a -> access (Fieldspec.shift a axis k)
    | Diff (x, d) -> Diff (shift_expr scheme x axis k, d)
    | Add xs -> add (List.map (fun x -> shift_expr scheme x axis k) xs)
    | Mul xs -> mul (List.map (fun x -> shift_expr scheme x axis k) xs)
    | Pow (b, n) -> pow (shift_expr scheme b axis k) n
    | Fun (f, xs) -> fn f (List.map (fun x -> shift_expr scheme x axis k) xs)
    | Select (c, t, f) ->
      let sc = function
        | Lt (a, b) -> Lt (shift_expr scheme a axis k, shift_expr scheme b axis k)
        | Le (a, b) -> Le (shift_expr scheme a axis k, shift_expr scheme b axis k)
      in
      select (sc c) (shift_expr scheme t axis k) (shift_expr scheme f axis k)

(** Second-order central difference of an already-discretized expression. *)
let central scheme e axis =
  div (sub (shift_expr scheme e axis 1) (shift_expr scheme e axis (-1))) (mul [ num 2.; scheme.dx ])

(** Evaluate [e] at the staggered position half a cell up along [axis]
    (the face between the current cell and its [+axis] neighbour). *)
let rec stag_eval scheme e axis =
  match e with
  | Num _ | Sym _ | Rand _ -> e
  | Coord d when d = axis -> add [ Coord d; mul [ num 0.5; scheme.dx ] ]
  | Coord _ -> e
  | Access a ->
    (* interpolate cell-centered values to the face *)
    mul [ num 0.5; add [ access a; access (Fieldspec.shift a axis 1) ] ]
  | Diff (g, d) when d = axis ->
    (* compact two-point difference across the face *)
    let g = discretize_inner scheme g in
    div (sub (shift_expr scheme g axis 1) g) scheme.dx
  | Diff (g, d) ->
    (* cross derivative: average the central differences of the two cells
       adjacent to the face (paper eq. 11, second line) *)
    let g = discretize_inner scheme g in
    let cd = central scheme g d in
    mul [ num 0.5; add [ cd; shift_expr scheme cd axis 1 ] ]
  | Add xs -> add (List.map (fun x -> stag_eval scheme x axis) xs)
  | Mul xs -> mul (List.map (fun x -> stag_eval scheme x axis) xs)
  | Pow (b, n) -> pow (stag_eval scheme b axis) n
  | Fun (f, xs) -> fn f (List.map (fun x -> stag_eval scheme x axis) xs)
  | Select (c, t, f) ->
    let sc = function
      | Lt (a, b) -> Lt (stag_eval scheme a axis, stag_eval scheme b axis)
      | Le (a, b) -> Le (stag_eval scheme a axis, stag_eval scheme b axis)
    in
    select (sc c) (stag_eval scheme t axis) (stag_eval scheme f axis)

(* Discretize derivatives nested inside a flux (no further divergence level
   is expected below a flux). *)
and discretize_inner scheme e =
  match e with
  | Diff (Diff (g, d'), d) when d' = d ->
    (* same-axis second derivative: compact 3-point stencil.  Central of
       central would reach +-2 cells (and +-3 after the face shift of a
       staggered flux), overrunning the ghost layers and damping the
       highest resolved wavenumber. *)
    let g = discretize_inner scheme g in
    div
      (add [ shift_expr scheme g d 1; mul [ num (-2.); g ]; shift_expr scheme g d (-1) ])
      (mul [ scheme.dx; scheme.dx ])
  | Diff (g, d) -> central scheme (discretize_inner scheme g) d
  | Num _ | Sym _ | Coord _ | Access _ | Rand _ -> e
  | Add xs -> add (List.map (discretize_inner scheme) xs)
  | Mul xs -> mul (List.map (discretize_inner scheme) xs)
  | Pow (b, n) -> pow (discretize_inner scheme b) n
  | Fun (f, xs) -> fn f (List.map (discretize_inner scheme) xs)
  | Select (c, t, f) ->
    let sc = function
      | Lt (a, b) -> Lt (discretize_inner scheme a, discretize_inner scheme b)
      | Le (a, b) -> Le (discretize_inner scheme a, discretize_inner scheme b)
    in
    select (sc c) (discretize_inner scheme t) (discretize_inner scheme f)

(** Flux value at the *lower* face of the current cell along [axis] — the
    value the split kernels store in the staggered temporary field. *)
let flux_at_lower_face scheme flux axis = shift_expr scheme (stag_eval scheme flux axis) axis (-1)

(** Full (single-pass) discretization: every [Diff] node is eliminated.
    Divergences of derivative-bearing fluxes use the staggered scheme with
    fluxes recomputed inline at both faces; everything else becomes central
    differences. *)
let rec discretize scheme e =
  match e with
  | Diff (flux, d) when contains_diff flux ->
    let upper = stag_eval scheme flux d in
    let lower = shift_expr scheme upper d (-1) in
    div (sub upper lower) scheme.dx
  | Diff (g, d) -> central scheme (discretize scheme g) d
  | Num _ | Sym _ | Coord _ | Access _ | Rand _ -> e
  | Add xs -> add (List.map (discretize scheme) xs)
  | Mul xs -> mul (List.map (discretize scheme) xs)
  | Pow (b, n) -> pow (discretize scheme b) n
  | Fun (f, xs) -> fn f (List.map (discretize scheme) xs)
  | Select (c, t, f) ->
    let sc = function
      | Lt (a, b) -> Lt (discretize scheme a, discretize scheme b)
      | Le (a, b) -> Le (discretize scheme a, discretize scheme b)
    in
    select (sc c) (discretize scheme t) (discretize scheme f)

(** Registry of staggered flux slots used by the split kernel variants.

    Several PDEs of one kernel share flux terms (the Lagrange multiplier of
    the Allen–Cahn system repeats every phase's divergence), so staggered
    components are allocated through a registry that dedupes structurally
    identical (flux, axis) pairs. *)
type stag_registry = {
  stag : Fieldspec.t;
  table : (Expr.t * int, Fieldspec.access) Hashtbl.t;
  mutable assignments : Field.Assignment.t list;  (* reversed *)
  next : int array;  (** next free component, per axis *)
}

let make_registry stag =
  {
    stag;
    table = Hashtbl.create 16;
    assignments = [];
    next = Array.make stag.Fieldspec.dim 0;
  }

let registry_kernel_body r = List.rev r.assignments

let is_divergence = function Diff (f, _) -> contains_diff f | _ -> false

let contains_divergence e = fold (fun found n -> found || is_divergence n) false e

(** Split discretization of one PDE right-hand side.

    Top-level divergence terms are rewritten to read the registry's
    staggered temporary field: the main expression becomes
    [(stag@upper_face − stag@lower_face) / dx], and the flux evaluation at
    the lower cell face is recorded as a staggered kernel assignment.
    Everything else is discretized as in the full variant. *)
let discretize_split scheme ~(registry : stag_registry) e =
  let slot flux d =
    match Hashtbl.find_opt registry.table (flux, d) with
    | Some acc -> acc
    | None ->
      let comp = registry.next.(d) in
      if comp >= registry.stag.Fieldspec.components then
        invalid_arg "Discretize.discretize_split: staggered field has too few components";
      registry.next.(d) <- comp + 1;
      let zero_off = Array.make scheme.dim 0 in
      let lower = Fieldspec.staggered_access ~component:comp registry.stag zero_off ~axis:d in
      registry.assignments <-
        Field.Assignment.store lower (flux_at_lower_face scheme flux d) :: registry.assignments;
      Hashtbl.add registry.table (flux, d) lower;
      lower
  in
  let rec go e =
    match e with
    | Diff (flux, d) when contains_diff flux ->
      let lower = slot flux d in
      let upper = Fieldspec.shift lower d 1 in
      div (sub (access upper) (access lower)) scheme.dx
    | e when not (contains_divergence e) -> discretize scheme e
    | Add xs -> add (List.map go xs)
    | Mul xs -> mul (List.map go xs)
    | Pow (b, n) -> pow (go b) n
    | Fun (f, xs) -> fn f (List.map go xs)
    | Select (c, t, f) ->
      let sc = function
        | Lt (a, b) -> Lt (go a, go b)
        | Le (a, b) -> Le (go a, go b)
      in
      select (sc c) (go t) (go f)
    | Diff (g, d) -> central scheme (go g) d
    | (Num _ | Sym _ | Coord _ | Access _ | Rand _) as e -> e
  in
  go e

(** Explicit Euler time stepping: [dst = src + dt * rhs]. *)
let explicit_euler ~dt ~src ~dst rhs =
  Field.Assignment.store dst (add [ access src; mul [ dt; rhs ] ])

(** Cells touched by an assignment list, per axis, as (min, max) offsets —
    determines the required ghost layers. *)
let extent assignments =
  let accs = Field.Assignment.loads assignments in
  match accs with
  | [] -> [||]
  | first :: _ ->
    let dim = Array.length first.Fieldspec.offsets in
    let lo = Array.make dim 0 and hi = Array.make dim 0 in
    List.iter
      (fun (a : Fieldspec.access) ->
        Array.iteri
          (fun d o ->
            if o < lo.(d) then lo.(d) <- o;
            if o > hi.(d) then hi.(d) <- o)
          a.offsets)
      accs;
    Array.init dim (fun d -> (lo.(d), hi.(d)))
