(* Distributed-memory substrate: message passing, ghost pack/unpack,
   forest-vs-single-block equivalence, and the network/scaling models. *)

open Symbolic

let f2 = Fieldspec.scalar ~dim:2 "f"

let test_mpisim_fifo () =
  let c = Blocks.Mpisim.create 2 in
  Blocks.Mpisim.send c ~src:0 ~dst:1 ~tag:7 [| 1.; 2. |];
  Blocks.Mpisim.send c ~src:0 ~dst:1 ~tag:7 [| 3. |];
  Alcotest.(check (array (float 0.))) "fifo 1" [| 1.; 2. |]
    (Blocks.Mpisim.recv c ~src:0 ~dst:1 ~tag:7);
  Alcotest.(check (array (float 0.))) "fifo 2" [| 3. |]
    (Blocks.Mpisim.recv c ~src:0 ~dst:1 ~tag:7);
  Alcotest.(check bool) "quiescent" true (Blocks.Mpisim.quiescent c);
  Alcotest.check_raises "empty queue raises"
    (Blocks.Mpisim.No_message (1, 0, 0))
    (fun () -> ignore (Blocks.Mpisim.recv c ~src:1 ~dst:0 ~tag:0))

let test_mpisim_accounting () =
  let c = Blocks.Mpisim.create 2 in
  Blocks.Mpisim.send c ~src:0 ~dst:1 ~tag:0 (Array.make 10 0.);
  Alcotest.(check int) "bytes counted" 80 c.Blocks.Mpisim.bytes_sent;
  Alcotest.(check int) "messages counted" 1 c.Blocks.Mpisim.messages_sent

(* No_message must carry the exact (src, dst, tag) key in both failure
   modes: a queue that was never created (wrong tag) and one that exists
   but has been drained. *)
let test_mpisim_no_message_key () =
  let c = Blocks.Mpisim.create 3 in
  Blocks.Mpisim.send c ~src:0 ~dst:2 ~tag:5 [| 1. |];
  Alcotest.check_raises "wrong tag"
    (Blocks.Mpisim.No_message (0, 2, 9))
    (fun () -> ignore (Blocks.Mpisim.recv c ~src:0 ~dst:2 ~tag:9));
  ignore (Blocks.Mpisim.recv c ~src:0 ~dst:2 ~tag:5);
  Alcotest.check_raises "drained queue"
    (Blocks.Mpisim.No_message (0, 2, 5))
    (fun () -> ignore (Blocks.Mpisim.recv c ~src:0 ~dst:2 ~tag:5))

(* The counters must match the hand-computed ghost volume of one full
   exchange.  Curvature φ has 2 components; with ghost width 2 and 8x8
   blocks a slab spans 2 comps x 2 ghost cells x 12 padded cells = 48
   elements = 384 bytes.  A 2x2 periodic grid posts 2 sides x 4 ranks per
   axis over 2 axes = 16 messages, 16 x 384 = 6144 bytes. *)
let test_exchange_accounting () =
  let g = Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()) in
  let forest = Blocks.Forest.create ~grid:[| 2; 2 |] ~block_dims:[| 8; 8 |] g in
  let comm = forest.Blocks.Forest.comm in
  Alcotest.(check int) "no traffic before exchange" 0 comm.Blocks.Mpisim.messages_sent;
  Blocks.Forest.exchange forest g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src;
  Alcotest.(check int) "messages per exchange" 16 comm.Blocks.Mpisim.messages_sent;
  Alcotest.(check int) "bytes per exchange" 6144 comm.Blocks.Mpisim.bytes_sent;
  Alcotest.(check bool) "all consumed" true (Blocks.Mpisim.quiescent comm)

let test_ghost_roundtrip () =
  (* packing a high slab of one buffer into the low ghosts of another is the
     core of the exchange; verify content placement *)
  let a = Vm.Buffer.create ~ghost:2 f2 [| 4; 4 |] in
  let b = Vm.Buffer.create ~ghost:2 f2 [| 4; 4 |] in
  Vm.Buffer.init a (fun c _ -> float_of_int ((10 * c.(0)) + c.(1)));
  let slab = Blocks.Ghost.pack a ~axis:0 ~side:Blocks.Ghost.High in
  Blocks.Ghost.unpack b ~axis:0 ~side:Blocks.Ghost.Low slab;
  (* b's low ghost column -1 now holds a's interior column 3 *)
  Alcotest.(check (float 0.)) "ghost content" 31.
    b.Vm.Buffer.data.(Vm.Buffer.base_index b [| -1; 1 |]);
  Alcotest.(check (float 0.)) "ghost width 2" 21.
    b.Vm.Buffer.data.(Vm.Buffer.base_index b [| -2; 1 |])

let test_exchange_bytes_positive () =
  let a = Vm.Buffer.create ~ghost:2 f2 [| 8; 8 |] in
  Alcotest.(check bool) "ghost volume positive" true (Blocks.Ghost.exchange_bytes a > 0)

(* --------------- nonblocking surface ------------------------------- *)

let test_isend_irecv_wait () =
  let c = Blocks.Mpisim.create 2 in
  let s = Blocks.Mpisim.isend c ~src:0 ~dst:1 ~tag:3 [| 1.; 2. |] in
  Alcotest.(check bool) "isend completes at post time" true (Blocks.Mpisim.test c s);
  ignore (Blocks.Mpisim.isend c ~src:0 ~dst:1 ~tag:3 [| 9. |]);
  let r1 = Blocks.Mpisim.irecv c ~src:0 ~dst:1 ~tag:3 in
  let r2 = Blocks.Mpisim.irecv c ~src:0 ~dst:1 ~tag:3 in
  Alcotest.check_raises "payload before completion rejected"
    (Invalid_argument "Mpisim.payload: request not complete") (fun () ->
      ignore (Blocks.Mpisim.payload r1));
  (* waits complete in posting order: per-channel sequence numbers are the
     same ones the blocking surface would assign *)
  (match Blocks.Mpisim.wait c r1 with
  | `Done 0 -> ()
  | _ -> Alcotest.fail "first wait should complete without retries");
  Alcotest.(check (array (float 0.))) "fifo payload 1" [| 1.; 2. |]
    (Blocks.Mpisim.payload r1);
  Alcotest.(check bool) "second arrives by polling" true (Blocks.Mpisim.test c r2);
  Alcotest.(check (array (float 0.))) "fifo payload 2" [| 9. |]
    (Blocks.Mpisim.payload r2);
  Alcotest.(check bool) "wait after test is a no-op" true
    (Blocks.Mpisim.wait c r2 = `Done 0);
  Alcotest.(check bool) "drained channels are quiescent" true (Blocks.Mpisim.quiescent c)

(* A posted-but-never-received message must trip the end-of-step
   quiescence invariant — overlap mode may not leak in-flight messages
   past finalize. *)
let test_isend_unreceived_unquiescent () =
  let c = Blocks.Mpisim.create 2 in
  Blocks.Mpisim.begin_step c ~step:0;
  ignore (Blocks.Mpisim.isend c ~src:0 ~dst:1 ~tag:0 [| 4. |]);
  Alcotest.(check bool) "not quiescent while in flight" false (Blocks.Mpisim.quiescent c);
  Alcotest.check_raises "finalize rejects in-flight messages"
    (Blocks.Mpisim.Unquiescent [ (0, 1, 0, 1) ]) (fun () -> Blocks.Mpisim.finalize c);
  let r = Blocks.Mpisim.irecv c ~src:0 ~dst:1 ~tag:0 in
  (match Blocks.Mpisim.wait c r with
  | `Done _ -> ()
  | _ -> Alcotest.fail "wait should drain the channel");
  Blocks.Mpisim.finalize c

(* wait's healing loop: under a lossy/delaying/duplicating plan the
   payloads still arrive exactly once, in order, mid-overlap. *)
let test_wait_heals_faults () =
  let c = Blocks.Mpisim.create 2 in
  Blocks.Mpisim.set_fault_plan c
    (Some
       {
         Blocks.Faultplan.seed = 11;
         drop = 0.4;
         delay = 0.3;
         duplicate = 0.3;
         max_delay = 3;
         crash = None;
       });
  Blocks.Mpisim.begin_step c ~step:1;
  for i = 1 to 6 do
    ignore (Blocks.Mpisim.isend c ~src:0 ~dst:1 ~tag:0 [| float_of_int i |])
  done;
  let reqs = List.init 6 (fun _ -> Blocks.Mpisim.irecv c ~src:0 ~dst:1 ~tag:0) in
  List.iteri
    (fun i r ->
      match Blocks.Mpisim.wait c r with
      | `Done _ ->
        Alcotest.(check (array (float 0.)))
          (Printf.sprintf "payload %d exactly once, in order" (i + 1))
          [| float_of_int (i + 1) |]
          (Blocks.Mpisim.payload r)
      | `Crashed _ | `Lost _ -> Alcotest.fail "healing should recover every message")
    reqs;
  Blocks.Mpisim.finalize c

(* wait surfaces a dead sender as `Crashed, the signal the recovery driver
   turns into a rollback. *)
let test_wait_reports_crash () =
  let c = Blocks.Mpisim.create 2 in
  Blocks.Mpisim.set_fault_plan c
    (Some
       {
         Blocks.Faultplan.seed = 1;
         drop = 0.;
         delay = 0.;
         duplicate = 0.;
         max_delay = 3;
         crash = Some (0, 1);
       });
  Blocks.Mpisim.begin_step c ~step:1;
  let r = Blocks.Mpisim.irecv c ~src:0 ~dst:1 ~tag:0 in
  match Blocks.Mpisim.wait c ~max_retries:3 r with
  | `Crashed 0 -> ()
  | `Crashed r -> Alcotest.failf "wrong crashed rank %d" r
  | `Done _ | `Lost _ -> Alcotest.fail "dead sender must surface as `Crashed"

(* --------------- overlapped forest --------------------------------- *)

(* Overlapped exchange over a fault plan vs. clean sequential exchange:
   the scheduling transformation plus in-place healing must be invisible
   bitwise.  (Oracle 10 covers the random space; this pins one
   deterministic configuration into tier 1.) *)
let test_overlapped_forest_bitwise () =
  let g = Pfcore.Genkernels.generate (Pfcore.Params.p1 ()) in
  let run ~overlap ~faults =
    let forest =
      Blocks.Forest.create ~overlap ~grid:[| 1; 1; 2 |] ~block_dims:[| 6; 6; 6 |] g
    in
    Array.iter Pfcore.Simulation.init_lamellae forest.Blocks.Forest.sims;
    Blocks.Forest.prime forest;
    if faults then
      Blocks.Mpisim.set_fault_plan forest.Blocks.Forest.comm
        (Some
           {
             Blocks.Faultplan.seed = 5;
             drop = 0.2;
             delay = 0.2;
             duplicate = 0.1;
             max_delay = 3;
             crash = None;
           });
    Blocks.Forest.run forest ~steps:2;
    forest
  in
  let seq = run ~overlap:false ~faults:false in
  let ovl = run ~overlap:true ~faults:true in
  let fields = g.Pfcore.Genkernels.fields in
  List.iter
    (fun (f : Fieldspec.t) ->
      for z = 0 to 11 do
        for y = 0 to 5 do
          for x = 0 to 5 do
            for comp = 0 to f.Fieldspec.components - 1 do
              let a = Blocks.Forest.get seq f ~component:comp [| x; y; z |] in
              let b = Blocks.Forest.get ovl f ~component:comp [| x; y; z |] in
              if Int64.bits_of_float a <> Int64.bits_of_float b then
                Alcotest.failf "mismatch at %s (%d,%d,%d) comp %d: %h vs %h"
                  f.Fieldspec.name x y z comp a b
            done
          done
        done
      done)
    [ fields.Pfcore.Model.phi_src; fields.Pfcore.Model.mu_src ];
  let comm = ovl.Blocks.Forest.comm in
  Alcotest.(check bool) "fault plan actually fired" true
    (comm.Blocks.Mpisim.dropped + comm.Blocks.Mpisim.delayed_count
     + comm.Blocks.Mpisim.duplicated
    > 0)

let forest_matches_single variant =
  let g = Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()) in
  let single = Pfcore.Timestep.create ~variant_phi:variant ~dims:[| 16; 16 |] g in
  Pfcore.Simulation.init_sphere single;
  Pfcore.Timestep.run single ~steps:4;
  let forest =
    Blocks.Forest.create ~variant_phi:variant ~grid:[| 2; 2 |] ~block_dims:[| 8; 8 |] g
  in
  Array.iter Pfcore.Simulation.init_sphere forest.Blocks.Forest.sims;
  Blocks.Forest.prime forest;
  Blocks.Forest.run forest ~steps:4;
  let sbuf = Pfcore.Simulation.phi_buffer single in
  let max_diff = ref 0. in
  for x = 0 to 15 do
    for y = 0 to 15 do
      for c = 0 to 1 do
        let a = Vm.Buffer.get sbuf ~component:c [| x; y |] in
        let b =
          Blocks.Forest.get forest g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src ~component:c
            [| x; y |]
        in
        let d = abs_float (a -. b) in
        if d > !max_diff then max_diff := d
      done
    done
  done;
  !max_diff

let test_forest_equals_single_full () =
  Alcotest.(check (float 0.)) "bit-exact, full variant" 0.
    (forest_matches_single Pfcore.Timestep.Full)

let test_forest_equals_single_split () =
  Alcotest.(check (float 0.)) "bit-exact, split variant" 0.
    (forest_matches_single Pfcore.Timestep.Split)

let test_forest_3d_p1 () =
  (* the full P1 model across a 2-rank decomposition along z *)
  let g = Pfcore.Genkernels.generate (Pfcore.Params.p1 ()) in
  let single = Pfcore.Timestep.create ~dims:[| 8; 8; 16 |] g in
  Pfcore.Simulation.init_lamellae single;
  Pfcore.Timestep.run single ~steps:2;
  let forest = Blocks.Forest.create ~grid:[| 1; 1; 2 |] ~block_dims:[| 8; 8; 8 |] g in
  Array.iter Pfcore.Simulation.init_lamellae forest.Blocks.Forest.sims;
  Blocks.Forest.prime forest;
  Blocks.Forest.run forest ~steps:2;
  let fr_single = Pfcore.Simulation.phase_fractions single in
  let fr_forest = Blocks.Forest.phase_fractions forest in
  Array.iteri
    (fun i a -> Alcotest.(check (float 1e-12)) (Printf.sprintf "fraction %d" i) a fr_forest.(i))
    fr_single

let test_neighbor_wraps () =
  let g = Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()) in
  let forest = Blocks.Forest.create ~grid:[| 3; 1 |] ~block_dims:[| 4; 4 |] g in
  Alcotest.(check int) "periodic low wrap" 2 (Blocks.Forest.neighbor forest 0 ~axis:0 ~dir:(-1));
  Alcotest.(check int) "periodic high wrap" 0 (Blocks.Forest.neighbor forest 2 ~axis:0 ~dir:1)

(* --------------- network and scaling models ------------------------ *)

let test_netmodel_monotone () =
  let net = Blocks.Netmodel.supermuc_ng in
  let t1 = Blocks.Netmodel.exchange_time_s net ~bytes:1e5 ~neighbors:6 ~ranks:64 in
  let t2 = Blocks.Netmodel.exchange_time_s net ~bytes:1e6 ~neighbors:6 ~ranks:64 in
  let t3 = Blocks.Netmodel.exchange_time_s net ~bytes:1e5 ~neighbors:6 ~ranks:100000 in
  Alcotest.(check bool) "more bytes, more time" true (t2 > t1);
  Alcotest.(check bool) "more hops, more latency" true (t3 > t1)

let test_weak_scaling_flat () =
  (* weak scaling must stay near-flat (paper Fig. 3 left) *)
  let cfg =
    {
      Blocks.Scaling.net = Blocks.Netmodel.supermuc_ng;
      mlups_per_pe = 6.;
      fields_bytes_per_cell = 96;
      ghost_width = 1;
      overlap = true;
    }
  in
  let at ranks = Blocks.Scaling.weak cfg ~block_dims:[| 60; 60; 60 |] ~ranks in
  let p16 = at 16 and p300k = at 300000 in
  Alcotest.(check bool) "near-perfect weak scaling" true (p300k > 0.9 *. p16);
  Alcotest.(check bool) "bounded by node rate" true (p16 <= 6.)

let test_strong_scaling_degrades () =
  let cfg =
    {
      Blocks.Scaling.net = Blocks.Netmodel.supermuc_ng;
      mlups_per_pe = 6.;
      fields_bytes_per_cell = 96;
      ghost_width = 1;
      overlap = true;
    }
  in
  let eff ranks = fst (Blocks.Scaling.strong cfg ~global_dims:[| 512; 256; 256 |] ~ranks) in
  let steps ranks = snd (Blocks.Scaling.strong cfg ~global_dims:[| 512; 256; 256 |] ~ranks) in
  Alcotest.(check bool) "per-PE efficiency drops with tiny blocks" true (eff 150000 < eff 48);
  Alcotest.(check bool) "but time-steps/s still improves" true (steps 150000 > steps 48)

let test_gpucomm_table2_ordering () =
  (* Table 2: each optimization helps; combined is best *)
  let c =
    Blocks.Gpucomm.costs Gpumodel.Device.p100 Blocks.Netmodel.piz_daint
      ~block_dims:[| 400; 400; 400 |] ~bytes_per_cell:152 ~flops_per_cell:3000 ~ranks:128
  in
  let rate o = Blocks.Gpucomm.mlups_per_gpu c o ~block_dims:[| 400; 400; 400 |] in
  let base = rate { Blocks.Gpucomm.overlap = false; gpudirect = false } in
  let gd = rate { Blocks.Gpucomm.overlap = false; gpudirect = true } in
  let ov = rate { Blocks.Gpucomm.overlap = true; gpudirect = false } in
  let both = rate { Blocks.Gpucomm.overlap = true; gpudirect = true } in
  Alcotest.(check bool) "gpudirect > baseline" true (gd > base);
  Alcotest.(check bool) "overlap > gpudirect alone" true (ov > gd);
  Alcotest.(check bool) "combined is best" true (both > ov);
  Alcotest.(check bool) "within ~2x of paper's 395-440 MLUP/s" true
    (base > 150. && both < 1200.)

let suite =
  [
    Alcotest.test_case "mpisim fifo semantics" `Quick test_mpisim_fifo;
    Alcotest.test_case "mpisim accounting" `Quick test_mpisim_accounting;
    Alcotest.test_case "mpisim No_message key" `Quick test_mpisim_no_message_key;
    Alcotest.test_case "exchange message/byte accounting" `Quick test_exchange_accounting;
    Alcotest.test_case "ghost pack/unpack" `Quick test_ghost_roundtrip;
    Alcotest.test_case "ghost volume" `Quick test_exchange_bytes_positive;
    Alcotest.test_case "mpisim isend/irecv/wait" `Quick test_isend_irecv_wait;
    Alcotest.test_case "mpisim in-flight message trips quiescence" `Quick
      test_isend_unreceived_unquiescent;
    Alcotest.test_case "mpisim wait heals drop/delay/duplicate" `Quick
      test_wait_heals_faults;
    Alcotest.test_case "mpisim wait reports dead sender" `Quick test_wait_reports_crash;
    Alcotest.test_case "overlapped forest == sequential (faulty, bitwise)" `Slow
      test_overlapped_forest_bitwise;
    Alcotest.test_case "forest == single (full)" `Slow test_forest_equals_single_full;
    Alcotest.test_case "forest == single (split)" `Slow test_forest_equals_single_split;
    Alcotest.test_case "forest 3D P1" `Slow test_forest_3d_p1;
    Alcotest.test_case "periodic neighbor wrap" `Quick test_neighbor_wraps;
    Alcotest.test_case "network model monotone" `Quick test_netmodel_monotone;
    Alcotest.test_case "weak scaling flat" `Quick test_weak_scaling_flat;
    Alcotest.test_case "strong scaling shape" `Quick test_strong_scaling_degrades;
    Alcotest.test_case "Table-2 ordering" `Quick test_gpucomm_table2_ordering;
  ]

(* --------------- Morton curve & load balancing --------------------- *)

let test_morton_locality () =
  (* what matters for communication volume is the compactness of the
     per-rank chunks: cutting the Morton curve into 8 chunks of 8 blocks
     yields 4x2 boxes (half-perimeter 6) where row-major yields 8x1 strips
     (half-perimeter 9) *)
  let grid = [| 8; 8 |] in
  let chunk_perimeter blocks =
    let rec chunks acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | b :: rest ->
        if n = 8 then chunks (List.rev cur :: acc) [ b ] 1 rest
        else chunks acc (b :: cur) (n + 1) rest
    in
    let per chunk =
      let xs = List.map (fun b -> Array.get b 0) chunk and ys = List.map (fun b -> Array.get b 1) chunk in
      let span l = List.fold_left max min_int l - List.fold_left min max_int l + 1 in
      span xs + span ys
    in
    List.fold_left (fun acc c -> acc + per c) 0 (chunks [] [] 0 blocks)
  in
  let curve = Blocks.Morton.curve grid in
  Alcotest.(check int) "covers all blocks" 64 (List.length curve);
  let row_major =
    List.concat_map (fun y -> List.init 8 (fun x -> [| x; y |])) (List.init 8 Fun.id)
  in
  Alcotest.(check bool) "morton chunks more compact than row-major strips" true
    (chunk_perimeter curve < chunk_perimeter row_major);
  Alcotest.(check int) "no duplicates" 64
    (List.length (List.sort_uniq compare (List.map Array.to_list curve)))

let test_morton_key_order () =
  Alcotest.(check bool) "first quadrant first" true
    (Blocks.Morton.key [| 0; 0 |] < Blocks.Morton.key [| 1; 1 |]);
  Alcotest.(check bool) "3D keys distinct" true
    (Blocks.Morton.key [| 1; 2; 3 |] <> Blocks.Morton.key [| 3; 2; 1 |])

let test_balance_uniform () =
  let blocks = Blocks.Morton.curve [| 4; 4 |] in
  let assignment, load = Blocks.Morton.balance ~n_ranks:4 ~weights:(fun _ -> 1.) blocks in
  Alcotest.(check int) "all blocks assigned" 16 (List.length assignment);
  Alcotest.(check (float 1e-9)) "perfect balance" 1. (Blocks.Morton.imbalance load);
  (* each rank owns a contiguous chunk of the curve *)
  let ranks = List.map snd assignment in
  Alcotest.(check bool) "ranks nondecreasing along curve" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 15) ranks) (List.tl ranks))

let test_balance_weighted () =
  (* one heavy block: the balancer must not overload its rank further *)
  let blocks = Blocks.Morton.curve [| 4; 4 |] in
  let heavy = List.hd blocks in
  let weights b = if b == heavy then 8. else 1. in
  let _, load = Blocks.Morton.balance ~n_ranks:4 ~weights blocks in
  Alcotest.(check bool)
    (Printf.sprintf "imbalance %.2f below naive 1.83" (Blocks.Morton.imbalance load))
    true
    (Blocks.Morton.imbalance load < 1.83)

let suite =
  suite
  @ [
      Alcotest.test_case "morton curve locality" `Quick test_morton_locality;
      Alcotest.test_case "morton key order" `Quick test_morton_key_order;
      Alcotest.test_case "uniform load balance" `Quick test_balance_uniform;
      Alcotest.test_case "weighted load balance" `Quick test_balance_weighted;
    ]
