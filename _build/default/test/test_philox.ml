(* Philox-4x32-10: known-answer vectors from the Random123 distribution,
   determinism and crude uniformity of the derived doubles. *)

let kat expect ~c ~k () =
  let w = Philox.random_ints ~c0:c.(0) ~c1:c.(1) ~c2:c.(2) ~c3:c.(3) ~k0:k.(0) ~k1:k.(1) in
  Array.iteri
    (fun i e -> Alcotest.(check int) (Printf.sprintf "word %d" i) e w.(i))
    expect

let test_kat_zero =
  kat
    [| 0x6627e8d5; 0xe169c58d; 0xbc57ac4c; 0x9b00dbd8 |]
    ~c:[| 0; 0; 0; 0 |] ~k:[| 0; 0 |]

let test_kat_ones =
  let f = 0xffffffff in
  kat
    [| 0x408f276d; 0x41c83b0e; 0xa20bc7c6; 0x6d5451fd |]
    ~c:[| f; f; f; f |] ~k:[| f; f |]

let test_kat_pi =
  kat
    [| 0xd16cfe09; 0x94fdcceb; 0x5001e420; 0x24126ea1 |]
    ~c:[| 0x243f6a88; 0x85a308d3; 0x13198a2e; 0x03707344 |]
    ~k:[| 0xa4093822; 0x299f31d0 |]

let test_determinism () =
  let a = Philox.symmetric ~cell:123456789 ~step:42 ~slot:1 in
  let b = Philox.symmetric ~cell:123456789 ~step:42 ~slot:1 in
  Alcotest.(check (float 0.)) "stateless & reproducible" a b

let test_distinct_streams () =
  let a = Philox.symmetric ~cell:1 ~step:1 ~slot:0 in
  let b = Philox.symmetric ~cell:2 ~step:1 ~slot:0 in
  let c = Philox.symmetric ~cell:1 ~step:2 ~slot:0 in
  Alcotest.(check bool) "cells decorrelated" true (a <> b);
  Alcotest.(check bool) "steps decorrelated" true (a <> c)

let test_range_and_moments () =
  let n = 20000 in
  let sum = ref 0. and sum2 = ref 0. in
  for i = 0 to n - 1 do
    let v = Philox.symmetric ~cell:i ~step:7 ~slot:0 in
    Alcotest.(check bool) "in (-1,1)" true (v >= -1. && v < 1.);
    sum := !sum +. v;
    sum2 := !sum2 +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (abs_float mean < 0.02);
  (* uniform(-1,1) variance = 1/3 *)
  Alcotest.(check bool) "variance ~ 1/3" true (abs_float (var -. (1. /. 3.)) < 0.02)

let test_unit_floats () =
  for i = 0 to 1000 do
    let u, v = Philox.random_floats ~c0:i ~c1:0 ~c2:0 ~c3:0 ~k0:1 ~k1:2 in
    Alcotest.(check bool) "u in [0,1)" true (u >= 0. && u < 1.);
    Alcotest.(check bool) "v in [0,1)" true (v >= 0. && v < 1.)
  done

(* Expr.Rand is keyed on (global cell, step, slot), so the stream a cell
   sees must not depend on how the sweep is scheduled: a VM run with one
   domain and one with several must produce bitwise-identical noise.  This
   is the single-process analogue of the paper's requirement that thermal
   noise be reproducible across MPI decompositions. *)
let test_rand_stream_scheduling_invariant () =
  let open Symbolic in
  let src = Fieldspec.scalar ~dim:2 "s" and dst = Fieldspec.scalar ~dim:2 "d" in
  let body =
    [
      Field.Assignment.store (Fieldspec.center dst)
        (Expr.add
           [ Expr.rand 0; Expr.mul [ Expr.rand 1; Expr.field src ] ]);
    ]
  in
  let k = Ir.Kernel.make ~name:"noise" ~dim:2 body in
  let dims = [| 9; 7 |] in
  let run ~num_domains ~step =
    let block = Vm.Engine.make_block ~ghost:1 ~dims [ src; dst ] in
    let sbuf = Vm.Engine.buffer block src in
    Array.iteri (fun i _ -> sbuf.Vm.Buffer.data.(i) <- 0.5) sbuf.Vm.Buffer.data;
    Vm.Engine.run ~num_domains ~step ~params:[] (Vm.Engine.bind k block);
    let dbuf = Vm.Engine.buffer block dst in
    let out = ref [] in
    for x = 0 to dims.(0) - 1 do
      for y = 0 to dims.(1) - 1 do
        out := Int64.bits_of_float (Vm.Buffer.get dbuf [| x; y |]) :: !out
      done
    done;
    !out
  in
  let serial = run ~num_domains:1 ~step:3 in
  let parallel = run ~num_domains:4 ~step:3 in
  Alcotest.(check (list int64)) "serial == 4 domains (bitwise)" serial parallel;
  (* and the stream must advance with the step index *)
  Alcotest.(check bool) "step decorrelates" true (serial <> run ~num_domains:1 ~step:4)

let prop_bump_changes_output =
  QCheck.Test.make ~name:"key bump changes output" ~count:200 QCheck.(pair small_nat small_nat)
    (fun (c, k) ->
      Philox.random_ints ~c0:c ~c1:0 ~c2:0 ~c3:0 ~k0:k ~k1:0
      <> Philox.random_ints ~c0:c ~c1:0 ~c2:0 ~c3:0 ~k0:(k + 1) ~k1:0)

let suite =
  [
    Alcotest.test_case "KAT zero" `Quick test_kat_zero;
    Alcotest.test_case "KAT ones" `Quick test_kat_ones;
    Alcotest.test_case "KAT pi digits" `Quick test_kat_pi;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "distinct streams" `Quick test_distinct_streams;
    Alcotest.test_case "range and moments" `Quick test_range_and_moments;
    Alcotest.test_case "unit floats" `Quick test_unit_floats;
    Alcotest.test_case "rand stream scheduling-invariant" `Quick
      test_rand_stream_scheduling_invariant;
    QCheck_alcotest.to_alcotest prop_bump_changes_output;
  ]
