test/test_check.ml: Alcotest Check Eval Expr Field Fieldspec Float Ir List QCheck QCheck_alcotest Random Symbolic Vm
