test/test_backend.ml: Alcotest Array Astring Backend Expr Field Fieldspec Filename Fun Golden Ir Lazy List Option Pfcore Printf String Symbolic Sys Unix Vm
