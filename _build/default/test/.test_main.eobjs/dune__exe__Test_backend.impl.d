test/test_backend.ml: Alcotest Array Astring Backend Expr Field Fieldspec Filename Fun Ir Lazy List Option Pfcore Printf String Symbolic Sys Unix Vm
