test/golden.ml: Alcotest Filename Format List String Sys
