test/test_serve.ml: Alcotest Array List Mempool Pfcore Queue Resilience Scheduler Serve Vm Workload
