test/test_fd.ml: Alcotest Array Eval Expr Fd Fieldspec Float List QCheck QCheck_alcotest Symbolic
