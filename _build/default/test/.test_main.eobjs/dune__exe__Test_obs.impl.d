test/test_obs.ml: Alcotest Array Astring Blocks Check Fun Golden Lazy List Obs Option Pfcore QCheck_alcotest
