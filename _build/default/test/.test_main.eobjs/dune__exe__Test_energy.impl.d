test/test_energy.ml: Alcotest Array Energy Eval Expr Fieldspec Float List Simplify Symbolic
