test/test_jit.ml: Alcotest Array Check Expr Field Fieldspec Float Fun Golden Int64 Ir Lazy List Obs Option Pfcore Symbolic Sys Unix Vm
