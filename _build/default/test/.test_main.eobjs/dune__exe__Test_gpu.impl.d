test/test_gpu.ml: Alcotest Assignment Expr Field Fieldspec Gpumodel Ir List Option Pfcore Printf Symbolic
