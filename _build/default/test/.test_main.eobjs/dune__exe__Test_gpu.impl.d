test/test_gpu.ml: Alcotest Assignment Backend Expr Field Fieldspec Golden Gpumodel Ir Lazy List Option Pfcore Printf Symbolic
