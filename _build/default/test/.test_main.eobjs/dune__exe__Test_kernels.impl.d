test/test_kernels.ml: Alcotest Array Backend Field Filename Fun Ir Lazy List Option Pfcore Sys Vm
