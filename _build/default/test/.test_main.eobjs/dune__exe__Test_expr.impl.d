test/test_expr.ml: Alcotest Array Eval Expr Fieldspec Float QCheck QCheck_alcotest Simplify String Symbolic
