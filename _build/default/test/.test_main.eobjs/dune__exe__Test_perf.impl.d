test/test_perf.ml: Alcotest Lazy List Option Perfmodel Pfcore Printf
