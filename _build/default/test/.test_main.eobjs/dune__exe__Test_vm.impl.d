test/test_vm.ml: Alcotest Array Expr Field Fieldspec Ir List Printf Symbolic Vm
