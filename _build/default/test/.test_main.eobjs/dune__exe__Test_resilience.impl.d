test/test_resilience.ml: Alcotest Array Blocks Bytes Char Filename Fun Lazy List Pfcore Printexc Printf Resilience String Sys
