test/test_philox.ml: Alcotest Array Expr Field Fieldspec Int64 Ir Philox Printf QCheck QCheck_alcotest Symbolic Vm
