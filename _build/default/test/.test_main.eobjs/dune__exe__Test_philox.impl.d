test/test_philox.ml: Alcotest Array Philox Printf QCheck QCheck_alcotest
