test/test_pool.ml: Alcotest Array Atomic Check Expr Field Fieldspec Float Fun Hashtbl Int Int64 Ir Lazy List Obs Option Pfcore Symbolic Vm
