test/test_cse.ml: Alcotest Cse Eval Expr Field Fieldspec Float List QCheck QCheck_alcotest String Symbolic Test_expr
