test/test_blocks.ml: Alcotest Array Blocks Fieldspec Fun Gpumodel List Pfcore Printf Symbolic Vm
