test/test_blocks.ml: Alcotest Array Blocks Fieldspec Fun Gpumodel Int64 List Pfcore Printf Symbolic Vm
