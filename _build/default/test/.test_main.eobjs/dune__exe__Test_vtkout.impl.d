test/test_vtkout.ml: Alcotest Filename Fun Golden List Pfcore String Sys
