test/test_main.ml: Alcotest Test_backend Test_blocks Test_check Test_cse Test_energy Test_expr Test_fd Test_gpu Test_kernels Test_obs Test_perf Test_philox Test_resilience Test_vm Test_vtkout
