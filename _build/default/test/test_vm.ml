(* VM substrate: buffer indexing, periodic ghosts, kernel execution against
   hand-computed stencils, hoisting correctness, and Domains parallelism. *)

open Symbolic
open Expr

let f2 = Fieldspec.scalar ~dim:2 "f"
let g2 = Fieldspec.scalar ~dim:2 "g"

let test_buffer_indexing () =
  let buf = Vm.Buffer.create ~ghost:2 f2 [| 4; 3 |] in
  Vm.Buffer.set buf [| 1; 2 |] 7.;
  Alcotest.(check (float 0.)) "set/get roundtrip" 7. (Vm.Buffer.get buf [| 1; 2 |]);
  Alcotest.(check (float 0.)) "other cells untouched" 0. (Vm.Buffer.get buf [| 0; 0 |]);
  let delta = Vm.Buffer.access_delta buf (Fieldspec.access f2 [| 1; -1 |]) in
  let base = Vm.Buffer.base_index buf [| 1; 2 |] in
  Alcotest.(check (float 0.)) "relative access" 7.
    buf.Vm.Buffer.data.(base + Vm.Buffer.access_delta buf (Fieldspec.access f2 [| 0; 0 |]));
  ignore delta

let test_buffer_components () =
  let vf = Fieldspec.create ~dim:2 ~components:3 "v" in
  let buf = Vm.Buffer.create ~ghost:1 vf [| 4; 4 |] in
  Vm.Buffer.set buf ~component:2 [| 1; 1 |] 9.;
  Alcotest.(check (float 0.)) "component slabs disjoint" 0.
    (Vm.Buffer.get buf ~component:1 [| 1; 1 |]);
  Alcotest.(check (float 0.)) "component read" 9. (Vm.Buffer.get buf ~component:2 [| 1; 1 |])

let test_periodic_exchange () =
  let buf = Vm.Buffer.create ~ghost:2 f2 [| 4; 4 |] in
  Vm.Buffer.init buf (fun c _ -> float_of_int ((c.(0) * 10) + c.(1)));
  Vm.Buffer.periodic buf;
  (* low x ghost = high x interior *)
  Alcotest.(check (float 0.)) "x wrap" (Vm.Buffer.get buf [| 3; 1 |])
    buf.Vm.Buffer.data.(Vm.Buffer.base_index buf [| -1; 1 |]);
  (* corner ghost filled by the two-pass exchange *)
  Alcotest.(check (float 0.)) "corner wrap" (Vm.Buffer.get buf [| 3; 3 |])
    buf.Vm.Buffer.data.(Vm.Buffer.base_index buf [| -1; -1 |])

let test_swap () =
  let a = Vm.Buffer.create ~ghost:1 f2 [| 2; 2 |] in
  let b = Vm.Buffer.create ~ghost:1 f2 [| 2; 2 |] in
  Vm.Buffer.fill a 1.;
  Vm.Buffer.fill b 2.;
  Vm.Buffer.swap a b;
  Alcotest.(check (float 0.)) "swapped" 2. (Vm.Buffer.get a [| 0; 0 |])

(* A 5-point average kernel, executed by the engine and checked cell by
   cell against a direct computation. *)
let avg_kernel () =
  let acc d k = access (Fieldspec.shift (Fieldspec.center f2) d k) in
  let rhs =
    mul [ num 0.2; add [ field f2; acc 0 1; acc 0 (-1); acc 1 1; acc 1 (-1) ] ]
  in
  Ir.Kernel.make ~name:"avg" ~dim:2 [ Field.Assignment.store (Fieldspec.center g2) rhs ]

let run_avg ~num_domains =
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 8; 6 |] [ f2; g2 ] in
  let fbuf = Vm.Engine.buffer block f2 in
  Vm.Buffer.init fbuf (fun c _ -> float_of_int ((c.(0) * 3) + (c.(1) * 7)));
  Vm.Buffer.periodic fbuf;
  let bound = Vm.Engine.bind (avg_kernel ()) block in
  Vm.Engine.run ~num_domains ~params:[] bound;
  block

let test_engine_stencil () =
  let block = run_avg ~num_domains:1 in
  let fbuf = Vm.Engine.buffer block f2 and gbuf = Vm.Engine.buffer block g2 in
  let at c = fbuf.Vm.Buffer.data.(Vm.Buffer.base_index fbuf c) in
  for x = 0 to 7 do
    for y = 0 to 5 do
      let expect =
        0.2
        *. (at [| x; y |] +. at [| x + 1; y |] +. at [| x - 1; y |] +. at [| x; y + 1 |]
          +. at [| x; y - 1 |])
      in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "cell %d,%d" x y)
        expect
        (Vm.Buffer.get gbuf [| x; y |])
    done
  done

let test_engine_domains_equal_serial () =
  let b1 = run_avg ~num_domains:1 and b4 = run_avg ~num_domains:4 in
  let g1 = Vm.Engine.buffer b1 g2 and g4 = Vm.Engine.buffer b4 g2 in
  for x = 0 to 7 do
    for y = 0 to 5 do
      Alcotest.(check (float 0.)) "parallel == serial"
        (Vm.Buffer.get g1 [| x; y |])
        (Vm.Buffer.get g4 [| x; y |])
    done
  done

let test_engine_params_and_coords () =
  (* g = alpha * x_coordinate, with dx scaling *)
  let k =
    Ir.Kernel.make ~name:"coords" ~dim:2
      [ Field.Assignment.store (Fieldspec.center g2) (mul [ sym "alpha"; coord 0 ]) ]
  in
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 4; 2 |] [ g2 ] in
  let bound = Vm.Engine.bind k block in
  Vm.Engine.run ~params:[ ("alpha", 2.); ("dx", 0.5) ] bound;
  let gbuf = Vm.Engine.buffer block g2 in
  Alcotest.(check (float 1e-12)) "coord value" (2. *. ((3. +. 0.5) *. 0.5))
    (Vm.Buffer.get gbuf [| 3; 0 |])

let test_engine_rand_determinism () =
  let k =
    Ir.Kernel.make ~name:"noise" ~dim:2
      [ Field.Assignment.store (Fieldspec.center g2) (rand 0) ]
  in
  let run () =
    let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 4; 4 |] [ g2 ] in
    let bound = Vm.Engine.bind k block in
    Vm.Engine.run ~step:3 ~params:[] bound;
    Vm.Buffer.get (Vm.Engine.buffer block g2) [| 2; 1 |]
  in
  Alcotest.(check (float 0.)) "counter-based noise reproducible" (run ()) (run ());
  Alcotest.(check bool) "noise in range" true (abs_float (run ()) < 1.)

let test_engine_hoisting_matches_unhoisted () =
  (* an assignment depending only on the y coordinate is hoisted; the result
     must equal the direct evaluation *)
  let body =
    [
      Field.Assignment.assign_temp "row" (mul [ num 3.; coord 1 ]);
      Field.Assignment.store (Fieldspec.center g2) (add [ sym "row"; coord 0 ]);
    ]
  in
  let k = Ir.Kernel.make ~name:"hoist" ~dim:2 body in
  let lowered = Ir.Lower.run k in
  Alcotest.(check int) "one hoisted assignment" 1 (Ir.Lower.hoisted_count lowered);
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 3; 3 |] [ g2 ] in
  let bound = Vm.Engine.bind k block in
  Vm.Engine.run ~params:[ ("dx", 1.) ] bound;
  let gbuf = Vm.Engine.buffer block g2 in
  Alcotest.(check (float 1e-12)) "hoisted value" ((3. *. 2.5) +. 1.5)
    (Vm.Buffer.get gbuf [| 1; 2 |])

let test_staggered_sweep_extent () =
  let st = Fieldspec.create ~kind:Fieldspec.Staggered ~dim:2 ~components:1 "st" in
  let k =
    Ir.Kernel.make ~iteration:(Ir.Kernel.StaggeredSweep [ 0; 1 ]) ~name:"st" ~dim:2
      [
        Field.Assignment.store
          (Fieldspec.staggered_access st [| 0; 0 |] ~axis:0)
          (num 1.);
      ]
  in
  let block = Vm.Engine.make_block ~ghost:2 ~dims:[| 3; 3 |] [ st ] in
  let bound = Vm.Engine.bind k block in
  Vm.Engine.run ~params:[] bound;
  let buf = Vm.Engine.buffer block st in
  (* the sweep covers one extra layer: cell (3,1) was written *)
  Alcotest.(check (float 0.)) "extended layer written" 1.
    buf.Vm.Buffer.data.(Vm.Buffer.base_index buf [| 3; 1 |])

let suite =
  [
    Alcotest.test_case "buffer indexing" `Quick test_buffer_indexing;
    Alcotest.test_case "buffer components" `Quick test_buffer_components;
    Alcotest.test_case "periodic exchange fills corners" `Quick test_periodic_exchange;
    Alcotest.test_case "buffer swap" `Quick test_swap;
    Alcotest.test_case "engine 5-point stencil" `Quick test_engine_stencil;
    Alcotest.test_case "domains == serial" `Quick test_engine_domains_equal_serial;
    Alcotest.test_case "params and coordinates" `Quick test_engine_params_and_coords;
    Alcotest.test_case "philox kernel determinism" `Quick test_engine_rand_determinism;
    Alcotest.test_case "loop-invariant hoisting" `Quick test_engine_hoisting_matches_unhoisted;
    Alcotest.test_case "staggered sweep extent" `Quick test_staggered_sweep_extent;
  ]

(* --------------- typing pass --------------------------------------- *)

let test_typing_classifies () =
  let k =
    Ir.Kernel.make ~name:"typed" ~dim:2
      [
        Field.Assignment.assign_temp "a" (mul [ sym "alpha"; coord 0 ]);
        Field.Assignment.store (Fieldspec.center g2) (add [ sym "a"; field f2 ]);
      ]
  in
  let types = Ir.Typing.parameter_types k in
  Alcotest.(check (list (pair string string)))
    "parameters are doubles"
    [ ("alpha", "double") ]
    (List.map (fun (s, t) -> (s, Ir.Typing.to_string t)) types);
  let env = Ir.Typing.check k in
  Alcotest.(check bool) "coordinate requires an int->double cast" true (env.Ir.Typing.casts > 0)

let test_typing_rejects_diff () =
  let body = [ Field.Assignment.store (Fieldspec.center g2) (Expr.Diff (field f2, 0)) ] in
  (* Kernel.make accepts it (ghost analysis only); typing must reject *)
  let k = Ir.Kernel.make ~name:"bad" ~dim:2 body in
  Alcotest.(check bool) "Diff rejected" true
    (try
       ignore (Ir.Typing.check k);
       false
     with Ir.Typing.Type_error _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "typing classifies symbols" `Quick test_typing_classifies;
      Alcotest.test_case "typing rejects Diff" `Quick test_typing_rejects_diff;
    ]
