(* Performance model: layer conditions, blocking factors, ECM predictions
   and the variant selection the paper's Fig. 2 relies on. *)

let p1 = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p1 ()))

let skl = Perfmodel.Machine.skylake_8174

let test_layer_condition_coefficient () =
  (* paper §6.1: μ-full under P1 demands 232·N² bytes; our kernel's demand
     coefficient must land in that neighbourhood *)
  let g = Lazy.force p1 in
  let c = Perfmodel.Layercond.demand_coefficient (Option.get g.mu_full) in
  Alcotest.(check bool)
    (Printf.sprintf "demand coefficient %d in [150, 320]" c)
    true
    (c >= 150 && c <= 320)

let test_blocking_factor () =
  (* paper: N < 67 for the 1 MB L2 → they run 60³ blocks *)
  let g = Lazy.force p1 in
  let n =
    Perfmodel.Layercond.blocking_factor (Option.get g.mu_full) ~cache_bytes:skl.Perfmodel.Machine.l2_bytes
  in
  Alcotest.(check bool) (Printf.sprintf "blocking N=%d in [55, 85]" n) true (n >= 55 && n <= 85)

let test_traffic_depends_on_layer_condition () =
  let g = Lazy.force p1 in
  let k = Option.get g.mu_full in
  let small = Perfmodel.Layercond.traffic_bytes_per_lup k ~cache_bytes:skl.Perfmodel.Machine.l2_bytes ~n:60 in
  let large = Perfmodel.Layercond.traffic_bytes_per_lup k ~cache_bytes:skl.Perfmodel.Machine.l2_bytes ~n:400 in
  Alcotest.(check bool) "violated LC costs more traffic" true (large > small)

let test_ecm_variants_p1 () =
  (* Fig. 2 left: μ-split is memory-bound (saturates early), μ-full is
     compute-bound (scales further) *)
  let g = Lazy.force p1 in
  let mu_full = Option.get g.mu_full in
  let pair = Option.get g.mu_split in
  let p_full = Perfmodel.Ecm.predict skl mu_full ~block_n:60 in
  let p_stag = Perfmodel.Ecm.predict skl pair.Pfcore.Genkernels.stag ~block_n:60 in
  let sat_full = Perfmodel.Ecm.saturation_cores skl p_full in
  let sat_stag = Perfmodel.Ecm.saturation_cores skl p_stag in
  Alcotest.(check bool)
    (Printf.sprintf "split (%d) saturates before full (%d)" sat_stag sat_full)
    true (sat_stag < sat_full);
  Alcotest.(check bool) "full scales past the socket" true (sat_full > skl.Perfmodel.Machine.cores_per_socket)

let test_ecm_single_core_positive () =
  let g = Lazy.force p1 in
  let p = Perfmodel.Ecm.predict skl g.phi_full ~block_n:60 in
  let mlups = Perfmodel.Ecm.single_core_mlups skl p in
  Alcotest.(check bool) (Printf.sprintf "%.1f MLUP/s plausible" mlups) true
    (mlups > 1. && mlups < 500.)

let test_multicore_capped_by_bandwidth () =
  let g = Lazy.force p1 in
  let p = Perfmodel.Ecm.predict skl (Option.get g.mu_full) ~block_n:60 in
  let p1c = Perfmodel.Ecm.multicore_mlups skl p ~cores:1 in
  let p24 = Perfmodel.Ecm.multicore_mlups skl p ~cores:24 in
  let p48 = Perfmodel.Ecm.multicore_mlups skl p ~cores:48 in
  Alcotest.(check bool) "scales up" true (p24 > p1c);
  Alcotest.(check bool) "bounded" true (p48 <= 24. *. 2.2 *. p1c)

let test_variant_selection_runs () =
  let g = Lazy.force p1 in
  let pair = Option.get g.mu_split in
  let variants =
    [ [ Option.get g.mu_full ]; [ pair.Pfcore.Genkernels.stag; pair.Pfcore.Genkernels.main ] ]
  in
  let idx, rate = Perfmodel.Ecm.select_variant skl ~block_n:60 ~cores:24 variants in
  Alcotest.(check bool) "selected an alternative" true (idx = 0 || idx = 1);
  Alcotest.(check bool) "positive rate" true (rate > 0.)

let test_avx2_slower_than_avx512 () =
  (* §6.1: the generated AVX512 build outperforms the manual AVX2 one *)
  let g = Lazy.force p1 in
  let k = g.phi_full in
  let avx2 = Perfmodel.Machine.with_simd_width 4 skl in
  let m512 = Perfmodel.Ecm.single_core_mlups skl (Perfmodel.Ecm.predict skl k ~block_n:60) in
  let m256 = Perfmodel.Ecm.single_core_mlups avx2 (Perfmodel.Ecm.predict avx2 k ~block_n:60) in
  Alcotest.(check bool) "AVX512 faster" true (m512 > m256)

let suite =
  [
    Alcotest.test_case "layer condition coefficient" `Quick test_layer_condition_coefficient;
    Alcotest.test_case "blocking factor" `Quick test_blocking_factor;
    Alcotest.test_case "LC violation costs traffic" `Quick test_traffic_depends_on_layer_condition;
    Alcotest.test_case "ECM variant behaviour P1" `Quick test_ecm_variants_p1;
    Alcotest.test_case "ECM single core plausible" `Quick test_ecm_single_core_positive;
    Alcotest.test_case "bandwidth roofline" `Quick test_multicore_capped_by_bandwidth;
    Alcotest.test_case "variant selection" `Quick test_variant_selection_runs;
    Alcotest.test_case "AVX512 vs AVX2" `Quick test_avx2_slower_than_avx512;
  ]

(* --------------- cache simulator ----------------------------------- *)

let test_cachesim_basics () =
  let c = Perfmodel.Cachesim.create ~size_bytes:1024 ~ways:4 ~line_bytes:64 in
  Alcotest.(check bool) "cold miss" false (Perfmodel.Cachesim.access c 0);
  Alcotest.(check bool) "warm hit" true (Perfmodel.Cachesim.access c 8);
  Alcotest.(check bool) "line granularity" true (Perfmodel.Cachesim.access c 63);
  Alcotest.(check bool) "different line misses" false (Perfmodel.Cachesim.access c 64)

let test_cachesim_lru_eviction () =
  (* direct-mapped single set of 2 ways: A B A C -> C evicts B, then B misses *)
  let c = Perfmodel.Cachesim.create ~size_bytes:128 ~ways:2 ~line_bytes:64 in
  ignore (Perfmodel.Cachesim.access c 0);       (* A miss *)
  ignore (Perfmodel.Cachesim.access c 64);      (* B miss *)
  Alcotest.(check bool) "A still resident" true (Perfmodel.Cachesim.access c 0);
  ignore (Perfmodel.Cachesim.access c 128);     (* C evicts LRU = B *)
  Alcotest.(check bool) "B evicted" false (Perfmodel.Cachesim.access c 64)

let test_cachesim_validates_layer_condition () =
  (* measured traffic through an L2-sized cache must agree with the layer
     condition's regime: small blocks stream (≈ compulsory), large blocks
     re-fetch planes *)
  let g = Lazy.force p1 in
  let k = g.Pfcore.Genkernels.phi_full in
  let cache () = Perfmodel.Cachesim.create ~size_bytes:(1024 * 1024) ~ways:16 ~line_bytes:64 in
  let small = Perfmodel.Cachesim.sweep_traffic k ~cache:(cache ()) ~n:16 in
  let large = Perfmodel.Cachesim.sweep_traffic k ~cache:(cache ()) ~n:90 in
  Alcotest.(check bool)
    (Printf.sprintf "traffic grows when LC breaks: %.0f -> %.0f B/LUP" small large)
    true (large > small);
  (* compulsory lower bound: one 8-byte stream per field component *)
  let compulsory =
    8. *. float_of_int (List.length (Perfmodel.Layercond.plane_spans k))
  in
  Alcotest.(check bool) "small-block traffic near compulsory" true
    (small < 3. *. compulsory)

let cachesim_suite =
  [
    Alcotest.test_case "cache hit/miss basics" `Quick test_cachesim_basics;
    Alcotest.test_case "LRU eviction" `Quick test_cachesim_lru_eviction;
    Alcotest.test_case "cachesim validates layer condition" `Slow test_cachesim_validates_layer_condition;
  ]

let suite = suite @ cachesim_suite
