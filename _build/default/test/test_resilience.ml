(* Resilience subsystem: snapshot format, bounded store, fault plans, the
   self-healing exchange, and the rollback-recovery driver. *)

let curvature = lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()))

let make_forest () =
  let g = Lazy.force curvature in
  let forest = Blocks.Forest.create ~grid:[| 2; 2 |] ~block_dims:[| 8; 8 |] g in
  Array.iter Pfcore.Simulation.init_sphere forest.Blocks.Forest.sims;
  Blocks.Forest.prime forest;
  forest

let make_single () =
  let g = Lazy.force curvature in
  let sim = Pfcore.Timestep.create ~dims:[| 12; 12 |] g in
  Pfcore.Simulation.init_sphere sim;
  Pfcore.Timestep.prime sim;
  sim

let phi () = (Lazy.force curvature).Pfcore.Genkernels.fields.Pfcore.Model.phi_src

let forests_bitwise_equal a b =
  Resilience.Snapshot.equal (Resilience.Snapshot.capture a)
    (Resilience.Snapshot.capture b)

(* --------------- snapshot format ----------------------------------- *)

let test_snapshot_roundtrip () =
  let sim = make_single () in
  Pfcore.Timestep.run sim ~steps:3;
  let snap = Resilience.Snapshot.capture_single sim in
  let decoded = Resilience.Snapshot.decode (Resilience.Snapshot.encode snap) in
  Alcotest.(check bool) "decode . encode = id" true
    (Resilience.Snapshot.equal snap decoded);
  Alcotest.(check int) "step stored" 3 decoded.Resilience.Snapshot.step;
  (* restoring into a differently-evolved sim reproduces the state bitwise *)
  let other = make_single () in
  Pfcore.Timestep.run other ~steps:1;
  Resilience.Snapshot.restore_single decoded other;
  Alcotest.(check bool) "restore reproduces capture" true
    (Resilience.Snapshot.equal snap (Resilience.Snapshot.capture_single other));
  Alcotest.(check int) "step restored" 3 other.Pfcore.Timestep.step_count

let test_snapshot_file_roundtrip () =
  let sim = make_single () in
  Pfcore.Timestep.run sim ~steps:2;
  let snap = Resilience.Snapshot.capture_single sim in
  let path = Filename.temp_file "pfgen" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Resilience.Snapshot.save path snap;
      Alcotest.(check bool) "file roundtrip" true
        (Resilience.Snapshot.equal snap (Resilience.Snapshot.load path)))

let test_snapshot_corruption_rejected () =
  let sim = make_single () in
  let snap = Resilience.Snapshot.capture_single sim in
  let encoded = Resilience.Snapshot.encode snap in
  (* flip one bit in a handful of positions spread over the file: header,
     metadata and payload corruption must all be rejected *)
  List.iter
    (fun frac ->
      let pos = String.length encoded * frac / 100 in
      let b = Bytes.of_string encoded in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
      match Resilience.Snapshot.decode (Bytes.to_string b) with
      | _ -> Alcotest.failf "corruption at byte %d accepted" pos
      | exception Resilience.Snapshot.Invalid _ -> ())
    [ 0; 3; 10; 50; 99 ];
  (* truncation too *)
  (match Resilience.Snapshot.decode (String.sub encoded 0 40) with
  | _ -> Alcotest.fail "truncated snapshot accepted"
  | exception Resilience.Snapshot.Invalid _ -> ())

let test_snapshot_fingerprint_guard () =
  let sim = make_single () in
  let snap = Resilience.Snapshot.capture_single sim in
  let wrong = { snap with Resilience.Snapshot.fingerprint = snap.fingerprint lxor 1 } in
  match Resilience.Snapshot.restore_single wrong sim with
  | _ -> Alcotest.fail "wrong-model snapshot accepted"
  | exception Resilience.Snapshot.Invalid _ -> ()

let test_store_bounded () =
  let sim = make_single () in
  let store = Resilience.Store.create ~capacity:3 () in
  Alcotest.(check bool) "empty" true (Resilience.Store.latest store = None);
  for i = 1 to 5 do
    Pfcore.Timestep.run sim ~steps:1;
    Resilience.Store.put store (Resilience.Snapshot.capture_single sim);
    Alcotest.(check int)
      (Printf.sprintf "count after %d" i)
      (min i 3) (Resilience.Store.count store)
  done;
  (match Resilience.Store.latest store with
  | Some s -> Alcotest.(check int) "latest is newest" 5 s.Resilience.Snapshot.step
  | None -> Alcotest.fail "store empty after puts");
  Resilience.Store.clear store;
  Alcotest.(check int) "cleared" 0 (Resilience.Store.count store)

(* --------------- fault plans ---------------------------------------- *)

let test_faultplan_deterministic () =
  let plan = Blocks.Faultplan.chaos ~seed:7 ~crash_step:99 () in
  for seq = 0 to 50 do
    let d1 = Blocks.Faultplan.decide plan ~src:0 ~dst:1 ~tag:2 ~seq in
    let d2 = Blocks.Faultplan.decide plan ~src:0 ~dst:1 ~tag:2 ~seq in
    Alcotest.(check bool) (Printf.sprintf "seq %d stable" seq) true (d1 = d2)
  done;
  (* the none plan never touches a message *)
  for seq = 0 to 50 do
    Alcotest.(check bool) "none delivers" true
      (Blocks.Faultplan.decide Blocks.Faultplan.none ~src:3 ~dst:0 ~tag:1 ~seq
      = Blocks.Faultplan.Deliver)
  done

(* --------------- substrate invariants ------------------------------- *)

let test_finalize_invariant () =
  let c = Blocks.Mpisim.create 2 in
  Blocks.Mpisim.send c ~src:0 ~dst:1 ~tag:3 [| 1.; 2. |];
  (match Blocks.Mpisim.finalize c with
  | () -> Alcotest.fail "finalize accepted an undelivered message"
  | exception Blocks.Mpisim.Unquiescent [ (0, 1, 3, 1) ] -> ()
  | exception Blocks.Mpisim.Unquiescent other ->
    Alcotest.failf "wrong leftovers (%d channels)" (List.length other));
  (* after the failed finalize drained the queues, a second one is clean *)
  Blocks.Mpisim.finalize c;
  (* consumed messages never trip the invariant (fresh channel: the
     drained one has a permanently lost sequence number, by design) *)
  Blocks.Mpisim.send c ~src:0 ~dst:1 ~tag:4 [| 4. |];
  (match Blocks.Mpisim.recv_expected c ~src:0 ~dst:1 ~tag:4 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected message not delivered");
  Blocks.Mpisim.finalize c

let test_no_message_rendering () =
  Alcotest.(check string) "No_message renders its channel"
    "Mpisim.No_message: no message queued from rank 2 to rank 0 with tag 5"
    (Printexc.to_string (Blocks.Mpisim.No_message (2, 0, 5)));
  Alcotest.(check string) "Unquiescent renders its channels"
    "Mpisim.Unquiescent: undelivered messages at finalize: 2 message(s) from rank 0 \
     to rank 1 with tag 3"
    (Printexc.to_string (Blocks.Mpisim.Unquiescent [ (0, 1, 3, 2) ]))

(* --------------- self-healing exchange ------------------------------ *)

let with_plan plan forest =
  Blocks.Mpisim.set_fault_plan forest.Blocks.Forest.comm (Some plan);
  forest

let test_faults_without_crash_heal () =
  let clean = make_forest () in
  Blocks.Forest.run clean ~steps:4;
  let faulty =
    with_plan
      { (Blocks.Faultplan.chaos ~seed:3 ~crash_step:0 ()) with Blocks.Faultplan.crash = None }
      (make_forest ())
  in
  Blocks.Forest.run faulty ~steps:4;
  let c = faulty.Blocks.Forest.comm in
  Alcotest.(check bool) "faults actually injected" true
    (c.Blocks.Mpisim.dropped + c.Blocks.Mpisim.duplicated + c.Blocks.Mpisim.delayed_count
    > 0);
  Alcotest.(check bool) "drops were healed by retransmission" true
    (c.Blocks.Mpisim.retransmissions > 0);
  Alcotest.(check bool) "healed run is bitwise identical" true
    (forests_bitwise_equal clean faulty)

let test_crash_restart_bitwise () =
  let clean = make_forest () in
  Blocks.Forest.run clean ~steps:6;
  let faulty =
    with_plan (Blocks.Faultplan.chaos ~seed:11 ~crash_step:3 ()) (make_forest ())
  in
  let stats = Resilience.Recovery.run_protected ~every:2 ~steps:6 faulty in
  Alcotest.(check int) "exactly one restart" 1 stats.Resilience.Recovery.restarts;
  Alcotest.(check bool) "steps were replayed" true
    (stats.Resilience.Recovery.replayed_steps >= 1);
  Alcotest.(check bool) "checkpoints taken" true
    (stats.Resilience.Recovery.checkpoints >= 2);
  Alcotest.(check int) "run completed all steps" 6 (Blocks.Forest.step_count faulty);
  Alcotest.(check bool) "recovered run is bitwise identical" true
    (forests_bitwise_equal clean faulty)

let test_forest_snapshot_restore_continues () =
  (* checkpoint at step 2, keep running to 5, roll back, rerun 3 steps:
     both trajectories must agree bitwise *)
  let forest = make_forest () in
  Blocks.Forest.run forest ~steps:2;
  let snap = Resilience.Snapshot.capture forest in
  Blocks.Forest.run forest ~steps:3;
  let at5 = Resilience.Snapshot.capture forest in
  Resilience.Snapshot.restore snap forest;
  Alcotest.(check int) "rolled back" 2 (Blocks.Forest.step_count forest);
  Blocks.Forest.run forest ~steps:3;
  Alcotest.(check bool) "replay is bitwise identical" true
    (Resilience.Snapshot.equal at5 (Resilience.Snapshot.capture forest))

(* --------------- timestep hooks ------------------------------------- *)

let test_on_step_hook () =
  let sim = make_single () in
  let seen = ref [] in
  Pfcore.Timestep.run sim ~steps:3
    ~on_step:(fun s -> seen := s.Pfcore.Timestep.step_count :: !seen);
  Alcotest.(check (list int)) "hook fires after every step" [ 1; 2; 3 ]
    (List.rev !seen);
  Pfcore.Timestep.restore sim ~step:7 ~time:0.25;
  Alcotest.(check int) "restore sets step" 7 sim.Pfcore.Timestep.step_count;
  Alcotest.(check (float 0.)) "restore sets time" 0.25 sim.Pfcore.Timestep.time

let suite =
  [
    Alcotest.test_case "snapshot roundtrip (bitwise)" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot file save/load" `Quick test_snapshot_file_roundtrip;
    Alcotest.test_case "corrupted snapshot rejected" `Quick test_snapshot_corruption_rejected;
    Alcotest.test_case "fingerprint guards restore" `Quick test_snapshot_fingerprint_guard;
    Alcotest.test_case "store is bounded" `Quick test_store_bounded;
    Alcotest.test_case "fault plan deterministic" `Quick test_faultplan_deterministic;
    Alcotest.test_case "finalize quiescence invariant" `Quick test_finalize_invariant;
    Alcotest.test_case "failure rendering" `Quick test_no_message_rendering;
    Alcotest.test_case "faults heal without crash" `Slow test_faults_without_crash_heal;
    Alcotest.test_case "crash + rollback is bitwise" `Slow test_crash_restart_bitwise;
    Alcotest.test_case "snapshot restore continues" `Slow test_forest_snapshot_restore_continues;
    Alcotest.test_case "on_step hook and restore" `Quick test_on_step_hook;
  ]
