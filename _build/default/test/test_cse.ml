(* Global CSE: value preservation on random expressions, sharing detection,
   single-use inlining, and assignment-list integration. *)

open Symbolic
open Expr

let env4 (a, b, c, d) = Eval.of_alist [ ("a", a); ("b", b); ("c", c); ("d", d) ]

let close a b =
  if not (Float.is_finite a && Float.is_finite b) then a = b || (Float.is_nan a && Float.is_nan b)
  else
    let scale = Float.max 1. (Float.max (abs_float a) (abs_float b)) in
    abs_float (a -. b) /. scale < 1e-9

let test_extracts_shared () =
  let a = sym "a" and b = sym "b" in
  (* the sum s flattens into e2 (Add is n-ary), so the repeated subterm the
     CSE can actually see is s itself in e1/e3 *)
  let s = add [ a; mul [ num 2.; b ] ] in
  let e1 = mul [ s; sym "c" ] and e3 = mul [ s; sym "d" ] in
  let r = Cse.run [ e1; e3 ] in
  Alcotest.(check int) "one shared binding" 1 (List.length r.Cse.bindings);
  let name, rhs = List.hd r.Cse.bindings in
  Alcotest.(check bool) "binding is the shared sum" true (equal rhs s);
  List.iter
    (fun e -> Alcotest.(check bool) "uses the temp" true (List.mem name (free_syms e)))
    r.Cse.exprs

let test_no_sharing_no_bindings () =
  let r = Cse.run [ add [ sym "a"; sym "b" ]; mul [ sym "c"; sym "d" ] ] in
  Alcotest.(check int) "no bindings" 0 (List.length r.Cse.bindings)

let test_nested_single_use_inlined () =
  (* nested sharing creates chains; single-use temps must be inlined back *)
  let a = sym "a" in
  let inner = add [ a; num 1. ] in
  let outer = mul [ inner; inner; sym "b" ] in
  let r = Cse.run [ outer ] in
  (* (a+1)*(a+1) normalizes to (a+1)^2: nothing shared across exprs *)
  List.iter
    (fun (_, rhs) -> Alcotest.(check bool) "no trivial binding" true (Cse.is_atom rhs = false))
    r.Cse.bindings

let prop_cse_preserves_values =
  QCheck.Test.make ~name:"cse preserves values" ~count:300
    (QCheck.pair
       (QCheck.pair Test_expr.arb_expr Test_expr.arb_expr)
       Test_expr.arb_env)
    (fun ((e1, e2), env) ->
      let env = env4 env in
      let r = Cse.run [ e1; e2 ] in
      let values = Eval.eval_bindings env r.Cse.bindings r.Cse.exprs in
      match values with
      | [ v1; v2 ] -> close v1 (Eval.eval env e1) && close v2 (Eval.eval env e2)
      | _ -> false)

let prop_cse_bindings_are_ssa =
  QCheck.Test.make ~name:"cse bindings in dependency order" ~count:200 Test_expr.arb_expr
    (fun e ->
      let r = Cse.run [ e; mul [ e; num 2. ] ] in
      let defined = ref [] in
      List.for_all
        (fun (name, rhs) ->
          let ok =
            List.for_all
              (fun s -> (not (String.length s > 3 && String.sub s 0 3 = "xi_")) || List.mem s !defined)
              (free_syms rhs)
          in
          defined := name :: !defined;
          ok)
        r.Cse.bindings)

let test_assignment_cse () =
  let f = Fieldspec.scalar ~dim:2 "f" in
  let g = Fieldspec.scalar ~dim:2 "g" in
  let shared = add [ field f; num 1. ] in
  let body =
    [
      Field.Assignment.store (Fieldspec.center g) (mul [ shared; num 2. ]);
      Field.Assignment.store (Fieldspec.center ~component:0 g) (mul [ shared; num 3. ]);
    ]
  in
  let out = Field.Assignment.cse body in
  Alcotest.(check int) "one temp + two stores" 3 (List.length out);
  Field.Assignment.check_ssa out

let suite =
  [
    Alcotest.test_case "extracts shared subexpression" `Quick test_extracts_shared;
    Alcotest.test_case "no sharing, no bindings" `Quick test_no_sharing_no_bindings;
    Alcotest.test_case "single-use temps inlined" `Quick test_nested_single_use_inlined;
    Alcotest.test_case "assignment-list cse" `Quick test_assignment_cse;
    QCheck_alcotest.to_alcotest prop_cse_preserves_values;
    QCheck_alcotest.to_alcotest prop_cse_bindings_are_ssa;
  ]
