examples/dendrite.ml: Array Field Fmt Pfcore Sys Vm
