examples/codegen_tour.ml: Array Backend Expr Fd Field Fmt Gpumodel Ir List Perfmodel Pfcore Simplify String Symbolic
