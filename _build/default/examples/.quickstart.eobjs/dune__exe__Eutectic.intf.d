examples/eutectic.mli:
