examples/dendrite.mli:
