examples/quickstart.mli:
