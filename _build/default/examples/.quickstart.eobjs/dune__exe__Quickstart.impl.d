examples/quickstart.ml: Array Field Fmt Ir List Pfcore
