examples/eutectic.ml: Array Field Fmt List Option Pfcore Sys Unix Vm
