(* Binary dendritic solidification — the paper's P2 scenario (Fig. 4
   right): anisotropic solid seeds with different crystal orientations grow
   into an undercooled melt; the cubic anisotropy selects preferred growth
   directions and differently-oriented grains compete.

   2D by default so it runs in seconds; pass a steps count to grow further.

   Run with:  dune exec examples/dendrite.exe [-- steps] *)

let () =
  let steps = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 400 in
  Fmt.pr "== P2: dendritic solidification, competing orientations ==@.";
  let params = Pfcore.Params.p2 ~dim:2 () in
  let generated = Pfcore.Genkernels.generate params in
  Fmt.pr "phi-full: %a@." Field.Opcount.pp
    (Pfcore.Genkernels.counts generated.Pfcore.Genkernels.phi_full);
  Fmt.pr "anisotropy makes phi far costlier than isotropic P1 (paper Table 1: 3968 vs 1004)@.";

  let nx = 96 and nz = 96 in
  let sim = Pfcore.Timestep.create ~dims:[| nx; nz |] generated in
  (* two seeds at the bottom: phase 0 aligned with the axes, phase 1
     misoriented by ~31 degrees (paper: teal vs green/purple grains) *)
  Pfcore.Simulation.init_seeds
    ~seeds:[ ([| nx / 4; 6 |], 0); ([| 3 * nx / 4; 6 |], 1) ]
    ~radius:5. sim;

  Fmt.pr "@.step   solid0   solid1   tip-z  interface@.";
  let report step =
    let fr = Pfcore.Simulation.phase_fractions sim in
    Fmt.pr "%5d  %7.4f  %7.4f  %5d  %9.3f@." step fr.(0) fr.(1)
      (Pfcore.Simulation.tip_position sim)
      (Pfcore.Simulation.interface_fraction sim)
  in
  report 0;
  let chunk = max 1 (steps / 8) in
  let done_ = ref 0 in
  while !done_ < steps do
    let n = min chunk (steps - !done_) in
    Pfcore.Timestep.run sim ~steps:n;
    done_ := !done_ + n;
    report !done_
  done;

  (* ASCII rendering of the microstructure: which phase dominates each cell *)
  let buf = Pfcore.Simulation.phi_buffer sim in
  Fmt.pr "@.microstructure ('0'/'1' = solid grains, '.' = melt):@.";
  for row = 11 downto 0 do
    let z = row * nz / 12 in
    for col = 0 to 47 do
      let x = col * nx / 48 in
      let v c = Vm.Buffer.get buf ~component:c [| x; z |] in
      let ch = if v 0 > 0.5 then '0' else if v 1 > 0.5 then '1' else '.' in
      print_char ch
    done;
    print_newline ()
  done;
  Fmt.pr "state sane: %b@." (Pfcore.Simulation.check_sane sim)
