(* Quickstart: mean-curvature flow of a circular inclusion.

   Demonstrates the whole pipeline on the simplest possible model — a
   two-phase, isotropic energy functional with no chemistry:

     1. pick a parameter set,
     2. generate optimized kernels (energy functional → PDE → stencil → IR),
     3. set up a block, initial condition, and time-step it,
     4. watch the circle shrink at the theoretically constant area rate.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  Fmt.pr "== pfgen quickstart: 2-phase curvature flow ==@.";
  let params = Pfcore.Params.curvature ~dim:2 () in
  let generated = Pfcore.Genkernels.generate params in
  Fmt.pr "generated kernel '%s': %a@."
    generated.Pfcore.Genkernels.phi_full.Ir.Kernel.name Field.Opcount.pp
    (Pfcore.Genkernels.counts generated.Pfcore.Genkernels.phi_full);

  let sim = Pfcore.Timestep.create ~dims:[| 96; 96 |] generated in
  Pfcore.Simulation.init_sphere ~radius_frac:0.3 sim;

  Fmt.pr "@.step   area(phase0)  interface  sum(phi)@.";
  let area () = (Pfcore.Simulation.phase_fractions sim).(0) *. (96. *. 96.) in
  let a0 = area () in
  Fmt.pr "%5d  %12.1f  %9.3f  1 (exact)@." 0 a0 (Pfcore.Simulation.interface_fraction sim);
  let rates = ref [] in
  let prev = ref a0 in
  for i = 1 to 8 do
    Pfcore.Timestep.run sim ~steps:100;
    let a = area () in
    let fr = Pfcore.Simulation.phase_fractions sim in
    rates := (!prev -. a) :: !rates;
    prev := a;
    Fmt.pr "%5d  %12.1f  %9.3f  %.12f@." (i * 100) a
      (Pfcore.Simulation.interface_fraction sim)
      (fr.(0) +. fr.(1))
  done;
  (* dA/dt for curvature flow is constant (−2πM): the shrink rate per 100
     steps should be roughly the same in every window *)
  let rates = List.rev !rates in
  let mean = List.fold_left ( +. ) 0. rates /. float_of_int (List.length rates) in
  Fmt.pr "@.area shrink per 100 steps: mean %.1f cells " mean;
  Fmt.pr "(theory: constant in time — values %a)@."
    Fmt.(list ~sep:comma (fmt "%.1f"))
    rates;
  if Pfcore.Simulation.check_sane sim then Fmt.pr "state sane: phi in [0,1], sum = 1.@."
