(* A tour of the code-generation pipeline: walks one model through every
   abstraction layer (paper Fig. 1) and prints the artifacts — the
   continuous PDE, the discretized stencil, the optimized IR, generated C
   (scalar and AVX512) and CUDA, the ECM performance report and the GPU
   register analysis.

   Run with:  dune exec examples/codegen_tour.exe *)

open Symbolic

let rule title = Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '-')

let () =
  let params = Pfcore.Params.curvature ~dim:2 () in
  let fields = Pfcore.Model.make_fields params in
  let ctx = Pfcore.Model.make_ctx ~symbolic:false in

  rule "1. Energy functional layer";
  let density = Pfcore.Model.energy_density ctx params fields in
  Fmt.pr "energy density (%d nodes): %a@." (Expr.count_nodes density) Expr.pp
    (Simplify.factor_common density);

  rule "2. PDE layer (variational derivative, Lagrange multiplier)";
  let rhs = Pfcore.Model.phi_rhs ctx params fields in
  Fmt.pr "d(phi_0)/dt = %a@." Expr.pp rhs.(0);

  rule "3. Discretization layer (staggered finite differences)";
  let scheme = Fd.Discretize.create ~dx:(Expr.num params.Pfcore.Params.dx) ~dim:2 () in
  let disc = Fd.Discretize.discretize scheme rhs.(0) in
  Fmt.pr "stencil expression: %d nodes, accesses %d cells@." (Expr.count_nodes disc)
    (List.length (Expr.accesses disc));

  rule "4. IR layer (SSA, CSE, loop order, hoisting)";
  let gen = Pfcore.Genkernels.generate params in
  let kernel = gen.Pfcore.Genkernels.phi_full in
  Fmt.pr "%a@." Field.Opcount.pp (Pfcore.Genkernels.counts kernel);
  let lowered = Ir.Lower.run kernel in
  Fmt.pr "%a@." Ir.Lower.pp lowered;

  rule "5a. C backend (scalar, OpenMP)";
  print_string (Backend.Ccode.emit lowered);

  rule "5b. C backend (AVX512 intrinsics) — first lines";
  let simd = Backend.Simd.emit_kernel ~isa:Backend.Simd.AVX512 lowered in
  String.split_on_char '\n' simd
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;
  Fmt.pr "... (%d lines total)@." (List.length (String.split_on_char '\n' simd));

  rule "5c. CUDA backend — first lines";
  let cuda = Backend.Cuda.emit kernel in
  String.split_on_char '\n' cuda
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter print_endline;
  Fmt.pr "launch: %s@." (Backend.Cuda.launch_config Backend.Cuda.default_mapping ~dims:[| 256; 256 |]);

  rule "6. Automatic performance modeling (ECM / layer conditions)";
  let skl = Perfmodel.Machine.skylake_8174 in
  Fmt.pr "%a@." Perfmodel.Layercond.pp_report (kernel, skl.Perfmodel.Machine.l2_bytes);
  let prediction = Perfmodel.Ecm.predict skl kernel ~block_n:60 in
  Fmt.pr "%a@." Perfmodel.Ecm.pp prediction;
  Fmt.pr "single core: %.1f MLUP/s, saturates at %d cores@."
    (Perfmodel.Ecm.single_core_mlups skl prediction)
    (Perfmodel.Ecm.saturation_cores skl prediction);

  rule "7. GPU register analysis";
  let body = kernel.Ir.Kernel.body in
  let none = Gpumodel.Transforms.apply [] body in
  let tuned =
    Gpumodel.Transforms.apply
      [ Gpumodel.Transforms.Remat Gpumodel.Remat.default; Gpumodel.Transforms.Sched 20 ]
      body
  in
  let r0 = Gpumodel.Transforms.registers none and r1 = Gpumodel.Transforms.registers tuned in
  Fmt.pr "registers (nvcc model): untransformed %d, scheduled+remat %d@."
    r0.Gpumodel.Transforms.nvcc r1.Gpumodel.Transforms.nvcc;
  Fmt.pr "modeled P100 runtime: %.2f -> %.2f ns/LUP@."
    (Gpumodel.Transforms.modeled_time Gpumodel.Device.p100 none)
    (Gpumodel.Transforms.modeled_time Gpumodel.Device.p100 tuned)
