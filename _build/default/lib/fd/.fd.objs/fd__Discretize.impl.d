lib/fd/discretize.ml: Array Expr Field Fieldspec Hashtbl List Symbolic
