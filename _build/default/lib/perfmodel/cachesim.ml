(** Set-associative LRU cache simulator.

    Kerncraft offers two ways to derive data traffic: analytic layer
    conditions ({!Layercond}) or a cache-hierarchy simulation (paper §3.6,
    "analytical layer conditions or a cache hierarchy simulator").  This is
    the second path: a sweep of the kernel's access pattern is replayed
    through an LRU cache and the measured miss traffic validates the layer
    condition's prediction. *)

open Symbolic

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array array;      (** per set, LRU order: most recent first *)
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~ways ~line_bytes =
  let sets = max 1 (size_bytes / (ways * line_bytes)) in
  {
    sets;
    ways;
    line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    hits = 0;
    misses = 0;
  }

let reset t =
  Array.iter (fun set -> Array.fill set 0 t.ways (-1)) t.tags;
  t.hits <- 0;
  t.misses <- 0

(** Touch one byte address; returns true on hit. *)
let access t addr =
  let line = addr / t.line_bytes in
  let set = t.tags.(line mod t.sets) in
  let tag = line / t.sets in
  let rec find i = if i >= t.ways then -1 else if set.(i) = tag then i else find (i + 1) in
  let pos = find 0 in
  let hit = pos >= 0 in
  (* promote to MRU; on miss evict the LRU way *)
  let from = if hit then pos else t.ways - 1 in
  for i = from downto 1 do
    set.(i) <- set.(i - 1)
  done;
  set.(0) <- tag;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  hit

let miss_bytes t = t.misses * t.line_bytes

(** Replay a full sweep of [kernel]'s loads over an [n]³ (or [n]ᵈ) block and
    return the measured traffic in bytes per lattice update.  Fields are
    laid out as in the VM (x fastest, component slabs), so the simulated
    reuse pattern is the real one. *)
let sweep_traffic (kernel : Ir.Kernel.t) ~cache ~n =
  reset cache;
  let dim = kernel.Ir.Kernel.dim in
  let loads = Ir.Kernel.loads kernel in
  (* assign disjoint address spaces per (field, component, face) slab *)
  let slab_table : (string * int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let next_slab = ref 0 in
  let slab (a : Fieldspec.access) =
    let comp =
      if a.face_axis >= 0 then (a.component * a.field.Fieldspec.dim) + a.face_axis
      else a.component
    in
    let key = (a.field.Fieldspec.name, comp, 0) in
    match Hashtbl.find_opt slab_table key with
    | Some s -> s
    | None ->
      let s = !next_slab in
      incr next_slab;
      Hashtbl.add slab_table key s;
      s
  in
  let precomputed =
    List.map
      (fun (a : Fieldspec.access) ->
        let off = ref 0 in
        Array.iteri
          (fun d o ->
            let stride = int_of_float (float_of_int (n + 4) ** float_of_int d) in
            off := !off + (o * stride))
          a.offsets;
        (slab a, !off))
      loads
  in
  let slab_bytes = 8 * int_of_float (float_of_int (n + 4) ** float_of_int dim) in
  let coords = Array.make dim 0 in
  let cells = ref 0 in
  let rec loop d =
    if d = dim then begin
      incr cells;
      let base = ref 0 in
      Array.iteri
        (fun d c ->
          base := !base + ((c + 2) * int_of_float (float_of_int (n + 4) ** float_of_int d)))
        coords;
      List.iter
        (fun (s, off) -> ignore (access cache ((s * slab_bytes * 2) + (8 * (!base + off)))))
        precomputed
    end
    else
      for i = 0 to n - 1 do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0;
  float_of_int (miss_bytes cache) /. float_of_int !cells
