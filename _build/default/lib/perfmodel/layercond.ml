(** Layer-condition analysis (paper §3.6, §6.1; Hammer et al. [36]).

    A stencil sweep reuses neighbouring loads across inner-loop iterations
    only while the required "layers" of each field stay resident in a cache
    level.  The 3D layer condition demands that, for every field component,
    all distinct slowest-axis planes currently alive fit: the cache demand
    is  [8 bytes × Σ_fc span_slow(fc) × N²]  for cubic blocks of edge N.
    Solving demand ≤ cache size for N yields the spatial blocking factor
    (the paper derives 232·N² bytes and N < 67 for Skylake's 1 MB L2). *)

open Symbolic

(* Distinct slowest-axis offsets per (field, component, face_axis) of the
   kernel's loads. *)
let plane_spans (k : Ir.Kernel.t) =
  let slow = k.Ir.Kernel.dim - 1 in
  let table : (string * int * int, int list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (a : Fieldspec.access) ->
      let key = (a.field.Fieldspec.name, a.component, a.face_axis) in
      let zs = Option.value (Hashtbl.find_opt table key) ~default:[] in
      let z = a.offsets.(slow) in
      if not (List.mem z zs) then Hashtbl.replace table key (z :: zs))
    (Ir.Kernel.loads k);
  Hashtbl.fold (fun key zs acc -> (key, List.length zs) :: acc) table []

(** Cache demand coefficient: bytes per N² for cubic blocks (the paper's
    "232·N²" for μ-full under P1). *)
let demand_coefficient k =
  8 * List.fold_left (fun acc (_, span) -> acc + span) 0 (plane_spans k)

(** Largest cubic block edge for which the 3D layer condition holds in a
    cache of [cache_bytes]. *)
let blocking_factor k ~cache_bytes =
  let coeff = demand_coefficient k in
  if coeff = 0 then max_int else int_of_float (sqrt (float_of_int cache_bytes /. float_of_int coeff))

(** Per-lattice-update traffic (bytes) crossing a cache boundary of size
    [cache_bytes], for block edge [n].

    If the layer condition holds, each input field component streams in once
    (one 8-byte read per LUP) and stores cost write-allocate + write-back;
    if it is violated, every distinct slowest-axis plane of the component is
    re-fetched. *)
let traffic_bytes_per_lup (k : Ir.Kernel.t) ~cache_bytes ~n =
  let coeff = demand_coefficient k in
  let holds = coeff * n * n <= cache_bytes in
  let loads =
    List.fold_left
      (fun acc (_, span) -> acc + if holds then 1 else span)
      0 (plane_spans k)
  in
  let stores = List.length (Ir.Kernel.stores k) in
  (* write-allocate + write-back *)
  float_of_int ((8 * loads) + (16 * stores))

let pp_report ppf (k, cache_bytes) =
  let coeff = demand_coefficient k in
  let n = blocking_factor k ~cache_bytes in
  Fmt.pf ppf "%s: layer-condition demand %d*N^2 bytes, blocking N < %d for %d KiB cache"
    k.Ir.Kernel.name coeff n (cache_bytes / 1024)
