lib/perfmodel/ecm.ml: Field Float Fmt Ir Layercond List Machine Opcount
