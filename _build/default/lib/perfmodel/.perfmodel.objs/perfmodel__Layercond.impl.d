lib/perfmodel/layercond.ml: Array Fieldspec Fmt Hashtbl Ir List Option Symbolic
