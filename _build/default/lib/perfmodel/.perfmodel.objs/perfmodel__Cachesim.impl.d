lib/perfmodel/cachesim.ml: Array Fieldspec Hashtbl Ir List Symbolic
