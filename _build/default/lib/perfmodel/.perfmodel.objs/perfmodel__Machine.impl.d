lib/perfmodel/machine.ml: Printf
