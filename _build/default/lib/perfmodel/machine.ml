(** Machine models for the analytic performance analysis.

    Throughput numbers follow vendor instruction tables (Fog [44]) the same
    way the paper weights its normalized FLOPs: add/mul pipelined at two per
    cycle with FMA, division ~16× and square root ~10× slower, approximate
    reciprocal square root ~2×. *)

type t = {
  name : string;
  cores_per_socket : int;
  clock_ghz : float;          (** sustained AVX clock *)
  simd_width : int;           (** doubles per SIMD vector *)
  add_per_cycle : float;      (** vector add/sub issue rate *)
  mul_per_cycle : float;
  div_cycles : float;         (** reciprocal throughput of vector divide *)
  sqrt_cycles : float;
  rsqrt_cycles : float;       (** approximate rsqrt (rsqrt14 on AVX512) *)
  load_per_cycle : float;     (** vector loads per cycle from L1 *)
  store_per_cycle : float;
  cacheline_bytes : int;
  l1_bytes : int;
  l2_bytes : int;
  l3_bytes_per_core : int;
  l1_l2_bytes_per_cycle : float;
  l2_l3_bytes_per_cycle : float;
  mem_bw_gbytes : float;      (** socket main-memory bandwidth *)
}

(** Intel Xeon Platinum 8174 (SuperMUC-NG), AVX512. *)
let skylake_8174 =
  {
    name = "Skylake-SP 8174";
    cores_per_socket = 24;
    clock_ghz = 2.3;
    simd_width = 8;
    add_per_cycle = 2.;
    mul_per_cycle = 2.;
    div_cycles = 16.;
    sqrt_cycles = 10.;
    rsqrt_cycles = 2.;
    load_per_cycle = 2.;
    store_per_cycle = 1.;
    cacheline_bytes = 64;
    l1_bytes = 32 * 1024;
    l2_bytes = 1024 * 1024;
    l3_bytes_per_core = 1408 * 1024;
    l1_l2_bytes_per_cycle = 64.;
    l2_l3_bytes_per_cycle = 16.;
    mem_bw_gbytes = 105.;
  }

(** Intel Xeon E5-2690 v3 (Piz Daint host), AVX2. *)
let haswell_2690v3 =
  {
    name = "Haswell E5-2690v3";
    cores_per_socket = 12;
    clock_ghz = 2.3;
    simd_width = 4;
    add_per_cycle = 2.;
    mul_per_cycle = 2.;
    div_cycles = 16.;
    sqrt_cycles = 16.;
    rsqrt_cycles = 16.;  (* no fast double-precision rsqrt on AVX2 *)
    load_per_cycle = 2.;
    store_per_cycle = 1.;
    cacheline_bytes = 64;
    l1_bytes = 32 * 1024;
    l2_bytes = 256 * 1024;
    l3_bytes_per_core = 2560 * 1024;
    l1_l2_bytes_per_cycle = 32.;
    l2_l3_bytes_per_cycle = 16.;
    mem_bw_gbytes = 60.;
  }

(** A machine restricted to a narrower SIMD ISA — models the manually
    optimized AVX2 binary of [2] running on Skylake (paper §6.1: the
    generated AVX512 code outperforms it by ~20%). *)
let with_simd_width width m =
  { m with simd_width = width; name = m.name ^ Printf.sprintf " (simd=%d)" width }
