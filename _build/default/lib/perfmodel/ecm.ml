(** Execution-Cache-Memory model (Stengel et al. [35], as automated by
    Kerncraft [36]).

    Predicts cycles per cache line of results (8 lattice updates in double
    precision) from two components:

    - in-core execution: overlapping arithmetic [t_ol] vs. load/store
      throughput [t_nol], from the instruction tables and the kernel's
      operation counts;
    - data transfers through the memory hierarchy [t_l2/t_l3/t_mem], from
      the layer-condition traffic at each boundary.

    Single-core runtime is max(t_ol, t_nol + t_l2 + t_l3 + t_mem); multicore
    performance scales linearly until the memory bandwidth ceiling, giving
    the saturation core count the paper uses to select kernel variants. *)

open Field

type prediction = {
  kernel : string;
  t_ol : float;    (** overlapping (arithmetic) cycles per cacheline *)
  t_nol : float;   (** non-overlapping load/store cycles per cacheline *)
  t_l2 : float;    (** L1↔L2 transfer cycles *)
  t_l3 : float;    (** L2↔L3 transfer cycles *)
  t_mem : float;   (** L3↔memory transfer cycles *)
  bytes_per_lup : float;  (** main-memory traffic per lattice update *)
}

let cacheline_lups = 8

(** In-core cycles per cache line from the operation counts, assuming SIMD
    execution at the machine's vector width. *)
let core_cycles (m : Machine.t) (c : Opcount.t) =
  let vec_iters = float_of_int cacheline_lups /. float_of_int m.simd_width in
  let arith =
    (float_of_int c.adds /. m.add_per_cycle)
    +. (float_of_int c.muls /. m.mul_per_cycle)
    +. (float_of_int c.divs *. m.div_cycles)
    +. (float_of_int c.sqrts *. m.sqrt_cycles)
    +. (float_of_int c.rsqrts *. m.rsqrt_cycles)
    +. float_of_int c.others
  in
  let ldst =
    (float_of_int c.loads /. m.load_per_cycle)
    +. (float_of_int c.stores /. m.store_per_cycle)
  in
  (arith *. vec_iters, ldst *. vec_iters)

let predict (m : Machine.t) (k : Ir.Kernel.t) ~block_n =
  let counts = Opcount.of_assignments k.Ir.Kernel.body in
  let t_ol, t_nol = core_cycles m counts in
  let cl = float_of_int m.cacheline_bytes in
  let bytes_at cache = Layercond.traffic_bytes_per_lup k ~cache_bytes:cache ~n:block_n in
  let l2_traffic = bytes_at m.l1_bytes *. float_of_int cacheline_lups in
  let l3_traffic = bytes_at m.l2_bytes *. float_of_int cacheline_lups in
  let mem_traffic = bytes_at (m.l3_bytes_per_core * m.cores_per_socket) *. float_of_int cacheline_lups in
  ignore cl;
  {
    kernel = k.Ir.Kernel.name;
    t_ol;
    t_nol;
    t_l2 = l2_traffic /. m.l1_l2_bytes_per_cycle;
    t_l3 = l3_traffic /. m.l2_l3_bytes_per_cycle;
    t_mem = mem_traffic /. (m.mem_bw_gbytes *. 1e9 /. (m.clock_ghz *. 1e9));
    bytes_per_lup = mem_traffic /. float_of_int cacheline_lups;
  }

(** Cycles per cacheline on a single core (no bandwidth contention). *)
let single_core_cycles p = Float.max p.t_ol (p.t_nol +. p.t_l2 +. p.t_l3 +. p.t_mem)

(** Single-core performance in MLUP/s. *)
let single_core_mlups (m : Machine.t) p =
  m.clock_ghz *. 1e9 *. float_of_int cacheline_lups /. single_core_cycles p /. 1e6

(** Performance with [cores] active cores of one socket: linear scaling
    capped by the memory-bandwidth roofline. *)
let multicore_mlups (m : Machine.t) p ~cores =
  let single = single_core_mlups m p in
  let bw_cap = m.mem_bw_gbytes *. 1e9 /. p.bytes_per_lup /. 1e6 in
  Float.min (float_of_int cores *. single) bw_cap

(** Core count at which the kernel saturates memory bandwidth. *)
let saturation_cores (m : Machine.t) p =
  let single = single_core_mlups m p in
  let bw_cap = m.mem_bw_gbytes *. 1e9 /. p.bytes_per_lup /. 1e6 in
  int_of_float (Float.ceil (bw_cap /. single))

(** Pick the faster of several kernel-variant alternatives at a given core
    count; each alternative is a list of kernels executed per time step
    (split variants have two sweeps).  Returns (index, mlups). *)
let select_variant (m : Machine.t) ~block_n ~cores variants =
  let perf kernels =
    (* sweeps run back to back: times add up, i.e. rates combine harmonically *)
    let inv =
      List.fold_left
        (fun acc k -> acc +. (1. /. multicore_mlups m (predict m k ~block_n) ~cores))
        0. kernels
    in
    1. /. inv
  in
  let rated = List.mapi (fun i ks -> (i, perf ks)) variants in
  List.fold_left (fun (bi, bp) (i, p) -> if p > bp then (i, p) else (bi, bp)) (-1, 0.) rated

let pp ppf p =
  Fmt.pf ppf "%s: T_OL=%.1f T_nOL=%.1f T_L2=%.1f T_L3=%.1f T_Mem=%.1f cy/CL, %.0f B/LUP"
    p.kernel p.t_ol p.t_nol p.t_l2 p.t_l3 p.t_mem p.bytes_per_lup
