lib/symbolic/eval.ml: Cse Expr Fieldspec Fmt Hashtbl List Printf
