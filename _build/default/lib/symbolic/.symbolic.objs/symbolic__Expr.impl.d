lib/symbolic/expr.ml: Array Fieldspec Float Fmt List Stdlib
