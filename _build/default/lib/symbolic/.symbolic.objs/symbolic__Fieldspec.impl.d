lib/symbolic/fieldspec.ml: Array Fmt Stdlib String
