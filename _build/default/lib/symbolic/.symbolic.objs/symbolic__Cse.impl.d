lib/symbolic/cse.ml: Expr Hashtbl List Option Printf
