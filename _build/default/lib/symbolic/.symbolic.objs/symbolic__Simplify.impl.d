lib/symbolic/simplify.ml: Expr List
