(** Expression-level simplification passes.

    These implement the discretization layer's "terms are simplified
    individually by expansion or factoring" step (paper §3.3): polynomial
    expansion, collection of common factors, constant folding after
    compile-time parameter substitution, and a cheap cost model used to pick
    the better of the expanded / factored forms. *)

open Expr

(** Distribute products over sums and expand positive integer powers of
    sums.  Negative powers and function arguments are left in place.

    Distribution is budgeted: a product (or power) whose expansion would
    produce more than [budget] terms is left in factored form, so expansion
    of deeply nested interface terms cannot blow up. *)
(* Distribute a product of two already-expanded operands. *)
let distribute_pair a b =
  match (a, b) with
  | Add ts, Add us -> add (List.concat_map (fun t -> List.map (fun u -> mul [ t; u ]) us) ts)
  | Add ts, u | u, Add ts -> add (List.map (fun t -> mul [ t; u ]) ts)
  | a, b -> mul [ a; b ]

let rec expand ?(budget = 256) e =
  let expand_b = expand ~budget in
  let n_terms = function Add ts -> List.length ts | _ -> 1 in
  match e with
  | Num _ | Sym _ | Coord _ | Access _ | Rand _ -> e
  | Diff (x, d) -> spatial_diff (expand_b x) d
  | Add xs -> add (List.map expand_b xs)
  | Mul xs ->
    let xs = List.map expand_b xs in
    (* early-capped product of term counts: avoids overflow and blow-up *)
    let total =
      List.fold_left (fun acc x -> if acc > budget then acc else acc * n_terms x) 1 xs
    in
    if total > budget then mul xs
    else (match xs with [] -> one | x :: rest -> List.fold_left distribute_pair x rest)
  | Pow (b, n) when n > 1 -> (
    match expand_b b with
    | Add ts as eb ->
      let rec grow acc k =
        if acc > budget || k = 0 then acc else grow (acc * List.length ts) (k - 1)
      in
      if grow 1 n > budget then pow eb n
      else
        (* operands are already expanded: plain repeated distribution *)
        let rec power acc k = if k = 0 then acc else power (distribute_pair acc eb) (k - 1) in
        power one n
    | eb -> pow eb n)
  | Pow (b, n) -> pow (expand_b b) n
  | Fun (f, xs) -> fn f (List.map expand_b xs)
  | Select (c, t, f) ->
    let ec =
      match c with
      | Lt (a, b) -> Lt (expand_b a, expand_b b)
      | Le (a, b) -> Le (expand_b a, expand_b b)
    in
    select ec (expand_b t) (expand_b f)

(* Multiset intersection of factor lists (base, exp) with positive exps. *)
let factor_list t =
  match t with
  | Mul fs -> List.map as_factor fs
  | t -> [ as_factor t ]

let common_factors terms =
  match List.map factor_list terms with
  | [] -> []
  | first :: rest ->
    List.fold_left
      (fun common fs ->
        List.filter_map
          (fun (b, n) ->
            match List.find_opt (fun (b', _) -> equal b b') fs with
            | Some (_, n') when (n > 0) = (n' > 0) ->
              let m = if n > 0 then min n n' else max n n' in
              if m = 0 then None else Some (b, m)
            | _ -> None)
          common)
      first rest

(** Factor out the greatest common monomial of a sum:
    [a*x*y + b*x*z] becomes [x*(a*y + b*z)].  Applied recursively. *)
let rec factor_common e =
  match e with
  | Add xs -> (
    let xs = List.map factor_common xs in
    let common = List.filter (fun (b, _) -> not (is_num b)) (common_factors xs) in
    match common with
    | [] -> add xs
    | common ->
      let g = mul (List.map (fun (b, n) -> pow b n) common) in
      let reduced = List.map (fun t -> factor_common (div t g)) xs in
      mul [ g; add reduced ])
  | Mul xs -> mul (List.map factor_common xs)
  | Pow (b, n) -> pow (factor_common b) n
  | Fun (f, xs) -> fn f (List.map factor_common xs)
  | Diff (x, d) -> Diff (factor_common x, d)
  | Select (c, t, f) -> select c (factor_common t) (factor_common f)
  | e -> e

(** Abstract operation cost used to pick between rewritten forms; division
    and square roots are weighted like the paper's normalized FLOPs. *)
let cost e =
  fold
    (fun acc n ->
      acc
      +
      match n with
      | Add xs -> List.length xs - 1
      | Mul xs -> List.length xs - 1
      | Pow (_, n) -> if n < 0 then 16 + abs n - 1 else n - 1
      | Fun (Sqrt, _) -> 10
      | Fun (Rsqrt, _) -> 2
      | Fun ((Exp | Log | Sin | Cos | Tanh), _) -> 20
      | Fun ((Fabs | Fmin | Fmax), _) -> 1
      | Select _ -> 1
      | _ -> 0)
    0 e

(** Try both expansion and factoring and keep the cheaper form — the
    discretization layer's per-term simplification strategy.  Expansion is
    skipped for very large terms where distribution would blow up. *)
let simplify_term ?(expand_limit = 1500) e =
  let candidates =
    if count_nodes e > expand_limit then [ e; factor_common e ]
    else [ e; expand e; factor_common e; factor_common (expand e) ]
  in
  List.fold_left (fun best c -> if cost c < cost best then c else best) e candidates

(** Substitute fixed model parameters by their numeric values and re-run the
    smart constructors, folding constants throughout ("the symbolic
    parameters which remain fixed during a simulation run are substituted by
    numeric values", §3.3). *)
let freeze_parameters bindings e = subst_syms (List.map (fun (s, v) -> (s, num v)) bindings) e
