(** Symbolic field descriptors.

    A field is a named, multi-component quantity living on a structured grid.
    Cell-centered fields hold one value per cell and component; staggered
    fields hold one value per cell face (used to cache flux values in the
    split kernel variants).  Field descriptors are pure metadata — storage is
    provided by the [Vm] library at execution time. *)

type kind =
  | Cell       (** one value per cell (per component) *)
  | Staggered  (** one value per cell face: component [c] along axis [d] *)

type t = {
  name : string;
  dim : int;         (** spatial dimension, 2 or 3 *)
  components : int;  (** number of components, 1 for scalar fields *)
  kind : kind;
}

let create ?(kind = Cell) ~dim ~components name =
  if dim < 1 || dim > 3 then invalid_arg "Fieldspec.create: dim must be 1..3";
  if components < 1 then invalid_arg "Fieldspec.create: components >= 1";
  { name; dim; components; kind }

let scalar ~dim name = create ~dim ~components:1 name

let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let pp ppf f =
  let k = match f.kind with Cell -> "" | Staggered -> " staggered" in
  Fmt.pf ppf "%s: double[%dD]^%d%s" f.name f.dim f.components k

(** An access to a field value from the "current cell" of a stencil sweep.

    [offsets] is a relative cell offset (length = [field.dim]).
    [component] selects the component, and for staggered fields [face_axis]
    selects which face (the lower face of the offset cell along that axis). *)
type access = {
  field : t;
  offsets : int array;
  component : int;
  face_axis : int;  (** -1 for cell-centered accesses *)
}

let access ?(component = 0) field offsets =
  if Array.length offsets <> field.dim then
    invalid_arg "Fieldspec.access: offset rank mismatch";
  if component < 0 || component >= field.components then
    invalid_arg "Fieldspec.access: component out of range";
  { field; offsets; component; face_axis = -1 }

let staggered_access ?(component = 0) field offsets ~axis =
  if field.kind <> Staggered then
    invalid_arg "Fieldspec.staggered_access: field is not staggered";
  if axis < 0 || axis >= field.dim then
    invalid_arg "Fieldspec.staggered_access: bad axis";
  { (access ~component field offsets) with face_axis = axis }

let center ?(component = 0) field = access ~component field (Array.make field.dim 0)

(** [shift a d k] moves the access [k] cells along axis [d]. *)
let shift a d k =
  let offsets = Array.copy a.offsets in
  offsets.(d) <- offsets.(d) + k;
  { a with offsets }

let compare_access (a : access) (b : access) = Stdlib.compare a b
let equal_access a b = compare_access a b = 0

let pp_access ppf a =
  let off =
    String.concat ","
      (Array.to_list (Array.map string_of_int a.offsets))
  in
  let comp = if a.field.components > 1 then Fmt.str ".%d" a.component else "" in
  let stag = if a.face_axis >= 0 then Fmt.str "@s%d" a.face_axis else "" in
  Fmt.pf ppf "%s[%s]%s%s" a.field.name off comp stag
