(** Global common subexpression elimination.

    Runs across all right-hand sides of a kernel at once ("a global common
    subexpression elimination step is done across all terms", paper §3.3).
    Returns a list of temporary bindings in dependency order plus the
    rewritten expressions.  Single-use temporaries created as a byproduct of
    nested sharing are inlined again in a cleanup pass. *)

open Expr

type binding = string * t

type result = { bindings : binding list; exprs : t list }

let is_atom = function
  | Num _ | Sym _ | Coord _ | Rand _ | Access _ -> true
  | _ -> false

let rebuild_with_children e kids =
  match (e, kids) with
  | (Num _ | Sym _ | Coord _ | Rand _ | Access _), _ -> e
  | Diff (_, d), [ x ] -> Diff (x, d)
  | Add _, xs -> add xs
  | Mul _, xs -> mul xs
  | Pow (_, n), [ b ] -> pow b n
  | Fun (f, _), xs -> fn f xs
  | Select (Lt _, _, _), [ a; b; t; f ] -> select (Lt (a, b)) t f
  | Select (Le _, _, _), [ a; b; t; f ] -> select (Le (a, b)) t f
  | _ -> invalid_arg "Cse.rebuild_with_children: arity mismatch"

let run ?(prefix = "xi_") exprs =
  let counts : (t, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec visit e =
    if not (is_atom e) then begin
      let c = Option.value (Hashtbl.find_opt counts e) ~default:0 in
      Hashtbl.replace counts e (c + 1)
    end;
    List.iter visit (children e)
  in
  List.iter visit exprs;
  let shared : (t, t) Hashtbl.t = Hashtbl.create 256 in
  let bindings = ref [] in
  let n_bindings = ref 0 in
  let fresh () =
    let s = Printf.sprintf "%s%d" prefix !n_bindings in
    incr n_bindings;
    s
  in
  let rec rewrite e =
    if is_atom e then e
    else
      match Hashtbl.find_opt shared e with
      | Some s -> s
      | None ->
        let rewritten = rebuild_with_children e (List.map rewrite (children e)) in
        let count = Option.value (Hashtbl.find_opt counts e) ~default:0 in
        if count >= 2 && not (is_atom rewritten) then begin
          let name = fresh () in
          bindings := (name, rewritten) :: !bindings;
          let s = Sym name in
          Hashtbl.add shared e s;
          s
        end
        else rewritten
  in
  let exprs = List.map rewrite exprs in
  let bindings = List.rev !bindings in
  (* cleanup: inline temporaries referenced exactly once *)
  let uses : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let count_syms e =
    ignore
      (fold
         (fun () n ->
           match n with
           | Sym s when Hashtbl.mem uses s ->
             Hashtbl.replace uses s (Hashtbl.find uses s + 1)
           | _ -> ())
         () e)
  in
  List.iter (fun (name, _) -> Hashtbl.add uses name 0) bindings;
  List.iter (fun (_, rhs) -> count_syms rhs) bindings;
  List.iter count_syms exprs;
  let inlined : (string, t) Hashtbl.t = Hashtbl.create 64 in
  let apply_inline e =
    map_bottom_up
      (function
        | Sym s as node -> (
          match Hashtbl.find_opt inlined s with Some v -> v | None -> node)
        | node -> node)
      e
  in
  let kept =
    List.filter_map
      (fun (name, rhs) ->
        let rhs = apply_inline rhs in
        match Hashtbl.find uses name with
        | 0 -> None
        | 1 ->
          Hashtbl.add inlined name rhs;
          None
        | _ -> Some (name, rhs))
      bindings
  in
  { bindings = kept; exprs = List.map apply_inline exprs }
