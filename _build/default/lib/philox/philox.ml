(** Philox-4x32-10 counter-based random number generator.

    Stateless: each call maps a 128-bit counter and a 64-bit key to four
    32-bit random words (Salmon et al., SC'11 — reference [31] of the
    paper).  The discretization layer keys the generator on (cell index,
    time step) so that cell updates carry no data dependencies (§3.3). *)

let m0 = 0xD2511F53L
let m1 = 0xCD9E8D57L
let w0 = 0x9E3779B9 (* golden ratio *)
let w1 = 0xBB67AE85 (* sqrt 3 - 1 *)

let mask32 = 0xFFFFFFFF

(* 32x32 -> (hi, lo) multiply, via Int64. *)
let mulhilo m x =
  let p = Int64.mul m (Int64.of_int (x land mask32)) in
  let hi = Int64.to_int (Int64.shift_right_logical p 32) land mask32 in
  let lo = Int64.to_int p land mask32 in
  (hi, lo)

type ctr = { c0 : int; c1 : int; c2 : int; c3 : int }
type key = { k0 : int; k1 : int }

let round ctr key =
  let hi0, lo0 = mulhilo m0 ctr.c0 in
  let hi1, lo1 = mulhilo m1 ctr.c2 in
  {
    c0 = hi1 lxor ctr.c1 lxor key.k0;
    c1 = lo1;
    c2 = hi0 lxor ctr.c3 lxor key.k1;
    c3 = lo0;
  }

let bump key = { k0 = (key.k0 + w0) land mask32; k1 = (key.k1 + w1) land mask32 }

(** Ten Philox rounds: counter (c0..c3), key (k0,k1) -> four 32-bit words. *)
let philox4x32_10 ctr key =
  let rec go n ctr key = if n = 0 then ctr else go (n - 1) (round ctr key) (bump key) in
  go 10 ctr key

(** Convenience: 4 words from plain integers. *)
let random_ints ~c0 ~c1 ~c2 ~c3 ~k0 ~k1 =
  let r =
    philox4x32_10
      { c0 = c0 land mask32; c1 = c1 land mask32; c2 = c2 land mask32; c3 = c3 land mask32 }
      { k0 = k0 land mask32; k1 = k1 land mask32 }
  in
  [| r.c0; r.c1; r.c2; r.c3 |]

let two_pow_53 = 9007199254740992.0

(* Combine two 32-bit words into a uniform double in [0, 1): 53 mantissa
   bits taken from (hi, lo). *)
let to_unit_float hi lo =
  let bits = ((hi land mask32) lsl 21) lor ((lo land mask32) lsr 11) in
  float_of_int bits /. two_pow_53

(** Two uniform doubles in [0,1) from one counter/key pair. *)
let random_floats ~c0 ~c1 ~c2 ~c3 ~k0 ~k1 =
  let w = random_ints ~c0 ~c1 ~c2 ~c3 ~k0 ~k1 in
  (to_unit_float w.(0) w.(1), to_unit_float w.(2) w.(3))

(** Uniform double in (-1, 1), as used for the fluctuation term: the kernel
    keys on (cell linear index, time step, stream slot). *)
let symmetric ~cell ~step ~slot =
  let u, v =
    random_floats ~c0:(cell land mask32) ~c1:(cell lsr 32) ~c2:step ~c3:slot ~k0:0x5eed
      ~k1:0xC0FFEE
  in
  ignore v;
  (2. *. u) -. 1.
