(** Size-class memory pool for field-buffer storage (the Petalisp
    [memory-pool] idiom: allocation callbacks backed by per-size free
    lists, so steady-state work does zero fresh allocations).

    Field buffers are padded flat [float array]s whose length is fully
    determined by (field, block dims, ghost width); one size class per
    distinct length therefore recycles storage exactly, with no internal
    fragmentation and no risk of a longer-than-requested array leaking
    into code that iterates [Array.length data].

    Reused arrays are zero-filled on acquire: a pooled allocation is
    observationally identical to [Array.make len 0.], which is what keeps
    farm jobs bitwise-equal to solo runs (oracle 9).

    Accounting is mirrored twice: plain counters served by {!stats} (always
    on, used by tests and the bench gates) and [Obs] counters
    [mempool.hit] / [mempool.miss] / [mempool.high_water_bytes] (visible
    when the sink is armed). *)

type stats = {
  hits : int;  (** acquires served from a free list *)
  misses : int;  (** acquires that had to allocate fresh storage *)
  live_bytes : int;  (** bytes currently checked out *)
  pooled_bytes : int;  (** bytes parked in free lists *)
  high_water_bytes : int;  (** peak footprint (live + pooled) *)
  classes : int;  (** distinct size classes seen *)
}

type t = {
  free : (int, float array list ref) Hashtbl.t;  (** length -> free arrays *)
  mutable hits : int;
  mutable misses : int;
  mutable live_bytes : int;
  mutable pooled_bytes : int;
  mutable high_water_bytes : int;
}

let create () =
  {
    free = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    live_bytes = 0;
    pooled_bytes = 0;
    high_water_bytes = 0;
  }

let bytes_of_len len = 8 * len

let class_of t len =
  match Hashtbl.find_opt t.free len with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.free len l;
    l

let note_high_water t =
  let footprint = t.live_bytes + t.pooled_bytes in
  if footprint > t.high_water_bytes then t.high_water_bytes <- footprint;
  Obs.Metrics.max_gauge (Obs.Metrics.gauge "mempool.high_water_bytes")
    (float_of_int footprint)

(** Check an array of exactly [len] elements out of the pool: a free-list
    hit is zero-filled and recycled, a miss allocates fresh storage. *)
let acquire t len =
  let cls = class_of t len in
  let arr =
    match !cls with
    | arr :: rest ->
      cls := rest;
      t.hits <- t.hits + 1;
      t.pooled_bytes <- t.pooled_bytes - bytes_of_len len;
      Obs.Metrics.incr (Obs.Metrics.counter "mempool.hit");
      Array.fill arr 0 len 0.;
      arr
    | [] ->
      t.misses <- t.misses + 1;
      Obs.Metrics.incr (Obs.Metrics.counter "mempool.miss");
      Array.make len 0.
  in
  t.live_bytes <- t.live_bytes + bytes_of_len len;
  note_high_water t;
  arr

(** Return an array to its size class.  The caller must not touch it
    afterwards ({!Resilience.Preempt.release_block} poisons the buffer it
    came from). *)
let release t arr =
  let len = Array.length arr in
  if len > 0 then begin
    let cls = class_of t len in
    cls := arr :: !cls;
    t.live_bytes <- t.live_bytes - bytes_of_len len;
    t.pooled_bytes <- t.pooled_bytes + bytes_of_len len
  end

(** The [Buffer.create]-shaped allocation callback of this pool. *)
let alloc t len = acquire t len

(** Drop every free list (outstanding arrays stay valid; their release
    after a reset simply repopulates the classes). *)
let reset t =
  Hashtbl.reset t.free;
  t.pooled_bytes <- 0

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    live_bytes = t.live_bytes;
    pooled_bytes = t.pooled_bytes;
    high_water_bytes = t.high_water_bytes;
    classes = Hashtbl.length t.free;
  }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "mempool{hits %d, misses %d, live %d B, pooled %d B, high-water %d B, %d class(es)}"
    s.hits s.misses s.live_bytes s.pooled_bytes s.high_water_bytes s.classes
