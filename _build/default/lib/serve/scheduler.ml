(** Cooperative round-robin farm scheduler.

    Jobs are sliced into [quantum]-timestep slices and multiplexed over
    the one persistent [Vm.Pool]: at most [max_active] jobs are resident
    (buffers live, admission-charged against the memory budget) at a time,
    and one scheduler pass advances every resident job by one quantum.
    Long jobs are preempted after [park_after] consecutive quanta — their
    state is captured by [Resilience.Preempt], their buffers go back to
    the mempool, and the job re-enters the queue to resume later into
    recycled storage.  Crash-injected jobs run every quantum under
    [Resilience.Recovery.run_protected] with a persistent per-job
    checkpoint store.

    Correctness contract (oracle 9): any quantum size, admission order,
    preemption pattern and injected fault schedule yields, per job, a
    final state bitwise identical to {!run_solo} of the same spec —
    because every multiplexing mechanism is individually bitwise-neutral
    (quanta just split [run] loops; snapshots restore ghosts verbatim;
    pooled arrays are zero-filled; pool width, tile shape and backend are
    covered by oracles 7 and 8; crash recovery by oracle 6). *)

type config = {
  quantum : int;  (** timesteps per slice *)
  max_active : int;  (** resident-job cap *)
  budget_bytes : int;  (** admission memory budget *)
  tenant_quota : int;  (** max resident jobs per tenant *)
  park_after : int;  (** preempt after this many consecutive quanta; 0 = never *)
  num_domains : int;  (** pool width of every kernel sweep *)
  autotune : bool;  (** take tile shapes from the shared [Vm.Tune] cache *)
  ckpt_every : int;  (** checkpoint cadence of crash-protected jobs *)
}

let default_config () =
  {
    quantum = 2;
    max_active = 3;
    budget_bytes = 64 * 1024 * 1024;
    tenant_quota = 2;
    park_after = 3;
    num_domains = Vm.Pool.default_domains ();
    autotune = false;
    ckpt_every = 2;
  }

(* Kernel generation is the expensive part of admitting a model family;
   one process-wide cache keyed by family serves the scheduler, the solo
   verifier and repeated farm runs alike. *)
let gens : (Workload.family, Pfcore.Genkernels.t) Hashtbl.t = Hashtbl.create 4

let gen_of family =
  match Hashtbl.find_opt gens family with
  | Some g -> g
  | None ->
    let g = Pfcore.Genkernels.generate (Workload.params_of_family family) in
    Hashtbl.add gens family g;
    g

let variant_of split = if split then Pfcore.Timestep.Split else Pfcore.Timestep.Full

(* ------------------------------------------------------------------ *)
(* Job runtime state                                                   *)
(* ------------------------------------------------------------------ *)

type exec =
  | Single of Pfcore.Timestep.t
  | Forest of Blocks.Forest.t * Resilience.Store.t

type job = {
  spec : Workload.spec;
  bytes : int;  (** admission charge while resident *)
  mutable exec : exec option;  (** [None] while parked *)
  mutable parked : Resilience.Preempt.parked option;
  mutable quanta : int;
  mutable consecutive : int;  (** quanta since last (re)admission *)
  mutable preemptions : int;
  mutable restarts : int;
  mutable tune_hit : bool;
}

type job_result = {
  r_spec : Workload.spec;
  final : Resilience.Snapshot.t;
  r_quanta : int;
  r_preemptions : int;
  r_restarts : int;
  latency_ns : float;  (** batch start to job completion *)
  r_tune_hit : bool;  (** tile plan served from the shared tune cache *)
}

type run_stats = {
  results : job_result list;  (** completion order *)
  rejected : (Workload.spec * string) list;
  queue : Queue.stats;
  mempool : Mempool.stats;
  preemptions : int;
  restarts : int;
  elapsed_ns : float;
}

let step_count job =
  match job.exec with
  | Some (Single sim) -> sim.Pfcore.Timestep.step_count
  | Some (Forest (f, _)) -> Blocks.Forest.step_count f
  | None -> (
    match job.parked with Some p -> p.Resilience.Preempt.snap.Resilience.Snapshot.step | None -> 0)

(* ------------------------------------------------------------------ *)
(* Building and tearing down resident state                            *)
(* ------------------------------------------------------------------ *)

(* Tile shape for this job: from the shared tune cache when autotuning is
   on (probes run once per (model, pool width) fingerprint; every further
   job of the family is a cache hit), otherwise the default slab split. *)
let tile_plan config (job : job) gen =
  if not config.autotune then None
  else begin
    let _, misses0 = Vm.Tune.cache_stats () in
    let plan = Pfcore.Timestep.autotune ~domains:config.num_domains ~probe_n:6 gen in
    let _, misses1 = Vm.Tune.cache_stats () in
    job.tune_hit <- misses1 = misses0;
    plan.Pfcore.Timestep.plan_tile
  end

let activate config mempool (job : job) =
  let spec = job.spec in
  let gen = gen_of spec.Workload.family in
  let alloc = Mempool.alloc mempool in
  let tile = tile_plan config job gen in
  let lane = Obs.Sink.job_lane spec.Workload.id in
  (match spec.Workload.ranks with
  | 1 ->
    let sim =
      Pfcore.Timestep.create ~variant_phi:(variant_of spec.Workload.split)
        ~variant_mu:(variant_of spec.Workload.split) ~num_domains:config.num_domains ?tile
        ~backend:spec.Workload.backend ~lane ~alloc
        ~dims:(Array.make (Workload.dim_of spec) spec.Workload.size)
        gen
    in
    (match job.parked with
    | Some p ->
      Resilience.Preempt.resume_single p sim;
      job.parked <- None
    | None ->
      Workload.init_sim sim ~seed:spec.Workload.seed;
      Pfcore.Timestep.prime sim);
    job.exec <- Some (Single sim)
  | _ ->
    let grid, block_dims = Workload.decomposition spec in
    let forest =
      Blocks.Forest.create ~variant_phi:(variant_of spec.Workload.split)
        ~variant_mu:(variant_of spec.Workload.split) ~num_domains:config.num_domains ?tile
        ~backend:spec.Workload.backend ~alloc ~grid ~block_dims gen
    in
    (match spec.Workload.crash_step with
    | Some k ->
      let plan = Blocks.Faultplan.chaos ~seed:spec.Workload.seed ~crash_step:k () in
      Blocks.Mpisim.set_fault_plan forest.Blocks.Forest.comm (Some plan)
    | None -> ());
    Array.iter
      (fun sim -> Workload.init_sim sim ~seed:spec.Workload.seed)
      forest.Blocks.Forest.sims;
    Blocks.Forest.prime forest;
    job.exec <- Some (Forest (forest, Resilience.Store.create ())));
  job.consecutive <- 0

let release_exec mempool (job : job) =
  let free = Mempool.release mempool in
  (match job.exec with
  | Some (Single sim) -> Resilience.Preempt.release_single ~free sim
  | Some (Forest (f, _)) -> Resilience.Preempt.release ~free f
  | None -> ());
  job.exec <- None

let capture_final (job : job) =
  match job.exec with
  | Some (Single sim) -> Resilience.Snapshot.capture_single sim
  | Some (Forest (f, _)) -> Resilience.Snapshot.capture f
  | None -> invalid_arg "Scheduler.capture_final: job is not resident"

(* ------------------------------------------------------------------ *)
(* Quantum execution                                                   *)
(* ------------------------------------------------------------------ *)

let run_quantum config (job : job) =
  let remaining = job.spec.Workload.steps - step_count job in
  let steps = min config.quantum remaining in
  Obs.Span.in_lane (Obs.Sink.job_lane job.spec.Workload.id) (fun () ->
      Obs.Span.with_ ~cat:"serve"
        ~args:
          [
            ("job", float_of_int job.spec.Workload.id);
            ("steps", float_of_int steps);
          ]
        "quantum"
        (fun () ->
          match job.exec with
          | Some (Single sim) -> Pfcore.Timestep.run sim ~steps
          | Some (Forest (forest, store)) ->
            let stats =
              Resilience.Recovery.run_protected ~store ~every:config.ckpt_every ~steps
                forest
            in
            job.restarts <- job.restarts + stats.Resilience.Recovery.restarts
          | None -> invalid_arg "Scheduler.run_quantum: job is not resident"));
  job.quanta <- job.quanta + 1;
  job.consecutive <- job.consecutive + 1;
  Obs.Metrics.incr (Obs.Metrics.counter "serve.quanta");
  Obs.Metrics.add
    (Obs.Metrics.counter ("serve.tenant." ^ job.spec.Workload.tenant ^ ".steps"))
    steps

(* ------------------------------------------------------------------ *)
(* The scheduler loop                                                  *)
(* ------------------------------------------------------------------ *)

(* The farm owns the pool's lifetime from its side too: its own at_exit
   teardown stacks on the pool's, so process exit exercises exactly the
   double-shutdown idempotence the pool regression test holds it to. *)
let at_exit_registered = Atomic.make false

(** Run [specs] to completion through the farm; returns per-job results in
    completion order plus queue/mempool/preemption accounting. *)
let run ?(config = default_config ()) ~mempool specs =
  if config.quantum < 1 then invalid_arg "Scheduler.run: quantum must be positive";
  if not (Atomic.exchange at_exit_registered true) then
    Stdlib.at_exit Vm.Pool.shutdown;
  if config.max_active < 1 then invalid_arg "Scheduler.run: max_active must be positive";
  let t0 = Obs.Clock.now_ns () in
  let since_start () = Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) in
  let q = Queue.create ~budget_bytes:config.budget_bytes ~tenant_quota:config.tenant_quota () in
  let jobs : (int, job) Hashtbl.t = Hashtbl.create 32 in
  let rejected = ref [] in
  List.iter
    (fun (spec : Workload.spec) ->
      let bytes = Workload.projected_bytes ~gen:(gen_of spec.Workload.family) spec in
      match Queue.submit q spec ~bytes with
      | Queue.Accepted ->
        Hashtbl.replace jobs spec.Workload.id
          {
            spec;
            bytes;
            exec = None;
            parked = None;
            quanta = 0;
            consecutive = 0;
            preemptions = 0;
            restarts = 0;
            tune_hit = false;
          }
      | Queue.Rejected reason -> rejected := (spec, reason) :: !rejected)
    specs;
  let roster = ref [] in
  let results = ref [] in
  let preemptions = ref 0 in
  let restarts = ref 0 in
  let resident_bytes () = List.fold_left (fun acc j -> acc + j.bytes) 0 !roster in
  let tenant_residents tenant =
    List.fold_left
      (fun acc j -> if j.spec.Workload.tenant = tenant then acc + 1 else acc)
      0 !roster
  in
  let admit () =
    let progress = ref false in
    let continue_ = ref true in
    while !continue_ && List.length !roster < config.max_active do
      match Queue.next q ~resident_bytes:(resident_bytes ()) ~tenant_residents with
      | None -> continue_ := false
      | Some (spec, _bytes) ->
        let job = Hashtbl.find jobs spec.Workload.id in
        activate config mempool job;
        roster := !roster @ [ job ];
        progress := true
    done;
    !progress
  in
  let finish job =
    let final = capture_final job in
    release_exec mempool job;
    roster := List.filter (fun j -> j != job) !roster;
    let latency = since_start () in
    Obs.Metrics.incr (Obs.Metrics.counter "serve.jobs_completed");
    Obs.Metrics.incr
      (Obs.Metrics.counter ("serve.tenant." ^ job.spec.Workload.tenant ^ ".jobs"));
    Obs.Metrics.observe (Obs.Metrics.histogram "serve.job_latency_ns") latency;
    restarts := !restarts + job.restarts;
    results :=
      {
        r_spec = job.spec;
        final;
        r_quanta = job.quanta;
        r_preemptions = job.preemptions;
        r_restarts = job.restarts;
        latency_ns = latency;
        r_tune_hit = job.tune_hit;
      }
      :: !results
  in
  let park job =
    (match job.exec with
    | Some (Single sim) ->
      job.parked <- Some (Resilience.Preempt.park_single sim);
      release_exec mempool job
    | _ -> invalid_arg "Scheduler.park: only single-block jobs are preemptible");
    roster := List.filter (fun j -> j != job) !roster;
    job.preemptions <- job.preemptions + 1;
    incr preemptions;
    Obs.Metrics.incr (Obs.Metrics.counter "serve.preemptions");
    Queue.requeue q job.spec ~bytes:job.bytes
  in
  while !roster <> [] || not (Queue.is_empty q) do
    let admitted = admit () in
    if !roster = [] then begin
      if not admitted then
        (* cannot happen while the budget admits every accepted job on an
           empty roster; a violated invariant must fail loudly, not spin *)
        failwith "Scheduler.run: stalled with pending jobs and an empty roster"
    end;
    (* one round-robin pass over a snapshot of the roster: finish/park only
       ever remove the job being processed, so the snapshot stays valid *)
    List.iter
      (fun job ->
        run_quantum config job;
        if step_count job >= job.spec.Workload.steps then finish job
        else if
          config.park_after > 0
          && job.consecutive >= config.park_after
          && job.spec.Workload.ranks = 1
          && not (Queue.is_empty q)
        then park job)
      !roster
  done;
  {
    results = List.rev !results;
    rejected = List.rev !rejected;
    queue = Queue.stats q;
    mempool = Mempool.stats mempool;
    preemptions = !preemptions;
    restarts = !restarts;
    elapsed_ns = since_start ();
  }

(* ------------------------------------------------------------------ *)
(* The solo reference                                                  *)
(* ------------------------------------------------------------------ *)

(** Run [spec] alone, serially, through the reference interpreter with no
    quanta, no pool, no mempool and no faults — the ground truth every
    farm-scheduled execution of the same spec must match bitwise. *)
let run_solo (spec : Workload.spec) =
  let gen = gen_of spec.Workload.family in
  match spec.Workload.ranks with
  | 1 ->
    let sim =
      Pfcore.Timestep.create ~variant_phi:(variant_of spec.Workload.split)
        ~variant_mu:(variant_of spec.Workload.split) ~num_domains:1
        ~backend:Vm.Engine.Interp
        ~dims:(Array.make (Workload.dim_of spec) spec.Workload.size)
        gen
    in
    Workload.init_sim sim ~seed:spec.Workload.seed;
    Pfcore.Timestep.prime sim;
    Pfcore.Timestep.run sim ~steps:spec.Workload.steps;
    Resilience.Snapshot.capture_single sim
  | _ ->
    let grid, block_dims = Workload.decomposition spec in
    let forest =
      Blocks.Forest.create ~variant_phi:(variant_of spec.Workload.split)
        ~variant_mu:(variant_of spec.Workload.split) ~num_domains:1
        ~backend:Vm.Engine.Interp ~grid ~block_dims gen
    in
    Array.iter
      (fun sim -> Workload.init_sim sim ~seed:spec.Workload.seed)
      forest.Blocks.Forest.sims;
    Blocks.Forest.prime forest;
    Blocks.Forest.run forest ~steps:spec.Workload.steps;
    Resilience.Snapshot.capture forest
