(** Priority job queue with tenant quotas and memory admission control.

    Ordering is priority-descending, FIFO within a priority class (ties
    break on submission order, so the queue is deterministic).  Admission
    happens in two stages:

    - {!submit} rejects outright any job whose projected resident bytes
      exceed the whole budget — it could never run;
    - {!next} hands out the best pending job that currently fits: its
      projected bytes must fit in the unused part of the budget and its
      tenant must be below the per-tenant residency quota.  Jobs that are
      skipped stay parked in the queue (counted in {!stats}) and become
      eligible again as residents finish or are preempted away. *)

type entry = {
  spec : Workload.spec;
  bytes : int;  (** projected resident bytes (admission charge) *)
  seqno : int;  (** FIFO tiebreaker within a priority class *)
}

type stats = {
  submitted : int;
  rejected : int;
  parked_budget : int;  (** handout skips because the budget was full *)
  parked_quota : int;  (** handout skips because the tenant was at quota *)
}

type t = {
  budget_bytes : int;
  tenant_quota : int;  (** max resident jobs per tenant *)
  mutable pending : entry list;  (** kept in handout order *)
  mutable seqno : int;
  mutable submitted : int;
  mutable rejected : int;
  mutable parked_budget : int;
  mutable parked_quota : int;
}

let create ?(budget_bytes = 64 * 1024 * 1024) ?(tenant_quota = max_int) () =
  if budget_bytes < 1 then invalid_arg "Queue.create: budget must be positive";
  if tenant_quota < 1 then invalid_arg "Queue.create: tenant quota must be positive";
  {
    budget_bytes;
    tenant_quota;
    pending = [];
    seqno = 0;
    submitted = 0;
    rejected = 0;
    parked_budget = 0;
    parked_quota = 0;
  }

let before a b =
  a.spec.Workload.priority > b.spec.Workload.priority
  || (a.spec.Workload.priority = b.spec.Workload.priority && a.seqno < b.seqno)

let insert t e =
  let rec go = function
    | [] -> [ e ]
    | x :: rest -> if before e x then e :: x :: rest else x :: go rest
  in
  t.pending <- go t.pending

type verdict = Accepted | Rejected of string

(** Submit a job; [bytes] is its projected resident footprint.  A job that
    could never fit the budget is rejected now rather than starving the
    queue forever. *)
let submit t (spec : Workload.spec) ~bytes =
  t.submitted <- t.submitted + 1;
  if bytes > t.budget_bytes then begin
    t.rejected <- t.rejected + 1;
    Obs.Metrics.incr (Obs.Metrics.counter "serve.rejected");
    Rejected
      (Printf.sprintf "projected %d bytes exceed the %d-byte memory budget" bytes
         t.budget_bytes)
  end
  else begin
    insert t { spec; bytes; seqno = t.seqno };
    t.seqno <- t.seqno + 1;
    Accepted
  end

(** A preempted job re-enters the queue keeping its priority; it queues
    behind already-pending peers of the same class (round-robin fairness
    between a parked long job and fresh arrivals). *)
let requeue t (spec : Workload.spec) ~bytes = ignore (submit t spec ~bytes)

(** Hand out the best pending job that fits right now.  [resident_bytes]
    is the admission charge of all currently resident jobs;
    [tenant_residents] counts residents per tenant. *)
let next t ~resident_bytes ~tenant_residents =
  let fits e =
    if resident_bytes + e.bytes > t.budget_bytes then begin
      t.parked_budget <- t.parked_budget + 1;
      Obs.Metrics.incr (Obs.Metrics.counter "serve.parked_budget");
      false
    end
    else if tenant_residents e.spec.Workload.tenant >= t.tenant_quota then begin
      t.parked_quota <- t.parked_quota + 1;
      Obs.Metrics.incr (Obs.Metrics.counter "serve.parked_quota");
      false
    end
    else true
  in
  let rec go skipped = function
    | [] -> None
    | e :: rest ->
      if fits e then begin
        t.pending <- List.rev_append skipped rest;
        Some (e.spec, e.bytes)
      end
      else go (e :: skipped) rest
  in
  go [] t.pending

let is_empty t = t.pending = []
let length t = List.length t.pending

let stats t =
  {
    submitted = t.submitted;
    rejected = t.rejected;
    parked_budget = t.parked_budget;
    parked_quota = t.parked_quota;
  }
