lib/serve/scheduler.ml: Array Atomic Blocks Hashtbl Int64 List Mempool Obs Pfcore Queue Resilience Stdlib Vm Workload
