lib/serve/workload.ml: Array Fmt List Pfcore Philox Symbolic Vm
