lib/serve/mempool.ml: Array Fmt Hashtbl Obs
