lib/serve/queue.ml: List Obs Printf Workload
