lib/resilience/store.ml: List Snapshot
