lib/resilience/preempt.ml: Array Blocks List Obs Pfcore Snapshot Symbolic Vm
