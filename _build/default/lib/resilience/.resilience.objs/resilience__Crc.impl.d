lib/resilience/crc.ml: Array Char Lazy String
