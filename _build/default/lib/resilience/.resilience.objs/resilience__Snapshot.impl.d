lib/resilience/snapshot.ml: Array Blocks Buffer Char Crc Fmt Int32 Int64 List Marshal Obs Pfcore Printf String Symbolic Vm
