lib/resilience/recovery.ml: Blocks Snapshot Store
