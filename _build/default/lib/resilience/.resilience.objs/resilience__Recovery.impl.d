lib/resilience/recovery.ml: Blocks Obs Snapshot Store
