(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    Guards every snapshot against corruption: CRC-32 detects all
    single-byte errors and all burst errors up to 32 bits, so a flipped
    byte in a checkpoint file is rejected with a clean error instead of
    silently resuming from a wrong state. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** Running update: fold bytes [pos, pos+len) of [s] into [crc]
    (pre/post-inversion handled by {!digest}). *)
let update crc s ~pos ~len =
  let t = Lazy.force table in
  let c = ref crc in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c

(** CRC-32 of a whole string, as a non-negative int below 2^32. *)
let digest s = update 0xFFFFFFFF s ~pos:0 ~len:(String.length s) lxor 0xFFFFFFFF
