(** Preemption support for the simulation farm: park a job at a quantum
    boundary, hand its buffer storage back to an allocator, and resume it
    later into freshly allocated (typically pooled) buffers.

    A park is just a {!Snapshot} capture plus an explicit release of the
    backing arrays, and a resume is a restore into a rebuilt block — so
    preemption inherits the snapshot layer's bitwise-exactness contract:
    ghost layers travel with the capture and no re-priming is needed, which
    oracle 9 (farm vs. solo) holds the scheduler to. *)

type parked = {
  snap : Snapshot.t;
  ranks : int;  (** 1 for a single-block job *)
}

let observe kind bytes =
  Obs.Metrics.incr (Obs.Metrics.counter "preempt.parks");
  Obs.Metrics.add (Obs.Metrics.counter "preempt.parked_bytes") bytes;
  Obs.Span.instant ~cat:"serve" kind

(** Capture a single-block job at a quantum boundary. *)
let park_single (sim : Pfcore.Timestep.t) =
  let snap = Snapshot.capture_single sim in
  observe "preempt:park" (Snapshot.state_bytes snap);
  { snap; ranks = 1 }

(** Capture a whole protected forest job at a quantum boundary. *)
let park (forest : Blocks.Forest.t) =
  let snap = Snapshot.capture forest in
  observe "preempt:park" (Snapshot.state_bytes snap);
  { snap; ranks = Blocks.Forest.n_ranks forest }

(* Hand every backing array of [block] to [free] and poison the buffer so
   a stale reference faults loudly instead of aliasing recycled storage. *)
let release_block ~free (block : Vm.Engine.block) =
  List.iter
    (fun ((_ : Symbolic.Fieldspec.t), (buf : Vm.Buffer.t)) ->
      free buf.Vm.Buffer.data;
      buf.Vm.Buffer.data <- [||])
    block.Vm.Engine.buffers

(** Release the field storage of a parked single-block job. *)
let release_single ~free (sim : Pfcore.Timestep.t) =
  release_block ~free sim.Pfcore.Timestep.block

(** Release the field storage of every rank of a parked forest job. *)
let release ~free (forest : Blocks.Forest.t) =
  Array.iter
    (fun (sim : Pfcore.Timestep.t) -> release_block ~free sim.Pfcore.Timestep.block)
    forest.Blocks.Forest.sims

(** Resume a parked single-block job into a freshly built simulation. *)
let resume_single parked (sim : Pfcore.Timestep.t) =
  if parked.ranks <> 1 then
    raise (Snapshot.Invalid "parked job is a forest, not a single block");
  Snapshot.restore_single parked.snap sim;
  Obs.Span.instant ~cat:"serve" "preempt:resume"

(** Resume a parked forest job into a freshly built forest. *)
let resume parked (forest : Blocks.Forest.t) =
  if parked.ranks <> Blocks.Forest.n_ranks forest then
    raise (Snapshot.Invalid "parked job rank count does not match the target forest");
  Snapshot.restore parked.snap forest;
  Obs.Span.instant ~cat:"serve" "preempt:resume"
