(** ECM drift oracle: measured kernel cost vs. the analytic model.

    The paper's pipeline selects kernel variants from ECM predictions
    (Kerncraft workflow, §6); this module closes that loop mechanically.
    Every P1/P2 kernel variant — φ full, φ split, μ full, μ split, eight in
    total — is executed through [Vm.Engine] on a small block and timed with
    the monotonic clock, and the measured per-cell costs are compared
    against [Perfmodel.Ecm] single-core predictions.

    Absolute VM numbers are meaningless (the VM interprets compiled
    closures, not SIMD machine code), so the oracle compares {e ratios}:
    split/full per kernel family and φ/μ per model.  Both sides of a ratio
    run in the same interpreter with the same per-operation overhead, so if
    the generated operation structure matches what the model was fed, the
    ratios must agree up to interpreter noise.  The drift of a pair is

      deviation = |ln (measured_ratio / predicted_ratio)|

    and the oracle's verdict requires every deviation ≤ {!threshold} plus
    the paper's headline ordering: split costs at most as much as full for
    the μ kernels (Table 1 / Fig. 2), both measured and predicted.
    `pfgen drift --check` and the [obs] test suite enforce the verdict. *)

type row = {
  model : string;          (** "P1" or "P2" *)
  variant : string;        (** "phi-full", "phi-split", "mu-full", "mu-split" *)
  measured_ns_per_lup : float;
  predicted_cy_per_lup : float;
}

type pair = {
  label : string;
  measured_ratio : float;
  predicted_ratio : float;
  deviation : float;       (** |ln (measured / predicted)| *)
}

type report = { block_n : int; sweeps : int; rows : row list; pairs : pair list }

(** Documented drift tolerance: a pair is in agreement when its measured
    ratio is within a factor of e^1.2 ≈ 3.3 of the model's.  The VM executes
    every operation as a closure call while the ECM weighs adds, mults,
    divisions and memory traffic differently, so ratios track but do not
    coincide; observed deviations are ≈0.3–0.6 (see EXPERIMENTS.md). *)
let threshold = 1.2

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

(* Same smooth initialization the bench harness uses: phase fields near the
   simplex center so no kernel hits a degenerate denominator. *)
let drift_block (gen : Pfcore.Genkernels.t) ~dims =
  let block = Vm.Engine.make_block ~ghost:2 ~dims (Pfcore.Timestep.field_list gen) in
  let n = float_of_int gen.Pfcore.Genkernels.params.Pfcore.Params.n_phases in
  List.iter
    (fun (_, buf) ->
      Vm.Buffer.init buf (fun c comp ->
          (1. /. n) +. (0.01 *. sin (float_of_int ((c.(0) * 3) + (comp * 7)))));
      Vm.Buffer.periodic buf)
    block.Vm.Engine.buffers;
  block

let runtime_params (gen : Pfcore.Genkernels.t) =
  let p = gen.Pfcore.Genkernels.params in
  ("t", 0.) :: ("dx", p.Pfcore.Params.dx) :: ("dt", p.Pfcore.Params.dt)
  :: gen.Pfcore.Genkernels.bindings

(* Best-of-[reps] time of [sweeps] sweeps of all [kernels] (a split variant
   passes both its sweeps so the measured quantity is cost per full update),
   divided by interior cells and sweeps -> ns per lattice update. *)
let measure_ns_per_lup gen kernels ~dims ~sweeps ~reps =
  let block = drift_block gen ~dims in
  let bounds = List.map (fun k -> Vm.Engine.bind k block) kernels in
  let params = runtime_params gen in
  let sweep step = List.iter (fun b -> Vm.Engine.run ~step ~params b) bounds in
  sweep 0 (* warmup *);
  let best = ref infinity in
  for rep = 1 to reps do
    let (), dt_ns =
      Obs.Clock.time_ns (fun () ->
          for s = 1 to sweeps do
            sweep ((rep * sweeps) + s)
          done)
    in
    if dt_ns < !best then best := dt_ns
  done;
  let cells = float_of_int (Array.fold_left ( * ) 1 dims) in
  !best /. float_of_int sweeps /. cells

let predicted_cy_per_lup machine kernels ~block_n =
  List.fold_left
    (fun acc k ->
      acc
      +. Perfmodel.Ecm.single_core_cycles (Perfmodel.Ecm.predict machine k ~block_n)
         /. float_of_int Perfmodel.Ecm.cacheline_lups)
    0. kernels

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

let variant_kernels (g : Pfcore.Genkernels.t) =
  let split (p : Pfcore.Genkernels.pair) = [ p.Pfcore.Genkernels.stag; p.Pfcore.Genkernels.main ] in
  [
    ("phi-full", [ g.Pfcore.Genkernels.phi_full ]);
    ("phi-split", split g.Pfcore.Genkernels.phi_split);
    ("mu-full", [ Option.get g.Pfcore.Genkernels.mu_full ]);
    ("mu-split", split (Option.get g.Pfcore.Genkernels.mu_split));
  ]

let find rows model variant =
  List.find (fun r -> r.model = model && r.variant = variant) rows

let make_pair rows ~label (ma, va) (mb, vb) =
  let a = find rows ma va and b = find rows mb vb in
  let measured_ratio = a.measured_ns_per_lup /. b.measured_ns_per_lup in
  let predicted_ratio = a.predicted_cy_per_lup /. b.predicted_cy_per_lup in
  { label; measured_ratio; predicted_ratio;
    deviation = Float.abs (Float.log (measured_ratio /. predicted_ratio)) }

(** Run the oracle: measure all eight kernel variants and build the ratio
    pairs.  [n] is the cubic block edge (default 12 — big enough that loop
    overhead is amortized, small enough for the test suite). *)
let run ?(n = 12) ?(sweeps = 2) ?(reps = 3) ?(machine = Perfmodel.Machine.skylake_8174) () =
  let rows =
    List.concat_map
      (fun (model, params) ->
        let g = Pfcore.Genkernels.generate params in
        let dims = Array.make params.Pfcore.Params.dim n in
        List.map
          (fun (variant, kernels) ->
            {
              model;
              variant;
              measured_ns_per_lup = measure_ns_per_lup g kernels ~dims ~sweeps ~reps;
              predicted_cy_per_lup = predicted_cy_per_lup machine kernels ~block_n:n;
            })
          (variant_kernels g))
      [ ("P1", Pfcore.Params.p1 ()); ("P2", Pfcore.Params.p2 ()) ]
  in
  let pairs =
    List.concat_map
      (fun m ->
        [
          make_pair rows ~label:(m ^ " mu split/full") (m, "mu-split") (m, "mu-full");
          make_pair rows ~label:(m ^ " phi split/full") (m, "phi-split") (m, "phi-full");
          make_pair rows ~label:(m ^ " phi/mu (full)") (m, "phi-full") (m, "mu-full");
        ])
      [ "P1"; "P2" ]
  in
  { block_n = n; sweeps; rows; pairs }

let max_deviation r = List.fold_left (fun acc p -> Float.max acc p.deviation) 0. r.pairs

(** The paper's variant-selection ordering for μ, on both sides: measured
    split ≤ full and predicted split ≤ full, for P1 and P2. *)
let mu_ordering_ok r =
  List.for_all
    (fun m ->
      let s = find r.rows m "mu-split" and f = find r.rows m "mu-full" in
      s.measured_ns_per_lup <= f.measured_ns_per_lup
      && s.predicted_cy_per_lup <= f.predicted_cy_per_lup)
    [ "P1"; "P2" ]

(** [Ok ()] when every ratio is within {!threshold} and the μ ordering
    holds; [Error msg] names the first violation. *)
let verdict r =
  if not (mu_ordering_ok r) then
    Error "mu split/full ordering disagrees with the ECM model"
  else
    match List.find_opt (fun p -> p.deviation > threshold) r.pairs with
    | Some p ->
      Error
        (Printf.sprintf "%s drifted: measured ratio %.3f vs model %.3f (deviation %.2f > %.2f)"
           p.label p.measured_ratio p.predicted_ratio p.deviation threshold)
    | None -> Ok ()

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp ppf r =
  Fmt.pf ppf "ECM drift oracle: %d^3 block, %d sweep(s), VM measured vs. model@."
    r.block_n r.sweeps;
  Fmt.pf ppf "%-4s %-10s %16s %16s@." "" "variant" "measured ns/LUP" "model cy/LUP";
  List.iter
    (fun row ->
      Fmt.pf ppf "%-4s %-10s %16.1f %16.1f@." row.model row.variant
        row.measured_ns_per_lup row.predicted_cy_per_lup)
    r.rows;
  Fmt.pf ppf "@.%-20s %14s %14s %10s@." "ratio pair" "measured" "model" "deviation";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-20s %14.3f %14.3f %10.2f@." p.label p.measured_ratio
        p.predicted_ratio p.deviation)
    r.pairs;
  Fmt.pf ppf "max deviation %.2f (threshold %.2f), mu ordering %s@." (max_deviation r)
    threshold
    (if mu_ordering_ok r then "agrees with model" else "DISAGREES with model")

let json_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_json r =
  let row_json row =
    Printf.sprintf
      "{\"model\":%S,\"variant\":%S,\"measured_ns_per_lup\":%s,\"predicted_cy_per_lup\":%s}"
      row.model row.variant (json_num row.measured_ns_per_lup)
      (json_num row.predicted_cy_per_lup)
  in
  let pair_json p =
    Printf.sprintf
      "{\"label\":%S,\"measured_ratio\":%s,\"predicted_ratio\":%s,\"deviation\":%s}"
      p.label (json_num p.measured_ratio) (json_num p.predicted_ratio)
      (json_num p.deviation)
  in
  Printf.sprintf
    "{\"block_n\":%d,\"sweeps\":%d,\"threshold\":%s,\"max_deviation\":%s,\"mu_ordering_ok\":%b,\"rows\":[%s],\"pairs\":[%s]}\n"
    r.block_n r.sweeps (json_num threshold)
    (json_num (max_deviation r))
    (mu_ordering_ok r)
    (String.concat "," (List.map row_json r.rows))
    (String.concat "," (List.map pair_json r.pairs))
