lib/check/obs_props.ml: Array Fun Gen Hashtbl Int64 List Obs Option Printf QCheck String
