lib/check/oracles.ml: Array Blocks Bytes Char Cse Drift Eval Expr Fd Field Fieldspec Float Gen Hashtbl Int64 Ir Lazy List Obs_props Pfcore Philox QCheck Resilience Serve Simplify String Symbolic Vm
