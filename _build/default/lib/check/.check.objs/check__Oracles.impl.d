lib/check/oracles.ml: Array Blocks Cse Eval Expr Fd Field Fieldspec Float Gen Hashtbl Int64 Ir Lazy List Pfcore Philox QCheck Simplify Symbolic Vm
