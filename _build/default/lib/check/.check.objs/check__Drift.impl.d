lib/check/drift.ml: Array Float Fmt List Obs Option Perfmodel Pfcore Printf String Vm
