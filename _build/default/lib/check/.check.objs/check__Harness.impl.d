lib/check/harness.ml: Oracles QCheck QCheck_base_runner Random String Sys
