lib/check/gen.ml: Array Cse Expr Field Fieldspec Float Fmt List Printf QCheck String Symbolic
