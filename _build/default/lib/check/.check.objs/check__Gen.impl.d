lib/check/gen.ml: Cse Expr Field Fieldspec Float Fmt List Printf QCheck Symbolic
