(** Property tests for the observability subsystem ([lib/obs]).

    Three laws back the claims [Obs] makes in its interface docs:

    + metric snapshot {!Obs.Metrics.merge} is associative and commutative
      with {!Obs.Metrics.empty} as the unit — the property that makes
      per-domain / per-run aggregation order-independent;
    + counter snapshots are monotone under adds: a snapshot taken later
      never shows a smaller count, and each add is reflected exactly;
    + the span stream is always well formed — every (pid, tid) track is a
      balanced, properly nested sequence of begin/end pairs with matching
      names and non-decreasing timestamps, even when span bodies raise.

    Numeric values in generated snapshots are integer-valued floats so that
    the FP additions in histogram/gauge merging are exact and the algebraic
    laws hold bitwise. *)

(* ------------------------------------------------------------------ *)
(* Snapshot generator                                                  *)
(* ------------------------------------------------------------------ *)

(* A small shared pool (sorted, as Metrics.snapshot guarantees) so random
   snapshots overlap on some keys and differ on others. *)
let key_pool = [ "alpha"; "beta"; "delta"; "gamma" ]
let histo_bounds = [| 1.; 4.; 16. |]

let gen_histo =
  QCheck.Gen.map2
    (fun buckets sum ->
      {
        Obs.Metrics.hs_bounds = histo_bounds;
        hs_buckets = buckets;
        hs_count = Array.fold_left ( + ) 0 buckets;
        hs_sum = float_of_int sum;
      })
    QCheck.Gen.(array_size (return (Array.length histo_bounds + 1)) (int_bound 20))
    QCheck.Gen.(int_bound 1000)

(* Each key is independently present or absent; the result stays sorted
   because the pool is. *)
let gen_entries gen_v =
  QCheck.Gen.map
    (fun opts -> List.filter_map Fun.id opts)
    (QCheck.Gen.flatten_l
       (List.map
          (fun k -> QCheck.Gen.opt (QCheck.Gen.map (fun v -> (k, v)) gen_v))
          key_pool))

let gen_snapshot =
  QCheck.Gen.map3
    (fun cs gs hs -> { Obs.Metrics.s_counters = cs; s_gauges = gs; s_histograms = hs })
    (gen_entries QCheck.Gen.(int_bound 1000))
    (gen_entries QCheck.Gen.(map float_of_int (int_bound 1000)))
    (gen_entries gen_histo)

let print_snapshot (s : Obs.Metrics.snapshot) =
  Printf.sprintf "{counters=[%s] gauges=[%s] histos=[%s]}"
    (String.concat ";"
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.Obs.Metrics.s_counters))
    (String.concat ";"
       (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) s.Obs.Metrics.s_gauges))
    (String.concat ";"
       (List.map
          (fun (k, (h : Obs.Metrics.histo_snapshot)) ->
            Printf.sprintf "%s:n=%d,sum=%g" k h.Obs.Metrics.hs_count h.Obs.Metrics.hs_sum)
          s.Obs.Metrics.s_histograms))

let arb_snapshot = QCheck.make ~print:print_snapshot gen_snapshot

let merge_laws ~count =
  QCheck.Test.make ~count
    ~name:"obs: snapshot merge is associative, commutative, unit = empty"
    (QCheck.triple arb_snapshot arb_snapshot arb_snapshot)
    (fun (a, b, c) ->
      let open Obs.Metrics in
      merge a (merge b c) = merge (merge a b) c
      && merge a b = merge b a
      && merge empty a = a
      && merge a empty = a)

(* ------------------------------------------------------------------ *)
(* Counter monotonicity                                                *)
(* ------------------------------------------------------------------ *)

(* The registry is a process-global; the property serializes with the rest
   of the system by resetting it around each sample (QCheck samples run
   sequentially). *)
let with_live_registry f =
  Obs.Metrics.reset ();
  let was = Obs.Sink.enabled () in
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      if not was then Obs.Sink.disable ();
      Obs.Sink.clear ();
      Obs.Metrics.reset ())
    f

let counter_monotone ~count =
  QCheck.Test.make ~count ~name:"obs: counter snapshots are monotone under adds"
    QCheck.(
      list_of_size (Gen.int_bound 20)
        (pair (oneofl [ "prop.a"; "prop.b"; "prop.c" ]) small_nat))
    (fun ops ->
      with_live_registry (fun () ->
          let value name =
            Option.value ~default:0
              (Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) name)
          in
          List.for_all
            (fun (name, by) ->
              let before = value name in
              Obs.Metrics.add (Obs.Metrics.counter name) by;
              let after = value name in
              after = before + by && after >= before)
            ops))

(* ------------------------------------------------------------------ *)
(* Span-stream well-formedness                                         *)
(* ------------------------------------------------------------------ *)

(* A random instrumentation program: nested spans across lanes and slice
   tracks, instants, and spans whose bodies raise after their children. *)
type prog =
  | Inst of string
  | Lane of int * prog list
  | Spanned of string * int * bool * prog list  (** name, tid, raise?, children *)

exception Boom

let rec exec p =
  match p with
  | Inst s -> Obs.Span.instant s
  | Lane (l, ps) -> Obs.Span.in_lane l (fun () -> List.iter exec_guard ps)
  | Spanned (name, tid, raises, ps) ->
    Obs.Span.with_ ~tid name (fun () ->
        List.iter exec_guard ps;
        if raises then raise Boom)

(* catch at each child boundary so a raising span doesn't abort its
   siblings — the interesting case is the stream staying balanced anyway *)
and exec_guard p = try exec p with Boom -> ()

let gen_name = QCheck.Gen.oneofl [ "s1"; "s2"; "s3"; "sweep"; "exchange" ]

let gen_prog =
  QCheck.Gen.sized
    (QCheck.Gen.fix (fun self n ->
         if n <= 0 then QCheck.Gen.map (fun s -> Inst s) gen_name
         else
           let children = QCheck.Gen.list_size (QCheck.Gen.int_bound 3) (self (n / 2)) in
           QCheck.Gen.frequency
             [
               (1, QCheck.Gen.map (fun s -> Inst s) gen_name);
               (2, QCheck.Gen.map2 (fun l ps -> Lane (l, ps)) (QCheck.Gen.int_bound 3) children);
               ( 4,
                 QCheck.Gen.map2
                   (fun (name, tid, raises) ps -> Spanned (name, tid, raises, ps))
                   (QCheck.Gen.triple gen_name (QCheck.Gen.int_bound 2) QCheck.Gen.bool)
                   children );
             ]))

let rec print_prog = function
  | Inst s -> Printf.sprintf "i(%s)" s
  | Lane (l, ps) ->
    Printf.sprintf "lane%d[%s]" l (String.concat ";" (List.map print_prog ps))
  | Spanned (name, tid, raises, ps) ->
    Printf.sprintf "%s/t%d%s[%s]" name tid
      (if raises then "!" else "")
      (String.concat ";" (List.map print_prog ps))

(* Stack discipline per (pid, tid) track: B pushes, E pops its own name,
   instants are transparent, everything empty at the end; timestamps never
   go backwards within a track. *)
let stream_well_formed (evs : Obs.Sink.event list) =
  let stacks : (int * int, string list) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int * int, int64) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun (e : Obs.Sink.event) ->
      let key = (e.Obs.Sink.pid, e.Obs.Sink.tid) in
      (match Hashtbl.find_opt last_ts key with
      | Some t when Int64.compare e.Obs.Sink.ts_ns t < 0 -> ok := false
      | _ -> ());
      Hashtbl.replace last_ts key e.Obs.Sink.ts_ns;
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks key) in
      match e.Obs.Sink.phase with
      | Obs.Sink.B -> Hashtbl.replace stacks key (e.Obs.Sink.name :: stack)
      | Obs.Sink.E -> (
        match stack with
        | top :: rest when String.equal top e.Obs.Sink.name ->
          Hashtbl.replace stacks key rest
        | _ -> ok := false)
      | Obs.Sink.I -> ())
    evs;
  Hashtbl.iter (fun _ s -> if s <> [] then ok := false) stacks;
  !ok

let span_nesting ~count =
  QCheck.Test.make ~count
    ~name:"obs: span stream is balanced and nested per track, even under exceptions"
    (QCheck.make ~print:print_prog gen_prog)
    (fun prog ->
      with_live_registry (fun () ->
          Obs.Sink.clear ();
          exec_guard prog;
          stream_well_formed (Obs.Sink.events ())))

let tests ~count =
  [ merge_laws ~count; counter_monotone ~count; span_nesting ~count ]
