(** Liveness analysis over SSA assignment lists.

    Counts how many temporaries are simultaneously alive at any point of a
    schedule — the "alive intermediates" of paper Fig. 2 (right), which
    multiplied by two (doubles occupy two 32-bit registers) approximates the
    register demand of the generated CUDA kernel. *)

open Symbolic
open Field

let used_temps ~defined (e : Expr.t) =
  Expr.fold
    (fun acc n ->
      match n with
      | Expr.Sym s when Hashtbl.mem defined s && not (List.mem s acc) -> s :: acc
      | _ -> acc)
    [] e

(** [last_use assignments]: for each temporary, the index of the assignment
    that reads it last (-1 when never read). *)
let last_use assignments =
  let defined : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Assignment.t) ->
      match a.lhs with Assignment.Temp s -> Hashtbl.replace defined s () | _ -> ())
    assignments;
  let last : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i (a : Assignment.t) ->
      List.iter (fun s -> Hashtbl.replace last s i) (used_temps ~defined a.rhs))
    assignments;
  last

(** Maximum number of simultaneously alive temporaries over the schedule. *)
let max_live assignments =
  let last = last_use assignments in
  let alive = ref 0 and peak = ref 0 in
  List.iteri
    (fun i (a : Assignment.t) ->
      (match a.lhs with
      | Assignment.Temp s -> if Hashtbl.mem last s then incr alive
      | Assignment.Store _ -> ());
      if !alive > !peak then peak := !alive;
      (* kill temporaries whose last use is this statement *)
      Hashtbl.iter (fun _ j -> if j = i then decr alive) last)
    assignments;
  !peak

(** Estimated 32-bit register demand: two registers per live double plus a
    fixed overhead for indexing and loop state. *)
let register_estimate ?(overhead = 24) assignments = (2 * max_live assignments) + overhead

(** Model of nvcc's load hoisting: the compiler "tries to move as many loads
    as possible to the beginning of a block" (paper §3.5), lengthening live
    ranges.  Hoists every assignment whose rhs reads only field accesses,
    constants and parameters to the front, keeping relative order. *)
let nvcc_load_hoist assignments =
  let defined : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Assignment.t) ->
      match a.lhs with Assignment.Temp s -> Hashtbl.replace defined s () | _ -> ())
    assignments;
  let is_load (a : Assignment.t) =
    match a.lhs with
    | Assignment.Store _ -> false
    | Assignment.Temp _ -> used_temps ~defined a.rhs = []
  in
  let loads, rest = List.partition is_load assignments in
  loads @ rest
