(** GPU register-usage transformation pipeline (paper §3.5, Fig. 2 right).

    Three transformations act on the kernel's SSA assignment list before it
    is handed to the (modeled) nvcc compiler:

    - [Sched beam]: Kessler-style beam rescheduling to minimize peak
      liveness;
    - [Remat policy]: rematerialize cheap long-lived intermediates;
    - [Fence stride]: insert [__threadfence()]-like barriers every [stride]
      statements.  Fences do not change our statement order but restrict the
      modeled compiler's load hoisting to fence-delimited segments,
      "reducing the amount of reordering of instructions by the compiler".

    The nvcc model captures the paper's observation that the compiler moves
    loads to the beginning of a block (lengthening live ranges) unless
    fences stop it. *)

open Field

type transform =
  | Sched of int          (** beam width; 1 = greedy *)
  | Remat of Remat.policy
  | Fence of int          (** statements between fences *)

let name = function
  | Sched b -> Printf.sprintf "sched(%d)" b
  | Remat _ -> "dupl"
  | Fence s -> Printf.sprintf "fence(%d)" s

(* Fences only matter for the compiler model; record the stride. *)
type result = { body : Assignment.t list; fence_stride : int option }

let apply transforms body =
  List.fold_left
    (fun acc t ->
      match t with
      | Sched beam -> { acc with body = Kessler.schedule ~beam acc.body }
      | Remat policy -> { acc with body = Remat.run ~policy acc.body }
      | Fence stride -> { acc with fence_stride = Some stride })
    { body; fence_stride = None }
    transforms

(* Segment-wise nvcc load hoisting: without fences the whole body is one
   segment. *)
let nvcc_schedule result =
  match result.fence_stride with
  | None -> Liveness.nvcc_load_hoist result.body
  | Some stride ->
    let rec split acc cur k = function
      | [] -> List.rev (List.rev cur :: acc)
      | x :: rest ->
        if k = stride then split (List.rev cur :: acc) [ x ] 1 rest
        else split acc (x :: cur) (k + 1) rest
    in
    let segments = split [] [] 0 result.body in
    List.concat_map Liveness.nvcc_load_hoist segments

(** Register counts as in Fig. 2 (right): [analysis] counts alive
    intermediates ×2 on our own schedule; [nvcc] is the modeled compiler
    allocation after its reordering. *)
type registers = { analysis : int; nvcc : int }

let registers result =
  {
    analysis = Liveness.register_estimate result.body;
    nvcc = Liveness.register_estimate (nvcc_schedule result);
  }

(** Modeled runtime of the transformed kernel on a device.  Remat may have
    changed the FLOP count, so it is recounted. *)
let modeled_time dev result =
  let counts = Opcount.of_assignments result.body in
  let flops = Opcount.normalized counts in
  let bytes = float_of_int ((8 * counts.Opcount.loads) + (16 * counts.Opcount.stores)) in
  Device.time_per_lup_ns dev ~flops ~bytes ~registers:(registers result).nvcc
