lib/gpumodel/kessler.ml: Array Assignment Bytes Char Field Fun Hashtbl List Stdlib Symbolic
