lib/gpumodel/remat.ml: Assignment Expr Field Hashtbl List Option Simplify Symbolic
