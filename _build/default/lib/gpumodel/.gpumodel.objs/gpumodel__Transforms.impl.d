lib/gpumodel/transforms.ml: Assignment Device Field Kessler List Liveness Opcount Printf Remat
