lib/gpumodel/evotune.ml: Array List Philox Remat Transforms
