lib/gpumodel/liveness.ml: Assignment Expr Field Hashtbl List Symbolic
