lib/gpumodel/device.ml: Float
