(** Evolutionary tuning of GPU transformation sequences (paper §3.5).

    The transformations interact non-linearly ("the effects of multiple
    transformations do not add up linearly but can decrease or amplify each
    other"), so a small genetic algorithm searches sequences and their
    parameters for minimal modeled runtime.  Randomness comes from Philox,
    keyed on a user seed: tuning is fully deterministic. *)

type genome = Transforms.transform list

type outcome = { genome : genome; time_ns : float; registers : Transforms.registers }

(* Philox-backed uniform integer in [0, n). *)
let uniform ~seed ~ctr n =
  let w = Philox.random_ints ~c0:ctr ~c1:(ctr lsr 31) ~c2:0xe70 ~c3:0 ~k0:seed ~k1:0xEA7 in
  w.(0) mod n

let gene_pool =
  [|
    Transforms.Sched 1;
    Transforms.Sched 5;
    Transforms.Sched 20;
    Transforms.Sched 50;
    Transforms.Remat Remat.default;
    Transforms.Remat { Remat.max_cost = 2; max_uses = 8; leaves_only = true };
    Transforms.Remat { Remat.max_cost = 8; max_uses = 3; leaves_only = false };
    Transforms.Fence 16;
    Transforms.Fence 32;
    Transforms.Fence 64;
  |]

let random_genome ~seed ~ctr =
  let len = 1 + uniform ~seed ~ctr:(ctr * 7) 3 in
  List.init len (fun i ->
      gene_pool.(uniform ~seed ~ctr:((ctr * 13) + i) (Array.length gene_pool)))

let mutate ~seed ~ctr genome =
  let genome = Array.of_list genome in
  let i = uniform ~seed ~ctr (max 1 (Array.length genome)) in
  if Array.length genome = 0 then random_genome ~seed ~ctr
  else begin
    genome.(i) <- gene_pool.(uniform ~seed ~ctr:(ctr + 1) (Array.length gene_pool));
    Array.to_list genome
  end

let crossover a b =
  let rec take n = function [] -> [] | x :: r -> if n = 0 then [] else x :: take (n - 1) r in
  let rec drop n = function [] -> [] | _ :: r as l -> if n = 0 then l else drop (n - 1) r in
  take 1 a @ drop 1 b

let evaluate dev body genome =
  let result = Transforms.apply genome body in
  { genome; time_ns = Transforms.modeled_time dev result; registers = Transforms.registers result }

(** Run the GA and return outcomes sorted best-first (including the empty
    genome as baseline). *)
let tune ?(seed = 42) ?(population = 12) ?(generations = 8) dev body =
  let eval = evaluate dev body in
  let initial = List.init population (fun i -> random_genome ~seed ~ctr:(i + 1)) in
  let rec go gen pool =
    let scored = List.map eval pool |> List.sort (fun a b -> compare a.time_ns b.time_ns) in
    if gen = 0 then scored
    else begin
      let elite = List.filteri (fun i _ -> i < max 2 (population / 4)) scored in
      let parents = Array.of_list (List.map (fun o -> o.genome) elite) in
      let children =
        List.init (population - Array.length parents) (fun i ->
            let ctr = (gen * 1000) + i in
            let a = parents.(uniform ~seed ~ctr (Array.length parents)) in
            let b = parents.(uniform ~seed ~ctr:(ctr + 17) (Array.length parents)) in
            mutate ~seed ~ctr:(ctr + 31) (crossover a b))
      in
      go (gen - 1) (List.map (fun o -> o.genome) elite @ children)
    end
  in
  let final = go generations initial in
  let baseline = eval [] in
  List.sort (fun a b -> compare a.time_ns b.time_ns) (baseline :: final)
