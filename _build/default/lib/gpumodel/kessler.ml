(** Register-pressure-minimizing statement scheduling.

    Adaptation of Kessler's optimal expression-DAG scheduling (paper ref.
    [34]) to a beam-search heuristic, exactly as §3.5 describes: a
    breadth-first enumeration of topological orders that deduplicates
    partial schedules with identical scheduled sets and keeps only the
    [beam] best (lowest peak liveness) candidates per step. *)

open Field

type dag = {
  assignments : Assignment.t array;
  preds : int list array;  (** operand definitions *)
  succs : int list array;
  n_users : int array;     (** how many statements read each definition *)
}

let build assignments =
  let arr = Array.of_list assignments in
  let n = Array.length arr in
  let def_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (a : Assignment.t) ->
      match a.lhs with Assignment.Temp s -> Hashtbl.replace def_of s i | _ -> ())
    arr;
  let preds = Array.make n [] and succs = Array.make n [] and n_users = Array.make n 0 in
  Array.iteri
    (fun i (a : Assignment.t) ->
      let ps =
        List.filter_map (fun s -> Hashtbl.find_opt def_of s) (Symbolic.Expr.free_syms a.rhs)
        |> List.sort_uniq Stdlib.compare
      in
      preds.(i) <- ps;
      List.iter
        (fun p ->
          succs.(p) <- i :: succs.(p);
          n_users.(p) <- n_users.(p) + 1)
        ps)
    arr;
  { assignments = arr; preds; succs; n_users }

type state = {
  mask : Bytes.t;
  remaining : int array;  (** unscheduled users left, per definition *)
  live : int;
  peak : int;
  order : int list;  (** reversed schedule *)
}

let in_mask mask i = Char.code (Bytes.get mask (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add_mask mask i =
  let b = Bytes.copy mask in
  Bytes.set b (i lsr 3) (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))));
  b

(** Schedule the assignment list, returning a reordering with (near-)minimal
    peak liveness.  Stores keep their relative order with respect to each
    other to preserve any aliasing semantics. *)
let schedule ?(beam = 20) assignments =
  let dag = build assignments in
  let n = Array.length dag.assignments in
  if n = 0 then assignments
  else begin
    (* store ordering chain: each store depends on the previous store *)
    let stores =
      List.filter
        (fun i ->
          match dag.assignments.(i).Assignment.lhs with
          | Assignment.Store _ -> true
          | Assignment.Temp _ -> false)
        (List.init n Fun.id)
    in
    let store_pred = Hashtbl.create 16 in
    let rec chain = function
      | a :: (b :: _ as rest) ->
        Hashtbl.replace store_pred b a;
        chain rest
      | _ -> ()
    in
    chain stores;
    let preds i =
      match Hashtbl.find_opt store_pred i with
      | Some p -> p :: dag.preds.(i)
      | None -> dag.preds.(i)
    in
    let initial =
      {
        mask = Bytes.make ((n + 7) / 8) '\000';
        remaining = Array.copy dag.n_users;
        live = 0;
        peak = 0;
        order = [];
      }
    in
    let expand st =
      let candidates = ref [] in
      for i = 0 to n - 1 do
        if (not (in_mask st.mask i)) && List.for_all (in_mask st.mask) (preds i) then begin
          let frees =
            List.fold_left
              (fun acc p -> if st.remaining.(p) = 1 then acc + 1 else acc)
              0 dag.preds.(i)
          in
          let defines =
            match dag.assignments.(i).Assignment.lhs with
            | Assignment.Temp _ when dag.n_users.(i) > 0 -> 1
            | _ -> 0
          in
          let live = st.live + defines in
          let peak = max st.peak live in
          let remaining = Array.copy st.remaining in
          List.iter (fun p -> remaining.(p) <- remaining.(p) - 1) dag.preds.(i);
          candidates :=
            {
              mask = add_mask st.mask i;
              remaining;
              live = live - frees;
              peak;
              order = i :: st.order;
            }
            :: !candidates
        end
      done;
      !candidates
    in
    let step states =
      let all = List.concat_map expand states in
      (* deduplicate identical scheduled sets: same path forward *)
      let table : (Bytes.t, state) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun st ->
          match Hashtbl.find_opt table st.mask with
          | Some best when (best.peak, best.live) <= (st.peak, st.live) -> ()
          | _ -> Hashtbl.replace table st.mask st)
        all;
      let uniq = Hashtbl.fold (fun _ st acc -> st :: acc) table [] in
      let sorted = List.sort (fun a b -> Stdlib.compare (a.peak, a.live) (b.peak, b.live)) uniq in
      List.filteri (fun i _ -> i < beam) sorted
    in
    let rec go states k = if k = 0 then states else go (step states) (k - 1) in
    match go [ initial ] n with
    | best :: _ -> List.rev_map (fun i -> dag.assignments.(i)) best.order
    | [] -> assignments
  end
