(** Rematerialization — selectively undoing CSE (paper §3.5).

    CSE creates many small, long-lived intermediates.  Temporaries that are
    cheap to recompute and whose operands sit at the top of the dependency
    graph (constants, field accesses, parameters) are inlined back into
    their use sites, trading a few extra FLOPs for shorter live ranges. *)

open Symbolic
open Field

(** Tunable policy, the "considered properties of assignments" the
    evolutionary tuner searches over. *)
type policy = {
  max_cost : int;   (** recompute cost ceiling (normalized FLOPs) *)
  max_uses : int;   (** do not duplicate into more than this many sites *)
  leaves_only : bool;  (** require operands to be atoms (graph top) *)
}

let default = { max_cost = 4; max_uses = 4; leaves_only = true }

let run ?(policy = default) assignments =
  let defined : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Assignment.t) ->
      match a.lhs with Assignment.Temp s -> Hashtbl.replace defined s () | _ -> ())
    assignments;
  let uses : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Assignment.t) ->
      List.iter
        (fun s ->
          if Hashtbl.mem defined s then
            Hashtbl.replace uses s (1 + Option.value (Hashtbl.find_opt uses s) ~default:0))
        (Expr.free_syms a.rhs))
    assignments;
  let reads_temp e =
    List.exists (fun s -> Hashtbl.mem defined s) (Expr.free_syms e)
  in
  let inline_table : (string, Expr.t) Hashtbl.t = Hashtbl.create 32 in
  let apply e =
    Expr.map_bottom_up
      (function
        | Expr.Sym s as node -> (
          match Hashtbl.find_opt inline_table s with Some v -> v | None -> node)
        | node -> node)
      e
  in
  List.filter_map
    (fun (a : Assignment.t) ->
      let rhs = apply a.rhs in
      match a.lhs with
      | Assignment.Temp s
        when Simplify.cost rhs <= policy.max_cost
             && Option.value (Hashtbl.find_opt uses s) ~default:0 <= policy.max_uses
             && ((not policy.leaves_only) || not (reads_temp rhs)) ->
        Hashtbl.replace inline_table s rhs;
        None
      | _ -> Some { a with rhs })
    assignments
