(** GPU device model (NVIDIA Tesla P100, Piz Daint).

    Occupancy and runtime follow the standard CUDA occupancy calculation:
    the register file limits resident warps, resident warps determine how
    much of the arithmetic/memory latency can be hidden, and register
    spilling past the 255-register architectural ceiling costs extra
    local-memory traffic.  This is the cost model behind the paper's
    Fig. 2 (right): scheduling below 255 registers eliminates spilling
    (+50%), and below 128 doubles occupancy (×2 total). *)

type t = {
  name : string;
  sm_count : int;
  clock_ghz : float;
  dp_flops_per_cycle_per_sm : int;  (** P100: 32 DP lanes × 2 (FMA) *)
  mem_bw_gbytes : float;
  registers_per_sm : int;
  max_registers_per_thread : int;
  max_warps_per_sm : int;
  threads_per_block : int;
}

let p100 =
  {
    name = "Tesla P100";
    sm_count = 56;
    clock_ghz = 1.33;
    dp_flops_per_cycle_per_sm = 64;
    mem_bw_gbytes = 732.;
    registers_per_sm = 65536;
    max_registers_per_thread = 255;
    max_warps_per_sm = 64;
    threads_per_block = 128;
  }

(** Occupancy (fraction of maximum resident warps) for a kernel using
    [registers] 32-bit registers per thread.  Register allocation is
    capped at the architectural maximum; demand beyond it spills. *)
let occupancy dev ~registers =
  let allocated = min registers dev.max_registers_per_thread in
  let warps_by_regs = dev.registers_per_sm / (allocated * 32) in
  let warps = min dev.max_warps_per_sm warps_by_regs in
  float_of_int warps /. float_of_int dev.max_warps_per_sm

(** Spill traffic factor: registers demanded beyond the cap go to local
    memory; each spilled double costs a store+load round trip per use. *)
let spill_penalty dev ~registers =
  if registers <= dev.max_registers_per_thread then 1.0
  else
    1.0
    +. (0.5
        *. float_of_int (registers - dev.max_registers_per_thread)
        /. float_of_int dev.max_registers_per_thread)

(** Modeled kernel time per lattice update (nanoseconds).

    - compute time: normalized FLOPs over the DP throughput;
    - memory time: streamed bytes over HBM bandwidth;
    - latency hiding: effectiveness grows with occupancy (an occupancy of
      ~50% is enough to saturate; below that, time inflates);
    - spilling multiplies the memory component. *)
let time_per_lup_ns dev ~flops ~bytes ~registers =
  let occ = occupancy dev ~registers in
  let peak_flops = float_of_int dev.sm_count *. dev.clock_ghz *. 1e9 *. float_of_int dev.dp_flops_per_cycle_per_sm in
  (* achievable utilization saturates with occupancy (Little's law) *)
  let latency_factor = Float.min 1.0 (occ /. 0.5) in
  let t_comp = float_of_int flops /. (peak_flops *. 0.65 *. latency_factor) *. 1e9 in
  let t_mem =
    bytes *. spill_penalty dev ~registers
    /. (dev.mem_bw_gbytes *. 1e9 *. Float.min 1.0 (occ /. 0.25))
    *. 1e9
  in
  Float.max t_comp t_mem

(** Modeled MLUP/s for one kernel sweep. *)
let mlups dev ~flops ~bytes ~registers = 1e3 /. time_per_lup_ns dev ~flops ~bytes ~registers
