lib/energy/varder.ml: Expr List Symbolic
