lib/energy/functional.ml: Array Expr Float List Symbolic
