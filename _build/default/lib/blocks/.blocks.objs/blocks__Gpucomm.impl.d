lib/blocks/gpucomm.ml: Array Float Gpumodel Netmodel
