lib/blocks/mpisim.ml: Array Hashtbl Queue
