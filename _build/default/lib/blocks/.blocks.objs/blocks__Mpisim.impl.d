lib/blocks/mpisim.ml: Array Faultplan Hashtbl List Option Printexc Printf Queue String
