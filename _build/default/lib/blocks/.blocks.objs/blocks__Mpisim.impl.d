lib/blocks/mpisim.ml: Array Faultplan Hashtbl List Obs Option Printexc Printf Queue String
