lib/blocks/faultplan.ml: Fmt Philox Printf
