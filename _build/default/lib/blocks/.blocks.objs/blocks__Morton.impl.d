lib/blocks/morton.ml: Array Float List
