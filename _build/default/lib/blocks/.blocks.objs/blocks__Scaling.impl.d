lib/blocks/scaling.ml: Array Float Netmodel
