lib/blocks/forest.ml: Array Fieldspec Ghost List Mpisim Obs Pfcore Symbolic Vm
