lib/blocks/forest.ml: Array Fieldspec Ghost Mpisim Pfcore Symbolic Vm
