lib/blocks/forest.ml: Array Fieldspec Ghost Mpisim Obs Pfcore Symbolic Vm
