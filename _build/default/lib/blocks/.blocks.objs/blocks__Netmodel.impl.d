lib/blocks/netmodel.ml:
