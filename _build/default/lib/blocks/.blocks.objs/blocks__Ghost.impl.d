lib/blocks/ghost.ml: Array Mpisim Printexc Printf Vm
