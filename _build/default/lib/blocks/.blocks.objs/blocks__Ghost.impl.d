lib/blocks/ghost.ml: Array Mpisim Obs Printexc Printf Vm
