lib/blocks/ghost.ml: Array Vm
