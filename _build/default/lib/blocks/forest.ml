(** Block forest: distributed-memory execution of Algorithm 1 (paper §4).

    The global domain is partitioned into a Cartesian grid of equally sized
    blocks, one per simulated rank, with periodic boundaries.  Each step
    runs the kernel phases on every rank in lockstep and performs the
    ghost-layer exchange through the message-passing substrate.  A
    multi-rank run is numerically identical to the single-block run of the
    same global domain (verified by the integration tests). *)

open Symbolic

type t = {
  comm : Mpisim.t;
  grid : int array;          (** ranks per axis *)
  block_dims : int array;
  global_dims : int array;
  sims : Pfcore.Timestep.t array;
  overlap : bool;
      (** overlap the φ_dst ghost exchange with the μ interior sweep
          (paper §7 inner/outer kernel split) *)
}

let n_ranks t = Array.length t.sims

let rank_coords grid r =
  let dim = Array.length grid in
  let c = Array.make dim 0 in
  let rec go d r = if d < dim then (c.(d) <- r mod grid.(d); go (d + 1) (r / grid.(d))) in
  go 0 r;
  c

let rank_of_coords grid c =
  let dim = Array.length grid in
  let rec go d acc = if d < 0 then acc else go (d - 1) ((acc * grid.(d)) + c.(d)) in
  go (dim - 1) 0

(** Neighbor rank along [axis] in direction [dir] (periodic). *)
let neighbor t rank ~axis ~dir =
  let c = rank_coords t.grid rank in
  c.(axis) <- ((c.(axis) + dir) mod t.grid.(axis) + t.grid.(axis)) mod t.grid.(axis);
  rank_of_coords t.grid c

let create ?(variant_phi = Pfcore.Timestep.Full) ?(variant_mu = Pfcore.Timestep.Full)
    ?num_domains ?tile ?backend ?alloc ?(overlap = false) ~grid ~block_dims
    (gen : Pfcore.Genkernels.t) =
  let dim = Array.length block_dims in
  if Array.length grid <> dim then invalid_arg "Forest.create: rank mismatch";
  let global_dims = Array.mapi (fun d n -> n * grid.(d)) block_dims in
  let ranks = Array.fold_left ( * ) 1 grid in
  let comm = Mpisim.create ranks in
  let sims =
    Array.init ranks (fun r ->
        let c = rank_coords grid r in
        let offset = Array.mapi (fun d n -> c.(d) * n) block_dims in
        Pfcore.Timestep.create ~variant_phi ~variant_mu ?num_domains ?tile ?backend
          ?alloc ~rank:r ~dims:block_dims ~global_dims ~offset gen)
  in
  { comm; grid; block_dims; global_dims; sims; overlap }

(** Exchange ghost layers of [field] across all ranks, axis by axis,
    through the self-healing sequenced protocol ({!Ghost.fetch}): drops,
    delays and duplicates injected by a fault plan are healed in place; a
    dead neighbor surfaces as [Ghost.Rank_crashed] for the recovery driver
    to roll back.  Crashed ranks neither send nor receive. *)
let post_axis_sends t (field : Fieldspec.t) ~axis =
  let tag_low = axis * 2 and tag_high = (axis * 2) + 1 in
  Array.iteri
    (fun r (sim : Pfcore.Timestep.t) ->
      if Mpisim.live t.comm r then begin
        let buf = Vm.Engine.buffer sim.Pfcore.Timestep.block field in
        Ghost.send_slab t.comm ~src:r ~dst:(neighbor t r ~axis ~dir:(-1)) ~tag:tag_low
          buf ~axis ~side:Ghost.Low;
        Ghost.send_slab t.comm ~src:r ~dst:(neighbor t r ~axis ~dir:1) ~tag:tag_high
          buf ~axis ~side:Ghost.High
      end)
    t.sims

let drain_axis_recvs t (field : Fieldspec.t) ~axis =
  let tag_low = axis * 2 and tag_high = (axis * 2) + 1 in
  Array.iteri
    (fun r (sim : Pfcore.Timestep.t) ->
      if Mpisim.live t.comm r then begin
        let buf = Vm.Engine.buffer sim.Pfcore.Timestep.block field in
        (* the high slab of my low neighbor fills my low ghosts *)
        Ghost.recv_slab t.comm ~src:(neighbor t r ~axis ~dir:(-1)) ~dst:r ~tag:tag_high
          buf ~axis ~side:Ghost.Low;
        Ghost.recv_slab t.comm ~src:(neighbor t r ~axis ~dir:1) ~dst:r ~tag:tag_low
          buf ~axis ~side:Ghost.High
      end)
    t.sims

let exchange_slabs t (field : Fieldspec.t) =
  for axis = 0 to Array.length t.block_dims - 1 do
    post_axis_sends t field ~axis;
    drain_axis_recvs t field ~axis
  done

let exchange t (field : Fieldspec.t) =
  (* the exchange involves all ranks, so its span lives on the process lane *)
  Obs.Span.in_lane 0 (fun () ->
      Obs.Span.with_ ~cat:"comm" ("exchange:" ^ field.Fieldspec.name) (fun () ->
          exchange_slabs t field))

let fields (t : t) = (Array.get t.sims 0).Pfcore.Timestep.gen.Pfcore.Genkernels.fields

let has_mu t =
  Pfcore.Params.n_mu (Array.get t.sims 0).Pfcore.Timestep.gen.Pfcore.Genkernels.params > 0

(** Prime source-field ghosts after initial conditions have been written. *)
let prime t =
  exchange t (fields t).Pfcore.Model.phi_src;
  if has_mu t then exchange t (fields t).Pfcore.Model.mu_src

let step_count t = (Array.get t.sims 0).Pfcore.Timestep.step_count

(* Nonblocking axis-0 exchange of [field]: eager isends (assigning the
   same per-channel sequence numbers the blocking path would), then the
   receive requests in the exact drain order of [drain_axis_recvs] — so
   the overlapped exchange consumes a message stream identical to the
   sequential one, which is what keeps the two modes bitwise equal. *)
let post_axis0_overlap t (field : Fieldspec.t) =
  let axis = 0 in
  let tag_low = 0 and tag_high = 1 in
  Array.iteri
    (fun r (sim : Pfcore.Timestep.t) ->
      if Mpisim.live t.comm r then begin
        let buf = Vm.Engine.buffer sim.Pfcore.Timestep.block field in
        Ghost.isend_slab t.comm ~src:r ~dst:(neighbor t r ~axis ~dir:(-1)) ~tag:tag_low
          buf ~axis ~side:Ghost.Low;
        Ghost.isend_slab t.comm ~src:r ~dst:(neighbor t r ~axis ~dir:1) ~tag:tag_high
          buf ~axis ~side:Ghost.High
      end)
    t.sims;
  let pending = ref [] in
  Array.iteri
    (fun r (sim : Pfcore.Timestep.t) ->
      if Mpisim.live t.comm r then begin
        let buf = Vm.Engine.buffer sim.Pfcore.Timestep.block field in
        pending :=
          Ghost.irecv_slab t.comm ~src:(neighbor t r ~axis ~dir:(-1)) ~dst:r ~tag:tag_high
            buf ~axis ~side:Ghost.Low
          :: !pending;
        pending :=
          Ghost.irecv_slab t.comm ~src:(neighbor t r ~axis ~dir:1) ~dst:r ~tag:tag_low
            buf ~axis ~side:Ghost.High
          :: !pending
      end)
    t.sims;
  List.rev !pending

let step_sequential t =
  let each f = Array.iteri (fun r sim -> if Mpisim.live t.comm r then f sim) t.sims in
  each Pfcore.Timestep.phase_phi;
  exchange t (fields t).Pfcore.Model.phi_dst;
  each Pfcore.Timestep.phase_mu;
  if has_mu t then exchange t (fields t).Pfcore.Model.mu_dst;
  each Pfcore.Timestep.finish

(* Overlapped step (paper §7): post the axis-0 φ_dst exchange nonblocking,
   run the deep-interior μ sweep — whose cells provably never read the
   ghost layer (cumulative stencil halo, [Pfcore.Timestep.mu_chain]) —
   while those messages are in flight, then complete the exchange
   (remaining axes must follow axis 0 sequentially for corner propagation)
   and sweep the halo shell.  Models without a μ family have nothing to
   hide the exchange behind and fall back to the sequential order. *)
let step_overlapped t =
  let each f = Array.iteri (fun r sim -> if Mpisim.live t.comm r then f sim) t.sims in
  each Pfcore.Timestep.phase_phi;
  if not (has_mu t) then begin
    exchange t (fields t).Pfcore.Model.phi_dst;
    each Pfcore.Timestep.finish
  end
  else begin
    let phi_dst = (fields t).Pfcore.Model.phi_dst in
    let pending =
      Obs.Span.in_lane 0 (fun () ->
          Obs.Span.with_ ~cat:"comm" ("exchange.overlap:" ^ phi_dst.Fieldspec.name)
            (fun () -> post_axis0_overlap t phi_dst))
    in
    each Pfcore.Timestep.phase_mu_interior;
    Obs.Span.in_lane 0 (fun () ->
        Obs.Span.with_ ~cat:"comm" ("exchange.wait:" ^ phi_dst.Fieldspec.name) (fun () ->
            List.iter (Ghost.await_slab t.comm) pending;
            for axis = 1 to Array.length t.block_dims - 1 do
              post_axis_sends t phi_dst ~axis;
              drain_axis_recvs t phi_dst ~axis
            done));
    each Pfcore.Timestep.phase_mu_shell;
    exchange t (fields t).Pfcore.Model.mu_dst;
    each Pfcore.Timestep.finish
  end

(** One lockstep time step across all ranks (Algorithm 1).  Activates a
    pending rank crash at the step boundary and enforces the end-of-step
    quiescence invariant: after a completed exchange no live message may
    remain in flight.  With [overlap] the φ_dst exchange runs nonblocking
    under the μ interior sweep — bitwise identical to the sequential order
    (check oracle 10). *)
let step t =
  Obs.Span.with_ ~cat:"step" ~args:[ ("step", float_of_int (step_count t)) ] "step"
    (fun () ->
      Mpisim.begin_step t.comm ~step:(step_count t);
      if t.overlap then step_overlapped t else step_sequential t;
      Mpisim.finalize t.comm)

let run ?(on_step = fun (_ : t) -> ()) t ~steps =
  for _ = 1 to steps do
    step t;
    on_step t
  done

(** Global phase fractions (average of per-rank fractions; blocks are
    equally sized). *)
let phase_fractions t =
  let per_rank = Array.map Pfcore.Simulation.phase_fractions t.sims in
  let n = Array.length per_rank.(0) in
  Array.init n (fun c ->
      Array.fold_left (fun acc fr -> acc +. fr.(c)) 0. per_rank
      /. float_of_int (Array.length t.sims))

(** Read one interior cell value by global coordinates. *)
let get t (field : Fieldspec.t) ~component global =
  let dim = Array.length t.block_dims in
  let rc = Array.init dim (fun d -> global.(d) / t.block_dims.(d)) in
  let local = Array.init dim (fun d -> global.(d) mod t.block_dims.(d)) in
  let sim = t.sims.(rank_of_coords t.grid rc) in
  Vm.Buffer.get (Vm.Engine.buffer sim.Pfcore.Timestep.block field) ~component local
