(** Weak- and strong-scaling projections (paper Fig. 3).

    Per-step time on [ranks] processing elements:

      t_step = t_compute(block) + max(0, t_comm − t_overlappable)

    where [t_compute] comes from a measured or ECM-modeled per-PE rate and
    [t_comm] from the network model.  Communication of μ overlaps with the
    φ kernel and φ's with the split μ update (paper §4.3), so with hiding
    enabled only the non-overlappable remainder shows. *)

type config = {
  net : Netmodel.t;
  mlups_per_pe : float;          (** node-level compute rate per PE *)
  fields_bytes_per_cell : int;   (** ghost payload per boundary cell *)
  ghost_width : int;
  overlap : bool;                (** communication hiding enabled *)
}

let ghost_bytes cfg ~block_dims =
  let dim = Array.length block_dims in
  let total = ref 0. in
  for axis = 0 to dim - 1 do
    let face =
      Array.fold_left ( *. ) 1.
        (Array.mapi (fun d n -> if d = axis then float_of_int cfg.ghost_width else float_of_int n) block_dims)
    in
    total := !total +. (2. *. face *. float_of_int cfg.fields_bytes_per_cell)
  done;
  !total

let step_time_s cfg ~block_dims ~ranks =
  let cells = Array.fold_left (fun a n -> a *. float_of_int n) 1. block_dims in
  let t_comp = cells /. (cfg.mlups_per_pe *. 1e6) in
  let bytes = ghost_bytes cfg ~block_dims /. 6. (* per neighbor message *) in
  let t_comm = Netmodel.exchange_time_s cfg.net ~bytes ~neighbors:6 ~ranks in
  (* two exchanges per step (φ_dst and μ_dst) *)
  let t_comm = 2. *. t_comm in
  (* per-step global reduction (time-step control / in-situ analysis) is a
     synchronization point and cannot be overlapped *)
  let t_sync = Netmodel.allreduce_time_s cfg.net ~ranks in
  if cfg.overlap then t_comp +. Float.max 0. (t_comm -. (0.9 *. t_comp)) +. t_sync
  else t_comp +. t_comm +. t_sync

(** Weak scaling: fixed block per PE; returns MLUP/s per PE. *)
let weak cfg ~block_dims ~ranks =
  let cells = Array.fold_left (fun a n -> a *. float_of_int n) 1. block_dims in
  cells /. step_time_s cfg ~block_dims ~ranks /. 1e6

(** Strong scaling: fixed global domain; returns (MLUP/s per PE, steps/s).
    The block shrinks with the PE count (idealized equal split). *)
let strong cfg ~global_dims ~ranks =
  let dim = Array.length global_dims in
  let per_axis = float_of_int ranks ** (1. /. float_of_int dim) in
  let block_dims =
    Array.map (fun n -> max 4 (int_of_float (float_of_int n /. per_axis))) global_dims
  in
  let t = step_time_s cfg ~block_dims ~ranks in
  let cells = Array.fold_left (fun a n -> a *. float_of_int n) 1. block_dims in
  (cells /. t /. 1e6, 1. /. t)
