(** Analytic interconnect models for the scaling projections.

    Measured in-container runs cover the node level; curves beyond one node
    use a latency–bandwidth (Hockney) model with a topology-dependent hop
    term: a fat tree (SuperMUC-NG's island structure) or a dragonfly
    (Piz Daint's Aries).  EXPERIMENTS.md labels every number derived from
    these models as *modeled*. *)

type topology =
  | Fat_tree of { island_size : int }    (** extra hops when crossing islands *)
  | Dragonfly of { group_size : int }    (** global links between groups *)

type t = {
  name : string;
  latency_us : float;         (** per message, nearest neighbour *)
  bandwidth_gbytes : float;   (** per link, per direction *)
  hop_latency_us : float;     (** additional latency per topology level *)
  topology : topology;
}

let supermuc_ng =
  {
    name = "SuperMUC-NG (OmniPath fat tree)";
    latency_us = 1.5;
    bandwidth_gbytes = 12.5;
    hop_latency_us = 0.4;
    topology = Fat_tree { island_size = 792 * 48 };
  }

let piz_daint =
  {
    name = "Piz Daint (Aries dragonfly)";
    latency_us = 1.2;
    bandwidth_gbytes = 10.2;
    hop_latency_us = 0.3;
    topology = Dragonfly { group_size = 384 };
  }

(* Topology levels a communicator of [ranks] spans. *)
let levels net ~ranks =
  match net.topology with
  | Fat_tree { island_size } ->
    if ranks <= 48 then 1 else if ranks <= island_size then 2 else 3
  | Dragonfly { group_size } -> if ranks <= 4 then 1 else if ranks <= group_size then 2 else 3

(** Time for one ghost exchange: [neighbors] messages of [bytes] each,
    posted concurrently (asynchronous sends), so bandwidth is shared. *)
let exchange_time_s net ~bytes ~neighbors ~ranks =
  let latency = (net.latency_us +. (net.hop_latency_us *. float_of_int (levels net ~ranks - 1))) *. 1e-6 in
  let volume = float_of_int neighbors *. bytes in
  latency +. (volume /. (net.bandwidth_gbytes *. 1e9))

(** Allreduce-style global operation (time-step size reductions, in-situ
    analysis): logarithmic in rank count. *)
let allreduce_time_s net ~ranks =
  let hops = ceil (log (float_of_int (max 2 ranks)) /. log 2.) in
  hops *. (net.latency_us +. (net.hop_latency_us *. float_of_int (levels net ~ranks - 1))) *. 1e-6
