(** GPU communication strategies (paper §4.3, Table 2).

    A Piz Daint step moves ghost layers GPU → network → GPU.  Four costs:

    - [t_comp]: the compute kernels on the device;
    - [t_pack]: device-side packing kernels (always on the critical path);
    - [t_stage]: staging message buffers through host memory over PCIe —
      eliminated by CUDA-enabled MPI + GPUDirect RDMA;
    - [t_net]: the wire transfer.

    With communication hiding (asynchronous MPI + parallel CUDA streams,
    μ-exchange behind the φ kernel, inner/outer μ split behind the
    φ-exchange), the wire time overlaps the kernels; host staging involves
    blocking host-side copies and stays on the critical path. *)

type options = { overlap : bool; gpudirect : bool }

type cost = {
  t_comp_s : float;
  t_pack_s : float;
  t_stage_s : float;
  t_net_s : float;
}

let pcie_gbytes = 11.0  (* P100 on PCIe gen3 x16, effective *)

let costs (dev : Gpumodel.Device.t) (net : Netmodel.t) ~block_dims ~bytes_per_cell
    ~flops_per_cell ~ranks =
  let cells = Array.fold_left (fun a n -> a *. float_of_int n) 1. block_dims in
  let stream_bytes = cells *. float_of_int bytes_per_cell in
  let t_comp =
    cells
    *. Gpumodel.Device.time_per_lup_ns dev ~flops:flops_per_cell
         ~bytes:(float_of_int bytes_per_cell) ~registers:128
    *. 1e-9
  in
  let dim = Array.length block_dims in
  let ghost = ref 0. in
  for axis = 0 to dim - 1 do
    let face =
      Array.fold_left ( *. ) 1.
        (Array.mapi (fun d n -> if d = axis then 1. else float_of_int n) block_dims)
    in
    (* ~14 doubles of ghost payload per boundary cell (φ and μ, both time
       levels where needed), 2 faces per axis, 2 exchanges per step *)
    ghost := !ghost +. (2. *. 2. *. face *. 14. *. 8.)
  done;
  ignore stream_bytes;
  let t_pack = !ghost /. (dev.Gpumodel.Device.mem_bw_gbytes *. 1e9) *. 8. in
  let t_stage = !ghost /. (pcie_gbytes *. 1e9) in
  let t_net = Netmodel.exchange_time_s net ~bytes:(!ghost /. 6.) ~neighbors:6 ~ranks in
  { t_comp_s = t_comp; t_pack_s = t_pack; t_stage_s = t_stage; t_net_s = t_net }

(** Step time under a strategy; Table 2's four rows are the four option
    combinations. *)
let step_time (c : cost) (o : options) =
  let stage = if o.gpudirect then 0. else c.t_stage_s in
  if o.overlap then Float.max c.t_comp_s c.t_net_s +. c.t_pack_s +. stage
  else c.t_comp_s +. c.t_net_s +. c.t_pack_s +. stage

let mlups_per_gpu (c : cost) (o : options) ~block_dims =
  let cells = Array.fold_left (fun a n -> a *. float_of_int n) 1. block_dims in
  cells /. step_time c o /. 1e6
