(** In-process message passing.

    Ranks live in one address space; messages are copied float arrays in
    per-(src, dst, tag) FIFO queues with MPI-like nonblocking semantics: all
    sends of a communication phase are posted before the matching receives
    are drained, and delivery order is deterministic.  This exercises the
    real pack / send / receive / unpack path of the ghost-layer exchange
    while remaining reproducible in a sealed container. *)

type t = {
  n_ranks : int;
  queues : (int * int * int, float array Queue.t) Hashtbl.t;
  mutable bytes_sent : int;     (** cumulative payload volume *)
  mutable messages_sent : int;
}

let create n_ranks = { n_ranks; queues = Hashtbl.create 64; bytes_sent = 0; messages_sent = 0 }

let queue t key =
  match Hashtbl.find_opt t.queues key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.queues key q;
    q

let send t ~src ~dst ~tag data =
  if src < 0 || src >= t.n_ranks || dst < 0 || dst >= t.n_ranks then
    invalid_arg "Mpisim.send: rank out of range";
  Queue.push (Array.copy data) (queue t (src, dst, tag));
  t.bytes_sent <- t.bytes_sent + (8 * Array.length data);
  t.messages_sent <- t.messages_sent + 1

exception No_message of (int * int * int)

let recv t ~src ~dst ~tag =
  let key = (src, dst, tag) in
  match Hashtbl.find_opt t.queues key with
  | Some q when not (Queue.is_empty q) -> Queue.pop q
  | _ -> raise (No_message key)

(** All queues drained — every posted message was consumed. *)
let quiescent t = Hashtbl.fold (fun _ q acc -> acc && Queue.is_empty q) t.queues true
