(** In-process message passing with deterministic fault injection.

    Ranks live in one address space; messages are copied float arrays in
    per-(src, dst, tag) FIFO queues with MPI-like nonblocking semantics: all
    sends of a communication phase are posted before the matching receives
    are drained, and delivery order is deterministic.  This exercises the
    real pack / send / receive / unpack path of the ghost-layer exchange
    while remaining reproducible in a sealed container.

    On top of the fault-free substrate sits the machinery the resilience
    subsystem needs:

    + every message carries a per-channel sequence number and is kept in a
      bounded retransmission log on the sender side;
    + an optional {!Faultplan.t} decides, deterministically per (channel,
      seq), whether a message is delivered, dropped, delayed against the
      virtual clock, or duplicated — and whether one rank crashes at a
      given step;
    + receivers drive a virtual clock ([advance_clock] / [release_due]) and
      can request retransmission of a missing sequence number, which is the
      basis of the self-healing exchange in {!Ghost};
    + [restart] models a failed rank being brought back: all in-flight
      state is discarded (the caller reloads field state from a checkpoint)
      and the crash is marked consumed so the replay runs clean. *)

type message = { seq : int; payload : float array }

type t = {
  n_ranks : int;
  queues : (int * int * int, message Queue.t) Hashtbl.t;
  send_seq : (int * int * int, int) Hashtbl.t;  (** next seq to assign per channel *)
  recv_seq : (int * int * int, int) Hashtbl.t;  (** next seq expected per channel *)
  sent_log : (int * int * int, message list) Hashtbl.t;
      (** most recent first, pruned to [log_limit] *)
  mutable delayed : (int * (int * int * int) * message) list;
      (** (release_time, channel, message), sorted for deterministic release *)
  mutable clock : int;          (** virtual time, driven by receiver backoff *)
  mutable step : int;           (** current simulation step (crash trigger) *)
  mutable plan : Faultplan.t option;
  mutable crashed : int option; (** currently-dead rank, if any *)
  mutable crash_consumed : bool;
  mutable bytes_sent : int;     (** cumulative payload volume *)
  mutable messages_sent : int;
  mutable delivered : int;      (** messages handed to a receiver *)
  mutable retransmissions : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed_count : int;
  mutable stale_discarded : int; (** duplicates/late arrivals discarded by seq *)
  mutable restarts : int;
}

(* Observability mirror: the substrate's own counters are authoritative
   (and always on); the registry copies are what `pfgen simulate --metrics`
   reports.  One gated branch per message when the sink is off. *)
let obs_count name by = Obs.Metrics.add (Obs.Metrics.counter ("net." ^ name)) by

let log_limit = 16

let create n_ranks =
  {
    n_ranks;
    queues = Hashtbl.create 64;
    send_seq = Hashtbl.create 64;
    recv_seq = Hashtbl.create 64;
    sent_log = Hashtbl.create 64;
    delayed = [];
    clock = 0;
    step = 0;
    plan = None;
    crashed = None;
    crash_consumed = false;
    bytes_sent = 0;
    messages_sent = 0;
    delivered = 0;
    retransmissions = 0;
    dropped = 0;
    duplicated = 0;
    delayed_count = 0;
    stale_discarded = 0;
    restarts = 0;
  }

let set_fault_plan t plan = t.plan <- plan

let queue t key =
  match Hashtbl.find_opt t.queues key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.queues key q;
    q

let is_crashed t rank = t.crashed = Some rank
let live t rank = not (is_crashed t rank)

(** Activate a pending crash: called at the start of every lockstep time
    step with the current step index. *)
let begin_step t ~step =
  t.step <- step;
  match t.plan with
  | Some { Faultplan.crash = Some (rank, at); _ }
    when step >= at && not t.crash_consumed ->
    t.crashed <- Some rank
  | _ -> ()

let advance_clock t ticks = t.clock <- t.clock + max 1 ticks

(* Deterministic insertion: the delayed pool stays sorted by
   (release, channel, seq). *)
let add_delayed t release key msg =
  t.delayed <-
    List.merge compare t.delayed [ (release, key, msg) ]

(** Move every delayed message whose release time has come into its
    delivery queue (in deterministic order). *)
let release_due t =
  let due, later = List.partition (fun (r, _, _) -> r <= t.clock) t.delayed in
  t.delayed <- later;
  List.iter (fun (_, key, msg) -> Queue.push msg (queue t key)) due

let next_send_seq t key =
  let s = Option.value (Hashtbl.find_opt t.send_seq key) ~default:0 in
  Hashtbl.replace t.send_seq key (s + 1);
  s

let expected_seq t ~src ~dst ~tag =
  Option.value (Hashtbl.find_opt t.recv_seq (src, dst, tag)) ~default:0

let log_sent t key msg =
  let prev = Option.value (Hashtbl.find_opt t.sent_log key) ~default:[] in
  let rec prune n = function
    | [] -> []
    | _ when n = 0 -> []
    | m :: rest -> m :: prune (n - 1) rest
  in
  Hashtbl.replace t.sent_log key (prune log_limit (msg :: prev))

let send t ~src ~dst ~tag data =
  if src < 0 || src >= t.n_ranks || dst < 0 || dst >= t.n_ranks then
    invalid_arg "Mpisim.send: rank out of range";
  if is_crashed t src || is_crashed t dst then begin
    (* a dead rank neither sends nor receives; nothing enters the network *)
    t.dropped <- t.dropped + 1;
    obs_count "dropped" 1
  end
  else begin
    let key = (src, dst, tag) in
    let msg = { seq = next_send_seq t key; payload = Array.copy data } in
    log_sent t key msg;
    t.bytes_sent <- t.bytes_sent + (8 * Array.length data);
    t.messages_sent <- t.messages_sent + 1;
    obs_count "messages_sent" 1;
    obs_count "bytes_sent" (8 * Array.length data);
    match t.plan with
    | None -> Queue.push msg (queue t key)
    | Some plan -> (
      match Faultplan.decide plan ~src ~dst ~tag ~seq:msg.seq with
      | Faultplan.Deliver -> Queue.push msg (queue t key)
      | Faultplan.Drop ->
        t.dropped <- t.dropped + 1;
        obs_count "dropped" 1
      | Faultplan.Delay ticks ->
        t.delayed_count <- t.delayed_count + 1;
        obs_count "delayed" 1;
        add_delayed t (t.clock + ticks) key msg
      | Faultplan.Duplicate ->
        t.duplicated <- t.duplicated + 1;
        obs_count "duplicated" 1;
        Queue.push msg (queue t key);
        Queue.push { msg with payload = msg.payload } (queue t key))
  end

exception No_message of (int * int * int)

(** Plain FIFO receive (the fault-free fast path): pops the head message of
    the channel, whatever its sequence number. *)
let recv t ~src ~dst ~tag =
  let key = (src, dst, tag) in
  match Hashtbl.find_opt t.queues key with
  | Some q when not (Queue.is_empty q) ->
    let msg = Queue.pop q in
    let expected = expected_seq t ~src ~dst ~tag in
    Hashtbl.replace t.recv_seq key (max expected (msg.seq + 1));
    t.delivered <- t.delivered + 1;
    obs_count "delivered" 1;
    msg.payload
  | _ -> raise (No_message key)

(** Sequenced receive: returns the message with exactly the next expected
    sequence number, discarding any stale (already-consumed) duplicates
    encountered on the way, and leaving future messages queued.  [None]
    means the expected message has not arrived (yet). *)
let recv_expected t ~src ~dst ~tag =
  let key = (src, dst, tag) in
  let expected = expected_seq t ~src ~dst ~tag in
  match Hashtbl.find_opt t.queues key with
  | None -> None
  | Some q ->
    let fresh, stale =
      List.partition
        (fun m -> m.seq >= expected)
        (List.of_seq (Queue.to_seq q))
    in
    t.stale_discarded <- t.stale_discarded + List.length stale;
    obs_count "stale_discarded" (List.length stale);
    Queue.clear q;
    let hit = ref None in
    List.iter
      (fun m ->
        if !hit = None && m.seq = expected then hit := Some m.payload
        else Queue.push m q)
      fresh;
    if !hit <> None then begin
      Hashtbl.replace t.recv_seq key (expected + 1);
      t.delivered <- t.delivered + 1;
      obs_count "delivered" 1
    end;
    !hit

(** Re-deliver sequence number [seq] of the channel from the sender's
    retransmission log, bypassing fault injection (retry-until-success).
    [`Crashed] if the sender rank is dead, [`Lost] if the log no longer
    holds that message. *)
let request_retransmit t ~src ~dst ~tag ~seq =
  if is_crashed t src then `Crashed
  else
    let key = (src, dst, tag) in
    match
      List.find_opt
        (fun m -> m.seq = seq)
        (Option.value (Hashtbl.find_opt t.sent_log key) ~default:[])
    with
    | Some msg ->
      t.retransmissions <- t.retransmissions + 1;
      obs_count "retransmissions" 1;
      Queue.push msg (queue t key);
      `Sent
    | None -> `Lost

(* ------------------------------------------------------------------ *)
(* Nonblocking surface                                                 *)
(* ------------------------------------------------------------------ *)

(** MPI-style request handles.  An [isend] completes at post time (the
    substrate buffers every message), mirroring an eager-protocol
    [MPI_Isend]; an [irecv] completes when {!test} or {!wait} matches the
    channel's next expected sequence number.  The per-channel sequence
    numbers of the blocking surface are preserved — [irecv] consumes
    exactly the message [recv_expected] would have, so nonblocking and
    blocking exchanges are interchangeable message for message. *)
type request =
  | Isend of { dst : int }
  | Irecv of {
      src : int;
      dst : int;
      tag : int;
      mutable arrived : float array option;
    }

(** Post a message and return its (already-complete) send request. *)
let isend t ~src ~dst ~tag data =
  send t ~src ~dst ~tag data;
  Isend { dst }

(** Post a receive for the channel's next in-sequence message.  Nothing is
    consumed until {!test} or {!wait} observes the arrival. *)
let irecv (_ : t) ~src ~dst ~tag = Irecv { src; dst; tag; arrived = None }

(** Poll a request: [true] when complete.  Polling an [Irecv] releases due
    delayed messages and consumes the expected message if it has arrived
    (discarding stale duplicates on the way, like the blocking path). *)
let test t = function
  | Isend _ -> true
  | Irecv r -> (
    r.arrived <> None
    ||
    (release_due t;
     match recv_expected t ~src:r.src ~dst:r.dst ~tag:r.tag with
     | Some p ->
       r.arrived <- Some p;
       true
     | None -> false))

(** Drive a request to completion through the self-healing protocol: a
    missing message is treated as a timeout against the virtual clock — the
    receiver backs off exponentially (releasing delayed messages) and
    requests bounded retransmission from the sender's log.  [`Done n]
    reports the number of retries the healing needed (0 on the fault-free
    path); [`Crashed] surfaces a dead sender for the recovery driver;
    [`Lost] means the retries were exhausted on a live channel. *)
let wait ?(max_retries = 10) t = function
  | Isend _ -> `Done 0
  | Irecv r -> (
    match r.arrived with
    | Some _ -> `Done 0
    | None ->
      let rec attempt retries backoff =
        release_due t;
        match recv_expected t ~src:r.src ~dst:r.dst ~tag:r.tag with
        | Some p ->
          r.arrived <- Some p;
          `Done retries
        | None ->
          if retries >= max_retries then
            if is_crashed t r.src then `Crashed r.src else `Lost (r.src, r.dst, r.tag)
          else begin
            advance_clock t backoff;
            match
              request_retransmit t ~src:r.src ~dst:r.dst ~tag:r.tag
                ~seq:(expected_seq t ~src:r.src ~dst:r.dst ~tag:r.tag)
            with
            | `Crashed -> `Crashed r.src
            | `Sent | `Lost -> attempt (retries + 1) (2 * backoff)
          end
      in
      attempt 0 1)

(** The payload of a completed [Irecv] (call {!wait} or {!test} first). *)
let payload = function
  | Isend _ -> invalid_arg "Mpisim.payload: send requests carry no payload"
  | Irecv { arrived = Some p; _ } -> p
  | Irecv _ -> invalid_arg "Mpisim.payload: request not complete"

(** All channels drained and nothing in the delayed pool. *)
let quiescent t =
  t.delayed = []
  && Hashtbl.fold (fun _ q acc -> acc && Queue.is_empty q) t.queues true

exception Unquiescent of (int * int * int * int) list
(** Raised by {!finalize} when live (not-yet-consumed) messages remain
    queued: one ((src, dst, tag), count) entry per offending channel. *)

(** End-of-phase invariant: after a completed exchange nothing live may
    remain in flight.  Releases the whole delayed pool and discards stale
    duplicates first — those are legitimate leftovers of healed faults —
    then raises {!Unquiescent} if any channel still holds a message with a
    sequence number the receiver never consumed. *)
let finalize t =
  (match t.delayed with
  | [] -> ()
  | ds ->
    t.clock <- List.fold_left (fun acc (r, _, _) -> max acc r) t.clock ds;
    release_due t);
  let leftovers = ref [] in
  Hashtbl.iter
    (fun ((src, dst, tag) as key) q ->
      let expected = Option.value (Hashtbl.find_opt t.recv_seq key) ~default:0 in
      let live = Queue.fold (fun acc m -> if m.seq >= expected then acc + 1 else acc) 0 q in
      let stale = Queue.length q - live in
      t.stale_discarded <- t.stale_discarded + stale;
      obs_count "stale_discarded" stale;
      Queue.clear q;
      if live > 0 then leftovers := (src, dst, tag, live) :: !leftovers)
    t.queues;
  match List.sort compare !leftovers with
  | [] -> ()
  | ls -> raise (Unquiescent ls)

(** Bring a crashed substrate back for replay after a rollback: every
    queue, log, counter stream and the delayed pool are discarded, and the
    crash is marked consumed so the same step replays cleanly.  Cumulative
    traffic statistics survive. *)
let restart t =
  Hashtbl.reset t.queues;
  Hashtbl.reset t.send_seq;
  Hashtbl.reset t.recv_seq;
  Hashtbl.reset t.sent_log;
  t.delayed <- [];
  t.crashed <- None;
  t.crash_consumed <- true;
  t.restarts <- t.restarts + 1;
  obs_count "restarts" 1

let () =
  Printexc.register_printer (function
    | No_message (src, dst, tag) ->
      Some
        (Printf.sprintf
           "Mpisim.No_message: no message queued from rank %d to rank %d with tag %d" src
           dst tag)
    | Unquiescent ls ->
      Some
        (Printf.sprintf "Mpisim.Unquiescent: undelivered messages at finalize: %s"
           (String.concat ", "
              (List.map
                 (fun (src, dst, tag, n) ->
                   Printf.sprintf "%d message(s) from rank %d to rank %d with tag %d" n
                     src dst tag)
                 ls)))
    | _ -> None)
