(** Ghost-layer packing and unpacking (paper §4.3).

    Slabs are packed into contiguous buffers before sending — the same
    two-step exchange the paper implements with device-side packing kernels
    on GPUs.  Exchanging axis by axis, with the slab spanning the full
    padded extent of the other axes, also propagates edge and corner ghost
    values (needed by the D3C19-shaped kernels). *)

type side = Low | High

(* Cell range of the slab along the exchange axis. *)
let pack_range buf axis = function
  | Low -> (0, buf.Vm.Buffer.ghost - 1)
  | High -> (buf.Vm.Buffer.dims.(axis) - buf.Vm.Buffer.ghost, buf.Vm.Buffer.dims.(axis) - 1)

let unpack_range buf axis = function
  | Low -> (-buf.Vm.Buffer.ghost, -1)
  | High -> (buf.Vm.Buffer.dims.(axis), buf.Vm.Buffer.dims.(axis) + buf.Vm.Buffer.ghost - 1)

let slab_size buf axis =
  let g = buf.Vm.Buffer.ghost in
  let padded = Array.mapi (fun d n -> if d = axis then g else n + (2 * g)) buf.Vm.Buffer.dims in
  buf.Vm.Buffer.components * Array.fold_left ( * ) 1 padded

(* Iterate the slab deterministically, calling [f] with the linear element
   index of each (component, cell). *)
let iter_slab buf ~axis ~range f =
  let dim = Array.length buf.Vm.Buffer.dims in
  let g = buf.Vm.Buffer.ghost in
  let lo, hi = range in
  let coords = Array.make dim 0 in
  let rec loop d =
    if d = dim then begin
      let base = Vm.Buffer.base_index buf coords in
      for c = 0 to buf.Vm.Buffer.components - 1 do
        f (base + (c * buf.Vm.Buffer.comp_stride))
      done
    end
    else
      let l, h = if d = axis then (lo, hi) else (-g, buf.Vm.Buffer.dims.(d) + g - 1) in
      for i = l to h do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0

let pack buf ~axis ~side =
  let out = Array.make (slab_size buf axis) 0. in
  let k = ref 0 in
  iter_slab buf ~axis ~range:(pack_range buf axis side)
    (fun idx ->
      out.(!k) <- buf.Vm.Buffer.data.(idx);
      incr k);
  out

let unpack buf ~axis ~side data =
  if Array.length data <> slab_size buf axis then invalid_arg "Ghost.unpack: size mismatch";
  let k = ref 0 in
  iter_slab buf ~axis ~range:(unpack_range buf axis side)
    (fun idx ->
      buf.Vm.Buffer.data.(idx) <- data.(!k);
      incr k)

(** Ghost bytes exchanged per block per field per full exchange — the
    message volume used by the network model. *)
let exchange_bytes buf =
  let dim = Array.length buf.Vm.Buffer.dims in
  let total = ref 0 in
  for axis = 0 to dim - 1 do
    total := !total + (2 * 8 * slab_size buf axis)
  done;
  !total
