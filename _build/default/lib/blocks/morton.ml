(** Morton-order (Z-curve) block indexing and static load balancing.

    waLBerla assigns blocks to processes along a space-filling curve so that
    consecutive ranks own spatially adjacent blocks (paper §4.1 / refs
    [38, 39]).  Interleaving the bits of the block coordinates gives the
    Morton key; cutting the sorted key sequence into [n_ranks] consecutive,
    (weighted-)equal chunks yields the assignment. *)

(* Interleave the low 21 bits of up to three coordinates. *)
let key3 x y z =
  let spread v =
    (* insert two zero bits between every bit of v *)
    let v = ref (v land 0x1FFFFF) and out = ref 0 in
    for i = 0 to 20 do
      out := !out lor ((!v land 1) lsl (3 * i));
      v := !v lsr 1
    done;
    !out
  in
  spread x lor (spread y lsl 1) lor (spread z lsl 2)

let key2 x y =
  let spread v =
    let v = ref (v land 0x3FFFFFFF) and out = ref 0 in
    for i = 0 to 29 do
      out := !out lor ((!v land 1) lsl (2 * i));
      v := !v lsr 1
    done;
    !out
  in
  spread x lor (spread y lsl 1)

let key coords =
  match Array.length coords with
  | 2 -> key2 coords.(0) coords.(1)
  | 3 -> key3 coords.(0) coords.(1) coords.(2)
  | _ -> invalid_arg "Morton.key: dim must be 2 or 3"

(** All block coordinates of a [grid], sorted along the Z-curve. *)
let curve grid =
  let dim = Array.length grid in
  let total = Array.fold_left ( * ) 1 grid in
  let coords = Array.make dim 0 in
  let out = ref [] in
  let rec loop d =
    if d = dim then out := Array.copy coords :: !out
    else
      for i = 0 to grid.(d) - 1 do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0;
  assert (List.length !out = total);
  List.sort (fun a b -> compare (key a) (key b)) !out

(** Assign blocks to [n_ranks] by cutting the curve into chunks of
    near-equal total [weight] (uniform weights = uniform cell counts;
    non-uniform weights model refinement or workload imbalance).
    Returns the rank of each block, in curve order, plus the resulting
    per-rank load. *)
let balance ~n_ranks ~weights blocks =
  let total = List.fold_left (fun acc b -> acc +. weights b) 0. blocks in
  let target = total /. float_of_int n_ranks in
  let load = Array.make n_ranks 0. in
  let assignment =
    List.map
      (fun b ->
        let w = weights b in
        (* greedy prefix cut: move to the next rank when the current one is
           full, never leaving trailing ranks empty *)
        let rec pick r =
          if r >= n_ranks - 1 then n_ranks - 1
          else if load.(r) +. (w /. 2.) <= target then r
          else pick (r + 1)
        in
        let r = pick 0 in
        load.(r) <- load.(r) +. w;
        (b, r))
      blocks
  in
  (assignment, load)

(** Imbalance metric: max rank load over mean rank load (1.0 = perfect). *)
let imbalance load =
  let mean = Array.fold_left ( +. ) 0. load /. float_of_int (Array.length load) in
  if mean = 0. then 1. else Array.fold_left Float.max 0. load /. mean
