(** C backend: OpenMP-parallel scalar kernels (paper §3.5).

    Emits one C function per kernel.  The loop nest, loop order and
    loop-invariant hoisting come from the IR lowering; the outermost loop
    carries an [omp parallel for] pragma (legal because the pipeline
    guarantees independent iterations).  Field pointers, sizes/strides, the
    block's global offset and the kernel's free symbols become function
    parameters.  Explicit SIMD vectorization is emitted by {!Simd}. *)

open Symbolic
open Field

let loop_var d = Printf.sprintf "_i%d" d

let kernel_uses_rand (k : Ir.Kernel.t) =
  List.exists
    (fun (a : Assignment.t) ->
      Expr.fold (fun u n -> u || match n with Expr.Rand _ -> true | _ -> false) false a.rhs)
    k.Ir.Kernel.body

let signature (k : Ir.Kernel.t) =
  let fields = Ir.Kernel.fields k in
  let field_args =
    List.map
      (fun (f : Fieldspec.t) -> Printf.sprintf "double * restrict %s" (Cexpr.ident f.name))
      fields
  in
  let scalar_args = List.map (fun s -> "double " ^ Cexpr.ident s) (Ir.Kernel.parameters k) in
  let admin_args =
    List.init k.Ir.Kernel.dim (fun d -> Printf.sprintf "int64_t _n%d" d)
    @ List.init (k.Ir.Kernel.dim - 1) (fun d -> Printf.sprintf "int64_t _s%d" (d + 1))
    @ [ "int64_t _cs" ]
    @ List.init k.Ir.Kernel.dim (fun d -> Printf.sprintf "int64_t _off_%d" d)
    @ (if kernel_uses_rand k then
         List.init (k.Ir.Kernel.dim - 1) (fun d -> Printf.sprintf "int64_t _gs%d" d)
       else [])
    @ [ "int32_t _step" ]
  in
  Printf.sprintf "void %s(%s)" (Cexpr.ident k.Ir.Kernel.name)
    (String.concat ", " (field_args @ scalar_args @ admin_args))

let emit_assignment buf ~indent ~dialect ~approx (a : Assignment.t) =
  let pad = String.make indent ' ' in
  match a.lhs with
  | Assignment.Temp s ->
    Buffer.add_string buf
      (Printf.sprintf "%sconst double %s = %s;\n" pad (Cexpr.ident s)
         (Cexpr.emit ~dialect ~approx a.rhs))
  | Assignment.Store acc ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s;\n" pad (Cexpr.access_ref acc)
         (Cexpr.emit ~dialect ~approx a.rhs))

let upper_bound (k : Ir.Kernel.t) axis =
  match k.Ir.Kernel.iteration with
  | Ir.Kernel.CellSweep -> Printf.sprintf "_n%d" axis
  | Ir.Kernel.StaggeredSweep axes ->
    if List.mem axis axes then Printf.sprintf "_n%d + 1" axis else Printf.sprintf "_n%d" axis

(** Emit the kernel as a standalone C function (scalar body). *)
let emit ?(approx = Cexpr.exact) ?(openmp = true) (lowered : Ir.Lower.t) =
  let k = lowered.Ir.Lower.kernel in
  let dim = k.Ir.Kernel.dim in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (signature k);
  Buffer.add_string buf " {\n";
  let dialect = Cexpr.C in
  List.iter (emit_assignment buf ~indent:2 ~dialect ~approx) lowered.Ir.Lower.hoisted.(0);
  let uses_rand = kernel_uses_rand k in
  let order = lowered.Ir.Lower.loop_order in
  Array.iteri
    (fun depth axis ->
      let pad = String.make (2 * (depth + 1)) ' ' in
      if depth = 0 && openmp then
        Buffer.add_string buf "  #pragma omp parallel for schedule(static)\n";
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int64_t %s = 0; %s < %s; ++%s) {\n" pad (loop_var axis)
           (loop_var axis) (upper_bound k axis) (loop_var axis));
      List.iter
        (emit_assignment buf ~indent:(2 * (depth + 2)) ~dialect ~approx)
        (if depth + 1 <= dim - 1 then lowered.Ir.Lower.hoisted.(depth + 1) else []))
    order;
  (* innermost body: compute the shared base index once per iteration *)
  let pad = String.make (2 * (dim + 1)) ' ' in
  let base_terms =
    List.init dim (fun d ->
        if d = 0 then loop_var 0 else Printf.sprintf "%s*_s%d" (loop_var d) d)
  in
  Buffer.add_string buf
    (Printf.sprintf "%sconst int64_t _b = %s;\n" pad (String.concat " + " base_terms));
  if uses_rand then begin
    (* global cell id: Horner over the global coordinates *)
    let rec cell d acc =
      if d < 0 then acc
      else
        let g = Printf.sprintf "(_i%d + _off_%d)" d d in
        let acc = if acc = "" then g else Printf.sprintf "(%s) * _gs%d + %s" acc d g in
        cell (d - 1) acc
    in
    Buffer.add_string buf
      (Printf.sprintf "%sconst int64_t _cell = %s;\n" pad (cell (dim - 1) ""))
  end;
  List.iter (emit_assignment buf ~indent:(2 * (dim + 1)) ~dialect ~approx) lowered.Ir.Lower.body;
  for depth = dim - 1 downto 0 do
    Buffer.add_string buf (String.make (2 * (depth + 1)) ' ');
    Buffer.add_string buf "}\n"
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** A complete translation unit: prelude plus the given kernels. *)
let translation_unit ?(approx = Cexpr.exact) ?(openmp = true) lowered_kernels =
  Cexpr.prelude ^ "\n" ^ String.concat "\n" (List.map (emit ~approx ~openmp) lowered_kernels)
