(** Explicit SIMD vectorization for the C backend (paper §3.5).

    The pipeline guarantees independent loop iterations with no conditionals
    (piecewise terms are [Select]s, mapped to compare+blend), so the inner
    loop is unrolled by the vector width with intrinsics and a scalar
    tear-down loop handles the remainder.  Aligned loads/stores are used for
    accesses without an offset in the fastest coordinate — allocation pads
    line starts to the vector size.  Expensive operations marked for
    approximate evaluation map to [rsqrt14]-style instructions on AVX512.

    Kernels containing Philox fluctuation calls fall back to the scalar
    backend (counter-based RNG vectorization is possible but out of scope
    here). *)

open Symbolic
open Field

type isa = SSE2 | AVX2 | AVX512

let width = function SSE2 -> 2 | AVX2 -> 4 | AVX512 -> 8
let vtype = function SSE2 -> "__m128d" | AVX2 -> "__m256d" | AVX512 -> "__m512d"
let prefix = function SSE2 -> "_mm" | AVX2 -> "_mm256" | AVX512 -> "_mm512"
let isa_name = function SSE2 -> "SSE2" | AVX2 -> "AVX2" | AVX512 -> "AVX512"

let op isa name args = Printf.sprintf "%s_%s(%s)" (prefix isa) name (String.concat ", " args)

let set1 isa x = op isa "set1_pd" [ x ]

(* [vec_sym] tells which symbols are vector-valued temporaries of the inner
   loop body; everything else (parameters, hoisted loop invariants) is a
   scalar that gets broadcast. *)
let rec emit isa ~approx ~vec_sym (e : Expr.t) =
  let go = emit isa ~approx ~vec_sym in
  match e with
  | Expr.Num x -> set1 isa (Cexpr.float_lit x)
  | Expr.Sym s -> if vec_sym s then Cexpr.ident s else set1 isa (Cexpr.ident s)
  | Expr.Coord d -> set1 isa ("(" ^ Cexpr.coord_ref d ^ ")")
  | Expr.Access a ->
    let aligned = a.Fieldspec.offsets.(0) = 0 in
    let load = if aligned then "load_pd" else "loadu_pd" in
    op isa load [ Printf.sprintf "&%s[%s]" (Cexpr.ident a.field.Fieldspec.name) (Cexpr.access_index a) ]
  | Expr.Rand _ -> invalid_arg "Simd.emit: Philox kernels use the scalar backend"
  | Expr.Diff _ -> invalid_arg "Simd.emit: Diff survived discretization"
  | Expr.Add xs -> (
    match List.map go xs with
    | [] -> set1 isa "0.0"
    | first :: rest -> List.fold_left (fun acc x -> op isa "add_pd" [ acc; x ]) first rest)
  | Expr.Mul xs -> (
    match List.map go xs with
    | [] -> set1 isa "1.0"
    | first :: rest -> List.fold_left (fun acc x -> op isa "mul_pd" [ acc; x ]) first rest)
  | Expr.Pow (b, n) ->
    let base = go b in
    let rec mul_n acc k = if k = 1 then acc else mul_n (op isa "mul_pd" [ acc; base ]) (k - 1) in
    if n > 0 then mul_n base n
    else
      let den = mul_n base (-n) in
      op isa "div_pd" [ set1 isa "1.0"; den ]
  | Expr.Fun (f, xs) -> (
    let args = List.map go xs in
    match (f, args) with
    | Expr.Sqrt, [ x ] -> op isa "sqrt_pd" [ x ]
    | Expr.Rsqrt, [ x ] ->
      if approx.Cexpr.fast_rsqrt && isa = AVX512 then op isa "rsqrt14_pd" [ x ]
      else op isa "div_pd" [ set1 isa "1.0"; op isa "sqrt_pd" [ x ] ]
    | Expr.Exp, [ x ] -> op isa "exp_pd" [ x ]   (* SVML *)
    | Expr.Log, [ x ] -> op isa "log_pd" [ x ]
    | Expr.Sin, [ x ] -> op isa "sin_pd" [ x ]
    | Expr.Cos, [ x ] -> op isa "cos_pd" [ x ]
    | Expr.Tanh, [ x ] -> op isa "tanh_pd" [ x ]
    | Expr.Fabs, [ x ] ->
      (* clear the sign bit *)
      op isa "andnot_pd" [ set1 isa "-0.0"; x ]
    | Expr.Fmin, [ a; b ] -> op isa "min_pd" [ a; b ]
    | Expr.Fmax, [ a; b ] -> op isa "max_pd" [ a; b ]
    | _ -> invalid_arg "Simd.emit: bad function arity")
  | Expr.Select (c, t, f) ->
    let cmp_op, a, b =
      match c with Expr.Lt (a, b) -> ("_CMP_LT_OQ", a, b) | Expr.Le (a, b) -> ("_CMP_LE_OQ", a, b)
    in
    let va = go a and vb = go b and vt = go t and vf = go f in
    (match isa with
    | AVX512 ->
      Printf.sprintf "_mm512_mask_blend_pd(_mm512_cmp_pd_mask(%s, %s, %s), %s, %s)" va vb
        cmp_op vf vt
    | AVX2 -> Printf.sprintf "_mm256_blendv_pd(%s, %s, _mm256_cmp_pd(%s, %s, %s))" vf vt va vb cmp_op
    | SSE2 ->
      (* and/andnot blend *)
      Printf.sprintf
        "_mm_or_pd(_mm_and_pd(_mm_cmplt_pd(%s, %s), %s), _mm_andnot_pd(_mm_cmplt_pd(%s, %s), %s))"
        va vb vt va vb vf)

let emit_assignment isa ~approx ~vec_sym buf ~indent (a : Assignment.t) =
  let pad = String.make indent ' ' in
  match a.lhs with
  | Assignment.Temp s ->
    Buffer.add_string buf
      (Printf.sprintf "%sconst %s %s = %s;\n" pad (vtype isa) (Cexpr.ident s)
         (emit isa ~approx ~vec_sym a.rhs))
  | Assignment.Store acc ->
    let aligned = acc.Fieldspec.offsets.(0) = 0 in
    let store = if aligned then "store_pd" else "storeu_pd" in
    Buffer.add_string buf
      (Printf.sprintf "%s%s;\n" pad
         (op isa store
            [
              Printf.sprintf "&%s[%s]" (Cexpr.ident acc.field.Fieldspec.name)
                (Cexpr.access_index acc);
              emit isa ~approx ~vec_sym a.rhs;
            ]))

(** Emit a vectorized kernel function: identical structure to the scalar
    backend, but the innermost loop advances by the vector width and a
    scalar tear-down loop finishes the line. *)
let emit_kernel ?(isa = AVX512) ?(approx = Cexpr.exact) ?(openmp = true) (lowered : Ir.Lower.t) =
  let k = lowered.Ir.Lower.kernel in
  if Ccode.kernel_uses_rand k then Ccode.emit ~approx ~openmp lowered
  else begin
    let dim = k.Ir.Kernel.dim in
    let w = width isa in
    let buf = Buffer.create 8192 in
    Buffer.add_string buf (Printf.sprintf "/* %s, %d-wide */\n" (isa_name isa) w);
    Buffer.add_string buf (Ccode.signature k);
    Buffer.add_string buf " {\n";
    List.iter
      (Ccode.emit_assignment buf ~indent:2 ~dialect:Cexpr.C ~approx)
      lowered.Ir.Lower.hoisted.(0);
    let order = lowered.Ir.Lower.loop_order in
    Array.iteri
      (fun depth axis ->
        let pad = String.make (2 * (depth + 1)) ' ' in
        if depth = 0 && openmp then
          Buffer.add_string buf "  #pragma omp parallel for schedule(static)\n";
        if depth < dim - 1 then begin
          Buffer.add_string buf
            (Printf.sprintf "%sfor (int64_t _i%d = 0; _i%d < %s; ++_i%d) {\n" pad axis axis
               (Ccode.upper_bound k axis) axis);
          List.iter
            (Ccode.emit_assignment buf ~indent:(2 * (depth + 2)) ~dialect:Cexpr.C ~approx)
            lowered.Ir.Lower.hoisted.(depth + 1)
        end)
      order;
    let vec_temps =
      List.filter_map
        (fun (a : Assignment.t) ->
          match a.lhs with Assignment.Temp s -> Some s | Assignment.Store _ -> None)
        lowered.Ir.Lower.body
    in
    let vec_sym s = List.mem s vec_temps in
    let inner = order.(dim - 1) in
    let pad = String.make (2 * dim) ' ' in
    let bound = Ccode.upper_bound k inner in
    Buffer.add_string buf
      (Printf.sprintf "%sint64_t _i%d = 0;\n" pad inner);
    Buffer.add_string buf
      (Printf.sprintf "%sfor (; _i%d + %d <= %s; _i%d += %d) {\n" pad inner w bound inner w);
    let base_terms =
      List.init dim (fun d -> if d = 0 then "_i0" else Printf.sprintf "_i%d*_s%d" d d)
    in
    let bpad = String.make (2 * (dim + 1)) ' ' in
    Buffer.add_string buf
      (Printf.sprintf "%sconst int64_t _b = %s;\n" bpad (String.concat " + " base_terms));
    List.iter
      (emit_assignment isa ~approx ~vec_sym buf ~indent:(2 * (dim + 1)))
      lowered.Ir.Lower.body;
    Buffer.add_string buf (pad ^ "}\n");
    (* scalar tear-down loop for the remaining cells *)
    Buffer.add_string buf
      (Printf.sprintf "%sfor (; _i%d < %s; ++_i%d) {\n" pad inner bound inner);
    Buffer.add_string buf
      (Printf.sprintf "%sconst int64_t _b = %s;\n" bpad (String.concat " + " base_terms));
    List.iter
      (Ccode.emit_assignment buf ~indent:(2 * (dim + 1)) ~dialect:Cexpr.C ~approx)
      lowered.Ir.Lower.body;
    Buffer.add_string buf (pad ^ "}\n");
    for depth = dim - 2 downto 0 do
      Buffer.add_string buf (String.make (2 * (depth + 1)) ' ');
      Buffer.add_string buf "}\n"
    done;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  end

let translation_unit ?isa ?approx ?openmp lowered_kernels =
  let header =
    match Option.value isa ~default:AVX512 with
    | SSE2 -> "#include <emmintrin.h>\n"
    | AVX2 | AVX512 -> "#include <immintrin.h>\n"
  in
  header ^ Cexpr.prelude ^ "\n"
  ^ String.concat "\n" (List.map (emit_kernel ?isa ?approx ?openmp) lowered_kernels)
