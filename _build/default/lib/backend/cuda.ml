(** CUDA backend (paper §3.5).

    Loop nodes are stripped and loop counters replaced by index expressions
    over CUDA's block/thread variables.  Thread-to-cell mappings are
    modular and exchangeable (the paper auto-tunes over them): the mapping
    only determines how [_i0.._i2] are derived, the stencil body is shared.
    Approximate operations use [__fdividef] / [__frsqrt_rn] when enabled. *)

open Symbolic
open Field

(** Thread-to-cell mapping strategies. *)
type mapping =
  | Linear3d of { block : int * int * int }
      (** one thread per cell; thread blocks tile the domain *)
  | Slice2d of { block : int * int }
      (** threads tile an x–y slice; each thread marches along z *)

let default_mapping = Linear3d { block = (64, 2, 2) }

let signature (k : Ir.Kernel.t) =
  let fields = Ir.Kernel.fields k in
  let field_args =
    List.map
      (fun (f : Fieldspec.t) -> Printf.sprintf "double * __restrict__ %s" (Cexpr.ident f.name))
      fields
  in
  let scalar_args = List.map (fun s -> "double " ^ Cexpr.ident s) (Ir.Kernel.parameters k) in
  let dim = k.Ir.Kernel.dim in
  let admin =
    List.init dim (fun d -> Printf.sprintf "long _n%d" d)
    @ List.init (dim - 1) (fun d -> Printf.sprintf "long _s%d" (d + 1))
    @ [ "long _cs" ]
    @ List.init dim (fun d -> Printf.sprintf "long _off_%d" d)
    @ List.init (dim - 1) (fun d -> Printf.sprintf "long _gs%d" d)
    @ [ "int _step" ]
  in
  Printf.sprintf "__global__ void %s(%s)" (Cexpr.ident k.Ir.Kernel.name)
    (String.concat ", " (field_args @ scalar_args @ admin))

let bound (k : Ir.Kernel.t) axis =
  match k.Ir.Kernel.iteration with
  | Ir.Kernel.CellSweep -> Printf.sprintf "_n%d" axis
  | Ir.Kernel.StaggeredSweep axes ->
    if List.mem axis axes then Printf.sprintf "(_n%d + 1)" axis else Printf.sprintf "_n%d" axis

let index_setup (k : Ir.Kernel.t) mapping buf =
  let dim = k.Ir.Kernel.dim in
  let dims3 = [| "x"; "y"; "z" |] in
  (match mapping with
  | Linear3d _ ->
    for d = 0 to dim - 1 do
      Buffer.add_string buf
        (Printf.sprintf "  const long _i%d = blockIdx.%s * blockDim.%s + threadIdx.%s;\n" d
           dims3.(d) dims3.(d) dims3.(d))
    done;
    let guard =
      String.concat " || "
        (List.init dim (fun d -> Printf.sprintf "_i%d >= %s" d (bound k d)))
    in
    Buffer.add_string buf (Printf.sprintf "  if (%s) return;\n" guard)
  | Slice2d _ ->
    Buffer.add_string buf "  const long _i0 = blockIdx.x * blockDim.x + threadIdx.x;\n";
    Buffer.add_string buf "  const long _i1 = blockIdx.y * blockDim.y + threadIdx.y;\n";
    Buffer.add_string buf
      (Printf.sprintf "  if (_i0 >= %s || _i1 >= %s) return;\n" (bound k 0) (bound k 1)));
  match mapping with
  | Slice2d _ when dim = 3 -> true (* caller must open the z march loop *)
  | _ -> false

let emit_assignment buf ~indent ~approx (a : Assignment.t) =
  let pad = String.make indent ' ' in
  let dialect = Cexpr.Cuda in
  match a.lhs with
  | Assignment.Temp s ->
    Buffer.add_string buf
      (Printf.sprintf "%sconst double %s = %s;\n" pad (Cexpr.ident s)
         (Cexpr.emit ~dialect ~approx a.rhs))
  | Assignment.Store acc ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s;\n" pad (Cexpr.access_ref acc)
         (Cexpr.emit ~dialect ~approx a.rhs))

(** Emit the kernel.  [fence_stride], when set, inserts [__threadfence_block()]
    every that many statements (the register-pressure transformation of
    §3.5). *)
let emit ?(mapping = default_mapping) ?(approx = Cexpr.exact) ?fence_stride (k : Ir.Kernel.t) =
  let dim = k.Ir.Kernel.dim in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (signature k);
  Buffer.add_string buf " {\n";
  let z_march = index_setup k mapping buf in
  let indent = if z_march then 4 else 2 in
  if z_march then
    Buffer.add_string buf
      (Printf.sprintf "  for (long _i2 = 0; _i2 < %s; ++_i2) {\n" (bound k 2));
  let pad = String.make indent ' ' in
  let base_terms =
    List.init dim (fun d -> if d = 0 then "_i0" else Printf.sprintf "_i%d*_s%d" d d)
  in
  Buffer.add_string buf
    (Printf.sprintf "%sconst long _b = %s;\n" pad (String.concat " + " base_terms));
  let uses_rand = Ccode.kernel_uses_rand k in
  if uses_rand then begin
    let rec cell d acc =
      if d < 0 then acc
      else
        let g = Printf.sprintf "(_i%d + _off_%d)" d d in
        let acc = if acc = "" then g else Printf.sprintf "(%s) * _gs%d + %s" acc d g in
        cell (d - 1) acc
    in
    Buffer.add_string buf
      (Printf.sprintf "%sconst long long _cell = %s;\n" pad (cell (dim - 1) ""))
  end;
  List.iteri
    (fun i a ->
      (match fence_stride with
      | Some stride when i > 0 && i mod stride = 0 ->
        Buffer.add_string buf (pad ^ "__threadfence_block();\n")
      | _ -> ());
      emit_assignment buf ~indent ~approx a)
    k.Ir.Kernel.body;
  if z_march then Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let prelude =
  {|#include <cuda_runtime.h>
#include <math.h>

__device__ static inline double pf_pow2(double x) { return x * x; }
__device__ static inline double pf_pow3(double x) { return x * x * x; }
__device__ static inline double pf_pow4(double x) { double s = x * x; return s * s; }

__device__ static inline double pf_philox_sym(long long cell, int step, int slot) {
  unsigned c0 = (unsigned)cell, c1 = (unsigned)(cell >> 32);
  unsigned c2 = (unsigned)step, c3 = (unsigned)slot;
  unsigned k0 = 0x5eedu, k1 = 0xC0FFEEu;
  for (int r = 0; r < 10; ++r) {
    unsigned long long p0 = (unsigned long long)0xD2511F53u * c0;
    unsigned long long p1 = (unsigned long long)0xCD9E8D57u * c2;
    unsigned h0 = (unsigned)(p0 >> 32), l0 = (unsigned)p0;
    unsigned h1 = (unsigned)(p1 >> 32), l1 = (unsigned)p1;
    c0 = h1 ^ c1 ^ k0; c1 = l1; c2 = h0 ^ c3 ^ k1; c3 = l0;
    k0 += 0x9E3779B9u; k1 += 0xBB67AE85u;
  }
  unsigned long long bits = ((unsigned long long)c0 << 21) | (c1 >> 11);
  return 2.0 * ((double)bits / 9007199254740992.0) - 1.0;
}
|}

let translation_unit ?mapping ?approx ?fence_stride kernels =
  prelude ^ "\n" ^ String.concat "\n" (List.map (emit ?mapping ?approx ?fence_stride) kernels)

(** Host-side launch configuration for a mapping and block dims. *)
let launch_config mapping ~dims =
  match mapping with
  | Linear3d { block = bx, by, bz } ->
    let g d b = (d + b - 1) / b in
    Printf.sprintf "dim3 block(%d,%d,%d); dim3 grid(%d,%d,%d);" bx by bz (g dims.(0) bx)
      (g dims.(1) by)
      (g (if Array.length dims > 2 then dims.(2) else 1) bz)
  | Slice2d { block = bx, by } ->
    let g d b = (d + b - 1) / b in
    Printf.sprintf "dim3 block(%d,%d,1); dim3 grid(%d,%d,1);" bx by (g dims.(0) bx)
      (g dims.(1) by)
