(** Scalar C expression printing, shared by the C and CUDA backends.

    Field accesses are rendered against a single running base index [_b]
    (all fields of a kernel share dims and ghost width, paper §3.4's
    base-pointer + linear-index form): [f[_b + o0 + o1*_s1 + c*_cs]].
    Small integer powers go through static-inline helpers so operands are
    evaluated once. *)

open Symbolic

(** Approximate-operation policy: the user may mark divisions and (inverse)
    square roots for fast approximate evaluation (paper §3.5). *)
type approx = { fast_div : bool; fast_rsqrt : bool }

let exact = { fast_div = false; fast_rsqrt = false }

type dialect = C | Cuda

let ident s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') s

let float_lit x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let access_index (a : Fieldspec.access) =
  let comp =
    if a.face_axis >= 0 then (a.component * a.field.Fieldspec.dim) + a.face_axis
    else a.component
  in
  let b = Buffer.create 32 in
  Buffer.add_string b "_b";
  Array.iteri
    (fun d o ->
      if o <> 0 then
        if d = 0 then Buffer.add_string b (Printf.sprintf " %s %d" (if o > 0 then "+" else "-") (abs o))
        else
          Buffer.add_string b
            (Printf.sprintf " %s %d*_s%d" (if o > 0 then "+" else "-") (abs o) d))
    a.offsets;
  if comp <> 0 then Buffer.add_string b (Printf.sprintf " + %d*_cs" comp);
  Buffer.contents b

let access_ref (a : Fieldspec.access) =
  Printf.sprintf "%s[%s]" (ident a.field.Fieldspec.name) (access_index a)

(* Coordinate value: physical position of the cell center.  The loop
   counters _i0.. are block-local; _off_d is the block's global offset. *)
let coord_ref d = Printf.sprintf "((double)(_i%d + _off_%d) + 0.5) * dx" d d

let rec emit ?(dialect = C) ?(approx = exact) e =
  let go e = emit ~dialect ~approx e in
  let paren s = "(" ^ s ^ ")" in
  match e with
  | Expr.Num x -> float_lit x
  | Expr.Sym s -> ident s
  | Expr.Coord d -> paren (coord_ref d)
  | Expr.Access a -> access_ref a
  | Expr.Rand slot -> Printf.sprintf "pf_philox_sym(_cell, _step, %d)" slot
  | Expr.Diff _ -> invalid_arg "Cexpr.emit: Diff survived discretization"
  | Expr.Add xs -> paren (String.concat " + " (List.map go xs))
  | Expr.Mul xs -> paren (String.concat "*" (List.map go xs))
  | Expr.Pow (b, n) -> (
    let base = go b in
    match n with
    | 2 -> Printf.sprintf "pf_pow2(%s)" base
    | 3 -> Printf.sprintf "pf_pow3(%s)" base
    | 4 -> Printf.sprintf "pf_pow4(%s)" base
    | -1 -> emit_div ~dialect ~approx "1.0" base
    | -2 -> emit_div ~dialect ~approx "1.0" (Printf.sprintf "pf_pow2(%s)" base)
    | n when n > 0 -> Printf.sprintf "pow(%s, %d.0)" base n
    | n -> emit_div ~dialect ~approx "1.0" (Printf.sprintf "pow(%s, %d.0)" base (-n)))
  | Expr.Fun (f, xs) -> (
    let args = List.map go xs in
    match (f, args) with
    | Expr.Sqrt, [ x ] -> Printf.sprintf "sqrt(%s)" x
    | Expr.Rsqrt, [ x ] ->
      if approx.fast_rsqrt && dialect = Cuda then Printf.sprintf "(double)__frsqrt_rn((float)(%s))" x
      else emit_div ~dialect ~approx "1.0" (Printf.sprintf "sqrt(%s)" x)
    | Expr.Exp, [ x ] -> Printf.sprintf "exp(%s)" x
    | Expr.Log, [ x ] -> Printf.sprintf "log(%s)" x
    | Expr.Sin, [ x ] -> Printf.sprintf "sin(%s)" x
    | Expr.Cos, [ x ] -> Printf.sprintf "cos(%s)" x
    | Expr.Tanh, [ x ] -> Printf.sprintf "tanh(%s)" x
    | Expr.Fabs, [ x ] -> Printf.sprintf "fabs(%s)" x
    | Expr.Fmin, [ x; y ] -> Printf.sprintf "fmin(%s, %s)" x y
    | Expr.Fmax, [ x; y ] -> Printf.sprintf "fmax(%s, %s)" x y
    | _ -> invalid_arg "Cexpr.emit: bad function arity")
  | Expr.Select (c, t, f) ->
    let cond =
      match c with
      | Expr.Lt (a, b) -> Printf.sprintf "%s < %s" (go a) (go b)
      | Expr.Le (a, b) -> Printf.sprintf "%s <= %s" (go a) (go b)
    in
    paren (Printf.sprintf "%s ? %s : %s" cond (go t) (go f))

and emit_div ~dialect ~approx num den =
  if approx.fast_div && dialect = Cuda then
    Printf.sprintf "(double)__fdividef((float)(%s), (float)(%s))" num den
  else Printf.sprintf "(%s/%s)" num den

(** Shared helper prelude (powers, Philox for fluctuation terms). *)
let prelude =
  {|#include <math.h>
#include <stdint.h>

static inline double pf_pow2(double x) { return x * x; }
static inline double pf_pow3(double x) { return x * x * x; }
static inline double pf_pow4(double x) { double s = x * x; return s * s; }

/* Philox-4x32-10 keyed on (cell index, time step): stateless fluctuation. */
static inline double pf_philox_sym(int64_t cell, int32_t step, int32_t slot) {
  uint32_t c0 = (uint32_t)cell, c1 = (uint32_t)(cell >> 32);
  uint32_t c2 = (uint32_t)step, c3 = (uint32_t)slot;
  uint32_t k0 = 0x5eedu, k1 = 0xC0FFEEu;
  for (int r = 0; r < 10; ++r) {
    uint64_t p0 = (uint64_t)0xD2511F53u * c0, p1 = (uint64_t)0xCD9E8D57u * c2;
    uint32_t h0 = (uint32_t)(p0 >> 32), l0 = (uint32_t)p0;
    uint32_t h1 = (uint32_t)(p1 >> 32), l1 = (uint32_t)p1;
    c0 = h1 ^ c1 ^ k0; c1 = l1; c2 = h0 ^ c3 ^ k1; c3 = l0;
    k0 += 0x9E3779B9u; k1 += 0xBB67AE85u;
  }
  uint64_t bits = ((uint64_t)c0 << 21) | ((uint64_t)c1 >> 11);
  return 2.0 * ((double)bits / 9007199254740992.0) - 1.0;
}
|}
