lib/backend/cexpr.ml: Array Buffer Expr Fieldspec Float List Printf String Symbolic
