lib/backend/cuda.ml: Array Assignment Buffer Ccode Cexpr Field Fieldspec Ir List Printf String Symbolic
