lib/backend/simd.ml: Array Assignment Buffer Ccode Cexpr Expr Field Fieldspec Ir List Option Printf String Symbolic
