lib/backend/ccode.ml: Array Assignment Buffer Cexpr Expr Field Fieldspec Ir List Printf String Symbolic
