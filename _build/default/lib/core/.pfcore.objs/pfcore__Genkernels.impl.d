lib/core/genkernels.ml: Array Assignment Expr Fd Field Fieldspec Fmt Fun Ir List Model Opcount Params Printf Symbolic
