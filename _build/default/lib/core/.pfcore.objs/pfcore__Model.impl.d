lib/core/model.ml: Array Energy Expr Fieldspec Float List Params Printf Symbolic
