lib/core/vtkout.ml: Array Genkernels List Params Printf Simulation Timestep Vm
