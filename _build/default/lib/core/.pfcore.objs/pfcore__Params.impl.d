lib/core/params.ml: Array
