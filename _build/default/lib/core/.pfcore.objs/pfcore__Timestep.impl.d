lib/core/timestep.ml: Array Fieldspec Genkernels Obs Option Params Symbolic Vm
