lib/core/timestep.ml: Array Fieldspec Genkernels List Obs Option Params Symbolic Vm
