lib/core/timestep.ml: Array Fieldspec Genkernels Option Params Symbolic Vm
