lib/core/simulation.ml: Array Float Genkernels List Option Params Timestep Vm
