(** Legacy-VTK output of simulation fields.

    waLBerla ships dedicated post-processing / I/O for phase-field runs
    (paper §4.1); this is the minimal equivalent a downstream user needs:
    structured-points files of the phase fields (one scalar per phase plus
    the dominant-phase index), loadable in ParaView. *)

let write_scalars oc name values =
  Printf.fprintf oc "SCALARS %s double 1\nLOOKUP_TABLE default\n" name;
  List.iter (fun v -> Printf.fprintf oc "%.6g\n" v) (List.rev values)

(** Write the φ field of a simulation block to [path] (legacy VTK ASCII,
    STRUCTURED_POINTS).  Works for 2D (written as a one-cell-thick volume)
    and 3D blocks. *)
let write_phi (t : Timestep.t) path =
  let p = t.gen.Genkernels.params in
  let buf = Simulation.phi_buffer t in
  let dims = t.block.Vm.Engine.dims in
  let dim = Array.length dims in
  let nx = dims.(0) in
  let ny = if dim > 1 then dims.(1) else 1 in
  let nz = if dim > 2 then dims.(2) else 1 in
  let oc = open_out path in
  Printf.fprintf oc "# vtk DataFile Version 3.0\npfgen phase field (%s)\nASCII\n" p.Params.name;
  Printf.fprintf oc "DATASET STRUCTURED_POINTS\nDIMENSIONS %d %d %d\n" nx ny nz;
  Printf.fprintf oc "ORIGIN 0 0 0\nSPACING %g %g %g\n" p.Params.dx p.Params.dx p.Params.dx;
  Printf.fprintf oc "POINT_DATA %d\n" (nx * ny * nz);
  let coords = Array.make dim 0 in
  let collect f =
    let acc = ref [] in
    for z = 0 to nz - 1 do
      for y = 0 to ny - 1 do
        for x = 0 to nx - 1 do
          coords.(0) <- x;
          if dim > 1 then coords.(1) <- y;
          if dim > 2 then coords.(2) <- z;
          acc := f coords :: !acc
        done
      done
    done;
    !acc
  in
  for c = 0 to p.Params.n_phases - 1 do
    write_scalars oc
      (Printf.sprintf "phi_%d" c)
      (collect (fun coords -> Vm.Buffer.get buf ~component:c coords))
  done;
  write_scalars oc "dominant_phase"
    (collect (fun coords ->
         let best = ref 0 and bv = ref neg_infinity in
         for c = 0 to p.Params.n_phases - 1 do
           let v = Vm.Buffer.get buf ~component:c coords in
           if v > !bv then begin
             bv := v;
             best := c
           end
         done;
         float_of_int !best));
  close_out oc
