(** Time stepping (paper Algorithm 1).

    One step runs, on a block:

    + φ kernel (full, or staggered pass + main pass for the split variant),
    + Gibbs-simplex projection of the updated phase field,
    + ghost-layer exchange / boundary handling of φ_dst,
    + μ kernel (full or split),
    + ghost-layer exchange of μ_dst,
    + src ↔ dst buffer swap.

    The exchange is pluggable: the default closes the block periodically; the
    [Blocks] library substitutes real inter-block communication. *)

open Symbolic

type variant = Full | Split

type t = {
  gen : Genkernels.t;
  block : Vm.Engine.block;
  variant_phi : variant;
  variant_mu : variant;
  num_domains : int;
  lane : int;  (** observability lane: 0 = local, 1 + r = simulated rank r *)
  exchange : Vm.Engine.block -> Fieldspec.t -> unit;
  phi_full : Vm.Engine.bound;
  phi_stag : Vm.Engine.bound;
  phi_main : Vm.Engine.bound;
  mu_full : Vm.Engine.bound option;
  mu_stag : Vm.Engine.bound option;
  mu_main : Vm.Engine.bound option;
  projection : Vm.Engine.bound;
  mutable step_count : int;
  mutable time : float;
}

let default_exchange block (f : Fieldspec.t) = Vm.Buffer.periodic (Vm.Engine.buffer block f)

let field_list (g : Genkernels.t) =
  let f = g.fields in
  [ f.phi_src; f.phi_dst; f.mu_src; f.mu_dst; f.phi_stag; f.mu_stag ]

(** Build a simulation block and bind all kernels of the chosen variants.
    [rank] names the simulated rank this block belongs to (set by
    [Blocks.Forest]); it only affects which observability lane the block's
    spans land on. *)
let create ?(variant_phi = Full) ?(variant_mu = Full) ?(num_domains = 1) ?rank
    ?(exchange = default_exchange) ?global_dims ?offset ~dims (gen : Genkernels.t) =
  let block = Vm.Engine.make_block ~ghost:2 ?global_dims ?offset ~dims (field_list gen) in
  let bind k = Vm.Engine.bind k block in
  {
    gen;
    block;
    variant_phi;
    variant_mu;
    num_domains;
    lane = (match rank with None -> 0 | Some r -> Obs.Sink.rank_lane r);
    exchange;
    phi_full = bind gen.phi_full;
    phi_stag = bind gen.phi_split.stag;
    phi_main = bind gen.phi_split.main;
    mu_full = Option.map bind gen.mu_full;
    mu_stag = Option.map (fun (p : Genkernels.pair) -> bind p.stag) gen.mu_split;
    mu_main = Option.map (fun (p : Genkernels.pair) -> bind p.main) gen.mu_split;
    projection = bind gen.projection;
    step_count = 0;
    time = 0.;
  }

let runtime_params t =
  let p = t.gen.Genkernels.params in
  ("t", t.time) :: ("dx", p.Params.dx) :: ("dt", p.Params.dt) :: t.gen.Genkernels.bindings

(** Exchange ghosts of the source fields — required once after initial
    conditions are written. *)
let prime t =
  t.exchange t.block t.gen.Genkernels.fields.phi_src;
  if Params.n_mu t.gen.Genkernels.params > 0 then
    t.exchange t.block t.gen.Genkernels.fields.mu_src

let run_kernel t bound =
  Vm.Engine.run ~num_domains:t.num_domains ~step:t.step_count
    ~params:(runtime_params t) bound

let has_mu t = Params.n_mu t.gen.Genkernels.params > 0

(* All per-block spans land on this block's lane so a forest run renders
   one trace track per simulated rank. *)
let in_lane t f = Obs.Span.in_lane t.lane f

let exchange_span t (f : Fieldspec.t) =
  in_lane t (fun () ->
      Obs.Span.with_ ~cat:"comm" ("exchange:" ^ f.Fieldspec.name) (fun () ->
          t.exchange t.block f))

(** Phase 1: φ kernel(s) and the simplex projection (Algorithm 1, line 1). *)
let phase_phi t =
  in_lane t (fun () ->
      Obs.Span.with_ ~cat:"step" "phase:phi" (fun () ->
          (match t.variant_phi with
          | Full -> run_kernel t t.phi_full
          | Split ->
            run_kernel t t.phi_stag;
            run_kernel t t.phi_main);
          Obs.Span.with_ ~cat:"step" "projection" (fun () ->
              run_kernel t t.projection)))

(** Phase 2: μ kernel(s) (Algorithm 1, line 3); requires φ_dst ghosts. *)
let phase_mu t =
  match (t.variant_mu, t.mu_full, t.mu_stag, t.mu_main) with
  | _, None, _, _ -> ()
  | Full, Some mu, _, _ ->
    in_lane t (fun () -> Obs.Span.with_ ~cat:"step" "phase:mu" (fun () -> run_kernel t mu))
  | Split, _, Some stag, Some main ->
    in_lane t (fun () ->
        Obs.Span.with_ ~cat:"step" "phase:mu" (fun () ->
            run_kernel t stag;
            run_kernel t main))
  | Split, _, _, _ -> assert false

(** Phase 3: src ↔ dst swap and time advance (Algorithm 1, line 5). *)
let finish t =
  let f = t.gen.Genkernels.fields in
  Vm.Buffer.swap (Vm.Engine.buffer t.block f.phi_src) (Vm.Engine.buffer t.block f.phi_dst);
  if has_mu t then
    Vm.Buffer.swap (Vm.Engine.buffer t.block f.mu_src) (Vm.Engine.buffer t.block f.mu_dst);
  t.step_count <- t.step_count + 1;
  t.time <- t.time +. t.gen.Genkernels.params.Params.dt

(** Advance one time step (Algorithm 1), single-block version. *)
let step t =
  let f = t.gen.Genkernels.fields in
  in_lane t (fun () ->
      Obs.Span.with_ ~cat:"step" ~args:[ ("step", float_of_int t.step_count) ] "step"
        (fun () ->
          phase_phi t;
          exchange_span t f.phi_dst;
          phase_mu t;
          if has_mu t then exchange_span t f.mu_dst;
          finish t))

(** Advance [steps] steps; [on_step] fires after every completed step —
    the hook the resilience driver uses to checkpoint every N steps. *)
let run ?(on_step = fun (_ : t) -> ()) t ~steps =
  for _ = 1 to steps do
    step t;
    on_step t
  done

(** Resume entry point: reset the step counter and physical time to those
    of a restored snapshot (field buffers are restored separately by
    [Resilience.Snapshot]). *)
let restore t ~step ~time =
  t.step_count <- step;
  t.time <- time

(** Cells updated per full time step (for MLUP/s reporting). *)
let lups_per_step t = Array.fold_left ( * ) 1 t.block.Vm.Engine.dims
