(** Type assignment for kernel bodies (paper §3.4: "the first
    transformation on this layer ensures that all expressions are properly
    typed and inserts casts where necessary").

    The stencil language is small: field data and temporaries are [F64],
    loop counters and cell indices are [I64], comparison results are [Bool].
    The pass classifies every symbol of a kernel, checks that expressions
    are well-typed (e.g. no field access used as a condition without a
    comparison) and reports where integer→float conversions occur (the
    coordinate terms). *)

open Symbolic
open Field

type dtype = F64 | F32 | I64 | Bool

let to_string = function F64 -> "double" | F32 -> "float" | I64 -> "int64_t" | Bool -> "bool"

type env = {
  temps : (string, dtype) Hashtbl.t;
  params : (string, dtype) Hashtbl.t;
  mutable casts : int;  (** int→float conversions required (Coord terms) *)
}

exception Type_error of string

(* All arithmetic in the stencil language is double precision; conditions
   are boolean; coordinates convert int64 counters to double. *)
let rec infer env (e : Expr.t) : dtype =
  match e with
  | Expr.Num _ -> F64
  | Expr.Sym s -> (
    match Hashtbl.find_opt env.temps s with
    | Some t -> t
    | None -> (
      match Hashtbl.find_opt env.params s with
      | Some t -> t
      | None ->
        Hashtbl.replace env.params s F64;
        F64))
  | Expr.Coord _ ->
    env.casts <- env.casts + 1;
    F64 (* int64 counter cast to double *)
  | Expr.Access _ -> F64
  | Expr.Rand _ -> F64
  | Expr.Diff _ -> raise (Type_error "Diff node in a discretized kernel")
  | Expr.Add xs | Expr.Mul xs ->
    List.iter (expect env F64) xs;
    F64
  | Expr.Pow (b, _) ->
    expect env F64 b;
    F64
  | Expr.Fun (_, xs) ->
    List.iter (expect env F64) xs;
    F64
  | Expr.Select (c, t, f) ->
    let _ : dtype = infer_cond env c in
    expect env F64 t;
    expect env F64 f;
    F64

and infer_cond env = function
  | Expr.Lt (a, b) | Expr.Le (a, b) ->
    expect env F64 a;
    expect env F64 b;
    Bool

and expect env want e =
  let got = infer env e in
  if got <> want then
    raise
      (Type_error
         (Fmt.str "expected %s, got %s in %a" (to_string want) (to_string got) Expr.pp e))

(** Infer and check the whole kernel; returns the typing environment with
    every temporary and parameter classified. *)
let check (k : Kernel.t) =
  let env = { temps = Hashtbl.create 64; params = Hashtbl.create 16; casts = 0 } in
  List.iter
    (fun (a : Assignment.t) ->
      let t = infer env a.rhs in
      match a.lhs with
      | Assignment.Temp s ->
        if t <> F64 then raise (Type_error ("temporary " ^ s ^ " is not double"));
        Hashtbl.replace env.temps s F64
      | Assignment.Store _ -> if t <> F64 then raise (Type_error "store of a non-double"))
    k.Kernel.body;
  env

(** Declarations the backends need: (symbol, dtype) for every runtime
    parameter, in kernel-argument order. *)
let parameter_types k =
  let env = check k in
  List.map
    (fun s -> (s, Option.value (Hashtbl.find_opt env.params s) ~default:F64))
    (Kernel.parameters k)
