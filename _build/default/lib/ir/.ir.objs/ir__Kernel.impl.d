lib/ir/kernel.ml: Array Assignment Field Fieldspec Fmt List Printf Stdlib String Symbolic
