lib/ir/lower.ml: Array Assignment Expr Field Fmt Fun Hashtbl Int Kernel List Set Stdlib Symbolic
