lib/ir/typing.ml: Assignment Expr Field Fmt Hashtbl Kernel List Option Symbolic
