(** Compute kernels — the unit handed from the discretization layer to the
    intermediate-representation layer.

    A kernel is an SSA assignment list executed once per cell of a sweep,
    together with iteration metadata.  [CellSweep] kernels update interior
    cells; [StaggeredSweep] kernels write a staggered (face) field and
    iterate one extra layer along each axis they store faces for
    (paper §3.4 discusses the non-trivial loop bounds this induces;
    we fuse the per-axis face iterations by extending the bounds). *)

open Symbolic
open Field

type iteration =
  | CellSweep
  | StaggeredSweep of int list  (** axes that carry stored faces *)

type t = {
  name : string;
  dim : int;
  body : Assignment.t list;
  iteration : iteration;
  ghost : int;  (** ghost layers the kernel's reads require *)
}

let required_ghost body =
  List.fold_left
    (fun g (a : Fieldspec.access) ->
      Array.fold_left (fun g o -> max g (abs o)) g a.offsets)
    0 (Assignment.loads body)

let make ?(iteration = CellSweep) ~name ~dim body =
  Assignment.check_ssa body;
  { name; dim; body; iteration; ghost = required_ghost body }

(** All fields the kernel touches, reads first. *)
let fields k = Assignment.fields k.body

(** Scalar arguments of the generated function: free symbols of the body. *)
let parameters k = Assignment.free_symbols k.body

let loads k = Assignment.loads k.body
let stores k = Assignment.stores k.body

(** Replace the body through an assignment-list transformation, rechecking
    SSA; ghost requirements are recomputed. *)
let map_body f k =
  let body = f k.body in
  Assignment.check_ssa body;
  { k with body; ghost = required_ghost body }

(** Neighbor-access pattern label like the paper's D3C7 / D3C19, per field. *)
let stencil_signature k (field : Fieldspec.t) =
  let offsets =
    List.filter_map
      (fun (a : Fieldspec.access) ->
        if Fieldspec.equal a.field field then Some (Array.to_list a.offsets) else None)
      (loads k)
    |> List.sort_uniq Stdlib.compare
  in
  Printf.sprintf "D%dC%d" k.dim (List.length offsets)

let pp ppf k =
  let iter =
    match k.iteration with
    | CellSweep -> "cells"
    | StaggeredSweep axes ->
      "staggered:" ^ String.concat "," (List.map string_of_int axes)
  in
  Fmt.pf ppf "@[<v 2>kernel %s (%dD, %s, ghost=%d):@ %a@]" k.name k.dim iter k.ghost
    Assignment.pp_list k.body
