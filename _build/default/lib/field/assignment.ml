(** Assignment lists — the stencil representation of a kernel.

    A kernel body is a list of assignments executed for every cell.
    Left-hand sides are either writes to a field (at a relative offset,
    usually the center) or single-assignment temporary symbols (the list is
    in SSA form, paper §3.4). *)

open Symbolic

type lhs =
  | Temp of string                 (** SSA temporary *)
  | Store of Fieldspec.access      (** field write *)

type t = { lhs : lhs; rhs : Expr.t }

let assign_temp name rhs = { lhs = Temp name; rhs }
let store access rhs = { lhs = Store access; rhs }

let pp_lhs ppf = function
  | Temp s -> Fmt.string ppf s
  | Store a -> Fieldspec.pp_access ppf a

let pp ppf a = Fmt.pf ppf "@[<hov 2>%a <-@ %a@]" pp_lhs a.lhs Expr.pp a.rhs

let pp_list = Fmt.list ~sep:Fmt.cut pp

(** Temporaries defined by the list, in definition order. *)
let defined_temps assignments =
  List.filter_map (fun a -> match a.lhs with Temp s -> Some s | Store _ -> None) assignments

(** Symbols read but never defined: these become kernel arguments. *)
let free_symbols assignments =
  let defined = defined_temps assignments in
  let read =
    List.concat_map (fun a -> Expr.free_syms a.rhs) assignments
    |> List.sort_uniq Stdlib.compare
  in
  List.filter (fun s -> not (List.mem s defined)) read

(** Distinct field accesses read by the kernel. *)
let loads assignments =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc r ->
          if List.exists (Fieldspec.equal_access r) acc then acc else r :: acc)
        acc (Expr.accesses a.rhs))
    [] assignments
  |> List.rev

let stores assignments =
  List.filter_map (fun a -> match a.lhs with Store x -> Some x | Temp _ -> None) assignments

let fields assignments =
  let of_accesses accs =
    List.map (fun (a : Fieldspec.access) -> a.field) accs
  in
  of_accesses (loads assignments) @ of_accesses (stores assignments)
  |> List.fold_left (fun acc f -> if List.exists (Fieldspec.equal f) acc then acc else f :: acc) []
  |> List.rev

(** Check the single-static-assignment property: every temporary is defined
    exactly once and before its first use.  Raises [Invalid_argument]. *)
let check_ssa assignments =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun a ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem seen s) && List.mem s (defined_temps assignments) then
            invalid_arg (Printf.sprintf "Assignment.check_ssa: %s used before definition" s))
        (Expr.free_syms a.rhs);
      match a.lhs with
      | Temp s ->
        if Hashtbl.mem seen s then
          invalid_arg (Printf.sprintf "Assignment.check_ssa: %s defined twice" s);
        Hashtbl.add seen s ()
      | Store _ -> ())
    assignments

(** Run global CSE over the right-hand sides, prepending the shared
    subexpression bindings as temporary assignments. *)
let cse ?(prefix = "xi_") assignments =
  let { Cse.bindings; exprs } = Cse.run ~prefix (List.map (fun a -> a.rhs) assignments) in
  List.map (fun (name, rhs) -> assign_temp name rhs) bindings
  @ List.map2 (fun a rhs -> { a with rhs }) assignments exprs

(** Simplify each right-hand side individually (expand-or-factor, whichever
    is cheaper), the per-term pass that precedes global CSE. *)
let simplify assignments =
  List.map (fun a -> { a with rhs = Simplify.simplify_term a.rhs }) assignments

(** Substitute fixed parameters by numeric values in all right-hand sides. *)
let freeze_parameters bindings assignments =
  List.map (fun a -> { a with rhs = Simplify.freeze_parameters bindings a.rhs }) assignments

(** Substitute arbitrary atoms (e.g. rewrite accesses) in all rhs. *)
let subst pairs assignments = List.map (fun a -> { a with rhs = Expr.subst pairs a.rhs }) assignments
