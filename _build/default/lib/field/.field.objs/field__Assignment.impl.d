lib/field/assignment.ml: Cse Expr Fieldspec Fmt Hashtbl List Printf Simplify Stdlib Symbolic
