lib/field/opcount.ml: Assignment Expr Fmt List Symbolic
