(** Floating-point operation counting (paper Table 1).

    Counts additions, multiplications, divisions, square roots and inverse
    square roots per cell update of an assignment list, plus loads (distinct
    double values read) and stores.  The normalized-FLOP weighting follows
    the paper: add/mul = 1, div = 16, sqrt = 10, rsqrt = 2 (their throughput
    on Skylake). *)

open Symbolic

type t = {
  loads : int;
  stores : int;
  adds : int;
  muls : int;
  divs : int;
  sqrts : int;
  rsqrts : int;
  others : int;  (** exp/log/trig/abs/min/max/selects, rare in these kernels *)
}

let zero = { loads = 0; stores = 0; adds = 0; muls = 0; divs = 0; sqrts = 0; rsqrts = 0; others = 0 }

let ( ++ ) a b =
  {
    loads = a.loads + b.loads;
    stores = a.stores + b.stores;
    adds = a.adds + b.adds;
    muls = a.muls + b.muls;
    divs = a.divs + b.divs;
    sqrts = a.sqrts + b.sqrts;
    rsqrts = a.rsqrts + b.rsqrts;
    others = a.others + b.others;
  }

(** Weighted sum matching the paper's "normalized FLOPS" row. *)
let normalized c = c.adds + c.muls + (16 * c.divs) + (10 * c.sqrts) + (2 * c.rsqrts) + c.others

let total_flops c = c.adds + c.muls + c.divs + c.sqrts + c.rsqrts + c.others

let of_expr e =
  Expr.fold
    (fun acc node ->
      match node with
      | Expr.Add xs -> { acc with adds = acc.adds + List.length xs - 1 }
      | Expr.Mul xs -> { acc with muls = acc.muls + List.length xs - 1 }
      | Expr.Pow (_, n) when n > 0 -> { acc with muls = acc.muls + n - 1 }
      | Expr.Pow (_, n) -> { acc with divs = acc.divs + 1; muls = acc.muls + abs n - 1 }
      | Expr.Fun (Sqrt, _) -> { acc with sqrts = acc.sqrts + 1 }
      | Expr.Fun (Rsqrt, _) -> { acc with rsqrts = acc.rsqrts + 1 }
      | Expr.Fun ((Exp | Log | Sin | Cos | Tanh | Fabs | Fmin | Fmax), _) ->
        { acc with others = acc.others + 1 }
      | Expr.Select _ -> { acc with others = acc.others + 1 }
      | Expr.Num _ | Expr.Sym _ | Expr.Coord _ | Expr.Access _ | Expr.Diff _ | Expr.Rand _ -> acc)
    zero e

(** Counts for one cell update of an assignment list.  Assumes the list is
    already in its final (post-CSE) form: temporaries are counted once. *)
let of_assignments assignments =
  let ops =
    List.fold_left (fun acc (a : Assignment.t) -> acc ++ of_expr a.rhs) zero assignments
  in
  {
    ops with
    loads = List.length (Assignment.loads assignments);
    stores = List.length (Assignment.stores assignments);
  }

let pp ppf c =
  Fmt.pf ppf "loads=%d stores=%d adds=%d muls=%d divs=%d sqrts=%d rsqrts=%d norm=%d"
    c.loads c.stores c.adds c.muls c.divs c.sqrts c.rsqrts (normalized c)
