lib/obs/span.ml: Clock Fun Sink
