lib/obs/report.ml: Array Filename Float Fmt List Metrics Printf String
