lib/obs/sink.ml: Atomic List Mutex
