lib/obs/clock.ml: Int64 Monotonic_clock
