lib/obs/metrics.ml: Array Float Fun Hashtbl List Mutex Sink String
