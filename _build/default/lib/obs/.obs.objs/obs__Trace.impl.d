lib/obs/trace.ml: Buffer Char Float Int64 List Printf Sink String
