(** Metrics registry: counters, gauges and fixed-bucket histograms.

    Metrics are registered by name on first use ({!counter} etc. are
    idempotent) and mutated in place.  Mutations are gated on
    {!Sink.enabled} so that instrumented hot paths cost one branch when
    observability is off.  All mutation happens on the coordinating thread
    (per sweep / per message), never per cell, so plain mutable fields
    suffice; the registry itself is mutex-protected against concurrent
    registration.

    {!snapshot} freezes the registry into an immutable value; snapshots
    {!merge} pointwise (counters and histogram buckets add, gauges take the
    max), which is how per-domain or per-run aggregates are combined.
    Merge is associative and commutative with {!empty} as the unit — a law
    the [check] suite enforces by property test. *)

type counter = { cname : string; mutable count : int }
type gauge = { gname : string; mutable value : float }

type histogram = {
  hname : string;
  bounds : float array;  (** ascending upper bucket bounds; last bucket is +inf *)
  buckets : int array;   (** length = Array.length bounds + 1 *)
  mutable hcount : int;
  mutable sum : float;
}

let registry_mu = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

let find_or_add table name make =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace table name m;
        m)

let counter name = find_or_add counters name (fun () -> { cname = name; count = 0 })
let gauge name = find_or_add gauges name (fun () -> { gname = name; value = 0. })

(** Geometric nanosecond buckets, 256 ns .. ~4.4 s in factors of 4. *)
let default_bounds = Array.init 12 (fun i -> 256. *. (4. ** float_of_int i))

let histogram ?(bounds = default_bounds) name =
  find_or_add histograms name (fun () ->
      let n = Array.length bounds in
      if n = 0 then invalid_arg "Metrics.histogram: empty bounds";
      for i = 1 to n - 1 do
        if bounds.(i) <= bounds.(i - 1) then
          invalid_arg "Metrics.histogram: bounds must be strictly ascending"
      done;
      { hname = name; bounds = Array.copy bounds; buckets = Array.make (n + 1) 0;
        hcount = 0; sum = 0. })

let add c by = if Sink.enabled () then c.count <- c.count + by
let incr c = add c 1
let set g v = if Sink.enabled () then g.value <- v
let max_gauge g v = if Sink.enabled () && v > g.value then g.value <- v

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if Sink.enabled () then begin
    let i = bucket_index h.bounds v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.hcount <- h.hcount + 1;
    h.sum <- h.sum +. v
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histo_snapshot = {
  hs_bounds : float array;
  hs_buckets : int array;
  hs_count : int;
  hs_sum : float;
}

type snapshot = {
  s_counters : (string * int) list;            (** sorted by name *)
  s_gauges : (string * float) list;            (** sorted by name *)
  s_histograms : (string * histo_snapshot) list;  (** sorted by name *)
}

let empty = { s_counters = []; s_gauges = []; s_histograms = [] }

let snapshot_histogram (h : histogram) =
  { hs_bounds = Array.copy h.bounds; hs_buckets = Array.copy h.buckets;
    hs_count = h.hcount; hs_sum = h.sum }

let sorted_items table f =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) table [])

(** Freeze the registry.  Works whether or not the sink is enabled. *)
let snapshot () =
  locked (fun () ->
      {
        s_counters = sorted_items counters (fun c -> c.count);
        s_gauges = sorted_items gauges (fun g -> g.value);
        s_histograms = sorted_items histograms snapshot_histogram;
      })

let merge_histo a b =
  if a.hs_bounds <> b.hs_bounds then
    invalid_arg "Metrics.merge: histograms with different bucket bounds";
  {
    hs_bounds = a.hs_bounds;
    hs_buckets = Array.mapi (fun i n -> n + b.hs_buckets.(i)) a.hs_buckets;
    hs_count = a.hs_count + b.hs_count;
    hs_sum = a.hs_sum +. b.hs_sum;
  }

(* Merge two sorted association lists with [combine] on common keys. *)
let rec merge_alist combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
    let c = String.compare ka kb in
    if c < 0 then (ka, va) :: merge_alist combine ra b
    else if c > 0 then (kb, vb) :: merge_alist combine a rb
    else (ka, combine va vb) :: merge_alist combine ra rb

(** Pointwise merge: counters and histogram buckets add, gauges keep the
    maximum.  Associative and commutative; [empty] is the unit. *)
let merge a b =
  {
    s_counters = merge_alist ( + ) a.s_counters b.s_counters;
    s_gauges = merge_alist Float.max a.s_gauges b.s_gauges;
    s_histograms = merge_alist merge_histo a.s_histograms b.s_histograms;
  }

let counter_value s name = List.assoc_opt name s.s_counters
let gauge_value s name = List.assoc_opt name s.s_gauges

(** Drop every metric from the registry (test isolation). *)
let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms)
