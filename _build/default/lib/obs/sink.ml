(** The event sink: a global on/off switch, the current lane, and the
    trace-event buffer.

    Everything in [Obs] is gated on {!enabled}: with the sink off (the
    default) instrumented code pays exactly one atomic load and branch per
    *sweep-level* operation — never per cell — which is what makes the
    instrumentation effectively free when disabled (verified by the [obs]
    bench artifact).

    Lanes map onto the Chrome trace-event process/thread hierarchy:

    - [pid] is the {e lane}: 0 is the local process; [1 + r] is simulated
      rank [r].  The time-stepping layer sets the lane around per-rank
      work ({!set_lane}), so a forest run renders one track per rank.
    - [tid] is the slice within a lane: 0 is the coordinating thread,
      [i > 0] is the i-th OCaml domain of a sliced kernel sweep.

    The buffer is mutex-protected because sliced sweeps emit slice spans
    from multiple domains concurrently; contention is bounded by two events
    per domain per sweep. *)

type phase = B | E | I  (** span begin, span end, instant event *)

type event = {
  phase : phase;
  name : string;
  cat : string;  (** trace-event category, e.g. "vm", "step", "comm" *)
  ts_ns : int64;
  pid : int;
  tid : int;
  args : (string * float) list;
}

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* The lane is only mutated by the coordinating thread, between sweeps, so
   a plain ref suffices: spawned domains read a value that is constant for
   the duration of their slice. *)
let cur_lane = ref 0
let set_lane p = cur_lane := p
let lane () = !cur_lane

(** Lane of simulated rank [r]. *)
let rank_lane r = 1 + r

(** Lane of farm job [j]: job lanes live in their own band above the rank
    lanes, so a [pfgen serve] trace renders one track per job. *)
let job_lane_base = 1000

let job_lane j = job_lane_base + j

let mu = Mutex.create ()
let events_rev : event list ref = ref []

let record ev =
  Mutex.lock mu;
  events_rev := ev :: !events_rev;
  Mutex.unlock mu

(** All recorded events, in emission order. *)
let events () =
  Mutex.lock mu;
  let evs = List.rev !events_rev in
  Mutex.unlock mu;
  evs

let clear () =
  Mutex.lock mu;
  events_rev := [];
  Mutex.unlock mu
