(** Metrics report exporters: aligned plain text and JSON.

    Both render a frozen {!Metrics.snapshot}, so a report is a pure
    function of the registry at one instant and per-domain snapshots can be
    merged before rendering. *)

let json_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let pp_histo ppf (h : Metrics.histo_snapshot) =
  let mean = if h.Metrics.hs_count = 0 then 0. else h.Metrics.hs_sum /. float_of_int h.Metrics.hs_count in
  Fmt.pf ppf "n=%d sum=%s mean=%s" h.Metrics.hs_count (json_num h.Metrics.hs_sum)
    (json_num mean)

(** Human-readable table: one line per metric, grouped by kind. *)
let pp ppf (s : Metrics.snapshot) =
  let section title = Fmt.pf ppf "%s@." title in
  if s.Metrics.s_counters <> [] then begin
    section "counters:";
    List.iter (fun (k, v) -> Fmt.pf ppf "  %-40s %d@." k v) s.Metrics.s_counters
  end;
  if s.Metrics.s_gauges <> [] then begin
    section "gauges:";
    List.iter (fun (k, v) -> Fmt.pf ppf "  %-40s %s@." k (json_num v)) s.Metrics.s_gauges
  end;
  if s.Metrics.s_histograms <> [] then begin
    section "histograms:";
    List.iter (fun (k, h) -> Fmt.pf ppf "  %-40s %a@." k pp_histo h) s.Metrics.s_histograms
  end

let to_text s = Fmt.str "%a" pp s

let histo_json (h : Metrics.histo_snapshot) =
  Printf.sprintf "{\"count\":%d,\"sum\":%s,\"bounds\":[%s],\"buckets\":[%s]}"
    h.Metrics.hs_count (json_num h.Metrics.hs_sum)
    (String.concat "," (Array.to_list (Array.map json_num h.Metrics.hs_bounds)))
    (String.concat "," (Array.to_list (Array.map string_of_int h.Metrics.hs_buckets)))

let to_json (s : Metrics.snapshot) =
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let counters =
    List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) s.Metrics.s_counters
  in
  let gauges =
    List.map (fun (k, v) -> Printf.sprintf "%S:%s" k (json_num v)) s.Metrics.s_gauges
  in
  let histos =
    List.map (fun (k, h) -> Printf.sprintf "%S:%s" k (histo_json h)) s.Metrics.s_histograms
  in
  obj
    [
      Printf.sprintf "\"counters\":%s" (obj counters);
      Printf.sprintf "\"gauges\":%s" (obj gauges);
      Printf.sprintf "\"histograms\":%s" (obj histos);
    ]
  ^ "\n"

(** Write the report to [path]: JSON when the name ends in [.json], text
    otherwise. *)
let save path s =
  let oc = open_out path in
  output_string oc
    (if Filename.check_suffix path ".json" then to_json s else to_text s);
  close_out oc
