(** Field storage: padded flat arrays with ghost layers.

    Layout is structure-of-arrays with axis 0 (x) fastest, matching the
    "fzyx" layout the generated C uses.  All buffers of one block share the
    same interior dimensions and ghost width so that kernels can address
    every field through a single running base index (the base-pointer +
    linear-index form of paper §3.4). *)

open Symbolic

type t = {
  field : Fieldspec.t;
  dims : int array;        (** interior cells per axis *)
  ghost : int;
  stride : int array;      (** elements per step along each axis *)
  comp_stride : int;       (** elements per component slab *)
  components : int;        (** storage components (× dim for staggered) *)
  mutable data : float array;
}

let storage_components (f : Fieldspec.t) =
  match f.kind with Fieldspec.Cell -> f.components | Fieldspec.Staggered -> f.components * f.dim

(** Build a padded buffer.  [alloc] supplies the backing storage (given the
    element count, it must return a zero-filled array of exactly that
    length) — the hook a memory pool uses to recycle arrays across
    simulations.  Default: a fresh allocation. *)
let create ?(ghost = 1) ?(alloc = fun len -> Array.make len 0.) (field : Fieldspec.t) dims =
  if Array.length dims <> field.dim then invalid_arg "Buffer.create: rank mismatch";
  let padded = Array.map (fun n -> n + (2 * ghost)) dims in
  let stride = Array.make field.dim 1 in
  for d = 1 to field.dim - 1 do
    stride.(d) <- stride.(d - 1) * padded.(d - 1)
  done;
  let comp_stride = stride.(field.dim - 1) * padded.(field.dim - 1) in
  let components = storage_components field in
  let data = alloc (comp_stride * components) in
  if Array.length data <> comp_stride * components then
    invalid_arg "Buffer.create: allocator returned an array of the wrong length";
  { field; dims = Array.copy dims; ghost; stride; comp_stride; components; data }

(** Linear index of the interior cell [coords] (which may extend into the
    ghost region when offsets do), component 0. *)
let base_index t coords =
  let idx = ref 0 in
  Array.iteri (fun d c -> idx := !idx + ((c + t.ghost) * t.stride.(d))) coords;
  !idx

(** Offset (in elements) encoding a relative access: component slab plus
    cell offsets.  Shared-dims invariant makes this valid for any cell. *)
let access_delta t (a : Fieldspec.access) =
  let comp =
    if a.face_axis >= 0 then (a.component * a.field.dim) + a.face_axis else a.component
  in
  let d = ref (comp * t.comp_stride) in
  Array.iteri (fun ax o -> d := !d + (o * t.stride.(ax))) a.offsets;
  !d

let get t ?(component = 0) coords = t.data.(base_index t coords + (component * t.comp_stride))

let set t ?(component = 0) coords v =
  t.data.(base_index t coords + (component * t.comp_stride)) <- v

let fill t v = Array.fill t.data 0 (Array.length t.data) v

(** Initialize every interior cell (ghosts untouched):
    [f coords component] gives the value. *)
let init t f =
  let dim = t.field.dim in
  let coords = Array.make dim 0 in
  let rec loop d =
    if d = dim then
      for c = 0 to t.components - 1 do
        set t ~component:c coords (f (Array.copy coords) c)
      done
    else
      for i = 0 to t.dims.(d) - 1 do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0

(** Swap the storage of two buffers (the src/dst pointer swap of
    Algorithm 1). *)
let swap a b =
  if a.comp_stride <> b.comp_stride || a.components <> b.components then
    invalid_arg "Buffer.swap: incompatible buffers";
  let tmp = a.data in
  a.data <- b.data;
  b.data <- tmp

(** Periodic ghost exchange within a single buffer along one axis: ghost
    slabs are filled from the opposite interior boundary.  Covers already-
    filled ghosts of previously exchanged axes, so applying it axis by axis
    also fills edge and corner ghosts. *)
let periodic_axis t axis =
  let dim = t.field.dim in
  let n = t.dims.(axis) in
  let g = t.ghost in
  let lo = Array.make dim (-g) and hi = Array.make dim g in
  Array.iteri (fun d s -> hi.(d) <- s + g) t.dims;
  ignore lo;
  (* iterate over the full padded extent of the other axes *)
  let coords = Array.make dim 0 in
  let rec loop d =
    if d = dim then
      for layer = 0 to g - 1 do
        for c = 0 to t.components - 1 do
          (* low ghost <- high interior *)
          coords.(axis) <- -g + layer;
          let dst_lo = base_index t coords + (c * t.comp_stride) in
          coords.(axis) <- n - g + layer;
          let src_hi = base_index t coords + (c * t.comp_stride) in
          t.data.(dst_lo) <- t.data.(src_hi);
          (* high ghost <- low interior *)
          coords.(axis) <- n + layer;
          let dst_hi = base_index t coords + (c * t.comp_stride) in
          coords.(axis) <- layer;
          let src_lo = base_index t coords + (c * t.comp_stride) in
          t.data.(dst_hi) <- t.data.(src_lo)
        done
      done
    else if d = axis then loop (d + 1)
    else
      for i = -g to t.dims.(d) + g - 1 do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0

let periodic t =
  for axis = 0 to t.field.dim - 1 do
    periodic_axis t axis
  done

(** Sum of a component over the interior (used by conservation tests). *)
let interior_sum ?(component = 0) t =
  let dim = t.field.dim in
  let coords = Array.make dim 0 in
  let acc = ref 0. in
  let rec loop d =
    if d = dim then acc := !acc +. get t ~component coords
    else
      for i = 0 to t.dims.(d) - 1 do
        coords.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0;
  !acc
