lib/vm/jit.ml: Array Assignment Expr Field Fieldspec Float Hashtbl Int64 Ir Jit_native List Obj Obs Philox Printf Stdlib String Symbolic
