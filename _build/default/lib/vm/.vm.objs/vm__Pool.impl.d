lib/vm/pool.ml: Array Atomic Condition Domain Fun List Mutex Stdlib String Sys
