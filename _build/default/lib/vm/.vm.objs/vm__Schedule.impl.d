lib/vm/schedule.ml: Array Fmt List String
