lib/vm/tune.ml: Array Engine Fmt Hashtbl Ir List Obs Option Perfmodel Pool Schedule
