lib/vm/buffer.ml: Array Fieldspec Symbolic
