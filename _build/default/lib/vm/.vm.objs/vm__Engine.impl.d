lib/vm/engine.ml: Array Assignment Buffer Domain Expr Field Fieldspec Hashtbl Ir List Obs Option Philox Printf Symbolic
