lib/vm/engine.ml: Array Assignment Buffer Expr Field Fieldspec Hashtbl Ir Jit List Obs Option Philox Pool Printf Schedule Symbolic Sys
