lib/vm/engine.ml: Array Assignment Buffer Expr Field Fieldspec Hashtbl Ir List Obs Option Philox Pool Printf Schedule Symbolic
