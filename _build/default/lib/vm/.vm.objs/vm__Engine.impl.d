lib/vm/engine.ml: Array Assignment Buffer Domain Expr Field Fieldspec Float Hashtbl Ir List Option Philox Printf Symbolic
