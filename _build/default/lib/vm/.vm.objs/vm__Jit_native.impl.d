lib/vm/jit_native.ml: Dynlink Filename Lazy List Obj Printexc Printf String Sys Unix
