(** Native tier of the JIT: runtime OCaml code generation.

    [Jit] translates a kernel tape into OCaml source (straight-line
    let-bound float arithmetic — the register-allocatable form the tape
    cannot reach); this module turns that source into live machine code
    using the installed toolchain: write the module to a scratch
    directory, shell out to [ocamlopt -shared], and [Dynlink] the
    resulting [.cmxs] into the running process.

    The generated module exports nothing the host could link against —
    the host was built long before the module existed — so the compiled
    closures come back through the one channel Dynlink leaves open: the
    module's initializer raises an exception carrying the closure array,
    which Dynlink surfaces verbatim as
    [Error (Library's_module_initializers_failed e)].  The code segment
    of a loaded [.cmxs] is never unmapped, so the extracted closures
    outlive the (deleted) scratch files.

    Everything here degrades softly: no native Dynlink (bytecode host),
    no compiler on PATH, a compile error, or [PFGEN_JIT_NATIVE=0] all
    yield [Error reason], and the caller keeps the portable tape
    closures.  Correctness never depends on this module — only the
    speedup gate does. *)

let disabled () =
  match Sys.getenv_opt "PFGEN_JIT_NATIVE" with
  | Some ("0" | "off" | "tape") -> true
  | _ -> false

(* The compiler to shell out to, discovered once.  [ocamlopt.opt] is the
   fast native-code binary; plain [ocamlopt] and [ocamlfind ocamlopt]
   cover PATH setups that only expose the wrappers. *)
let compiler =
  lazy
    (List.find_opt
       (fun c -> Sys.command (c ^ " -version > /dev/null 2>&1") = 0)
       [ "ocamlopt.opt"; "ocamlopt"; "ocamlfind ocamlopt" ])

let available () =
  (not (disabled ())) && Dynlink.is_native && Lazy.force compiler <> None

(* Scratch directory, one per process; files are removed after each load,
   the directory itself at exit would need a hook — it is tmp, leave it. *)
let scratch_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "pfgen-jit-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     dir)

let counter = ref 0

(** A fresh, valid, process-unique compilation unit name.  Dynlink loads
    privately, but unique names keep every load independent. *)
let fresh_modname () =
  incr counter;
  Printf.sprintf "Pfgen_jit_k%d_%d" (Unix.getpid ()) !counter

let read_file path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with _ -> ""

(** Compile [source] (which must define the given module and whose
    initializer must [raise (Handoff closures)]) and return the carried
    value.  The result is an [Obj.t]: only the generator knows the
    closure types, so only the generator may cast. *)
let load ~modname ~source : (Obj.t, string) result =
  if disabled () then Error "disabled by PFGEN_JIT_NATIVE"
  else if not Dynlink.is_native then Error "bytecode host: cannot load .cmxs"
  else
    match Lazy.force compiler with
    | None -> Error "no ocamlopt on PATH"
    | Some cc ->
      let dir = Lazy.force scratch_dir in
      let base = String.uncapitalize_ascii modname in
      let ml = Filename.concat dir (base ^ ".ml") in
      let cmxs = Filename.concat dir (base ^ ".cmxs") in
      let log = Filename.concat dir (base ^ ".log") in
      let cleanup () =
        List.iter
          (fun ext -> try Sys.remove (Filename.concat dir (base ^ ext)) with _ -> ())
          [ ".ml"; ".cmxs"; ".cmx"; ".cmi"; ".o"; ".log" ]
      in
      let oc = open_out ml in
      output_string oc source;
      close_out oc;
      let cmd =
        Printf.sprintf "cd %s && %s -w -a -shared -o %s %s > %s 2>&1"
          (Filename.quote dir) cc
          (Filename.quote (base ^ ".cmxs"))
          (Filename.quote (base ^ ".ml"))
          (Filename.quote (base ^ ".log"))
      in
      if Sys.command cmd <> 0 then begin
        let err = read_file log in
        cleanup ();
        Error ("compile failed: " ^ String.trim err)
      end
      else begin
        let r =
          match Dynlink.loadfile_private cmxs with
          | () -> Error "generated module did not hand off its closures"
          | exception Dynlink.Error (Dynlink.Library's_module_initializers_failed e)
            when Obj.size (Obj.repr e) = 2 ->
            (* [exception Handoff of 'a] is a 2-field block: slot, payload *)
            Ok (Obj.field (Obj.repr e) 1)
          | exception Dynlink.Error err -> Error (Dynlink.error_message err)
          | exception e -> Error (Printexc.to_string e)
        in
        cleanup ();
        r
      end
