(** Static cache-blocked tile schedules for kernel sweeps.

    A sweep is decomposed into rectangular tiles in {e loop-depth} space:
    index [d] of a tile refers to the [d]-th loop of the lowering's
    [loop_order] (0 = outermost), not to a fixed spatial axis.  Keeping the
    innermost depth at full extent preserves the contiguous stride-1 walk
    the layout chosen by [Ir.Lower] gives the inner loop, which is the
    whole point of the paper's spatial blocking (§6.1): tiles shorten the
    reuse distance of the {e outer} loops so the layer condition holds in
    L2, while the unit-stride stream stays intact.

    The schedule is a plain array in lexicographic tile order (innermost
    depth varying fastest).  That order is the {e deterministic
    accumulation order} the determinism battery locks down: every executor
    — serial, or any assignment of tiles to pool lanes — writes each cell
    exactly once with a value that depends only on the cell and the source
    buffers, so the result is independent of which lane ran which tile. *)

type tile = {
  lo : int array;  (** inclusive lower loop bound per depth *)
  hi : int array;  (** inclusive upper loop bound per depth *)
}

(** [shape.(d)] is the tile extent at loop depth [d]; [0] (or a missing
    entry) means "full extent at this depth".  A [None] shape is one tile
    spanning the whole sweep. *)
let make ~(ranges : (int * int) array) ?shape () =
  let dim = Array.length ranges in
  let extent d = let lo, hi = ranges.(d) in hi - lo + 1 in
  let shape_at d =
    let full = max 1 (extent d) in
    match shape with
    | Some s when d < Array.length s && s.(d) > 0 -> min s.(d) full
    | _ -> full
  in
  let counts =
    Array.init dim (fun d ->
        let n = extent d in
        if n <= 0 then 0 else (n + shape_at d - 1) / shape_at d)
  in
  if dim = 0 || Array.exists (fun c -> c = 0) counts then [||]
  else begin
    let total = Array.fold_left ( * ) 1 counts in
    Array.init total (fun i ->
        (* mixed-radix decode, innermost depth fastest *)
        let idx = Array.make dim 0 in
        let rem = ref i in
        for d = dim - 1 downto 0 do
          idx.(d) <- !rem mod counts.(d);
          rem := !rem / counts.(d)
        done;
        let lo = Array.make dim 0 and hi = Array.make dim 0 in
        for d = 0 to dim - 1 do
          let rlo, rhi = ranges.(d) in
          let s = shape_at d in
          lo.(d) <- rlo + (idx.(d) * s);
          hi.(d) <- min rhi (lo.(d) + s - 1)
        done;
        { lo; hi })
  end

(** Cells covered by one tile. *)
let cells t =
  let n = ref 1 in
  for d = 0 to Array.length t.lo - 1 do
    n := !n * (t.hi.(d) - t.lo.(d) + 1)
  done;
  !n

(** Parse a tile-shape flag value: ["8x4"] -> [[|8;4|]], a dimension of
    ["*"] or ["0"] means full extent ([--tile 8x*] blocks only the outer
    loop). *)
let shape_of_string s =
  let part p =
    match String.trim p with
    | "*" | "0" -> 0
    | p -> (
      match int_of_string_opt p with
      | Some n when n > 0 -> n
      | _ -> invalid_arg ("Schedule.shape_of_string: bad tile extent " ^ p))
  in
  match String.split_on_char 'x' (String.lowercase_ascii s) with
  | [] | [ "" ] -> invalid_arg "Schedule.shape_of_string: empty tile shape"
  | parts -> Array.of_list (List.map part parts)

let pp_shape ppf shape =
  Fmt.pf ppf "%s"
    (String.concat "x"
       (Array.to_list (Array.map (fun n -> if n = 0 then "*" else string_of_int n) shape)))
