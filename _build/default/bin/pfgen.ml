(* pfgen — command-line front end of the code-generation pipeline.

   Mirrors how the paper's toolchain is driven: pick a model instance,
   generate optimized kernels, emit C/CUDA, query the performance model, or
   run a simulation.

     pfgen gen-c --model p1 -o kernels.c
     pfgen gen-cuda --model p2 --approx
     pfgen table1 --model p1
     pfgen perf --model p1 --cores 24
     pfgen simulate --model curvature --size 64 --steps 200
     pfgen registers --model p1 *)

open Cmdliner

let model_conv =
  let parse = function
    | "p1" -> Ok (Pfcore.Params.p1 ())
    | "p2" -> Ok (Pfcore.Params.p2 ())
    | "p2-2d" -> Ok (Pfcore.Params.p2 ~dim:2 ())
    | "curvature" -> Ok (Pfcore.Params.curvature ~dim:2 ())
    | "curvature-3d" -> Ok (Pfcore.Params.curvature ~dim:3 ())
    | s -> Error (`Msg ("unknown model " ^ s ^ " (p1, p2, p2-2d, curvature, curvature-3d)"))
  in
  let print ppf (p : Pfcore.Params.t) = Fmt.string ppf p.Pfcore.Params.name in
  Arg.conv (parse, print)

let model_arg =
  Arg.(value & opt model_conv (Pfcore.Params.p1 ()) & info [ "model"; "m" ] ~doc:"Model instance: p1, p2, p2-2d, curvature, curvature-3d.")

let symbolic_arg =
  Arg.(value & flag & info [ "symbolic" ] ~doc:"Keep material parameters as runtime kernel arguments instead of freezing them at generation time.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file (stdout if omitted).")

let generate params symbolic =
  let opts = { Pfcore.Genkernels.default_options with symbolic_params = symbolic } in
  Pfcore.Genkernels.generate ~opts params

let kernels_of (g : Pfcore.Genkernels.t) =
  [ g.phi_full; g.phi_split.Pfcore.Genkernels.stag; g.phi_split.Pfcore.Genkernels.main ]
  @ (match g.mu_full with Some k -> [ k ] | None -> [])
  @ (match g.mu_split with
    | Some p -> [ p.Pfcore.Genkernels.stag; p.Pfcore.Genkernels.main ]
    | None -> [])
  @ [ g.projection ]

let write output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Fmt.pr "wrote %s (%d bytes)@." path (String.length text)

(* ---- gen-c ---- *)

let gen_c params symbolic simd output =
  let g = generate params symbolic in
  let lowered = List.map Ir.Lower.run (kernels_of g) in
  let text =
    match simd with
    | None -> Backend.Ccode.translation_unit lowered
    | Some "avx512" -> Backend.Simd.translation_unit ~isa:Backend.Simd.AVX512 lowered
    | Some "avx2" -> Backend.Simd.translation_unit ~isa:Backend.Simd.AVX2 lowered
    | Some "sse2" -> Backend.Simd.translation_unit ~isa:Backend.Simd.SSE2 lowered
    | Some other -> failwith ("unknown ISA " ^ other)
  in
  write output text

let simd_arg =
  Arg.(value & opt (some string) None & info [ "simd" ] ~doc:"Vectorize with intrinsics: avx512, avx2 or sse2 (default: scalar OpenMP C).")

let gen_c_cmd =
  Cmd.v
    (Cmd.info "gen-c" ~doc:"Emit the generated C kernels (OpenMP, optionally SIMD intrinsics).")
    Term.(const gen_c $ model_arg $ symbolic_arg $ simd_arg $ output_arg)

(* ---- gen-cuda ---- *)

let gen_cuda params symbolic approx fence output =
  let g = generate params symbolic in
  let approx =
    if approx then { Backend.Cexpr.fast_div = true; fast_rsqrt = true } else Backend.Cexpr.exact
  in
  write output (Backend.Cuda.translation_unit ~approx ?fence_stride:fence (kernels_of g))

let approx_arg =
  Arg.(value & flag & info [ "approx" ] ~doc:"Use approximate division and reciprocal square roots (fdividef/frsqrt).")

let fence_arg =
  Arg.(value & opt (some int) None & info [ "fence" ] ~doc:"Insert __threadfence_block() every N statements.")

let gen_cuda_cmd =
  Cmd.v
    (Cmd.info "gen-cuda" ~doc:"Emit the generated CUDA kernels.")
    Term.(const gen_cuda $ model_arg $ symbolic_arg $ approx_arg $ fence_arg $ output_arg)

(* ---- table1 ---- *)

let table1 params symbolic =
  let g = generate params symbolic in
  let show name k =
    Fmt.pr "%-14s %a@." name Field.Opcount.pp (Pfcore.Genkernels.counts k)
  in
  show "phi-full" g.phi_full;
  show "phi-split/stag" g.phi_split.Pfcore.Genkernels.stag;
  show "phi-split/main" g.phi_split.Pfcore.Genkernels.main;
  (match g.mu_full with Some k -> show "mu-full" k | None -> ());
  (match g.mu_split with
  | Some p ->
    show "mu-split/stag" p.Pfcore.Genkernels.stag;
    show "mu-split/main" p.Pfcore.Genkernels.main
  | None -> ());
  Fmt.pr "@.stencils: phi reads phi %s"
    (Ir.Kernel.stencil_signature g.phi_full g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src);
  (match g.mu_full with
  | Some mu ->
    Fmt.pr ", mu reads phi %s, mu %s"
      (Ir.Kernel.stencil_signature mu g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src)
      (Ir.Kernel.stencil_signature mu g.Pfcore.Genkernels.fields.Pfcore.Model.mu_src)
  | None -> ());
  Fmt.pr "@."

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Print per-cell operation counts of all kernel variants (paper Table 1).")
    Term.(const table1 $ model_arg $ symbolic_arg)

(* ---- perf ---- *)

let perf params cores block_n =
  let g = generate params false in
  let m = Perfmodel.Machine.skylake_8174 in
  let report k =
    let p = Perfmodel.Ecm.predict m k ~block_n in
    Fmt.pr "%-14s %a@." k.Ir.Kernel.name Perfmodel.Ecm.pp p;
    Fmt.pr "%-14s 1 core: %.1f MLUP/s; %d cores: %.1f MLUP/s; saturates at %d cores@." ""
      (Perfmodel.Ecm.single_core_mlups m p)
      cores
      (Perfmodel.Ecm.multicore_mlups m p ~cores)
      (Perfmodel.Ecm.saturation_cores m p)
  in
  List.iter report (kernels_of g);
  Fmt.pr "@.%a@." Perfmodel.Layercond.pp_report (g.phi_full, m.Perfmodel.Machine.l2_bytes)

let cores_arg = Arg.(value & opt int 24 & info [ "cores" ] ~doc:"Active cores per socket.")
let block_arg = Arg.(value & opt int 60 & info [ "block" ] ~doc:"Cubic block edge length.")

let perf_cmd =
  Cmd.v
    (Cmd.info "perf" ~doc:"ECM performance model report for every kernel (Kerncraft workflow).")
    Term.(const perf $ model_arg $ cores_arg $ block_arg)

(* ---- registers ---- *)

let registers params =
  let g = generate params false in
  let dev = Gpumodel.Device.p100 in
  List.iter
    (fun (k : Ir.Kernel.t) ->
      let outcomes = Gpumodel.Evotune.tune ~generations:3 ~population:8 dev k.Ir.Kernel.body in
      let best = List.hd outcomes in
      let baseline = List.find (fun o -> o.Gpumodel.Evotune.genome = []) outcomes in
      Fmt.pr "%-14s baseline %d regs %.2f ns/LUP -> tuned [%s] %d regs %.2f ns/LUP@."
        k.Ir.Kernel.name baseline.Gpumodel.Evotune.registers.Gpumodel.Transforms.nvcc
        baseline.Gpumodel.Evotune.time_ns
        (String.concat "; " (List.map Gpumodel.Transforms.name best.Gpumodel.Evotune.genome))
        best.Gpumodel.Evotune.registers.Gpumodel.Transforms.nvcc best.Gpumodel.Evotune.time_ns)
    (kernels_of g)

let registers_cmd =
  Cmd.v
    (Cmd.info "registers" ~doc:"GPU register-pressure analysis and evolutionary transformation tuning.")
    Term.(const registers $ model_arg)

(* ---- simulate ---- *)

let simulate params size steps ranks split =
  let g = generate params false in
  let dim = params.Pfcore.Params.dim in
  let variant = if split then Pfcore.Timestep.Split else Pfcore.Timestep.Full in
  let t0 = Unix.gettimeofday () in
  let fractions =
    if ranks > 1 then begin
      let grid = Array.init dim (fun d -> if d = 0 then ranks else 1) in
      let block_dims = Array.init dim (fun d -> if d = 0 then size / ranks else size) in
      let forest = Blocks.Forest.create ~variant_phi:variant ~grid ~block_dims g in
      Array.iter Pfcore.Simulation.init_lamellae forest.Blocks.Forest.sims;
      Blocks.Forest.prime forest;
      Blocks.Forest.run forest ~steps;
      Blocks.Forest.phase_fractions forest
    end
    else begin
      let sim = Pfcore.Timestep.create ~variant_phi:variant ~dims:(Array.make dim size) g in
      (if Pfcore.Params.n_mu params > 0 then Pfcore.Simulation.init_lamellae sim
       else Pfcore.Simulation.init_sphere sim);
      Pfcore.Timestep.run sim ~steps;
      Pfcore.Simulation.phase_fractions sim
    end
  in
  let dt = Unix.gettimeofday () -. t0 in
  let cells = float_of_int (int_of_float (float_of_int size ** float_of_int dim)) in
  Fmt.pr "%d steps of %s on %d^%d (%d rank%s, %s phi kernel) in %.2f s = %.3f MLUP/s@." steps
    params.Pfcore.Params.name size dim ranks
    (if ranks > 1 then "s" else "")
    (if split then "split" else "full")
    dt
    (cells *. float_of_int steps /. dt /. 1e6);
  Fmt.pr "phase fractions: %a@." Fmt.(array ~sep:sp (fmt "%.4f")) fractions

let size_arg = Arg.(value & opt int 32 & info [ "size" ] ~doc:"Domain edge length in cells.")
let steps_arg = Arg.(value & opt int 50 & info [ "steps" ] ~doc:"Time steps to run.")
let ranks_arg = Arg.(value & opt int 1 & info [ "ranks" ] ~doc:"Simulated MPI ranks (1D decomposition).")
let split_arg = Arg.(value & flag & info [ "split" ] ~doc:"Use the split (staggered-precompute) phi kernel variant.")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a simulation with the generated kernels (optionally on simulated MPI ranks).")
    Term.(const simulate $ model_arg $ size_arg $ steps_arg $ ranks_arg $ split_arg)

(* ---- check ---- *)

let check samples seed quiet =
  let code = Check.Harness.run ~verbose:(not quiet) ?seed ~samples () in
  if code <> 0 then exit 1

let samples_arg =
  Arg.(value & opt int 200 & info [ "samples"; "n" ] ~doc:"Base sample count per oracle (cheap oracles run more, whole-model oracles fewer).")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Fix the random seed for a reproducible run.")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print failures.")

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential verification soak: fuzz random expressions, kernels and models through cross-layer oracle pairs (Eval vs. optimizer passes, Vm.Engine vs. interpreter, full vs. split kernels, serial vs. domains, 1 rank vs. 2x2 Mpisim ranks). Exits nonzero on divergence, reporting a minimized counterexample.")
    Term.(const check $ samples_arg $ seed_arg $ quiet_arg)

(* ---- main ---- *)

let () =
  let info =
    Cmd.info "pfgen" ~version:"1.0.0"
      ~doc:"Code generation for massively parallel phase-field simulations (SC'19 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_c_cmd;
            gen_cuda_cmd;
            table1_cmd;
            perf_cmd;
            registers_cmd;
            simulate_cmd;
            check_cmd;
          ]))
