(* pfgen — command-line front end of the code-generation pipeline.

   Mirrors how the paper's toolchain is driven: pick a model instance,
   generate optimized kernels, emit C/CUDA, query the performance model, or
   run a simulation.

     pfgen gen-c --model p1 -o kernels.c
     pfgen gen-cuda --model p2 --approx
     pfgen table1 --model p1
     pfgen perf --model p1 --cores 24
     pfgen simulate --model curvature --size 64 --steps 200
     pfgen registers --model p1 *)

open Cmdliner

let model_conv =
  let parse = function
    | "p1" -> Ok (Pfcore.Params.p1 ())
    | "p2" -> Ok (Pfcore.Params.p2 ())
    | "p2-2d" -> Ok (Pfcore.Params.p2 ~dim:2 ())
    | "curvature" -> Ok (Pfcore.Params.curvature ~dim:2 ())
    | "curvature-3d" -> Ok (Pfcore.Params.curvature ~dim:3 ())
    | "eutectic" -> Ok (Pfcore.Params.eutectic ())
    | "eutectic-3d" -> Ok (Pfcore.Params.eutectic ~dim:3 ())
    | "pfc" -> Ok (Pfcore.Params.pfc ())
    | "gray-scott" -> Ok (Pfcore.Params.gray_scott ())
    | s ->
      Error
        (`Msg
          ("unknown model " ^ s
         ^ " (p1, p2, p2-2d, curvature, curvature-3d, eutectic, eutectic-3d, pfc, gray-scott)"))
  in
  let print ppf (p : Pfcore.Params.t) = Fmt.string ppf p.Pfcore.Params.name in
  Arg.conv (parse, print)

let model_arg =
  Arg.(value & opt model_conv (Pfcore.Params.p1 ()) & info [ "model"; "m" ] ~doc:"Model instance: p1, p2, p2-2d, curvature, curvature-3d, eutectic, eutectic-3d, pfc, gray-scott.")

let symbolic_arg =
  Arg.(value & flag & info [ "symbolic" ] ~doc:"Keep material parameters as runtime kernel arguments instead of freezing them at generation time.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file (stdout if omitted).")

let generate params symbolic =
  let opts = { Pfcore.Genkernels.default_options with symbolic_params = symbolic } in
  Pfcore.Genkernels.generate ~opts params

let kernels_of (g : Pfcore.Genkernels.t) =
  [ g.phi_full; g.phi_split.Pfcore.Genkernels.stag; g.phi_split.Pfcore.Genkernels.main ]
  @ (match g.mu_full with Some k -> [ k ] | None -> [])
  @ (match g.mu_split with
    | Some p -> [ p.Pfcore.Genkernels.stag; p.Pfcore.Genkernels.main ]
    | None -> [])
  @ Option.to_list g.projection

let write output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Fmt.pr "wrote %s (%d bytes)@." path (String.length text)

(* ---- gen-c ---- *)

let gen_c params symbolic simd output =
  let g = generate params symbolic in
  let lowered = List.map Ir.Lower.run (kernels_of g) in
  let text =
    match simd with
    | None -> Backend.Ccode.translation_unit lowered
    | Some "avx512" -> Backend.Simd.translation_unit ~isa:Backend.Simd.AVX512 lowered
    | Some "avx2" -> Backend.Simd.translation_unit ~isa:Backend.Simd.AVX2 lowered
    | Some "sse2" -> Backend.Simd.translation_unit ~isa:Backend.Simd.SSE2 lowered
    | Some other -> failwith ("unknown ISA " ^ other)
  in
  write output text

let simd_arg =
  Arg.(value & opt (some string) None & info [ "simd" ] ~doc:"Vectorize with intrinsics: avx512, avx2 or sse2 (default: scalar OpenMP C).")

let gen_c_cmd =
  Cmd.v
    (Cmd.info "gen-c" ~doc:"Emit the generated C kernels (OpenMP, optionally SIMD intrinsics).")
    Term.(const gen_c $ model_arg $ symbolic_arg $ simd_arg $ output_arg)

(* ---- gen-cuda ---- *)

let gen_cuda params symbolic approx fence output =
  let g = generate params symbolic in
  let approx =
    if approx then { Backend.Cexpr.fast_div = true; fast_rsqrt = true } else Backend.Cexpr.exact
  in
  write output (Backend.Cuda.translation_unit ~approx ?fence_stride:fence (kernels_of g))

let approx_arg =
  Arg.(value & flag & info [ "approx" ] ~doc:"Use approximate division and reciprocal square roots (fdividef/frsqrt).")

let fence_arg =
  Arg.(value & opt (some int) None & info [ "fence" ] ~doc:"Insert __threadfence_block() every N statements.")

let gen_cuda_cmd =
  Cmd.v
    (Cmd.info "gen-cuda" ~doc:"Emit the generated CUDA kernels.")
    Term.(const gen_cuda $ model_arg $ symbolic_arg $ approx_arg $ fence_arg $ output_arg)

(* ---- table1 ---- *)

let table1 params symbolic =
  let g = generate params symbolic in
  let show name k =
    Fmt.pr "%-14s %a@." name Field.Opcount.pp (Pfcore.Genkernels.counts k)
  in
  show "phi-full" g.phi_full;
  show "phi-split/stag" g.phi_split.Pfcore.Genkernels.stag;
  show "phi-split/main" g.phi_split.Pfcore.Genkernels.main;
  (match g.mu_full with Some k -> show "mu-full" k | None -> ());
  (match g.mu_split with
  | Some p ->
    show "mu-split/stag" p.Pfcore.Genkernels.stag;
    show "mu-split/main" p.Pfcore.Genkernels.main
  | None -> ());
  Fmt.pr "@.stencils: phi reads phi %s"
    (Ir.Kernel.stencil_signature g.phi_full g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src);
  (match g.mu_full with
  | Some mu ->
    Fmt.pr ", mu reads phi %s, mu %s"
      (Ir.Kernel.stencil_signature mu g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src)
      (Ir.Kernel.stencil_signature mu g.Pfcore.Genkernels.fields.Pfcore.Model.mu_src)
  | None -> ());
  Fmt.pr "@."

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Print per-cell operation counts of all kernel variants (paper Table 1).")
    Term.(const table1 $ model_arg $ symbolic_arg)

(* ---- perf ---- *)

let perf params cores block_n =
  let g = generate params false in
  let m = Perfmodel.Machine.skylake_8174 in
  let report k =
    let p = Perfmodel.Ecm.predict m k ~block_n in
    Fmt.pr "%-14s %a@." k.Ir.Kernel.name Perfmodel.Ecm.pp p;
    Fmt.pr "%-14s 1 core: %.1f MLUP/s; %d cores: %.1f MLUP/s; saturates at %d cores@." ""
      (Perfmodel.Ecm.single_core_mlups m p)
      cores
      (Perfmodel.Ecm.multicore_mlups m p ~cores)
      (Perfmodel.Ecm.saturation_cores m p)
  in
  List.iter report (kernels_of g);
  Fmt.pr "@.%a@." Perfmodel.Layercond.pp_report (g.phi_full, m.Perfmodel.Machine.l2_bytes)

let cores_arg = Arg.(value & opt int 24 & info [ "cores" ] ~doc:"Active cores per socket.")
let block_arg = Arg.(value & opt int 60 & info [ "block" ] ~doc:"Cubic block edge length.")

let perf_cmd =
  Cmd.v
    (Cmd.info "perf" ~doc:"ECM performance model report for every kernel (Kerncraft workflow).")
    Term.(const perf $ model_arg $ cores_arg $ block_arg)

(* ---- registers ---- *)

let registers params =
  let g = generate params false in
  let dev = Gpumodel.Device.p100 in
  List.iter
    (fun (k : Ir.Kernel.t) ->
      let outcomes = Gpumodel.Evotune.tune ~generations:3 ~population:8 dev k.Ir.Kernel.body in
      let best = List.hd outcomes in
      let baseline = List.find (fun o -> o.Gpumodel.Evotune.genome = []) outcomes in
      Fmt.pr "%-14s baseline %d regs %.2f ns/LUP -> tuned [%s] %d regs %.2f ns/LUP@."
        k.Ir.Kernel.name baseline.Gpumodel.Evotune.registers.Gpumodel.Transforms.nvcc
        baseline.Gpumodel.Evotune.time_ns
        (String.concat "; " (List.map Gpumodel.Transforms.name best.Gpumodel.Evotune.genome))
        best.Gpumodel.Evotune.registers.Gpumodel.Transforms.nvcc best.Gpumodel.Evotune.time_ns)
    (kernels_of g)

let registers_cmd =
  Cmd.v
    (Cmd.info "registers" ~doc:"GPU register-pressure analysis and evolutionary transformation tuning.")
    Term.(const registers $ model_arg)

(* ---- simulate ---- *)

let variant_of split = if split then Pfcore.Timestep.Split else Pfcore.Timestep.Full

let init_single _params sim = Pfcore.Simulation.init_model sim

let decomposition ~dim ~size ~ranks =
  if size mod ranks <> 0 then failwith "size must be divisible by ranks";
  let grid = Array.init dim (fun d -> if d = 0 then ranks else 1) in
  let block_dims = Array.init dim (fun d -> if d = 0 then size / ranks else size) in
  (grid, block_dims)

let build_forest ?num_domains ?tile ?backend ?overlap ~split ~grid ~block_dims g =
  let forest =
    Blocks.Forest.create ~variant_phi:(variant_of split) ?num_domains ?tile ?backend
      ?overlap ~grid ~block_dims g
  in
  Array.iter Pfcore.Simulation.init_model forest.Blocks.Forest.sims;
  Blocks.Forest.prime forest;
  forest

let build_single ?num_domains ?tile ?backend ~split ~dims params g =
  let sim =
    Pfcore.Timestep.create ~variant_phi:(variant_of split) ?num_domains ?tile ?backend ~dims g
  in
  init_single params sim;
  Pfcore.Timestep.prime sim;
  sim

(* Bitwise comparison of the phase field of two forests over all global
   interior cells; returns the number of differing (cell, component)s. *)
let forest_phi_mismatches (g : Pfcore.Genkernels.t) a b =
  let phi = g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
  let gd = a.Blocks.Forest.global_dims in
  let dim = Array.length gd in
  let bad = ref 0 in
  let coords = Array.make dim 0 in
  let rec walk d =
    if d = dim then
      for c = 0 to phi.Symbolic.Fieldspec.components - 1 do
        let x = Blocks.Forest.get a phi ~component:c coords in
        let y = Blocks.Forest.get b phi ~component:c coords in
        if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) then incr bad
      done
    else
      for i = 0 to gd.(d) - 1 do
        coords.(d) <- i;
        walk (d + 1)
      done
  in
  walk 0;
  !bad

let build_adaptive ?num_domains ?tile ?backend ~overlap ~split ~ranks ~bgrid ~block_dims
    params g =
  let af =
    Blocks.Adaptive.create ~variant_phi:(variant_of split) ?num_domains ?tile ?backend
      ~overlap ~ranks ~bgrid ~block_dims g
  in
  List.iter (init_single params) (Blocks.Adaptive.active_sims af);
  Blocks.Adaptive.prime af;
  af

(* Bitwise comparison of the adaptive forest against a uniform fine-grid
   run over all global interior cells. *)
let adaptive_phi_mismatches (g : Pfcore.Genkernels.t) af (uni : Pfcore.Timestep.t) =
  let phi = g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
  let gd = af.Blocks.Adaptive.global_dims in
  let dim = Array.length gd in
  let ub = Vm.Engine.buffer uni.Pfcore.Timestep.block phi in
  let bad = ref 0 in
  let coords = Array.make dim 0 in
  let rec walk d =
    if d = dim then
      for c = 0 to phi.Symbolic.Fieldspec.components - 1 do
        let x = Blocks.Adaptive.get af phi ~component:c coords in
        let y = Vm.Buffer.get ub ~component:c coords in
        if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) then incr bad
      done
    else
      for i = 0 to gd.(d) - 1 do
        coords.(d) <- i;
        walk (d + 1)
      done
  in
  walk 0;
  !bad

(* Every diagnostic below is the value of the fixed-topology reduction
   tree, so the printed numbers are bitwise reproducible across domain
   counts, tile shapes, backends and rank decompositions. *)
let print_diag ~interface ~fraction ~mn ~mx =
  Fmt.pr "diag: interface cells %.0f (fraction %.6f), phi[0] min %.17g max %.17g@."
    interface fraction mn mx

let simulate params size steps ranks split overlap domains tile backend crash_at ckpt_every
    fault_seed adaptive diag trace metrics_out =
  let g = generate params false in
  let phi = g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
  let dim = params.Pfcore.Params.dim in
  if overlap && ranks <= 1 then failwith "--overlap requires --ranks > 1";
  let observing = trace <> None || metrics_out <> None in
  if observing then begin
    (* arm the observability sink before any block is built so priming
       exchanges and the first checkpoint are on the trace too *)
    Obs.Metrics.reset ();
    Obs.Sink.clear ();
    Obs.Sink.enable ()
  end;
  let t0 = Unix.gettimeofday () in
  let fractions =
    if adaptive then begin
      if size mod 6 <> 0 || size < 12 then
        failwith "--adaptive requires --size a multiple of 6, at least 12";
      if crash_at <> None && ranks <= 1 then failwith "--crash-at requires --ranks > 1";
      let bgrid = Array.make dim (size / 6) in
      let block_dims = Array.make dim 6 in
      let af =
        build_adaptive ?num_domains:domains ?tile ?backend ~overlap ~split ~ranks ~bgrid
          ~block_dims params g
      in
      (match crash_at with
      | None -> Blocks.Adaptive.run af ~steps
      | Some k ->
        let plan = Blocks.Faultplan.chaos ~seed:fault_seed ~crash_step:k () in
        Blocks.Mpisim.set_fault_plan af.Blocks.Adaptive.comm (Some plan);
        Fmt.pr "fault plan: %a@." Blocks.Faultplan.pp plan;
        let stats = Resilience.Recovery.run_protected_adaptive ~every:ckpt_every ~steps af in
        let c = af.Blocks.Adaptive.comm in
        Fmt.pr
          "recovery: %d checkpoint(s), %d restart(s), %d step(s) replayed; substrate \
           healed %d retransmission(s), %d dropped, %d duplicated, %d delayed@."
          stats.Resilience.Recovery.checkpoints stats.Resilience.Recovery.restarts
          stats.Resilience.Recovery.replayed_steps c.Blocks.Mpisim.retransmissions
          c.Blocks.Mpisim.dropped c.Blocks.Mpisim.duplicated c.Blocks.Mpisim.delayed_count);
      (* the adaptive run is always verified bitwise against the uniform
         fine-grid run — coarsening must never change a single bit *)
      let uni =
        build_single ?num_domains:domains ?tile ?backend ~split ~dims:(Array.make dim size)
          params g
      in
      Pfcore.Timestep.run uni ~steps;
      let bad = adaptive_phi_mismatches g af uni in
      if bad = 0 then Fmt.pr "verification: adaptive forest = uniform fine grid (bitwise)@."
      else begin
        Fmt.epr "verification FAILED: %d cell value(s) differ from the uniform run@." bad;
        exit 1
      end;
      Fmt.pr
        "adaptive: %d/%d block(s) frozen, %d freeze(s), %d thaw(s), %d migration(s), \
         cells-touched savings %.2fx@."
        (Blocks.Adaptive.frozen_blocks af)
        (Blocks.Adaptive.nblocks af)
        af.Blocks.Adaptive.freezes af.Blocks.Adaptive.thaws af.Blocks.Adaptive.migrations
        (Blocks.Adaptive.savings af);
      if diag then
        print_diag
          ~interface:(Blocks.Adaptive.interface_cells ?backend ?num_domains:domains ?tile af)
          ~fraction:
            (Blocks.Adaptive.interface_fraction ?backend ?num_domains:domains ?tile af)
          ~mn:
            (Blocks.Adaptive.scalar ?backend ?num_domains:domains ?tile af phi
               (Vm.Reduce.Component 0) Vm.Reduce.Min)
          ~mx:
            (Blocks.Adaptive.scalar ?backend ?num_domains:domains ?tile af phi
               (Vm.Reduce.Component 0) Vm.Reduce.Max);
      Blocks.Adaptive.phase_fractions ?backend ?num_domains:domains ?tile af
    end
    else if ranks > 1 then begin
      let grid, block_dims = decomposition ~dim ~size ~ranks in
      let forest =
        build_forest ?num_domains:domains ?tile ?backend ~overlap ~split ~grid ~block_dims g
      in
      (match crash_at with
      | None -> Blocks.Forest.run forest ~steps
      | Some k ->
        (* fault-injected run under crash protection, verified bitwise
           against an undisturbed twin *)
        let plan = Blocks.Faultplan.chaos ~seed:fault_seed ~crash_step:k () in
        Blocks.Mpisim.set_fault_plan forest.Blocks.Forest.comm (Some plan);
        Fmt.pr "fault plan: %a@." Blocks.Faultplan.pp plan;
        let stats =
          Resilience.Recovery.run_protected ~every:ckpt_every ~steps forest
        in
        let c = forest.Blocks.Forest.comm in
        Fmt.pr
          "recovery: %d checkpoint(s), %d restart(s), %d step(s) replayed; substrate \
           healed %d retransmission(s), %d dropped, %d duplicated, %d delayed@."
          stats.Resilience.Recovery.checkpoints stats.Resilience.Recovery.restarts
          stats.Resilience.Recovery.replayed_steps c.Blocks.Mpisim.retransmissions
          c.Blocks.Mpisim.dropped c.Blocks.Mpisim.duplicated c.Blocks.Mpisim.delayed_count;
        let clean = build_forest ~split ~grid ~block_dims g in
        Blocks.Forest.run clean ~steps;
        let bad = forest_phi_mismatches g forest clean in
        if bad = 0 then Fmt.pr "verification: protected run = clean run (bitwise)@."
        else begin
          Fmt.epr "verification FAILED: %d cell value(s) differ from the clean run@." bad;
          exit 1
        end);
      if diag then
        print_diag
          ~interface:(Blocks.Reduce.interface_cells ?backend ?num_domains:domains ?tile forest)
          ~fraction:
            (Blocks.Reduce.interface_fraction ?backend ?num_domains:domains ?tile forest)
          ~mn:(Blocks.Reduce.min_value ?backend ?num_domains:domains ?tile forest phi ~component:0)
          ~mx:(Blocks.Reduce.max_value ?backend ?num_domains:domains ?tile forest phi ~component:0);
      Blocks.Forest.phase_fractions forest
    end
    else begin
      if crash_at <> None then failwith "--crash-at requires --ranks > 1";
      let sim =
        build_single ?num_domains:domains ?tile ?backend ~split ~dims:(Array.make dim size)
          params g
      in
      Pfcore.Timestep.run sim ~steps;
      if diag then
        print_diag
          ~interface:(Pfcore.Diag.interface_cells ?backend ?num_domains:domains ?tile sim)
          ~fraction:(Pfcore.Diag.interface_fraction ?backend ?num_domains:domains ?tile sim)
          ~mn:(Pfcore.Diag.min_value ?backend ?num_domains:domains ?tile sim phi ~component:0)
          ~mx:(Pfcore.Diag.max_value ?backend ?num_domains:domains ?tile sim phi ~component:0);
      Pfcore.Simulation.phase_fractions sim
    end
  in
  let dt = Unix.gettimeofday () -. t0 in
  if observing then begin
    Obs.Sink.disable ();
    (match trace with
    | Some path ->
      let evs = Obs.Sink.events () in
      Obs.Trace.save path evs;
      Fmt.pr "wrote Chrome trace to %s (%d events)@." path (List.length evs)
    | None -> ());
    match metrics_out with
    | Some path ->
      Obs.Report.save path (Obs.Metrics.snapshot ());
      Fmt.pr "wrote metrics report to %s@." path
    | None -> ()
  end;
  let cells = float_of_int (int_of_float (float_of_int size ** float_of_int dim)) in
  let backend_name =
    Vm.Engine.backend_label
      (match backend with Some b -> b | None -> Vm.Engine.default_backend ())
  in
  Fmt.pr
    "%d steps of %s on %d^%d (%d rank%s%s, %s phi kernel, %s backend) in %.2f s = %.3f \
     MLUP/s@."
    steps params.Pfcore.Params.name size dim ranks
    (if ranks > 1 then "s" else "")
    (if overlap then ", overlapped exchange" else "")
    (if split then "split" else "full")
    backend_name dt
    (cells *. float_of_int steps /. dt /. 1e6);
  Fmt.pr "phase fractions: %a@." Fmt.(array ~sep:sp (fmt "%.4f")) fractions

let tile_conv =
  let parse s =
    try Ok (Vm.Schedule.shape_of_string s) with Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Vm.Schedule.pp_shape)

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~doc:"Run every kernel sweep on $(docv) OCaml domains through the persistent pool (default: \\$PFGEN_DOMAINS or 1; pooled results are bitwise identical to serial)." ~docv:"N")

let tile_arg =
  Arg.(value & opt (some tile_conv) None & info [ "tile" ] ~doc:"Cache-blocking tile shape per loop depth, e.g. 8x4 (2D) or 16x8x* (3D; * or 0 = full extent at that depth). Default: one slab per domain along the outer loop." ~docv:"AxB")

let backend_conv =
  let parse s =
    match Vm.Engine.backend_of_string s with
    | Some b -> Ok b
    | None -> Error (`Msg ("unknown backend " ^ s ^ " (interp, jit)"))
  in
  let print ppf b = Fmt.string ppf (Vm.Engine.backend_label b) in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(value & opt (some backend_conv) None & info [ "backend" ] ~doc:"VM execution backend: interp (reference interpreter) or jit (closure-compiled tapes, bitwise identical, compiled once per kernel program). Default: \\$PFGEN_VM_BACKEND or interp." ~docv:"BACKEND")

let size_arg = Arg.(value & opt int 32 & info [ "size" ] ~doc:"Domain edge length in cells.")
let steps_arg = Arg.(value & opt int 50 & info [ "steps" ] ~doc:"Time steps to run.")
let ranks_arg = Arg.(value & opt int 1 & info [ "ranks" ] ~doc:"Simulated MPI ranks (1D decomposition).")
let split_arg = Arg.(value & flag & info [ "split" ] ~doc:"Use the split (staggered-precompute) phi kernel variant.")

let overlap_arg =
  Arg.(value & flag & info [ "overlap" ] ~doc:"Overlap the phi_dst ghost exchange with the mu interior sweep (IR-derived inner/outer kernel split; bitwise identical to the sequential exchange). Requires --ranks > 1.")

let crash_arg =
  Arg.(value & opt (some int) None & info [ "crash-at" ] ~doc:"Inject faults (drop/delay/duplicate) and crash a rank entering step $(docv); the run recovers by rollback and is verified bitwise against an undisturbed twin. Requires --ranks > 1." ~docv:"K")

let ckpt_every_arg =
  Arg.(value & opt int 5 & info [ "checkpoint-every" ] ~doc:"Checkpoint cadence (steps) for the crash-protected run.")

let fault_seed_arg =
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~doc:"Seed of the deterministic fault plan.")

let adaptive_arg =
  Arg.(value & flag & info [ "adaptive" ] ~doc:"Run on the interface-adaptive block forest (6-cell blocks, Morton-balanced over the ranks): fully-bulk blocks freeze to per-field constants, interface blocks stay resolved, and the result is verified bitwise against the uniform fine-grid run. Requires --size a multiple of 6.")

let diag_arg =
  Arg.(value & flag & info [ "diag" ] ~doc:"Print canonical diagnostics (interface-cell count and fraction, min/max of phase component 0) computed by the fixed-topology reduction tree: bitwise reproducible across domain counts, tile shapes, backends and rank decompositions.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Record spans (kernel sweeps, ghost exchanges, checkpoints) and write a Chrome trace-event JSON to $(docv): one lane per simulated rank, one track per OCaml domain. Open in about://tracing or Perfetto." ~docv:"FILE")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc:"Write the metrics report (per-kernel cells and timing histograms, network counters, checkpoint stats) to $(docv): JSON when the name ends in .json, aligned text otherwise." ~docv:"FILE")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a simulation with the generated kernels (optionally on simulated MPI ranks, optionally under fault injection with crash recovery, optionally recording a trace and metrics).")
    Term.(const simulate $ model_arg $ size_arg $ steps_arg $ ranks_arg $ split_arg
          $ overlap_arg $ domains_arg $ tile_arg $ backend_arg $ crash_arg
          $ ckpt_every_arg $ fault_seed_arg $ adaptive_arg $ diag_arg $ trace_arg
          $ metrics_arg)

(* ---- checkpoint / resume ---- *)

let checkpoint params size steps ranks split output =
  let g = generate params false in
  let dim = params.Pfcore.Params.dim in
  let snap =
    if ranks > 1 then begin
      let grid, block_dims = decomposition ~dim ~size ~ranks in
      let forest = build_forest ~split ~grid ~block_dims g in
      Blocks.Forest.run forest ~steps;
      Resilience.Snapshot.capture forest
    end
    else begin
      let sim = build_single ~split ~dims:(Array.make dim size) params g in
      Pfcore.Timestep.run sim ~steps;
      Resilience.Snapshot.capture_single sim
    end
  in
  Resilience.Snapshot.save output snap;
  Fmt.pr "wrote %a to %s (%d bytes)@." Resilience.Snapshot.pp snap output
    (String.length (Resilience.Snapshot.encode snap))

let snap_out_arg =
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc:"Snapshot file to write." ~docv:"FILE")

let checkpoint_cmd =
  Cmd.v
    (Cmd.info "checkpoint" ~doc:"Run a simulation and write a versioned, checksummed snapshot of its full state (field buffers with ghosts, step index, model fingerprint).")
    Term.(const checkpoint $ model_arg $ size_arg $ steps_arg $ ranks_arg $ split_arg
          $ snap_out_arg)

let resume params input steps verify =
  let g = generate params false in
  let snap = Resilience.Snapshot.load input in
  Fmt.pr "loaded %a from %s@." Resilience.Snapshot.pp snap input;
  (* validate the model before building any block: resuming under the
     wrong --model must fail cleanly, not crash mid-construction *)
  let fp = Resilience.Snapshot.fingerprint_of_params params in
  if fp <> snap.Resilience.Snapshot.fingerprint then begin
    Fmt.epr
      "resume: snapshot was taken with a different model (fingerprint %08x, --model \
       %s has %08x)@."
      snap.Resilience.Snapshot.fingerprint params.Pfcore.Params.name fp;
    exit 1
  end;
  let ranks = Array.fold_left ( * ) 1 snap.Resilience.Snapshot.grid in
  let split = snap.Resilience.Snapshot.split_phi in
  let size = snap.Resilience.Snapshot.global_dims.(0) in
  let dim = Array.length snap.Resilience.Snapshot.global_dims in
  let fractions =
    if ranks > 1 then begin
      let forest =
        Blocks.Forest.create ~variant_phi:(variant_of split)
          ~variant_mu:(variant_of snap.Resilience.Snapshot.split_mu)
          ~grid:snap.Resilience.Snapshot.grid
          ~block_dims:snap.Resilience.Snapshot.block_dims g
      in
      Resilience.Snapshot.restore snap forest;
      Blocks.Forest.run forest ~steps;
      if verify then begin
        (* rerun from the same initial conditions without interruption and
           demand bitwise agreement *)
        let clean =
          build_forest ~split ~grid:snap.Resilience.Snapshot.grid
            ~block_dims:snap.Resilience.Snapshot.block_dims g
        in
        Blocks.Forest.run clean ~steps:(snap.Resilience.Snapshot.step + steps);
        let bad = forest_phi_mismatches g forest clean in
        if bad = 0 then Fmt.pr "verification: resumed run = uninterrupted run (bitwise)@."
        else begin
          Fmt.epr "verification FAILED: %d cell value(s) differ@." bad;
          exit 1
        end
      end;
      Blocks.Forest.phase_fractions forest
    end
    else begin
      let sim =
        Pfcore.Timestep.create ~variant_phi:(variant_of split)
          ~variant_mu:(variant_of snap.Resilience.Snapshot.split_mu)
          ~dims:snap.Resilience.Snapshot.block_dims g
      in
      Resilience.Snapshot.restore_single snap sim;
      Pfcore.Timestep.run sim ~steps;
      if verify then begin
        let clean = build_single ~split ~dims:snap.Resilience.Snapshot.block_dims params g in
        Pfcore.Timestep.run clean ~steps:(snap.Resilience.Snapshot.step + steps);
        let phi = g.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
        let a = Vm.Engine.buffer sim.Pfcore.Timestep.block phi in
        let b = Vm.Engine.buffer clean.Pfcore.Timestep.block phi in
        let bad = ref 0 in
        Array.iteri
          (fun i x ->
            if
              not
                (Int64.equal (Int64.bits_of_float x)
                   (Int64.bits_of_float b.Vm.Buffer.data.(i)))
            then incr bad)
          a.Vm.Buffer.data;
        if !bad = 0 then Fmt.pr "verification: resumed run = uninterrupted run (bitwise)@."
        else begin
          Fmt.epr "verification FAILED: %d buffer element(s) differ@." !bad;
          exit 1
        end
      end;
      Pfcore.Simulation.phase_fractions sim
    end
  in
  Fmt.pr "%d more steps of %s on %d^%d (%d rank%s) from step %d@." steps
    params.Pfcore.Params.name size dim ranks
    (if ranks > 1 then "s" else "")
    snap.Resilience.Snapshot.step;
  Fmt.pr "phase fractions: %a@." Fmt.(array ~sep:sp (fmt "%.4f")) fractions

let snap_in_arg =
  Arg.(required & opt (some string) None & info [ "i"; "input" ] ~doc:"Snapshot file to resume from." ~docv:"FILE")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Also rerun from scratch without interruption and require bitwise agreement with the resumed run.")

let resume_cmd =
  Cmd.v
    (Cmd.info "resume" ~doc:"Resume a simulation from a snapshot written by 'pfgen checkpoint' (topology and kernel variants are reconstructed from the snapshot; the model fingerprint is validated). With --verify, proves the restart is bitwise exact.")
    Term.(const resume $ model_arg $ snap_in_arg $ steps_arg $ verify_arg)

(* ---- drift ---- *)

let drift n sweeps check_flag json =
  let r = Check.Drift.run ~n ~sweeps () in
  Fmt.pr "%a" Check.Drift.pp r;
  (match json with
  | Some path -> write (Some path) (Check.Drift.to_json r)
  | None -> ());
  if check_flag then
    match Check.Drift.verdict r with
    | Ok () ->
      Fmt.pr "drift check: OK (max deviation %.2f <= threshold %.2f)@."
        (Check.Drift.max_deviation r) Check.Drift.threshold
    | Error msg ->
      Fmt.epr "drift check FAILED: %s@." msg;
      exit 1

let drift_size_arg =
  Arg.(value & opt int 12 & info [ "size" ] ~doc:"Cubic block edge length for the measurement sweeps.")

let drift_sweeps_arg =
  Arg.(value & opt int 2 & info [ "sweeps" ] ~doc:"Timed sweeps per repetition (best of 3 repetitions is kept).")

let drift_check_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Exit nonzero when any measured/model ratio deviates beyond the documented threshold or the mu split/full ordering disagrees with the model.")

let drift_json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~doc:"Also write the full report as JSON to $(docv)." ~docv:"FILE")

let drift_cmd =
  Cmd.v
    (Cmd.info "drift"
       ~doc:"ECM drift oracle: execute all eight P1/P2 kernel variants (phi/mu, full/split) in the VM, compare measured per-cell cost ratios against the ECM performance-model predictions, and report the deviation of each ratio pair. With --check, enforces the documented drift threshold and the mu split <= full ordering.")
    Term.(const drift $ drift_size_arg $ drift_sweeps_arg $ drift_check_arg $ drift_json_arg)

(* ---- tune ---- *)

let choice_json (c : Vm.Tune.choice) =
  let assoc l =
    String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %.6g" k v) l)
  in
  Printf.sprintf
    "{\n\
    \      \"variant\": %S,\n\
    \      \"tile\": %S,\n\
    \      \"backend\": %S,\n\
    \      \"fingerprint\": \"%08x\",\n\
    \      \"predicted_cy_per_lup\": { %s },\n\
    \      \"measured_ns_per_lup\": { %s },\n\
    \      \"backend_ns_per_lup\": { %s },\n\
    \      \"cachesim_bytes_per_lup\": %.6g\n\
    \    }"
    c.Vm.Tune.variant_label
    (Fmt.str "%a" Vm.Tune.pp_tile c.Vm.Tune.tile)
    (Vm.Engine.backend_label c.Vm.Tune.backend)
    c.Vm.Tune.fingerprint (assoc c.Vm.Tune.predicted_cy) (assoc c.Vm.Tune.measured_ns)
    (assoc c.Vm.Tune.backend_ns)
    c.Vm.Tune.cachesim_bytes_per_lup

let tune_json (params : Pfcore.Params.t) (plan : Pfcore.Timestep.plan) =
  let families =
    ("phi", plan.Pfcore.Timestep.phi)
    :: (match plan.Pfcore.Timestep.mu with Some m -> [ ("mu", m) ] | None -> [])
  in
  Printf.sprintf
    "{\n\
    \  \"model\": %S,\n\
    \  \"domains\": %d,\n\
    \  \"tile\": %S,\n\
    \  \"backend\": %S,\n\
    \  \"families\": {\n\
     %s\n\
    \  }\n\
     }\n"
    params.Pfcore.Params.name plan.Pfcore.Timestep.plan_domains
    (Fmt.str "%a" Vm.Tune.pp_tile plan.Pfcore.Timestep.plan_tile)
    (Vm.Engine.backend_label plan.Pfcore.Timestep.plan_backend)
    (String.concat ",\n"
       (List.map (fun (k, c) -> Printf.sprintf "    %S: %s" k (choice_json c)) families))

let tune params domains probe_n check_flag json =
  let g = generate params false in
  let domains =
    match domains with Some d -> d | None -> Vm.Pool.default_domains ()
  in
  let plan = Pfcore.Timestep.autotune ~domains ~probe_n g in
  Fmt.pr "model %s, tuned for %d domain(s), %d^%d probe block, %s backend@."
    params.Pfcore.Params.name domains probe_n params.Pfcore.Params.dim
    (Vm.Engine.backend_label plan.Pfcore.Timestep.plan_backend);
  Fmt.pr "@.phi family:@.%a@." Vm.Tune.pp_choice plan.Pfcore.Timestep.phi;
  (match plan.Pfcore.Timestep.mu with
  | Some m -> Fmt.pr "mu family:@.%a@." Vm.Tune.pp_choice m
  | None -> ());
  (match json with Some path -> write (Some path) (tune_json params plan) | None -> ());
  if check_flag then begin
    (* 1. the decision cache: re-tuning the same model must not re-probe *)
    let hits0, misses0 = Vm.Tune.cache_stats () in
    let plan' = Pfcore.Timestep.autotune ~domains ~probe_n g in
    let hits1, misses1 = Vm.Tune.cache_stats () in
    if misses1 <> misses0 || hits1 <= hits0 then begin
      Fmt.epr "tune check FAILED: repeated autotune missed the decision cache@.";
      exit 1
    end;
    if plan'.Pfcore.Timestep.phi.Vm.Tune.fingerprint
       <> plan.Pfcore.Timestep.phi.Vm.Tune.fingerprint
    then begin
      Fmt.epr "tune check FAILED: cached decision differs from the original@.";
      exit 1
    end;
    (* 2. the plan's pooled tiled execution is bitwise identical to a serial
       run of the same kernel variants *)
    let dims = Array.make params.Pfcore.Params.dim 8 in
    let run mk =
      let sim = mk () in
      Pfcore.Simulation.init_smooth sim;
      Pfcore.Timestep.run sim ~steps:2;
      sim
    in
    let serial =
      run (fun () ->
          Pfcore.Timestep.create
            ~variant_phi:(Pfcore.Timestep.variant_of_choice plan.Pfcore.Timestep.phi)
            ?variant_mu:
              (Option.map Pfcore.Timestep.variant_of_choice plan.Pfcore.Timestep.mu)
            ~num_domains:1 ~dims g)
    in
    let tuned = run (fun () -> Pfcore.Timestep.create_tuned ~plan ~dims g) in
    let bad = ref 0 in
    List.iter2
      (fun (_, (x : Vm.Buffer.t)) (_, (y : Vm.Buffer.t)) ->
        Array.iteri
          (fun i v ->
            if
              not
                (Int64.equal (Int64.bits_of_float v)
                   (Int64.bits_of_float y.Vm.Buffer.data.(i)))
            then incr bad)
          x.Vm.Buffer.data)
      serial.Pfcore.Timestep.block.Vm.Engine.buffers
      tuned.Pfcore.Timestep.block.Vm.Engine.buffers;
    if !bad <> 0 then begin
      Fmt.epr "tune check FAILED: tuned run diverges from serial in %d element(s)@." !bad;
      exit 1
    end;
    Fmt.pr
      "tune check: OK (decision cached; tuned plan at %d domain(s) = serial, bitwise)@."
      plan.Pfcore.Timestep.plan_domains
  end

let tune_domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~doc:"Pool width to tune for (default: \\$PFGEN_DOMAINS or 1); part of the cache fingerprint." ~docv:"N")

let probe_size_arg =
  Arg.(value & opt int 10 & info [ "probe-size" ] ~doc:"Edge length of the cubic probe block used for measured probes.")

let tune_check_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Verify the tuner: a repeated run must hit the decision cache, and the tuned pooled plan must reproduce a serial run bitwise. Exits nonzero on failure.")

let tune_json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~doc:"Also write the full decision report (variants, tiles, ECM predictions, measured probes, cache-simulator traffic) as JSON to $(docv)." ~docv:"FILE")

let tune_cmd =
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Autotune kernel execution for this machine: choose full vs. split per kernel family and a cache-blocking tile shape by combining ECM model predictions, cache-simulator traffic and short measured probes. Decisions are cached per model fingerprint and reused by 'pfgen simulate' via Timestep.create_tuned.")
    Term.(const tune $ model_arg $ tune_domains_arg $ probe_size_arg $ tune_check_arg
          $ tune_json_arg)

(* ---- serve ---- *)

let serve jobs seed quantum active park_after budget_mb quota domains tune soak verify
    no_crash trace metrics_out =
  let jobs = if soak then max jobs 50 else jobs in
  let verify = verify || soak in
  let observing = trace <> None || metrics_out <> None in
  if observing then begin
    Obs.Metrics.reset ();
    Obs.Sink.clear ();
    Obs.Sink.enable ()
  end;
  let specs =
    Serve.Workload.generate ~with_crash:(not no_crash) ~seed ~jobs ()
  in
  let config =
    {
      Serve.Scheduler.quantum;
      max_active = active;
      budget_bytes = budget_mb * 1024 * 1024;
      tenant_quota = quota;
      park_after;
      num_domains = (match domains with Some d -> d | None -> Vm.Pool.default_domains ());
      autotune = tune;
      ckpt_every = 2;
    }
  in
  let mempool = Serve.Mempool.create () in
  let t0 = Unix.gettimeofday () in
  let stats = Serve.Scheduler.run ~config ~mempool specs in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter
    (fun ((spec : Serve.Workload.spec), reason) ->
      Fmt.pr "rejected: %a (%s)@." Serve.Workload.pp_spec spec reason)
    stats.Serve.Scheduler.rejected;
  List.iter
    (fun (r : Serve.Scheduler.job_result) ->
      Fmt.pr "done: %a | %d quantum(s), %d preemption(s), %d restart(s), %.1f ms@."
        Serve.Workload.pp_spec r.Serve.Scheduler.r_spec r.Serve.Scheduler.r_quanta
        r.Serve.Scheduler.r_preemptions r.Serve.Scheduler.r_restarts
        (r.Serve.Scheduler.latency_ns /. 1e6))
    stats.Serve.Scheduler.results;
  let n = List.length stats.Serve.Scheduler.results in
  let mp = stats.Serve.Scheduler.mempool in
  let hit_rate =
    let total = mp.Serve.Mempool.hits + mp.Serve.Mempool.misses in
    if total = 0 then 0. else float_of_int mp.Serve.Mempool.hits /. float_of_int total
  in
  let qs = stats.Serve.Scheduler.queue in
  Fmt.pr
    "farm: %d job(s) in %.2f s = %.1f jobs/s; %d preemption(s), %d crash restart(s); \
     queue parked %d (budget) + %d (quota), rejected %d@."
    n dt
    (float_of_int n /. dt)
    stats.Serve.Scheduler.preemptions stats.Serve.Scheduler.restarts
    qs.Serve.Queue.parked_budget qs.Serve.Queue.parked_quota qs.Serve.Queue.rejected;
  Fmt.pr "mempool: %.1f%% hit rate, %a@." (100. *. hit_rate) Serve.Mempool.pp_stats mp;
  if observing then begin
    Obs.Sink.disable ();
    (match trace with
    | Some path ->
      let evs = Obs.Sink.events () in
      Obs.Trace.save path evs;
      Fmt.pr "wrote Chrome trace to %s (%d events)@." path (List.length evs)
    | None -> ());
    match metrics_out with
    | Some path ->
      Obs.Report.save path (Obs.Metrics.snapshot ());
      Fmt.pr "wrote metrics report to %s@." path
    | None -> ()
  end;
  if verify then begin
    (* oracle 9 inline: every farm result must equal its solo run bitwise *)
    let bad =
      List.filter
        (fun (r : Serve.Scheduler.job_result) ->
          not
            (Resilience.Snapshot.equal r.Serve.Scheduler.final
               (Serve.Scheduler.run_solo r.Serve.Scheduler.r_spec)))
        stats.Serve.Scheduler.results
    in
    if bad = [] then
      Fmt.pr "verification: all %d farm result(s) = solo runs (bitwise)@." n
    else begin
      List.iter
        (fun (r : Serve.Scheduler.job_result) ->
          Fmt.epr "verification FAILED: %a diverges from its solo run@."
            Serve.Workload.pp_spec r.Serve.Scheduler.r_spec)
        bad;
      exit 1
    end
  end;
  if soak && n < 50 then begin
    Fmt.epr "soak FAILED: only %d of the required 50 job(s) completed@." n;
    exit 1
  end

let serve_jobs_arg =
  Arg.(value & opt int 12 & info [ "jobs" ] ~doc:"Workload size (forced to at least 50 by --soak).")

let serve_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload seed: the same seed replays the identical job mix.")

let quantum_arg =
  Arg.(value & opt int 2 & info [ "quantum" ] ~doc:"Timesteps per scheduler slice.")

let active_arg =
  Arg.(value & opt int 3 & info [ "active" ] ~doc:"Maximum resident (admitted) jobs.")

let park_after_arg =
  Arg.(value & opt int 3 & info [ "park-after" ] ~doc:"Preempt a job after $(docv) consecutive quanta: snapshot it, recycle its buffers, requeue it (0 disables preemption)." ~docv:"N")

let budget_mb_arg =
  Arg.(value & opt int 64 & info [ "budget-mb" ] ~doc:"Memory budget for admission control, in MiB of projected field-buffer bytes.")

let quota_arg =
  Arg.(value & opt int 2 & info [ "quota" ] ~doc:"Maximum resident jobs per tenant.")

let serve_tune_arg =
  Arg.(value & flag & info [ "tune" ] ~doc:"Take tile shapes from the shared Vm.Tune cache (probed once per model family, hit by every further job).")

let soak_arg =
  Arg.(value & flag & info [ "soak" ] ~doc:"Soak gate: run at least 50 mixed jobs with crash injection and verify every result bitwise against a solo run; exits nonzero on any divergence.")

let serve_verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Verify every farm result bitwise against a solo rerun of the same job (implied by --soak).")

let no_crash_arg =
  Arg.(value & flag & info [ "no-crash" ] ~doc:"Generate the workload without fault-injected jobs.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a multi-tenant simulation farm: a priority job queue with tenant quotas and memory admission control feeds a cooperative round-robin scheduler that slices jobs into timestep quanta over the persistent domain pool, recycles field buffers through a size-class memory pool, shares the autotune cache across jobs, preempts long jobs via snapshots and survives injected rank crashes by rollback recovery.")
    Term.(const serve $ serve_jobs_arg $ serve_seed_arg $ quantum_arg $ active_arg
          $ park_after_arg $ budget_mb_arg $ quota_arg $ domains_arg $ serve_tune_arg
          $ soak_arg $ serve_verify_arg $ no_crash_arg $ trace_arg $ metrics_arg)

(* ---- check ---- *)

let check samples seed quiet =
  let code = Check.Harness.run ~verbose:(not quiet) ?seed ~samples () in
  if code <> 0 then exit 1

let samples_arg =
  Arg.(value & opt int 200 & info [ "samples"; "n" ] ~doc:"Base sample count per oracle (cheap oracles run more, whole-model oracles fewer).")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Fix the random seed for a reproducible run.")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print failures.")

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential verification soak: fuzz random expressions, kernels and models through cross-layer oracle pairs (Eval vs. optimizer passes, Vm.Engine vs. interpreter, full vs. split kernels, serial vs. domains, 1 rank vs. 2x2 Mpisim ranks). Exits nonzero on divergence, reporting a minimized counterexample.")
    Term.(const check $ samples_arg $ seed_arg $ quiet_arg)

(* ---- main ---- *)

let () =
  let info =
    Cmd.info "pfgen" ~version:"1.0.0"
      ~doc:"Code generation for massively parallel phase-field simulations (SC'19 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_c_cmd;
            gen_cuda_cmd;
            table1_cmd;
            perf_cmd;
            registers_cmd;
            simulate_cmd;
            checkpoint_cmd;
            resume_cmd;
            drift_cmd;
            tune_cmd;
            serve_cmd;
            check_cmd;
          ]))
