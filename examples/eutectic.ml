(* Eutectic directional solidification (Bauer/Hötzer 2015, the
   grand-challenge scenario): two solid lamellae grow from the bottom of
   the domain into an undercooled binary melt, driven by the moving
   analytic temperature gradient.  Uses the model-zoo `eutectic` preset
   (3 phases, 2 components) built from the combinator library.  Reports
   the observables the physics is judged by: solid fraction growth, front
   position vs the pulling velocity, and lamella count in a cross-section.

   Run with:  dune exec examples/eutectic.exe [-- steps] *)

let () =
  let steps = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150 in
  Fmt.pr "== eutectic directional solidification (model zoo) ==@.";
  let params = Pfcore.Params.eutectic () in
  Fmt.pr "model: %d phases, %d components, %d compile-time parameters@."
    params.Pfcore.Params.n_phases params.Pfcore.Params.n_comps
    (Pfcore.Params.config_parameter_count params);
  let t0 = Unix.gettimeofday () in
  let generated = Pfcore.Genkernels.generate params in
  Fmt.pr "kernels generated in %.1fs (recompilation cost the paper quotes as 30-60s)@."
    (Unix.gettimeofday () -. t0);
  List.iter
    (fun (name, k) ->
      Fmt.pr "  %-9s %a@." name Field.Opcount.pp (Pfcore.Genkernels.counts k))
    [
      ("phi-full", generated.Pfcore.Genkernels.phi_full);
      ("mu-full", Option.get generated.Pfcore.Genkernels.mu_full);
    ];

  let sim = Pfcore.Timestep.create ~dims:[| 48; 96 |] generated in
  Pfcore.Simulation.init_lamellae ~height_frac:0.25 ~lamella_width:8 sim;

  Fmt.pr "@.step   solid-frac  front-y  phases(alpha,beta,liquid)@.";
  let report step =
    let fr = Pfcore.Simulation.phase_fractions sim in
    let solid = fr.(0) +. fr.(1) in
    Fmt.pr "%5d  %10.4f  %7.2f  %.3f %.3f %.3f@." step solid
      (Pfcore.Simulation.front_position sim)
      fr.(0) fr.(1) fr.(2)
  in
  report 0;
  let chunk = max 1 (steps / 5) in
  let done_ = ref 0 in
  while !done_ < steps do
    let n = min chunk (steps - !done_) in
    Pfcore.Timestep.run sim ~steps:n;
    done_ := !done_ + n;
    report !done_
  done;

  (* lamella structure: count solid-phase alternations in a bottom row *)
  let buf = Pfcore.Simulation.phi_buffer sim in
  let dominant x =
    let best = ref 0 and bv = ref 0. in
    for c = 0 to 1 do
      let v = Vm.Buffer.get buf ~component:c [| x; 4 |] in
      if v > !bv then begin
        bv := v;
        best := c
      end
    done;
    !best
  in
  let changes = ref 0 in
  for x = 1 to 47 do
    if dominant x <> dominant (x - 1) then incr changes
  done;
  Fmt.pr "@.lamella boundaries in bottom cross-section: %d (alternating two-solid structure)@."
    !changes;
  Fmt.pr "state sane: %b@." (Pfcore.Simulation.check_sane sim);
  Pfcore.Vtkout.write_phi sim "eutectic.vtk";
  Fmt.pr "wrote eutectic.vtk (ParaView: STRUCTURED_POINTS, phi_0..2 + dominant phase)@."
