(* Backends: the generated C must (a) compile with a real compiler and
   (b) produce bit-identical results to the VM executing the same IR —
   the end-to-end check that the printed code and the executed code are
   the same artifact.  CUDA and SIMD outputs get structural checks plus a
   host-compiler syntax pass for the vectorized code. *)

open Symbolic

let contains_sub haystack needle = Astring.String.is_infix ~affix:needle haystack

let curv = lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()))

let have_gcc = lazy (Sys.command "gcc --version > /dev/null 2>&1" = 0)

let with_tmpdir f =
  let dir = Filename.temp_file "pfgen" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_process cmd =
  let ic = Unix.open_process_in cmd in
  let line = try input_line ic with End_of_file -> "" in
  ignore (Unix.close_process_in ic);
  line

(* ------------------------------------------------------------------ *)

let test_c_compiles () =
  if not (Lazy.force have_gcc) then Alcotest.skip ()
  else begin
    let g = Lazy.force curv in
    let unit_ =
      Backend.Ccode.translation_unit ~openmp:true
        [
          Ir.Lower.run g.phi_full;
          Ir.Lower.run g.phi_split.stag;
          Ir.Lower.run (Option.get g.projection);
        ]
    in
    with_tmpdir (fun dir ->
        let src = Filename.concat dir "kernels.c" in
        write_file src unit_;
        let rc =
          Sys.command
            (Printf.sprintf "gcc -std=c11 -O1 -fopenmp -fsyntax-only %s 2> %s/err.log"
               (Filename.quote src) (Filename.quote dir))
        in
        Alcotest.(check int) "gcc accepts generated C" 0 rc)
  end

let test_simd_compiles () =
  if not (Lazy.force have_gcc) then Alcotest.skip ()
  else begin
    let g = Lazy.force curv in
    let unit_ =
      Backend.Simd.translation_unit ~isa:Backend.Simd.AVX512 ~openmp:false
        [ Ir.Lower.run g.phi_full ]
    in
    with_tmpdir (fun dir ->
        let src = Filename.concat dir "simd.c" in
        write_file src unit_;
        let rc =
          Sys.command
            (Printf.sprintf "gcc -std=c11 -O1 -mavx512f -fsyntax-only %s 2> %s/err.log"
               (Filename.quote src) (Filename.quote dir))
        in
        Alcotest.(check int) "gcc accepts AVX512 intrinsics" 0 rc)
  end

(* End-to-end: compile the generated curvature φ kernel with gcc, run it on
   the same flat arrays as the VM, compare checksums digit for digit. *)
let test_c_matches_vm () =
  if not (Lazy.force have_gcc) then Alcotest.skip ()
  else begin
    let g = Lazy.force curv in
    let fields = g.Pfcore.Genkernels.fields in
    let dims = [| 8; 6 |] in
    let block =
      Vm.Engine.make_block ~ghost:2 ~dims
        [ fields.Pfcore.Model.phi_src; fields.Pfcore.Model.phi_dst ]
    in
    let src_buf = Vm.Engine.buffer block fields.Pfcore.Model.phi_src in
    let dst_buf = Vm.Engine.buffer block fields.Pfcore.Model.phi_dst in
    let fill i = 0.25 +. (0.2 *. sin (0.37 *. float_of_int i)) in
    Array.iteri (fun i _ -> src_buf.Vm.Buffer.data.(i) <- fill i) src_buf.Vm.Buffer.data;
    let kparams = Ir.Kernel.parameters g.phi_full in
    let bound = Vm.Engine.bind g.phi_full block in
    Vm.Engine.run
      ~params:(("dx", 1.) :: List.map (fun s -> (s, 0.)) kparams)
      bound;
    let vm_sum = ref 0. in
    for x = 0 to dims.(0) - 1 do
      for y = 0 to dims.(1) - 1 do
        for c = 0 to 1 do
          vm_sum := !vm_sum +. Vm.Buffer.get dst_buf ~component:c [| x; y |]
        done
      done
    done;
    (* C side: same layout, pointers advanced to the interior origin *)
    let padded0 = dims.(0) + 4 and padded1 = dims.(1) + 4 in
    let comp_stride = padded0 * padded1 in
    let origin = (2 * padded0) + 2 in
    let main =
      Printf.sprintf
        {|
#include <stdio.h>
#include <stdlib.h>
int main(void) {
  int total = %d;
  double *src = malloc(total * sizeof(double));
  double *dst = malloc(total * sizeof(double));
  for (int i = 0; i < total; ++i) { src[i] = 0.25 + 0.2*sin(0.37*(double)i); dst[i] = 0.0; }
  phi_full(src + %d, dst + %d, %s%d, %d, %d, %d, 0, 0, 0);
  double sum = 0.0;
  for (int y = 0; y < %d; ++y)
    for (int x = 0; x < %d; ++x)
      for (int c = 0; c < 2; ++c)
        sum += dst[%d + c*%d + y*%d + x];
  printf("%%.17g\n", sum);
  return 0;
}
|}
        (comp_stride * 2) origin origin
        (String.concat "" (List.map (fun _ -> "0.0, ") kparams))
        dims.(0) dims.(1) padded0 comp_stride dims.(1) dims.(0) origin comp_stride padded0
    in
    let unit_ =
      Backend.Ccode.translation_unit ~openmp:false [ Ir.Lower.run g.phi_full ] ^ main
    in
    with_tmpdir (fun dir ->
        let src_file = Filename.concat dir "e2e.c" in
        let exe = Filename.concat dir "e2e" in
        write_file src_file unit_;
        let rc =
          Sys.command
            (Printf.sprintf "gcc -std=c11 -O2 -o %s %s -lm 2> %s/err.log" (Filename.quote exe)
               (Filename.quote src_file) (Filename.quote dir))
        in
        Alcotest.(check int) "compiles" 0 rc;
        let out = read_process exe in
        let c_sum = float_of_string out in
        Alcotest.(check (float 1e-12)) "C result == VM result" !vm_sum c_sum)
  end

(* ------------------------------------------------------------------ *)

let test_c_signature_and_structure () =
  let g = Lazy.force curv in
  let code = Backend.Ccode.emit (Ir.Lower.run g.phi_full) in
  let contains s = Alcotest.(check bool) s true (contains_sub code s) in
  contains "void phi_full(double * restrict phi_src, double * restrict phi_dst";
  contains "#pragma omp parallel for";
  contains "const int64_t _b"

let test_cuda_structure () =
  let g = Lazy.force curv in
  let code = Backend.Cuda.emit g.phi_full in
  let contains s = Alcotest.(check bool) s true (contains_sub code s) in
  contains "__global__ void phi_full";
  contains "blockIdx.x * blockDim.x + threadIdx.x";
  contains "return;" (* bounds guard *)

let test_cuda_approx_ops () =
  let p = Pfcore.Params.p1 () in
  let g = Pfcore.Genkernels.generate p in
  let approx = { Backend.Cexpr.fast_div = true; fast_rsqrt = true } in
  let code = Backend.Cuda.emit ~approx (Option.get g.mu_full) in
  Alcotest.(check bool) "uses __frsqrt_rn" true (contains_sub code "__frsqrt_rn");
  Alcotest.(check bool) "uses __fdividef" true (contains_sub code "__fdividef")

let test_cuda_fences () =
  let g = Lazy.force curv in
  let code = Backend.Cuda.emit ~fence_stride:4 g.phi_full in
  Alcotest.(check bool) "threadfence present" true
    (contains_sub code "__threadfence_block()")

let test_cuda_launch_config () =
  let s = Backend.Cuda.launch_config Backend.Cuda.default_mapping ~dims:[| 100; 30; 17 |] in
  Alcotest.(check bool) "grid covers domain" true (contains_sub s "dim3 grid(2,15,9)")

let test_simd_structure () =
  let g = Lazy.force curv in
  let code = Backend.Simd.emit_kernel ~isa:Backend.Simd.AVX512 (Ir.Lower.run g.phi_full) in
  let contains s = Alcotest.(check bool) s true (contains_sub code s) in
  contains "_mm512_load_pd";  (* aligned loads for offset-0 accesses *)
  contains "_mm512_loadu_pd"; (* unaligned for x-offset accesses *)
  contains "_i0 += 8";        (* vector-width stride *)
  contains "for (; _i0 <";    (* scalar tear-down loop *)
  let avx2 = Backend.Simd.emit_kernel ~isa:Backend.Simd.AVX2 (Ir.Lower.run g.phi_full) in
  Alcotest.(check bool) "AVX2 width 4" true (contains_sub avx2 "_i0 += 4")

let test_simd_select_blend () =
  (* a Select in the body must become a blend, not a branch *)
  let f = Fieldspec.scalar ~dim:2 "f" in
  let gfld = Fieldspec.scalar ~dim:2 "g" in
  let body =
    [
      Field.Assignment.store (Fieldspec.center gfld)
        (Expr.select (Expr.Lt (Expr.field f, Expr.num 0.5)) (Expr.num 1.) (Expr.field f));
    ]
  in
  let k = Ir.Kernel.make ~name:"blend" ~dim:2 body in
  let code = Backend.Simd.emit_kernel ~isa:Backend.Simd.AVX512 (Ir.Lower.run k) in
  Alcotest.(check bool) "mask blend emitted" true
    (contains_sub code "_mm512_mask_blend_pd")

(* ------------------------------------------------------------------ *)

(* Golden snapshots: the exact printed C of the p1 φ- and μ-sweep kernels.
   Any drift in the symbolic pipeline, CSE, lowering or the printer shows up
   as a diff here; PFGEN_UPDATE_GOLDEN=1 refreshes after intentional
   changes. *)
let p1_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p1 ()))

let test_golden_c_phi () =
  let g = Lazy.force p1_gen in
  Golden.check ~name:"p1_phi_full.c" (Backend.Ccode.emit (Ir.Lower.run g.phi_full))

let test_golden_c_mu () =
  let g = Lazy.force p1_gen in
  Golden.check ~name:"p1_mu_full.c"
    (Backend.Ccode.emit (Ir.Lower.run (Option.get g.mu_full)))

(* Model-zoo snapshots: one φ sweep per family (plus eutectic's μ sweep, the
   only zoo family with chemical potentials), so a regression anywhere in
   the combinator frontend, Varder's second-order term or the family rhs
   dispatch shows up as a C diff. *)
let zoo_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.eutectic ()))
let pfc_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.pfc ()))
let gs_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.gray_scott ()))

let test_golden_c_eutectic () =
  let g = Lazy.force zoo_gen in
  Golden.check ~name:"eutectic_phi_full.c" (Backend.Ccode.emit (Ir.Lower.run g.phi_full));
  Golden.check ~name:"eutectic_mu_full.c"
    (Backend.Ccode.emit (Ir.Lower.run (Option.get g.mu_full)))

let test_golden_c_pfc () =
  let g = Lazy.force pfc_gen in
  Golden.check ~name:"pfc_phi_full.c" (Backend.Ccode.emit (Ir.Lower.run g.phi_full))

let test_golden_c_gray_scott () =
  let g = Lazy.force gs_gen in
  Golden.check ~name:"gray_scott_phi_full.c" (Backend.Ccode.emit (Ir.Lower.run g.phi_full))

let suite =
  [
    Alcotest.test_case "generated C compiles (gcc)" `Quick test_c_compiles;
    Alcotest.test_case "golden C: p1 phi sweep" `Quick test_golden_c_phi;
    Alcotest.test_case "golden C: p1 mu sweep" `Quick test_golden_c_mu;
    Alcotest.test_case "golden C: eutectic phi + mu sweeps" `Quick test_golden_c_eutectic;
    Alcotest.test_case "golden C: pfc phi sweep" `Quick test_golden_c_pfc;
    Alcotest.test_case "golden C: gray-scott phi sweep" `Quick test_golden_c_gray_scott;
    Alcotest.test_case "generated AVX512 compiles (gcc)" `Quick test_simd_compiles;
    Alcotest.test_case "generated C == VM (end-to-end)" `Quick test_c_matches_vm;
    Alcotest.test_case "C structure" `Quick test_c_signature_and_structure;
    Alcotest.test_case "CUDA structure" `Quick test_cuda_structure;
    Alcotest.test_case "CUDA approximate ops" `Quick test_cuda_approx_ops;
    Alcotest.test_case "CUDA fences" `Quick test_cuda_fences;
    Alcotest.test_case "CUDA launch config" `Quick test_cuda_launch_config;
    Alcotest.test_case "SIMD structure" `Quick test_simd_structure;
    Alcotest.test_case "SIMD select blend" `Quick test_simd_select_blend;
  ]
