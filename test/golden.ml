(* Golden-snapshot helpers.

   Committed reference output lives in test/golden/ (declared as dune deps,
   so it is visible in the sandboxed test directory as ./golden/).  A test
   compares normalized emitted source against the snapshot; running with
   PFGEN_UPDATE_GOLDEN=1 rewrites the snapshots in the *source tree* (found
   by walking up to the directory containing .git) instead of failing, so
   intentional backend changes are a one-command refresh:

     PFGEN_UPDATE_GOLDEN=1 dune runtest *)

let update_mode = Sys.getenv_opt "PFGEN_UPDATE_GOLDEN" = Some "1"

(* Trailing whitespace and trailing blank lines are not semantic in
   generated code; normalizing them keeps snapshots stable across printer
   tweaks that don't change the code. *)
let normalize text =
  let lines = String.split_on_char '\n' text in
  let strip line =
    let n = String.length line in
    let rec last i = if i > 0 && (line.[i - 1] = ' ' || line.[i - 1] = '\t') then last (i - 1) else i in
    String.sub line 0 (last n)
  in
  let lines = List.map strip lines in
  let rec drop_trailing = function
    | "" :: rest -> drop_trailing rest
    | l -> l
  in
  String.concat "\n" (List.rev (drop_trailing (List.rev lines))) ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* The source-tree golden directory, for regeneration: ascend from the
   (sandboxed _build) cwd to the repository root.  PFGEN_GOLDEN_DIR
   overrides for odd layouts. *)
let source_golden_dir () =
  match Sys.getenv_opt "PFGEN_GOLDEN_DIR" with
  | Some d -> d
  | None ->
    let rec ascend dir =
      if Sys.file_exists (Filename.concat dir ".git") then
        Filename.concat (Filename.concat dir "test") "golden"
      else
        let parent = Filename.dirname dir in
        if parent = dir then failwith "golden: repository root (.git) not found"
        else ascend parent
    in
    ascend (Sys.getcwd ())

(** Compare [actual] against the committed snapshot [name]; in update mode,
    rewrite the snapshot instead. *)
let check ~name actual =
  let actual = normalize actual in
  if update_mode then begin
    let path = Filename.concat (source_golden_dir ()) name in
    write_file path actual;
    Format.printf "golden: updated %s (%d bytes)@." path (String.length actual)
  end
  else
    let path = Filename.concat "golden" name in
    if not (Sys.file_exists path) then
      Alcotest.failf "golden snapshot %s missing - run PFGEN_UPDATE_GOLDEN=1 dune runtest" name
    else
      let expected = normalize (read_file path) in
      if String.equal expected actual then ()
      else begin
        (* dump the divergent output next to the test log for inspection *)
        let got = name ^ ".rej" in
        write_file got actual;
        let show s =
          let limit = 400 in
          if String.length s <= limit then s else String.sub s 0 limit ^ "..."
        in
        (* report the first differing line to make the diff actionable *)
        let el = String.split_on_char '\n' expected
        and al = String.split_on_char '\n' actual in
        let rec first_diff i = function
          | e :: es, a :: as_ ->
            if String.equal e a then first_diff (i + 1) (es, as_) else (i, e, a)
          | e :: _, [] -> (i, e, "<end of output>")
          | [], a :: _ -> (i, "<end of snapshot>", a)
          | [], [] -> (i, "", "")
        in
        let line, e, a = first_diff 1 (el, al) in
        Alcotest.failf
          "golden mismatch for %s at line %d:@\n  snapshot: %s@\n  emitted:  %s@\n(full output written to %s; refresh with PFGEN_UPDATE_GOLDEN=1 dune runtest)"
          name line (show e) (show a) got
      end
