(* GPU model: liveness, Kessler scheduling, rematerialization, the nvcc
   load-hoisting model, occupancy, and the evolutionary tuner — the
   machinery behind the paper's Fig. 2 (right). *)

open Symbolic
open Expr
open Field

(* A small kernel with deliberately poor statement order: all definitions
   first, all uses at the very end — each (def, use, store) chain is
   independent, so a good schedule interleaves them and the peak liveness
   drops to O(1). *)
let g2 = Fieldspec.scalar ~dim:2 "g"
let f2 = Fieldspec.scalar ~dim:2 "f"
let out = Fieldspec.create ~dim:2 ~components:32 "out"

let bad_order_body n =
  let defs =
    List.init n (fun i ->
        Assignment.assign_temp (Printf.sprintf "t%d" i)
          (add
             [
               access (Fieldspec.shift (Fieldspec.center f2) 0 (i - (n / 2)));
               num (float_of_int i);
             ]))
  in
  let uses =
    List.init n (fun i ->
        Assignment.assign_temp (Printf.sprintf "u%d" i)
          (mul [ sym (Printf.sprintf "t%d" i); sym (Printf.sprintf "t%d" i) ]))
  in
  let stores =
    List.init n (fun i ->
        Assignment.store (Fieldspec.center ~component:i out) (sym (Printf.sprintf "u%d" i)))
  in
  defs @ uses @ stores

let test_max_live_counts () =
  let body =
    [
      Assignment.assign_temp "a" (field f2);
      Assignment.assign_temp "b" (mul [ sym "a"; num 2. ]);
      Assignment.store (Fieldspec.center g2) (add [ sym "a"; sym "b" ]);
    ]
  in
  (* a alive through b's def: peak 2 *)
  Alcotest.(check int) "peak liveness" 2 (Gpumodel.Liveness.max_live body)

let test_dead_temp_not_counted () =
  let body =
    [
      Assignment.assign_temp "dead" (field f2);
      Assignment.store (Fieldspec.center g2) (num 1.);
    ]
  in
  Alcotest.(check int) "unused temp never live" 0 (Gpumodel.Liveness.max_live body)

let test_kessler_reduces_pressure () =
  let body = bad_order_body 12 in
  let before = Gpumodel.Liveness.max_live body in
  let after = Gpumodel.Liveness.max_live (Gpumodel.Kessler.schedule ~beam:8 body) in
  Alcotest.(check bool)
    (Printf.sprintf "scheduling helps: %d -> %d" before after)
    true (after < before)

let test_kessler_preserves_semantics () =
  let body = bad_order_body 6 in
  let scheduled = Gpumodel.Kessler.schedule ~beam:4 body in
  Assignment.check_ssa scheduled;
  Alcotest.(check int) "same statement count" (List.length body) (List.length scheduled);
  let stores = Assignment.stores scheduled in
  Alcotest.(check int) "all stores survive" 6 (List.length stores)

let test_greedy_beam_no_worse_than_input () =
  let body = bad_order_body 10 in
  let greedy = Gpumodel.Liveness.max_live (Gpumodel.Kessler.schedule ~beam:1 body) in
  let wide = Gpumodel.Liveness.max_live (Gpumodel.Kessler.schedule ~beam:20 body) in
  Alcotest.(check bool) "wider beam at least as good" true (wide <= greedy)

let test_remat_inlines_cheap () =
  let body =
    [
      Assignment.assign_temp "cheap" (mul [ num 2.; field f2 ]);
      Assignment.store (Fieldspec.center g2) (add [ sym "cheap"; num 1. ]);
      Assignment.store (Fieldspec.center ~component:0 f2) (add [ sym "cheap"; num 2. ]);
    ]
  in
  let out = Gpumodel.Remat.run body in
  Alcotest.(check int) "temp inlined away" 2 (List.length out);
  Assignment.check_ssa out

let test_remat_keeps_expensive () =
  let expensive =
    Assignment.assign_temp "ex" (sqrt_ (add [ pow (field f2) 2; pow (field g2) 2 ]))
  in
  let body =
    [
      expensive;
      Assignment.store (Fieldspec.center g2) (mul [ sym "ex"; num 2. ]);
    ]
  in
  Alcotest.(check int) "sqrt not duplicated" 2 (List.length (Gpumodel.Remat.run body))

let test_nvcc_hoist_raises_pressure () =
  let body = Gpumodel.Kessler.schedule ~beam:8 (bad_order_body 12) in
  let ours = Gpumodel.Liveness.max_live body in
  let nvcc = Gpumodel.Liveness.max_live (Gpumodel.Liveness.nvcc_load_hoist body) in
  Alcotest.(check bool) "modeled compiler hoisting hurts" true (nvcc >= ours)

let test_fence_limits_hoisting () =
  let body = Gpumodel.Kessler.schedule ~beam:8 (bad_order_body 16) in
  let free = Gpumodel.Transforms.apply [] body in
  let fenced = Gpumodel.Transforms.apply [ Gpumodel.Transforms.Fence 4 ] body in
  let r_free = Gpumodel.Transforms.registers free in
  let r_fenced = Gpumodel.Transforms.registers fenced in
  Alcotest.(check bool)
    (Printf.sprintf "fences cap nvcc registers: %d vs %d" r_fenced.Gpumodel.Transforms.nvcc
       r_free.Gpumodel.Transforms.nvcc)
    true
    (r_fenced.Gpumodel.Transforms.nvcc <= r_free.Gpumodel.Transforms.nvcc)

let test_occupancy_model () =
  let dev = Gpumodel.Device.p100 in
  let occ64 = Gpumodel.Device.occupancy dev ~registers:64 in
  let occ128 = Gpumodel.Device.occupancy dev ~registers:128 in
  let occ255 = Gpumodel.Device.occupancy dev ~registers:255 in
  Alcotest.(check bool) "more registers, less occupancy" true (occ64 > occ128 && occ128 > occ255);
  (* paper: dropping below 128 registers doubles occupancy vs 255 *)
  Alcotest.(check bool) "128 vs 256 doubles occupancy" true (occ128 >= 1.9 *. occ255);
  Alcotest.(check (float 0.)) "no spill below cap" 1. (Gpumodel.Device.spill_penalty dev ~registers:200);
  Alcotest.(check bool) "spilling penalized" true (Gpumodel.Device.spill_penalty dev ~registers:400 > 1.)

let test_fig2right_pipeline () =
  (* the Fig. 2 (right) experiment on a real generated μ-full kernel: the
     combined transformation sequence must reduce modeled registers and
     runtime vs the untransformed kernel *)
  let g = Pfcore.Genkernels.generate (Pfcore.Params.p1 ()) in
  let body = (Option.get g.Pfcore.Genkernels.mu_full).Ir.Kernel.body in
  let dev = Gpumodel.Device.p100 in
  let none = Gpumodel.Transforms.apply [] body in
  let combined =
    Gpumodel.Transforms.apply
      [
        Gpumodel.Transforms.Remat Gpumodel.Remat.default;
        Gpumodel.Transforms.Sched 20;
        Gpumodel.Transforms.Fence 32;
      ]
      body
  in
  let r0 = Gpumodel.Transforms.registers none in
  let r1 = Gpumodel.Transforms.registers combined in
  Alcotest.(check bool)
    (Printf.sprintf "registers reduced: %d -> %d" r0.Gpumodel.Transforms.nvcc
       r1.Gpumodel.Transforms.nvcc)
    true
    (r1.Gpumodel.Transforms.nvcc < r0.Gpumodel.Transforms.nvcc);
  Alcotest.(check bool) "runtime improves" true
    (Gpumodel.Transforms.modeled_time dev combined <= Gpumodel.Transforms.modeled_time dev none)

let test_evotune_improves_baseline () =
  let g = Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()) in
  let body = g.Pfcore.Genkernels.phi_full.Ir.Kernel.body in
  let outcomes = Gpumodel.Evotune.tune ~generations:3 ~population:8 Gpumodel.Device.p100 body in
  match outcomes with
  | best :: _ ->
    let baseline = List.find (fun o -> o.Gpumodel.Evotune.genome = []) outcomes in
    Alcotest.(check bool) "best <= baseline" true
      (best.Gpumodel.Evotune.time_ns <= baseline.Gpumodel.Evotune.time_ns)
  | [] -> Alcotest.fail "no outcomes"

let test_evotune_deterministic () =
  let g = Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()) in
  let body = g.Pfcore.Genkernels.phi_full.Ir.Kernel.body in
  let run () =
    (List.hd (Gpumodel.Evotune.tune ~seed:7 ~generations:2 ~population:6 Gpumodel.Device.p100 body))
      .Gpumodel.Evotune.time_ns
  in
  Alcotest.(check (float 0.)) "same seed, same result" (run ()) (run ())

(* Golden snapshots of the printed CUDA for the p1 sweeps — the GPU-side
   counterpart of the C snapshots in test_backend.ml.  Refresh with
   PFGEN_UPDATE_GOLDEN=1 after intentional emitter changes. *)
let p1_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p1 ()))

let test_golden_cuda_phi () =
  let g = Lazy.force p1_gen in
  Golden.check ~name:"p1_phi_full.cu" (Backend.Cuda.emit g.Pfcore.Genkernels.phi_full)

let test_golden_cuda_mu () =
  let g = Lazy.force p1_gen in
  Golden.check ~name:"p1_mu_full.cu"
    (Backend.Cuda.emit (Option.get g.Pfcore.Genkernels.mu_full))

let suite =
  [
    Alcotest.test_case "max_live" `Quick test_max_live_counts;
    Alcotest.test_case "golden CUDA: p1 phi sweep" `Quick test_golden_cuda_phi;
    Alcotest.test_case "golden CUDA: p1 mu sweep" `Quick test_golden_cuda_mu;
    Alcotest.test_case "dead temp" `Quick test_dead_temp_not_counted;
    Alcotest.test_case "kessler reduces pressure" `Quick test_kessler_reduces_pressure;
    Alcotest.test_case "kessler preserves semantics" `Quick test_kessler_preserves_semantics;
    Alcotest.test_case "beam monotone" `Quick test_greedy_beam_no_worse_than_input;
    Alcotest.test_case "remat inlines cheap" `Quick test_remat_inlines_cheap;
    Alcotest.test_case "remat keeps expensive" `Quick test_remat_keeps_expensive;
    Alcotest.test_case "nvcc hoist model" `Quick test_nvcc_hoist_raises_pressure;
    Alcotest.test_case "fences limit hoisting" `Quick test_fence_limits_hoisting;
    Alcotest.test_case "occupancy model" `Quick test_occupancy_model;
    Alcotest.test_case "Fig2-right pipeline" `Slow test_fig2right_pipeline;
    Alcotest.test_case "evotune improves" `Slow test_evotune_improves_baseline;
    Alcotest.test_case "evotune deterministic" `Slow test_evotune_deterministic;
  ]
