(* Finite-difference discretization: exactness on polynomials, the
   staggered divergence-of-fluxes scheme, interpolation, and the split
   kernel registry. *)

open Symbolic
open Expr

let scheme = Fd.Discretize.create ~dx:(num 1.) ~dim:2 ()

let f2 = Fieldspec.scalar ~dim:2 "f"
let g2 = Fieldspec.scalar ~dim:2 "g"

(* Environment where field f samples a function of the (relative) grid
   position and g samples another. *)
let grid_env ~f ~g =
  Eval.env
    ~access:(fun (a : Fieldspec.access) ->
      let x = float_of_int a.offsets.(0) and y = float_of_int a.offsets.(1) in
      match a.field.Fieldspec.name with
      | "f" -> f x y
      | "g" -> g x y
      | other -> failwith other)
    ()

let check = Alcotest.(check (float 1e-9))

let test_central_exact_on_linear () =
  let e = Fd.Discretize.discretize scheme (Diff (field f2, 0)) in
  let env = grid_env ~f:(fun x y -> (3. *. x) +. (2. *. y) +. 5.) ~g:(fun _ _ -> 0.) in
  check "d/dx of 3x+2y+5" 3. (Eval.eval env e)

let test_central_exact_on_quadratic () =
  (* central differences are 2nd order: exact for quadratics *)
  let e = Fd.Discretize.discretize scheme (Diff (field f2, 1)) in
  let env = grid_env ~f:(fun _ y -> (4. *. y *. y) +. y) ~g:(fun _ _ -> 0.) in
  (* at y=0: d/dy (4y^2 + y) = 1 *)
  check "d/dy quadratic at 0" 1. (Eval.eval env e)

let test_laplacian () =
  let lap = add [ Diff (Diff (field f2, 0), 0); Diff (Diff (field f2, 1), 1) ] in
  let e = Fd.Discretize.discretize scheme lap in
  let env = grid_env ~f:(fun x y -> (x *. x) +. (2. *. y *. y)) ~g:(fun _ _ -> 0.) in
  check "laplacian of x^2+2y^2" 6. (Eval.eval env e)

let test_divergence_constant_coefficient () =
  (* ∇·(3∇f) = 3∇²f, staggered scheme *)
  let flux d = mul [ num 3.; Diff (field f2, d) ] in
  let e =
    Fd.Discretize.discretize scheme (add [ Diff (flux 0, 0); Diff (flux 1, 1) ])
  in
  let env = grid_env ~f:(fun x y -> (x *. x) +. (y *. y)) ~g:(fun _ _ -> 0.) in
  check "div(3 grad f)" 12. (Eval.eval env e)

let test_divergence_variable_coefficient () =
  (* ∇·(g ∂x f) along x only; compare against the hand-built staggered
     stencil with interpolated g *)
  let e = Fd.Discretize.discretize scheme (Diff (mul [ field g2; Diff (field f2, 0) ], 0)) in
  let fv x y = (x *. x) +. y and gv x _ = 2. +. x in
  let env = grid_env ~f:fv ~g:gv in
  let g_right = (gv 0. 0. +. gv 1. 0.) /. 2. and g_left = (gv (-1.) 0. +. gv 0. 0.) /. 2. in
  let df_right = fv 1. 0. -. fv 0. 0. and df_left = fv 0. 0. -. fv (-1.) 0. in
  check "variable-coefficient flux" ((g_right *. df_right) -. (g_left *. df_left))
    (Eval.eval env e)

let test_staggered_interpolation () =
  let e = Fd.Discretize.stag_eval scheme (field f2) 0 in
  let env = grid_env ~f:(fun x _ -> 10. +. x) ~g:(fun _ _ -> 0.) in
  check "cell value interpolated to face" 10.5 (Eval.eval env e)

let test_cross_derivative_at_face () =
  (* ∂y f at an x-face averages the two adjacent central differences *)
  let e = Fd.Discretize.stag_eval scheme (Diff (field f2, 1)) 0 in
  let env = grid_env ~f:(fun x y -> y *. (1. +. x)) ~g:(fun _ _ -> 0.) in
  (* ∂y f = 1 + x; at face x=1/2: 1.5 *)
  check "cross derivative" 1.5 (Eval.eval env e)

let test_shift_coord () =
  let e = Fd.Discretize.shift_expr scheme (coord 0) 0 3 in
  let env = Eval.env ~coord:(fun _ -> 2.) () in
  check "coordinate shifts by k*dx" 5. (Eval.eval env e)

let test_no_diff_left () =
  let flux d = mul [ field g2; Diff (field f2, d) ] in
  let e =
    Fd.Discretize.discretize scheme
      (add [ Diff (flux 0, 0); Diff (flux 1, 1); pow (Diff (field f2, 0)) 2 ])
  in
  Alcotest.(check bool) "all Diff nodes eliminated" false
    (Fd.Discretize.contains_diff e)

let test_split_registry () =
  let stag = Fieldspec.create ~kind:Fieldspec.Staggered ~dim:2 ~components:2 "st" in
  let registry = Fd.Discretize.make_registry stag in
  let flux d = mul [ field g2; Diff (field f2, d) ] in
  let rhs = add [ Diff (flux 0, 0); Diff (flux 1, 1) ] in
  let main1 = Fd.Discretize.discretize_split scheme ~registry rhs in
  (* a second PDE with the same fluxes must reuse the same slots *)
  let main2 = Fd.Discretize.discretize_split scheme ~registry (mul [ num 2.; rhs ]) in
  let body = Fd.Discretize.registry_kernel_body registry in
  Alcotest.(check int) "one staggered assignment per axis" 2 (List.length body);
  Alcotest.(check bool) "main reads staggered field" true
    (List.exists
       (fun (a : Fieldspec.access) -> a.face_axis >= 0)
       (Expr.accesses main1));
  Alcotest.(check bool) "dedup across PDEs" true
    (List.length (Expr.accesses main2) > 0)

let test_extent_and_euler () =
  let e = Fd.Discretize.discretize scheme (Diff (Diff (field f2, 0), 0)) in
  let store =
    Fd.Discretize.explicit_euler ~dt:(num 0.1) ~src:(Fieldspec.center f2)
      ~dst:(Fieldspec.center g2) e
  in
  let ext = Fd.Discretize.extent [ store ] in
  Alcotest.(check (pair int int)) "x extent" (-1, 1) ext.(0)

let test_biharmonic_extent () =
  (* the PFC variation applies ∇² twice; with the compact same-axis rule
     each application costs one cell of stencil, so ∇⁴ must stay within the
     two ghost layers — a wide (2h) first-difference chain would need 4 *)
  let u = field f2 in
  let lap = add [ Diff (Diff (u, 0), 0); Diff (Diff (u, 1), 1) ] in
  let bih = add [ Diff (Diff (lap, 0), 0); Diff (Diff (lap, 1), 1) ] in
  let e = Fd.Discretize.discretize scheme bih in
  let store =
    Fd.Discretize.explicit_euler ~dt:(num 0.1) ~src:(Fieldspec.center f2)
      ~dst:(Fieldspec.center g2) e
  in
  let ext = Fd.Discretize.extent [ store ] in
  Alcotest.(check (pair int int)) "x extent" (-2, 2) ext.(0);
  Alcotest.(check (pair int int)) "y extent" (-2, 2) ext.(1)

let suite =
  [
    Alcotest.test_case "central diff exact on linear" `Quick test_central_exact_on_linear;
    Alcotest.test_case "central diff exact on quadratic" `Quick test_central_exact_on_quadratic;
    Alcotest.test_case "laplacian" `Quick test_laplacian;
    Alcotest.test_case "divergence, constant coefficient" `Quick test_divergence_constant_coefficient;
    Alcotest.test_case "divergence, variable coefficient" `Quick test_divergence_variable_coefficient;
    Alcotest.test_case "staggered interpolation" `Quick test_staggered_interpolation;
    Alcotest.test_case "cross derivative at face" `Quick test_cross_derivative_at_face;
    Alcotest.test_case "coordinate shift" `Quick test_shift_coord;
    Alcotest.test_case "no Diff survives" `Quick test_no_diff_left;
    Alcotest.test_case "biharmonic fits two ghost layers" `Quick test_biharmonic_extent;
    Alcotest.test_case "split flux registry" `Quick test_split_registry;
    Alcotest.test_case "extent and Euler" `Quick test_extent_and_euler;
  ]

(* --------------- properties ---------------------------------------- *)

let grid_env_poly coeffs =
  grid_env
    ~f:(fun x y ->
      let a, b, c, d = coeffs in
      a +. (b *. x) +. (c *. y) +. (d *. x *. y))
    ~g:(fun _ _ -> 0.)

let arb_poly =
  QCheck.make
    QCheck.Gen.(
      quad (float_range (-2.) 2.) (float_range (-2.) 2.) (float_range (-2.) 2.)
        (float_range (-2.) 2.))

let prop_central_exact_on_bilinear =
  (* central differences are exact on bilinear functions, any coefficients *)
  QCheck.Test.make ~name:"central diff exact on bilinear" ~count:200 arb_poly
    (fun ((_, b, _, d) as coeffs) ->
      let e = Fd.Discretize.discretize scheme (Diff (field f2, 0)) in
      (* at the origin cell: d/dx (a + bx + cy + dxy) = b + d*y = b *)
      abs_float (Eval.eval (grid_env_poly coeffs) e -. b) < 1e-9 && Float.is_finite d)

let prop_discretization_linear =
  (* discretize (alpha*u + beta*v) = alpha*discretize u + beta*discretize v *)
  QCheck.Test.make ~name:"discretization is linear" ~count:200
    (QCheck.pair arb_poly (QCheck.pair QCheck.(float_range (-3.) 3.) QCheck.(float_range (-3.) 3.)))
    (fun (coeffs, (alpha, beta)) ->
      let u = Diff (Diff (field f2, 0), 0) and v = Diff (field f2, 1) in
      let lhs =
        Fd.Discretize.discretize scheme (add [ mul [ num alpha; u ]; mul [ num beta; v ] ])
      in
      let rhs =
        add
          [
            mul [ num alpha; Fd.Discretize.discretize scheme u ];
            mul [ num beta; Fd.Discretize.discretize scheme v ];
          ]
      in
      let env = grid_env_poly coeffs in
      abs_float (Eval.eval env lhs -. Eval.eval env rhs) < 1e-9)

let prop_shift_composes =
  QCheck.Test.make ~name:"shift_expr composes additively" ~count:200
    QCheck.(pair (int_range (-3) 3) (int_range (-3) 3))
    (fun (j, k) ->
      let e = add [ field f2; coord 0 ] in
      Expr.equal
        (Fd.Discretize.shift_expr scheme (Fd.Discretize.shift_expr scheme e 0 j) 0 k)
        (Fd.Discretize.shift_expr scheme e 0 (j + k)))

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_central_exact_on_bilinear;
      QCheck_alcotest.to_alcotest prop_discretization_linear;
      QCheck_alcotest.to_alcotest prop_shift_composes;
    ]
