(* Simulation-farm battery: queue ordering and admission control, mempool
   reuse accounting, preempt-snapshot-resume bitwise roundtrips, scheduler
   end-to-end runs (completion, steady-state zero-alloc, shared tune
   cache).  The farm-vs-solo differential oracle itself lives in
   lib/check (oracle 9); these are the unit-level contracts. *)

open Serve

(* A minimal single-block spec for queue-level tests; only priority,
   tenant and id matter to the queue. *)
let mk ?(tenant = "amber") ?(priority = 0) id =
  {
    Workload.id;
    tenant;
    family = Workload.Curv2d;
    size = 8;
    steps = 2;
    priority;
    split = false;
    backend = Vm.Engine.Interp;
    ranks = 1;
    crash_step = None;
    seed = id;
  }

let no_residents = (fun (_ : string) -> 0)

let drain q =
  let rec go acc =
    match Queue.next q ~resident_bytes:0 ~tenant_residents:no_residents with
    | Some (spec, _) -> go (spec.Workload.id :: acc)
    | None -> List.rev acc
  in
  go []

(* ---- queue ordering ---- *)

let test_queue_priority_fifo () =
  let q = Queue.create () in
  List.iteri
    (fun id priority ->
      match Queue.submit q (mk ~priority id) ~bytes:100 with
      | Queue.Accepted -> ()
      | Queue.Rejected r -> Alcotest.failf "unexpected rejection: %s" r)
    [ 0; 2; 1; 2; 0; 1 ];
  Alcotest.(check (list int)) "priority-descending, FIFO within a class" [ 1; 3; 2; 5; 0; 4 ]
    (drain q);
  Alcotest.(check bool) "drained" true (Queue.is_empty q)

let test_queue_requeue_behind_peers () =
  let q = Queue.create () in
  ignore (Queue.submit q (mk ~priority:1 0) ~bytes:100);
  ignore (Queue.submit q (mk ~priority:1 1) ~bytes:100);
  (match Queue.next q ~resident_bytes:0 ~tenant_residents:no_residents with
  | Some (spec, _) -> Alcotest.(check int) "FIFO head first" 0 spec.Workload.id
  | None -> Alcotest.fail "queue unexpectedly empty");
  (* a preempted job re-enters behind the already-pending peer of its class *)
  Queue.requeue q (mk ~priority:1 0) ~bytes:100;
  Alcotest.(check (list int)) "requeued job waits behind its peer" [ 1; 0 ] (drain q)

(* ---- admission control ---- *)

let test_queue_budget_and_quota () =
  let q = Queue.create ~budget_bytes:1000 ~tenant_quota:1 () in
  (match Queue.submit q (mk 0) ~bytes:2000 with
  | Queue.Rejected _ -> ()
  | Queue.Accepted -> Alcotest.fail "a job larger than the whole budget must be rejected");
  ignore (Queue.submit q (mk ~tenant:"amber" ~priority:2 1) ~bytes:600);
  ignore (Queue.submit q (mk ~tenant:"amber" ~priority:2 2) ~bytes:600);
  ignore (Queue.submit q (mk ~tenant:"basalt" ~priority:0 3) ~bytes:300);
  (* 600 bytes already resident: the high-priority 600-byte amber jobs no
     longer fit the budget, so the small basalt job is handed out instead *)
  (match Queue.next q ~resident_bytes:600 ~tenant_residents:no_residents with
  | Some (spec, _) -> Alcotest.(check int) "budget skips to a job that fits" 3 spec.Workload.id
  | None -> Alcotest.fail "expected the basalt job to fit");
  (* budget free again, but amber is at its residency quota: nothing fits *)
  let residents = function "amber" -> 1 | _ -> 0 in
  (match Queue.next q ~resident_bytes:0 ~tenant_residents:residents with
  | Some (spec, _) -> Alcotest.failf "job %d handed out over quota" spec.Workload.id
  | None -> ());
  (* with everything idle again, the parked amber jobs drain in FIFO order *)
  Alcotest.(check (list int)) "parked jobs released in order" [ 1; 2 ] (drain q);
  let s = Queue.stats q in
  Alcotest.(check int) "submissions counted" 4 s.Queue.submitted;
  Alcotest.(check int) "rejection counted" 1 s.Queue.rejected;
  Alcotest.(check bool) "budget skips counted" true (s.Queue.parked_budget >= 2);
  Alcotest.(check bool) "quota skips counted" true (s.Queue.parked_quota >= 2)

let test_scheduler_rejects_oversized () =
  let config =
    { (Scheduler.default_config ()) with budget_bytes = 1; num_domains = 1 }
  in
  let specs = Workload.generate ~families:[ Workload.Curv2d ] ~with_crash:false ~seed:2 ~jobs:3 () in
  let stats = Scheduler.run ~config ~mempool:(Mempool.create ()) specs in
  Alcotest.(check int) "every job rejected at admission" 3
    (List.length stats.Scheduler.rejected);
  Alcotest.(check int) "no results" 0 (List.length stats.Scheduler.results)

(* ---- mempool ---- *)

let test_mempool_accounting () =
  let mp = Mempool.create () in
  let a = Mempool.acquire mp 10 in
  let _b = Mempool.acquire mp 10 in
  let s = Mempool.stats mp in
  Alcotest.(check int) "two cold misses" 2 s.Mempool.misses;
  Alcotest.(check int) "no hits yet" 0 s.Mempool.hits;
  Alcotest.(check int) "160 live bytes" 160 s.Mempool.live_bytes;
  Alcotest.(check int) "one size class" 1 s.Mempool.classes;
  a.(3) <- 42.;
  Mempool.release mp a;
  let s = Mempool.stats mp in
  Alcotest.(check int) "released bytes pooled" 80 s.Mempool.pooled_bytes;
  Alcotest.(check int) "released bytes not live" 80 s.Mempool.live_bytes;
  let c = Mempool.acquire mp 10 in
  Alcotest.(check bool) "hit recycles the same array" true (c == a);
  Alcotest.(check (float 0.)) "recycled array is zero-filled" 0. c.(3);
  let s = Mempool.stats mp in
  Alcotest.(check int) "one hit" 1 s.Mempool.hits;
  Alcotest.(check int) "still two misses" 2 s.Mempool.misses;
  let _d = Mempool.acquire mp 20 in
  let s = Mempool.stats mp in
  Alcotest.(check int) "second size class" 2 s.Mempool.classes;
  Alcotest.(check int) "high water tracks the peak footprint" 320 s.Mempool.high_water_bytes;
  Mempool.release mp [||] (* zero-length release is a no-op *);
  Mempool.reset mp;
  Alcotest.(check int) "reset drops the free lists" 0 (Mempool.stats mp).Mempool.pooled_bytes

(* ---- preemption roundtrip ---- *)

let test_preempt_roundtrip_bitwise () =
  let gen = Scheduler.gen_of Workload.Curv2d in
  let mp = Mempool.create () in
  let mk_sim ?alloc () = Pfcore.Timestep.create ~num_domains:1 ?alloc ~dims:[| 12; 12 |] gen in
  let sim = mk_sim ~alloc:(Mempool.alloc mp) () in
  Workload.init_sim sim ~seed:5;
  Pfcore.Timestep.prime sim;
  Pfcore.Timestep.run sim ~steps:2;
  let parked = Resilience.Preempt.park_single sim in
  Resilience.Preempt.release_single ~free:(Mempool.release mp) sim;
  Alcotest.(check bool) "released buffers are poisoned" true
    (List.for_all
       (fun (_, (b : Vm.Buffer.t)) -> Array.length b.Vm.Buffer.data = 0)
       sim.Pfcore.Timestep.block.Vm.Engine.buffers);
  Alcotest.(check int) "no storage leaked past the pool" 0 (Mempool.stats mp).Mempool.live_bytes;
  (* resume into recycled storage and finish the run *)
  let cold_misses = (Mempool.stats mp).Mempool.misses in
  let sim2 = mk_sim ~alloc:(Mempool.alloc mp) () in
  Alcotest.(check int) "resume allocates purely from the pool" cold_misses
    ((Mempool.stats mp).Mempool.misses);
  Resilience.Preempt.resume_single parked sim2;
  Pfcore.Timestep.run sim2 ~steps:2;
  (* the reference: the same job, never preempted *)
  let solo = mk_sim () in
  Workload.init_sim solo ~seed:5;
  Pfcore.Timestep.prime solo;
  Pfcore.Timestep.run solo ~steps:4;
  Alcotest.(check bool) "park -> release -> resume is bitwise exact" true
    (Resilience.Snapshot.equal
       (Resilience.Snapshot.capture_single sim2)
       (Resilience.Snapshot.capture_single solo))

(* ---- scheduler end to end ---- *)

let test_scheduler_completes_and_preempts () =
  let specs = Workload.generate ~families:[ Workload.Curv2d ] ~with_crash:false ~seed:11 ~jobs:6 () in
  let config =
    { (Scheduler.default_config ()) with quantum = 1; max_active = 2; park_after = 1 }
  in
  let stats = Scheduler.run ~config ~mempool:(Mempool.create ()) specs in
  Alcotest.(check int) "all jobs complete" 6 (List.length stats.Scheduler.results);
  Alcotest.(check int) "nothing rejected" 0 (List.length stats.Scheduler.rejected);
  Alcotest.(check bool) "quantum 1 + park-after 1 preempts" true (stats.Scheduler.preemptions > 0);
  let latencies =
    List.map (fun (r : Scheduler.job_result) -> r.Scheduler.latency_ns) stats.Scheduler.results
  in
  Alcotest.(check bool) "results are in completion order" true
    (List.for_all2 ( <= ) latencies (List.tl latencies @ [ infinity ]));
  List.iter
    (fun (r : Scheduler.job_result) ->
      Alcotest.(check bool) "enough quanta to cover the steps" true
        (r.Scheduler.r_quanta >= r.Scheduler.r_spec.Workload.steps);
      Alcotest.(check bool) "farm result = solo run (bitwise)" true
        (Resilience.Snapshot.equal r.Scheduler.final (Scheduler.run_solo r.Scheduler.r_spec)))
    stats.Scheduler.results

let test_scheduler_steady_state_zero_alloc () =
  let mp = Mempool.create () in
  let specs = Workload.generate ~families:[ Workload.Curv2d ] ~with_crash:false ~seed:3 ~jobs:4 () in
  let stats1 = Scheduler.run ~mempool:mp specs in
  Alcotest.(check int) "warmup batch completes" 4 (List.length stats1.Scheduler.results);
  let m1 = Mempool.stats mp in
  let stats2 = Scheduler.run ~mempool:mp specs in
  let m2 = stats2.Scheduler.mempool in
  Alcotest.(check int) "steady state does zero fresh allocations" m1.Mempool.misses
    m2.Mempool.misses;
  Alcotest.(check bool) "steady state is served by the free lists" true
    (m2.Mempool.hits > m1.Mempool.hits);
  Alcotest.(check int) "all storage is back in the pool" 0 m2.Mempool.live_bytes

let test_scheduler_shares_tune_cache () =
  Vm.Tune.clear_cache ();
  let specs = Workload.generate ~families:[ Workload.Curv2d ] ~with_crash:false ~seed:21 ~jobs:4 () in
  let config =
    { (Scheduler.default_config ()) with autotune = true; num_domains = 2 }
  in
  let hits0, misses0 = Vm.Tune.cache_stats () in
  let stats = Scheduler.run ~config ~mempool:(Mempool.create ()) specs in
  let hits1, misses1 = Vm.Tune.cache_stats () in
  Alcotest.(check bool) "only the first job probes (one model family)" true
    (misses1 - misses0 <= 2);
  Alcotest.(check bool) "every further job hits the shared cache" true
    (hits1 - hits0 >= 3);
  let served =
    List.length
      (List.filter (fun (r : Scheduler.job_result) -> r.Scheduler.r_tune_hit)
         stats.Scheduler.results)
  in
  Alcotest.(check bool) "at least all-but-one job served from the cache" true (served >= 3)

(* ---- memory projection audit ---- *)

let test_projected_bytes_exact () =
  (* admission control charges [projected_bytes] before any buffer exists;
     an under-estimate would let the farm overshoot its budget.  Audit the
     projection against the bytes a real Timestep block allocates, over the
     zoo families (multi-component phi, mu-less models, and PFC's extra
     staggered flux slots are the layouts that could drift).  P1/P2 share
     eutectic's layout path and cost seconds to generate, so they ride the
     serve soak instead. *)
  List.iter
    (fun family ->
      let spec = { (mk 0) with Workload.family; size = 8 } in
      let gen = Pfcore.Genkernels.generate (Workload.params_of_family family) in
      let projected = Workload.projected_bytes ~gen spec in
      let _, block_dims = Workload.decomposition spec in
      let sim = Pfcore.Timestep.create ~dims:block_dims gen in
      let actual =
        List.fold_left
          (fun acc ((_ : Symbolic.Fieldspec.t), buf) ->
            acc + (8 * Array.length buf.Vm.Buffer.data))
          0
          sim.Pfcore.Timestep.block.Vm.Engine.buffers
      in
      Alcotest.(check int)
        (Workload.family_label family ^ ": projection = allocation")
        actual projected)
    [ Workload.Curv2d; Workload.Eutectic; Workload.Pfc; Workload.GrayScott ]

let suite =
  [
    Alcotest.test_case "queue: priority order, FIFO within a class" `Quick
      test_queue_priority_fifo;
    Alcotest.test_case "queue: requeue lands behind same-priority peers" `Quick
      test_queue_requeue_behind_peers;
    Alcotest.test_case "queue: budget and tenant-quota admission" `Quick
      test_queue_budget_and_quota;
    Alcotest.test_case "scheduler: oversized jobs rejected at admission" `Quick
      test_scheduler_rejects_oversized;
    Alcotest.test_case "mempool: hit/miss/zero-fill/high-water accounting" `Quick
      test_mempool_accounting;
    Alcotest.test_case "preempt: park -> release -> resume bitwise roundtrip" `Quick
      test_preempt_roundtrip_bitwise;
    Alcotest.test_case "scheduler: completes, preempts, matches solo bitwise" `Quick
      test_scheduler_completes_and_preempts;
    Alcotest.test_case "scheduler: steady state does zero fresh allocs" `Quick
      test_scheduler_steady_state_zero_alloc;
    Alcotest.test_case "scheduler: jobs share the tune cache" `Quick
      test_scheduler_shares_tune_cache;
    Alcotest.test_case "workload: projected bytes match real allocation" `Quick
      test_projected_bytes_exact;
  ]
