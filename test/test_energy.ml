(* Energy functional layer: variational derivatives against known
   Euler–Lagrange results, and the model building blocks. *)

open Symbolic
open Expr

let f2 = Fieldspec.scalar ~dim:2 "f"
let u = field f2

let test_varder_bulk_term () =
  (* δ/δu ∫ u² = 2u *)
  let d = Energy.Varder.run ~dim:2 (pow u 2) ~wrt:u in
  Alcotest.(check bool) "2u" true (equal d (mul [ num 2.; u ]))

let test_varder_gradient_term () =
  (* δ/δu ∫ |∇u|² = −2∇·∇u: one flux term per axis wrapping 2∂u *)
  let d = Energy.Varder.run ~dim:2 (Energy.Varder.grad_sq ~dim:2 u) ~wrt:u in
  let expected =
    add
      [
        neg (Diff (mul [ num 2.; Diff (u, 0) ], 0));
        neg (Diff (mul [ num 2.; Diff (u, 1) ], 1));
      ]
  in
  Alcotest.(check bool) "Euler-Lagrange of Dirichlet energy" true (equal d expected)

let test_varder_mixed () =
  (* ∫ u·∂x u is a pure boundary term: its variational derivative vanishes
     (bulk ∂x u cancels against the flux divergence) *)
  let density = mul [ u; Diff (u, 0) ] in
  let d = Energy.Varder.run ~dim:2 density ~wrt:u in
  Alcotest.(check bool) "boundary term has zero variation" true (equal d zero)

let test_interpolation_h () =
  let value x = Eval.eval (Eval.of_alist [ ("x", x) ]) (Energy.Functional.h (sym "x")) in
  Alcotest.(check (float 1e-12)) "h(0)=0" 0. (value 0.);
  Alcotest.(check (float 1e-12)) "h(1)=1" 1. (value 1.);
  Alcotest.(check (float 1e-12)) "h(1/2)=1/2" 0.5 (value 0.5);
  (* zero slope at the ends *)
  let h' = diff (Energy.Functional.h (sym "x")) ~wrt:(sym "x") in
  let slope x = Eval.eval (Eval.of_alist [ ("x", x) ]) h' in
  Alcotest.(check (float 1e-12)) "h'(0)=0" 0. (slope 0.);
  Alcotest.(check (float 1e-12)) "h'(1)=0" 0. (slope 1.)

let test_obstacle_potential () =
  let phis = [| sym "p0"; sym "p1"; sym "p2" |] in
  let w =
    Energy.Functional.obstacle ~gamma:(fun _ _ -> num 1.) ~gamma3:(fun _ _ _ -> num 2.) ~phis
  in
  let at p0 p1 p2 = Eval.eval (Eval.of_alist [ ("p0", p0); ("p1", p1); ("p2", p2) ]) w in
  Alcotest.(check (float 1e-12)) "vanishes in bulk" 0. (at 1. 0. 0.);
  let expected_pair = 16. /. (Float.pi *. Float.pi) *. 0.25 in
  Alcotest.(check (float 1e-12)) "two-phase value" expected_pair (at 0.5 0.5 0.);
  Alcotest.(check bool) "triple term positive" true
    (at 0.4 0.3 0.3 > at 0.4 0.3 0. *. 0.99)

let test_generalized_gradient_antisymmetry () =
  let a = field (Fieldspec.create ~dim:2 ~components:2 "p") in
  let b = field ~component:1 (Fieldspec.create ~dim:2 ~components:2 "p") in
  let qab = Energy.Functional.generalized_gradient ~dim:2 a b in
  let qba = Energy.Functional.generalized_gradient ~dim:2 b a in
  List.iter2
    (fun x y ->
      Alcotest.(check bool) "q_ab = -q_ba" true
        (equal (Simplify.expand x) (Simplify.expand (neg y))))
    qab qba

let test_cubic_anisotropy_limits () =
  (* along an axis direction the cubic term reaches 1 - delta*(3-4) = 1+δ;
     along the diagonal in 2D: Σq⁴/|q|⁴ = 1/2 → 1 - δ *)
  let delta = 0.3 in
  let eval_a qx qy =
    let q = [ sym "qx"; sym "qy" ] in
    let norm = add [ pow (sym "qx") 2; pow (sym "qy") 2 ] in
    let a =
      Energy.Functional.cubic_anisotropy ~delta:(num delta) ~rotation:None q ~norm_sq:norm
    in
    Eval.eval (Eval.of_alist [ ("qx", qx); ("qy", qy); ("q_eps", 1e-12) ]) a
  in
  Alcotest.(check (float 1e-9)) "axis direction" (1. +. delta) (eval_a 1. 0.);
  Alcotest.(check (float 1e-9)) "diagonal" (1. -. delta) (eval_a (sqrt 0.5) (sqrt 0.5));
  Alcotest.(check (float 1e-9)) "bulk guard" 1. (eval_a 0. 0.)

let test_rotation_invariance_of_norm () =
  (* rotations only redistribute the quartic term; a 90° rotation maps the
     cubic anisotropy onto itself *)
  let delta = 0.3 in
  let rot = [| [| 0.; -1. |]; [| 1.; 0. |] |] in
  let q = [ sym "qx"; sym "qy" ] in
  let norm = add [ pow (sym "qx") 2; pow (sym "qy") 2 ] in
  let a r = Energy.Functional.cubic_anisotropy ~delta:(num delta) ~rotation:r q ~norm_sq:norm in
  let at e qx qy = Eval.eval (Eval.of_alist [ ("qx", qx); ("qy", qy); ("q_eps", 1e-12) ]) e in
  Alcotest.(check (float 1e-9)) "fourfold symmetry" (at (a None) 0.6 0.8)
    (at (a (Some rot)) 0.6 0.8)

let test_parabolic_concentration () =
  (* c = -(2Aμ + B); with A=-1/2, B=0: c = μ *)
  let mu = [| sym "mu" |] in
  let c =
    Energy.Functional.concentration ~a:[| [| num (-0.5) |] |] ~b:[| num 0. |] ~mu
  in
  Alcotest.(check bool) "c = mu" true (equal c.(0) (sym "mu"))

let test_driving_force_interpolates () =
  let phis = [| sym "p0"; sym "p1" |] in
  let psis = [| num 2.; num 6. |] in
  let psi = Energy.Functional.driving_force ~psis ~phis in
  let at p0 p1 = Eval.eval (Eval.of_alist [ ("p0", p0); ("p1", p1) ]) psi in
  Alcotest.(check (float 1e-12)) "pure phase 0" 2. (at 1. 0.);
  Alcotest.(check (float 1e-12)) "pure phase 1" 6. (at 0. 1.)

(* ------------------------------------------------------------------ *)
(* Model-zoo combinators and the automatic variational derivative      *)
(* ------------------------------------------------------------------ *)

let test_varder_sum_rule () =
  (* δΨ/δu distributes over Functional.sum: varying the joint density
     produces exactly the flux atoms of the per-term variations *)
  let open Energy.Functional in
  let terms =
    [
      double_well ~w:(num 1.3) u;
      square_gradient ~dim:2 ~kappa:(num 0.7) u;
      linear_drive ~m:(num 0.4) u;
    ]
  in
  let joint = Energy.Varder.run ~dim:2 (sum terms) ~wrt:u in
  let split = add (List.map (fun d -> Energy.Varder.run ~dim:2 d ~wrt:u) terms) in
  Alcotest.(check bool) "joint = sum of parts" true
    (equal (Simplify.expand joint) (Simplify.expand split))

let test_varder_bulk_linearity () =
  (* for bulk densities the variation commutes with scaling structurally *)
  let open Energy.Functional in
  let d = sum [ double_well ~w:(num 1.) u; linear_drive ~m:(num 2.) u ] in
  let lhs = Energy.Varder.run ~dim:2 (scale (num 3.) d) ~wrt:u in
  let rhs = mul [ num 3.; Energy.Varder.run ~dim:2 d ~wrt:u ] in
  Alcotest.(check bool) "scale commutes with variation" true
    (equal (Simplify.expand lhs) (Simplify.expand rhs))

let test_varder_linearity_numeric () =
  (* with gradient terms the scaling constant lands inside the flux Diff
     node, so structural equality cannot hold; check the discretized values
     on the oracle-12 grid instead *)
  let open Energy.Functional in
  let f = Fieldspec.create ~dim:2 ~components:1 "o12_u" in
  let uu = field f in
  let d =
    sum [ double_well ~w:(num 1.1) uu; square_gradient ~dim:2 ~kappa:(num 0.6) uu ]
  in
  let state = Check.Oracles.o12_state ~seed:11 in
  let ad dens ~x ~y = Check.Oracles.o12_ad ~state ~bindings:[] dens ~wrt:uu ~x ~y in
  List.iter
    (fun (x, y) ->
      Alcotest.(check (float 1e-9))
        "3 * dF = d(3F)"
        (3. *. ad d ~x ~y)
        (ad (scale (num 3.) d) ~x ~y))
    [ (0, 0); (3, 4); (11, 9) ]

let test_varder_second_order () =
  (* δ/δu ∫ ½(∇²u)² = +∇⁴u: the second-order Euler–Lagrange term carries a
     plus sign (two integrations by parts); this is the rule PFC's
     (1+∇²)²ψ rides on *)
  let lap = Energy.Varder.lap ~dim:2 u in
  let d = Energy.Varder.run ~dim:2 (mul [ num 0.5; sq lap ]) ~wrt:u in
  let expected = add [ Diff (Diff (lap, 0), 0); Diff (Diff (lap, 1), 1) ] in
  Alcotest.(check bool) "biharmonic" true (equal d expected)

let test_p1_density_node_for_node () =
  (* the P1 functional assembled by the combinator frontend reproduces the
     hand-written paper eq. 3 density ε a + ω/ε + ψ node for node after
     expansion.  The right-hand side below is written from the paper
     formulas with raw Expr nodes — no Energy.Functional calls — with the
     P1 parameter values inlined. *)
  let p = Pfcore.Params.p1 () in
  let f = Pfcore.Model.make_fields p in
  let ctx = Pfcore.Model.make_ctx ~symbolic:false in
  let model = Pfcore.Model.family_density ctx p f in
  (* hand side: 4 phases (liquid = 3), 2 mu components, isotropic γ = 0.8,
     γ3 = 12, ε = 4, T kept as the placeholder symbol *)
  let t = sym "T_loc" in
  let phi a = field ~component:a f.Pfcore.Model.phi_src in
  let mu i = field ~component:i f.Pfcore.Model.mu_src in
  let pairs k = List.concat (List.init 4 (fun b -> List.init b (fun a -> k a b))) in
  let grad_a =
    add
      (pairs (fun a b ->
           mul
             [
               num 0.8;
               add
                 (List.init 3 (fun d ->
                      sq
                        (sub
                           (mul [ phi a; Diff (phi b, d) ])
                           (mul [ phi b; Diff (phi a, d) ]))));
             ]))
  in
  let obst =
    add
      [
        mul
          [
            num (16. /. (Float.pi *. Float.pi));
            add (pairs (fun a b -> mul [ num 0.8; phi a; phi b ]));
          ];
        add
          (List.concat
             (List.init 4 (fun c ->
                  List.concat
                    (List.init c (fun b ->
                         List.init b (fun a -> mul [ num 12.; phi a; phi b; phi c ]))))));
      ]
  in
  let solid_b = [| [| 0.4; 0.2 |]; [| -0.3; 0.5 |]; [| -0.1; -0.6 |] |] in
  let psi alpha =
    (* ψ_α = μ·A_α μ + B_α·μ + C_α with A, B, C affine in T (paper eq. 6) *)
    let aa = if alpha = 3 then -0.5 else -0.55 in
    let quad = add (List.init 2 (fun i -> mul [ num aa; sq (mu i) ])) in
    if alpha = 3 then quad
    else
      add
        [
          quad;
          add
            (List.init 2 (fun i ->
                 mul
                   [
                     add
                       [
                         num solid_b.(alpha).(i);
                         mul [ num (0.05 +. (0.01 *. float_of_int i)); t ];
                       ];
                     mu i;
                   ]));
          add [ num (-0.02); mul [ num 0.04; t ] ];
        ]
  in
  let h z = mul [ sq z; sub (num 3.) (mul [ num 2.; z ]) ] in
  let drive = add (List.init 4 (fun a -> mul [ psi a; h (phi a) ])) in
  let hand = add [ mul [ num 4.; grad_a ]; div obst (num 4.); drive ] in
  Alcotest.(check bool) "paper eq. 3, P1 values" true
    (equal
       (Simplify.expand ~budget:100000 hand)
       (Simplify.expand ~budget:100000 model))

let suite =
  [
    Alcotest.test_case "varder: bulk term" `Quick test_varder_bulk_term;
    Alcotest.test_case "varder: gradient term" `Quick test_varder_gradient_term;
    Alcotest.test_case "varder: mixed term" `Quick test_varder_mixed;
    Alcotest.test_case "interpolation h" `Quick test_interpolation_h;
    Alcotest.test_case "obstacle potential" `Quick test_obstacle_potential;
    Alcotest.test_case "generalized gradient antisymmetry" `Quick test_generalized_gradient_antisymmetry;
    Alcotest.test_case "cubic anisotropy limits" `Quick test_cubic_anisotropy_limits;
    Alcotest.test_case "anisotropy fourfold symmetry" `Quick test_rotation_invariance_of_norm;
    Alcotest.test_case "parabolic concentration" `Quick test_parabolic_concentration;
    Alcotest.test_case "driving force interpolation" `Quick test_driving_force_interpolates;
    Alcotest.test_case "varder: sum rule" `Quick test_varder_sum_rule;
    Alcotest.test_case "varder: bulk linearity" `Quick test_varder_bulk_linearity;
    Alcotest.test_case "varder: linearity (discretized)" `Quick test_varder_linearity_numeric;
    Alcotest.test_case "varder: second-order term (biharmonic)" `Quick test_varder_second_order;
    Alcotest.test_case "P1 density = paper eq. 3, node for node" `Quick
      test_p1_density_node_for_node;
  ]
