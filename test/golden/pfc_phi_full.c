void phi_full(double * restrict phi_src, double * restrict phi_dst, int64_t _n0, int64_t _n1, int64_t _s1, int64_t _cs, int64_t _off_0, int64_t _off_1, int32_t _step) {
  #pragma omp parallel for schedule(static)
  for (int64_t _i1 = 0; _i1 < _n1; ++_i1) {
    for (int64_t _i0 = 0; _i0 < _n0; ++_i0) {
      const int64_t _b = _i0 + _i1*_s1;
      phi_dst[_b] = ((-0.02*phi_src[_b - 2]) + (-0.040000000000000001*phi_src[_b - 1 - 1*_s1]) + (0.12*phi_src[_b - 1]) + (-0.040000000000000001*phi_src[_b - 1 + 1*_s1]) + (-0.02*phi_src[_b - 2*_s1]) + (0.12*phi_src[_b - 1*_s1]) + (0.745*phi_src[_b]) + (0.12*phi_src[_b + 1*_s1]) + (-0.02*phi_src[_b + 2*_s1]) + (-0.040000000000000001*phi_src[_b + 1 - 1*_s1]) + (0.12*phi_src[_b + 1]) + (-0.040000000000000001*phi_src[_b + 1 + 1*_s1]) + (-0.02*phi_src[_b + 2]) + (-0.02*pf_pow3(phi_src[_b])));
    }
  }
}
