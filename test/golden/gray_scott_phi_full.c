void phi_full(double * restrict phi_src, double * restrict phi_dst, int64_t _n0, int64_t _n1, int64_t _s1, int64_t _cs, int64_t _off_0, int64_t _off_1, int32_t _step) {
  #pragma omp parallel for schedule(static)
  for (int64_t _i1 = 0; _i1 < _n1; ++_i1) {
    for (int64_t _i0 = 0; _i0 < _n0; ++_i0) {
      const int64_t _b = _i0 + _i1*_s1;
      const double xi_0 = pf_pow2(phi_src[_b + 1*_cs]);
      phi_dst[_b] = (0.035000000000000003 + (0.16*phi_src[_b - 1]) + (0.16*phi_src[_b - 1*_s1]) + (0.32499999999999996*phi_src[_b]) + (0.16*phi_src[_b + 1*_s1]) + (0.16*phi_src[_b + 1]) + (-1.0*xi_0*phi_src[_b]));
      phi_dst[_b + 1*_cs] = ((0.080000000000000002*phi_src[_b - 1 + 1*_cs]) + (0.080000000000000002*phi_src[_b - 1*_s1 + 1*_cs]) + (0.58000000000000007*phi_src[_b + 1*_cs]) + (0.080000000000000002*phi_src[_b + 1*_s1 + 1*_cs]) + (0.080000000000000002*phi_src[_b + 1 + 1*_cs]) + (xi_0*phi_src[_b]));
    }
  }
}
