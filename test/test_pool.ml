(* Pool scheduler battery: tile-schedule algebra, engine edge cases (empty
   interiors, tiles larger than the sweep), pool reuse across invocations
   (the per-call Domain.spawn regression), exception safety inside tiles,
   autotuner cache behavior, and the simulate --domains/--tile plumbing. *)

open Symbolic
open Expr

let with_obs f =
  Obs.Metrics.reset ();
  Obs.Sink.clear ();
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.clear ();
      Obs.Metrics.reset ())
    f

(* ---- Schedule ---- *)

(* Every cell of the sweep is covered by exactly one tile, whatever the
   shape — the precondition of the whole determinism argument. *)
let test_schedule_partition () =
  List.iter
    (fun (ranges, shape) ->
      let tiles = Vm.Schedule.make ~ranges ?shape () in
      let lo0 = Array.map fst ranges and hi0 = Array.map snd ranges in
      let counts = Hashtbl.create 64 in
      Array.iter
        (fun (t : Vm.Schedule.tile) ->
          let rec walk d coords =
            if d = Array.length ranges then begin
              let key = Array.to_list coords in
              Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
            end
            else
              for i = t.Vm.Schedule.lo.(d) to t.Vm.Schedule.hi.(d) do
                coords.(d) <- i;
                walk (d + 1) coords
              done
          in
          walk 0 (Array.make (Array.length ranges) 0))
        tiles;
      let total =
        Array.fold_left ( * ) 1 (Array.mapi (fun d _ -> max 0 (hi0.(d) - lo0.(d) + 1)) lo0)
      in
      Alcotest.(check int) "each cell covered exactly once" total (Hashtbl.length counts);
      Hashtbl.iter (fun _ n -> Alcotest.(check int) "no overlap" 1 n) counts)
    [
      ([| (0, 7); (0, 5) |], Some [| 3; 2 |]);
      ([| (0, 7); (0, 5) |], Some [| 64; 64 |]);   (* tile larger than the sweep *)
      ([| (0, 8); (0, 4); (0, 4) |], Some [| 2; 3; 0 |]);
      ([| (0, 5); (0, 5) |], None);
      ([| (2, 2); (0, 0) |], Some [| 1; 1 |]);
    ]

let test_schedule_empty () =
  Alcotest.(check int) "empty range -> zero tiles" 0
    (Array.length (Vm.Schedule.make ~ranges:[| (0, 3); (0, -1) |] ~shape:[| 2; 2 |] ()));
  Alcotest.(check int) "zero-dim -> zero tiles" 0
    (Array.length (Vm.Schedule.make ~ranges:[||] ()))

(* split_halo partition properties: interior ∪ shell covers the sweep
   exactly once, the interior never touches cells within the halo of the
   range boundary, and a grid not deeper than the stencil width degenerates
   to an all-shell partition. *)
let test_split_halo_partition () =
  let cover tiles =
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun (t : Vm.Schedule.tile) ->
        let dim = Array.length t.Vm.Schedule.lo in
        let rec walk d coords =
          if d = dim then begin
            let key = Array.to_list coords in
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          end
          else
            for i = t.Vm.Schedule.lo.(d) to t.Vm.Schedule.hi.(d) do
              coords.(d) <- i;
              walk (d + 1) coords
            done
        in
        walk 0 (Array.make dim 0))
      tiles;
    counts
  in
  List.iter
    (fun (ranges, halo, shape) ->
      let interior =
        Array.map (fun (lo, hi) -> (max lo (lo + halo), min hi (hi - halo))) ranges
      in
      let inner, shell = Vm.Schedule.split_halo ~ranges ~interior ?shape () in
      (* together they tile the full sweep exactly once *)
      let counts = cover (Array.append inner shell) in
      let total =
        Array.fold_left ( * ) 1 (Array.map (fun (lo, hi) -> max 0 (hi - lo + 1)) ranges)
      in
      Alcotest.(check int) "interior + shell cover each cell once" total
        (Hashtbl.length counts);
      Hashtbl.iter (fun _ n -> Alcotest.(check int) "no overlap" 1 n) counts;
      (* no interior cell within [halo] of the sweep boundary *)
      Hashtbl.iter
        (fun key _ ->
          List.iteri
            (fun d i ->
              let lo, hi = ranges.(d) in
              Alcotest.(check bool) "interior clears the halo" true
                (i >= lo + halo && i <= hi - halo))
            key)
        (cover inner))
    [
      ([| (0, 11); (0, 7) |], 2, None);
      ([| (0, 11); (0, 7); (0, 5) |], 1, Some [| 3; 2; 0 |]);
      ([| (0, 11); (0, 8) |], 2, Some [| 64; 64 |]);
      ([| (0, 4); (0, 4) |], 2, None);   (* interior a single cell wide *)
    ];
  (* grid ≤ stencil width: the interior is empty, the shell is the sweep *)
  let ranges = [| (0, 3); (0, 5) |] in
  let interior = [| (2, 1); (2, 3) |] in
  let inner, shell = Vm.Schedule.split_halo ~ranges ~interior () in
  Alcotest.(check int) "empty interior -> no interior tiles" 0 (Array.length inner);
  Alcotest.(check int) "empty interior -> shell covers sweep" 24
    (Hashtbl.length (cover shell));
  Alcotest.check_raises "interior outside sweep rejected"
    (Invalid_argument "Schedule.split_halo: interior exceeds sweep range") (fun () ->
      ignore (Vm.Schedule.split_halo ~ranges:[| (0, 5) |] ~interior:[| (0, 6) |] ()))

let test_shape_of_string () =
  Alcotest.(check (array int)) "AxB" [| 8; 4 |] (Vm.Schedule.shape_of_string "8x4");
  Alcotest.(check (array int)) "AxBxC" [| 16; 8; 4 |] (Vm.Schedule.shape_of_string "16x8x4");
  Alcotest.(check (array int)) "star = full extent" [| 8; 0 |]
    (Vm.Schedule.shape_of_string "8x*");
  Alcotest.check_raises "negative extent rejected"
    (Invalid_argument "Schedule.shape_of_string: bad tile extent -2") (fun () ->
      ignore (Vm.Schedule.shape_of_string "4x-2"))

(* ---- engine edge cases ---- *)

let f2 = Fieldspec.scalar ~dim:2 "f"
let g2 = Fieldspec.scalar ~dim:2 "g"

let avg_kernel () =
  let acc d k = access (Fieldspec.shift (Fieldspec.center f2) d k) in
  let rhs = mul [ num 0.2; add [ field f2; acc 0 1; acc 0 (-1); acc 1 1; acc 1 (-1) ] ] in
  Ir.Kernel.make ~name:"avg" ~dim:2 [ Field.Assignment.store (Fieldspec.center g2) rhs ]

let run_avg ?tile ~num_domains ~dims () =
  let block = Vm.Engine.make_block ~ghost:1 ~dims [ f2; g2 ] in
  let fbuf = Vm.Engine.buffer block f2 in
  Vm.Buffer.init fbuf (fun c _ -> float_of_int ((c.(0) * 3) + (c.(1) * 7)));
  Vm.Buffer.periodic fbuf;
  Vm.Engine.run ?tile ~num_domains ~params:[] (Vm.Engine.bind (avg_kernel ()) block);
  block

let buffers_bits_equal a b =
  List.for_all2
    (fun (_, (x : Vm.Buffer.t)) (_, (y : Vm.Buffer.t)) ->
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float y.Vm.Buffer.data.(i)))
          then ok := false)
        x.Vm.Buffer.data;
      !ok)
    a.Vm.Engine.buffers b.Vm.Engine.buffers

(* A sweep over an empty interior (one extent 0) schedules zero tiles and
   must complete without touching anything, pooled or not. *)
let test_empty_interior () =
  let block = run_avg ~num_domains:4 ~dims:[| 5; 0 |] () in
  Array.iter
    (fun v -> Alcotest.(check (float 0.)) "nothing written" 0. v)
    (Vm.Engine.buffer block g2).Vm.Buffer.data

(* A grid smaller than one tile clamps to a single tile; result is the
   serial answer, bitwise. *)
let test_tile_larger_than_sweep () =
  let serial = run_avg ~num_domains:1 ~dims:[| 8; 6 |] () in
  let pooled = run_avg ~tile:[| 64; 64 |] ~num_domains:2 ~dims:[| 8; 6 |] () in
  let tiny = run_avg ~tile:[| 3; 2 |] ~num_domains:4 ~dims:[| 2; 2 |] () in
  let tiny_serial = run_avg ~num_domains:1 ~dims:[| 2; 2 |] () in
  Alcotest.(check bool) "giant tile = serial (bitwise)" true (buffers_bits_equal serial pooled);
  Alcotest.(check bool) "grid smaller than tile = serial (bitwise)" true
    (buffers_bits_equal tiny_serial tiny)

(* ---- pool reuse and the spawn regression ---- *)

(* The old engine spawned fresh domains on every kernel invocation.  Now:
   across 100 pooled invocations the cumulative spawn count must not move,
   and the observability lane ids must stay the stable worker set. *)
let test_domain_count_constant () =
  with_obs (fun () ->
      let sweep () = ignore (run_avg ~num_domains:3 ~dims:[| 8; 6 |] ()) in
      sweep () (* warmup: spawns the two workers at most once *);
      Obs.Sink.clear ();
      let spawned0 = Vm.Pool.spawned_total () in
      for _ = 1 to 100 do
        sweep ()
      done;
      Alcotest.(check int) "no extra domain spawns across 100 invocations" spawned0
        (Vm.Pool.spawned_total ());
      let tids =
        List.sort_uniq Int.compare
          (List.filter_map
             (fun (e : Obs.Sink.event) ->
               if e.Obs.Sink.tid > 0 then Some e.Obs.Sink.tid else None)
             (Obs.Sink.events ()))
      in
      Alcotest.(check (list int)) "stable pool lane ids 1..domains-1" [ 1; 2 ] tids)

(* Shutdown is idempotent and at_exit-safe: the serve layer registers its
   own at_exit teardown on top of the pool's, so a double (even racing)
   shutdown must be a silent no-op, and the pool must respawn cleanly for
   the next job.  Regression for the teardown race where a second caller
   reset the stop flag before the first caller's workers observed it. *)
let test_shutdown_idempotent () =
  ignore (run_avg ~num_domains:3 ~dims:[| 8; 6 |] ());
  Vm.Pool.shutdown ();
  Vm.Pool.shutdown ();
  Alcotest.(check int) "all workers torn down" 0 (Vm.Pool.live_workers ());
  (* the pool respawns on demand after a shutdown *)
  ignore (run_avg ~num_domains:3 ~dims:[| 8; 6 |] ());
  Alcotest.(check bool) "pool respawned after shutdown" true (Vm.Pool.live_workers () > 0);
  (* double shutdown again, concurrently with nothing running *)
  Vm.Pool.shutdown ();
  Vm.Pool.shutdown ();
  ignore (run_avg ~num_domains:2 ~dims:[| 8; 6 |] ())

(* ---- exception inside a tile ---- *)

exception Boom

(* A tile that raises must abort the job, re-raise at the coordinator,
   leave every span stream balanced, and leave the pool usable. *)
let test_exception_in_tile () =
  with_obs (fun () ->
      let wrap lane f =
        if lane = 0 then f () else Obs.Span.with_ ~cat:"vm" ~tid:lane "slice:boom" f
      in
      let raised =
        try
          ignore
            (Vm.Pool.run ~wrap ~domains:3 ~ntiles:8 (fun ~lane:_ ti ->
                 if ti = 5 then raise Boom));
          false
        with Boom -> true
      in
      Alcotest.(check bool) "tile exception re-raised at coordinator" true raised;
      Alcotest.(check bool) "span stream balanced after tile exception" true
        (Check.Obs_props.stream_well_formed (Obs.Sink.events ()));
      (* the pool is still usable: the next job must run every tile *)
      let hits = Atomic.make 0 in
      let stats =
        Vm.Pool.run ~wrap ~domains:3 ~ntiles:8 (fun ~lane:_ _ -> Atomic.incr hits)
      in
      Alcotest.(check int) "pool usable after exception: all tiles ran" 8 (Atomic.get hits);
      Alcotest.(check int) "stats count the tiles" 8 stats.Vm.Pool.tiles_run)

(* Same property end to end through the engine: a kernel whose parameters
   are unbound raises inside the first tile of a pooled sweep. *)
let test_engine_exception_pooled () =
  with_obs (fun () ->
      let k =
        Ir.Kernel.make ~name:"needs_alpha" ~dim:2
          [ Field.Assignment.store (Fieldspec.center g2) (mul [ sym "alpha"; field f2 ]) ]
      in
      let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 8; 6 |] [ f2; g2 ] in
      let bound = Vm.Engine.bind k block in
      let raised =
        try
          Vm.Engine.run ~num_domains:3 ~tile:[| 2; 2 |] ~params:[] bound;
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool) "unbound parameter raises through the pool" true raised;
      Alcotest.(check bool) "span stream balanced after engine exception" true
        (Check.Obs_props.stream_well_formed (Obs.Sink.events ()));
      (* and the pool still runs real work *)
      ignore (run_avg ~num_domains:3 ~dims:[| 8; 6 |] ()))

(* ---- autotuner cache ---- *)

let tune_candidates coeff = [ ("full", [ avg_kernel () ]) ] |> fun c ->
  if coeff = 0.2 then c
  else
    [
      ( "full",
        [
          Ir.Kernel.make ~name:"avg" ~dim:2
            [ Field.Assignment.store (Fieldspec.center g2) (mul [ num coeff; field f2 ]) ];
        ] );
    ]

let tune_block () =
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 8; 6 |] [ f2; g2 ] in
  let fbuf = Vm.Engine.buffer block f2 in
  Vm.Buffer.init fbuf (fun c _ -> float_of_int (c.(0) + c.(1)));
  Vm.Buffer.periodic fbuf;
  block

let test_tune_cache () =
  Vm.Tune.clear_cache ();
  let decide ?(domains = 2) cands =
    Vm.Tune.decide ~domains ~sweeps:1 ~reps:1 ~dims:[| 8; 6 |] ~make_block:tune_block
      ~params:[] cands
  in
  let c1 = decide (tune_candidates 0.2) in
  let c2 = decide (tune_candidates 0.2) in
  Alcotest.(check int) "identical model is a cache hit" 1 (fst (Vm.Tune.cache_stats ()));
  Alcotest.(check int) "first decision was a miss" 1 (snd (Vm.Tune.cache_stats ()));
  Alcotest.(check int) "hit returns the same decision" c1.Vm.Tune.fingerprint
    c2.Vm.Tune.fingerprint;
  (* changing the kernel structure changes the fingerprint -> miss *)
  let c3 = decide (tune_candidates 0.25) in
  Alcotest.(check int) "changed model fingerprint is a miss" 2 (snd (Vm.Tune.cache_stats ()));
  Alcotest.(check bool) "fingerprints differ" true
    (c1.Vm.Tune.fingerprint <> c3.Vm.Tune.fingerprint);
  (* so does the pool width the decision was tuned for *)
  ignore (decide ~domains:4 (tune_candidates 0.2));
  Alcotest.(check int) "changed domain count is a miss" 3 (snd (Vm.Tune.cache_stats ()));
  Alcotest.(check bool) "probes produced finite costs" true
    (List.for_all (fun (_, ns) -> Float.is_finite ns && ns > 0.) c1.Vm.Tune.measured_ns)

(* ---- simulate --domains/--tile plumbing and the tuned constructor ---- *)

let curvature_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()))

(* What `pfgen simulate --domains 4 --tile 3x2` builds must reproduce the
   default serial run bitwise after several full time steps. *)
let test_simulate_flags_bitwise () =
  let g = Lazy.force curvature_gen in
  let run ~num_domains ?tile () =
    let sim = Pfcore.Timestep.create ~num_domains ?tile ~dims:[| 12; 12 |] g in
    Pfcore.Simulation.init_smooth sim;
    Pfcore.Timestep.run sim ~steps:3;
    sim
  in
  let serial = run ~num_domains:1 () in
  let pooled = run ~num_domains:4 ~tile:(Vm.Schedule.shape_of_string "3x2") () in
  Alcotest.(check bool) "3 pooled tiled steps = serial steps (bitwise)" true
    (buffers_bits_equal serial.Pfcore.Timestep.block pooled.Pfcore.Timestep.block)

let test_autotune_plan () =
  Vm.Tune.clear_cache ();
  let g = Lazy.force curvature_gen in
  let plan = Pfcore.Timestep.autotune ~domains:2 ~probe_n:8 g in
  Alcotest.(check bool) "a phi variant was selected" true
    (List.mem plan.Pfcore.Timestep.phi.Vm.Tune.variant_label [ "full"; "split" ]);
  Alcotest.(check bool) "curvature has no mu family" true
    (plan.Pfcore.Timestep.mu = None);
  let _, misses = Vm.Tune.cache_stats () in
  let plan' = Pfcore.Timestep.autotune ~domains:2 ~probe_n:8 g in
  Alcotest.(check int) "second autotune served from cache" misses
    (snd (Vm.Tune.cache_stats ()));
  Alcotest.(check int) "cached plan decision is identical"
    plan.Pfcore.Timestep.phi.Vm.Tune.fingerprint plan'.Pfcore.Timestep.phi.Vm.Tune.fingerprint;
  (* the plan actually applies *)
  let sim = Pfcore.Timestep.create_tuned ~plan ~dims:[| 12; 12 |] g in
  Pfcore.Simulation.init_smooth sim;
  Pfcore.Timestep.run sim ~steps:2;
  Alcotest.(check bool) "tuned sim stays sane" true (Pfcore.Simulation.check_sane sim)

let suite =
  [
    Alcotest.test_case "schedule: tiles partition the sweep" `Quick test_schedule_partition;
    Alcotest.test_case "schedule: empty ranges" `Quick test_schedule_empty;
    Alcotest.test_case "schedule: split_halo partition properties" `Quick
      test_split_halo_partition;
    Alcotest.test_case "schedule: --tile shape parsing" `Quick test_shape_of_string;
    Alcotest.test_case "engine: empty interior is a no-op" `Quick test_empty_interior;
    Alcotest.test_case "engine: tile larger than sweep = serial" `Quick
      test_tile_larger_than_sweep;
    Alcotest.test_case "pool: domain count constant across 100 invocations" `Quick
      test_domain_count_constant;
    Alcotest.test_case "pool: shutdown is idempotent and respawn-safe" `Quick
      test_shutdown_idempotent;
    Alcotest.test_case "pool: exception in a tile (usable, balanced spans)" `Quick
      test_exception_in_tile;
    Alcotest.test_case "engine: pooled exception propagates cleanly" `Quick
      test_engine_exception_pooled;
    Alcotest.test_case "tune: cache hit/miss per model fingerprint" `Quick test_tune_cache;
    Alcotest.test_case "simulate --domains/--tile plumbing is bitwise exact" `Quick
      test_simulate_flags_bitwise;
    Alcotest.test_case "tune: autotune plan selects, caches and applies" `Quick
      test_autotune_plan;
  ]
