(* JIT backend battery (mirrors test_pool.ml): compile-cache hit/miss
   accounting through Obs counters, recompilation on fingerprint changes,
   the engine edge cases (empty interior, tile larger than the sweep) under
   the compiled backend, exception safety of pooled compiled sweeps, the
   tuner's backend decision, and the golden JIT trace with its
   vm.jit.compile span. *)

open Symbolic
open Expr

let with_obs f =
  Obs.Metrics.reset ();
  Obs.Sink.clear ();
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.clear ();
      Obs.Metrics.reset ())
    f

let f2 = Fieldspec.scalar ~dim:2 "f"
let g2 = Fieldspec.scalar ~dim:2 "g"

let avg_kernel ?(coeff = 0.2) () =
  let acc d k = access (Fieldspec.shift (Fieldspec.center f2) d k) in
  let rhs = mul [ num coeff; add [ field f2; acc 0 1; acc 0 (-1); acc 1 1; acc 1 (-1) ] ] in
  Ir.Kernel.make ~name:"avg" ~dim:2 [ Field.Assignment.store (Fieldspec.center g2) rhs ]

let run_avg ?tile ?(backend = Vm.Engine.Jit) ~num_domains ~dims () =
  let block = Vm.Engine.make_block ~ghost:1 ~dims [ f2; g2 ] in
  let fbuf = Vm.Engine.buffer block f2 in
  Vm.Buffer.init fbuf (fun c _ -> float_of_int ((c.(0) * 3) + (c.(1) * 7)));
  Vm.Buffer.periodic fbuf;
  Vm.Engine.run ?tile ~num_domains ~backend ~params:[] (Vm.Engine.bind (avg_kernel ()) block);
  block

let buffers_bits_equal a b =
  List.for_all2
    (fun (_, (x : Vm.Buffer.t)) (_, (y : Vm.Buffer.t)) ->
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float y.Vm.Buffer.data.(i)))
          then ok := false)
        x.Vm.Buffer.data;
      !ok)
    a.Vm.Engine.buffers b.Vm.Engine.buffers

(* ---- compile cache accounting ---- *)

(* One sweep compiles, every further sweep is a memo hit; the jit.hit /
   jit.miss counters mirror Jit.cache_stats exactly. *)
let test_cache_counters () =
  with_obs (fun () ->
      Vm.Jit.clear_cache ();
      ignore (run_avg ~num_domains:1 ~dims:[| 8; 6 |] ());
      let h1, m1 = Vm.Jit.cache_stats () in
      Alcotest.(check int) "first sweep is the only miss" 1 m1;
      Alcotest.(check int) "first sweep has no hit" 0 h1;
      for _ = 1 to 5 do
        ignore (run_avg ~num_domains:1 ~dims:[| 8; 6 |] ())
      done;
      let h2, m2 = Vm.Jit.cache_stats () in
      Alcotest.(check int) "no recompilation across warm sweeps" 1 m2;
      Alcotest.(check int) "every warm sweep hits the memo table" 5 h2;
      let s = Obs.Metrics.snapshot () in
      let v name = Option.value ~default:0 (Obs.Metrics.counter_value s name) in
      Alcotest.(check int) "jit.miss counter mirrors cache_stats" m2 (v "jit.miss");
      Alcotest.(check int) "jit.hit counter mirrors cache_stats" h2 (v "jit.hit"))

(* A changed kernel body, changed dims or changed ghost width is a new
   fingerprint and must recompile; re-running the original still hits. *)
let test_recompile_on_fingerprint_change () =
  Vm.Jit.clear_cache ();
  ignore (run_avg ~num_domains:1 ~dims:[| 8; 6 |] ());
  Alcotest.(check int) "baseline compiled once" 1 (snd (Vm.Jit.cache_stats ()));
  (* changed coefficient -> deep body hash differs *)
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 8; 6 |] [ f2; g2 ] in
  Vm.Engine.run_plain ~backend:Vm.Engine.Jit ~params:[]
    (Vm.Engine.bind (avg_kernel ~coeff:0.25 ()) block);
  Alcotest.(check int) "changed coefficient recompiles" 2 (snd (Vm.Jit.cache_stats ()));
  (* changed dims -> strides differ -> recompile *)
  ignore (run_avg ~num_domains:1 ~dims:[| 6; 6 |] ());
  Alcotest.(check int) "changed dims recompile" 3 (snd (Vm.Jit.cache_stats ()));
  (* the original is still cached *)
  ignore (run_avg ~num_domains:1 ~dims:[| 8; 6 |] ());
  Alcotest.(check int) "original program still cached" 3 (snd (Vm.Jit.cache_stats ()))

(* Two kernels whose bodies agree on a long prefix (hundreds of terms, far
   past any hash traversal budget) and differ only in the canonically-last
   term.  A prefix hash of the body collides here and the memo table would
   hand variant B the program compiled for variant A — exactly how the
   zoo's coefficient variants of the large eutectic kernel bit the
   oracle-8 battery.  The digest-based fingerprint must keep the variants
   apart, and each compiled run must match its own interpreter run
   bitwise. *)
let deep_variant_kernel ~tail =
  let prefix =
    List.init 600 (fun i -> mul [ num (0.001 *. float_of_int (i + 1)); field f2 ])
  in
  (* [tail] exceeds every prefix coefficient, so the canonical Add sort
     keeps the differing term last — beyond a truncated traversal. *)
  let rhs = add (mul [ num tail; field f2 ] :: prefix) in
  Ir.Kernel.make ~name:"deep" ~dim:2 [ Field.Assignment.store (Fieldspec.center g2) rhs ]

let run_deep ~backend k =
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 6; 5 |] [ f2; g2 ] in
  let fbuf = Vm.Engine.buffer block f2 in
  Vm.Buffer.init fbuf (fun c _ -> float_of_int ((c.(0) * 3) + (c.(1) * 7)));
  Vm.Buffer.periodic fbuf;
  Vm.Engine.run_plain ~backend ~params:[] (Vm.Engine.bind k block);
  block

let test_no_collision_on_deep_variants () =
  let ka = deep_variant_kernel ~tail:100. and kb = deep_variant_kernel ~tail:200. in
  let fp k = Vm.Jit.fingerprint ~dims:[| 6; 5 |] ~ghost:1 k (Ir.Lower.run k) in
  Alcotest.(check bool) "deep variants fingerprint apart" false (fp ka = fp kb);
  Vm.Jit.clear_cache ();
  let ja = run_deep ~backend:Vm.Engine.Jit ka in
  let jb = run_deep ~backend:Vm.Engine.Jit kb in
  Alcotest.(check int) "each variant compiles its own program" 2
    (snd (Vm.Jit.cache_stats ()));
  let ia = run_deep ~backend:Vm.Engine.Interp ka in
  let ib = run_deep ~backend:Vm.Engine.Interp kb in
  Alcotest.(check bool) "variant A jit = interp (bitwise)" true (buffers_bits_equal ia ja);
  Alcotest.(check bool) "variant B jit = interp (bitwise)" true (buffers_bits_equal ib jb)

(* ---- engine edge cases under the compiled backend ---- *)

let test_empty_interior () =
  let block = run_avg ~num_domains:4 ~dims:[| 5; 0 |] () in
  Array.iter
    (fun v -> Alcotest.(check (float 0.)) "nothing written" 0. v)
    (Vm.Engine.buffer block g2).Vm.Buffer.data

let test_tile_larger_than_sweep () =
  let serial = run_avg ~backend:Vm.Engine.Interp ~num_domains:1 ~dims:[| 8; 6 |] () in
  let jit = run_avg ~tile:[| 64; 64 |] ~num_domains:2 ~dims:[| 8; 6 |] () in
  let tiny = run_avg ~tile:[| 3; 2 |] ~num_domains:4 ~dims:[| 2; 2 |] () in
  let tiny_serial = run_avg ~backend:Vm.Engine.Interp ~num_domains:1 ~dims:[| 2; 2 |] () in
  Alcotest.(check bool) "jit giant tile = interp serial (bitwise)" true
    (buffers_bits_equal serial jit);
  Alcotest.(check bool) "jit on grid smaller than tile = interp serial (bitwise)" true
    (buffers_bits_equal tiny_serial tiny)

(* ---- exception inside a compiled tile ---- *)

(* A compiled sweep whose parameters are unbound raises from inside the
   first tile (parameter resolution is per tile, like the interpreter's
   make_ctx); the pool must stay balanced and usable, for both backends. *)
let test_exception_in_compiled_body () =
  with_obs (fun () ->
      let k =
        Ir.Kernel.make ~name:"needs_alpha" ~dim:2
          [ Field.Assignment.store (Fieldspec.center g2) (mul [ sym "alpha"; field f2 ]) ]
      in
      let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 8; 6 |] [ f2; g2 ] in
      let bound = Vm.Engine.bind k block in
      let raised =
        try
          Vm.Engine.run ~num_domains:3 ~tile:[| 2; 2 |] ~backend:Vm.Engine.Jit ~params:[]
            bound;
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool) "unbound parameter raises through the pool" true raised;
      Alcotest.(check bool) "span stream balanced after jit exception" true
        (Check.Obs_props.stream_well_formed (Obs.Sink.events ()));
      (* the pool still runs compiled work after the failure *)
      let after = run_avg ~num_domains:3 ~dims:[| 8; 6 |] () in
      let reference = run_avg ~backend:Vm.Engine.Interp ~num_domains:1 ~dims:[| 8; 6 |] () in
      Alcotest.(check bool) "pool usable after exception (bitwise vs interp)" true
        (buffers_bits_equal reference after))

(* ---- end-to-end simulate equivalence ---- *)

let curvature_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()))

(* Several full time steps through Timestep (projection, exchanges, buffer
   swaps — the swap is the interesting part: compiled programs must follow
   the data pointers, not capture them). *)
let test_simulate_backend_bitwise () =
  let g = Lazy.force curvature_gen in
  let run ~backend ~num_domains ?tile () =
    let sim = Pfcore.Timestep.create ~backend ~num_domains ?tile ~dims:[| 12; 12 |] g in
    Pfcore.Simulation.init_smooth sim;
    Pfcore.Timestep.run sim ~steps:3;
    sim
  in
  let interp = run ~backend:Vm.Engine.Interp ~num_domains:1 () in
  let jit = run ~backend:Vm.Engine.Jit ~num_domains:1 () in
  let jit_pooled =
    run ~backend:Vm.Engine.Jit ~num_domains:4 ~tile:(Vm.Schedule.shape_of_string "3x2") ()
  in
  Alcotest.(check bool) "3 jit steps = interp steps (bitwise)" true
    (buffers_bits_equal interp.Pfcore.Timestep.block jit.Pfcore.Timestep.block);
  Alcotest.(check bool) "3 pooled tiled jit steps = interp steps (bitwise)" true
    (buffers_bits_equal interp.Pfcore.Timestep.block jit_pooled.Pfcore.Timestep.block)

(* ---- native tier vs portable tape ---- *)

let p2_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p2 ()))

(* The native tier (runtime ocamlopt + Dynlink, [Jit_native]) must be
   bitwise interchangeable with the portable tape closures it replaces —
   including the replicated Philox stream behind P2's fluctuation term.
   [PFGEN_JIT_NATIVE=0] forces the tape tier; both runs clear the memo
   cache so each genuinely compiles through its own tier. *)
let test_native_vs_tape_bitwise () =
  let g = Lazy.force p2_gen in
  let run () =
    let sim =
      Pfcore.Timestep.create ~backend:Vm.Engine.Jit ~num_domains:1 ~dims:[| 6; 6; 6 |] g
    in
    Pfcore.Simulation.init_smooth sim;
    Pfcore.Timestep.run sim ~steps:2;
    sim
  in
  let prev = Sys.getenv_opt "PFGEN_JIT_NATIVE" in
  Unix.putenv "PFGEN_JIT_NATIVE" "0";
  Vm.Jit.clear_cache ();
  let tape = run () in
  Unix.putenv "PFGEN_JIT_NATIVE" (Option.value ~default:"1" prev);
  Vm.Jit.clear_cache ();
  let native = run () in
  (if Vm.Jit_native.available () then
     (* prove the second run really took the native tier *)
     let k = avg_kernel () in
     let c = Vm.Jit.get ~dims:[| 8; 6 |] ~ghost:1 k (Ir.Lower.run k) in
     Alcotest.(check bool) "native tier engaged when available" true c.Vm.Jit.native);
  Vm.Jit.clear_cache ();
  Alcotest.(check bool) "tape tier and native tier write identical bits" true
    (buffers_bits_equal tape.Pfcore.Timestep.block native.Pfcore.Timestep.block)

(* ---- tuner backend decision ---- *)

let tune_block () =
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 8; 6 |] [ f2; g2 ] in
  let fbuf = Vm.Engine.buffer block f2 in
  Vm.Buffer.init fbuf (fun c _ -> float_of_int (c.(0) + c.(1)));
  Vm.Buffer.periodic fbuf;
  block

let test_tune_backend () =
  Vm.Tune.clear_cache ();
  let c =
    Vm.Tune.decide ~domains:1 ~sweeps:1 ~reps:1 ~dims:[| 8; 6 |] ~make_block:tune_block
      ~params:[]
      [ ("full", [ avg_kernel () ]) ]
  in
  Alcotest.(check int) "both backends probed" 2 (List.length c.Vm.Tune.backend_ns);
  Alcotest.(check bool) "backend probes are finite and positive" true
    (List.for_all (fun (_, ns) -> Float.is_finite ns && ns > 0.) c.Vm.Tune.backend_ns);
  Alcotest.(check bool) "decision picks the measured minimum" true
    (let sel = Vm.Engine.backend_label c.Vm.Tune.backend in
     let sel_ns = List.assoc sel c.Vm.Tune.backend_ns in
     List.for_all (fun (_, ns) -> sel_ns <= ns) c.Vm.Tune.backend_ns)

(* ---- golden JIT trace ---- *)

(* Same fixed 2-step 8x8 curvature run as test_obs's golden trace, executed
   through the JIT: the span tree must be reproduced with one
   vm.jit.compile span per kernel program, emitted at first use. *)
let test_golden_trace_jit () =
  Vm.Jit.clear_cache ();
  let sim =
    Pfcore.Timestep.create ~backend:Vm.Engine.Jit ~num_domains:1 ~dims:[| 8; 8 |]
      (Lazy.force curvature_gen)
  in
  Pfcore.Simulation.init_sphere sim;
  Pfcore.Timestep.prime sim;
  let json =
    with_obs (fun () ->
        Pfcore.Timestep.run sim ~steps:2;
        Obs.Trace.to_json ~zero_times:true (Obs.Sink.events ()))
  in
  Golden.check ~name:"trace_curvature_8x8_jit.json" json

let suite =
  [
    Alcotest.test_case "jit: compile cache hit/miss counters" `Quick test_cache_counters;
    Alcotest.test_case "jit: recompile on fingerprint change" `Quick
      test_recompile_on_fingerprint_change;
    Alcotest.test_case "jit: no collision on deep kernel variants" `Quick
      test_no_collision_on_deep_variants;
    Alcotest.test_case "jit: empty interior is a no-op" `Quick test_empty_interior;
    Alcotest.test_case "jit: tile larger than sweep = interp serial" `Quick
      test_tile_larger_than_sweep;
    Alcotest.test_case "jit: exception in compiled tile (usable, balanced)" `Quick
      test_exception_in_compiled_body;
    Alcotest.test_case "jit: 3 timesteps bitwise = interpreter" `Quick
      test_simulate_backend_bitwise;
    Alcotest.test_case "jit: native tier bitwise = tape tier (P2, Philox)" `Quick
      test_native_vs_tape_bitwise;
    Alcotest.test_case "tune: backend is a tunable variant" `Quick test_tune_backend;
    Alcotest.test_case "jit: golden Chrome trace with vm.jit.compile span" `Quick
      test_golden_trace_jit;
  ]
