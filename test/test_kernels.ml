(* Generated kernels: Table-1 shaped structural properties, stencil
   signatures, full-vs-split numerical equivalence, parameter freezing, and
   the physics anchors (curvature flow, conservation, simplex projection,
   eutectic front motion). *)

let p1 = lazy (Pfcore.Genkernels.generate (Pfcore.Params.p1 ()))
let curv = lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()))

let counts = Pfcore.Genkernels.counts

let test_p1_phi_stencils () =
  let g = Lazy.force p1 in
  Alcotest.(check string) "phi kernel reads phi at D3C7" "D3C7"
    (Ir.Kernel.stencil_signature g.phi_full g.fields.phi_src);
  Alcotest.(check string) "phi kernel reads mu at center only" "D3C1"
    (Ir.Kernel.stencil_signature g.phi_full g.fields.mu_src)

let test_p1_mu_stencils () =
  let g = Lazy.force p1 in
  match g.mu_full with
  | None -> Alcotest.fail "P1 has a mu kernel"
  | Some mu ->
    Alcotest.(check string) "mu kernel reads mu at D3C7" "D3C7"
      (Ir.Kernel.stencil_signature mu g.fields.mu_src);
    (* anti-trapping gradients at staggered positions widen phi to D3C19 *)
    Alcotest.(check string) "mu kernel reads phi_src at D3C19" "D3C19"
      (Ir.Kernel.stencil_signature mu g.fields.phi_src)

let test_p1_table1_shape () =
  let g = Lazy.force p1 in
  let phi_full = counts g.phi_full in
  let phi_stag = counts g.phi_split.stag and phi_main = counts g.phi_split.main in
  let mu_full = counts (Option.get g.mu_full) in
  let mu_pair = Option.get g.mu_split in
  let mu_stag = counts mu_pair.stag and mu_main = counts mu_pair.main in
  (* paper Table 1, P1 column: loads/stores match exactly *)
  Alcotest.(check int) "phi-full loads (paper: 30)" 30 phi_full.Field.Opcount.loads;
  Alcotest.(check int) "phi-full stores (paper: 4)" 4 phi_full.Field.Opcount.stores;
  Alcotest.(check int) "phi-split stag stores (paper: 12)" 12 phi_stag.Field.Opcount.stores;
  Alcotest.(check int) "phi-split main stores (paper: 4)" 4 phi_main.Field.Opcount.stores;
  Alcotest.(check int) "mu-full loads (paper: 112)" 112 mu_full.Field.Opcount.loads;
  Alcotest.(check int) "mu-full stores (paper: 2)" 2 mu_full.Field.Opcount.stores;
  Alcotest.(check int) "mu-split stag stores (paper: 6)" 6 mu_stag.Field.Opcount.stores;
  Alcotest.(check int) "mu-split main stores (paper: 2)" 2 mu_main.Field.Opcount.stores;
  (* split halves the mu work: most FLOPs are staggered values (paper §5.1) *)
  let norm = Field.Opcount.normalized in
  Alcotest.(check bool) "mu-split total < mu-full" true
    (norm mu_stag + norm mu_main < norm mu_full);
  Alcotest.(check bool) "mu-split main is the cheap pass" true
    (norm mu_main * 3 < norm mu_stag);
  Alcotest.(check bool) "mu kernel uses sqrts (anti-trapping)" true (mu_full.Field.Opcount.sqrts > 0);
  Alcotest.(check bool) "mu kernel uses rsqrts (normals)" true (mu_full.Field.Opcount.rsqrts > 0)

let test_p1_ssa_and_params () =
  let g = Lazy.force p1 in
  List.iter
    (fun (k : Ir.Kernel.t) -> Field.Assignment.check_ssa k.Ir.Kernel.body)
    [ g.phi_full; g.phi_split.stag; g.phi_split.main; Option.get g.mu_full; Option.get g.projection ];
  (* frozen parameters: only the time remains a runtime argument *)
  Alcotest.(check (list string)) "phi kernel args" [ "t" ] (Ir.Kernel.parameters g.phi_full)

let test_symbolic_parameters_stay_runtime () =
  let opts = { Pfcore.Genkernels.default_options with symbolic_params = true } in
  let g = Pfcore.Genkernels.generate ~opts (Pfcore.Params.curvature ~dim:2 ()) in
  let params = Ir.Kernel.parameters g.phi_full in
  Alcotest.(check bool) "gamma stays a kernel argument" true (List.mem "gamma_0_1" params);
  Alcotest.(check bool) "eps stays a kernel argument" true (List.mem "eps" params)

let test_frozen_cheaper_than_symbolic () =
  (* compile-time specialization: the uniform τ folds the interpolation
     division away entirely, and no material parameters survive as kernel
     arguments *)
  let opts = { Pfcore.Genkernels.default_options with symbolic_params = true } in
  let generic = Pfcore.Genkernels.generate ~opts (Pfcore.Params.curvature ~dim:2 ()) in
  let frozen = Lazy.force curv in
  Alcotest.(check int) "frozen has no division" 0 (counts frozen.phi_full).Field.Opcount.divs;
  Alcotest.(check bool) "generic keeps the tau division" true
    ((counts generic.phi_full).Field.Opcount.divs > 0);
  Alcotest.(check bool) "generic keeps many runtime arguments" true
    (List.length (Ir.Kernel.parameters generic.phi_full)
    > List.length (Ir.Kernel.parameters frozen.phi_full))

let test_constant_temperature_simplifies () =
  (* the paper's ablation: a constant-T configuration folds away all
     temperature terms and needs fewer operations *)
  let p = Pfcore.Params.p1 () in
  let const_t = { p with Pfcore.Params.temp = Pfcore.Params.Const_temp 0.5 } in
  let g_grad = Lazy.force p1 and g_const = Pfcore.Genkernels.generate const_t in
  Alcotest.(check bool) "constant T needs fewer mu FLOPs" true
    (Field.Opcount.normalized (counts (Option.get g_const.mu_full))
    <= Field.Opcount.normalized (counts (Option.get g_grad.mu_full)))

let steps_match variant_phi variant_mu =
  (* full and split variants implement the same update *)
  let g = Lazy.force curv in
  let run vp vm =
    let t = Pfcore.Timestep.create ~variant_phi:vp ~variant_mu:vm ~dims:[| 12; 12 |] g in
    Pfcore.Simulation.init_sphere t;
    Pfcore.Timestep.run t ~steps:3;
    t
  in
  let a = run Pfcore.Timestep.Full Pfcore.Timestep.Full in
  let b = run variant_phi variant_mu in
  let ba = Pfcore.Simulation.phi_buffer a and bb = Pfcore.Simulation.phi_buffer b in
  let max_diff = ref 0. in
  for x = 0 to 11 do
    for y = 0 to 11 do
      for c = 0 to 1 do
        let d =
          abs_float
            (Vm.Buffer.get ba ~component:c [| x; y |] -. Vm.Buffer.get bb ~component:c [| x; y |])
        in
        if d > !max_diff then max_diff := d
      done
    done
  done;
  !max_diff

let test_split_equals_full () =
  let d = steps_match Pfcore.Timestep.Split Pfcore.Timestep.Full in
  Alcotest.(check bool) "split == full (round-off)" true (d < 1e-12)

let test_projection_keeps_simplex () =
  let g = Lazy.force curv in
  let t = Pfcore.Timestep.create ~dims:[| 16; 16 |] g in
  Pfcore.Simulation.init_sphere t;
  Pfcore.Timestep.run t ~steps:20;
  Alcotest.(check bool) "phi in [0,1]" true (Pfcore.Simulation.check_sane t);
  let fr = Pfcore.Simulation.phase_fractions t in
  Alcotest.(check (float 1e-9)) "sum of fractions = 1" 1. (fr.(0) +. fr.(1))

let test_curvature_flow_shrinks () =
  let g = Lazy.force curv in
  let t = Pfcore.Timestep.create ~dims:[| 48; 48 |] g in
  Pfcore.Simulation.init_sphere t;
  let f0 = (Pfcore.Simulation.phase_fractions t).(0) in
  Pfcore.Timestep.run t ~steps:150;
  let f1 = (Pfcore.Simulation.phase_fractions t).(0) in
  Alcotest.(check bool) "sphere shrinks" true (f1 < f0 -. 0.001);
  Alcotest.(check bool) "sphere persists" true (f1 > 0.1)

let test_eutectic_front_advances () =
  let g = Lazy.force p1 in
  let t = Pfcore.Timestep.create ~dims:[| 16; 16; 32 |] g in
  Pfcore.Simulation.init_lamellae t;
  let z0 = Pfcore.Simulation.front_position t in
  let solid0 =
    let fr = Pfcore.Simulation.phase_fractions t in
    fr.(0) +. fr.(1) +. fr.(2)
  in
  Pfcore.Timestep.run t ~steps:40;
  let z1 = Pfcore.Simulation.front_position t in
  let fr = Pfcore.Simulation.phase_fractions t in
  let solid1 = fr.(0) +. fr.(1) +. fr.(2) in
  Alcotest.(check bool) "solid fraction grows" true (solid1 > solid0);
  Alcotest.(check bool) "front advances toward liquid" true (z1 > z0);
  Alcotest.(check bool) "state sane" true (Pfcore.Simulation.check_sane t)

let test_fluctuation_term_generates_rand () =
  let p = { (Pfcore.Params.curvature ~dim:2 ()) with Pfcore.Params.fluctuation = 0.01 } in
  let g = Pfcore.Genkernels.generate p in
  Alcotest.(check bool) "kernel contains Philox calls" true
    (Backend.Ccode.kernel_uses_rand g.phi_full)

let test_config_parameter_count () =
  (* paper §5.1: >50 material parameters for 4 phases / 3 components *)
  Alcotest.(check bool) "P1 has > 50 config parameters" true
    (Pfcore.Params.config_parameter_count (Pfcore.Params.p1 ()) > 50)

let suite =
  [
    Alcotest.test_case "P1 phi stencil signatures" `Quick test_p1_phi_stencils;
    Alcotest.test_case "P1 mu stencil signatures" `Quick test_p1_mu_stencils;
    Alcotest.test_case "P1 Table-1 shape" `Quick test_p1_table1_shape;
    Alcotest.test_case "SSA and runtime params" `Quick test_p1_ssa_and_params;
    Alcotest.test_case "symbolic parameters stay runtime" `Quick test_symbolic_parameters_stay_runtime;
    Alcotest.test_case "frozen cheaper than generic" `Quick test_frozen_cheaper_than_symbolic;
    Alcotest.test_case "constant-T simplification" `Quick test_constant_temperature_simplifies;
    Alcotest.test_case "split == full variant" `Quick test_split_equals_full;
    Alcotest.test_case "projection keeps simplex" `Quick test_projection_keeps_simplex;
    Alcotest.test_case "curvature flow shrinks sphere" `Slow test_curvature_flow_shrinks;
    Alcotest.test_case "eutectic front advances" `Slow test_eutectic_front_advances;
    Alcotest.test_case "fluctuation generates Philox" `Quick test_fluctuation_term_generates_rand;
    Alcotest.test_case "config parameter count" `Quick test_config_parameter_count;
  ]

let test_vtk_output () =
  let g = Lazy.force curv in
  let t = Pfcore.Timestep.create ~dims:[| 8; 8 |] g in
  Pfcore.Simulation.init_sphere t;
  let path = Filename.temp_file "pfgen" ".vtk" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pfcore.Vtkout.write_phi t path;
      let ic = open_in path in
      let header = input_line ic in
      let lines = ref 1 in
      (try
         while true do
           ignore (input_line ic);
           incr lines
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check string) "vtk header" "# vtk DataFile Version 3.0" header;
      (* 8x8 points, 2 phases + dominant = 3 scalar blocks of 64 values *)
      Alcotest.(check bool) "payload present" true (!lines > 3 * 64))

let suite = suite @ [ Alcotest.test_case "VTK output" `Quick test_vtk_output ]
