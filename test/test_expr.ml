(* Symbolic expression core: normalization, differentiation, simplification.
   Property-based tests check that every algebraic pass preserves numeric
   values on random expressions and random environments. *)

open Symbolic
open Expr

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Random expression generator (division-safe: only positive symbol
   values, powers in [-2, 3], no transcendentals that could overflow)   *)
(* ------------------------------------------------------------------ *)

let syms = [| "a"; "b"; "c"; "d" |]

let gen_expr =
  let open QCheck.Gen in
  sized_size (int_bound 24) (fun n ->
      fix
        (fun self n ->
          if n = 0 then
            oneof
              [
                map (fun x -> num (float_of_int x /. 4.)) (int_range (-8) 8);
                map (fun i -> sym syms.(i)) (int_range 0 (Array.length syms - 1));
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2 (fun a b -> add [ a; b ]) sub sub;
                map2 (fun a b -> mul [ a; b ]) sub sub;
                map2 (fun a b -> Expr.sub a b) sub sub;
                map (fun a -> pow a 2) sub;
                map (fun a -> pow a 3) sub;
                map (fun a -> fn Fabs [ a ]) sub;
                map2 (fun a b -> fmax_ a b) sub sub;
                map2 (fun a b -> select (Lt (a, b)) a b) sub sub;
              ])
        n)

let arb_expr = QCheck.make ~print:Expr.to_string (QCheck.Gen.map (fun e -> e) gen_expr)

let env_of_floats (a, b, c, d) =
  Eval.of_alist [ ("a", a); ("b", b); ("c", c); ("d", d) ]

let arb_env =
  let g = QCheck.Gen.(quad (float_range 0.1 3.) (float_range 0.1 3.) (float_range 0.1 3.) (float_range 0.1 3.)) in
  QCheck.make g

(* expansion re-associates sums: tolerate FP noise, and skip the rare
   overflow cases where both sides leave the well-conditioned range *)
let close a b =
  if not (Float.is_finite a && Float.is_finite b) then a = b || (Float.is_nan a && Float.is_nan b)
  else
    let scale = Float.max 1. (Float.max (abs_float a) (abs_float b)) in
    abs_float (a -. b) /. scale < 1e-6 || abs_float a > 1e12

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_add_normalization () =
  let a = sym "a" and b = sym "b" in
  Alcotest.(check bool) "x+x = 2x" true (equal (add [ a; a ]) (mul [ num 2.; a ]));
  Alcotest.(check bool) "a+b-a = b" true (equal (add [ a; b; neg a ]) b);
  Alcotest.(check bool) "0 identity" true (equal (add [ zero; a ]) a);
  Alcotest.(check bool) "constants fold" true (equal (add [ num 1.; num 2. ]) (num 3.));
  Alcotest.(check bool) "nested flatten" true
    (equal (add [ add [ a; b ]; neg b ]) a)

let test_mul_normalization () =
  let a = sym "a" and b = sym "b" in
  Alcotest.(check bool) "x*x = x^2" true (equal (mul [ a; a ]) (pow a 2));
  Alcotest.(check bool) "x*x^-1 = 1" true (equal (mul [ a; pow a (-1) ]) one);
  Alcotest.(check bool) "zero absorbs" true (equal (mul [ zero; a; b ]) zero);
  Alcotest.(check bool) "1 identity" true (equal (mul [ one; a ]) a);
  Alcotest.(check bool) "constants fold" true (equal (mul [ num 2.; num 3.; a ]) (mul [ num 6.; a ]))

let test_pow_normalization () =
  let a = sym "a" in
  Alcotest.(check bool) "x^0 = 1" true (equal (pow a 0) one);
  Alcotest.(check bool) "x^1 = x" true (equal (pow a 1) a);
  Alcotest.(check bool) "(x^2)^3 = x^6" true (equal (pow (pow a 2) 3) (pow a 6));
  Alcotest.(check bool) "2^3 = 8" true (equal (pow (num 2.) 3) (num 8.));
  Alcotest.(check bool) "(xy)^2 distributes" true
    (equal (pow (mul [ a; sym "b" ]) 2) (mul [ pow a 2; pow (sym "b") 2 ]))

let test_select_folding () =
  let a = sym "a" in
  Alcotest.(check bool) "decided true" true (equal (select (Lt (num 1., num 2.)) a zero) a);
  Alcotest.(check bool) "decided false" true (equal (select (Lt (num 2., num 1.)) a zero) zero);
  Alcotest.(check bool) "equal branches" true (equal (select (Lt (a, zero)) a a) a)

let test_derivative_basics () =
  let a = sym "a" and b = sym "b" in
  let d e = diff e ~wrt:a in
  Alcotest.(check bool) "d(a)/da = 1" true (equal (d a) one);
  Alcotest.(check bool) "d(b)/da = 0" true (equal (d b) zero);
  Alcotest.(check bool) "d(a^3) = 3a^2" true (equal (d (pow a 3)) (mul [ num 3.; pow a 2 ]));
  Alcotest.(check bool) "product rule" true
    (equal (d (mul [ a; b ])) b);
  Alcotest.(check bool) "chain sqrt" true
    (close
       (Eval.eval (env_of_floats (2., 0., 0., 0.)) (d (sqrt_ a)))
       (0.5 /. sqrt 2.))

let test_derivative_wrt_subterm () =
  (* Differentiating w.r.t. a Diff atom: the variational-derivative trick. *)
  let phi = sym "phi" in
  let dphi = Diff (phi, 0) in
  let e = add [ pow phi 2; mul [ num 3.; pow dphi 2 ] ] in
  Alcotest.(check bool) "d/d(grad phi)" true
    (equal (diff e ~wrt:dphi) (mul [ num 6.; dphi ]))

let test_spatial_diff () =
  let phi = sym "phi_like" in
  (* spatially constant: derivative vanishes *)
  Alcotest.(check bool) "const" true (equal (spatial_diff (mul [ num 3.; phi ]) 0) zero);
  let f = Fieldspec.scalar ~dim:2 "f" in
  let acc = field f in
  Alcotest.(check bool) "linear pulls constants" true
    (equal (spatial_diff (mul [ num 3.; acc ]) 0) (mul [ num 3.; Diff (acc, 0) ]))

let test_free_syms () =
  let e = add [ sym "x"; mul [ sym "y"; sym "x" ] ] in
  Alcotest.(check (list string)) "free" [ "x"; "y" ] (free_syms e)

let test_subst () =
  let a = sym "a" in
  let e = add [ pow a 2; a ] in
  check_float "subst numeric" 6. (Eval.eval (Eval.of_alist []) (subst_syms [ ("a", num 2.) ] e))

let test_pp_roundtrip () =
  let e = add [ mul [ num 2.; sym "a" ]; pow (sym "b") (-1) ] in
  Alcotest.(check bool) "printable" true (String.length (to_string e) > 0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_expand_preserves =
  QCheck.Test.make ~name:"expand preserves value" ~count:300 (QCheck.pair arb_expr arb_env)
    (fun (e, env) ->
      let env = env_of_floats env in
      close (Eval.eval env e) (Eval.eval env (Simplify.expand e)))

let prop_factor_preserves =
  QCheck.Test.make ~name:"factor_common preserves value" ~count:300
    (QCheck.pair arb_expr arb_env) (fun (e, env) ->
      let env = env_of_floats env in
      close (Eval.eval env e) (Eval.eval env (Simplify.factor_common e)))

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify_term preserves value" ~count:300
    (QCheck.pair arb_expr arb_env) (fun (e, env) ->
      let env = env_of_floats env in
      close (Eval.eval env e) (Eval.eval env (Simplify.simplify_term e)))

let prop_simplify_not_costlier =
  QCheck.Test.make ~name:"simplify_term never increases cost" ~count:300 arb_expr (fun e ->
      Simplify.cost (Simplify.simplify_term e) <= Simplify.cost e)

let has_kink e =
  fold
    (fun k n ->
      k || match n with Select _ | Fun ((Fabs | Fmin | Fmax), _) -> true | _ -> false)
    false e

let prop_derivative_matches_numeric =
  QCheck.Test.make ~name:"symbolic derivative ~ finite difference" ~count:300
    (QCheck.pair arb_expr arb_env) (fun (e, (a, b, c, d)) ->
      (* piecewise kinks break central differences; restrict to smooth exprs *)
      QCheck.assume (not (has_kink e));
      let h = 1e-6 in
      let f x = Eval.eval (env_of_floats (x, b, c, d)) e in
      let deriv = Eval.eval (env_of_floats (a, b, c, d)) (diff e ~wrt:(sym "a")) in
      let numeric = (f (a +. h) -. f (a -. h)) /. (2. *. h) in
      let scale = Float.max 1. (Float.max (abs_float deriv) (abs_float numeric)) in
      abs_float (deriv -. numeric) /. scale < 1e-3)

let prop_count_nodes_positive =
  QCheck.Test.make ~name:"count_nodes >= 1" ~count:200 arb_expr (fun e -> count_nodes e >= 1)

(* Regression pins from the zoo bugfix sweep: the derivative of fmin/fmax
   guards must follow the active branch (a select, not a smooth blend), and
   nested same-axis Diff atoms must behave as independent symbols under
   [diff] — the rule Varder's second-order Euler–Lagrange term relies on. *)
let test_diff_fmin_fmax () =
  let a = sym "a" and b = sym "b" in
  let d e = diff e ~wrt:a in
  let at ~a:av ~b:bv e = Eval.eval (env_of_floats (av, bv, 0., 0.)) e in
  (* fmin picks a's slope where a <= b, b's slope (0) where b < a *)
  Alcotest.(check (float 0.)) "fmin, a active" 1. (at ~a:1. ~b:2. (d (fmin_ a b)));
  Alcotest.(check (float 0.)) "fmin, b active" 0. (at ~a:3. ~b:2. (d (fmin_ a b)));
  Alcotest.(check (float 0.)) "fmax, b active" 0. (at ~a:1. ~b:2. (d (fmax_ a b)));
  Alcotest.(check (float 0.)) "fmax, a active" 1. (at ~a:3. ~b:2. (d (fmax_ a b)));
  (* composite guard: d/da fmax(a², a) switches between 2a and 1 *)
  Alcotest.(check (float 0.)) "fmax of a^2 vs a, quadratic branch" 6.
    (at ~a:3. ~b:0. (d (fmax_ (sq a) a)));
  Alcotest.(check (float 0.)) "fmax of a^2 vs a, linear branch" 1.
    (at ~a:0.5 ~b:0. (d (fmax_ (sq a) a)))

let test_diff_nested_diff_atom () =
  let f = Fieldspec.scalar ~dim:2 "f" in
  let u = field f in
  let uxx = Diff (Diff (u, 0), 0) in
  (* the second-derivative atom is an independent symbol: ∂(½ uxx²)/∂uxx =
     uxx, and it is opaque to ∂/∂u and to the first-derivative atom *)
  Alcotest.(check bool) "quadratic in the atom" true
    (equal (diff (mul [ num 0.5; sq uxx ]) ~wrt:uxx) uxx);
  Alcotest.(check bool) "opaque to d/du" true (equal (diff (sq uxx) ~wrt:u) zero);
  Alcotest.(check bool) "opaque to d/d(ux)" true
    (equal (diff (sq uxx) ~wrt:(Diff (u, 0))) zero);
  (* mixed atoms Diff(Diff(u,0),1) are distinct from Diff(Diff(u,1),0) *)
  let uxy = Diff (Diff (u, 0), 1) and uyx = Diff (Diff (u, 1), 0) in
  Alcotest.(check bool) "mixed atoms distinct" true (equal (diff (sq uxy) ~wrt:uyx) zero)

let suite =
  [
    Alcotest.test_case "add normalization" `Quick test_add_normalization;
    Alcotest.test_case "mul normalization" `Quick test_mul_normalization;
    Alcotest.test_case "pow normalization" `Quick test_pow_normalization;
    Alcotest.test_case "select folding" `Quick test_select_folding;
    Alcotest.test_case "derivative basics" `Quick test_derivative_basics;
    Alcotest.test_case "derivative wrt subterm" `Quick test_derivative_wrt_subterm;
    Alcotest.test_case "spatial diff" `Quick test_spatial_diff;
    Alcotest.test_case "free symbols" `Quick test_free_syms;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "pretty printing" `Quick test_pp_roundtrip;
    Alcotest.test_case "fmin/fmax derivative follows the active branch" `Quick
      test_diff_fmin_fmax;
    Alcotest.test_case "nested Diff atoms are independent symbols" `Quick
      test_diff_nested_diff_atom;
    QCheck_alcotest.to_alcotest prop_expand_preserves;
    QCheck_alcotest.to_alcotest prop_factor_preserves;
    QCheck_alcotest.to_alcotest prop_simplify_preserves;
    QCheck_alcotest.to_alcotest prop_simplify_not_costlier;
    QCheck_alcotest.to_alcotest prop_derivative_matches_numeric;
    QCheck_alcotest.to_alcotest prop_count_nodes_positive;
  ]
