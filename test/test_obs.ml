(* Observability subsystem: golden Chrome trace, trace structure, zero-cost
   disabled path, Mpisim counter accounting, the ECM drift oracle, and the
   QCheck laws from Check.Obs_props. *)

(* Run [f] with a clean, enabled observability sink; restore the disabled,
   empty state after (the sink and registry are process-global). *)
let with_obs f =
  Obs.Metrics.reset ();
  Obs.Sink.clear ();
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.clear ();
      Obs.Metrics.reset ())
    f

let curvature_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()))

let curvature_sim ?num_domains () =
  let sim = Pfcore.Timestep.create ?num_domains ~dims:[| 8; 8 |] (Lazy.force curvature_gen) in
  Pfcore.Simulation.init_sphere sim;
  Pfcore.Timestep.prime sim;
  sim

let contains hay needle = Astring.String.is_infix ~affix:needle hay

(* ---- golden Chrome trace ---- *)

(* A fixed 2-step 8x8 curvature run (fixed Philox seed, single block, one
   domain) has a fully deterministic span structure; with timestamps zeroed
   the rendered trace is byte-stable and golden-comparable. *)
let test_golden_trace () =
  let sim = curvature_sim () in
  let json =
    with_obs (fun () ->
        Pfcore.Timestep.run sim ~steps:2;
        Obs.Trace.to_json ~zero_times:true (Obs.Sink.events ()))
  in
  Golden.check ~name:"trace_curvature_8x8.json" json

(* ---- trace structure ---- *)

(* A 2x2-rank forest trace must carry the trace-event schema fields and one
   labeled lane per simulated rank. *)
let test_trace_structure () =
  let forest =
    Blocks.Forest.create ~grid:[| 2; 2 |] ~block_dims:[| 8; 8 |] (Lazy.force curvature_gen)
  in
  Array.iter Pfcore.Simulation.init_sphere forest.Blocks.Forest.sims;
  let json =
    with_obs (fun () ->
        Blocks.Forest.prime forest;
        Blocks.Forest.run forest ~steps:2;
        Obs.Trace.to_json (Obs.Sink.events ()))
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("trace contains " ^ needle) true (contains json needle))
    [
      "\"traceEvents\"";
      "\"ph\":\"B\"";
      "\"ph\":\"E\"";
      "\"ts\":";
      "\"pid\":";
      "\"tid\":";
      "process_name";
      "thread_name";
      "rank 0";
      "rank 1";
      "rank 2";
      "rank 3";
      "exchange:";
      "kernel:";
    ]

(* A sliced sweep puts each spawned OCaml domain on its own track. *)
let test_domain_tracks () =
  let sim = curvature_sim ~num_domains:2 () in
  let evs, json =
    with_obs (fun () ->
        Pfcore.Timestep.run sim ~steps:1;
        let evs = Obs.Sink.events () in
        (evs, Obs.Trace.to_json evs))
  in
  Alcotest.(check bool) "slice span on tid 1" true
    (List.exists (fun (e : Obs.Sink.event) -> e.Obs.Sink.tid = 1) evs);
  Alcotest.(check bool) "domain track labeled" true (contains json "domain 1")

(* ---- zero cost when disabled ---- *)

let test_disabled_is_silent () =
  Obs.Metrics.reset ();
  Obs.Sink.clear ();
  let sim = curvature_sim () in
  Pfcore.Timestep.run sim ~steps:2;
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.Sink.events ()));
  let s = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "no counters registered" true (s.Obs.Metrics.s_counters = []);
  Alcotest.(check bool) "no histograms registered" true (s.Obs.Metrics.s_histograms = [])

(* ---- Mpisim counter accounting ---- *)

(* Under a crash-free fault plan every message that enters the network must
   leave it through exactly one of the three exits — delivery, a drop, or
   stale discard — and the observability mirror must agree with the
   substrate's own counters, message for message. *)
let test_mpisim_conservation () =
  let forest =
    Blocks.Forest.create ~grid:[| 2; 2 |] ~block_dims:[| 8; 8 |] (Lazy.force curvature_gen)
  in
  Array.iter Pfcore.Simulation.init_sphere forest.Blocks.Forest.sims;
  (* drop/delay/duplicate active, crash step far beyond the run *)
  let plan = Blocks.Faultplan.chaos ~seed:7 ~crash_step:1_000_000 () in
  Blocks.Mpisim.set_fault_plan forest.Blocks.Forest.comm (Some plan);
  with_obs (fun () ->
      Blocks.Forest.prime forest;
      Blocks.Forest.run forest ~steps:4;
      let c = forest.Blocks.Forest.comm in
      Alcotest.(check int) "sent + duplicated + retransmitted = delivered + dropped + stale"
        (c.Blocks.Mpisim.messages_sent + c.Blocks.Mpisim.duplicated
        + c.Blocks.Mpisim.retransmissions)
        (c.Blocks.Mpisim.delivered + c.Blocks.Mpisim.dropped + c.Blocks.Mpisim.stale_discarded);
      Alcotest.(check bool) "plan injected faults" true
        (c.Blocks.Mpisim.dropped + c.Blocks.Mpisim.duplicated + c.Blocks.Mpisim.delayed_count
        > 0);
      let s = Obs.Metrics.snapshot () in
      let v name = Option.value ~default:0 (Obs.Metrics.counter_value s name) in
      List.iter
        (fun (name, substrate) ->
          Alcotest.(check int) ("net." ^ name) substrate (v ("net." ^ name)))
        [
          ("messages_sent", c.Blocks.Mpisim.messages_sent);
          ("bytes_sent", c.Blocks.Mpisim.bytes_sent);
          ("delivered", c.Blocks.Mpisim.delivered);
          ("dropped", c.Blocks.Mpisim.dropped);
          ("duplicated", c.Blocks.Mpisim.duplicated);
          ("delayed", c.Blocks.Mpisim.delayed_count);
          ("retransmissions", c.Blocks.Mpisim.retransmissions);
          ("stale_discarded", c.Blocks.Mpisim.stale_discarded);
        ])

(* ---- ECM drift oracle ---- *)

let test_drift_ordering () =
  let r = Check.Drift.run ~n:8 ~sweeps:1 ~reps:2 () in
  Alcotest.(check int) "all eight P1/P2 kernel variants measured" 8
    (List.length r.Check.Drift.rows);
  Alcotest.(check bool) "mu split <= full, measured and modeled" true
    (Check.Drift.mu_ordering_ok r);
  match Check.Drift.verdict r with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [
    Alcotest.test_case "golden Chrome trace (curvature 8x8, 2 steps)" `Quick
      test_golden_trace;
    Alcotest.test_case "forest trace: schema fields + one lane per rank" `Quick
      test_trace_structure;
    Alcotest.test_case "sliced sweep: one track per domain" `Quick test_domain_tracks;
    Alcotest.test_case "disabled sink records nothing" `Quick test_disabled_is_silent;
    Alcotest.test_case "mpisim conservation + obs mirror" `Quick test_mpisim_conservation;
    Alcotest.test_case "ECM drift: 8 variants, mu ordering, threshold" `Slow
      test_drift_ordering;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      (Check.Obs_props.tests ~count:Check.Harness.default_count)
