(* Differential verification: the lib/check oracle pairs as an alcotest
   suite, plus a mutation smoke-check that the harness actually catches and
   shrinks an injected optimizer bug.

   Sample counts stay small by default (PFGEN_QCHECK_COUNT scales them up;
   the @slow alias and `pfgen check` run the heavy configurations). *)

open Symbolic

let oracle_tests =
  List.map
    (QCheck_alcotest.to_alcotest ~verbose:false)
    (Check.Harness.tests ())

(* ------------------------------------------------------------------ *)
(* Mutation smoke-check                                                *)
(* ------------------------------------------------------------------ *)

(* A deliberately broken "simplifier" (x^2 -> x^3) run through the same
   oracle-1 machinery: the harness must fail the law and hand back a small,
   shrunk counterexample.  Guards the guard: if this stops failing, the
   oracle or the shrinker went blind. *)
let test_mutation_caught () =
  let broken _bindings e =
    Expr.map_bottom_up
      (function Expr.Pow (b, 2) -> Expr.mul [ b; b; b ] | node -> node)
      e
  in
  let cell =
    Check.Oracles.expr_transform_cell ~count:500 ~name:"mutated simplifier" broken
  in
  let result = QCheck.Test.check_cell ~rand:(Random.State.make [| 42 |]) cell in
  match QCheck.TestResult.get_state result with
  | QCheck.TestResult.Failed { instances = cex :: _ } ->
    let e, env = cex.QCheck.TestResult.instance in
    let size = Expr.count_nodes e in
    if size > 12 then
      Alcotest.failf "counterexample not minimized: %d nodes after %d shrink steps (%s)"
        size cex.QCheck.TestResult.shrink_steps (Expr.to_string e);
    Alcotest.(check bool)
      "shrinker ran" true
      (cex.QCheck.TestResult.shrink_steps > 0);
    ignore env
  | _ -> Alcotest.fail "injected x^2 -> x^3 bug was not caught by oracle 1"

(* A broken engine-level law must be caught too: flipping Fmin to Fmax in
   the transform side diverges on almost any sample. *)
let test_mutation_minmax_caught () =
  let broken _bindings e =
    Expr.map_bottom_up
      (function
        | Expr.Fun (Expr.Fmin, args) -> Expr.fn Expr.Fmax args | node -> node)
      e
  in
  let cell =
    Check.Oracles.expr_transform_cell ~count:1000 ~name:"mutated fmin" broken
  in
  let result = QCheck.Test.check_cell ~rand:(Random.State.make [| 7 |]) cell in
  match QCheck.TestResult.get_state result with
  | QCheck.TestResult.Failed _ -> ()
  | _ -> Alcotest.fail "injected fmin -> fmax bug was not caught by oracle 1"

(* ------------------------------------------------------------------ *)
(* Eval edge cases (divergences would leak into generated C)           *)
(* ------------------------------------------------------------------ *)

let feq = Alcotest.float 0.

(* Pow with negative exponent at base 0: Eval computes 1/(0^n) = inf, the
   C backend emits 1.0/pf_pow2(x) which is also inf — consistent. *)
let test_pow_negative_at_zero () =
  let env = Eval.env () in
  Alcotest.check feq "0^-2 = inf" Float.infinity
    (Eval.eval env (Expr.Pow (Expr.num 0., -2)));
  Alcotest.check feq "0^-1 = inf" Float.infinity
    (Eval.eval env (Expr.Pow (Expr.num 0., -1)));
  Alcotest.check feq "(-0)^-1 = -inf" Float.neg_infinity
    (Eval.eval env (Expr.Pow (Expr.num (-0.), -1)));
  (* the engine's repeated-multiply path must agree on the inf sign *)
  let dst = Fieldspec.scalar ~dim:2 "d" and src = Fieldspec.scalar ~dim:2 "s" in
  let body =
    [ Field.Assignment.store (Fieldspec.center dst)
        (Expr.Pow (Expr.field src, -3)) ]
  in
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 2; 1 |] [ src; dst ] in
  let sbuf = Vm.Engine.buffer block src in
  Vm.Buffer.set sbuf [| 0; 0 |] 0.;
  Vm.Buffer.set sbuf [| 1; 0 |] (-0.);
  Vm.Engine.run ~params:[] (Vm.Engine.bind (Ir.Kernel.make ~name:"p" ~dim:2 body) block);
  let dbuf = Vm.Engine.buffer block dst in
  Alcotest.check feq "engine 0^-3" Float.infinity (Vm.Buffer.get dbuf [| 0; 0 |]);
  Alcotest.check feq "engine (-0)^-3" Float.neg_infinity (Vm.Buffer.get dbuf [| 1; 0 |])

(* Select boundary: Le takes the true branch at equality, Lt the false
   branch — matching the C backend's `<=` / `<` ternaries. *)
let test_select_boundary () =
  let env = Eval.env ~sym:(fun _ -> 1.) () in
  let a = Expr.sym "a" and b = Expr.sym "b" in
  let sel c = Eval.eval env (Expr.Select (c, Expr.num 10., Expr.num 20.)) in
  Alcotest.check feq "a <= b at equality -> true branch" 10. (sel (Expr.Le (a, b)));
  Alcotest.check feq "a < b at equality -> false branch" 20. (sel (Expr.Lt (a, b)));
  (* the smart constructor must fold numeric boundaries the same way *)
  Alcotest.check
    (Alcotest.testable Expr.pp Expr.equal)
    "select folds Le boundary" (Expr.num 10.)
    (Expr.select (Expr.Le (Expr.num 2., Expr.num 2.)) (Expr.num 10.) (Expr.num 20.));
  Alcotest.check
    (Alcotest.testable Expr.pp Expr.equal)
    "select folds Lt boundary" (Expr.num 20.)
    (Expr.select (Expr.Lt (Expr.num 2., Expr.num 2.)) (Expr.num 10.) (Expr.num 20.))

(* fmin/fmax with NaN: C99 semantics return the non-NaN operand.  All three
   OCaml layers (constant folder, Eval, Engine) route through
   Expr.c_fmin/c_fmax; this pins the behavior against the C backend's
   fmin()/fmax(). *)
let test_minmax_nan () =
  let nan_ = Float.nan in
  Alcotest.check feq "c_fmin nan x" 3. (Expr.c_fmin nan_ 3.);
  Alcotest.check feq "c_fmin x nan" 3. (Expr.c_fmin 3. nan_);
  Alcotest.check feq "c_fmax nan x" 3. (Expr.c_fmax nan_ 3.);
  Alcotest.check feq "c_fmax x nan" 3. (Expr.c_fmax 3. nan_);
  Alcotest.(check bool)
    "c_fmin nan nan" true
    (Float.is_nan (Expr.c_fmin nan_ nan_));
  (* Eval path *)
  let env = Eval.env ~sym:(function "n" -> nan_ | _ -> 5.) () in
  Alcotest.check feq "eval fmin(n, x) = x" 5.
    (Eval.eval env (Expr.Fun (Expr.Fmin, [ Expr.sym "n"; Expr.sym "x" ])));
  Alcotest.check feq "eval fmax(x, n) = x" 5.
    (Eval.eval env (Expr.Fun (Expr.Fmax, [ Expr.sym "x"; Expr.sym "n" ])));
  (* constant folder path *)
  Alcotest.check
    (Alcotest.testable Expr.pp Expr.equal)
    "fn folds fmin(nan, 2)" (Expr.num 2.)
    (Expr.fmin_ (Expr.num nan_) (Expr.num 2.));
  (* engine path *)
  let src = Fieldspec.scalar ~dim:2 "s" and dst = Fieldspec.scalar ~dim:2 "d" in
  let body =
    [ Field.Assignment.store (Fieldspec.center dst)
        (Expr.Fun (Expr.Fmin, [ Expr.field src; Expr.sym "q" ])) ]
  in
  let block = Vm.Engine.make_block ~ghost:1 ~dims:[| 1; 1 |] [ src; dst ] in
  Vm.Buffer.set (Vm.Engine.buffer block src) [| 0; 0 |] nan_;
  Vm.Engine.run ~params:[ ("q", 4.) ]
    (Vm.Engine.bind (Ir.Kernel.make ~name:"m" ~dim:2 body) block);
  Alcotest.check feq "engine fmin(nan, 4) = 4" 4.
    (Vm.Buffer.get (Vm.Engine.buffer block dst) [| 0; 0 |])

let suite =
  oracle_tests
  @ [
      Alcotest.test_case "mutation: x^2 -> x^3 caught and shrunk" `Quick
        test_mutation_caught;
      Alcotest.test_case "mutation: fmin -> fmax caught" `Quick
        test_mutation_minmax_caught;
      Alcotest.test_case "eval edge: pow negative exponent at 0" `Quick
        test_pow_negative_at_zero;
      Alcotest.test_case "eval edge: select boundary Le vs Lt" `Quick
        test_select_boundary;
      Alcotest.test_case "eval edge: fmin/fmax NaN (C99 semantics)" `Quick
        test_minmax_nan;
    ]
