(* Aggregated alcotest entry point: one suite per library. *)

let () =
  Alcotest.run "pfgen"
    [
      ("expr", Test_expr.suite);
      ("cse", Test_cse.suite);
      ("philox", Test_philox.suite);
      ("fd", Test_fd.suite);
      ("energy", Test_energy.suite);
      ("vm", Test_vm.suite);
      ("kernels", Test_kernels.suite);
      ("blocks", Test_blocks.suite);
      ("resilience", Test_resilience.suite);
      ("vtkout", Test_vtkout.suite);
      ("perfmodel", Test_perf.suite);
      ("gpumodel", Test_gpu.suite);
      ("backend", Test_backend.suite);
      ("check", Test_check.suite);
      ("obs", Test_obs.suite);
      ("pool", Test_pool.suite);
      ("jit", Test_jit.suite);
      ("serve", Test_serve.suite);
      ("reduce", Test_reduce.suite);
    ]
