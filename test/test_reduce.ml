(* Reduction battery: canonical-tree edge cases (empty interiors, tiles
   larger than the sweep, all-NaN extrema, signed-zero sums, uncovered
   cells), threshold-trigger exactness, exception safety inside pooled
   reduction tiles, and the adaptive forest actually freezing bulk blocks
   while staying bitwise equal to the uniform fine-grid run. *)

open Symbolic

let with_obs f =
  Obs.Metrics.reset ();
  Obs.Sink.clear ();
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.clear ();
      Obs.Metrics.reset ())
    f

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let f2 = Fieldspec.create ~dim:2 ~components:2 "f"

let make_block dims = Vm.Engine.make_block ~ghost:2 ~dims [ f2 ]

let fill_philox (buf : Vm.Buffer.t) ~seed =
  Array.iteri
    (fun i _ ->
      buf.Vm.Buffer.data.(i) <- 0.5 +. (0.45 *. Philox.symmetric ~cell:i ~step:seed ~slot:9))
    buf.Vm.Buffer.data

(* ---- empty interiors ---- *)

(* A reduction over zero cells is the operator identity: 0 for sums, NaN
   for the C99 min/max — never a crash, never a stale partial. *)
let test_empty_interior () =
  let block = make_block [| 0; 4 |] in
  Alcotest.(check (float 0.))
    "empty sum = 0" 0.
    (Vm.Reduce.scalar ~num_domains:4 block f2 (Vm.Reduce.Component 0) Vm.Reduce.Sum);
  Alcotest.(check bool)
    "empty min = NaN" true
    (Float.is_nan
       (Vm.Reduce.scalar block f2 (Vm.Reduce.Component 0) Vm.Reduce.Min));
  Alcotest.(check bool)
    "empty max = NaN" true
    (Float.is_nan
       (Vm.Reduce.scalar block f2 (Vm.Reduce.Interface) Vm.Reduce.Max))

(* ---- tiles larger than the sweep ---- *)

let test_tile_larger_than_sweep () =
  let serial = make_block [| 5; 4 |] in
  fill_philox (Vm.Engine.buffer serial f2) ~seed:3;
  let reference =
    Vm.Reduce.scalar ~num_domains:1 serial f2 (Vm.Reduce.Component 1) Vm.Reduce.Sum
  in
  List.iter
    (fun tile ->
      let v =
        Vm.Reduce.scalar ~num_domains:4 ~tile serial f2 (Vm.Reduce.Component 1)
          Vm.Reduce.Sum
      in
      Alcotest.(check bool)
        (Printf.sprintf "tile %dx%d = serial (bitwise)" tile.(0) tile.(1))
        true (bits_equal reference v))
    [ [| 50; 50 |]; [| 1; 1 |]; [| 7; 1 |]; [| 1; 50 |] ]

(* ---- NaN extrema ---- *)

let test_all_nan_extrema () =
  let block = make_block [| 4; 3 |] in
  let buf = Vm.Engine.buffer block f2 in
  Array.iteri (fun i _ -> buf.Vm.Buffer.data.(i) <- Float.nan) buf.Vm.Buffer.data;
  Alcotest.(check bool)
    "all-NaN min = NaN" true
    (Float.is_nan
       (Vm.Reduce.scalar ~num_domains:2 block f2 (Vm.Reduce.Component 0) Vm.Reduce.Min));
  Alcotest.(check bool)
    "all-NaN max = NaN" true
    (Float.is_nan
       (Vm.Reduce.scalar block f2 (Vm.Reduce.Component 0) Vm.Reduce.Max));
  (* one finite cell: the C99 semantics ignore every NaN *)
  Vm.Buffer.set buf ~component:0 [| 2; 1 |] 3.5;
  Alcotest.(check (float 0.))
    "mixed min ignores NaNs" 3.5
    (Vm.Reduce.scalar ~num_domains:4 ~tile:[| 2; 2 |] block f2
       (Vm.Reduce.Component 0) Vm.Reduce.Min);
  Alcotest.(check (float 0.))
    "mixed max ignores NaNs" 3.5
    (Vm.Reduce.scalar block f2 (Vm.Reduce.Component 0) Vm.Reduce.Max)

(* ---- signed zero ---- *)

(* IEEE: (-0) + (-0) = -0, so a field of negative zeros must sum to a
   bitwise negative zero through every decomposition — a sign flip would
   betray an accumulator seeded with +0 somewhere in the tree. *)
let test_signed_zero_sum () =
  let block = make_block [| 6; 5 |] in
  let buf = Vm.Engine.buffer block f2 in
  Array.iteri (fun i _ -> buf.Vm.Buffer.data.(i) <- -0.) buf.Vm.Buffer.data;
  let serial =
    Vm.Reduce.scalar ~num_domains:1 block f2 (Vm.Reduce.Component 0) Vm.Reduce.Sum
  in
  Alcotest.(check bool)
    "sum of -0 cells is -0 (bitwise)" true
    (bits_equal serial (-0.));
  let pooled =
    Vm.Reduce.scalar ~num_domains:4 ~tile:[| 2; 3 |] block f2
      (Vm.Reduce.Component 0) Vm.Reduce.Sum
  in
  Alcotest.(check bool) "pooled sum keeps the sign bit" true (bits_equal serial pooled)

(* ---- coverage violations ---- *)

let test_uncovered_cell_rejected () =
  let f _ = 1. in
  let partial = Vm.Reduce.segment ~n:4 f Vm.Reduce.Sum 0 2 in
  Alcotest.check_raises "missing leaf raises"
    (Invalid_argument "Reduce.assemble: cell 2 not covered by any partial") (fun () ->
      ignore (Vm.Reduce.assemble ~n:4 Vm.Reduce.Sum [ partial ]))

(* ---- threshold triggers ---- *)

let curvature_gen = lazy (Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()))

(* A trigger must fire on the step where its value lands exactly on the
   threshold (>=, not >), record that step once, and stay fired. *)
let test_trigger_exact_threshold () =
  let gen = Lazy.force curvature_gen in
  let sim = Pfcore.Timestep.create ~dims:[| 6; 6 |] gen in
  Pfcore.Timestep.prime sim;
  let tr =
    Pfcore.Diag.trigger ~name:"steps" ~threshold:2.
      (fun t -> float_of_int t.Pfcore.Timestep.step_count)
  in
  let seen = ref [] in
  Pfcore.Timestep.run sim ~steps:4 ~on_step:(fun t ->
      seen := Pfcore.Diag.observe tr t :: !seen);
  Alcotest.(check (list bool))
    "fires exactly when value reaches threshold" [ false; true; true; true ]
    (List.rev !seen);
  Alcotest.(check (option int)) "firing step recorded once" (Some 2)
    tr.Pfcore.Diag.fired_at;
  Alcotest.(check (float 0.)) "last value tracked" 4. tr.Pfcore.Diag.last

(* ---- exception safety ---- *)

exception Poison

(* A poisoned cell function aborts the reduction at the coordinator, but
   the pool survives (the next reduction runs every tile) and every span
   stream stays balanced. *)
let test_exception_in_reduction () =
  with_obs (fun () ->
      let block = make_block [| 6; 5 |] in
      fill_philox (Vm.Engine.buffer block f2) ~seed:11;
      let poisoned =
        Vm.Reduce.Custom (fun g -> if g.(0) = 3 && g.(1) = 2 then raise Poison else 1.)
      in
      let raised =
        try
          ignore
            (Vm.Reduce.scalar ~num_domains:4 ~tile:[| 2; 2 |] block f2 poisoned
               Vm.Reduce.Sum);
          false
        with Poison -> true
      in
      Alcotest.(check bool) "poisoned cell re-raised at coordinator" true raised;
      Alcotest.(check bool)
        "span stream balanced after reduction exception" true
        (Check.Obs_props.stream_well_formed (Obs.Sink.events ()));
      let total =
        Vm.Reduce.scalar ~num_domains:4 ~tile:[| 2; 2 |] block f2
          (Vm.Reduce.Custom (fun _ -> 1.))
          Vm.Reduce.Sum
      in
      Alcotest.(check (float 0.)) "pool usable: count of all cells" 30. total)

(* ---- adaptive forest: freezing engages and is invisible ---- *)

(* Sharp 0/1 disc confined to block (0,0) of a 6x2 forest of 6x6 blocks:
   the block column farthest from the disc keeps a bulk Chebyshev-1
   neighborhood for the whole run (the interface spreads at most 2 cells
   per step, both ways around the periodic seam), so a correct adaptive
   run freezes it and keeps it frozen — and the frozen run must still be
   bitwise the uniform 36x12 run, reductions included. *)
let init_disc (sim : Pfcore.Timestep.t) =
  let fields = sim.Pfcore.Timestep.gen.Pfcore.Genkernels.fields in
  let buf = Vm.Engine.buffer sim.Pfcore.Timestep.block fields.Pfcore.Model.phi_src in
  let off = sim.Pfcore.Timestep.block.Vm.Engine.offset in
  Vm.Buffer.init buf (fun coords comp ->
      let x = float_of_int (coords.(0) + off.(0)) +. 0.5 -. 3. in
      let y = float_of_int (coords.(1) + off.(1)) +. 0.5 -. 3. in
      let v = if (x *. x) +. (y *. y) < 4. then 1. else 0. in
      if comp = 0 then v else 1. -. v)

let test_adaptive_freezes_bitwise () =
  let gen = Lazy.force curvature_gen in
  let gd = [| 36; 12 |] in
  let uniform = Pfcore.Timestep.create ~dims:gd gen in
  init_disc uniform;
  Pfcore.Timestep.prime uniform;
  Pfcore.Timestep.run uniform ~steps:3;
  let af =
    Blocks.Adaptive.create ~ranks:2 ~bgrid:[| 6; 2 |] ~block_dims:[| 6; 6 |] gen
  in
  List.iter init_disc (Blocks.Adaptive.active_sims af);
  Blocks.Adaptive.prime af;
  Blocks.Adaptive.run af ~steps:3;
  Alcotest.(check bool)
    (Printf.sprintf "bulk blocks froze (%d)" (Blocks.Adaptive.frozen_blocks af))
    true
    (Blocks.Adaptive.frozen_blocks af > 0);
  Alcotest.(check bool) "cells-touched savings > 1" true (Blocks.Adaptive.savings af > 1.);
  let phi = gen.Pfcore.Genkernels.fields.Pfcore.Model.phi_src in
  let ubuf = Vm.Engine.buffer uniform.Pfcore.Timestep.block phi in
  let ok = ref true in
  for gy = 0 to gd.(1) - 1 do
    for gx = 0 to gd.(0) - 1 do
      for c = 0 to phi.Fieldspec.components - 1 do
        let a = Vm.Buffer.get ubuf ~component:c [| gx; gy |] in
        let b = Blocks.Adaptive.get af phi ~component:c [| gx; gy |] in
        if not (bits_equal a b) then ok := false
      done
    done
  done;
  Alcotest.(check bool) "adaptive = uniform (bitwise)" true !ok;
  let usum =
    Vm.Reduce.scalar ~num_domains:1 uniform.Pfcore.Timestep.block phi
      Vm.Reduce.Interface Vm.Reduce.Sum
  in
  Alcotest.(check bool)
    "canonical interface count agrees over frozen nodes" true
    (bits_equal usum (Blocks.Adaptive.interface_cells af))

let suite =
  [
    Alcotest.test_case "reduce: empty interior is the identity" `Quick
      test_empty_interior;
    Alcotest.test_case "reduce: tile larger than sweep = serial (bitwise)" `Quick
      test_tile_larger_than_sweep;
    Alcotest.test_case "reduce: all-NaN and mixed-NaN extrema (C99)" `Quick
      test_all_nan_extrema;
    Alcotest.test_case "reduce: signed-zero sums keep the sign bit" `Quick
      test_signed_zero_sum;
    Alcotest.test_case "reduce: uncovered cell rejected by assemble" `Quick
      test_uncovered_cell_rejected;
    Alcotest.test_case "diag: trigger fires on the exact threshold step" `Quick
      test_trigger_exact_threshold;
    Alcotest.test_case "reduce: exception in a reduction tile (usable, balanced spans)"
      `Quick test_exception_in_reduction;
    Alcotest.test_case "adaptive: bulk blocks freeze, run stays bitwise uniform" `Quick
      test_adaptive_freezes_bitwise;
  ]
