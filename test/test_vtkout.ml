(* Legacy-VTK output: golden-snapshot a tiny file so header layout, scalar
   ordering and number formatting stay stable (refresh with
   PFGEN_UPDATE_GOLDEN=1 dune runtest, like the backend snapshots). *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_vtk_golden () =
  let g = Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()) in
  let sim = Pfcore.Timestep.create ~dims:[| 6; 5 |] g in
  Pfcore.Simulation.init_sphere sim;
  Pfcore.Timestep.run sim ~steps:2;
  let path = Filename.temp_file "pfgen" ".vtk" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pfcore.Vtkout.write_phi sim path;
      Golden.check ~name:"vtk_curvature_6x5.vtk" (read_file path))

let test_vtk_structure () =
  (* structural invariants that must hold for any block, independent of the
     snapshot: ParaView needs the magic line, the dataset type, and one
     value per point per scalar *)
  let g = Pfcore.Genkernels.generate (Pfcore.Params.curvature ~dim:2 ()) in
  let sim = Pfcore.Timestep.create ~dims:[| 4; 3 |] g in
  Pfcore.Simulation.init_sphere sim;
  let path = Filename.temp_file "pfgen" ".vtk" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pfcore.Vtkout.write_phi sim path;
      let text = read_file path in
      let lines = String.split_on_char '\n' text in
      Alcotest.(check string) "vtk magic" "# vtk DataFile Version 3.0" (List.hd lines);
      Alcotest.(check bool) "structured points" true
        (List.mem "DATASET STRUCTURED_POINTS" lines);
      Alcotest.(check bool) "dimensions line" true (List.mem "DIMENSIONS 4 3 1" lines);
      Alcotest.(check bool) "point count" true (List.mem "POINT_DATA 12" lines);
      (* 2 phases + dominant_phase, 12 points each *)
      let scalars =
        List.length
          (List.filter (fun l -> String.length l > 7 && String.sub l 0 7 = "SCALARS") lines)
      in
      Alcotest.(check int) "one SCALARS block per phase + dominant" 3 scalars)

let test_vtk_golden_eutectic () =
  (* a small frame of examples/eutectic.ml: same preset, same lamella
     initializer, same writer — pins the zoo model's VTK output end to end *)
  let g = Pfcore.Genkernels.generate (Pfcore.Params.eutectic ()) in
  let sim = Pfcore.Timestep.create ~dims:[| 12; 16 |] g in
  Pfcore.Simulation.init_lamellae ~height_frac:0.25 ~lamella_width:3 sim;
  Pfcore.Timestep.run sim ~steps:2;
  let path = Filename.temp_file "pfgen" ".vtk" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pfcore.Vtkout.write_phi sim path;
      Golden.check ~name:"vtk_eutectic_12x16.vtk" (read_file path))

let suite =
  [
    Alcotest.test_case "vtk golden snapshot" `Quick test_vtk_golden;
    Alcotest.test_case "vtk golden snapshot (eutectic zoo)" `Quick test_vtk_golden_eutectic;
    Alcotest.test_case "vtk structure" `Quick test_vtk_structure;
  ]
